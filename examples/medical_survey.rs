//! Medical survey at scale: comparing mechanisms under skewed sensitivity.
//!
//! A disease registry with 200 conditions: a handful of highly sensitive
//! diagnoses (HIV, cancers — strict budget), a band of moderate conditions,
//! and a long tail of common complaints (loose budget). The example sweeps
//! the base budget ε and shows the paper's central utility claim: IDUE
//! under MinID-LDP beats RAPPOR and OUE, which must run everything at the
//! strictest budget, and the advantage grows with budget skew.
//!
//! Run: `cargo run --release --example medical_survey`

use idldp::prelude::*;
use idldp_data::budgets::BudgetScheme;
use idldp_data::synthetic;
use idldp_num::rng::stream_rng;
use idldp_sim::report::{sci, TextTable};

fn main() {
    let seed = 7_u64;
    let m = 200;
    // Disease frequencies follow a power law: a few common complaints
    // dominate, serious diagnoses are rare — exactly the regime where
    // over-protection hurts.
    let dataset = synthetic::power_law_with(&mut stream_rng(seed, 0), 100_000, m, 2.0);

    let specs = [
        MechanismSpec::Rappor,
        MechanismSpec::Oue,
        MechanismSpec::Idue(Model::Opt0),
        MechanismSpec::Idue(Model::Opt1),
    ];

    println!("medical survey: n = 100000 users, m = {m} conditions, power-law frequencies");
    println!("privacy levels: {{eps, 1.2eps, 2eps, 4eps}} at {{5%, 5%, 5%, 85%}} of conditions\n");

    let mut table = TextTable::new(&["eps", "mechanism", "total MSE", "vs OUE"]);
    for eps in [0.5_f64, 1.0, 2.0] {
        let levels = BudgetScheme::paper_default()
            .assign(
                m,
                Epsilon::new(eps).expect("positive"),
                &mut stream_rng(seed, 1),
            )
            .expect("valid assignment");
        let results = SingleItemExperiment::new(&dataset, levels, 10, seed)
            .with_mode(idldp_sim::SimulationMode::Aggregate)
            .run(&specs)
            .expect("experiment runs");
        let oue_mse = results[1].empirical_mse;
        for r in &results {
            table.row(vec![
                format!("{eps:.1}"),
                r.name.clone(),
                sci(r.empirical_mse),
                format!("{:+.1}%", 100.0 * (r.empirical_mse - oue_mse) / oue_mse),
            ]);
        }
    }
    print!("{}", table.render());
    println!("\nIDUE rows should be strictly below OUE; RAPPOR strictly above.");
}
