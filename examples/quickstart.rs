//! Quickstart: the paper's toy medical survey, end to end.
//!
//! A health organization surveys n users over five answers
//! {HIV, flu, headache, stomachache, toothache}. HIV is far more sensitive
//! than the rest, so it gets budget ε = ln 4 while the others get ln 6.
//! Plain LDP would force *everything* to ln 4; MinID-LDP lets IDUE spend
//! the looser budgets where they are allowed, cutting the total estimation
//! variance below both RAPPOR and OUE (the paper's Table II).
//!
//! Run: `cargo run --release --example quickstart`

use idldp::prelude::*;
use idldp_num::rng::stream_rng;

const CATEGORIES: [&str; 5] = ["HIV", "flu", "headache", "stomachache", "toothache"];

fn main() {
    let n: u64 = 200_000;
    // True population mix (unknown to the server).
    let truth = [2_000u64, 80_000, 60_000, 38_000, 20_000];

    // 1. Privacy levels: item 0 (HIV) strict, the rest looser.
    let levels = LevelPartition::new(
        vec![0, 1, 1, 1, 1],
        vec![
            Epsilon::new(4.0_f64.ln()).expect("ln 4 > 0"),
            Epsilon::new(6.0_f64.ln()).expect("ln 6 > 0"),
        ],
    )
    .expect("valid partition");

    // 2. Solve the worst-case-optimal IDUE parameters (Eq. 10 / opt0).
    let params = IdueSolver::new(Model::Opt0)
        .solve(&levels)
        .expect("toy problem is feasible");
    println!("solved IDUE parameters:");
    for lvl in 0..params.num_levels() {
        println!(
            "  level {lvl} (eps = {:.3}): a = {:.3}, b = {:.3}",
            levels.level_budget(lvl).expect("in range").get(),
            params.a()[lvl],
            params.b()[lvl]
        );
    }
    let mechanism = Idue::new(levels, &params).expect("dimensions match");
    // Sanity: the mechanism provably satisfies MinID-LDP.
    mechanism
        .verify(RFunction::Min, 1e-9)
        .expect("solver output is feasible");

    // 3. Clients perturb locally and the server sums the reports.
    let mut counts = vec![0u64; 5];
    let mut user = 0u64;
    for (item, &c) in truth.iter().enumerate() {
        for _ in 0..c {
            let mut rng = stream_rng(2020, user);
            user += 1;
            let report = mechanism.perturb_item(item, &mut rng);
            for (acc, bit) in counts.iter_mut().zip(&report) {
                *acc += *bit as u64;
            }
        }
    }

    // 4. Server-side calibration (Eq. 8).
    let estimates = mechanism
        .estimator(n)
        .estimate(&counts)
        .expect("count vector sized to domain");

    println!(
        "\n{:>12} | {:>8} | {:>9} | rel.err",
        "category", "truth", "estimate"
    );
    println!("{}", "-".repeat(48));
    for (i, name) in CATEGORIES.iter().enumerate() {
        let t = truth[i] as f64;
        let e = estimates[i];
        println!(
            "{name:>12} | {t:>8.0} | {e:>9.0} | {:>6.2}%",
            100.0 * (e - t).abs() / t
        );
    }

    println!(
        "\nmechanism's tightest plain-LDP budget: {:.3} (vs min(E) = {:.3}; \
         Lemma 1 caps it at {:.3})",
        mechanism.ldp_epsilon(),
        4.0_f64.ln(),
        (6.0_f64.ln()).min(2.0 * 4.0_f64.ln()),
    );
}
