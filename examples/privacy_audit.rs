//! Auditing mechanisms against privacy notions.
//!
//! Shows the crate's verification tooling: analytic Eq. 7 audits, the
//! Lemma 1 sandwich between MinID-LDP and LDP, sequential-composition
//! accounting (Theorem 2), and an exhaustive numerical check of Theorem 4
//! for IDUE-PS on a small enumerable domain.
//!
//! Run: `cargo run --release --example privacy_audit`

use idldp::prelude::*;
use idldp_core::audit;
use idldp_core::composition::MinIdLdpAccountant;
use idldp_core::relations;

fn main() {
    // Two levels over six items: items 0-1 strict (ln 2), rest loose (ln 4).
    let levels = LevelPartition::new(
        vec![0, 0, 1, 1, 1, 1],
        vec![
            Epsilon::new(2.0_f64.ln()).expect("positive"),
            Epsilon::new(4.0_f64.ln()).expect("positive"),
        ],
    )
    .expect("valid partition");

    let params = IdueSolver::new(Model::Opt0)
        .solve(&levels)
        .expect("feasible");
    let idue = Idue::new(levels.clone(), &params).expect("dimensions match");

    // --- analytic audit against MinID-LDP and plain LDP -------------------
    println!("analytic audit (Eq. 7 worst ratios):");
    let notion = idue.intended_notion();
    match audit::audit_unary_encoding(idue.unary_encoding(), &notion, 1e-9) {
        Ok(()) => println!("  MinID-LDP: SATISFIED"),
        Err(e) => println!("  MinID-LDP: VIOLATED — {e}"),
    }
    let strict = Notion::Ldp(Epsilon::new(2.0_f64.ln()).expect("positive"));
    match audit::audit_unary_encoding(idue.unary_encoding(), &strict, 1e-9) {
        Ok(()) => println!("  ln2-LDP:   SATISFIED (unexpected — IDUE relaxes this)"),
        Err(e) => println!("  ln2-LDP:   violated as expected ({e})"),
    }

    // --- the Lemma 1 sandwich ---------------------------------------------
    let summary =
        relations::lemma_one_summary(&levels.item_budget_set()).expect("non-empty budgets");
    println!("\nLemma 1 sandwich:");
    println!(
        "  min(E) = {:.4}, max(E) = {:.4}",
        summary.min_budget, summary.max_budget
    );
    println!(
        "  MinID-LDP implies {:.4}-LDP (relaxation factor {:.2} <= 2)",
        summary.implied_ldp, summary.relaxation
    );
    println!(
        "  mechanism's actual tightest LDP budget: {:.4}",
        idue.ldp_epsilon()
    );
    assert!(idue.ldp_epsilon() <= summary.implied_ldp + 1e-9);

    // --- sequential composition (Theorem 2) --------------------------------
    let mut accountant = MinIdLdpAccountant::new(6).expect("non-empty domain");
    for _round in 0..3 {
        accountant
            .compose(&levels.item_budget_set())
            .expect("matching domain");
    }
    println!("\nafter composing the mechanism 3 times (Theorem 2):");
    println!(
        "  cumulative budget of item 0: {:.4} (= 3 x ln 2)",
        accountant.total_for(0).expect("in range")
    );
    println!(
        "  pair bound (item 0, item 2): {:.4}",
        accountant.pair_bound(0, 2).expect("in range")
    );

    // --- exhaustive Theorem 4 check for IDUE-PS ----------------------------
    let mech = IduePs::new(levels, &params, 2).expect("valid");
    let sets: Vec<Vec<usize>> = vec![vec![0], vec![2], vec![0, 2], vec![2, 3, 4]];
    let audits = audit::audit_idue_ps_exhaustive(&mech, &sets, 1e-9)
        .expect("Theorem 4 must hold for feasible parameters");
    println!("\nexhaustive Theorem 4 audit over all 2^(m+l) outputs:");
    for a in &audits {
        println!(
            "  {:?} vs {:?}: worst ln-ratio {:.4} <= min(eps_x, eps_x') = {:.4}",
            a.sets.0, a.sets.1, a.observed, a.allowed
        );
    }
    println!("\nall checks passed.");
}
