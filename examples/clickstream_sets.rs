//! Item-set collection: web click-streams with IDUE-PS.
//!
//! Each user visits a *set* of pages; a few pages (health forums, support
//! groups) are sensitive, most (news, shopping) are not. IDUE-PS composes
//! Padding-and-Sampling with IDUE so the whole set is reported through one
//! perturbed unary encoding, satisfying MinID-LDP with the Eq. 17 set
//! budget. The example also prints a few set budgets to show how padding
//! and set composition affect the guarantee.
//!
//! Run: `cargo run --release --example clickstream_sets`

use idldp::prelude::*;
use idldp_data::budgets::BudgetScheme;
use idldp_data::kosarak::{generate, KosarakConfig};
use idldp_num::rng::stream_rng;
use idldp_sim::report::{sci, TextTable};

fn main() {
    let seed = 11_u64;
    let config = KosarakConfig {
        users: 50_000,
        pages: 500,
        mean_set_size: 6.0,
        zipf_exponent: 1.2,
        max_set_size: 60,
    };
    let dataset = generate(&mut stream_rng(seed, 0), &config);
    let m = dataset.domain_size();
    println!(
        "clickstream: n = {}, m = {m} pages, mean visits/user = {:.1}",
        dataset.num_users(),
        dataset.mean_set_size()
    );

    let base = Epsilon::new(1.5).expect("positive");
    let levels = BudgetScheme::paper_default()
        .assign(m, base, &mut stream_rng(seed, 1))
        .expect("valid assignment");

    // Padding length: the 90th-percentile set size (the PS heuristic).
    let padding = dataset.percentile_set_size(0.9).max(1);
    println!("padding length l = {padding} (90th-percentile set size)\n");

    // Show Eq. 17 set budgets for a few example sets.
    let params = IdueSolver::new(Model::Opt1)
        .solve(&levels)
        .expect("feasible");
    let mech = IduePs::new(levels.clone(), &params, padding).expect("valid");
    println!(
        "example set budgets (Eq. 17; dummy eps* = min E = {:.2}):",
        levels.min_budget().get()
    );
    for set in [
        vec![0usize],
        vec![0, 1, 2],
        (0..padding + 3).collect::<Vec<_>>(),
    ] {
        println!(
            "  |x| = {:>2}  ->  eps_x = {:.3}",
            set.len(),
            mech.set_budget(&set).expect("in-domain")
        );
    }
    println!();

    // Compare the PS mechanisms.
    // Aggregate (binomial) path: the exact per-user pipeline is exercised by
    // the quickstart and the conformance suite; at this scale aggregate keeps
    // the example snappy.
    let results = ItemSetExperiment::new(&dataset, levels, padding, 5, seed)
        .with_mode(idldp_sim::SimulationMode::Aggregate)
        .run(&[
            MechanismSpec::Rappor,
            MechanismSpec::Oue,
            MechanismSpec::Idue(Model::Opt0),
        ])
        .expect("experiment runs");
    let mut table = TextTable::new(&["mechanism", "total MSE", "top-5 MSE"]);
    for (r, name) in results.iter().zip(["RAPPOR-PS", "OUE-PS", "IDUE-PS"]) {
        table.row(vec![
            name.into(),
            sci(r.empirical_mse),
            sci(r.empirical_topk_mse),
        ]);
    }
    print!("{}", table.render());
    println!("\nIDUE-PS should sit below both LDP baselines.");
}
