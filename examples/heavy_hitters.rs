//! Heavy-hitter identification: does IDUE's utility gain carry over?
//!
//! The paper's future-work direction. We run the frequency-oracle-based
//! top-k identification on a Zipf-like clickstream and compare F1 scores of
//! RAPPOR / OUE / IDUE across trials: lower estimation variance should mean
//! more reliable identification, especially at strict base budgets.
//!
//! Run: `cargo run --release --example heavy_hitters`

use idldp::prelude::*;
use idldp_data::budgets::BudgetScheme;
use idldp_data::synthetic;
use idldp_num::rng::stream_rng;
use idldp_sim::heavy_hitters::{identify_top_k, quality};
use idldp_sim::report::TextTable;
use idldp_sim::spec::build_single_item;

fn main() {
    let seed = 5_u64;
    let m = 150;
    let k = 10;
    let n = 60_000;
    let dataset = synthetic::power_law_with(&mut stream_rng(seed, 0), n, m, 1.6);
    let truth_topk = dataset.top_k(k);
    println!("heavy hitters: n = {n}, m = {m}, identify top-{k} (power-law truth)\n");

    let mut table = TextTable::new(&[
        "eps",
        "mechanism",
        "mean F1",
        "mean precision",
        "mean recall",
    ]);
    for eps in [0.5_f64, 1.0, 2.0] {
        let levels = BudgetScheme::paper_default()
            .assign(
                m,
                Epsilon::new(eps).expect("positive"),
                &mut stream_rng(seed, 1),
            )
            .expect("valid assignment");
        for (spec, name) in [
            (MechanismSpec::Rappor, "RAPPOR"),
            (MechanismSpec::Oue, "OUE"),
            (MechanismSpec::Idue(Model::Opt0), "IDUE"),
        ] {
            let mech = build_single_item(spec, &levels, None).expect("buildable");
            let oracle = mech.frequency_oracle(n as u64);
            let trials = 20;
            let (mut f1, mut pr, mut rc) = (0.0, 0.0, 0.0);
            for t in 0..trials {
                let mut rng = stream_rng(seed, 100 + t);
                let counts = idldp_sim::aggregate::run_counts(
                    &mut rng,
                    mech.as_ref(),
                    idldp_sim::InputBatch::Items(dataset.items()),
                )
                .expect("aggregate path available for UE mechanisms");
                let estimates = oracle.estimate(&counts).expect("sized");
                let found = identify_top_k(&estimates, k);
                let q = quality(&found, &truth_topk);
                f1 += q.f1 / trials as f64;
                pr += q.precision / trials as f64;
                rc += q.recall / trials as f64;
            }
            table.row(vec![
                format!("{eps:.1}"),
                name.into(),
                format!("{f1:.3}"),
                format!("{pr:.3}"),
                format!("{rc:.3}"),
            ]);
        }
    }
    print!("{}", table.render());
    println!("\nIDUE's F1 should dominate at strict budgets, where baseline noise drowns the tail hitters.");

    // The same identification, *online*: stream reports through the
    // snapshot → prune → re-estimate tracker instead of materializing the
    // population. The final answer is identical to the offline ranking —
    // the topk_conformance suite proves this for all eight mechanisms.
    let levels = BudgetScheme::paper_default()
        .assign(
            m,
            Epsilon::new(1.0).expect("positive"),
            &mut stream_rng(seed, 1),
        )
        .expect("valid assignment");
    let mech =
        build_single_item(MechanismSpec::Idue(Model::Opt0), &levels, None).expect("buildable");
    let run = idldp_sim::SimulationPipeline::new()
        .run_top_k(
            mech.as_ref(),
            idldp_sim::InputBatch::Items(dataset.items()),
            seed,
            idldp::stream::DEFAULT_SHARDS,
            TrackerMode::TopK { k, slack: 4 },
            10_000,
        )
        .expect("trackable");
    let q = quality(&run.top_k, &truth_topk);
    println!(
        "\nonline tracker (IDUE, eps 1.0, snapshot every 10k reports, {} refreshes): \
         top-{k} = {:?}, F1 = {:.3}",
        run.refreshes, run.top_k, q.f1
    );
}
