//! # `idldp-bench` — the experiment harness
//!
//! One binary per table/figure of the paper (see DESIGN.md §3 for the
//! index):
//!
//! | target | regenerates |
//! |---|---|
//! | `table1` | Table I — prior–posterior leakage bounds |
//! | `table2` | Table II — toy medical survey, RAPPOR vs OUE vs IDUE |
//! | `fig1` | Fig. 1 — pairwise-budget graphs of the four notions |
//! | `fig2` | Fig. 2 — worked IDUE-PS pipeline trace |
//! | `fig3` | Fig. 3 — empirical vs theoretical MSE on synthetic data |
//! | `fig4a` | Fig. 4(a) — Kosarak (single-item) across budget distributions |
//! | `fig4b` | Fig. 4(b) — Retail (item-set), t = 4 vs t = 20 |
//! | `fig5` | Fig. 5 — Retail & MSNBC across padding lengths ℓ |
//!
//! Common flags: `--full` (paper-scale data), `--trials N`, `--seed S`,
//! `--csv`. Criterion micro-benchmarks live in `benches/`.

use std::collections::HashMap;

/// Default master seed for all experiment binaries (arbitrary but fixed so
/// published EXPERIMENTS.md numbers are reproducible).
pub const DEFAULT_SEED: u64 = 20200401;

/// Minimal command-line arguments: `--flag` booleans and `--key value`
/// pairs. No external dependency needed for eight small binaries.
#[derive(Clone, Debug, Default)]
pub struct Args {
    values: HashMap<String, String>,
    flags: Vec<String>,
}

impl Args {
    /// Parses `std::env::args()` (skipping the program name).
    pub fn parse() -> Self {
        Self::from_tokens(std::env::args().skip(1))
    }

    /// Parses from an explicit iterator (testable).
    pub fn from_tokens<I: IntoIterator<Item = String>>(iter: I) -> Self {
        let mut args = Args::default();
        let mut tokens = iter.into_iter().peekable();
        while let Some(tok) = tokens.next() {
            let Some(name) = tok.strip_prefix("--") else {
                continue; // ignore stray positional tokens
            };
            let takes_value = tokens.peek().is_some_and(|next| !next.starts_with("--"));
            if takes_value {
                args.values
                    .insert(name.to_string(), tokens.next().expect("peeked"));
            } else {
                args.flags.push(name.to_string());
            }
        }
        args
    }

    /// `true` if `--name` was passed as a boolean flag.
    pub fn flag(&self, name: &str) -> bool {
        self.flags.iter().any(|f| f == name)
    }

    /// A `--key value` parsed as the requested type, or the default.
    pub fn get<T: std::str::FromStr>(&self, name: &str, default: T) -> T {
        self.values
            .get(name)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }

    /// Common flag: paper-scale data (`--full`).
    pub fn full(&self) -> bool {
        self.flag("full")
    }

    /// Common flag: CSV output (`--csv`).
    pub fn csv(&self) -> bool {
        self.flag("csv")
    }

    /// Common flag: master seed (`--seed S`).
    pub fn seed(&self) -> u64 {
        self.get("seed", DEFAULT_SEED)
    }

    /// Common flag: trial count (`--trials N`).
    pub fn trials(&self, default: usize) -> usize {
        self.get("trials", default).max(1)
    }
}

/// Prints a table in the format selected by `--csv`.
pub fn emit(table: &idldp_sim::report::TextTable, csv: bool) {
    if csv {
        print!("{}", table.render_csv());
    } else {
        print!("{}", table.render());
    }
}

/// The simulation path for experiment binaries: the `O(n + m)` aggregate
/// (binomial) path by default — figure reproductions at `--full` scale
/// would take hours through per-user simulation — with `--exact` opting in
/// to the parallel per-user pipeline.
pub fn sim_mode(args: &Args) -> idldp_sim::SimulationMode {
    if args.flag("exact") {
        idldp_sim::SimulationMode::Exact
    } else {
        idldp_sim::SimulationMode::Aggregate
    }
}

/// The ε sweep used by Fig. 3 and Fig. 4(a): `{1.0, 1.5, 2.0, 2.5, 3.0}`.
pub fn epsilon_sweep_short() -> Vec<f64> {
    vec![1.0, 1.5, 2.0, 2.5, 3.0]
}

/// The ε sweep used by Fig. 4(b): `{1..6}`.
pub fn epsilon_sweep_long() -> Vec<f64> {
    vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Args {
        Args::from_tokens(s.split_whitespace().map(String::from))
    }

    #[test]
    fn parses_flags_and_values() {
        let a = parse("--full --trials 7 --seed 13 --csv");
        assert!(a.full());
        assert!(a.csv());
        assert_eq!(a.trials(3), 7);
        assert_eq!(a.seed(), 13);
    }

    #[test]
    fn defaults_apply() {
        let a = parse("");
        assert!(!a.full());
        assert_eq!(a.trials(5), 5);
        assert_eq!(a.seed(), DEFAULT_SEED);
        assert_eq!(a.get("eps", 2.5), 2.5);
    }

    #[test]
    fn bad_values_fall_back() {
        let a = parse("--trials abc");
        assert_eq!(a.trials(4), 4);
    }

    #[test]
    fn trials_floor_is_one() {
        let a = parse("--trials 0");
        assert_eq!(a.trials(5), 1);
    }

    #[test]
    fn sweeps_match_paper() {
        assert_eq!(epsilon_sweep_short(), vec![1.0, 1.5, 2.0, 2.5, 3.0]);
        assert_eq!(epsilon_sweep_long().len(), 6);
    }
}
