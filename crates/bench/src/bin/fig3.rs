//! Regenerates **Fig. 3**: empirical (markers) vs theoretical (lines) MSE
//! of RAPPOR, OUE, and MinID-LDP IDUE (opt0/opt1/opt2) on the synthetic
//! Power-law (n = 100k, m = 100) and Uniform (n = 100k, m = 1000) datasets,
//! sweeping the base budget ε over {1, 1.5, 2, 2.5, 3}.
//!
//! Budgets: four levels {ε, 1.2ε, 2ε, 4ε} with the default distribution
//! {5%, 5%, 5%, 85%}. The expected shape: IDUE-opt0 lowest, opt1/opt2 close
//! behind, OUE next, RAPPOR worst; empirical ≈ theoretical everywhere.
//!
//! Runs at paper scale by default (the aggregate simulation path makes it
//! cheap); `--small` shrinks it for smoke tests.

use idldp_bench::{emit, epsilon_sweep_short, Args};
use idldp_core::budget::Epsilon;
use idldp_data::budgets::BudgetScheme;
use idldp_data::synthetic;
use idldp_num::rng::stream_rng;
use idldp_sim::report::{sci, TextTable};
use idldp_sim::{MechanismSpec, SingleItemExperiment};

fn main() {
    let args = Args::parse();
    let small = args.flag("small");
    let (n_pl, m_pl, n_un, m_un) = if small {
        (10_000, 50, 10_000, 200)
    } else {
        (
            synthetic::POWER_LAW_USERS,
            synthetic::POWER_LAW_DOMAIN,
            synthetic::UNIFORM_USERS,
            synthetic::UNIFORM_DOMAIN,
        )
    };
    let trials = args.trials(10);
    let seed = args.seed();
    let specs = MechanismSpec::fig3_lineup();

    for (label, dataset) in [
        (
            "Power-law",
            synthetic::power_law_with(&mut stream_rng(seed, 1), n_pl, m_pl, 2.0),
        ),
        (
            "Uniform",
            synthetic::uniform_with(&mut stream_rng(seed, 2), n_un, m_un),
        ),
    ] {
        println!(
            "Fig. 3 ({label}): n = {}, m = {}, trials = {trials}",
            dataset.num_users(),
            dataset.domain_size()
        );
        let mut table = TextTable::new(&[
            "eps",
            "mechanism",
            "empirical MSE",
            "theoretical MSE",
            "stderr",
        ]);
        for &eps in &epsilon_sweep_short() {
            let base = Epsilon::new(eps).expect("positive eps");
            // Same assignment stream across ε so the item→level map is
            // stable along the sweep (only the budget values scale).
            let levels = BudgetScheme::paper_default()
                .assign(dataset.domain_size(), base, &mut stream_rng(seed, 3))
                .expect("valid assignment");
            let exp = SingleItemExperiment::new(&dataset, levels, trials, seed)
                .with_mode(idldp_bench::sim_mode(&args));
            let results = exp.run(&specs).expect("experiment runs");
            for r in &results {
                table.row(vec![
                    format!("{eps:.1}"),
                    r.name.clone(),
                    sci(r.empirical_mse),
                    sci(r.theoretical_mse),
                    sci(r.empirical_mse_stderr),
                ]);
            }
        }
        emit(&table, args.csv());
        println!();
    }
}
