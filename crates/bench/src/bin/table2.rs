//! Regenerates **Table II**: the toy 5-category medical survey comparing
//! RAPPOR, OUE and IDUE under ε₁ = ln 4 (HIV) and ε₂..₅ = ln 6 (others).
//!
//! Prints, per mechanism: the per-bit flip probabilities, the per-bit
//! variance coefficients (the `k·n + c·c*_i` decomposition the paper
//! tabulates), and the total variance (a range for IDUE, whose linear term
//! depends on the data distribution). Paper reference values are shown
//! beside the measured ones. `--empirical` additionally validates one cell
//! by simulation.

use idldp_bench::{emit, Args};
use idldp_core::budget::Epsilon;
use idldp_core::levels::LevelPartition;
use idldp_core::params::LevelParams;
use idldp_opt::{IdueSolver, Model};
use idldp_sim::report::TextTable;

/// Per-bit variance decomposition `Var[ĉ_i] = k·n + c·c*_i` (Eq. 9).
fn var_coeffs(a: f64, b: f64) -> (f64, f64) {
    let k = b * (1.0 - b) / ((a - b) * (a - b));
    let c = (1.0 - a - b) / (a - b);
    (k, c)
}

/// Total variance range over data distributions: the variance sum plus the
/// linear terms evaluated at the best/worst placement of the n users.
fn total_range(params: &LevelParams, counts: &[usize], n_scale: f64) -> (f64, f64) {
    let mut sum = 0.0;
    let mut cmin = f64::INFINITY;
    let mut cmax = f64::NEG_INFINITY;
    for i in 0..params.num_levels() {
        let (k, c) = var_coeffs(params.a()[i], params.b()[i]);
        sum += counts[i] as f64 * k;
        cmin = cmin.min(c);
        cmax = cmax.max(c);
    }
    (
        n_scale * (sum + cmin.max(0.0)),
        n_scale * (sum + cmax.max(0.0)),
    )
}

fn main() {
    let args = Args::parse();
    let eps1 = Epsilon::new(4.0_f64.ln()).expect("ln 4 > 0");
    let eps2 = Epsilon::new(6.0_f64.ln()).expect("ln 6 > 0");
    let levels =
        LevelPartition::new(vec![0, 1, 1, 1, 1], vec![eps1, eps2]).expect("valid toy partition");

    println!("Table II: toy example, eps_1 = ln 4 (HIV), eps_i = ln 6 (others), m = 5");
    println!();

    // RAPPOR and OUE run at min(E) = ln 4.
    let a_rap = 2.0 / 3.0; // e^{ln4/2}/(e^{ln4/2}+1) = 2/3
    let rappor = LevelParams::uniform(2, a_rap, 1.0 - a_rap).expect("valid");
    let oue = LevelParams::uniform(2, 0.5, 0.2).expect("valid"); // b = 1/(4+1)
    let idue = IdueSolver::new(Model::Opt0)
        .solve(&levels)
        .expect("toy problem is feasible");

    let mut table = TextTable::new(&[
        "mechanism",
        "flip(i=1|x=1)",
        "flip(i>1|x=1)",
        "flip(i=1|x=0)",
        "flip(i>1|x=0)",
        "Var (i=1)",
        "Var (i>1)",
        "total variance",
        "paper",
    ]);

    let counts = [1usize, 4];
    for (name, params, paper_total) in [
        ("RAPPOR", &rappor, "10n"),
        ("OUE", &oue, "9.9n"),
        ("IDUE (opt0)", &idue, "8.68n ~ 8.86n"),
    ] {
        let (k1, c1) = var_coeffs(params.a()[0], params.b()[0]);
        let (k2, c2) = var_coeffs(params.a()[1], params.b()[1]);
        let (lo, hi) = total_range(params, &counts, 1.0);
        let total = if (hi - lo).abs() < 1e-9 {
            format!("{lo:.2}n")
        } else {
            format!("{lo:.2}n ~ {hi:.2}n")
        };
        table.row(vec![
            name.into(),
            format!("{:.2}", 1.0 - params.a()[0]),
            format!("{:.2}", 1.0 - params.a()[1]),
            format!("{:.2}", params.b()[0]),
            format!("{:.2}", params.b()[1]),
            format!("{k1:.2}n + {c1:.2}c*"),
            format!("{k2:.2}n + {c2:.2}c*"),
            total,
            paper_total.into(),
        ]);
    }
    emit(&table, args.csv());

    println!();
    println!(
        "paper flip probabilities — RAPPOR: 0.33/0.33/0.33/0.33, OUE: 0.5/0.5/0.2/0.2, \
         IDUE: 0.41/0.33/0.33/0.28"
    );

    if args.flag("empirical") {
        use idldp_data::dataset::SingleItemDataset;
        use idldp_num::rng::stream_rng;
        use idldp_sim::{MechanismSpec, SingleItemExperiment};
        // Uniform truth over the 5 categories, n = 100k.
        let n = args.get("n", 100_000usize);
        let items: Vec<u32> = (0..n).map(|i| (i % 5) as u32).collect();
        let ds = SingleItemDataset::new(items, 5);
        let _ = stream_rng(args.seed(), 0); // reserved stream for parity with other bins
        let exp = SingleItemExperiment::new(&ds, levels, args.trials(100), args.seed())
            .with_mode(idldp_bench::sim_mode(&args));
        let results = exp
            .run(&[
                MechanismSpec::Rappor,
                MechanismSpec::Oue,
                MechanismSpec::Idue(Model::Opt0),
            ])
            .expect("toy experiment runs");
        println!();
        let mut et = TextTable::new(&[
            "mechanism",
            "empirical total Var (x n)",
            "theoretical (x n)",
        ]);
        for r in &results {
            et.row(vec![
                r.name.clone(),
                format!("{:.2}n", r.empirical_mse / n as f64),
                format!("{:.2}n", r.theoretical_mse / n as f64),
            ]);
        }
        emit(&et, args.csv());
    }
}
