//! Regenerates **Fig. 1**: the pairwise-budget graphs distinguishing LDP,
//! PLDP, geo-indistinguishability and ID-LDP on a 4-input example.
//!
//! The figure is conceptual (a drawing); this binary prints the edge
//! weights of each notion's complete graph so the structural difference —
//! which notion discriminates *pairs*, which discriminates *users*, which
//! needs a metric — is visible in text form.

use idldp_bench::{emit, Args};
use idldp_core::budget::BudgetSet;
use idldp_core::notion::Notion;
use idldp_sim::report::TextTable;

fn main() {
    let args = Args::parse();
    // Four inputs with the paper's default multipliers at base ε.
    let base = args.get("eps", 1.0);
    let budgets = [base, 1.2 * base, 2.0 * base, 4.0 * base];

    println!("Fig. 1: privacy budget of each pair of inputs under the four notions");
    println!("inputs x1..x4 with eps = {budgets:?}");
    println!();

    let mut table = TextTable::new(&[
        "pair",
        "LDP",
        "PLDP (eps_u)",
        "Geo-Ind (eps*d)",
        "MinID-LDP",
    ]);

    // LDP: the single worst-case budget min(E).
    let ldp_eps = budgets.iter().cloned().fold(f64::INFINITY, f64::min);
    // PLDP: a per-user budget (same for all pairs of this user's inputs).
    let eps_u = args.get("eps-user", 2.0 * base);
    // Geo-Ind: |i - j| as the toy metric.
    let geo_eps = base;
    // MinID-LDP: min of the two inputs' budgets.
    let set = BudgetSet::from_values(&budgets).expect("valid budgets");
    let minid = Notion::min_id_ldp(set);

    for i in 0..4usize {
        for j in (i + 1)..4 {
            let d = (j - i) as f64;
            table.row(vec![
                format!("(x{}, x{})", i + 1, j + 1),
                format!("{ldp_eps:.2}"),
                format!("{eps_u:.2}"),
                format!("{:.2}", geo_eps * d),
                format!("{:.2}", minid.pair_budget(i, j).expect("in range")),
            ]);
        }
    }
    emit(&table, args.csv());
    println!();
    println!(
        "LDP: one global budget (min over inputs). PLDP: per-user, pair-independent. \
         Geo-Ind: metric-scaled. MinID-LDP: min of the two inputs' own budgets."
    );
}
