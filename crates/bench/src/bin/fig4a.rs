//! Regenerates **Fig. 4(a)**: Kosarak (single-item view — each user's first
//! page), MSE vs ε for IDUE under three budget distributions
//! `{5,5,5,85}%`, `{10,10,10,70}%`, `{25,25,25,25}%`, against RAPPOR and
//! OUE (which run at min(E) and are distribution-independent).
//!
//! Expected shape: IDUE beats OUE/RAPPOR, with the gap shrinking as the
//! budget distribution becomes uniform — the paper's headline sensitivity
//! result. Defaults to a 2% surrogate scale; `--full` uses the published
//! Kosarak dimensions (~990k users, 41,270 pages).

use idldp_bench::{emit, epsilon_sweep_short, Args};
use idldp_core::budget::Epsilon;
use idldp_data::budgets::BudgetScheme;
use idldp_data::kosarak::{self, KosarakConfig};
use idldp_num::rng::stream_rng;
use idldp_opt::Model;
use idldp_sim::report::{sci, TextTable};
use idldp_sim::{MechanismSpec, SingleItemExperiment};

fn main() {
    let args = Args::parse();
    let config = if args.full() {
        KosarakConfig::paper()
    } else {
        KosarakConfig::scaled(args.get("scale", 0.02))
    };
    let trials = args.trials(5);
    let seed = args.seed();

    let sets = kosarak::generate(&mut stream_rng(seed, 1), &config);
    let dataset = sets.first_item_view();
    let m = dataset.domain_size();
    println!(
        "Fig. 4(a): Kosarak surrogate single-item view, n = {}, m = {m}, trials = {trials}",
        dataset.num_users()
    );

    let distributions: [(&str, [f64; 4]); 3] = [
        ("[5,5,5,85]", [0.05, 0.05, 0.05, 0.85]),
        ("[10,10,10,70]", [0.10, 0.10, 0.10, 0.70]),
        ("[25,25,25,25]", [0.25, 0.25, 0.25, 0.25]),
    ];

    let mut table = TextTable::new(&["eps", "mechanism", "budget dist", "empirical MSE", "stderr"]);
    for &eps in &epsilon_sweep_short() {
        let base = Epsilon::new(eps).expect("positive eps");
        // Baselines once per ε (distribution-independent: they use min(E)).
        let base_levels = BudgetScheme::paper_default()
            .assign(m, base, &mut stream_rng(seed, 2))
            .expect("valid assignment");
        let exp = SingleItemExperiment::new(&dataset, base_levels, trials, seed)
            .with_mode(idldp_bench::sim_mode(&args));
        for (spec, name) in [
            (MechanismSpec::Rappor, "RAPPOR"),
            (MechanismSpec::Oue, "OUE"),
        ] {
            let r = &exp.run(&[spec]).expect("experiment runs")[0];
            table.row(vec![
                format!("{eps:.1}"),
                name.into(),
                "-".into(),
                sci(r.empirical_mse),
                sci(r.empirical_mse_stderr),
            ]);
        }
        // IDUE per distribution.
        for (label, weights) in &distributions {
            let scheme = BudgetScheme::with_weights(*weights).expect("valid weights");
            let levels = scheme
                .assign(m, base, &mut stream_rng(seed, 2))
                .expect("valid assignment");
            let exp = SingleItemExperiment::new(&dataset, levels, trials, seed)
                .with_mode(idldp_bench::sim_mode(&args));
            let r = &exp
                .run(&[MechanismSpec::Idue(Model::Opt0)])
                .expect("experiment runs")[0];
            table.row(vec![
                format!("{eps:.1}"),
                "IDUE".into(),
                (*label).into(),
                sci(r.empirical_mse),
                sci(r.empirical_mse_stderr),
            ]);
        }
    }
    emit(&table, args.csv());
    println!();
    println!(
        "expected shape: IDUE < OUE < RAPPOR; the IDUE advantage shrinks as the \
         budget distribution approaches uniform [25,25,25,25]."
    );
}
