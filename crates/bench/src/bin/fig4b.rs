//! Regenerates **Fig. 4(b)**: Retail (item-set input), MSE vs ε ∈ [1, 6]
//! for RAPPOR-PS, OUE-PS, IDUE-PS with the default four-level budgets
//! (t = 4), and IDUE-PS with 20 exponential levels (t = 20).
//!
//! Expected shape: both IDUE-PS variants beat the PS baselines across the
//! sweep. Defaults to a 10% surrogate scale; `--full` uses the published
//! Retail dimensions (88,162 baskets, 16,470 products). The padding length
//! defaults to the dataset's 90th-percentile basket size (the PS paper's
//! heuristic); override with `--padding L`.

use idldp_bench::{emit, epsilon_sweep_long, Args};
use idldp_core::budget::Epsilon;
use idldp_data::budgets::BudgetScheme;
use idldp_data::retail::{self, RetailConfig};
use idldp_num::rng::stream_rng;
use idldp_opt::Model;
use idldp_sim::report::{sci, TextTable};
use idldp_sim::{ItemSetExperiment, MechanismSpec};

fn main() {
    let args = Args::parse();
    let config = if args.full() {
        RetailConfig::paper()
    } else {
        RetailConfig::scaled(args.get("scale", 0.1))
    };
    let trials = args.trials(5);
    let seed = args.seed();

    let dataset = retail::generate(&mut stream_rng(seed, 1), &config);
    let m = dataset.domain_size();
    let padding = args.get("padding", dataset.percentile_set_size(0.9).max(1));
    println!(
        "Fig. 4(b): Retail surrogate item-set input, n = {}, m = {m}, mean |x| = {:.1}, \
         l = {padding}, trials = {trials}",
        dataset.num_users(),
        dataset.mean_set_size()
    );

    let mut table = TextTable::new(&["eps", "mechanism", "empirical MSE", "stderr"]);
    for &eps in &epsilon_sweep_long() {
        let base = Epsilon::new(eps).expect("positive eps");
        let levels_t4 = BudgetScheme::paper_default()
            .assign(m, base, &mut stream_rng(seed, 2))
            .expect("valid assignment");
        let levels_t20 = BudgetScheme::exponential_20()
            .assign(m, base, &mut stream_rng(seed, 3))
            .expect("valid assignment");

        let exp4 = ItemSetExperiment::new(&dataset, levels_t4, padding, trials, seed)
            .with_mode(idldp_bench::sim_mode(&args));
        let results = exp4
            .run(&[
                MechanismSpec::Rappor,
                MechanismSpec::Oue,
                MechanismSpec::Idue(Model::Opt0),
            ])
            .expect("experiment runs");
        for (r, name) in results.iter().zip(["RAPPOR-PS", "OUE-PS", "IDUE-PS (t=4)"]) {
            table.row(vec![
                format!("{eps:.0}"),
                name.into(),
                sci(r.empirical_mse),
                sci(r.empirical_mse_stderr),
            ]);
        }
        let exp20 = ItemSetExperiment::new(&dataset, levels_t20, padding, trials, seed)
            .with_mode(idldp_bench::sim_mode(&args));
        // t = 20 uses the convex opt1 model: the paper notes opt0's cost
        // grows with t; opt1 stays near-optimal and scales.
        let r = &exp20
            .run(&[MechanismSpec::Idue(Model::Opt1)])
            .expect("experiment runs")[0];
        table.row(vec![
            format!("{eps:.0}"),
            "IDUE-PS (t=20)".into(),
            sci(r.empirical_mse),
            sci(r.empirical_mse_stderr),
        ]);
    }
    emit(&table, args.csv());
    println!();
    println!("expected shape: both IDUE-PS variants below OUE-PS, RAPPOR-PS worst.");
}
