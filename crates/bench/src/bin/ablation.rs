//! Ablation harness for the design choices called out in DESIGN.md §8:
//!
//! 1. **r-function** — MinID vs AvgID vs MaxID-LDP: how much utility does
//!    each instantiation of ID-LDP buy (at what leakage)?
//! 2. **optimization model** — opt0 vs opt1 vs opt2 worst-case objective
//!    across budget-skew settings (the `opt0 <= min(opt1, opt2)` dominance).
//! 3. **policy graph** — complete vs group (Section IV-C): the >2·min(E)
//!    gain from incomplete protection requirements.
//!
//! Run: `cargo run --release -p idldp-bench --bin ablation`

use idldp_bench::{emit, Args};
use idldp_core::budget::Epsilon;
use idldp_core::levels::LevelPartition;
use idldp_core::notion::RFunction;
use idldp_core::policy::PolicyGraph;
use idldp_opt::{worst_case_objective, IdueSolver, Model};
use idldp_sim::report::TextTable;

fn eps(v: f64) -> Epsilon {
    Epsilon::new(v).expect("positive budget")
}

/// The paper's default 4-level structure at base ε over 100 items.
fn default_levels(base: f64) -> LevelPartition {
    let budgets = vec![eps(base), eps(1.2 * base), eps(2.0 * base), eps(4.0 * base)];
    let level_of = (0..100)
        .map(|i| match i % 20 {
            0 => 0,
            1 => 1,
            2 => 2,
            _ => 3,
        })
        .collect();
    LevelPartition::new(level_of, budgets).expect("valid structure")
}

fn ablate_r_functions(args: &Args) {
    println!("ablation 1: r-function (notion instantiation), opt1 model, base eps = 1");
    let levels = default_levels(1.0);
    let counts = levels.counts();
    let mut table = TextTable::new(&["r-function", "worst-case objective (x n)", "actual LDP eps"]);
    for r in [RFunction::Min, RFunction::Avg, RFunction::Max] {
        let params = IdueSolver::new(Model::Opt1)
            .with_r(r)
            .solve(&levels)
            .expect("feasible");
        let (ldp_eps, _) = params.max_pair_ratio();
        table.row(vec![
            r.name().into(),
            format!("{:.3}", worst_case_objective(&params, counts)),
            format!("{ldp_eps:.4}"),
        ]);
    }
    emit(&table, args.csv());
    println!("(looser r ⇒ better utility but weaker pairwise protection)\n");
}

fn ablate_opt_models(args: &Args) {
    println!("ablation 2: optimization model across budget skews (Eq. 10 objective, x n)");
    let mut table = TextTable::new(&["budgets", "opt0", "opt1", "opt2", "opt0 wins by"]);
    for (label, budgets) in [
        ("uniform {1,1,1,1}x", vec![1.0, 1.0001, 1.0002, 1.0003]),
        ("default {1,1.2,2,4}", vec![1.0, 1.2, 2.0, 4.0]),
        ("extreme {1,4,8,16}", vec![1.0, 4.0, 8.0, 16.0]),
    ] {
        let level_of = (0..100)
            .map(|i| match i % 20 {
                0 => 0,
                1 => 1,
                2 => 2,
                _ => 3,
            })
            .collect();
        let levels = LevelPartition::new(level_of, budgets.iter().map(|&b| eps(b)).collect())
            .expect("valid");
        let counts = levels.counts();
        let values: Vec<f64> = Model::ALL
            .iter()
            .map(|&m| {
                let p = IdueSolver::new(m).solve(&levels).expect("feasible");
                worst_case_objective(&p, counts)
            })
            .collect();
        let best_convex = values[1].min(values[2]);
        table.row(vec![
            label.into(),
            format!("{:.3}", values[0]),
            format!("{:.3}", values[1]),
            format!("{:.3}", values[2]),
            format!("{:+.2}%", 100.0 * (best_convex - values[0]) / best_convex),
        ]);
    }
    emit(&table, args.csv());
    println!("(opt0 never loses; the convex models stay within a few percent)\n");
}

fn ablate_policy_graphs(args: &Args) {
    println!("ablation 3: policy graphs (Section IV-C), 3 levels {{0.5, 2, 4}}, opt1");
    let budgets = vec![eps(0.5), eps(2.0), eps(4.0)];
    let level_of = (0..60)
        .map(|i| match i % 10 {
            0 => 0,
            1 | 2 => 1,
            _ => 2,
        })
        .collect();
    let levels = LevelPartition::new(level_of, budgets).expect("valid");
    let counts = levels.counts();
    let mut table = TextTable::new(&[
        "policy",
        "protected pairs",
        "objective (x n)",
        "worst unprotected ln-ratio",
    ]);
    for (label, graph) in [
        ("complete", PolicyGraph::complete(3).expect("valid")),
        (
            "group {1-2 only}",
            PolicyGraph::from_edges(3, &[(1, 2)]).expect("valid"),
        ),
        (
            "self-pairs only",
            PolicyGraph::from_edges(3, &[]).expect("valid"),
        ),
    ] {
        let params = IdueSolver::new(Model::Opt1)
            .with_policy(graph.clone())
            .solve(&levels)
            .expect("feasible");
        let mut worst_unprotected: f64 = 0.0;
        for i in 0..3 {
            for j in 0..3 {
                if !graph.is_protected(i, j) {
                    worst_unprotected = worst_unprotected.max(params.pair_log_ratio(i, j));
                }
            }
        }
        table.row(vec![
            label.into(),
            graph.protected_pairs().to_string(),
            format!("{:.3}", worst_case_objective(&params, counts)),
            if graph.is_complete() {
                "-".into()
            } else {
                format!("{worst_unprotected:.3}")
            },
        ]);
    }
    emit(&table, args.csv());
    println!(
        "(dropping cross-group protection lets unprotected pairs exceed Lemma 1's \
         2 min(E) = 1.0 cap, buying utility)"
    );
}

fn ablate_direct_matrix(args: &Args) {
    use idldp_opt::direct::{solve_direct, worst_case_unit_variance, DirectOptions};
    println!("ablation 4: direct matrix optimization vs IDUE on the Table II domain (m = 5)");
    // The Table II toy: item 0 at ln 4, items 1..5 at ln 6.
    let levels = LevelPartition::new(
        vec![0, 1, 1, 1, 1],
        vec![eps(4.0_f64.ln()), eps(6.0_f64.ln())],
    )
    .expect("valid structure");
    let mut table = TextTable::new(&["mechanism", "worst-case per-user variance (x n)"]);

    // GRR at min(E) — the classic small-domain baseline.
    let grr =
        idldp_core::matrix_mech::PerturbationMatrix::grr(eps(4.0_f64.ln()), 5).expect("valid");
    let grr_probs: Vec<Vec<f64>> = (0..5)
        .map(|x| (0..5).map(|y| grr.prob(x, y)).collect())
        .collect();
    table.row(vec![
        "GRR @ min(E)".into(),
        format!("{:.3}", worst_case_unit_variance(&grr_probs)),
    ]);

    // Direct matrix under MinID-LDP.
    let direct = solve_direct(&levels, RFunction::Min, &DirectOptions::default())
        .expect("small domain is feasible");
    let direct_probs: Vec<Vec<f64>> = (0..5)
        .map(|x| (0..5).map(|y| direct.prob(x, y)).collect())
        .collect();
    table.row(vec![
        "direct matrix (MinID-LDP)".into(),
        format!("{:.3}", worst_case_unit_variance(&direct_probs)),
    ]);

    // IDUE for reference (different output space — m-bit vectors — but the
    // same worst-case total-MSE scale per user).
    let idue = IdueSolver::new(Model::Opt0)
        .solve(&levels)
        .expect("feasible");
    table.row(vec![
        "IDUE opt0 (MinID-LDP)".into(),
        format!("{:.3}", worst_case_objective(&idue, levels.counts())),
    ]);
    emit(&table, args.csv());
    println!(
        "(at tiny m GRR-style categorical mechanisms beat unary encoding — the known \
         m < 3e^eps + 2 regime — and the direct search confirms GRR@min(E) is already \
         near-optimal here; IDUE's unary encoding pays for its scalability to large m, \
         where GRR's q = 1/(e^eps + m - 1) collapses)"
    );
}

fn main() {
    let args = Args::parse();
    ablate_r_functions(&args);
    ablate_opt_models(&args);
    ablate_policy_graphs(&args);
    ablate_direct_matrix(&args);
}
