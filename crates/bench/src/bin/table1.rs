//! Regenerates **Table I**: bounds of the prior–posterior leakage
//! `Pr(x)/Pr(x|y)` under LDP, PLDP, geo-indistinguishability and MinID-LDP.
//!
//! The paper's table states the bounds symbolically; this binary evaluates
//! them on the paper's default budget setting (`E = {ε, 1.2ε, 2ε, 4ε}` with
//! base ε) for each representative input, and a toy 4-point geo setting for
//! the geo-ind row. Run with `--eps 1.0` to change the base budget.

use idldp_bench::{emit, Args};
use idldp_core::budget::{BudgetSet, Epsilon};
use idldp_core::leakage;
use idldp_sim::report::TextTable;

fn main() {
    let args = Args::parse();
    let base = args.get("eps", 1.0);
    let eps = Epsilon::new(base).expect("--eps must be positive");

    println!("Table I: bounds of prior-posterior Pr(x)/Pr(x|y)  (base eps = {base})");
    println!();

    let mut table = TextTable::new(&["notion", "input", "lower bound", "upper bound"]);

    // LDP at eps = min(E): one row, input-independent.
    let ldp = leakage::ldp_bound(eps);
    table.row(vec![
        "LDP".into(),
        "any x".into(),
        format!("{:.4}  (e^-eps)", ldp.lower),
        format!("{:.4}  (e^eps)", ldp.upper),
    ]);

    // PLDP for a user with personal budget 2eps.
    let eps_u = Epsilon::new(2.0 * base).expect("positive");
    let pldp = leakage::pldp_bound(eps_u);
    table.row(vec![
        "PLDP".into(),
        "any x (eps_u=2eps)".into(),
        format!("{:.4}  (e^-eps_u)", pldp.lower),
        format!("{:.4}  (e^eps_u)", pldp.upper),
    ]);

    // Geo-indistinguishability on a toy 4-point line with uniform prior.
    let prior = [0.25; 4];
    let distances = [0.0, 1.0, 2.0, 3.0];
    let geo = leakage::geo_ind_bound(eps, &prior, &distances).expect("valid toy setting");
    table.row(vec![
        "Geo-Ind".into(),
        "x at d=(0,1,2,3)".into(),
        format!("{:.4}  (sum pr e^-eps d)", geo.lower),
        format!("{:.4}  (sum pr e^eps d)", geo.upper),
    ]);

    // MinID-LDP with the paper's default multipliers: one row per level.
    let budgets =
        BudgetSet::from_values(&[base, 1.2 * base, 2.0 * base, 4.0 * base]).expect("valid budgets");
    for (x, label) in [
        (0usize, "x with eps_x=eps"),
        (1, "x with eps_x=1.2eps"),
        (2, "x with eps_x=2eps"),
        (3, "x with eps_x=4eps"),
    ] {
        let b = leakage::min_id_ldp_bound(&budgets, x).expect("in range");
        table.row(vec![
            "MinID-LDP".into(),
            label.into(),
            format!("{:.4}", b.lower),
            format!("{:.4}  (e^min(eps_x, 2 min E))", b.upper),
        ]);
    }

    emit(&table, args.csv());
    println!();
    println!(
        "note: MinID-LDP bounds are input-discriminative; the 4eps input is capped \
         by Lemma 1 at 2*min(E) = {:.4}.",
        2.0 * base
    );
}
