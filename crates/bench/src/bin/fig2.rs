//! Regenerates **Fig. 2**: the IDUE-PS pipeline — sample, encode, perturb
//! on the user side; summation and calibration on the server side.
//!
//! The figure is a diagram; this binary traces a real execution of
//! Algorithm 3 for two example users (the figure's u1 = {2,5,7}-style sets)
//! and then runs the full pipeline on a small population to show the
//! calibrated estimates converging to the truth.

use idldp_bench::Args;
use idldp_core::budget::Epsilon;
use idldp_core::idue_ps::IduePs;
use idldp_core::ps::SampledItem;
use idldp_num::rng::stream_rng;

fn bits_to_string(bits: &[bool]) -> String {
    bits.iter().map(|&b| if b { '1' } else { '0' }).collect()
}

fn main() {
    let args = Args::parse();
    let m = 8usize;
    let l = 3usize;
    let eps = Epsilon::new(args.get("eps", 4.0_f64.ln())).expect("positive eps");
    let mech = IduePs::oue_ps(m, eps, l).expect("valid mechanism");

    println!("Fig. 2: IDUE-PS pipeline trace (m = {m} items, l = {l}, OUE-PS parameters)");
    println!();
    println!("user-side: sample -> encode -> perturb");

    let users: Vec<Vec<usize>> = vec![vec![1, 4, 6], vec![4]];
    for (u, set) in users.iter().enumerate() {
        let mut rng = stream_rng(args.seed(), u as u64);
        let sampled = mech.sample_stage(set, &mut rng);
        let hot = sampled.encoded_index(m);
        let mut encoded = vec![false; m + l];
        encoded[hot] = true;
        let output = mech
            .unary_encoding()
            .perturb_one_hot(hot, &mut rng)
            .expect("hot in range");
        let sampled_desc = match sampled {
            SampledItem::Real(i) => format!("item {i}"),
            SampledItem::Dummy(j) => format!("dummy ⊥{j}"),
        };
        println!(
            "  u{}: input {:?}  --pad/sample-->  {}  --encode-->  {}  --perturb-->  {}",
            u + 1,
            set,
            sampled_desc,
            bits_to_string(&encoded),
            bits_to_string(&output),
        );
        println!(
            "      set budget eps_x = {:.4} (Eq. 17)",
            mech.set_budget(set).expect("in-domain set")
        );
    }

    println!();
    println!("server-side: summation + calibration  (c_hat_i = l * (c_i - n*b_i)/(a_i - b_i))");
    let n = args.get("n", 50_000usize);
    // Population: 60% hold {1,4,6}, 40% hold {4}.
    let sets: Vec<Vec<u32>> = (0..n)
        .map(|i| {
            if i % 5 < 3 {
                vec![1u32, 4, 6]
            } else {
                vec![4u32]
            }
        })
        .collect();
    let ds = idldp_data::dataset::ItemSetDataset::new(sets, m);
    let mut rng = stream_rng(args.seed(), 1_000_000);
    let counts = idldp_sim::aggregate::run_item_set(&mut rng, &mech, &ds);
    let est = mech
        .estimator(n as u64)
        .estimate(&counts[..m])
        .expect("sized counts");
    let truth = ds.true_counts();
    println!("  n = {n} users: 60% hold {{1,4,6}}, 40% hold {{4}}");
    println!("  item |   truth | estimate  (dummy-bit counts are ignored)");
    for i in 0..m {
        println!("  {i:>4} | {:>7.0} | {:>8.0}", truth[i], est[i]);
    }
}
