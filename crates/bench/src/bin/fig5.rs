//! Regenerates **Fig. 5**: Retail and MSNBC item-set data — total MSE of
//! all items (left panels) and MSE of the top-5 most frequent items (right
//! panels) as the padding length ℓ sweeps 1..6, for RAPPOR-PS, OUE-PS and
//! IDUE-PS.
//!
//! Expected shape: IDUE-PS below both baselines at every ℓ; ℓ trades bias
//! (too small — the estimator underestimates because the actual sampling
//! rate drops below 1/ℓ) against variance (too large — estimates are
//! multiplied by ℓ). Defaults to reduced surrogates; `--full` uses the
//! published dimensions.

use idldp_bench::{emit, Args};
use idldp_core::budget::Epsilon;
use idldp_data::budgets::BudgetScheme;
use idldp_data::dataset::ItemSetDataset;
use idldp_data::{msnbc, retail};
use idldp_num::rng::stream_rng;
use idldp_opt::Model;
use idldp_sim::report::{sci, TextTable};
use idldp_sim::{ItemSetExperiment, MechanismSpec};

fn run_dataset(label: &str, dataset: &ItemSetDataset, args: &Args) {
    let trials = args.trials(5);
    let seed = args.seed();
    let eps = args.get("eps", 2.0);
    let base = Epsilon::new(eps).expect("positive eps");
    let m = dataset.domain_size();
    println!(
        "Fig. 5 ({label}): n = {}, m = {m}, mean |x| = {:.1}, eps = {eps}, trials = {trials}",
        dataset.num_users(),
        dataset.mean_set_size()
    );
    let levels = BudgetScheme::paper_default()
        .assign(m, base, &mut stream_rng(seed, 2))
        .expect("valid assignment");
    let specs = [
        MechanismSpec::Rappor,
        MechanismSpec::Oue,
        MechanismSpec::Idue(Model::Opt0),
    ];
    let names = ["RAPPOR-PS", "OUE-PS", "IDUE-PS"];
    let mut table = TextTable::new(&["l", "mechanism", "total MSE (all items)", "MSE (top-5)"]);
    for l in 1..=6usize {
        let exp = ItemSetExperiment::new(dataset, levels.clone(), l, trials, seed)
            .with_mode(idldp_bench::sim_mode(args));
        let results = exp.run(&specs).expect("experiment runs");
        for (r, name) in results.iter().zip(names) {
            table.row(vec![
                l.to_string(),
                name.into(),
                sci(r.empirical_mse),
                sci(r.empirical_topk_mse),
            ]);
        }
    }
    emit(&table, args.csv());
    println!();
}

fn main() {
    let args = Args::parse();
    let seed = args.seed();
    let retail_cfg = if args.full() {
        retail::RetailConfig::paper()
    } else {
        retail::RetailConfig::scaled(args.get("scale", 0.1))
    };
    let msnbc_cfg = if args.full() {
        msnbc::MsnbcConfig::paper()
    } else {
        msnbc::MsnbcConfig::scaled(args.get("scale", 0.1))
    };
    let retail_ds = retail::generate(&mut stream_rng(seed, 10), &retail_cfg);
    run_dataset("Retail", &retail_ds, &args);
    let msnbc_ds = msnbc::generate(&mut stream_rng(seed, 11), &msnbc_cfg);
    run_dataset("MSNBC", &msnbc_ds, &args);
    println!(
        "expected shape: IDUE-PS below both baselines at every l; small l biases the \
         estimator (underestimation), large l inflates variance."
    );
}
