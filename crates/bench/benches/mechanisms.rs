//! Criterion micro-benchmarks: client-side perturbation and server-side
//! aggregation throughput.
//!
//! Measures one user's perturbation cost **through the unified trait API**
//! (`dyn Mechanism::perturb_into` with a reused report buffer, the compact
//! `perturb_data` wire emission, plus the batched
//! `BatchMechanism::perturb_batch` fast paths) for GRR, RAPPOR/OUE/IDUE
//! (unary encoding over m bits), OLH (hashed pairs), subset selection
//! (size-k item sets) and IDUE-PS (pad-and-sample plus m+ℓ bits), at the
//! domain sizes of the paper's datasets — and the server-side fold cost of
//! the compact wire shapes through the shape accumulators. Mechanisms are
//! built through the registry, so a newly registered protocol can be
//! benchmarked by adding its name to a list.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use idldp_core::budget::Epsilon;
use idldp_core::levels::LevelPartition;
use idldp_core::mechanism::{BatchMechanism, CountAccumulator, Input, InputBatch};
use idldp_num::rng::stream_rng;
use idldp_sim::stream::{ReportAccumulator, ShapedAccumulator};
use idldp_sim::{BuildContext, MechanismRegistry};
use std::hint::black_box;

fn eps(v: f64) -> Epsilon {
    Epsilon::new(v).unwrap()
}

fn four_level(m: usize) -> LevelPartition {
    let budgets = vec![eps(1.0), eps(1.2), eps(2.0), eps(4.0)];
    let level_of = (0..m)
        .map(|i| if i % 20 < 17 { 3 } else { i % 20 % 3 })
        .collect();
    LevelPartition::new(level_of, budgets).unwrap()
}

fn build(name: &str, m: usize, l: usize) -> Box<dyn BatchMechanism> {
    let levels = four_level(m);
    let ctx = BuildContext {
        levels: &levels,
        padding: l,
        solver: None,
    };
    let reg = MechanismRegistry::standard();
    if l > 0 {
        reg.build_item_set(name, &ctx).unwrap()
    } else {
        reg.build_single_item(name, &ctx).unwrap()
    }
}

fn bench_single_perturb(c: &mut Criterion) {
    let mut group = c.benchmark_group("perturb/one-report");
    for name in ["grr", "rappor", "oue", "idue-opt1", "olh", "ss"] {
        for m in [100usize, 1000] {
            let mech = build(name, m, 0);
            let mut report = vec![0u8; mech.report_len()];
            group.bench_with_input(BenchmarkId::new(name, m), &m, |b, _| {
                let mut rng = stream_rng(1, 0);
                b.iter(|| {
                    mech.perturb_into(black_box(Input::Item(7 % m)), &mut rng, &mut report)
                        .unwrap();
                    black_box(report[0])
                });
            });
        }
    }
    group.finish();
}

fn bench_item_set_perturb(c: &mut Criterion) {
    let mut group = c.benchmark_group("perturb/idue-ps");
    for (m, l) in [(100usize, 4usize), (1000, 8)] {
        let mech = build("idue-opt1", m, l);
        let set: Vec<u32> = (0..6).map(|i| (i * (m / 7)) as u32).collect();
        let mut report = vec![0u8; mech.report_len()];
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("m{m}-l{l}")),
            &m,
            |b, _| {
                let mut rng = stream_rng(4, 0);
                b.iter(|| {
                    mech.perturb_into(black_box(Input::Set(&set)), &mut rng, &mut report)
                        .unwrap();
                    black_box(report[0])
                });
            },
        );
    }
    group.finish();
}

fn bench_batch_fast_paths(c: &mut Criterion) {
    // The batched entry point: 1k users per call, accumulating counts
    // directly (what the simulation pipeline runs per chunk).
    let mut group = c.benchmark_group("perturb/batch-1k");
    group.sample_size(10);
    let users: Vec<u32> = (0..1000u32).map(|i| i % 100).collect();
    for name in ["grr", "oue", "idue-opt1", "olh", "ss"] {
        let mech = build(name, 100, 0);
        group.bench_function(name, |b| {
            let mut rng = stream_rng(9, 0);
            b.iter(|| {
                let mut acc = CountAccumulator::new(mech.report_len());
                mech.perturb_batch(InputBatch::Items(&users), &mut rng, &mut acc)
                    .unwrap();
                black_box(acc.num_users())
            });
        });
    }
    group.finish();
}

fn bench_compact_wire_emission(c: &mut Criterion) {
    // The shape-aware emission path: one compact wire report per call
    // (OLH's (seed, value) pair, subset selection's size-k item set, GRR's
    // bare value) — what a real transport would serialize, measured against
    // the folded `perturb_into` numbers above.
    let mut group = c.benchmark_group("perturb/wire-report");
    for name in ["grr", "olh", "ss"] {
        for m in [100usize, 1000] {
            let mech = build(name, m, 0);
            group.bench_with_input(BenchmarkId::new(name, m), &m, |b, _| {
                let mut rng = stream_rng(2, 0);
                b.iter(|| {
                    let data = mech
                        .perturb_data(black_box(Input::Item(7 % m)), &mut rng)
                        .unwrap();
                    black_box(data)
                });
            });
        }
    }
    group.finish();
}

fn bench_aggregate_fold(c: &mut Criterion) {
    // Server side of all four wire shapes: folding the same 1k native wire
    // reports as one `accumulate_batch` call into a persistent accumulator —
    // the ingest worker's steady state. OLH resolves `(seed, value)` pairs
    // from the hot preimage cache (an O(m) hash pass only on a miss),
    // bit rows carry-save-add through SWAR bit-planes, and subset selection
    // checks distinctness against a shared scratch row instead of sorting a
    // copy of every set.
    let mut group = c.benchmark_group("aggregate/fold-1k");
    group.sample_size(10);
    for name in ["oue", "grr", "olh", "ss"] {
        for m in [100usize, 1000] {
            let mech = build(name, m, 0);
            let mut rng = stream_rng(3, 0);
            let reports: Vec<_> = (0..1000)
                .map(|i| mech.perturb_data(Input::Item(i % m), &mut rng).unwrap())
                .collect();
            let views: Vec<_> = reports.iter().map(|r| r.as_report()).collect();
            group.bench_with_input(BenchmarkId::new(name, m), &m, |b, _| {
                let mut acc = ShapedAccumulator::for_mechanism(mech.as_ref());
                b.iter(|| {
                    acc.accumulate_batch(black_box(&views)).unwrap();
                    black_box(acc.num_users())
                });
            });
        }
    }
    group.finish();
}

fn bench_batched_vs_sequential(c: &mut Criterion) {
    // The fold-engine win in isolation: a cold accumulator per iteration
    // folds the same 1k reports either one `accumulate` call at a time
    // (the pre-batch ingest path) or through a single `accumulate_batch`.
    // Cold means every OLH seed misses the preimage cache, so the batched
    // OLH fold pays cache bookkeeping on top of the same O(m) hash passes —
    // the OLH payoff is the warm steady state `aggregate/fold-1k` measures.
    // Subset selection wins even cold (scratch-row validation beats
    // sorting a copy of every set).
    let mut group = c.benchmark_group("aggregate/batched-vs-sequential");
    group.sample_size(10);
    for name in ["olh", "ss"] {
        let m = 1000usize;
        let mech = build(name, m, 0);
        let mut rng = stream_rng(4, 0);
        let reports: Vec<_> = (0..1000)
            .map(|i| mech.perturb_data(Input::Item(i % m), &mut rng).unwrap())
            .collect();
        let views: Vec<_> = reports.iter().map(|r| r.as_report()).collect();
        group.bench_with_input(BenchmarkId::new(&format!("{name}-seq"), m), &m, |b, _| {
            b.iter(|| {
                let mut acc = ShapedAccumulator::for_mechanism(mech.as_ref());
                for r in &reports {
                    acc.accumulate(r.as_report()).unwrap();
                }
                black_box(acc.num_users())
            });
        });
        group.bench_with_input(
            BenchmarkId::new(&format!("{name}-batched"), m),
            &m,
            |b, _| {
                b.iter(|| {
                    let mut acc = ShapedAccumulator::for_mechanism(mech.as_ref());
                    acc.accumulate_batch(&views).unwrap();
                    black_box(acc.num_users())
                });
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_single_perturb,
    bench_item_set_perturb,
    bench_batch_fast_paths,
    bench_compact_wire_emission,
    bench_aggregate_fold,
    bench_batched_vs_sequential
);
criterion_main!(benches);
