//! Criterion micro-benchmarks: client-side perturbation and server-side
//! aggregation throughput.
//!
//! Measures one user's perturbation cost **through the unified trait API**
//! (`dyn Mechanism::perturb_into` with a reused report buffer, the compact
//! `perturb_data` wire emission, plus the batched
//! `BatchMechanism::perturb_batch` fast paths) for GRR, RAPPOR/OUE/IDUE
//! (unary encoding over m bits), OLH (hashed pairs), subset selection
//! (size-k item sets) and IDUE-PS (pad-and-sample plus m+ℓ bits), at the
//! domain sizes of the paper's datasets — and the server-side fold cost of
//! the compact wire shapes through the shape accumulators. Mechanisms are
//! built through the registry, so a newly registered protocol can be
//! benchmarked by adding its name to a list.
//!
//! The `checkpoint/*` groups measure the pluggable snapshot stores: one
//! save (`checkpoint/write/<backend>/m<domain>-t<traffic>`) after `t`
//! reports landed since the previous checkpoint, and one restore
//! (`checkpoint/restore/<backend>/m<domain>`), over domain sizes {1k,
//! 100k} × traffic {100, 100k}. The grid is the point: the flat `file`
//! backend rewrites O(domain) bytes per checkpoint no matter how little
//! arrived, while the `delta` backend's record is O(traffic) — CI gates on
//! delta being ≥ 5× faster at the sparse corner (m=100k, t=100). Files
//! live on `/dev/shm` when the host has it, so the numbers measure
//! serialization and layout, not disk latency.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use idldp_core::budget::Epsilon;
use idldp_core::levels::LevelPartition;
use idldp_core::mechanism::{BatchMechanism, CountAccumulator, Input, InputBatch};
use idldp_core::snapshot::{open_store, AccumulatorSnapshot, StoreKind};
use idldp_num::rng::stream_rng;
use idldp_sim::stream::{ReportAccumulator, ShapedAccumulator};
use idldp_sim::{BuildContext, MechanismRegistry};
use std::hint::black_box;
use std::path::PathBuf;

fn eps(v: f64) -> Epsilon {
    Epsilon::new(v).unwrap()
}

fn four_level(m: usize) -> LevelPartition {
    let budgets = vec![eps(1.0), eps(1.2), eps(2.0), eps(4.0)];
    let level_of = (0..m)
        .map(|i| if i % 20 < 17 { 3 } else { i % 20 % 3 })
        .collect();
    LevelPartition::new(level_of, budgets).unwrap()
}

fn build(name: &str, m: usize, l: usize) -> Box<dyn BatchMechanism> {
    let levels = four_level(m);
    let ctx = BuildContext {
        levels: &levels,
        padding: l,
        solver: None,
    };
    let reg = MechanismRegistry::standard();
    if l > 0 {
        reg.build_item_set(name, &ctx).unwrap()
    } else {
        reg.build_single_item(name, &ctx).unwrap()
    }
}

fn bench_single_perturb(c: &mut Criterion) {
    let mut group = c.benchmark_group("perturb/one-report");
    for name in ["grr", "rappor", "oue", "idue-opt1", "olh", "ss"] {
        for m in [100usize, 1000] {
            let mech = build(name, m, 0);
            let mut report = vec![0u8; mech.report_len()];
            group.bench_with_input(BenchmarkId::new(name, m), &m, |b, _| {
                let mut rng = stream_rng(1, 0);
                b.iter(|| {
                    mech.perturb_into(black_box(Input::Item(7 % m)), &mut rng, &mut report)
                        .unwrap();
                    black_box(report[0])
                });
            });
        }
    }
    group.finish();
}

fn bench_item_set_perturb(c: &mut Criterion) {
    let mut group = c.benchmark_group("perturb/idue-ps");
    for (m, l) in [(100usize, 4usize), (1000, 8)] {
        let mech = build("idue-opt1", m, l);
        let set: Vec<u32> = (0..6).map(|i| (i * (m / 7)) as u32).collect();
        let mut report = vec![0u8; mech.report_len()];
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("m{m}-l{l}")),
            &m,
            |b, _| {
                let mut rng = stream_rng(4, 0);
                b.iter(|| {
                    mech.perturb_into(black_box(Input::Set(&set)), &mut rng, &mut report)
                        .unwrap();
                    black_box(report[0])
                });
            },
        );
    }
    group.finish();
}

fn bench_batch_fast_paths(c: &mut Criterion) {
    // The batched entry point: 1k users per call, accumulating counts
    // directly (what the simulation pipeline runs per chunk).
    let mut group = c.benchmark_group("perturb/batch-1k");
    group.sample_size(10);
    let users: Vec<u32> = (0..1000u32).map(|i| i % 100).collect();
    for name in ["grr", "oue", "idue-opt1", "olh", "ss"] {
        let mech = build(name, 100, 0);
        group.bench_function(name, |b| {
            let mut rng = stream_rng(9, 0);
            b.iter(|| {
                let mut acc = CountAccumulator::new(mech.report_len());
                mech.perturb_batch(InputBatch::Items(&users), &mut rng, &mut acc)
                    .unwrap();
                black_box(acc.num_users())
            });
        });
    }
    group.finish();
}

fn bench_compact_wire_emission(c: &mut Criterion) {
    // The shape-aware emission path: one compact wire report per call
    // (OLH's (seed, value) pair, subset selection's size-k item set, GRR's
    // bare value) — what a real transport would serialize, measured against
    // the folded `perturb_into` numbers above.
    let mut group = c.benchmark_group("perturb/wire-report");
    for name in ["grr", "olh", "ss"] {
        for m in [100usize, 1000] {
            let mech = build(name, m, 0);
            group.bench_with_input(BenchmarkId::new(name, m), &m, |b, _| {
                let mut rng = stream_rng(2, 0);
                b.iter(|| {
                    let data = mech
                        .perturb_data(black_box(Input::Item(7 % m)), &mut rng)
                        .unwrap();
                    black_box(data)
                });
            });
        }
    }
    group.finish();
}

fn bench_aggregate_fold(c: &mut Criterion) {
    // Server side of all four wire shapes: folding the same 1k native wire
    // reports as one `accumulate_batch` call into a persistent accumulator —
    // the ingest worker's steady state. OLH resolves `(seed, value)` pairs
    // from the hot preimage cache (an O(m) hash pass only on a miss),
    // bit rows carry-save-add through SWAR bit-planes, and subset selection
    // checks distinctness against a shared scratch row instead of sorting a
    // copy of every set.
    let mut group = c.benchmark_group("aggregate/fold-1k");
    group.sample_size(10);
    for name in ["oue", "grr", "olh", "ss"] {
        for m in [100usize, 1000] {
            let mech = build(name, m, 0);
            let mut rng = stream_rng(3, 0);
            let reports: Vec<_> = (0..1000)
                .map(|i| mech.perturb_data(Input::Item(i % m), &mut rng).unwrap())
                .collect();
            let views: Vec<_> = reports.iter().map(|r| r.as_report()).collect();
            group.bench_with_input(BenchmarkId::new(name, m), &m, |b, _| {
                let mut acc = ShapedAccumulator::for_mechanism(mech.as_ref());
                b.iter(|| {
                    acc.accumulate_batch(black_box(&views)).unwrap();
                    black_box(acc.num_users())
                });
            });
        }
    }
    group.finish();
}

fn bench_batched_vs_sequential(c: &mut Criterion) {
    // The fold-engine win in isolation: a cold accumulator per iteration
    // folds the same 1k reports either one `accumulate` call at a time
    // (the pre-batch ingest path) or through a single `accumulate_batch`.
    // Cold means every OLH seed misses the preimage cache, so the batched
    // OLH fold pays cache bookkeeping on top of the same O(m) hash passes —
    // the OLH payoff is the warm steady state `aggregate/fold-1k` measures.
    // Subset selection wins even cold (scratch-row validation beats
    // sorting a copy of every set).
    let mut group = c.benchmark_group("aggregate/batched-vs-sequential");
    group.sample_size(10);
    for name in ["olh", "ss"] {
        let m = 1000usize;
        let mech = build(name, m, 0);
        let mut rng = stream_rng(4, 0);
        let reports: Vec<_> = (0..1000)
            .map(|i| mech.perturb_data(Input::Item(i % m), &mut rng).unwrap())
            .collect();
        let views: Vec<_> = reports.iter().map(|r| r.as_report()).collect();
        group.bench_with_input(BenchmarkId::new(&format!("{name}-seq"), m), &m, |b, _| {
            b.iter(|| {
                let mut acc = ShapedAccumulator::for_mechanism(mech.as_ref());
                for r in &reports {
                    acc.accumulate(r.as_report()).unwrap();
                }
                black_box(acc.num_users())
            });
        });
        group.bench_with_input(
            BenchmarkId::new(&format!("{name}-batched"), m),
            &m,
            |b, _| {
                b.iter(|| {
                    let mut acc = ShapedAccumulator::for_mechanism(mech.as_ref());
                    acc.accumulate_batch(&views).unwrap();
                    black_box(acc.num_users())
                });
            },
        );
    }
    group.finish();
}

/// Scratch directory for checkpoint benches: tmpfs when the host has it,
/// so the measurements are serialization + layout, not disk latency.
fn bench_dir() -> PathBuf {
    let shm = PathBuf::from("/dev/shm");
    let base = if shm.is_dir() {
        shm
    } else {
        std::env::temp_dir()
    };
    let dir = base.join(format!("idldp-bench-checkpoint-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create bench scratch dir");
    dir
}

/// The evolving accumulator state a checkpoint writer persists: per-shard
/// monotone counts, mutated in place between saves the way folded reports
/// mutate the server's shards.
struct Traffic {
    counts: Vec<Vec<u64>>,
    users: Vec<u64>,
    step: u64,
}

impl Traffic {
    /// The server's default shard count, so the persisted layout matches
    /// what a real `snapshot_shards()` hands the store.
    const SHARDS: usize = 8;

    fn new(m: usize) -> Self {
        Self {
            counts: vec![vec![0u64; m]; Self::SHARDS],
            users: vec![0u64; Self::SHARDS],
            step: 0,
        }
    }

    /// Applies `t` reports' worth of count growth, scattered across shards
    /// and buckets.
    fn apply(&mut self, t: usize) {
        let m = self.counts[0].len();
        for _ in 0..t {
            self.step = self.step.wrapping_add(1);
            let h = self.step.wrapping_mul(0x9e37_79b9_7f4a_7c15);
            let shard = (h >> 32) as usize % Self::SHARDS;
            self.counts[shard][h as usize % m] += 1;
            self.users[shard] += 1;
        }
    }

    /// Freezes the per-shard state, like `ShardedAccumulator::snapshot_shards`.
    fn snapshots(&self) -> Vec<AccumulatorSnapshot> {
        self.counts
            .iter()
            .zip(&self.users)
            .map(|(c, &u)| AccumulatorSnapshot::new(c.clone(), u).expect("nonzero width"))
            .collect()
    }
}

const CHECKPOINT_RUN_LINE: &str = "run idldp-bench checkpoint";

fn bench_checkpoint_write(c: &mut Criterion) {
    let dir = bench_dir();
    let mut group = c.benchmark_group("checkpoint/write");
    group.sample_size(10);
    for kind in StoreKind::ALL {
        for m in [1_000usize, 100_000] {
            for t in [100usize, 100_000] {
                let path = dir.join(format!("write-{kind}-{m}-{t}"));
                let mut traffic = Traffic::new(m);
                traffic.apply(t);
                let mut store = open_store(kind, &path);
                // Prime the store so delta measures its steady state (an
                // append after a base record), not the first compaction.
                store
                    .save(&traffic.snapshots(), CHECKPOINT_RUN_LINE)
                    .expect("priming save");
                group.bench_with_input(
                    BenchmarkId::new(&kind.to_string(), format!("m{m}-t{t}")),
                    &m,
                    |b, _| {
                        b.iter(|| {
                            traffic.apply(t);
                            store
                                .save(&traffic.snapshots(), CHECKPOINT_RUN_LINE)
                                .expect("checkpoint save");
                            black_box(traffic.step)
                        });
                    },
                );
            }
        }
    }
    group.finish();
    let _ = std::fs::remove_dir_all(&dir);
}

fn bench_checkpoint_restore(c: &mut Criterion) {
    let dir = bench_dir();
    let mut group = c.benchmark_group("checkpoint/restore");
    group.sample_size(10);
    for kind in StoreKind::ALL {
        for m in [1_000usize, 100_000] {
            let path = dir.join(format!("restore-{kind}-{m}"));
            // A few saves so the delta log holds a base plus deltas — the
            // shape a kill mid-run would actually restore from.
            let mut traffic = Traffic::new(m);
            let mut store = open_store(kind, &path);
            for _ in 0..4 {
                traffic.apply(1_000);
                store
                    .save(&traffic.snapshots(), CHECKPOINT_RUN_LINE)
                    .expect("checkpoint save");
            }
            drop(store);
            let want_users: u64 = traffic.users.iter().sum();
            group.bench_with_input(
                BenchmarkId::new(&kind.to_string(), format!("m{m}")),
                &m,
                |b, _| {
                    b.iter(|| {
                        let mut store = open_store(kind, &path);
                        let restored = store
                            .load()
                            .expect("checkpoint load")
                            .expect("checkpoint exists");
                        assert_eq!(restored.num_users(), want_users);
                        black_box(restored.num_users())
                    });
                },
            );
        }
    }
    group.finish();
    let _ = std::fs::remove_dir_all(&dir);
}

criterion_group!(
    benches,
    bench_single_perturb,
    bench_item_set_perturb,
    bench_batch_fast_paths,
    bench_compact_wire_emission,
    bench_aggregate_fold,
    bench_batched_vs_sequential,
    bench_checkpoint_write,
    bench_checkpoint_restore
);
criterion_main!(benches);
