//! Criterion micro-benchmarks: client-side perturbation throughput.
//!
//! Measures one user's perturbation cost for GRR, RAPPOR/OUE/IDUE (unary
//! encoding over m bits) and IDUE-PS (pad-and-sample plus m+ℓ bits), at the
//! domain sizes of the paper's datasets.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use idldp_core::budget::Epsilon;
use idldp_core::grr::GeneralizedRandomizedResponse;
use idldp_core::idue::Idue;
use idldp_core::idue_ps::IduePs;
use idldp_core::levels::LevelPartition;
use idldp_opt::{IdueSolver, Model};
use idldp_num::rng::stream_rng;
use std::hint::black_box;

fn eps(v: f64) -> Epsilon {
    Epsilon::new(v).unwrap()
}

fn four_level(m: usize) -> LevelPartition {
    let budgets = vec![eps(1.0), eps(1.2), eps(2.0), eps(4.0)];
    let level_of = (0..m).map(|i| if i % 20 < 17 { 3 } else { i % 20 % 3 }).collect();
    LevelPartition::new(level_of, budgets).unwrap()
}

fn bench_grr(c: &mut Criterion) {
    let mut group = c.benchmark_group("perturb/grr");
    for m in [16usize, 256, 4096] {
        let mech = GeneralizedRandomizedResponse::new(eps(1.0), m).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(m), &m, |b, _| {
            let mut rng = stream_rng(1, 0);
            b.iter(|| black_box(mech.perturb(black_box(3), &mut rng).unwrap()));
        });
    }
    group.finish();
}

fn bench_unary(c: &mut Criterion) {
    let mut group = c.benchmark_group("perturb/unary");
    for m in [100usize, 1000] {
        let oue = Idue::oue(m, eps(1.0)).unwrap();
        group.bench_with_input(BenchmarkId::new("oue", m), &m, |b, _| {
            let mut rng = stream_rng(2, 0);
            b.iter(|| black_box(oue.perturb_item(black_box(7 % m), &mut rng)));
        });
        let levels = four_level(m);
        let params = IdueSolver::new(Model::Opt1).solve(&levels).unwrap();
        let idue = Idue::new(levels, &params).unwrap();
        group.bench_with_input(BenchmarkId::new("idue-opt1", m), &m, |b, _| {
            let mut rng = stream_rng(3, 0);
            b.iter(|| black_box(idue.perturb_item(black_box(7 % m), &mut rng)));
        });
    }
    group.finish();
}

fn bench_idue_ps(c: &mut Criterion) {
    let mut group = c.benchmark_group("perturb/idue-ps");
    for (m, l) in [(100usize, 4usize), (1000, 8)] {
        let levels = four_level(m);
        let params = IdueSolver::new(Model::Opt1).solve(&levels).unwrap();
        let mech = IduePs::new(levels, &params, l).unwrap();
        let set: Vec<usize> = (0..6).map(|i| i * (m / 7)).collect();
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("m{m}-l{l}")),
            &m,
            |b, _| {
                let mut rng = stream_rng(4, 0);
                b.iter(|| black_box(mech.perturb_set(black_box(&set), &mut rng)));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_grr, bench_unary, bench_idue_ps);
criterion_main!(benches);
