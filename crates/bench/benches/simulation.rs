//! Criterion micro-benchmarks: exact (parallel pipeline) vs aggregate vs
//! streaming simulation paths, all through the unified trait API.
//!
//! The ablation behind the "two execution paths" decision: the exact path
//! performs `n·m` Bernoulli draws (chunked across cores by
//! `SimulationPipeline`), the aggregate path `O(n + m)` binomials. Both
//! produce identically distributed server-side counts. The streaming path
//! replays the exact path one report at a time through a
//! `ShardedAccumulator` — same counts bit for bit — and its overhead over
//! the batch pipeline is the price of online ingestion.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use idldp_core::budget::Epsilon;
use idldp_core::idue::Idue;
use idldp_core::idue_ps::IduePs;
use idldp_core::mechanism::{InputBatch, Mechanism};
use idldp_num::rng::stream_rng;
use idldp_sim::stream::{BitReportAccumulator, SeededReportStream, ShardedAccumulator};
use idldp_sim::{aggregate, SimulationPipeline};
use std::hint::black_box;

fn eps(v: f64) -> Epsilon {
    Epsilon::new(v).unwrap()
}

fn bench_single_item_paths(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulate/single-item");
    group.sample_size(10);
    for (n, m) in [(10_000usize, 100usize), (50_000, 100)] {
        let mech = Idue::oue(m, eps(1.0)).unwrap();
        let items: Vec<u32> = (0..n).map(|i| (i % m) as u32).collect();
        let pipeline = SimulationPipeline::new();
        group.bench_with_input(
            BenchmarkId::new("exact-parallel", format!("n{n}-m{m}")),
            &items,
            |b, items| {
                b.iter(|| black_box(pipeline.run(&mech, InputBatch::Items(items), 1).unwrap()))
            },
        );
        group.bench_with_input(
            BenchmarkId::new("exact-sequential", format!("n{n}-m{m}")),
            &items,
            |b, items| {
                b.iter(|| {
                    black_box(
                        pipeline
                            .run_sequential(&mech, InputBatch::Items(items), 1)
                            .unwrap(),
                    )
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("aggregate", format!("n{n}-m{m}")),
            &items,
            |b, items| {
                let mut rng = stream_rng(2, 0);
                b.iter(|| {
                    black_box(
                        aggregate::run_counts(&mut rng, &mech, InputBatch::Items(items)).unwrap(),
                    )
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("streaming-sharded", format!("n{n}-m{m}")),
            &items,
            |b, items| {
                b.iter(|| {
                    let sink = ShardedAccumulator::new(
                        BitReportAccumulator::new(mech.report_len()),
                        idldp_sim::stream::DEFAULT_SHARDS,
                    );
                    SeededReportStream::new(&mech, InputBatch::Items(items), 1)
                        .ingest_all(&sink)
                        .unwrap();
                    black_box(sink.snapshot())
                })
            },
        );
    }
    group.finish();
}

fn bench_item_set_paths(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulate/item-set");
    group.sample_size(10);
    let (n, m, l) = (10_000usize, 200usize, 4usize);
    let mech = IduePs::oue_ps(m, eps(1.0), l).unwrap();
    let sets: Vec<Vec<u32>> = (0..n)
        .map(|i| vec![(i % m) as u32, ((i + 7) % m) as u32, ((i + 31) % m) as u32])
        .collect();
    let pipeline = SimulationPipeline::new();
    group.bench_function("exact-parallel", |b| {
        b.iter(|| black_box(pipeline.run(&mech, InputBatch::Sets(&sets), 1).unwrap()))
    });
    group.bench_function("aggregate", |b| {
        let mut rng = stream_rng(3, 0);
        b.iter(|| {
            black_box(aggregate::run_counts(&mut rng, &mech, InputBatch::Sets(&sets)).unwrap())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_single_item_paths, bench_item_set_paths);
criterion_main!(benches);
