//! Criterion micro-benchmarks: exact vs aggregate simulation paths.
//!
//! The ablation behind DESIGN.md's "two execution paths" decision: the
//! exact path performs `n·m` Bernoulli draws, the aggregate path `O(n + m)`
//! binomials. Both produce identically distributed server-side counts.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use idldp_core::budget::Epsilon;
use idldp_core::idue::Idue;
use idldp_core::idue_ps::IduePs;
use idldp_data::dataset::{ItemSetDataset, SingleItemDataset};
use idldp_num::rng::stream_rng;
use idldp_sim::{aggregate, exact};
use std::hint::black_box;

fn eps(v: f64) -> Epsilon {
    Epsilon::new(v).unwrap()
}

fn single_item_dataset(n: usize, m: usize) -> SingleItemDataset {
    SingleItemDataset::new((0..n).map(|i| (i % m) as u32).collect(), m)
}

fn bench_single_item_paths(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulate/single-item");
    group.sample_size(10);
    for (n, m) in [(10_000usize, 100usize), (50_000, 100)] {
        let mech = Idue::oue(m, eps(1.0)).unwrap();
        let ds = single_item_dataset(n, m);
        group.bench_with_input(
            BenchmarkId::new("exact", format!("n{n}-m{m}")),
            &ds,
            |b, ds| b.iter(|| black_box(exact::run_single_item(&mech, ds, 1))),
        );
        group.bench_with_input(
            BenchmarkId::new("aggregate", format!("n{n}-m{m}")),
            &ds,
            |b, ds| {
                let mut rng = stream_rng(2, 0);
                b.iter(|| black_box(aggregate::run_single_item(&mut rng, &mech, ds)));
            },
        );
    }
    group.finish();
}

fn bench_item_set_paths(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulate/item-set");
    group.sample_size(10);
    let (n, m, l) = (10_000usize, 200usize, 4usize);
    let mech = IduePs::oue_ps(m, eps(1.0), l).unwrap();
    let sets: Vec<Vec<u32>> = (0..n)
        .map(|i| vec![(i % m) as u32, ((i + 7) % m) as u32, ((i + 31) % m) as u32])
        .collect();
    let ds = ItemSetDataset::new(sets, m);
    group.bench_function("exact", |b| {
        b.iter(|| black_box(exact::run_item_set(&mech, &ds, 1)))
    });
    group.bench_function("aggregate", |b| {
        let mut rng = stream_rng(3, 0);
        b.iter(|| black_box(aggregate::run_item_set(&mut rng, &mech, &ds)))
    });
    group.finish();
}

criterion_group!(benches, bench_single_item_paths, bench_item_set_paths);
criterion_main!(benches);
