//! Criterion micro-benchmarks: optimization-model solve time.
//!
//! The paper's scalability claim is that the IDUE optimization has `2t`
//! variables and `t²` constraints — independent of the domain size `m`.
//! These benches measure the three models across level counts (opt0 only
//! at small `t`; its Nelder–Mead search grows with dimension).
//!
//! Solver caching is bypassed by constructing a fresh solver per iteration
//! batch — we measure the solve, not the cache.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use idldp_core::budget::Epsilon;
use idldp_core::levels::LevelPartition;
use idldp_opt::{IdueSolver, Model};
use std::hint::black_box;

fn levels_with_t(t: usize) -> LevelPartition {
    let budgets = (0..t)
        .map(|i| Epsilon::new(1.0 + 3.0 * i as f64 / (t.max(2) - 1) as f64).unwrap())
        .collect();
    let level_of = (0..t * 10).map(|i| i % t).collect();
    LevelPartition::new(level_of, budgets).unwrap()
}

fn bench_convex_models(c: &mut Criterion) {
    let mut group = c.benchmark_group("solve/convex");
    for t in [2usize, 4, 10, 20] {
        let levels = levels_with_t(t);
        for model in [Model::Opt1, Model::Opt2] {
            group.bench_with_input(BenchmarkId::new(model.name(), t), &levels, |b, levels| {
                b.iter_with_setup(
                    || IdueSolver::new(model),
                    |solver| black_box(solver.solve(black_box(levels)).unwrap()),
                );
            });
        }
    }
    group.finish();
}

fn bench_opt0(c: &mut Criterion) {
    let mut group = c.benchmark_group("solve/opt0");
    group.sample_size(10);
    for t in [2usize, 4] {
        let levels = levels_with_t(t);
        group.bench_with_input(BenchmarkId::from_parameter(t), &levels, |b, levels| {
            b.iter_with_setup(
                || IdueSolver::new(Model::Opt0),
                |solver| black_box(solver.solve(black_box(levels)).unwrap()),
            );
        });
    }
    group.finish();
}

fn bench_cache_hit(c: &mut Criterion) {
    // The cached path, for contrast with the cold solves above.
    let levels = levels_with_t(4);
    let solver = IdueSolver::new(Model::Opt1);
    solver.solve(&levels).unwrap();
    c.bench_function("solve/cached-opt1-t4", |b| {
        b.iter(|| black_box(solver.solve(black_box(&levels)).unwrap()));
    });
}

criterion_group!(benches, bench_convex_models, bench_opt0, bench_cache_hit);
criterion_main!(benches);
