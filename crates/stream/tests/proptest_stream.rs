//! Property tests for the streaming accumulator layer.
//!
//! The central law under test: **any** sharding of a report set, under
//! **any** merge order, yields counts identical to feeding every report
//! into a single accumulator sequentially — for report streams generated
//! by all eight mechanisms, in their native wire shapes (bit vectors,
//! categorical values, hashed `(seed, value)` pairs, item sets).

use idldp_core::budget::Epsilon;
use idldp_core::grr::GeneralizedRandomizedResponse;
use idldp_core::idue::Idue;
use idldp_core::idue_ps::IduePs;
use idldp_core::levels::LevelPartition;
use idldp_core::matrix_mech::PerturbationMatrix;
use idldp_core::mechanism::{InputBatch, Mechanism};
use idldp_core::olh::OptimalLocalHashing;
use idldp_core::params::LevelParams;
use idldp_core::ps::PsMechanism;
use idldp_core::report::ReportData;
use idldp_core::snapshot::AccumulatorSnapshot;
use idldp_core::subset::SubsetSelection;
use idldp_num::rng::SplitMix64;
use idldp_stream::{
    BitReportAccumulator, HashedReportAccumulator, ItemSetReportAccumulator,
    OneHotReportAccumulator, ReportAccumulator, SeededReportStream, ShapedAccumulator,
    ShardedAccumulator,
};
use proptest::prelude::*;

/// Number of registered mechanism kinds the generators draw from.
const NUM_KINDS: usize = 8;

fn eps(v: f64) -> Epsilon {
    Epsilon::new(v).unwrap()
}

/// Builds one of the eight mechanisms by index, over a domain scaled to `m`.
fn mechanism(kind: usize, m: usize) -> Box<dyn Mechanism> {
    match kind {
        0 => Box::new(GeneralizedRandomizedResponse::new(eps(1.2), m).unwrap()),
        1 => Box::new(idldp_core::ue::UnaryEncoding::optimized(eps(1.0), m).unwrap()),
        2 => {
            let assignment: Vec<usize> = (0..m).map(|i| usize::from(i % 3 != 0)).collect();
            let levels = LevelPartition::new(assignment, vec![eps(1.0), eps(3.0)]).unwrap();
            let params = LevelParams::new(vec![0.59, 0.67], vec![0.33, 0.28]).unwrap();
            Box::new(Idue::new(levels, &params).unwrap())
        }
        3 => Box::new(PsMechanism::new(m, 2).unwrap()),
        4 => Box::new(IduePs::oue_ps(m, eps(2.0), 2).unwrap()),
        5 => Box::new(PerturbationMatrix::grr(eps(1.5), m).unwrap()),
        6 => Box::new(OptimalLocalHashing::new(eps(1.3), m).unwrap()),
        _ => Box::new(SubsetSelection::new(eps(1.1), m).unwrap()),
    }
}

fn inputs_for(mech: &dyn Mechanism, n: usize) -> OwnedInputs {
    let m = mech.domain_size();
    match mech.input_kind() {
        idldp_core::mechanism::InputKind::Item => {
            OwnedInputs::Items((0..n).map(|i| ((i * 13 + 5) % m) as u32).collect())
        }
        idldp_core::mechanism::InputKind::Set => OwnedInputs::Sets(
            (0..n)
                .map(|i| {
                    let a = (i % m) as u32;
                    let b = ((i / 3 + 1) % m) as u32;
                    if a == b {
                        vec![a]
                    } else {
                        vec![a.min(b), a.max(b)]
                    }
                })
                .collect(),
        ),
    }
}

enum OwnedInputs {
    Items(Vec<u32>),
    Sets(Vec<Vec<u32>>),
}

impl OwnedInputs {
    fn batch(&self) -> InputBatch<'_> {
        match self {
            OwnedInputs::Items(items) => InputBatch::Items(items),
            OwnedInputs::Sets(sets) => InputBatch::Sets(sets),
        }
    }
}

/// Collects all reports of a seeded stream into owned, native-shape values.
fn materialize(mech: &dyn Mechanism, inputs: InputBatch<'_>, seed: u64) -> Vec<ReportData> {
    let mut reports = Vec::with_capacity(inputs.len());
    let mut stream = SeededReportStream::new(mech, inputs, seed).with_chunk_size(64);
    loop {
        let got = stream
            .next_chunk_with(|r| {
                reports.push(r.to_data());
                Ok(())
            })
            .unwrap();
        if got == 0 {
            break;
        }
    }
    reports
}

/// Sequential reference: one accumulator, reports in order.
fn sequential<A: ReportAccumulator>(mut acc: A, reports: &[ReportData]) -> AccumulatorSnapshot {
    for r in reports {
        acc.accumulate(r.as_report()).unwrap();
    }
    acc.snapshot()
}

/// Sharded run with a pseudo-random report→shard assignment and a
/// pseudo-random shard merge order.
fn sharded_any_order<A: ReportAccumulator + Clone>(
    prototype: A,
    reports: &[ReportData],
    shards: usize,
    order_seed: u64,
) -> AccumulatorSnapshot {
    let mut rng = SplitMix64::new(order_seed);
    let sink = ShardedAccumulator::new(prototype.clone(), shards);
    for r in reports {
        let shard = (rng.next() % shards as u64) as usize;
        sink.push_to(shard, r.as_report()).unwrap();
    }
    let snap = sink.snapshot();
    // Independently: a shuffled pairwise merge tree over a random
    // partition of the same reports must land on the same state.
    let mut parts: Vec<AccumulatorSnapshot> = Vec::new();
    let mut order: Vec<usize> = (0..reports.len()).collect();
    for i in (1..order.len()).rev() {
        let j = (rng.next() % (i as u64 + 1)) as usize;
        order.swap(i, j);
    }
    let mut merged = AccumulatorSnapshot::empty(snap.report_len()).unwrap();
    for chunk in order.chunks(17) {
        let mut part = AccumulatorSnapshot::empty(snap.report_len()).unwrap();
        for &i in chunk {
            let mut one = prototype.clone();
            one.accumulate(reports[i].as_report()).unwrap();
            part.merge(&one.snapshot()).unwrap();
        }
        parts.push(part);
    }
    for part in &parts {
        merged.merge(part).unwrap();
    }
    assert_eq!(merged, snap, "shuffled merge differs from sharded snapshot");
    snap
}

/// Folds native-shape reports by hand via the core reference fold.
fn reference_fold(reports: &[ReportData], width: usize, range: usize) -> Vec<u64> {
    let mut counts = vec![0u64; width];
    for r in reports {
        r.fold_into(&mut counts, range).unwrap();
    }
    counts
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Any sharding/merge order equals sequential accumulation — all eight
    /// mechanisms, through the shape-dispatching accumulator in each
    /// mechanism's native wire shape.
    #[test]
    fn sharding_never_changes_counts(
        kind in 0usize..NUM_KINDS,
        n in 50usize..800,
        m in 4usize..16,
        shards in 1usize..12,
        seed in any::<u64>(),
    ) {
        let mech = mechanism(kind, m);
        let inputs = inputs_for(mech.as_ref(), n);
        let reports = materialize(mech.as_ref(), inputs.batch(), seed);
        prop_assert_eq!(reports.len(), n);

        let proto = ShapedAccumulator::for_mechanism(mech.as_ref());
        let want = sequential(proto.clone(), &reports);
        prop_assert_eq!(want.num_users(), n as u64);
        let got = sharded_any_order(proto, &reports, shards, seed ^ 0xDEAD_BEEF);
        prop_assert_eq!(got, want);
    }

    /// The categorical accumulator on one-hot mechanisms (GRR and matrix
    /// rows) agrees with the bit accumulator fed the folded form.
    #[test]
    fn one_hot_and_bit_accumulators_agree(
        one_hot_kind in 0usize..2,
        n in 50usize..600,
        m in 4usize..12,
        shards in 1usize..8,
        seed in any::<u64>(),
    ) {
        let mech = mechanism(if one_hot_kind == 0 { 0 } else { 5 }, m);
        let inputs = inputs_for(mech.as_ref(), n);
        let reports = materialize(mech.as_ref(), inputs.batch(), seed);

        // Fold the native values into bit vectors by hand...
        let bit_reports: Vec<ReportData> = reports
            .iter()
            .map(|r| {
                let ReportData::Value(v) = r else { panic!("one-hot mechanisms emit values") };
                let mut bits = vec![0u8; mech.report_len()];
                bits[*v] = 1;
                ReportData::Bits(bits)
            })
            .collect();
        let via_bits = sequential(BitReportAccumulator::new(mech.report_len()), &bit_reports);
        // ...and compare with sharded native-value accumulation.
        let via_one_hot = sharded_any_order(
            OneHotReportAccumulator::new(mech.report_len()),
            &reports,
            shards,
            seed ^ 0xBEEF,
        );
        prop_assert_eq!(via_one_hot, via_bits);
    }

    /// Hashed-shape law (OLH): the exact-merge/sharding invariance holds
    /// for `(seed, value)` reports, and the server-side fold through the
    /// shared hash matches the reference fold and the streamed user total.
    #[test]
    fn hashed_accumulator_merges_exactly(
        n in 50usize..600,
        m in 4usize..16,
        shards in 1usize..10,
        seed in any::<u64>(),
    ) {
        let mech = mechanism(6, m);
        let range = match mech.report_shape() {
            idldp_core::report::ReportShape::Hashed { range } => range,
            other => panic!("OLH must declare a hashed shape, got {other:?}"),
        };
        let inputs = inputs_for(mech.as_ref(), n);
        let reports = materialize(mech.as_ref(), inputs.batch(), seed);
        prop_assert!(reports.iter().all(|r| matches!(r, ReportData::Hashed { .. })));

        let proto = HashedReportAccumulator::new(m, range);
        let want = sequential(proto.clone(), &reports);
        let got = sharded_any_order(proto, &reports, shards, seed ^ 0xA5A5);
        prop_assert_eq!(&got, &want);
        prop_assert_eq!(got.counts(), reference_fold(&reports, m, range).as_slice());
        prop_assert_eq!(got.num_users(), n as u64);
    }

    /// Item-set-shape law (subset selection): exact merge/sharding
    /// invariance, reference fold agreement, and per-user membership k.
    #[test]
    fn item_set_accumulator_merges_exactly(
        n in 50usize..600,
        m in 4usize..16,
        shards in 1usize..10,
        seed in any::<u64>(),
    ) {
        let mech = mechanism(7, m);
        let inputs = inputs_for(mech.as_ref(), n);
        let reports = materialize(mech.as_ref(), inputs.batch(), seed);
        let k = mech
            .as_any()
            .downcast_ref::<SubsetSelection>()
            .unwrap()
            .subset_size();
        prop_assert!(reports
            .iter()
            .all(|r| matches!(r, ReportData::ItemSet(items) if items.len() == k)));

        let proto = ItemSetReportAccumulator::new(m);
        let want = sequential(proto.clone(), &reports);
        let got = sharded_any_order(proto, &reports, shards, seed ^ 0x5A5A);
        prop_assert_eq!(&got, &want);
        prop_assert_eq!(got.counts(), reference_fold(&reports, m, 0).as_slice());
        prop_assert_eq!(got.counts().iter().sum::<u64>(), (n * k) as u64);
    }

    /// Batched-fold law: `accumulate_batch` over **any** split of the
    /// stream is bit-identical to sequential `accumulate` — for every
    /// mechanism's native wire shape through the shape-dispatching
    /// accumulator, and again through the sharded `push_batch` fan-out
    /// (whole batches landing on round-robin shards, merged on demand).
    /// This is the contract the transport server's one-frame-one-fold
    /// ingest path rests on.
    #[test]
    fn batched_fold_equals_sequential_for_any_split(
        kind in 0usize..NUM_KINDS,
        n in 50usize..700,
        m in 4usize..14,
        shards in 1usize..8,
        seed in any::<u64>(),
    ) {
        let mech = mechanism(kind, m);
        let inputs = inputs_for(mech.as_ref(), n);
        let reports = materialize(mech.as_ref(), inputs.batch(), seed);
        let views: Vec<_> = reports.iter().map(|r| r.as_report()).collect();

        let proto = ShapedAccumulator::for_mechanism(mech.as_ref());
        let want = sequential(proto.clone(), &reports);

        // One accumulator, the stream cut at pseudo-random split points.
        let mut rng = SplitMix64::new(seed ^ 0xF01D);
        let mut batched = proto.clone();
        let mut start = 0usize;
        while start < views.len() {
            let end = (start + 1 + (rng.next() % 97) as usize).min(views.len());
            batched.accumulate_batch(&views[start..end]).unwrap();
            start = end;
        }
        prop_assert_eq!(batched.snapshot(), want.clone());
        prop_assert_eq!(batched.num_users(), n as u64);

        // The sharded batch fan-out: a different split, whole batches
        // placed round-robin, counts identical after the shard merge.
        let sink = ShardedAccumulator::new(proto, shards);
        let mut start = 0usize;
        while start < views.len() {
            let end = (start + 1 + (rng.next() % 61) as usize).min(views.len());
            sink.push_batch(&views[start..end]).unwrap();
            start = end;
        }
        prop_assert_eq!(sink.snapshot(), want.clone());
        // ...and the consuming merge lands on the same state too.
        prop_assert_eq!(sink.into_merged().snapshot(), want);
    }

    /// Round-robin fan-out equals explicit partitioning equals sequential —
    /// native shapes through the shape-dispatching accumulator.
    #[test]
    fn round_robin_equals_partitioned(
        kind in 0usize..NUM_KINDS,
        n in 20usize..400,
        shards in 1usize..6,
        seed in any::<u64>(),
    ) {
        let m = 8;
        let mech = mechanism(kind, m);
        let inputs = inputs_for(mech.as_ref(), n);
        let reports = materialize(mech.as_ref(), inputs.batch(), seed);

        let proto = ShapedAccumulator::for_mechanism(mech.as_ref());
        let rr = ShardedAccumulator::new(proto.clone(), shards);
        for r in &reports {
            rr.push(r.as_report()).unwrap();
        }
        let want = sequential(proto, &reports);
        prop_assert_eq!(rr.snapshot(), want);
    }

    /// Tracker law: after `finish`, the pruned candidate set is exactly
    /// the top `k + slack` of the direct oracle estimates over the final
    /// sequential state — for any mechanism, cadence, and shard count.
    /// (The sim-level conformance suite layers batch equivalence on top.)
    #[test]
    fn tracker_candidates_match_direct_estimates(
        kind in 0usize..NUM_KINDS,
        n in 30usize..400,
        k in 1usize..5,
        slack in 0usize..3,
        cadence in 1usize..200,
        shards in 1usize..6,
        seed in any::<u64>(),
    ) {
        use idldp_stream::{HeavyHitterTracker, TrackerMode};
        let m = 9;
        let mech = mechanism(kind, m);
        let inputs = inputs_for(mech.as_ref(), n);
        let reports = materialize(mech.as_ref(), inputs.batch(), seed);

        let mut tracker = HeavyHitterTracker::for_mechanism(
            mech.as_ref(),
            shards,
            TrackerMode::TopK { k, slack },
            cadence,
        )
        .unwrap();
        for r in &reports {
            tracker.push(r.as_report()).unwrap();
        }
        let top_k = tracker.finish().unwrap();

        let snap = sequential(ShapedAccumulator::for_mechanism(mech.as_ref()), &reports);
        let estimates = mech
            .frequency_oracle(snap.num_users())
            .estimate_from(&snap)
            .unwrap();
        let want = idldp_num::vecops::top_k_indices(&estimates, k + slack);
        prop_assert_eq!(&top_k, &want[..k.min(want.len())]);
        let candidates = tracker.candidates();
        prop_assert_eq!(candidates.len(), want.len());
        for (c, &item) in candidates.iter().zip(&want) {
            prop_assert_eq!(c.item, item);
            prop_assert_eq!(c.estimate, estimates[item]);
        }
    }

    /// Checkpoint serialization round-trips any reachable snapshot.
    #[test]
    fn checkpoint_round_trips(
        kind in 0usize..NUM_KINDS,
        n in 10usize..300,
        seed in any::<u64>(),
    ) {
        let m = 6;
        let mech = mechanism(kind, m);
        let inputs = inputs_for(mech.as_ref(), n);
        let reports = materialize(mech.as_ref(), inputs.batch(), seed);
        let snap = sequential(ShapedAccumulator::for_mechanism(mech.as_ref()), &reports);
        let restored =
            AccumulatorSnapshot::from_checkpoint_str(&snap.to_checkpoint_string()).unwrap();
        prop_assert_eq!(restored, snap);
    }
}
