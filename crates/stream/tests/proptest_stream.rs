//! Property tests for the streaming accumulator layer.
//!
//! The central law under test: **any** sharding of a report set, under
//! **any** merge order, yields counts identical to feeding every report
//! into a single accumulator sequentially — for report streams generated
//! by all six mechanisms.

use idldp_core::budget::Epsilon;
use idldp_core::grr::GeneralizedRandomizedResponse;
use idldp_core::idue::Idue;
use idldp_core::idue_ps::IduePs;
use idldp_core::levels::LevelPartition;
use idldp_core::matrix_mech::PerturbationMatrix;
use idldp_core::mechanism::{InputBatch, Mechanism};
use idldp_core::params::LevelParams;
use idldp_core::ps::PsMechanism;
use idldp_core::snapshot::AccumulatorSnapshot;
use idldp_num::rng::SplitMix64;
use idldp_stream::{
    BitReportAccumulator, OneHotReportAccumulator, Report, ReportAccumulator, SeededReportStream,
    ShardedAccumulator,
};
use proptest::prelude::*;

fn eps(v: f64) -> Epsilon {
    Epsilon::new(v).unwrap()
}

/// Builds one of the six mechanisms by index, over a domain scaled to `m`.
fn mechanism(kind: usize, m: usize) -> Box<dyn Mechanism> {
    match kind {
        0 => Box::new(GeneralizedRandomizedResponse::new(eps(1.2), m).unwrap()),
        1 => Box::new(idldp_core::ue::UnaryEncoding::optimized(eps(1.0), m).unwrap()),
        2 => {
            let assignment: Vec<usize> = (0..m).map(|i| usize::from(i % 3 != 0)).collect();
            let levels = LevelPartition::new(assignment, vec![eps(1.0), eps(3.0)]).unwrap();
            let params = LevelParams::new(vec![0.59, 0.67], vec![0.33, 0.28]).unwrap();
            Box::new(Idue::new(levels, &params).unwrap())
        }
        3 => Box::new(PsMechanism::new(m, 2).unwrap()),
        4 => Box::new(IduePs::oue_ps(m, eps(2.0), 2).unwrap()),
        _ => Box::new(PerturbationMatrix::grr(eps(1.5), m).unwrap()),
    }
}

fn inputs_for(mech: &dyn Mechanism, n: usize) -> OwnedInputs {
    let m = mech.domain_size();
    match mech.input_kind() {
        idldp_core::mechanism::InputKind::Item => {
            OwnedInputs::Items((0..n).map(|i| ((i * 13 + 5) % m) as u32).collect())
        }
        idldp_core::mechanism::InputKind::Set => OwnedInputs::Sets(
            (0..n)
                .map(|i| {
                    let a = (i % m) as u32;
                    let b = ((i / 3 + 1) % m) as u32;
                    if a == b {
                        vec![a]
                    } else {
                        vec![a.min(b), a.max(b)]
                    }
                })
                .collect(),
        ),
    }
}

enum OwnedInputs {
    Items(Vec<u32>),
    Sets(Vec<Vec<u32>>),
}

impl OwnedInputs {
    fn batch(&self) -> InputBatch<'_> {
        match self {
            OwnedInputs::Items(items) => InputBatch::Items(items),
            OwnedInputs::Sets(sets) => InputBatch::Sets(sets),
        }
    }
}

/// Collects all reports of a seeded stream into owned vectors.
fn materialize(mech: &dyn Mechanism, inputs: InputBatch<'_>, seed: u64) -> Vec<Vec<u8>> {
    let mut reports = Vec::with_capacity(inputs.len());
    let mut stream = SeededReportStream::new(mech, inputs, seed).with_chunk_size(64);
    loop {
        let got = stream
            .next_chunk_with(|r| {
                if let Report::Bits(bits) = r {
                    reports.push(bits.to_vec());
                }
                Ok(())
            })
            .unwrap();
        if got == 0 {
            break;
        }
    }
    reports
}

/// Sequential reference: one accumulator, reports in order.
fn sequential<A: ReportAccumulator>(mut acc: A, reports: &[Vec<u8>]) -> AccumulatorSnapshot {
    for r in reports {
        acc.accumulate(Report::Bits(r)).unwrap();
    }
    acc.snapshot()
}

/// Sharded run with a pseudo-random report→shard assignment and a
/// pseudo-random shard merge order.
fn sharded_any_order<A: ReportAccumulator + Clone>(
    prototype: A,
    reports: &[Vec<u8>],
    shards: usize,
    order_seed: u64,
) -> AccumulatorSnapshot {
    let mut rng = SplitMix64::new(order_seed);
    let sink = ShardedAccumulator::new(prototype, shards);
    for r in reports {
        let shard = (rng.next() % shards as u64) as usize;
        sink.push_to(shard, Report::Bits(r)).unwrap();
    }
    let snap = sink.snapshot();
    // Independently: a shuffled pairwise merge tree over a random
    // partition of the same reports must land on the same state.
    let mut parts: Vec<AccumulatorSnapshot> = Vec::new();
    let mut order: Vec<usize> = (0..reports.len()).collect();
    for i in (1..order.len()).rev() {
        let j = (rng.next() % (i as u64 + 1)) as usize;
        order.swap(i, j);
    }
    let mut merged = AccumulatorSnapshot::empty(snap.report_len()).unwrap();
    for chunk in order.chunks(17) {
        let mut part = AccumulatorSnapshot::empty(snap.report_len()).unwrap();
        for &i in chunk {
            let mut one = BitReportAccumulator::new(snap.report_len());
            one.accumulate(Report::Bits(&reports[i])).unwrap();
            part.merge(&one.snapshot()).unwrap();
        }
        parts.push(part);
    }
    for part in &parts {
        merged.merge(part).unwrap();
    }
    assert_eq!(merged, snap, "shuffled merge differs from sharded snapshot");
    snap
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Any sharding/merge order equals sequential accumulation — all six
    /// mechanisms, bit accumulators.
    #[test]
    fn sharding_never_changes_counts(
        kind in 0usize..6,
        n in 50usize..800,
        m in 4usize..16,
        shards in 1usize..12,
        seed in any::<u64>(),
    ) {
        let mech = mechanism(kind, m);
        let inputs = inputs_for(mech.as_ref(), n);
        let reports = materialize(mech.as_ref(), inputs.batch(), seed);
        prop_assert_eq!(reports.len(), n);

        let want = sequential(BitReportAccumulator::new(mech.report_len()), &reports);
        prop_assert_eq!(want.num_users(), n as u64);
        let got = sharded_any_order(
            BitReportAccumulator::new(mech.report_len()),
            &reports,
            shards,
            seed ^ 0xDEAD_BEEF,
        );
        prop_assert_eq!(got, want);
    }

    /// The same law for the categorical accumulator on one-hot mechanisms
    /// (GRR and matrix rows), cross-checked against the bit accumulator.
    #[test]
    fn one_hot_and_bit_accumulators_agree(
        one_hot_kind in 0usize..2,
        n in 50usize..600,
        m in 4usize..12,
        shards in 1usize..8,
        seed in any::<u64>(),
    ) {
        let mech = mechanism(if one_hot_kind == 0 { 0 } else { 5 }, m);
        let inputs = inputs_for(mech.as_ref(), n);
        let reports = materialize(mech.as_ref(), inputs.batch(), seed);

        let via_bits = sequential(BitReportAccumulator::new(mech.report_len()), &reports);
        let via_one_hot = sharded_any_order(
            OneHotReportAccumulator::new(mech.report_len()),
            &reports,
            shards,
            seed ^ 0xBEEF,
        );
        prop_assert_eq!(via_one_hot, via_bits);
    }

    /// Round-robin fan-out equals explicit partitioning equals sequential.
    #[test]
    fn round_robin_equals_partitioned(
        kind in 0usize..6,
        n in 20usize..400,
        shards in 1usize..6,
        seed in any::<u64>(),
    ) {
        let m = 8;
        let mech = mechanism(kind, m);
        let inputs = inputs_for(mech.as_ref(), n);
        let reports = materialize(mech.as_ref(), inputs.batch(), seed);

        let rr = ShardedAccumulator::new(BitReportAccumulator::new(mech.report_len()), shards);
        for r in &reports {
            rr.push(Report::Bits(r)).unwrap();
        }
        let want = sequential(BitReportAccumulator::new(mech.report_len()), &reports);
        prop_assert_eq!(rr.snapshot(), want);
    }

    /// Checkpoint serialization round-trips any reachable snapshot.
    #[test]
    fn checkpoint_round_trips(
        kind in 0usize..6,
        n in 10usize..300,
        seed in any::<u64>(),
    ) {
        let m = 6;
        let mech = mechanism(kind, m);
        let inputs = inputs_for(mech.as_ref(), n);
        let reports = materialize(mech.as_ref(), inputs.batch(), seed);
        let snap = sequential(BitReportAccumulator::new(mech.report_len()), &reports);
        let restored =
            AccumulatorSnapshot::from_checkpoint_str(&snap.to_checkpoint_string()).unwrap();
        prop_assert_eq!(restored, snap);
    }
}
