//! # `idldp-stream` — online, sharded report aggregation
//!
//! The batch crates simulate a whole client population and estimate once;
//! a real ID-LDP deployment ingests perturbed reports *continuously*. This
//! crate is that online layer:
//!
//! * [`accumulator`] — [`ReportAccumulator`]: mergeable, `Send` per-shard
//!   count state, with one implementation per wire shape
//!   ([`BitReportAccumulator`] for the unary-encoding family,
//!   [`OneHotReportAccumulator`] for GRR/matrix/PS value reports,
//!   [`HashedReportAccumulator`] for OLH `(seed, value)` pairs folded
//!   through the shared hash, [`ItemSetReportAccumulator`] for
//!   subset-selection item sets) plus the shape-dispatching
//!   [`ShapedAccumulator`] picked from
//!   [`idldp_core::mechanism::Mechanism::report_shape`].
//! * [`sharded`] — [`ShardedAccumulator`]: stripes the state across `N`
//!   independently locked shards with round-robin fan-out and exact
//!   merge-on-demand snapshots.
//! * [`source`] — [`SeededReportStream`]: the deterministic report stream
//!   sharing the batch pipeline's chunk/RNG grid ([`chunk_ranges`]), so
//!   streaming counts are bit-identical to a batch
//!   `SimulationPipeline::run` of the same `(mechanism, inputs, seed)`.
//! * [`topk`] — [`HeavyHitterTracker`]: online heavy-hitter identification
//!   over any sharded sink via the snapshot → prune → re-estimate loop;
//!   its final top-k is provably identical to the batch answer (see the
//!   module docs and `crates/sim/tests/topk_conformance.rs`).
//!
//! The server-side estimate path is *incremental*: freeze the shards into
//! an [`idldp_core::snapshot::AccumulatorSnapshot`], build the mechanism's
//! oracle for the snapshot's user count, and call
//! [`idldp_core::mechanism::FrequencyOracle::estimate_from`]. Snapshots
//! serialize to a stable checkpoint format, so an ingestion service can
//! restart mid-stream (`idldp ingest --checkpoint`).
//!
//! ```
//! use idldp_core::budget::Epsilon;
//! use idldp_core::grr::GeneralizedRandomizedResponse;
//! use idldp_core::mechanism::Mechanism;
//! use idldp_stream::{OneHotReportAccumulator, Report, ShardedAccumulator};
//!
//! // A GRR server accumulating categorical value reports over 4 shards.
//! let grr = GeneralizedRandomizedResponse::new(Epsilon::new(2.0).unwrap(), 5).unwrap();
//! let sink = ShardedAccumulator::new(OneHotReportAccumulator::new(grr.report_len()), 4);
//! for value in [0usize, 3, 3, 1, 4, 3] {
//!     sink.push(Report::Value(value)).unwrap();
//! }
//! let snapshot = sink.snapshot();
//! let estimates = grr
//!     .frequency_oracle(snapshot.num_users())
//!     .estimate_from(&snapshot)
//!     .unwrap();
//! assert_eq!(estimates.len(), 5);
//! ```

#![deny(missing_docs)]

pub mod accumulator;
pub mod sharded;
pub mod source;
pub mod topk;

pub use accumulator::{
    BitReportAccumulator, HashedReportAccumulator, ItemSetReportAccumulator,
    OneHotReportAccumulator, Report, ReportAccumulator, ShapedAccumulator,
};
pub use sharded::{ShardedAccumulator, DEFAULT_SHARDS};
pub use source::{chunk_ranges, SeededReportStream, DEFAULT_CHUNK_SIZE};
pub use topk::{Candidate, HeavyHitterTracker, TrackerMode, DEFAULT_CADENCE};
