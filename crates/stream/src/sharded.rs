//! Striped sharding over any [`ReportAccumulator`].
//!
//! A single mutex around one accumulator would serialize every ingestion
//! thread; [`ShardedAccumulator`] stripes the state across `N` shards, each
//! behind its own lock, and fans incoming reports over them round-robin.
//! Writers contend only `1/N` of the time, and because accumulator merges
//! are exact (integer counts), the merged view — materialized on demand by
//! [`ShardedAccumulator::snapshot`] — is identical for every shard count
//! and every interleaving of writers. The streaming conformance suite
//! asserts exactly that against the batch pipeline for all eight mechanisms.

use crate::accumulator::{Report, ReportAccumulator};
use idldp_core::error::{Error, Result};
use idldp_core::snapshot::AccumulatorSnapshot;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Default shard count: enough stripes to keep a few ingestion threads from
/// colliding without bloating the merged snapshot work.
pub const DEFAULT_SHARDS: usize = 8;

/// `N` independently locked accumulator shards with round-robin fan-out
/// and exact merge-on-demand.
///
/// # Examples
/// ```
/// use idldp_stream::{Report, ShardedAccumulator, OneHotReportAccumulator};
///
/// // Four GRR-style categorical buckets across 3 shards.
/// let sharded = ShardedAccumulator::new(OneHotReportAccumulator::new(4), 3);
/// for value in [0, 2, 2, 3, 1, 2] {
///     sharded.push(Report::Value(value)).unwrap();
/// }
/// let snapshot = sharded.snapshot();
/// assert_eq!(snapshot.counts(), &[1, 1, 3, 1]);
/// assert_eq!(snapshot.num_users(), 6);
/// ```
pub struct ShardedAccumulator<A> {
    shards: Vec<Mutex<A>>,
    next: AtomicUsize,
}

impl<A: ReportAccumulator + Clone> ShardedAccumulator<A> {
    /// Creates `num_shards` shards, each a clone of the (empty)
    /// `prototype`.
    ///
    /// # Panics
    /// Panics if `num_shards == 0` or the prototype already holds users
    /// (cloning non-empty state into every shard would multiply it).
    pub fn new(prototype: A, num_shards: usize) -> Self {
        assert!(num_shards > 0, "need at least one shard");
        assert_eq!(
            prototype.num_users(),
            0,
            "shard prototype must be an empty accumulator"
        );
        Self {
            shards: (0..num_shards)
                .map(|_| Mutex::new(prototype.clone()))
                .collect(),
            next: AtomicUsize::new(0),
        }
    }
}

impl<A: ReportAccumulator> ShardedAccumulator<A> {
    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Report width accepted by every shard.
    pub fn report_len(&self) -> usize {
        self.shards[0].lock().report_len()
    }

    /// Total users absorbed across all shards.
    pub fn num_users(&self) -> u64 {
        self.shards.iter().map(|s| s.lock().num_users()).sum()
    }

    /// Folds one report into the next shard (round-robin), locking only
    /// that shard.
    ///
    /// # Errors
    /// Propagates the shard accumulator's shape/width errors; the
    /// round-robin cursor still advances, so one malformed report cannot
    /// pin a shard.
    pub fn push(&self, report: Report<'_>) -> Result<()> {
        let shard = self.next.fetch_add(1, Ordering::Relaxed) % self.shards.len();
        self.shards[shard].lock().accumulate(report)
    }

    /// Folds a whole batch of reports (one transport frame, one stream
    /// chunk) into a single shard under one lock acquisition, through the
    /// accumulator's atomic [`ReportAccumulator::accumulate_batch`] — the
    /// ingestion fast path: one frame costs one cursor bump, one lock, and
    /// one batched fold instead of per-report round trips.
    ///
    /// Counts are bit-identical to pushing each report individually (the
    /// exact-merge law makes shard placement irrelevant), and a batch
    /// containing any invalid report counts nothing.
    ///
    /// # Errors
    /// Returns the first report's validation error; the round-robin cursor
    /// still advances.
    pub fn push_batch(&self, reports: &[Report<'_>]) -> Result<()> {
        if reports.is_empty() {
            return Ok(());
        }
        let shard = self.next.fetch_add(1, Ordering::Relaxed) % self.shards.len();
        self.shards[shard].lock().accumulate_batch(reports)
    }

    /// Folds one report into an explicit shard — for callers that partition
    /// upstream (e.g. one network listener per shard) instead of
    /// round-robin.
    ///
    /// # Errors
    /// Returns an error if `shard >= num_shards` or the report is invalid.
    pub fn push_to(&self, shard: usize, report: Report<'_>) -> Result<()> {
        let slot = self
            .shards
            .get(shard)
            .ok_or_else(|| Error::IndexOutOfRange {
                what: "shard index".into(),
                index: shard,
                bound: self.shards.len(),
            })?;
        slot.lock().accumulate(report)
    }

    /// Merges a locally accumulated `A` (e.g. a worker's chunk state) into
    /// the next shard in one lock acquisition — the batch-sized sibling of
    /// [`Self::push`].
    ///
    /// # Errors
    /// Returns an error if the widths differ.
    pub fn absorb(&self, local: &A) -> Result<()> {
        let shard = self.next.fetch_add(1, Ordering::Relaxed) % self.shards.len();
        self.shards[shard].lock().merge_from(local)
    }

    /// Freezes the merged view of all shards — counts and user totals are
    /// exact sums, identical for any shard count and writer interleaving.
    ///
    /// One preallocated buffer, one pass: each shard adds its counts into
    /// the same vector under its own lock
    /// ([`ReportAccumulator::add_counts_into`]), instead of allocating an
    /// intermediate snapshot per shard and merging pairwise.
    pub fn snapshot(&self) -> AccumulatorSnapshot {
        let mut counts = vec![0u64; self.report_len()];
        let mut users = 0u64;
        for shard in &self.shards {
            users += shard.lock().add_counts_into(&mut counts);
        }
        AccumulatorSnapshot::new(counts, users).expect("shards have nonzero width")
    }

    /// Freezes every shard separately — one snapshot per shard, no merge.
    /// This is what a sharded checkpoint store persists: each shard's
    /// state can be written (and later restored) in parallel, and the
    /// exact-merge law guarantees the merged view of the parts equals
    /// [`Self::snapshot`] of the whole.
    pub fn snapshot_shards(&self) -> Vec<AccumulatorSnapshot> {
        self.shards.iter().map(|s| s.lock().snapshot()).collect()
    }

    /// Restores per-shard checkpoint state into an **empty** sharding.
    ///
    /// The shard counts need not match the count at save time: snapshot
    /// `j` lands in shard `j % num_shards` (colliding snapshots merge —
    /// exact, by the merge law), so a checkpoint taken at any sharding
    /// restores into any other, and recovery no longer funnels everything
    /// through shard 0.
    ///
    /// # Errors
    /// Returns an error if `snapshots` is empty, any width differs from
    /// [`Self::report_len`], or any shard already holds users (restoring
    /// over live counts would double-count).
    pub fn restore_shards(&self, snapshots: &[AccumulatorSnapshot]) -> Result<()> {
        if snapshots.is_empty() {
            return Err(Error::Empty {
                what: "restored shard snapshots".into(),
            });
        }
        let width = self.report_len();
        if let Some(bad) = snapshots.iter().find(|s| s.report_len() != width) {
            return Err(Error::DimensionMismatch {
                what: "restored snapshot width".into(),
                expected: width,
                actual: bad.report_len(),
            });
        }
        if self.num_users() != 0 {
            return Err(Error::ParameterOrdering {
                detail: "restore requires empty shards (counts already present)".into(),
            });
        }
        let n = self.shards.len();
        for (j, group) in self.shards.iter().enumerate().take(snapshots.len()) {
            let mut shard = group.lock();
            let mut merged: Option<AccumulatorSnapshot> = None;
            for snapshot in snapshots.iter().skip(j).step_by(n) {
                match merged.as_mut() {
                    None => merged = Some(snapshot.clone()),
                    Some(m) => m.merge(snapshot).expect("widths validated above"),
                }
            }
            shard.restore(&merged.expect("j < snapshots.len() yields at least one"))?;
        }
        Ok(())
    }

    /// Consumes the sharding, returning one fully merged accumulator.
    pub fn into_merged(self) -> A {
        let mut shards = self.shards.into_iter().map(Mutex::into_inner);
        let mut merged = shards.next().expect("at least one shard");
        for shard in shards {
            merged
                .merge_from(&shard)
                .expect("shards share one width by construction");
        }
        merged
    }

    /// Restores checkpointed state into shard 0 of an **empty** sharding —
    /// the restart-recovery path. A snapshot has no per-shard structure and
    /// needs none (merge order is irrelevant), so the other shards simply
    /// start from zero.
    ///
    /// # Errors
    /// Returns an error if the snapshot width differs, or if any shard
    /// already holds users (restoring over live counts would double-count;
    /// build a fresh `ShardedAccumulator` to restore into).
    pub fn restore(&self, snapshot: &AccumulatorSnapshot) -> Result<()> {
        if self.num_users() != 0 {
            return Err(Error::ParameterOrdering {
                detail: "restore requires empty shards (counts already present)".into(),
            });
        }
        self.shards[0].lock().restore(snapshot)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::accumulator::BitReportAccumulator;

    #[test]
    fn round_robin_covers_all_shards() {
        let sharded = ShardedAccumulator::new(BitReportAccumulator::new(2), 4);
        for _ in 0..8 {
            sharded.push(Report::Bits(&[1, 0])).unwrap();
        }
        assert_eq!(sharded.num_users(), 8);
        assert_eq!(sharded.num_shards(), 4);
        assert_eq!(sharded.report_len(), 2);
        let snap = sharded.snapshot();
        assert_eq!(snap.counts(), &[8, 0]);
        // Every shard saw exactly 2 reports.
        let merged = sharded.into_merged();
        assert_eq!(merged.num_users(), 8);
    }

    #[test]
    fn shard_count_does_not_change_counts() {
        let reports: Vec<[u8; 3]> = (0..100)
            .map(|i| [(i % 2) as u8, ((i / 2) % 2) as u8, ((i / 4) % 2) as u8])
            .collect();
        let mut reference: Option<AccumulatorSnapshot> = None;
        for shards in [1, 2, 3, 7, 100, 128] {
            let sharded = ShardedAccumulator::new(BitReportAccumulator::new(3), shards);
            for r in &reports {
                sharded.push(Report::Bits(r)).unwrap();
            }
            let snap = sharded.snapshot();
            if let Some(ref want) = reference {
                assert_eq!(&snap, want, "shards = {shards}");
            } else {
                reference = Some(snap);
            }
        }
    }

    #[test]
    fn push_to_and_errors() {
        let sharded = ShardedAccumulator::new(BitReportAccumulator::new(2), 2);
        sharded.push_to(1, Report::Bits(&[0, 1])).unwrap();
        assert!(sharded.push_to(2, Report::Bits(&[0, 1])).is_err());
        assert!(sharded.push(Report::Bits(&[1])).is_err());
        assert_eq!(sharded.num_users(), 1);
    }

    #[test]
    fn push_batch_matches_per_report_pushes() {
        let rows: Vec<[u8; 3]> = (0..90)
            .map(|i| [(i % 2) as u8, ((i / 2) % 2) as u8, ((i / 4) % 2) as u8])
            .collect();
        let reports: Vec<Report<'_>> = rows.iter().map(|r| Report::Bits(r)).collect();

        let per_report = ShardedAccumulator::new(BitReportAccumulator::new(3), 4);
        for r in &reports {
            per_report.push(*r).unwrap();
        }
        let batched = ShardedAccumulator::new(BitReportAccumulator::new(3), 4);
        for chunk in reports.chunks(7) {
            batched.push_batch(chunk).unwrap();
        }
        assert_eq!(batched.snapshot(), per_report.snapshot());

        // An invalid report anywhere in a batch counts nothing.
        let before = batched.snapshot();
        assert!(batched
            .push_batch(&[Report::Bits(&[1, 0, 1]), Report::Bits(&[1, 0])])
            .is_err());
        assert_eq!(batched.snapshot(), before);
        batched.push_batch(&[]).unwrap();
        assert_eq!(batched.snapshot(), before, "empty batch is a no-op");
    }

    #[test]
    fn absorb_merges_worker_state() {
        let sharded = ShardedAccumulator::new(BitReportAccumulator::new(2), 3);
        let mut local = BitReportAccumulator::new(2);
        local.accumulate(Report::Bits(&[1, 1])).unwrap();
        local.accumulate(Report::Bits(&[1, 0])).unwrap();
        sharded.absorb(&local).unwrap();
        sharded.push(Report::Bits(&[0, 1])).unwrap();
        let snap = sharded.snapshot();
        assert_eq!(snap.counts(), &[2, 2]);
        assert_eq!(snap.num_users(), 3);
    }

    #[test]
    fn restore_then_continue() {
        let checkpoint = AccumulatorSnapshot::new(vec![5, 7], 12).unwrap();
        let sharded = ShardedAccumulator::new(BitReportAccumulator::new(2), 3);
        sharded.restore(&checkpoint).unwrap();
        sharded.push(Report::Bits(&[1, 0])).unwrap();
        let snap = sharded.snapshot();
        assert_eq!(snap.counts(), &[6, 7]);
        assert_eq!(snap.num_users(), 13);
        // Restoring over live counts is refused.
        assert!(sharded.restore(&checkpoint).is_err());
    }

    #[test]
    fn shard_snapshots_restore_across_any_shard_count() {
        let source = ShardedAccumulator::new(BitReportAccumulator::new(3), 5);
        for i in 0..100u32 {
            let row = [(i % 2) as u8, ((i / 2) % 2) as u8, ((i / 4) % 2) as u8];
            source.push(Report::Bits(&row)).unwrap();
        }
        let want = source.snapshot();
        let parts = source.snapshot_shards();
        assert_eq!(parts.len(), 5);
        // A 5-way split restores into 1, 3, 5, or 8 shards — merged views
        // identical by the exact-merge law.
        for shards in [1, 3, 5, 8] {
            let target = ShardedAccumulator::new(BitReportAccumulator::new(3), shards);
            target.restore_shards(&parts).unwrap();
            assert_eq!(target.snapshot(), want, "restore into {shards} shards");
            // The restored sharding keeps accepting reports.
            target.push(Report::Bits(&[1, 1, 1])).unwrap();
            assert_eq!(target.num_users(), want.num_users() + 1);
        }
    }

    #[test]
    fn restore_shards_rejects_bad_input() {
        let target = ShardedAccumulator::new(BitReportAccumulator::new(2), 2);
        assert!(target.restore_shards(&[]).is_err(), "empty snapshot list");
        let wrong = AccumulatorSnapshot::new(vec![1, 2, 3], 1).unwrap();
        assert!(target.restore_shards(&[wrong]).is_err(), "width mismatch");
        target.push(Report::Bits(&[1, 0])).unwrap();
        let ok = AccumulatorSnapshot::new(vec![1, 2], 3).unwrap();
        assert!(
            target.restore_shards(&[ok]).is_err(),
            "live counts refuse a restore"
        );
    }

    #[test]
    fn concurrent_pushes_are_exact() {
        let sharded = ShardedAccumulator::new(BitReportAccumulator::new(2), 4);
        std::thread::scope(|scope| {
            for t in 0..4 {
                let sharded = &sharded;
                scope.spawn(move || {
                    let report = [u8::from(t % 2 == 0), u8::from(t % 2 == 1)];
                    for _ in 0..1000 {
                        sharded.push(Report::Bits(&report)).unwrap();
                    }
                });
            }
        });
        let snap = sharded.snapshot();
        assert_eq!(snap.num_users(), 4000);
        assert_eq!(snap.counts(), &[2000, 2000]);
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_panics() {
        let _ = ShardedAccumulator::new(BitReportAccumulator::new(2), 0);
    }
}
