//! Online heavy-hitter tracking: the snapshot → prune → re-estimate loop.
//!
//! The batch path identifies heavy hitters *offline*: materialize every
//! report, estimate all `m` frequencies once, sort (`idldp-sim`'s
//! `heavy_hitters::identify_top_k`). [`HeavyHitterTracker`] answers the
//! same question *online*, over millions of streamed reports, without ever
//! holding a report:
//!
//! 1. **snapshot** — every [`HeavyHitterTracker::cadence`] reports the
//!    tracker freezes its [`ShardedAccumulator`] into an
//!    [`AccumulatorSnapshot`] (exact integer merge, any shard count);
//! 2. **re-estimate** — it builds the mechanism's oracle for the snapshot's
//!    user count and runs the incremental
//!    [`idldp_core::mechanism::FrequencyOracle::estimate_from`] path;
//! 3. **prune** — the fresh estimates are cut down to a small candidate
//!    set: the top `k + slack` items ([`TrackerMode::TopK`]) or everything
//!    above a threshold ([`TrackerMode::Threshold`]).
//!
//! Between refreshes the tracker's work per report is one accumulator fold
//! and queries ([`HeavyHitterTracker::candidates`],
//! [`HeavyHitterTracker::top_k`]) touch only the pruned candidates —
//! steady-state cost is `O(candidates)`, not `O(domain)`; the `O(domain)`
//! estimation bill is paid once per cadence and amortizes to
//! `O(domain / cadence)` per report.
//!
//! ## Equivalence guarantee
//!
//! Because candidates are *recomputed from the full frozen counts* at every
//! refresh (never incrementally patched), the final answer after
//! [`HeavyHitterTracker::finish`] depends only on the final accumulator
//! state — which is bit-identical to a batch run of the same
//! `(mechanism, inputs, seed)` by the streaming conformance contract. The
//! tracker's final top-k therefore **equals** batch `identify_top_k` for
//! every mechanism, every shard count, every snapshot cadence, and every
//! report→shard assignment; `crates/sim/tests/topk_conformance.rs` proves
//! it for all eight mechanisms, and both rankings share the one comparator
//! ([`idldp_num::vecops::top_k_indices`]), so the tie-break rules can never
//! drift apart.
//!
//! ```
//! use idldp_core::budget::Epsilon;
//! use idldp_core::grr::GeneralizedRandomizedResponse;
//! use idldp_core::mechanism::{InputBatch, Mechanism};
//! use idldp_stream::{HeavyHitterTracker, SeededReportStream, TrackerMode};
//!
//! let grr = GeneralizedRandomizedResponse::new(Epsilon::new(3.0).unwrap(), 8).unwrap();
//! let items: Vec<u32> = (0..9000).map(|i| if i % 3 == 0 { (i % 8) as u32 } else { 5 }).collect();
//!
//! let mut tracker = HeavyHitterTracker::for_mechanism(
//!     &grr,
//!     4,                                     // shards
//!     TrackerMode::TopK { k: 2, slack: 2 },  // keep 2 + 2 candidates
//!     1000,                                  // snapshot every 1000 reports
//! )
//! .unwrap();
//! let mut stream = SeededReportStream::new(&grr, InputBatch::Items(&items), 7);
//! while stream
//!     .next_chunk_with(|report| tracker.push(report).map(|_| ()))
//!     .unwrap()
//!     > 0
//! {}
//! assert_eq!(tracker.finish().unwrap()[0], 5, "item 5 dominates the stream");
//! ```

use crate::accumulator::{Report, ReportAccumulator, ShapedAccumulator};
use crate::sharded::ShardedAccumulator;
use idldp_core::error::{Error, Result};
use idldp_core::mechanism::Mechanism;
use idldp_core::snapshot::AccumulatorSnapshot;
use idldp_num::vecops::top_k_indices;

/// Default snapshot cadence: re-estimate every 4096 reports. Large enough
/// that the `O(domain)` estimation amortizes to well under one fold per
/// report for paper-scale domains, small enough that dashboards see fresh
/// candidates every fraction of a second at realistic ingest rates.
pub const DEFAULT_CADENCE: usize = 4096;

/// What the tracker keeps between refreshes.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum TrackerMode {
    /// Track the `k` largest estimates, retaining `slack` extra runner-up
    /// candidates so items hovering around rank `k` stay visible between
    /// refreshes. Slack never changes the final top-k (candidates are
    /// recomputed from full counts at every refresh); it only widens the
    /// served view.
    TopK {
        /// Number of heavy hitters to identify.
        k: usize,
        /// Extra runner-up candidates retained beyond `k`.
        slack: usize,
    },
    /// Track every item whose estimate is at least `threshold` (an absolute
    /// estimated count, not a fraction).
    Threshold {
        /// Minimum estimate for an item to remain a candidate.
        threshold: f64,
    },
}

/// One tracked item: its index and its estimate at the last refresh.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Candidate {
    /// Item index in `0..domain_size`.
    pub item: usize,
    /// Estimated count at the most recent refresh.
    pub estimate: f64,
}

/// Online top-k / threshold tracker over any sharded report accumulator.
///
/// See the [module docs](self) for the snapshot → prune → re-estimate loop
/// and the batch-equivalence guarantee. Construct with
/// [`HeavyHitterTracker::for_mechanism`] (shape-dispatched sink) or
/// [`HeavyHitterTracker::new`] (bring your own sharding).
pub struct HeavyHitterTracker<'a, A: ReportAccumulator = ShapedAccumulator> {
    mechanism: &'a dyn Mechanism,
    sink: ShardedAccumulator<A>,
    mode: TrackerMode,
    cadence: usize,
    since_refresh: usize,
    refreshes: u64,
    candidates: Vec<Candidate>,
}

impl<'a> HeavyHitterTracker<'a, ShapedAccumulator> {
    /// A tracker whose sink ingests the mechanism's native wire shape,
    /// striped over `num_shards` shards — the configuration `idldp ingest
    /// --top-k` runs.
    ///
    /// # Errors
    /// Same conditions as [`Self::new`].
    ///
    /// # Panics
    /// Panics if `num_shards == 0` (the [`ShardedAccumulator`] contract).
    pub fn for_mechanism(
        mechanism: &'a dyn Mechanism,
        num_shards: usize,
        mode: TrackerMode,
        cadence: usize,
    ) -> Result<Self> {
        Self::new(
            mechanism,
            ShardedAccumulator::new(ShapedAccumulator::for_mechanism(mechanism), num_shards),
            mode,
            cadence,
        )
    }
}

impl<'a, A: ReportAccumulator> HeavyHitterTracker<'a, A> {
    /// Wraps an existing sharded sink. The sink may already hold users
    /// (e.g. it was restored from a checkpoint); the tracker refreshes
    /// immediately in that case so the served candidates reflect it.
    ///
    /// # Errors
    /// Returns an error if `cadence == 0`, the sink width differs from the
    /// mechanism's report width, or the mode is degenerate (`k == 0`, or a
    /// NaN threshold, under which no item could ever qualify).
    pub fn new(
        mechanism: &'a dyn Mechanism,
        sink: ShardedAccumulator<A>,
        mode: TrackerMode,
        cadence: usize,
    ) -> Result<Self> {
        if cadence == 0 {
            return Err(Error::ParameterOrdering {
                detail: "tracker cadence must be positive".into(),
            });
        }
        match mode {
            TrackerMode::TopK { k: 0, .. } => {
                return Err(Error::ParameterOrdering {
                    detail: "tracker k must be positive".into(),
                })
            }
            TrackerMode::Threshold { threshold } if threshold.is_nan() => {
                return Err(Error::ParameterOrdering {
                    detail: "tracker threshold must not be NaN".into(),
                })
            }
            _ => {}
        }
        if sink.report_len() != mechanism.report_len() {
            return Err(Error::DimensionMismatch {
                what: "tracker sink width".into(),
                expected: mechanism.report_len(),
                actual: sink.report_len(),
            });
        }
        let mut tracker = Self {
            mechanism,
            sink,
            mode,
            cadence,
            since_refresh: 0,
            refreshes: 0,
            candidates: Vec::new(),
        };
        if tracker.sink.num_users() > 0 {
            tracker.refresh()?;
        }
        Ok(tracker)
    }

    /// The tracked mechanism.
    pub fn mechanism(&self) -> &dyn Mechanism {
        self.mechanism
    }

    /// The tracking mode.
    pub fn mode(&self) -> TrackerMode {
        self.mode
    }

    /// Reports between automatic refreshes.
    pub fn cadence(&self) -> usize {
        self.cadence
    }

    /// The wrapped sharded sink (read access — e.g. for checkpointing the
    /// raw snapshot alongside tracker output).
    pub fn sink(&self) -> &ShardedAccumulator<A> {
        &self.sink
    }

    /// Total reports absorbed.
    pub fn num_users(&self) -> u64 {
        self.sink.num_users()
    }

    /// Number of refreshes performed so far.
    pub fn refreshes(&self) -> u64 {
        self.refreshes
    }

    /// `true` if reports arrived since the last refresh (the served
    /// candidate view is stale).
    pub fn is_dirty(&self) -> bool {
        self.since_refresh > 0 || self.refreshes == 0
    }

    /// Folds one report into the next shard (round-robin) and refreshes the
    /// candidate set if the cadence boundary was crossed. Returns `true` if
    /// a refresh happened.
    ///
    /// # Errors
    /// Propagates sink shape/width errors (nothing is counted and the
    /// cadence counter does not advance) and refresh errors.
    pub fn push(&mut self, report: Report<'_>) -> Result<bool> {
        self.sink.push(report)?;
        self.count_one()
    }

    /// Folds one report into an explicit shard — the caller-partitioned
    /// sibling of [`Self::push`], for upstreams that already shard (one
    /// listener per shard). Same cadence behavior.
    ///
    /// # Errors
    /// Same conditions as [`Self::push`], plus an out-of-range shard index.
    pub fn push_to(&mut self, shard: usize, report: Report<'_>) -> Result<bool> {
        self.sink.push_to(shard, report)?;
        self.count_one()
    }

    fn count_one(&mut self) -> Result<bool> {
        self.since_refresh += 1;
        if self.since_refresh >= self.cadence {
            self.refresh()?;
            return Ok(true);
        }
        Ok(false)
    }

    /// Forces the snapshot → re-estimate → prune cycle now, regardless of
    /// cadence position: freezes the shards, builds the mechanism's oracle
    /// at the frozen user count, runs the incremental `estimate_from` path
    /// over the full domain, and prunes the estimates down to the
    /// candidate set.
    ///
    /// Candidates are recomputed from scratch — never patched — so the
    /// state after a refresh is a pure function of the accumulated counts.
    /// That is the whole equivalence argument: any schedule of refreshes
    /// ends in the same final candidates.
    ///
    /// # Errors
    /// Propagates oracle estimation errors (width mismatch).
    pub fn refresh(&mut self) -> Result<()> {
        self.refresh_estimates().map(|_| ())
    }

    /// Like [`Self::refresh`], but also returns the full-domain estimates
    /// the cycle computed (empty while no reports have arrived) — for
    /// callers that serve the un-pruned view alongside the candidates
    /// (e.g. `idldp ingest`'s periodic estimate line) without snapshotting
    /// and estimating a second time.
    ///
    /// # Errors
    /// Same conditions as [`Self::refresh`].
    pub fn refresh_estimates(&mut self) -> Result<Vec<f64>> {
        self.since_refresh = 0;
        self.refreshes += 1;
        let snapshot = self.sink.snapshot();
        if snapshot.num_users() == 0 {
            self.candidates.clear();
            return Ok(Vec::new());
        }
        let oracle = self.mechanism.frequency_oracle(snapshot.num_users());
        let estimates = oracle.estimate_from(&snapshot)?;
        self.candidates = match self.mode {
            TrackerMode::TopK { k, slack } => top_k_indices(&estimates, k.saturating_add(slack))
                .into_iter()
                .map(|item| Candidate {
                    item,
                    estimate: estimates[item],
                })
                .collect(),
            TrackerMode::Threshold { threshold } => estimates
                .iter()
                .enumerate()
                .filter(|&(_, &e)| e >= threshold)
                .map(|(item, &e)| Candidate { item, estimate: e })
                .collect(),
        };
        Ok(estimates)
    }

    /// The candidate set as of the last refresh: the top `k + slack` items
    /// in rank order ([`TrackerMode::TopK`]) or every item at/above the
    /// threshold in index order ([`TrackerMode::Threshold`]). Possibly
    /// stale by up to `cadence - 1` reports ([`Self::is_dirty`]); `O(1)`.
    pub fn candidates(&self) -> &[Candidate] {
        &self.candidates
    }

    /// The identified heavy hitters as of the last refresh: the first `k`
    /// candidates (slack trimmed) in TopK mode, every candidate in
    /// threshold mode. `O(candidates)`.
    pub fn top_k(&self) -> Vec<usize> {
        let take = match self.mode {
            TrackerMode::TopK { k, .. } => k,
            TrackerMode::Threshold { .. } => self.candidates.len(),
        };
        self.candidates.iter().take(take).map(|c| c.item).collect()
    }

    /// Refreshes if any reports arrived since the last refresh, then
    /// returns [`Self::top_k`] — the final, batch-identical answer.
    ///
    /// # Errors
    /// Same conditions as [`Self::refresh`].
    pub fn finish(&mut self) -> Result<Vec<usize>> {
        if self.is_dirty() {
            self.refresh()?;
        }
        Ok(self.top_k())
    }

    /// Serializes the accumulated state in the stable checkpoint format
    /// ([`AccumulatorSnapshot::to_checkpoint_string`]). The candidate set
    /// is *derived* state — a pure function of the counts — so the
    /// checkpoint is exactly the accumulator snapshot and restoring it
    /// reproduces the tracker bit for bit.
    pub fn to_checkpoint_string(&self) -> String {
        self.sink.snapshot().to_checkpoint_string()
    }

    /// Restores checkpointed counts into an **empty** tracker and refreshes
    /// so the candidates reflect the restored state — the restart-recovery
    /// path (pair with `SeededReportStream::seek_to_user`, as `idldp
    /// ingest` does). Continuing ingestion after a restore yields final
    /// top-k bit-identical to an uninterrupted run.
    ///
    /// # Errors
    /// Returns an error if the snapshot width differs or the tracker
    /// already holds users (the [`ShardedAccumulator::restore`] contract).
    pub fn restore(&mut self, snapshot: &AccumulatorSnapshot) -> Result<()> {
        self.sink.restore(snapshot)?;
        self.refresh()
    }

    /// Parses a checkpoint produced by [`Self::to_checkpoint_string`] and
    /// restores it.
    ///
    /// # Errors
    /// Same conditions as [`Self::restore`], plus checkpoint parse errors.
    pub fn restore_from_checkpoint_str(&mut self, text: &str) -> Result<()> {
        self.restore(&AccumulatorSnapshot::from_checkpoint_str(text)?)
    }

    /// Consumes the tracker, returning the wrapped sink.
    pub fn into_sink(self) -> ShardedAccumulator<A> {
        self.sink
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use idldp_core::budget::Epsilon;
    use idldp_core::grr::GeneralizedRandomizedResponse;
    use idldp_core::idue::Idue;
    use idldp_core::mechanism::InputBatch;
    use idldp_core::olh::OptimalLocalHashing;

    fn eps(v: f64) -> Epsilon {
        Epsilon::new(v).unwrap()
    }

    /// Items 0..heavy are ~90% of the stream, the rest uniform tail.
    fn skewed(n: usize, m: usize, heavy: usize) -> Vec<u32> {
        (0..n)
            .map(|i| {
                if i % 10 < 9 {
                    (i % heavy) as u32
                } else {
                    (heavy + i % (m - heavy)) as u32
                }
            })
            .collect()
    }

    fn drain<'a, A: ReportAccumulator>(
        tracker: &mut HeavyHitterTracker<'a, A>,
        mech: &dyn Mechanism,
        items: &[u32],
        seed: u64,
    ) {
        let mut stream = crate::SeededReportStream::new(mech, InputBatch::Items(items), seed)
            .with_chunk_size(128);
        while stream
            .next_chunk_with(|r| tracker.push(r).map(|_| ()))
            .unwrap()
            > 0
        {}
    }

    #[test]
    fn construction_validates() {
        let mech = Idue::oue(6, eps(1.0)).unwrap();
        let ok = |mode, cadence| HeavyHitterTracker::for_mechanism(&mech, 2, mode, cadence);
        assert!(ok(TrackerMode::TopK { k: 1, slack: 0 }, 1).is_ok());
        assert!(ok(TrackerMode::TopK { k: 1, slack: 0 }, 0).is_err());
        assert!(ok(TrackerMode::TopK { k: 0, slack: 3 }, 10).is_err());
        assert!(ok(
            TrackerMode::Threshold {
                threshold: f64::NAN
            },
            10
        )
        .is_err());
        // Width-mismatched sink.
        let narrow = ShardedAccumulator::new(crate::BitReportAccumulator::new(3), 2);
        assert!(
            HeavyHitterTracker::new(&mech, narrow, TrackerMode::TopK { k: 1, slack: 0 }, 10)
                .is_err()
        );
    }

    #[test]
    fn identifies_clear_heavy_hitters_online() {
        let m = 12;
        let mech = Idue::oue(m, eps(2.0)).unwrap();
        let items = skewed(40_000, m, 3);
        let mut tracker =
            HeavyHitterTracker::for_mechanism(&mech, 3, TrackerMode::TopK { k: 3, slack: 2 }, 1000)
                .unwrap();
        drain(&mut tracker, &mech, &items, 11);
        let mut found = tracker.finish().unwrap();
        found.sort_unstable();
        assert_eq!(found, vec![0, 1, 2]);
        assert_eq!(tracker.candidates().len(), 5, "k + slack candidates");
        assert_eq!(tracker.num_users(), 40_000);
        assert!(!tracker.is_dirty());
        // The candidate view is rank-ordered with estimates attached.
        let c = tracker.candidates();
        assert!(c[0].estimate >= c[1].estimate);
    }

    #[test]
    fn cadence_controls_refresh_count_but_not_answer() {
        let m = 8;
        let mech = GeneralizedRandomizedResponse::new(eps(2.5), m).unwrap();
        let items = skewed(6000, m, 2);
        let mut answers = Vec::new();
        for cadence in [1usize, 37, 1000, usize::MAX] {
            let mut tracker = HeavyHitterTracker::for_mechanism(
                &mech,
                2,
                TrackerMode::TopK { k: 2, slack: 1 },
                cadence,
            )
            .unwrap();
            drain(&mut tracker, &mech, &items, 5);
            if cadence == 1 {
                assert_eq!(tracker.refreshes(), 6000, "refresh per report");
                assert!(!tracker.is_dirty());
            }
            if cadence == usize::MAX {
                assert_eq!(tracker.refreshes(), 0, "no cadence refresh yet");
                assert!(tracker.is_dirty());
            }
            answers.push((tracker.finish().unwrap(), tracker.candidates().to_vec()));
        }
        for other in &answers[1..] {
            assert_eq!(other, &answers[0], "cadence changed the final answer");
        }
    }

    #[test]
    fn threshold_mode_tracks_items_above() {
        let m = 10;
        let mech = Idue::oue(m, eps(3.0)).unwrap();
        let n = 30_000usize;
        let items = skewed(n, m, 2);
        let mut tracker = HeavyHitterTracker::for_mechanism(
            &mech,
            2,
            TrackerMode::Threshold {
                threshold: 0.2 * n as f64,
            },
            512,
        )
        .unwrap();
        drain(&mut tracker, &mech, &items, 3);
        let found = tracker.finish().unwrap();
        // Items 0 and 1 hold ~45% each; nothing else comes close to 20%.
        assert_eq!(found, vec![0, 1], "threshold candidates in index order");
        for c in tracker.candidates() {
            assert!(c.estimate >= 0.2 * n as f64);
        }
    }

    #[test]
    fn empty_tracker_serves_empty_answers() {
        let mech = Idue::oue(4, eps(1.0)).unwrap();
        let mut tracker =
            HeavyHitterTracker::for_mechanism(&mech, 1, TrackerMode::TopK { k: 2, slack: 0 }, 8)
                .unwrap();
        assert!(tracker.candidates().is_empty());
        assert!(tracker.top_k().is_empty());
        assert!(tracker.finish().unwrap().is_empty());
        assert_eq!(tracker.num_users(), 0);
    }

    #[test]
    fn checkpoint_restores_counts_and_candidates() {
        let m = 16;
        let mech = OptimalLocalHashing::new(eps(2.0), m).unwrap();
        let items = skewed(8192, m, 2);
        let mut tracker =
            HeavyHitterTracker::for_mechanism(&mech, 3, TrackerMode::TopK { k: 2, slack: 2 }, 256)
                .unwrap();
        drain(&mut tracker, &mech, &items, 21);
        tracker.refresh().unwrap();
        let text = tracker.to_checkpoint_string();

        // Fresh tracker, different shard count: identical state after restore.
        let mut restored =
            HeavyHitterTracker::for_mechanism(&mech, 7, TrackerMode::TopK { k: 2, slack: 2 }, 256)
                .unwrap();
        restored.restore_from_checkpoint_str(&text).unwrap();
        assert_eq!(restored.num_users(), tracker.num_users());
        assert_eq!(restored.candidates(), tracker.candidates());
        assert_eq!(restored.top_k(), tracker.top_k());
        // Restoring over live counts is refused.
        assert!(restored.restore_from_checkpoint_str(&text).is_err());
    }

    #[test]
    fn push_failure_counts_nothing() {
        let mech = GeneralizedRandomizedResponse::new(eps(1.0), 4).unwrap();
        let mut tracker =
            HeavyHitterTracker::for_mechanism(&mech, 2, TrackerMode::TopK { k: 1, slack: 0 }, 2)
                .unwrap();
        assert!(tracker.push(Report::Value(99)).is_err());
        assert_eq!(tracker.num_users(), 0);
        assert_eq!(tracker.refreshes(), 0);
        // A good report still lands and the cadence still fires.
        assert!(!tracker.push(Report::Value(1)).unwrap());
        assert!(tracker.push(Report::Value(1)).unwrap(), "cadence refresh");
        assert_eq!(tracker.top_k(), vec![1]);
    }
}
