//! Seeded report streams: the online twin of the batch pipeline.
//!
//! A [`SeededReportStream`] replays the exact client population a batch
//! `SimulationPipeline` run (in `idldp-sim`) would simulate, but one
//! report at a time, chunk by chunk. Determinism is anchored to the same
//! *chunk grid* the pipeline uses — users are split into fixed-size chunks
//! and chunk `i` draws from the independent RNG stream `(seed, i)` — which
//! is defined once here ([`chunk_ranges`]) and reused by the pipeline. The
//! `BatchMechanism` contract (batch ≡ loop, bit for bit) then guarantees
//! that streaming the reports into any sharded accumulator reproduces the
//! batch counts exactly; `crates/sim/tests/streaming_conformance.rs`
//! asserts it for all eight mechanisms.
//!
//! Chunks being independent RNG streams also makes checkpoint/restore
//! trivial: a restarted service restores the accumulator snapshot and
//! [`SeededReportStream::seek_to_user`]s past the users it already
//! ingested, without replaying a single draw.

use crate::accumulator::{Report, ReportAccumulator};
use crate::sharded::ShardedAccumulator;
use idldp_core::error::{Error, Result};
use idldp_core::mechanism::{Input, InputBatch, Mechanism};
use idldp_core::report::{ReportData, ReportShape};
use idldp_num::rng::stream_rng;

/// Default users per chunk. Identical to the batch pipeline's default so
/// that batch and streaming runs of the same `(mechanism, inputs, seed)`
/// are interchangeable.
pub const DEFAULT_CHUNK_SIZE: usize = 1024;

/// The canonical chunk grid: `(chunk_index, lo, hi)` triples covering
/// `0..n` in `chunk_size` steps. Both the batch pipeline and the report
/// streams derive their per-chunk RNG streams from these indices, so the
/// grid is the single source of truth for reproducibility.
///
/// # Panics
/// Panics if `chunk_size == 0`.
pub fn chunk_ranges(n: usize, chunk_size: usize) -> Vec<(u64, usize, usize)> {
    assert!(chunk_size > 0, "chunk size must be positive");
    (0..n.div_ceil(chunk_size))
        .map(|ci| {
            let lo = ci * chunk_size;
            (ci as u64, lo, (lo + chunk_size).min(n))
        })
        .collect()
}

/// A deterministic, chunked stream of perturbed client reports.
///
/// # Examples
///
/// The streaming happy path — generate reports chunk by chunk, fan them
/// across shards, and serve estimates mid-stream:
///
/// ```
/// use idldp_core::budget::Epsilon;
/// use idldp_core::idue::Idue;
/// use idldp_core::mechanism::{InputBatch, Mechanism};
/// use idldp_stream::{BitReportAccumulator, SeededReportStream, ShardedAccumulator};
///
/// let mechanism = Idue::oue(4, Epsilon::new(1.0).unwrap()).unwrap();
/// let items: Vec<u32> = (0..3000).map(|i| (i % 4) as u32).collect();
///
/// let sink = ShardedAccumulator::new(BitReportAccumulator::new(4), 3);
/// let mut stream = SeededReportStream::new(&mechanism, InputBatch::Items(&items), 7);
/// while stream.ingest_chunk(&sink).unwrap() > 0 {
///     // After any chunk we can already serve calibrated estimates.
///     let snapshot = sink.snapshot();
///     let oracle = mechanism.frequency_oracle(snapshot.num_users());
///     let estimates = oracle.estimate_from(&snapshot).unwrap();
///     assert_eq!(estimates.len(), 4);
/// }
/// assert_eq!(sink.num_users(), 3000);
/// ```
pub struct SeededReportStream<'a> {
    mechanism: &'a dyn Mechanism,
    inputs: InputBatch<'a>,
    seed: u64,
    chunk_size: usize,
    next_chunk: u64,
    shape: ReportShape,
    buffer: Vec<u8>,
}

impl<'a> SeededReportStream<'a> {
    /// A stream over `inputs` with the default chunk size. Reports are
    /// emitted in the mechanism's *native wire shape*
    /// ([`Mechanism::report_shape`]): the bit-vector shape flows through a
    /// reused zero-alloc buffer as [`Report::Bits`], while the compact
    /// shapes are emitted via [`Mechanism::perturb_data`]
    /// ([`Report::Value`] / [`Report::Hashed`] / [`Report::ItemSet`]).
    /// Both emission paths draw randomness identically, so the shape never
    /// changes the counts — pair the stream with
    /// [`crate::ShapedAccumulator::for_mechanism`] and any mechanism's
    /// reports land in a matching sink.
    pub fn new(mechanism: &'a dyn Mechanism, inputs: InputBatch<'a>, seed: u64) -> Self {
        let shape = mechanism.report_shape();
        // Only the bit-vector shape uses the reused buffer; compact shapes
        // emit through `perturb_data` and never touch it.
        let buffer = if shape == ReportShape::Bits {
            vec![0u8; mechanism.report_len()]
        } else {
            Vec::new()
        };
        Self {
            mechanism,
            inputs,
            seed,
            chunk_size: DEFAULT_CHUNK_SIZE,
            next_chunk: 0,
            shape,
            buffer,
        }
    }

    /// The wire shape this stream emits.
    pub fn report_shape(&self) -> ReportShape {
        self.shape
    }

    /// Overrides the chunk size. As in the batch pipeline, the chunk size
    /// is part of the RNG grid — streams being compared must share it.
    ///
    /// # Panics
    /// Panics if `chunk_size == 0`.
    pub fn with_chunk_size(mut self, chunk_size: usize) -> Self {
        assert!(chunk_size > 0, "chunk size must be positive");
        self.chunk_size = chunk_size;
        self
    }

    /// The configured chunk size.
    pub fn chunk_size(&self) -> usize {
        self.chunk_size
    }

    /// Total users in the underlying population.
    pub fn num_users(&self) -> usize {
        self.inputs.len()
    }

    /// Users already emitted (the stream position).
    pub fn position(&self) -> usize {
        ((self.next_chunk as usize) * self.chunk_size).min(self.inputs.len())
    }

    /// Users not yet emitted.
    pub fn remaining(&self) -> usize {
        self.inputs.len() - self.position()
    }

    /// Fast-forwards to user `user` without generating reports. Chunks are
    /// independent RNG streams, so skipping whole chunks costs nothing;
    /// `user` must therefore lie on a chunk boundary (which it always does
    /// when it came from a snapshot written at chunk granularity, e.g. by
    /// `idldp ingest --checkpoint`).
    ///
    /// # Errors
    /// Returns an error if `user` is not a chunk boundary or exceeds the
    /// population.
    pub fn seek_to_user(&mut self, user: usize) -> Result<()> {
        if user > self.inputs.len() {
            return Err(Error::IndexOutOfRange {
                what: "stream seek target".into(),
                index: user,
                bound: self.inputs.len() + 1,
            });
        }
        if !user.is_multiple_of(self.chunk_size) && user != self.inputs.len() {
            return Err(Error::ParameterOrdering {
                detail: format!(
                    "stream seek target {user} is not a multiple of the chunk size {}",
                    self.chunk_size
                ),
            });
        }
        self.next_chunk = user.div_ceil(self.chunk_size) as u64;
        Ok(())
    }

    /// Generates the next chunk of reports, passing each to `sink` in user
    /// order. Returns the number of users emitted — `0` once the stream is
    /// exhausted.
    ///
    /// # Errors
    /// Returns the first perturbation or sink error; the stream does not
    /// advance past a failed chunk.
    pub fn next_chunk_with<F>(&mut self, mut sink: F) -> Result<usize>
    where
        F: FnMut(Report<'_>) -> Result<()>,
    {
        let n = self.inputs.len();
        let lo = (self.next_chunk as usize) * self.chunk_size;
        if lo >= n {
            return Ok(0);
        }
        let hi = (lo + self.chunk_size).min(n);
        let mut rng = stream_rng(self.seed, self.next_chunk);
        let compact = self.shape != ReportShape::Bits;
        for user in lo..hi {
            let input = match self.inputs {
                InputBatch::Items(items) => Input::Item(items[user] as usize),
                InputBatch::Sets(sets) => Input::Set(&sets[user]),
            };
            if compact {
                // Native compact wire shapes (categorical value, hashed
                // pair, item set): no m-wide buffer at all.
                let data = self.mechanism.perturb_data(input, &mut rng)?;
                debug_assert!(!matches!(data, ReportData::Bits(_)));
                sink(data.as_report())?;
            } else {
                // The bit-vector shape: the zero-alloc path through the
                // reused buffer.
                self.mechanism
                    .perturb_into(input, &mut rng, &mut self.buffer)?;
                sink(Report::Bits(&self.buffer))?;
            }
        }
        self.next_chunk += 1;
        Ok(hi - lo)
    }

    /// Convenience: feeds the next chunk into a sharded accumulator.
    /// Returns the number of users ingested (`0` when exhausted).
    ///
    /// # Errors
    /// Same conditions as [`Self::next_chunk_with`].
    pub fn ingest_chunk<A: ReportAccumulator>(
        &mut self,
        sink: &ShardedAccumulator<A>,
    ) -> Result<usize> {
        self.next_chunk_with(|report| sink.push(report))
    }

    /// Drains the whole remaining stream into a sharded accumulator,
    /// returning the total users ingested.
    ///
    /// # Errors
    /// Same conditions as [`Self::next_chunk_with`].
    pub fn ingest_all<A: ReportAccumulator>(
        &mut self,
        sink: &ShardedAccumulator<A>,
    ) -> Result<usize> {
        let mut total = 0;
        loop {
            let ingested = self.ingest_chunk(sink)?;
            if ingested == 0 {
                return Ok(total);
            }
            total += ingested;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::accumulator::BitReportAccumulator;
    use idldp_core::budget::Epsilon;
    use idldp_core::idue::Idue;

    fn oue(m: usize) -> Idue {
        Idue::oue(m, Epsilon::new(1.5).unwrap()).unwrap()
    }

    #[test]
    fn grid_matches_spec() {
        assert_eq!(chunk_ranges(0, 4), vec![]);
        assert_eq!(chunk_ranges(4, 4), vec![(0, 0, 4)]);
        assert_eq!(chunk_ranges(5, 4), vec![(0, 0, 4), (1, 4, 5)]);
        assert_eq!(
            chunk_ranges(10, 3),
            vec![(0, 0, 3), (1, 3, 6), (2, 6, 9), (3, 9, 10)]
        );
    }

    #[test]
    fn stream_is_deterministic_and_chunked() {
        let mech = oue(5);
        let items: Vec<u32> = (0..700).map(|i| (i % 5) as u32).collect();
        let run = |seed| {
            let sink = ShardedAccumulator::new(BitReportAccumulator::new(5), 2);
            let mut stream = SeededReportStream::new(&mech, InputBatch::Items(&items), seed)
                .with_chunk_size(256);
            let mut chunks = vec![];
            loop {
                let got = stream.ingest_chunk(&sink).unwrap();
                if got == 0 {
                    break;
                }
                chunks.push(got);
            }
            (chunks, sink.snapshot())
        };
        let (chunks, snap1) = run(3);
        assert_eq!(chunks, vec![256, 256, 188]);
        let (_, snap2) = run(3);
        assert_eq!(snap1, snap2, "same seed, same counts");
        let (_, snap3) = run(4);
        assert_ne!(snap1, snap3, "different seed, different counts");
        assert_eq!(snap1.num_users(), 700);
    }

    #[test]
    fn seek_skips_exactly_whole_chunks() {
        let mech = oue(3);
        let items: Vec<u32> = (0..40).map(|i| (i % 3) as u32).collect();
        // Reference: full run, but only counting users >= 20.
        let tail_sink = ShardedAccumulator::new(BitReportAccumulator::new(3), 1);
        let mut full =
            SeededReportStream::new(&mech, InputBatch::Items(&items), 9).with_chunk_size(10);
        let mut seen = 0usize;
        loop {
            let got = full
                .next_chunk_with(|r| {
                    if seen >= 20 {
                        tail_sink.push(r)?;
                    }
                    seen += 1;
                    Ok(())
                })
                .unwrap();
            if got == 0 {
                break;
            }
        }
        // Seeked run over the same tail.
        let seek_sink = ShardedAccumulator::new(BitReportAccumulator::new(3), 1);
        let mut seeked =
            SeededReportStream::new(&mech, InputBatch::Items(&items), 9).with_chunk_size(10);
        seeked.seek_to_user(20).unwrap();
        assert_eq!(seeked.position(), 20);
        assert_eq!(seeked.remaining(), 20);
        seeked.ingest_all(&seek_sink).unwrap();
        assert_eq!(tail_sink.snapshot(), seek_sink.snapshot());
        // Invalid seeks.
        let mut s =
            SeededReportStream::new(&mech, InputBatch::Items(&items), 9).with_chunk_size(10);
        assert!(s.seek_to_user(15).is_err());
        assert!(s.seek_to_user(41).is_err());
        assert!(s.seek_to_user(40).is_ok(), "end is always reachable");
        assert_eq!(s.remaining(), 0);
    }

    #[test]
    fn set_inputs_stream() {
        use idldp_core::idue_ps::IduePs;
        let mech = IduePs::oue_ps(4, Epsilon::new(2.0).unwrap(), 2).unwrap();
        let sets: Vec<Vec<u32>> = (0..120).map(|i| vec![(i % 4) as u32]).collect();
        let sink = ShardedAccumulator::new(BitReportAccumulator::new(6), 3);
        let mut stream =
            SeededReportStream::new(&mech, InputBatch::Sets(&sets), 5).with_chunk_size(50);
        assert_eq!(stream.ingest_all(&sink).unwrap(), 120);
        assert_eq!(sink.snapshot().num_users(), 120);
        assert_eq!(sink.report_len(), 6);
    }
}
