//! # `idldp-sim` — end-to-end protocol simulation and experiments
//!
//! Glues mechanisms (`idldp-core`), solvers (`idldp-opt`) and datasets
//! (`idldp-data`) into the client/server pipeline of the paper's Fig. 2 and
//! runs the evaluation-section experiments:
//!
//! * [`registry`] — [`registry::MechanismRegistry`]: the one table from
//!   protocol names to builders. Everything above `idldp-core` constructs
//!   mechanisms through it; adding a protocol never adds a `match` arm.
//! * [`spec`] — [`spec::MechanismSpec`]: typed handles for the paper's
//!   lineup (RAPPOR, OUE, IDUE under one of the three optimization models),
//!   resolved against the registry.
//! * [`pipeline`] — [`pipeline::SimulationPipeline`]: the batched,
//!   rayon-parallel client simulation over any
//!   [`idldp_core::mechanism::BatchMechanism`]; chunked RNG streams make
//!   parallel and sequential runs byte-identical per seed. Runs on top of
//!   the [`stream`] accumulator layer (per-chunk state fans into a
//!   [`idldp_stream::ShardedAccumulator`]), and
//!   [`pipeline::SimulationPipeline::run_snapshot`] exposes the frozen
//!   state for the incremental oracle path.
//! * [`exact`] — typed wrappers over the pipeline for the *exact* per-user
//!   path (Algorithms 1/3 literally).
//! * [`aggregate`] — the *aggregate* simulation: per-bit counts drawn as
//!   two binomials, distributionally identical to the exact path for
//!   frequency estimation but `O(n + m)` instead of `O(n·m)`. The
//!   equivalence is asserted statistically in tests and in the
//!   `aggregate_vs_exact` integration test.
//! * [`metrics`] — total/top-k squared-error metrics.
//! * [`experiment`] — multi-trial seeded experiment runners producing the
//!   rows behind the paper's Figs. 3–5, generic over `dyn BatchMechanism`.
//! * [`report`] — fixed-width text tables and CSV output.

#![deny(missing_docs)]

pub mod aggregate;
pub mod exact;
pub mod experiment;
pub mod heavy_hitters;
pub mod metrics;
pub mod pipeline;
pub mod registry;
pub mod report;
pub mod spec;

/// The streaming aggregation layer (`idldp-stream`), re-exported so
/// simulation callers reach sharded accumulators and seeded report streams
/// without a separate dependency.
pub use idldp_stream as stream;

pub use experiment::{
    ItemSetExperiment, MechanismResult, SimulationMode, SingleItemExperiment, TrialOutcome,
};
pub use idldp_core::mechanism::{BatchMechanism, InputBatch, Mechanism};
pub use pipeline::SimulationPipeline;
pub use registry::{BuildContext, MechanismRegistry};
pub use spec::MechanismSpec;
