//! # `idldp-sim` — end-to-end protocol simulation and experiments
//!
//! Glues mechanisms (`idldp-core`), solvers (`idldp-opt`) and datasets
//! (`idldp-data`) into the client/server pipeline of the paper's Fig. 2 and
//! runs the evaluation-section experiments:
//!
//! * [`spec`] — [`spec::MechanismSpec`]: which mechanism to run (RAPPOR,
//!   OUE, or IDUE under one of the three optimization models), and builders
//!   turning a spec plus a level partition into concrete mechanisms.
//! * [`exact`] — the *exact* per-user simulation: every user one-hot
//!   encodes and flips every bit (Algorithms 1/3 literally), parallelized
//!   over users with crossbeam scoped threads.
//! * [`aggregate`] — the *aggregate* simulation: per-bit counts drawn as
//!   two binomials, distributionally identical to the exact path for
//!   frequency estimation but `O(n + m)` instead of `O(n·m)`. The
//!   equivalence is asserted statistically in tests and in the
//!   `aggregate_vs_exact` integration test.
//! * [`metrics`] — total/top-k squared-error metrics.
//! * [`experiment`] — multi-trial seeded experiment runners producing the
//!   rows behind the paper's Figs. 3–5.
//! * [`report`] — fixed-width text tables and CSV output.

pub mod aggregate;
pub mod exact;
pub mod experiment;
pub mod heavy_hitters;
pub mod metrics;
pub mod report;
pub mod spec;

pub use experiment::{
    ItemSetExperiment, MechanismResult, SingleItemExperiment, TrialOutcome,
};
pub use spec::MechanismSpec;
