//! Heavy-hitter identification on top of the frequency oracle.
//!
//! The paper names heavy-hitter estimation as future work; this module
//! provides the standard oracle-based construction: estimate all item
//! frequencies, then report the top-k (or everything above a threshold).
//! The interesting question for ID-LDP is whether IDUE's lower estimation
//! variance translates into better identification quality — the
//! `heavy_hitters` example and the ablation harness measure precision /
//! recall / F1 against the true top-k.

use std::collections::HashSet;

/// Identification quality against a ground-truth set.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct IdentificationQuality {
    /// Fraction of identified items that are true heavy hitters.
    pub precision: f64,
    /// Fraction of true heavy hitters that were identified.
    pub recall: f64,
    /// Harmonic mean of precision and recall.
    pub f1: f64,
}

/// Indices of the `k` largest estimates, largest first.
pub fn identify_top_k(estimates: &[f64], k: usize) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..estimates.len()).collect();
    idx.sort_by(|&a, &b| {
        estimates[b]
            .partial_cmp(&estimates[a])
            .unwrap()
            .then(a.cmp(&b))
    });
    idx.truncate(k);
    idx
}

/// Indices of all items whose estimate is at least `threshold`.
pub fn identify_above(estimates: &[f64], threshold: f64) -> Vec<usize> {
    estimates
        .iter()
        .enumerate()
        .filter_map(|(i, &e)| (e >= threshold).then_some(i))
        .collect()
}

/// Precision/recall/F1 of `identified` against `truth`.
///
/// Empty `identified` or `truth` produce zero scores (not NaN).
pub fn quality(identified: &[usize], truth: &[usize]) -> IdentificationQuality {
    if identified.is_empty() || truth.is_empty() {
        return IdentificationQuality {
            precision: 0.0,
            recall: 0.0,
            f1: 0.0,
        };
    }
    let truth_set: HashSet<usize> = truth.iter().copied().collect();
    let hits = identified.iter().filter(|i| truth_set.contains(i)).count() as f64;
    let precision = hits / identified.len() as f64;
    let recall = hits / truth.len() as f64;
    let f1 = if precision + recall == 0.0 {
        0.0
    } else {
        2.0 * precision * recall / (precision + recall)
    };
    IdentificationQuality {
        precision,
        recall,
        f1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn top_k_orders_and_truncates() {
        let est = [5.0, 1.0, 9.0, 3.0];
        assert_eq!(identify_top_k(&est, 2), vec![2, 0]);
        assert_eq!(identify_top_k(&est, 10).len(), 4);
        assert!(identify_top_k(&est, 0).is_empty());
    }

    #[test]
    fn top_k_tie_break_stable() {
        let est = [1.0, 1.0, 1.0];
        assert_eq!(identify_top_k(&est, 2), vec![0, 1]);
    }

    #[test]
    fn threshold_identification() {
        let est = [5.0, -1.0, 9.0, 3.0];
        assert_eq!(identify_above(&est, 3.0), vec![0, 2, 3]);
        assert_eq!(identify_above(&est, 100.0), Vec::<usize>::new());
    }

    #[test]
    fn quality_perfect_and_disjoint() {
        let q = quality(&[0, 1], &[0, 1]);
        assert_eq!(q.precision, 1.0);
        assert_eq!(q.recall, 1.0);
        assert_eq!(q.f1, 1.0);
        let q = quality(&[2, 3], &[0, 1]);
        assert_eq!(q.f1, 0.0);
    }

    #[test]
    fn quality_partial_overlap() {
        // identified {0,1,2}, truth {0,3}: hits = 1.
        let q = quality(&[0, 1, 2], &[0, 3]);
        assert!((q.precision - 1.0 / 3.0).abs() < 1e-12);
        assert!((q.recall - 0.5).abs() < 1e-12);
        let want_f1 = 2.0 * (1.0 / 3.0) * 0.5 / (1.0 / 3.0 + 0.5);
        assert!((q.f1 - want_f1).abs() < 1e-12);
    }

    #[test]
    fn quality_empty_inputs() {
        assert_eq!(quality(&[], &[0]).f1, 0.0);
        assert_eq!(quality(&[0], &[]).f1, 0.0);
    }

    #[test]
    fn end_to_end_identification_with_oracle() {
        use idldp_core::budget::Epsilon;
        use idldp_core::idue::Idue;
        use idldp_data::dataset::SingleItemDataset;
        use idldp_num::rng::stream_rng;
        // Ground truth: items 0..3 are heavy (90% of users), 4..20 light.
        let m = 20;
        let n = 60_000usize;
        let items: Vec<u32> = (0..n)
            .map(|i| {
                if i % 10 < 9 {
                    (i % 3) as u32
                } else {
                    3 + (i % 17) as u32
                }
            })
            .collect();
        let ds = SingleItemDataset::new(items, m);
        let mech = Idue::oue(m, Epsilon::new(2.0).unwrap()).unwrap();
        let mut rng = stream_rng(77, 0);
        let counts = crate::aggregate::run_single_item(&mut rng, &mech, &ds);
        let est = mech.estimator(n as u64).estimate(&counts).unwrap();
        let found = identify_top_k(&est, 3);
        let q = quality(&found, &ds.top_k(3));
        assert!(q.f1 > 0.99, "oracle should nail clear heavy hitters: {q:?}");
    }
}
