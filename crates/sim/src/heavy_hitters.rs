//! Heavy-hitter identification on top of the frequency oracle.
//!
//! The paper names heavy-hitter estimation as future work; this module
//! provides the standard oracle-based construction: estimate all item
//! frequencies, then report the top-k (or everything above a threshold).
//! The interesting question for ID-LDP is whether IDUE's lower estimation
//! variance translates into better identification quality — the
//! `heavy_hitters` example and the ablation harness measure precision /
//! recall / F1 against the true top-k.
//!
//! The *online* twin lives in the streaming layer
//! ([`idldp_stream::HeavyHitterTracker`], re-exported as
//! `idldp_sim::stream::HeavyHitterTracker`): it answers the same question
//! over a report stream via periodic snapshots instead of a materialized
//! population, and its final top-k is identical to [`identify_top_k`] on
//! the batch estimates — both rank through the one shared comparator
//! ([`idldp_num::vecops::top_k_indices`]), and
//! `crates/sim/tests/topk_conformance.rs` proves the equivalence for all
//! eight mechanisms. [`tracked_quality`] scores that online answer against
//! a ground-truth set.

use crate::pipeline::{SimulationPipeline, TopKRun};
use idldp_core::error::Result;
use idldp_core::mechanism::{BatchMechanism, InputBatch};
use idldp_stream::TrackerMode;
use std::collections::HashSet;

/// Identification quality against a ground-truth set.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct IdentificationQuality {
    /// Fraction of identified items that are true heavy hitters.
    pub precision: f64,
    /// Fraction of true heavy hitters that were identified.
    pub recall: f64,
    /// Harmonic mean of precision and recall.
    pub f1: f64,
}

/// Indices of the `k` largest estimates, largest first; ties break toward
/// the smaller index.
///
/// Delegates to the canonical [`idldp_num::vecops::top_k_indices`] ranking
/// (`f64::total_cmp`-based, NaN sorted below every number), shared with the
/// online [`idldp_stream::HeavyHitterTracker`] — so a NaN estimate from a
/// degenerate oracle input can neither panic the sort nor be identified as
/// a heavy hitter, and batch and streaming rankings agree by construction.
pub fn identify_top_k(estimates: &[f64], k: usize) -> Vec<usize> {
    idldp_num::vecops::top_k_indices(estimates, k)
}

/// Indices of all items whose estimate is at least `threshold` (NaN
/// estimates never qualify).
pub fn identify_above(estimates: &[f64], threshold: f64) -> Vec<usize> {
    estimates
        .iter()
        .enumerate()
        .filter_map(|(i, &e)| (e >= threshold).then_some(i))
        .collect()
}

/// Runs the *online* heavy-hitter tracker over `inputs`
/// ([`SimulationPipeline::run_top_k`], default shard count and chunk size)
/// and scores its final identified set against the ground-truth item set
/// `truth` — the one-call evaluation harness behind the identification
/// experiments.
///
/// Returns the tracker run alongside the quality, so callers can inspect
/// the candidate estimates of a disappointing score.
///
/// # Errors
/// Propagates pipeline/tracker errors (wrong input kind, out-of-domain
/// items).
pub fn tracked_quality(
    mechanism: &dyn BatchMechanism,
    inputs: InputBatch<'_>,
    seed: u64,
    mode: TrackerMode,
    cadence: usize,
    truth: &[usize],
) -> Result<(TopKRun, IdentificationQuality)> {
    let run = SimulationPipeline::new().run_top_k(
        mechanism,
        inputs,
        seed,
        idldp_stream::DEFAULT_SHARDS,
        mode,
        cadence,
    )?;
    let q = quality(&run.top_k, truth);
    Ok((run, q))
}

/// Precision/recall/F1 of `identified` against `truth`.
///
/// Empty `identified` or `truth` produce zero scores (not NaN).
pub fn quality(identified: &[usize], truth: &[usize]) -> IdentificationQuality {
    if identified.is_empty() || truth.is_empty() {
        return IdentificationQuality {
            precision: 0.0,
            recall: 0.0,
            f1: 0.0,
        };
    }
    let truth_set: HashSet<usize> = truth.iter().copied().collect();
    let hits = identified.iter().filter(|i| truth_set.contains(i)).count() as f64;
    let precision = hits / identified.len() as f64;
    let recall = hits / truth.len() as f64;
    let f1 = if precision + recall == 0.0 {
        0.0
    } else {
        2.0 * precision * recall / (precision + recall)
    };
    IdentificationQuality {
        precision,
        recall,
        f1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn top_k_orders_and_truncates() {
        let est = [5.0, 1.0, 9.0, 3.0];
        assert_eq!(identify_top_k(&est, 2), vec![2, 0]);
        assert_eq!(identify_top_k(&est, 10).len(), 4);
        assert!(identify_top_k(&est, 0).is_empty());
    }

    #[test]
    fn top_k_tie_break_stable() {
        let est = [1.0, 1.0, 1.0];
        assert_eq!(identify_top_k(&est, 2), vec![0, 1]);
    }

    #[test]
    fn top_k_survives_nan_estimates() {
        // Regression: a NaN estimate (degenerate oracle input) used to
        // panic the `partial_cmp(..).unwrap()` sort mid-run. It must now
        // rank below every real estimate — never among the heavy hitters.
        let est = [2.0, f64::NAN, 9.0, -1.0];
        assert_eq!(identify_top_k(&est, 2), vec![2, 0]);
        assert_eq!(identify_top_k(&est, 4), vec![2, 0, 3, 1]);
        assert_eq!(identify_top_k(&[f64::NAN, f64::NAN], 1), vec![0]);
        // Threshold identification never admits NaN either.
        assert_eq!(identify_above(&est, -10.0), vec![0, 2, 3]);
        assert!(identify_above(&[f64::NAN], f64::NEG_INFINITY).is_empty());
    }

    #[test]
    fn threshold_identification() {
        let est = [5.0, -1.0, 9.0, 3.0];
        assert_eq!(identify_above(&est, 3.0), vec![0, 2, 3]);
        assert_eq!(identify_above(&est, 100.0), Vec::<usize>::new());
    }

    #[test]
    fn quality_perfect_and_disjoint() {
        let q = quality(&[0, 1], &[0, 1]);
        assert_eq!(q.precision, 1.0);
        assert_eq!(q.recall, 1.0);
        assert_eq!(q.f1, 1.0);
        let q = quality(&[2, 3], &[0, 1]);
        assert_eq!(q.f1, 0.0);
    }

    #[test]
    fn quality_partial_overlap() {
        // identified {0,1,2}, truth {0,3}: hits = 1.
        let q = quality(&[0, 1, 2], &[0, 3]);
        assert!((q.precision - 1.0 / 3.0).abs() < 1e-12);
        assert!((q.recall - 0.5).abs() < 1e-12);
        let want_f1 = 2.0 * (1.0 / 3.0) * 0.5 / (1.0 / 3.0 + 0.5);
        assert!((q.f1 - want_f1).abs() < 1e-12);
    }

    #[test]
    fn quality_empty_inputs() {
        assert_eq!(quality(&[], &[0]).f1, 0.0);
        assert_eq!(quality(&[0], &[]).f1, 0.0);
    }

    #[test]
    fn end_to_end_identification_with_oracle() {
        use idldp_core::budget::Epsilon;
        use idldp_core::idue::Idue;
        use idldp_data::dataset::SingleItemDataset;
        use idldp_num::rng::stream_rng;
        // Ground truth: items 0..3 are heavy (90% of users), 4..20 light.
        let m = 20;
        let n = 60_000usize;
        let items: Vec<u32> = (0..n)
            .map(|i| {
                if i % 10 < 9 {
                    (i % 3) as u32
                } else {
                    3 + (i % 17) as u32
                }
            })
            .collect();
        let ds = SingleItemDataset::new(items, m);
        let mech = Idue::oue(m, Epsilon::new(2.0).unwrap()).unwrap();
        let mut rng = stream_rng(77, 0);
        let counts = crate::aggregate::run_single_item(&mut rng, &mech, &ds);
        let est = mech.estimator(n as u64).estimate(&counts).unwrap();
        let found = identify_top_k(&est, 3);
        let q = quality(&found, &ds.top_k(3));
        assert!(q.f1 > 0.99, "oracle should nail clear heavy hitters: {q:?}");
    }

    #[test]
    fn tracked_quality_scores_the_online_answer() {
        use idldp_core::budget::Epsilon;
        use idldp_core::idue::Idue;
        let m = 16;
        let n = 50_000usize;
        // Items 0..2 carry 90% of the stream.
        let items: Vec<u32> = (0..n)
            .map(|i| {
                if i % 10 < 9 {
                    (i % 3) as u32
                } else {
                    3 + (i % 13) as u32
                }
            })
            .collect();
        let mech = Idue::oue(m, Epsilon::new(2.0).unwrap()).unwrap();
        let (run, q) = tracked_quality(
            &mech,
            InputBatch::Items(&items),
            41,
            TrackerMode::TopK { k: 3, slack: 2 },
            4096,
            &[0, 1, 2],
        )
        .unwrap();
        assert_eq!(run.num_users, n as u64);
        assert!(run.refreshes >= n as u64 / 4096, "cadence refreshes ran");
        assert_eq!(run.candidates.len(), 5);
        assert!(q.f1 > 0.99, "online tracker should nail them too: {q:?}");
    }
}
