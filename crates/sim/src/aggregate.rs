//! Distribution-equivalent aggregate simulation.
//!
//! For frequency estimation the server only uses per-bit *counts*. Users
//! perturb independently, so the count of bit `i` decomposes exactly as
//!
//! ```text
//! c_i = Binomial(S_i, a_i) + Binomial(n − S_i, b_i)
//! ```
//!
//! where `S_i` is the number of users whose encoded input has bit `i` hot
//! (the true count for single-item inputs; the pad-and-sample outcome count
//! for IDUE-PS). Sampling the two binomials per bit is `O(m)` after an
//! `O(n)` sampling pass — equivalent in distribution to the exact path but
//! orders of magnitude faster at paper scale. Equivalence is asserted in
//! the `aggregate_vs_exact` integration test.

use idldp_core::error::{Error as CoreError, Result as CoreResult};
use idldp_core::idue::Idue;
use idldp_core::idue_ps::IduePs;
use idldp_core::mechanism::{Input, InputBatch, Mechanism};
use idldp_core::snapshot::AccumulatorSnapshot;
use idldp_data::dataset::{ItemSetDataset, SingleItemDataset};
use idldp_num::binomial::sample_binomial;
use rand::{Rng, RngCore};

/// Draws per-bit counts given hot-user counts `s` and per-bit `(a, b)`.
///
/// # Panics
/// Panics if the slices disagree in length or some `s[i] > n`.
pub fn counts_from_hot<R: Rng + ?Sized>(
    rng: &mut R,
    s: &[u64],
    a: &[f64],
    b: &[f64],
    n: u64,
) -> Vec<u64> {
    assert_eq!(s.len(), a.len());
    assert_eq!(s.len(), b.len());
    s.iter()
        .zip(a.iter().zip(b))
        .map(|(&si, (&ai, &bi))| {
            assert!(si <= n, "hot count exceeds user count");
            sample_binomial(rng, si, ai) + sample_binomial(rng, n - si, bi)
        })
        .collect()
}

/// Mechanism-generic aggregate run: encodes every input into its hot bucket
/// (via [`Mechanism::encode_hot`]) and then draws the two binomials per
/// bucket from the mechanism's [`Mechanism::bit_profile`].
///
/// # Errors
/// Returns an error if the mechanism has no per-bucket Bernoulli profile
/// (e.g. a general [`idldp_core::matrix_mech::PerturbationMatrix`]) or an
/// input is invalid — use the exact pipeline for those.
pub fn run_counts<R: Rng>(
    rng: &mut R,
    mechanism: &dyn Mechanism,
    inputs: InputBatch<'_>,
) -> CoreResult<Vec<u64>> {
    let profile = mechanism.bit_profile().ok_or_else(|| CoreError::Empty {
        what: format!(
            "bit profile of `{}` (aggregate path needs a Bernoulli decomposition)",
            mechanism.kind()
        ),
    })?;
    let mut hot = vec![0u64; mechanism.report_len()];
    let dyn_rng: &mut dyn RngCore = rng;
    match inputs {
        InputBatch::Items(items) => {
            for &item in items {
                hot[mechanism.encode_hot(Input::Item(item as usize), dyn_rng)?] += 1;
            }
        }
        InputBatch::Sets(sets) => {
            for set in sets {
                hot[mechanism.encode_hot(Input::Set(set), dyn_rng)?] += 1;
            }
        }
    }
    Ok(counts_from_hot(
        rng,
        &hot,
        &profile.a,
        &profile.b,
        inputs.len() as u64,
    ))
}

/// Like [`run_counts`], but freezes the drawn counts and the user total
/// into an [`AccumulatorSnapshot`], so the aggregate path plugs into the
/// same incremental oracle/checkpoint machinery as the exact and streaming
/// paths.
///
/// # Errors
/// Same conditions as [`run_counts`].
pub fn run_snapshot<R: Rng>(
    rng: &mut R,
    mechanism: &dyn Mechanism,
    inputs: InputBatch<'_>,
) -> CoreResult<AccumulatorSnapshot> {
    let counts = run_counts(rng, mechanism, inputs)?;
    AccumulatorSnapshot::new(counts, inputs.len() as u64)
}

/// Aggregate single-item run: hot counts are the true counts.
pub fn run_single_item<R: Rng + ?Sized>(
    rng: &mut R,
    mechanism: &Idue,
    dataset: &SingleItemDataset,
) -> Vec<u64> {
    assert_eq!(
        mechanism.domain_size(),
        dataset.domain_size(),
        "mechanism/dataset domain mismatch"
    );
    let hot: Vec<u64> = dataset.true_counts().iter().map(|&c| c as u64).collect();
    let ue = mechanism.unary_encoding();
    counts_from_hot(rng, &hot, ue.a(), ue.b(), dataset.num_users() as u64)
}

/// Runs the pad-and-sample stage for every user, returning per-bit hot
/// counts over `m + ℓ` bits.
pub fn sampled_hot_counts<R: Rng + ?Sized>(
    rng: &mut R,
    mechanism: &IduePs,
    dataset: &ItemSetDataset,
) -> Vec<u64> {
    let m = mechanism.domain_size();
    let l = mechanism.padding_length();
    let mut hot = vec![0u64; m + l];
    let mut scratch: Vec<usize> = Vec::new();
    for set in dataset.sets() {
        scratch.clear();
        scratch.extend(set.iter().map(|&i| i as usize));
        let sampled = mechanism.sample_stage(&scratch, rng);
        hot[sampled.encoded_index(m)] += 1;
    }
    hot
}

/// Aggregate item-set run: PS sampling per user (`O(Σ|x|)`), then two
/// binomials per bit.
pub fn run_item_set<R: Rng + ?Sized>(
    rng: &mut R,
    mechanism: &IduePs,
    dataset: &ItemSetDataset,
) -> Vec<u64> {
    assert_eq!(
        mechanism.domain_size(),
        dataset.domain_size(),
        "mechanism/dataset domain mismatch"
    );
    let hot = sampled_hot_counts(rng, mechanism, dataset);
    let ue = mechanism.unary_encoding();
    counts_from_hot(rng, &hot, ue.a(), ue.b(), dataset.num_users() as u64)
}

/// Expected hot counts for IDUE-PS: each item `i` in a user's set `x` is
/// sampled with probability `1 / max(|x|, ℓ)`. Used by the theoretical-MSE
/// reporting for item-set experiments.
pub fn expected_sampled_counts(dataset: &ItemSetDataset, l: usize) -> Vec<f64> {
    let mut expected = vec![0.0; dataset.domain_size()];
    for set in dataset.sets() {
        if set.is_empty() {
            continue;
        }
        let rate = 1.0 / (set.len().max(l)) as f64;
        for &i in set {
            expected[i as usize] += rate;
        }
    }
    expected
}

#[cfg(test)]
mod tests {
    use super::*;
    use idldp_core::budget::Epsilon;
    use idldp_core::idue_ps::IduePs;
    use idldp_num::rng::SplitMix64;

    fn eps(v: f64) -> Epsilon {
        Epsilon::new(v).unwrap()
    }

    #[test]
    fn counts_from_hot_moments() {
        let mut rng = SplitMix64::new(1);
        let n = 10_000u64;
        let s = [4_000u64];
        let (a, b) = (0.5, 0.2);
        let trials = 3_000;
        let mean: f64 = (0..trials)
            .map(|_| counts_from_hot(&mut rng, &s, &[a], &[b], n)[0] as f64)
            .sum::<f64>()
            / trials as f64;
        let want = s[0] as f64 * a + (n - s[0]) as f64 * b;
        assert!((mean - want).abs() < 15.0, "mean {mean} want {want}");
    }

    #[test]
    fn single_item_estimates_recover_truth() {
        let mech = Idue::oue(8, eps(2.0)).unwrap();
        let n = 100_000usize;
        let items: Vec<u32> = (0..n).map(|i| (i % 4) as u32).collect();
        let ds = SingleItemDataset::new(items, 8);
        let mut rng = SplitMix64::new(2);
        let counts = run_single_item(&mut rng, &mech, &ds);
        let est = mech.estimator(n as u64).estimate(&counts).unwrap();
        let truth = ds.true_counts();
        for i in 0..8 {
            assert!(
                (est[i] - truth[i]).abs() < 0.03 * n as f64,
                "item {i}: {} vs {}",
                est[i],
                truth[i]
            );
        }
    }

    #[test]
    fn expected_sampled_counts_formula() {
        // Sets: {0,1} (size 2), {0} (size 1), {} — with l = 3.
        let ds = ItemSetDataset::new(vec![vec![0, 1], vec![0], vec![]], 3);
        let e = expected_sampled_counts(&ds, 3);
        // {0,1}: each at 1/3; {0}: 1/3. → item0: 2/3, item1: 1/3.
        assert!((e[0] - 2.0 / 3.0).abs() < 1e-12);
        assert!((e[1] - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(e[2], 0.0);
        // Oversized set: {0,1} with l = 1 → rate 1/2 each.
        let e = expected_sampled_counts(&ds, 1);
        assert!((e[0] - 1.5).abs() < 1e-12);
    }

    #[test]
    fn sampled_hot_counts_sum_to_users() {
        let mech = IduePs::oue_ps(5, eps(1.0), 3).unwrap();
        let ds = ItemSetDataset::new(vec![vec![0, 1], vec![2], vec![], vec![0, 1, 2, 3, 4]], 5);
        let mut rng = SplitMix64::new(3);
        let hot = sampled_hot_counts(&mut rng, &mech, &ds);
        assert_eq!(hot.len(), 8);
        assert_eq!(hot.iter().sum::<u64>(), 4, "one sample per user");
    }

    #[test]
    fn item_set_aggregate_recovers_truth() {
        let mech = IduePs::oue_ps(6, eps(2.0), 2).unwrap();
        let n = 80_000usize;
        let sets: Vec<Vec<u32>> = (0..n).map(|_| vec![1, 4]).collect();
        let ds = ItemSetDataset::new(sets, 6);
        let mut rng = SplitMix64::new(4);
        let counts = run_item_set(&mut rng, &mech, &ds);
        let est = mech.estimator(n as u64).estimate(&counts[..6]).unwrap();
        assert!((est[1] - n as f64).abs() < 0.05 * n as f64, "{est:?}");
        assert!((est[4] - n as f64).abs() < 0.05 * n as f64, "{est:?}");
        assert!(est[0].abs() < 0.05 * n as f64);
    }
}
