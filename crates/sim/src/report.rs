//! Plain-text tables and CSV output for experiment results.
//!
//! The experiment binaries print fixed-width tables shaped like the paper's
//! tables/figure series; `--csv` switches to machine-readable output.

use std::fmt::Write as _;

/// A simple fixed-width text table builder.
#[derive(Clone, Debug, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Self {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header width).
    ///
    /// # Panics
    /// Panics if the row width differs from the header width.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let write_row = |out: &mut String, cells: &[String]| {
            for (i, (cell, w)) in cells.iter().zip(&widths).enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                let _ = write!(out, "{cell:>w$}", w = w);
            }
            out.push('\n');
        };
        write_row(&mut out, &self.header);
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            write_row(&mut out, row);
        }
        out
    }

    /// Renders as CSV (comma-separated, no quoting — cells are numeric or
    /// simple identifiers).
    pub fn render_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.header.join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }
}

/// Formats a float in compact scientific notation (`1.23e4`).
pub fn sci(v: f64) -> String {
    if v == 0.0 {
        "0".into()
    } else if v.abs() >= 0.01 && v.abs() < 10_000.0 {
        format!("{v:.3}")
    } else {
        format!("{v:.3e}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = TextTable::new(&["name", "value"]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["long-name".into(), "12345".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        // All rows the same width.
        assert_eq!(lines[0].len(), lines[2].len());
        assert_eq!(lines[2].len(), lines[3].len());
        assert!(lines[1].starts_with('-'));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn csv_output() {
        let mut t = TextTable::new(&["a", "b"]);
        t.row(vec!["1".into(), "2".into()]);
        assert_eq!(t.render_csv(), "a,b\n1,2\n");
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_checked() {
        let mut t = TextTable::new(&["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn sci_formatting() {
        assert_eq!(sci(0.0), "0");
        assert_eq!(sci(1.5), "1.500");
        assert!(sci(123456.0).contains('e'));
        assert!(sci(0.0001).contains('e'));
    }
}
