//! Error metrics for frequency estimation.
//!
//! The paper reports the *total MSE* `Σ_i (ĉ_i − c*_i)²` over all items
//! (one trial's squared error; averaged over trials by the runner) and, in
//! Fig. 5, the same restricted to the top-5 most frequent items.

/// Total squared error over all items.
///
/// # Panics
/// Panics if the slices disagree in length.
pub fn total_squared_error(estimate: &[f64], truth: &[f64]) -> f64 {
    idldp_num::stats::total_squared_error(estimate, truth)
}

/// Squared error restricted to the given item indices (e.g. the top-k most
/// frequent items).
///
/// # Panics
/// Panics if some index is out of range.
pub fn squared_error_on(estimate: &[f64], truth: &[f64], items: &[usize]) -> f64 {
    items
        .iter()
        .map(|&i| {
            let d = estimate[i] - truth[i];
            d * d
        })
        .sum()
}

/// Maximum absolute per-item error.
pub fn max_abs_error(estimate: &[f64], truth: &[f64]) -> f64 {
    estimate
        .iter()
        .zip(truth)
        .map(|(e, t)| (e - t).abs())
        .fold(0.0, f64::max)
}

/// Average relative error over items whose true count is at least `floor`
/// (items with tiny truth make relative error meaningless).
pub fn mean_relative_error(estimate: &[f64], truth: &[f64], floor: f64) -> f64 {
    let mut total = 0.0;
    let mut count = 0usize;
    for (e, t) in estimate.iter().zip(truth) {
        if *t >= floor {
            total += (e - t).abs() / t;
            count += 1;
        }
    }
    if count == 0 {
        0.0
    } else {
        total / count as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_squared() {
        assert_eq!(total_squared_error(&[1.0, 3.0], &[0.0, 1.0]), 5.0);
    }

    #[test]
    fn restricted_squared() {
        let est = [1.0, 5.0, 10.0];
        let truth = [0.0, 5.0, 8.0];
        assert_eq!(squared_error_on(&est, &truth, &[0, 2]), 1.0 + 4.0);
        assert_eq!(squared_error_on(&est, &truth, &[]), 0.0);
    }

    #[test]
    fn max_error() {
        assert_eq!(max_abs_error(&[1.0, -2.0], &[0.0, 2.0]), 4.0);
        assert_eq!(max_abs_error(&[], &[]), 0.0);
    }

    #[test]
    fn relative_error_floor() {
        let est = [110.0, 1.0];
        let truth = [100.0, 0.0];
        // Item 1 has truth 0 → excluded by floor.
        assert!((mean_relative_error(&est, &truth, 1.0) - 0.1).abs() < 1e-12);
        assert_eq!(mean_relative_error(&est, &truth, 1000.0), 0.0);
    }
}
