//! Exact per-user simulation of the client/server pipeline.
//!
//! Every user independently encodes and perturbs her input (Algorithm 1 or
//! 3 literally) and the server sums the reported bit vectors. This is the
//! ground-truth execution path — `O(n·m)` Bernoulli draws — used to
//! validate the fast aggregate path and to benchmark realistic client-side
//! throughput.
//!
//! Since the trait-layer refactor these functions are thin typed wrappers
//! over [`crate::pipeline::SimulationPipeline`], which chunks users into
//! fixed-size blocks, gives each chunk an independent RNG stream derived
//! from `(seed, chunk_index)`, and runs chunks in parallel on rayon. Results
//! are bit-identical across runs and thread counts (the chunk grid, not the
//! scheduler, determines every draw).

use crate::pipeline::SimulationPipeline;
use idldp_core::idue::Idue;
use idldp_core::idue_ps::IduePs;
use idldp_core::mechanism::InputBatch;
use idldp_core::snapshot::AccumulatorSnapshot;
use idldp_data::dataset::{ItemSetDataset, SingleItemDataset};

/// Runs the exact single-item pipeline: every user perturbs her item, the
/// server sums the bits. Returns per-bit counts (length `m`).
///
/// # Panics
/// Panics if the mechanism and dataset domains differ.
pub fn run_single_item(mechanism: &Idue, dataset: &SingleItemDataset, seed: u64) -> Vec<u64> {
    run_single_item_snapshot(mechanism, dataset, seed).into_counts()
}

/// Like [`run_single_item`], but returns the frozen accumulator state
/// (counts + user total) for the incremental oracle path or a checkpoint.
///
/// # Panics
/// Panics if the mechanism and dataset domains differ.
pub fn run_single_item_snapshot(
    mechanism: &Idue,
    dataset: &SingleItemDataset,
    seed: u64,
) -> AccumulatorSnapshot {
    assert_eq!(
        mechanism.domain_size(),
        dataset.domain_size(),
        "mechanism/dataset domain mismatch"
    );
    SimulationPipeline::new()
        .run_snapshot(mechanism, InputBatch::Items(dataset.items()), seed)
        .expect("domains validated above")
}

/// Runs the exact item-set pipeline (Algorithm 3 per user). Returns per-bit
/// counts over all `m + ℓ` bits; the estimator uses the first `m`.
///
/// # Panics
/// Panics if the mechanism and dataset domains differ or a set contains an
/// out-of-domain item.
pub fn run_item_set(mechanism: &IduePs, dataset: &ItemSetDataset, seed: u64) -> Vec<u64> {
    run_item_set_snapshot(mechanism, dataset, seed).into_counts()
}

/// Like [`run_item_set`], but returns the frozen accumulator state (counts
/// + user total) for the incremental oracle path or a checkpoint.
///
/// # Panics
/// Same conditions as [`run_item_set`].
pub fn run_item_set_snapshot(
    mechanism: &IduePs,
    dataset: &ItemSetDataset,
    seed: u64,
) -> AccumulatorSnapshot {
    assert_eq!(
        mechanism.domain_size(),
        dataset.domain_size(),
        "mechanism/dataset domain mismatch"
    );
    SimulationPipeline::new()
        .run_snapshot(mechanism, InputBatch::Sets(dataset.sets()), seed)
        .expect("domains validated above")
}

#[cfg(test)]
mod tests {
    use super::*;
    use idldp_core::budget::Epsilon;
    use idldp_core::levels::LevelPartition;
    use idldp_core::params::LevelParams;

    fn eps(v: f64) -> Epsilon {
        Epsilon::new(v).unwrap()
    }

    fn small_idue(m: usize) -> Idue {
        Idue::oue(m, eps(2.0)).unwrap()
    }

    #[test]
    fn deterministic_across_runs() {
        let mech = small_idue(6);
        let items: Vec<u32> = (0..500).map(|i| (i % 6) as u32).collect();
        let ds = SingleItemDataset::new(items, 6);
        let c1 = run_single_item(&mech, &ds, 42);
        let c2 = run_single_item(&mech, &ds, 42);
        assert_eq!(c1, c2);
        let c3 = run_single_item(&mech, &ds, 43);
        assert_ne!(c1, c3);
    }

    #[test]
    fn counts_calibrate_back_to_truth() {
        let m = 5;
        let mech = small_idue(m);
        let n = 30_000usize;
        // 60% item 0, 40% item 3.
        let items: Vec<u32> = (0..n).map(|i| if i % 5 < 3 { 0 } else { 3 }).collect();
        let ds = SingleItemDataset::new(items, m);
        let counts = run_single_item(&mech, &ds, 7);
        let est = mech.estimator(n as u64).estimate(&counts).unwrap();
        let truth = ds.true_counts();
        for i in 0..m {
            assert!(
                (est[i] - truth[i]).abs() < 0.05 * n as f64,
                "item {i}: est {} truth {}",
                est[i],
                truth[i]
            );
        }
    }

    #[test]
    fn item_set_pipeline_runs_and_calibrates() {
        let levels = LevelPartition::uniform(4, eps(2.0)).unwrap();
        let params = LevelParams::new(vec![0.5], vec![1.0 / (2.0_f64.exp() + 1.0)]).unwrap();
        let mech = IduePs::new(levels, &params, 2).unwrap();
        let n = 30_000usize;
        let sets: Vec<Vec<u32>> = (0..n).map(|_| vec![0, 2]).collect();
        let ds = ItemSetDataset::new(sets, 4);
        let counts = run_item_set(&mech, &ds, 9);
        assert_eq!(counts.len(), 6);
        let est = mech.estimator(n as u64).estimate(&counts[..4]).unwrap();
        assert!((est[0] - n as f64).abs() < 0.08 * n as f64, "est {est:?}");
        assert!((est[2] - n as f64).abs() < 0.08 * n as f64, "est {est:?}");
        assert!(est[1].abs() < 0.08 * n as f64);
    }

    #[test]
    #[should_panic(expected = "domain mismatch")]
    fn domain_mismatch_panics() {
        let mech = small_idue(4);
        let ds = SingleItemDataset::new(vec![0, 1], 3);
        let _ = run_single_item(&mech, &ds, 1);
    }
}
