//! Exact per-user simulation of the client/server pipeline.
//!
//! Every user independently encodes and perturbs her input (Algorithm 1 or
//! 3 literally) and the server sums the reported bit vectors. This is the
//! ground-truth execution path — `O(n·m)` Bernoulli draws — used to
//! validate the fast aggregate path and to benchmark realistic client-side
//! throughput. Users are sharded across threads; each user gets an
//! independent RNG stream derived from the experiment seed, so results are
//! deterministic regardless of thread count.

use idldp_core::idue::Idue;
use idldp_core::idue_ps::IduePs;
use idldp_data::dataset::{ItemSetDataset, SingleItemDataset};
use idldp_num::rng::stream_rng;

/// Number of worker threads: all available cores, capped to keep shard
/// bookkeeping cheap for small inputs.
fn worker_count(n: usize) -> usize {
    let cores = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    cores.min(n.max(1)).min(32)
}

/// Runs the exact single-item pipeline: every user perturbs her item, the
/// server sums the bits. Returns per-bit counts (length `m`).
pub fn run_single_item(mechanism: &Idue, dataset: &SingleItemDataset, seed: u64) -> Vec<u64> {
    assert_eq!(
        mechanism.domain_size(),
        dataset.domain_size(),
        "mechanism/dataset domain mismatch"
    );
    let items = dataset.items();
    let n = items.len();
    let m = mechanism.domain_size();
    let workers = worker_count(n);
    let chunk = n.div_ceil(workers);
    let mut partials: Vec<Vec<u64>> = Vec::with_capacity(workers);
    crossbeam::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        for w in 0..workers {
            let lo = w * chunk;
            let hi = ((w + 1) * chunk).min(n);
            if lo >= hi {
                break;
            }
            let shard = &items[lo..hi];
            handles.push(scope.spawn(move |_| {
                let mut counts = vec![0u64; m];
                for (offset, &item) in shard.iter().enumerate() {
                    // Stream index = user index → thread-count independent.
                    let mut rng = stream_rng(seed, (lo + offset) as u64);
                    let y = mechanism.perturb_item(item as usize, &mut rng);
                    for (c, bit) in counts.iter_mut().zip(&y) {
                        *c += *bit as u64;
                    }
                }
                counts
            }));
        }
        for h in handles {
            partials.push(h.join().expect("worker panicked"));
        }
    })
    .expect("scope failed");
    let mut total = vec![0u64; m];
    for p in partials {
        for (t, v) in total.iter_mut().zip(p) {
            *t += v;
        }
    }
    total
}

/// Runs the exact item-set pipeline (Algorithm 3 per user). Returns per-bit
/// counts over all `m + ℓ` bits; the estimator uses the first `m`.
pub fn run_item_set(mechanism: &IduePs, dataset: &ItemSetDataset, seed: u64) -> Vec<u64> {
    assert_eq!(
        mechanism.domain_size(),
        dataset.domain_size(),
        "mechanism/dataset domain mismatch"
    );
    let sets = dataset.sets();
    let n = sets.len();
    let bits = mechanism.domain_size() + mechanism.padding_length();
    let workers = worker_count(n);
    let chunk = n.div_ceil(workers);
    let mut partials: Vec<Vec<u64>> = Vec::with_capacity(workers);
    crossbeam::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        for w in 0..workers {
            let lo = w * chunk;
            let hi = ((w + 1) * chunk).min(n);
            if lo >= hi {
                break;
            }
            let shard = &sets[lo..hi];
            handles.push(scope.spawn(move |_| {
                let mut counts = vec![0u64; bits];
                let mut scratch: Vec<usize> = Vec::new();
                for (offset, set) in shard.iter().enumerate() {
                    let mut rng = stream_rng(seed, (lo + offset) as u64);
                    scratch.clear();
                    scratch.extend(set.iter().map(|&i| i as usize));
                    let y = mechanism.perturb_set(&scratch, &mut rng);
                    for (c, bit) in counts.iter_mut().zip(&y) {
                        *c += *bit as u64;
                    }
                }
                counts
            }));
        }
        for h in handles {
            partials.push(h.join().expect("worker panicked"));
        }
    })
    .expect("scope failed");
    let mut total = vec![0u64; bits];
    for p in partials {
        for (t, v) in total.iter_mut().zip(p) {
            *t += v;
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use idldp_core::budget::Epsilon;
    use idldp_core::levels::LevelPartition;
    use idldp_core::params::LevelParams;

    fn eps(v: f64) -> Epsilon {
        Epsilon::new(v).unwrap()
    }

    fn small_idue(m: usize) -> Idue {
        Idue::oue(m, eps(2.0)).unwrap()
    }

    #[test]
    fn deterministic_across_runs() {
        let mech = small_idue(6);
        let items: Vec<u32> = (0..500).map(|i| (i % 6) as u32).collect();
        let ds = SingleItemDataset::new(items, 6);
        let c1 = run_single_item(&mech, &ds, 42);
        let c2 = run_single_item(&mech, &ds, 42);
        assert_eq!(c1, c2);
        let c3 = run_single_item(&mech, &ds, 43);
        assert_ne!(c1, c3);
    }

    #[test]
    fn counts_calibrate_back_to_truth() {
        let m = 5;
        let mech = small_idue(m);
        let n = 30_000usize;
        // 60% item 0, 40% item 3.
        let items: Vec<u32> = (0..n).map(|i| if i % 5 < 3 { 0 } else { 3 }).collect();
        let ds = SingleItemDataset::new(items, m);
        let counts = run_single_item(&mech, &ds, 7);
        let est = mech.estimator(n as u64).estimate(&counts).unwrap();
        let truth = ds.true_counts();
        for i in 0..m {
            assert!(
                (est[i] - truth[i]).abs() < 0.05 * n as f64,
                "item {i}: est {} truth {}",
                est[i],
                truth[i]
            );
        }
    }

    #[test]
    fn item_set_pipeline_runs_and_calibrates() {
        let levels = LevelPartition::uniform(4, eps(2.0)).unwrap();
        let params = LevelParams::new(vec![0.5], vec![1.0 / (2.0_f64.exp() + 1.0)]).unwrap();
        let mech = IduePs::new(levels, &params, 2).unwrap();
        let n = 30_000usize;
        let sets: Vec<Vec<u32>> = (0..n).map(|_| vec![0, 2]).collect();
        let ds = ItemSetDataset::new(sets, 4);
        let counts = run_item_set(&mech, &ds, 9);
        assert_eq!(counts.len(), 6);
        let est = mech.estimator(n as u64).estimate(&counts[..4]).unwrap();
        assert!((est[0] - n as f64).abs() < 0.08 * n as f64, "est {est:?}");
        assert!((est[2] - n as f64).abs() < 0.08 * n as f64, "est {est:?}");
        assert!(est[1].abs() < 0.08 * n as f64);
    }

    #[test]
    #[should_panic(expected = "domain mismatch")]
    fn domain_mismatch_panics() {
        let mech = small_idue(4);
        let ds = SingleItemDataset::new(vec![0, 1], 3);
        let _ = run_single_item(&mech, &ds, 1);
    }
}
