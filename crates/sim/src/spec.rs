//! Mechanism specifications: which protocol a simulated deployment runs.
//!
//! [`MechanismSpec`] is a thin, typed handle used by the experiment runners
//! and figure binaries; construction is delegated to the
//! [`crate::registry::MechanismRegistry`], so this module contains no
//! per-mechanism dispatch — a new protocol is visible here as soon as it is
//! registered.

use crate::registry::{BuildContext, MechanismRegistry};
use idldp_core::levels::LevelPartition;
use idldp_core::mechanism::BatchMechanism;
use idldp_opt::{IdueSolver, Model, SolveError};

/// A mechanism choice for an experiment.
///
/// RAPPOR and OUE satisfy plain ε-LDP and therefore must run at the *most
/// conservative* budget `ε = min(E)` (the paper's comparison baseline);
/// IDUE runs at the full per-level budgets under MinID-LDP.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MechanismSpec {
    /// Symmetric UE (basic RAPPOR) at `min(E)`.
    Rappor,
    /// Optimized UE at `min(E)`.
    Oue,
    /// IDUE with per-level parameters from the given optimization model.
    Idue(Model),
}

impl MechanismSpec {
    /// Display name matching the paper's figure legends.
    pub fn name(&self) -> String {
        match self {
            MechanismSpec::Rappor => "RAPPOR".into(),
            MechanismSpec::Oue => "OUE".into(),
            MechanismSpec::Idue(m) => format!("IDUE-{}", m.name()),
        }
    }

    /// The registry key this spec resolves to (the legend names normalize
    /// case-insensitively to the canonical registry names).
    pub fn registry_name(&self) -> String {
        self.name().to_ascii_lowercase()
    }

    /// The five specs compared in Fig. 3, in legend order.
    pub fn fig3_lineup() -> Vec<MechanismSpec> {
        vec![
            MechanismSpec::Rappor,
            MechanismSpec::Oue,
            MechanismSpec::Idue(Model::Opt0),
            MechanismSpec::Idue(Model::Opt1),
            MechanismSpec::Idue(Model::Opt2),
        ]
    }
}

/// Errors when building a mechanism from a spec.
#[derive(Clone, Debug)]
pub enum BuildError {
    /// The optimizer failed.
    Solve(SolveError),
    /// Structural construction failed.
    Core(String),
}

impl std::fmt::Display for BuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BuildError::Solve(e) => write!(f, "solver: {e}"),
            BuildError::Core(e) => write!(f, "construction: {e}"),
        }
    }
}

impl std::error::Error for BuildError {}

impl From<SolveError> for BuildError {
    fn from(e: SolveError) -> Self {
        BuildError::Solve(e)
    }
}

/// Builds a single-item mechanism for `levels` according to `spec`.
///
/// `solver` is the shared solver whose cache persists across trials and
/// sweep points; `Idue` specs for a *different* model fall back to a fresh
/// solver instead of failing.
///
/// # Errors
/// Propagates solver and construction failures.
pub fn build_single_item(
    spec: MechanismSpec,
    levels: &LevelPartition,
    solver: Option<&IdueSolver>,
) -> Result<Box<dyn BatchMechanism>, BuildError> {
    MechanismRegistry::standard().build_single_item(
        &spec.registry_name(),
        &BuildContext {
            levels,
            padding: 0,
            solver,
        },
    )
}

/// Builds an item-set mechanism (PS-wrapped) for `levels` with padding ℓ.
///
/// # Errors
/// Propagates solver and construction failures.
pub fn build_item_set(
    spec: MechanismSpec,
    levels: &LevelPartition,
    l: usize,
    solver: Option<&IdueSolver>,
) -> Result<Box<dyn BatchMechanism>, BuildError> {
    MechanismRegistry::standard().build_item_set(
        &spec.registry_name(),
        &BuildContext {
            levels,
            padding: l,
            solver,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use idldp_core::budget::Epsilon;
    use idldp_core::idue::Idue;
    use idldp_core::idue_ps::IduePs;
    use idldp_core::notion::RFunction;

    fn levels() -> LevelPartition {
        LevelPartition::new(
            vec![0, 1, 1, 1, 1, 1],
            vec![Epsilon::new(1.0).unwrap(), Epsilon::new(4.0).unwrap()],
        )
        .unwrap()
    }

    #[test]
    fn names_match_paper_legends() {
        assert_eq!(MechanismSpec::Rappor.name(), "RAPPOR");
        assert_eq!(MechanismSpec::Oue.name(), "OUE");
        assert_eq!(MechanismSpec::Idue(Model::Opt1).name(), "IDUE-opt1");
        assert_eq!(MechanismSpec::fig3_lineup().len(), 5);
    }

    #[test]
    fn baselines_run_at_min_budget() {
        let l = levels();
        let r = build_single_item(MechanismSpec::Rappor, &l, None).unwrap();
        assert!((r.ldp_epsilon() - 1.0).abs() < 1e-9, "RAPPOR at min(E)");
        let o = build_single_item(MechanismSpec::Oue, &l, None).unwrap();
        assert!((o.ldp_epsilon() - 1.0).abs() < 1e-9, "OUE at min(E)");
    }

    #[test]
    fn idue_spec_builds_feasible_mechanism() {
        let l = levels();
        for model in Model::ALL {
            let m = build_single_item(MechanismSpec::Idue(model), &l, None).unwrap();
            let idue = m
                .as_any()
                .downcast_ref::<Idue>()
                .expect("IDUE specs build Idue mechanisms");
            assert!(idue.verify(RFunction::Min, 1e-6).is_ok(), "{model:?}");
        }
    }

    #[test]
    fn shared_solver_cache_reused() {
        let l = levels();
        let solver = IdueSolver::new(Model::Opt1);
        let _ = build_single_item(MechanismSpec::Idue(Model::Opt1), &l, Some(&solver)).unwrap();
        assert_eq!(solver.cache_len(), 1);
        let _ = build_item_set(MechanismSpec::Idue(Model::Opt1), &l, 3, Some(&solver)).unwrap();
        assert_eq!(solver.cache_len(), 1, "item-set build reuses the solve");
    }

    #[test]
    fn mismatched_solver_falls_back_to_fresh_solve() {
        // A context may build several models with one shared solver: the
        // non-matching model must solve on its own, not panic or poison the
        // shared cache.
        let solver = IdueSolver::new(Model::Opt2);
        let m =
            build_single_item(MechanismSpec::Idue(Model::Opt1), &levels(), Some(&solver)).unwrap();
        assert!(m.as_any().downcast_ref::<Idue>().is_some());
        assert_eq!(solver.cache_len(), 0, "opt2 cache untouched by opt1 build");
    }

    #[test]
    fn item_set_builds() {
        let l = levels();
        let m = build_item_set(MechanismSpec::Oue, &l, 4, None).unwrap();
        assert_eq!(m.report_len(), 10);
        let ps = m
            .as_any()
            .downcast_ref::<IduePs>()
            .expect("OUE item-set spec builds IduePs");
        assert_eq!(ps.padding_length(), 4);
        assert_eq!(ps.unary_encoding().num_bits(), 10);
    }
}
