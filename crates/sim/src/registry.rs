//! The mechanism registry: one table from protocol names to builders.
//!
//! Everything above `idldp-core` that needs to *construct* a mechanism —
//! experiment runners, the CLI, the bench binaries — resolves a name
//! (`"rappor"`, `"oue"`, `"grr"`, `"idue-opt1"`, …) against
//! [`MechanismRegistry::standard`] and receives a `Box<dyn BatchMechanism>`.
//! Adding a protocol to the whole workspace is therefore one `impl` in
//! `idldp-core` plus one [`RegistryEntry`] here; no caller grows a `match`
//! arm.
//!
//! Baselines that satisfy plain ε-LDP (RAPPOR, OUE, GRR) are built at the
//! partition's *minimum* budget — the paper's comparison rule — while the
//! IDUE entries run at the full per-level budgets under MinID-LDP via the
//! `idldp-opt` solvers.

use crate::spec::BuildError;

use idldp_core::error::Result as CoreResult;
use idldp_core::grr::GeneralizedRandomizedResponse;
use idldp_core::idue::Idue;
use idldp_core::idue_ps::IduePs;
use idldp_core::levels::LevelPartition;
use idldp_core::mechanism::BatchMechanism;
use idldp_core::ps::PsMechanism;
use idldp_opt::{IdueSolver, Model};
use std::sync::OnceLock;

/// Everything a builder may need.
pub struct BuildContext<'a> {
    /// Per-item privacy levels (the domain definition).
    pub levels: &'a LevelPartition,
    /// Padding length ℓ for item-set mechanisms (ignored by single-item
    /// builders).
    pub padding: usize,
    /// Optional shared solver whose cache persists across trials/sweeps;
    /// builders that need a different model construct their own.
    pub solver: Option<&'a IdueSolver>,
}

impl BuildContext<'_> {
    fn solve(&self, model: Model) -> Result<idldp_core::params::LevelParams, BuildError> {
        let owned;
        let solver = match self.solver {
            // One context may build mechanisms for several models; the shared
            // solver only applies to its own model and other models fall back
            // to a fresh (uncached) solver instead of failing.
            Some(s) if s.model() == model => s,
            _ => {
                owned = IdueSolver::new(model);
                &owned
            }
        };
        Ok(solver.solve(self.levels)?)
    }
}

type Builder =
    Box<dyn Fn(&BuildContext<'_>) -> Result<Box<dyn BatchMechanism>, BuildError> + Send + Sync>;

/// One registered protocol.
pub struct RegistryEntry {
    /// Canonical lowercase name.
    pub name: &'static str,
    /// Additional accepted spellings (matched case-insensitively).
    pub aliases: &'static [&'static str],
    /// One-line human description (`idldp mechanisms` output).
    pub description: &'static str,
    /// The wire shape this protocol's reports take (static label; the
    /// exact [`idldp_core::report::ReportShape`] — e.g. OLH's hash range —
    /// depends on the built mechanism's parameters).
    pub report_shape: &'static str,
    /// Builder for single-item deployments (`None` if unsupported).
    single: Option<Builder>,
    /// Builder for item-set deployments (`None` if unsupported).
    item_set: Option<Builder>,
}

impl RegistryEntry {
    /// `true` if the protocol supports single-item deployments.
    pub fn supports_single_item(&self) -> bool {
        self.single.is_some()
    }

    /// `true` if the protocol supports item-set deployments.
    pub fn supports_item_set(&self) -> bool {
        self.item_set.is_some()
    }
}

/// The name → builder table.
///
/// # Examples
///
/// Resolve a protocol by name and run it — batch or streaming — without
/// naming a concrete mechanism type anywhere:
///
/// ```
/// use idldp_core::budget::Epsilon;
/// use idldp_core::levels::LevelPartition;
/// use idldp_sim::stream::{BitReportAccumulator, SeededReportStream, ShardedAccumulator};
/// use idldp_sim::{BuildContext, InputBatch, MechanismRegistry, SimulationPipeline};
///
/// let levels = LevelPartition::uniform(8, Epsilon::new(1.0).unwrap()).unwrap();
/// let ctx = BuildContext { levels: &levels, padding: 0, solver: None };
/// let mechanism = MechanismRegistry::standard()
///     .build_single_item("oue", &ctx)
///     .unwrap();
///
/// let items: Vec<u32> = (0..4000).map(|i| (i % 8) as u32).collect();
///
/// // Batch: the rayon-parallel pipeline.
/// let batch = SimulationPipeline::new()
///     .run(mechanism.as_ref(), InputBatch::Items(&items), 42)
///     .unwrap();
///
/// // Streaming: the same seeded reports through sharded accumulators —
/// // bit-identical counts, any shard count.
/// let sink = ShardedAccumulator::new(
///     BitReportAccumulator::new(mechanism.report_len()),
///     4,
/// );
/// SeededReportStream::new(mechanism.as_ref(), InputBatch::Items(&items), 42)
///     .ingest_all(&sink)
///     .unwrap();
/// assert_eq!(sink.snapshot().counts(), batch.as_slice());
/// ```
pub struct MechanismRegistry {
    entries: Vec<RegistryEntry>,
}

fn core_err<T>(r: CoreResult<T>) -> Result<T, BuildError> {
    r.map_err(|e| BuildError::Core(e.to_string()))
}

fn boxed<M: BatchMechanism + 'static>(m: M) -> Box<dyn BatchMechanism> {
    Box::new(m)
}

impl MechanismRegistry {
    /// An empty registry (useful for tests and downstream extension).
    pub fn empty() -> Self {
        Self {
            entries: Vec::new(),
        }
    }

    /// Registers an entry, replacing any previous entry with the same name.
    pub fn register(&mut self, entry: RegistryEntry) {
        self.entries.retain(|e| e.name != entry.name);
        self.entries.push(entry);
    }

    /// The shared registry with every protocol in the workspace.
    pub fn standard() -> &'static MechanismRegistry {
        static STANDARD: OnceLock<MechanismRegistry> = OnceLock::new();
        STANDARD.get_or_init(|| {
            let mut reg = MechanismRegistry::empty();
            reg.register(RegistryEntry {
                name: "rappor",
                aliases: &["sue", "symmetric-ue"],
                description: "symmetric unary encoding (Erlingsson et al.) at the minimum budget",
                report_shape: "bits",
                single: Some(Box::new(|ctx| {
                    core_err(Idue::rappor(
                        ctx.levels.num_items(),
                        ctx.levels.min_budget(),
                    ))
                    .map(boxed)
                })),
                item_set: Some(Box::new(|ctx| {
                    core_err(IduePs::rappor_ps(
                        ctx.levels.num_items(),
                        ctx.levels.min_budget(),
                        ctx.padding,
                    ))
                    .map(boxed)
                })),
            });
            reg.register(RegistryEntry {
                name: "oue",
                aliases: &["optimized-ue"],
                description: "optimized unary encoding (Wang et al.) at the minimum budget",
                report_shape: "bits",
                single: Some(Box::new(|ctx| {
                    core_err(Idue::oue(ctx.levels.num_items(), ctx.levels.min_budget())).map(boxed)
                })),
                item_set: Some(Box::new(|ctx| {
                    core_err(IduePs::oue_ps(
                        ctx.levels.num_items(),
                        ctx.levels.min_budget(),
                        ctx.padding,
                    ))
                    .map(boxed)
                })),
            });
            reg.register(RegistryEntry {
                name: "grr",
                aliases: &["direct", "k-rr"],
                description: "generalized randomized response (direct encoding)",
                report_shape: "value",
                single: Some(Box::new(|ctx| {
                    core_err(GeneralizedRandomizedResponse::new(
                        ctx.levels.min_budget(),
                        ctx.levels.num_items(),
                    ))
                    .map(boxed)
                })),
                item_set: None,
            });
            reg.register(RegistryEntry {
                name: "matrix",
                aliases: &["matrix-grr"],
                description: "explicit perturbation-matrix mechanism with exact LU calibration",
                report_shape: "value",
                single: Some(Box::new(|ctx| {
                    core_err(idldp_core::matrix_mech::PerturbationMatrix::grr(
                        ctx.levels.min_budget(),
                        ctx.levels.num_items(),
                    ))
                    .map(boxed)
                })),
                item_set: None,
            });
            reg.register(RegistryEntry {
                name: "ps",
                aliases: &["padding-sampling"],
                description: "bare padding-and-sampling (Algorithm 2; no perturbation stage)",
                report_shape: "value",
                single: None,
                item_set: Some(Box::new(|ctx| {
                    core_err(PsMechanism::new(ctx.levels.num_items(), ctx.padding)).map(boxed)
                })),
            });
            reg.register(RegistryEntry {
                name: "olh",
                aliases: &["local-hashing", "optimal-local-hashing"],
                description:
                    "optimal local hashing (Wang et al.): per-user hash into g = e^eps + 1 \
                              buckets, GRR over the hashed value",
                report_shape: "hashed (seed, value)",
                single: Some(Box::new(|ctx| {
                    core_err(idldp_core::olh::OptimalLocalHashing::new(
                        ctx.levels.min_budget(),
                        ctx.levels.num_items(),
                    ))
                    .map(boxed)
                })),
                item_set: None,
            });
            reg.register(RegistryEntry {
                name: "ss",
                aliases: &["subset", "subset-selection"],
                description:
                    "subset selection (Wang-Wu-Hu / Ye-Barg): report a random size-k item \
                              subset, k = m / (e^eps + 1)",
                report_shape: "item-set",
                single: Some(Box::new(|ctx| {
                    core_err(idldp_core::subset::SubsetSelection::new(
                        ctx.levels.min_budget(),
                        ctx.levels.num_items(),
                    ))
                    .map(boxed)
                })),
                item_set: None,
            });
            for model in Model::ALL {
                // `Model::name()` returns "opt0"/"opt1"/"opt2"; leak-free
                // static names for the three fixed models.
                let (name, description): (&'static str, &'static str) = match model {
                    Model::Opt0 => (
                        "idue-opt0",
                        "IDUE with per-level probabilities from the opt0 (uniform-b) model",
                    ),
                    Model::Opt1 => (
                        "idue-opt1",
                        "IDUE with per-level probabilities from the opt1 (convex) model",
                    ),
                    Model::Opt2 => (
                        "idue-opt2",
                        "IDUE with per-level probabilities from the opt2 (non-convex) model",
                    ),
                };
                reg.register(RegistryEntry {
                    name,
                    aliases: &[],
                    description,
                    report_shape: "bits",
                    single: Some(Box::new(move |ctx| {
                        let params = ctx.solve(model)?;
                        core_err(Idue::new(ctx.levels.clone(), &params)).map(boxed)
                    })),
                    item_set: Some(Box::new(move |ctx| {
                        let params = ctx.solve(model)?;
                        core_err(IduePs::new(ctx.levels.clone(), &params, ctx.padding)).map(boxed)
                    })),
                });
            }
            reg
        })
    }

    /// All registered canonical names, registration order.
    pub fn names(&self) -> Vec<&'static str> {
        self.entries.iter().map(|e| e.name).collect()
    }

    /// All registered entries, registration order — the backing of the
    /// `idldp mechanisms` listing.
    pub fn entries(&self) -> impl Iterator<Item = &RegistryEntry> {
        self.entries.iter()
    }

    fn find(&self, name: &str) -> Result<&RegistryEntry, BuildError> {
        let needle = name.to_ascii_lowercase();
        // Figure-legend spellings ("RAPPOR", "IDUE-opt1") normalize to the
        // canonical names directly. Canonical names win over aliases across
        // the whole table, so registering an entry named after an existing
        // alias takes effect rather than being shadowed.
        self.entries
            .iter()
            .find(|e| e.name == needle)
            .or_else(|| {
                self.entries
                    .iter()
                    .find(|e| e.aliases.iter().any(|a| *a == needle))
            })
            .ok_or_else(|| {
                BuildError::Core(format!(
                    "unknown mechanism `{name}` (known: {})",
                    self.names().join(", ")
                ))
            })
    }

    /// `true` if `name` resolves to an entry.
    pub fn contains(&self, name: &str) -> bool {
        self.find(name).is_ok()
    }

    /// Builds a single-item mechanism by name.
    ///
    /// # Errors
    /// Unknown name, unsupported deployment kind, solver failure, or
    /// structural construction failure.
    pub fn build_single_item(
        &self,
        name: &str,
        ctx: &BuildContext<'_>,
    ) -> Result<Box<dyn BatchMechanism>, BuildError> {
        let entry = self.find(name)?;
        let builder = entry.single.as_ref().ok_or_else(|| {
            BuildError::Core(format!(
                "mechanism `{}` does not support single-item deployments",
                entry.name
            ))
        })?;
        builder(ctx)
    }

    /// Builds an item-set mechanism by name.
    ///
    /// # Errors
    /// Same conditions as [`Self::build_single_item`].
    pub fn build_item_set(
        &self,
        name: &str,
        ctx: &BuildContext<'_>,
    ) -> Result<Box<dyn BatchMechanism>, BuildError> {
        let entry = self.find(name)?;
        let builder = entry.item_set.as_ref().ok_or_else(|| {
            BuildError::Core(format!(
                "mechanism `{}` does not support item-set deployments",
                entry.name
            ))
        })?;
        builder(ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use idldp_core::budget::Epsilon;

    fn levels() -> LevelPartition {
        LevelPartition::new(
            vec![0, 1, 1, 1, 1, 1],
            vec![Epsilon::new(1.0).unwrap(), Epsilon::new(4.0).unwrap()],
        )
        .unwrap()
    }

    #[test]
    fn standard_registry_builds_every_single_item_entry() {
        let reg = MechanismRegistry::standard();
        let l = levels();
        let ctx = BuildContext {
            levels: &l,
            padding: 3,
            solver: None,
        };
        for name in [
            "rappor",
            "oue",
            "grr",
            "matrix",
            "olh",
            "ss",
            "idue-opt1",
            "idue-opt2",
        ] {
            let mech = reg.build_single_item(name, &ctx).unwrap();
            assert_eq!(mech.domain_size(), 6, "{name}");
            assert!(mech.report_len() >= 6, "{name}");
        }
    }

    #[test]
    fn entries_carry_shape_and_description() {
        let reg = MechanismRegistry::standard();
        let entries: Vec<_> = reg.entries().collect();
        assert_eq!(entries.len(), reg.names().len());
        for e in &entries {
            assert!(!e.description.is_empty(), "{}", e.name);
            assert!(!e.report_shape.is_empty(), "{}", e.name);
            assert!(
                e.supports_single_item() || e.supports_item_set(),
                "{}: entry supports no deployment kind",
                e.name
            );
        }
        let olh = entries.iter().find(|e| e.name == "olh").unwrap();
        assert!(olh.report_shape.starts_with("hashed"));
        assert!(olh.supports_single_item() && !olh.supports_item_set());
        let ss = entries.iter().find(|e| e.name == "ss").unwrap();
        assert_eq!(ss.report_shape, "item-set");
    }

    #[test]
    fn new_mechanisms_resolve_by_alias() {
        let reg = MechanismRegistry::standard();
        let l = levels();
        let ctx = BuildContext {
            levels: &l,
            padding: 0,
            solver: None,
        };
        for name in ["local-hashing", "OLH", "subset-selection", "SUBSET"] {
            assert!(reg.build_single_item(name, &ctx).is_ok(), "{name}");
        }
        // Both run at the partition minimum like the other LDP baselines.
        for name in ["olh", "ss"] {
            let mech = reg.build_single_item(name, &ctx).unwrap();
            assert!(
                (mech.ldp_epsilon() - 1.0).abs() < 1e-6,
                "{name}: {}",
                mech.ldp_epsilon()
            );
        }
    }

    #[test]
    fn lookup_is_case_insensitive_and_alias_aware() {
        let reg = MechanismRegistry::standard();
        let l = levels();
        let ctx = BuildContext {
            levels: &l,
            padding: 2,
            solver: None,
        };
        assert!(reg.build_single_item("RAPPOR", &ctx).is_ok());
        assert!(reg.build_single_item("SUE", &ctx).is_ok());
        assert!(reg.build_item_set("IDUE-OPT2", &ctx).is_ok());
        assert!(reg.contains("oue"));
        assert!(!reg.contains("nonsense"));
    }

    #[test]
    fn kind_specific_entries_reject_other_kind() {
        let reg = MechanismRegistry::standard();
        let l = levels();
        let ctx = BuildContext {
            levels: &l,
            padding: 2,
            solver: None,
        };
        assert!(reg.build_item_set("grr", &ctx).is_err());
        assert!(reg.build_single_item("ps", &ctx).is_err());
        assert!(reg.build_single_item("unknown", &ctx).is_err());
    }

    #[test]
    fn canonical_name_beats_alias_of_earlier_entry() {
        // "sue" is an alias of the builtin rappor entry; a later entry
        // *named* "sue" must win the lookup rather than be shadowed.
        let mut reg = MechanismRegistry::empty();
        reg.register(RegistryEntry {
            name: "rappor",
            aliases: &["sue"],
            description: "test entry",
            report_shape: "bits",
            single: Some(Box::new(|ctx| {
                core_err(Idue::rappor(
                    ctx.levels.num_items(),
                    ctx.levels.min_budget(),
                ))
                .map(boxed)
            })),
            item_set: None,
        });
        reg.register(RegistryEntry {
            name: "sue",
            aliases: &[],
            description: "test entry",
            report_shape: "bits",
            single: Some(Box::new(|ctx| {
                core_err(Idue::oue(ctx.levels.num_items(), ctx.levels.min_budget())).map(boxed)
            })),
            item_set: None,
        });
        let l = levels();
        let ctx = BuildContext {
            levels: &l,
            padding: 0,
            solver: None,
        };
        let mech = reg.build_single_item("sue", &ctx).unwrap();
        let idue = mech.as_any().downcast_ref::<Idue>().unwrap();
        // OUE keeps a = 1/2 — distinguishes it from the RAPPOR builder.
        assert!((idue.unary_encoding().a()[0] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn shared_context_builds_multiple_models() {
        let l = levels();
        let solver = IdueSolver::new(Model::Opt1);
        let ctx = BuildContext {
            levels: &l,
            padding: 0,
            solver: Some(&solver),
        };
        let reg = MechanismRegistry::standard();
        assert!(reg.build_single_item("idue-opt1", &ctx).is_ok());
        assert!(reg.build_single_item("idue-opt2", &ctx).is_ok());
        assert_eq!(solver.cache_len(), 1, "only the matching model is cached");
    }

    #[test]
    fn baselines_run_at_min_budget() {
        let reg = MechanismRegistry::standard();
        let l = levels();
        let ctx = BuildContext {
            levels: &l,
            padding: 2,
            solver: None,
        };
        for name in ["rappor", "oue", "grr"] {
            let mech = reg.build_single_item(name, &ctx).unwrap();
            assert!(
                (mech.ldp_epsilon() - 1.0).abs() < 1e-9,
                "{name}: {}",
                mech.ldp_epsilon()
            );
        }
    }
}
