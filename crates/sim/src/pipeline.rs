//! The batched, parallel client-simulation pipeline.
//!
//! Simulates the client side of the paper's Fig. 2 for *any*
//! [`BatchMechanism`]: users are split into fixed-size chunks, every chunk
//! gets its own RNG stream derived from `(seed, chunk_index)` and its own
//! [`CountAccumulator`], chunks run in parallel on rayon, and the per-chunk
//! accumulators are merged in chunk order.
//!
//! ## Determinism contract
//!
//! Results depend only on `(mechanism, inputs, seed, chunk_size)` — **not**
//! on the worker-thread count and not on whether the run was parallel or
//! sequential at all: [`SimulationPipeline::run`] and
//! [`SimulationPipeline::run_sequential`] return byte-identical counts for
//! the same seed. Chunk RNG streams are independent [`stream_rng`] streams,
//! and merged counts are integer sums, so no floating-point reassociation
//! can creep in.

use idldp_core::error::Result;
use idldp_core::mechanism::{BatchMechanism, CountAccumulator, InputBatch};
use idldp_num::rng::stream_rng;
use rayon::prelude::*;

/// Default number of users per chunk: large enough to amortize the chunk
/// RNG setup and accumulator merge, small enough to load-balance tens of
/// cores on the smallest paper-scale datasets.
pub const DEFAULT_CHUNK_SIZE: usize = 1024;

/// A reusable, mechanism-agnostic client-simulation runner.
#[derive(Clone, Copy, Debug)]
pub struct SimulationPipeline {
    chunk_size: usize,
}

impl Default for SimulationPipeline {
    fn default() -> Self {
        Self {
            chunk_size: DEFAULT_CHUNK_SIZE,
        }
    }
}

impl SimulationPipeline {
    /// A pipeline with the default chunk size.
    pub fn new() -> Self {
        Self::default()
    }

    /// Overrides the chunk size (changing it changes the RNG chunking and
    /// therefore the sampled counts — it is part of the seed, not a tuning
    /// knob to flip between runs being compared).
    ///
    /// # Panics
    /// Panics if `chunk_size == 0`.
    pub fn with_chunk_size(mut self, chunk_size: usize) -> Self {
        assert!(chunk_size > 0, "chunk size must be positive");
        self.chunk_size = chunk_size;
        self
    }

    /// The configured chunk size.
    pub fn chunk_size(&self) -> usize {
        self.chunk_size
    }

    /// Runs every user through `mechanism` in parallel, returning the
    /// merged per-bucket report counts (length `mechanism.report_len()`).
    ///
    /// # Errors
    /// Returns the first per-input error (wrong input kind, out-of-domain
    /// item).
    pub fn run(
        &self,
        mechanism: &dyn BatchMechanism,
        inputs: InputBatch<'_>,
        seed: u64,
    ) -> Result<Vec<u64>> {
        let chunks = self.chunk_ranges(inputs.len());
        let merged = chunks
            .into_par_iter()
            .map(|(ci, lo, hi)| self.run_chunk(mechanism, inputs, seed, ci, lo, hi))
            .reduce(
                || Ok(CountAccumulator::new(mechanism.report_len())),
                |left, right| {
                    let mut left = left?;
                    left.merge(&right?);
                    Ok(left)
                },
            )?;
        Ok(merged.into_counts())
    }

    /// The sequential reference path: same chunking, same RNG streams, same
    /// merge order, no threads. Byte-identical to [`Self::run`].
    ///
    /// # Errors
    /// Same conditions as [`Self::run`].
    pub fn run_sequential(
        &self,
        mechanism: &dyn BatchMechanism,
        inputs: InputBatch<'_>,
        seed: u64,
    ) -> Result<Vec<u64>> {
        let mut merged = CountAccumulator::new(mechanism.report_len());
        for (ci, lo, hi) in self.chunk_ranges(inputs.len()) {
            let chunk = self.run_chunk(mechanism, inputs, seed, ci, lo, hi)?;
            merged.merge(&chunk);
        }
        Ok(merged.into_counts())
    }

    fn chunk_ranges(&self, n: usize) -> Vec<(u64, usize, usize)> {
        (0..n.div_ceil(self.chunk_size))
            .map(|ci| {
                let lo = ci * self.chunk_size;
                (ci as u64, lo, (lo + self.chunk_size).min(n))
            })
            .collect()
    }

    fn run_chunk(
        &self,
        mechanism: &dyn BatchMechanism,
        inputs: InputBatch<'_>,
        seed: u64,
        chunk_index: u64,
        lo: usize,
        hi: usize,
    ) -> Result<CountAccumulator> {
        let mut rng = stream_rng(seed, chunk_index);
        let mut acc = CountAccumulator::new(mechanism.report_len());
        let slice = match inputs {
            InputBatch::Items(items) => InputBatch::Items(&items[lo..hi]),
            InputBatch::Sets(sets) => InputBatch::Sets(&sets[lo..hi]),
        };
        mechanism.perturb_batch(slice, &mut rng, &mut acc)?;
        Ok(acc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use idldp_core::budget::Epsilon;
    use idldp_core::idue::Idue;
    use idldp_core::idue_ps::IduePs;

    fn eps(v: f64) -> Epsilon {
        Epsilon::new(v).unwrap()
    }

    #[test]
    fn parallel_equals_sequential_bytewise() {
        let mech = Idue::oue(12, eps(1.5)).unwrap();
        let items: Vec<u32> = (0..10_000).map(|i| (i % 12) as u32).collect();
        let p = SimulationPipeline::new().with_chunk_size(256);
        let par = p.run(&mech, InputBatch::Items(&items), 77).unwrap();
        let seq = p
            .run_sequential(&mech, InputBatch::Items(&items), 77)
            .unwrap();
        assert_eq!(par, seq);
        // And a different seed changes the counts.
        let other = p.run(&mech, InputBatch::Items(&items), 78).unwrap();
        assert_ne!(par, other);
    }

    #[test]
    fn set_mechanism_runs_through_pipeline() {
        let mech = IduePs::oue_ps(6, eps(2.0), 3).unwrap();
        let sets: Vec<Vec<u32>> = (0..3000)
            .map(|i| vec![(i % 6) as u32, ((i + 2) % 6) as u32])
            .collect();
        let p = SimulationPipeline::new().with_chunk_size(100);
        let par = p.run(&mech, InputBatch::Sets(&sets), 5).unwrap();
        let seq = p.run_sequential(&mech, InputBatch::Sets(&sets), 5).unwrap();
        assert_eq!(par, seq);
        assert_eq!(par.len(), 9);
    }

    #[test]
    fn counts_calibrate_back_to_truth() {
        let m = 8;
        let mech = Idue::oue(m, eps(2.0)).unwrap();
        let n = 40_000usize;
        let items: Vec<u32> = (0..n).map(|i| if i % 4 == 0 { 1 } else { 6 }).collect();
        let counts = SimulationPipeline::new()
            .run(&mech, InputBatch::Items(&items), 9)
            .unwrap();
        let oracle = idldp_core::mechanism::Mechanism::frequency_oracle(&mech, n as u64);
        let est = oracle.estimate(&counts).unwrap();
        assert!((est[1] - n as f64 / 4.0).abs() < 0.03 * n as f64, "{est:?}");
        assert!(
            (est[6] - 3.0 * n as f64 / 4.0).abs() < 0.03 * n as f64,
            "{est:?}"
        );
    }

    #[test]
    fn wrong_kind_surfaces_error() {
        let mech = Idue::oue(4, eps(1.0)).unwrap();
        let sets: Vec<Vec<u32>> = vec![vec![0]];
        let p = SimulationPipeline::new();
        assert!(p.run(&mech, InputBatch::Sets(&sets), 1).is_err());
    }

    #[test]
    fn empty_batch_yields_zero_counts() {
        let mech = Idue::oue(4, eps(1.0)).unwrap();
        let counts = SimulationPipeline::new()
            .run(&mech, InputBatch::Items(&[]), 1)
            .unwrap();
        assert_eq!(counts, vec![0; 4]);
    }
}
