//! The batched, parallel client-simulation pipeline.
//!
//! Simulates the client side of the paper's Fig. 2 for *any*
//! [`BatchMechanism`]: users are split into fixed-size chunks, every chunk
//! gets its own RNG stream derived from `(seed, chunk_index)` and its own
//! [`CountAccumulator`], chunks run in parallel on rayon, and the per-chunk
//! accumulators are merged in chunk order.
//!
//! ## Determinism contract
//!
//! Results depend only on `(mechanism, inputs, seed, chunk_size)` — **not**
//! on the worker-thread count and not on whether the run was parallel or
//! sequential at all: [`SimulationPipeline::run`] and
//! [`SimulationPipeline::run_sequential`] return byte-identical counts for
//! the same seed. Chunk RNG streams are independent [`stream_rng`] streams,
//! and merged counts are integer sums, so no floating-point reassociation
//! can creep in.
//!
//! ## Relationship to the streaming layer
//!
//! The pipeline runs *on top of* the `idldp-stream` accumulator layer: the
//! chunk grid is [`idldp_stream::chunk_ranges`] (shared with
//! [`idldp_stream::SeededReportStream`]), and the parallel reduce fans
//! per-chunk [`CountAccumulator`]s into a
//! [`ShardedAccumulator`]`<`[`BitReportAccumulator`]`>` — the same striped
//! state an online ingestion service uses. Streaming the identical seeded
//! report stream therefore reproduces a batch run's counts bit for bit
//! (asserted by `tests/streaming_conformance.rs` for all eight mechanisms).

use idldp_core::error::Result;
use idldp_core::mechanism::{BatchMechanism, CountAccumulator, InputBatch};
use idldp_core::snapshot::AccumulatorSnapshot;
use idldp_num::rng::stream_rng;
use idldp_stream::{
    BitReportAccumulator, Candidate, HeavyHitterTracker, SeededReportStream, ShardedAccumulator,
    TrackerMode,
};
use rayon::prelude::*;

/// Default number of users per chunk: large enough to amortize the chunk
/// RNG setup and accumulator merge, small enough to load-balance tens of
/// cores on the smallest paper-scale datasets. Shared with the streaming
/// layer ([`idldp_stream::DEFAULT_CHUNK_SIZE`]).
pub const DEFAULT_CHUNK_SIZE: usize = idldp_stream::DEFAULT_CHUNK_SIZE;

/// Final answer of an online top-k tracking run
/// ([`SimulationPipeline::run_top_k`]).
#[derive(Clone, Debug, PartialEq)]
pub struct TopKRun {
    /// The identified heavy hitters, rank order (or index order in
    /// threshold mode) — identical to batch `identify_top_k` /
    /// `identify_above` on the full-population estimates.
    pub top_k: Vec<usize>,
    /// The tracker's final candidate set (top-k answer plus slack
    /// runners-up), with the estimate each candidate held.
    pub candidates: Vec<Candidate>,
    /// How many snapshot → prune → re-estimate cycles ran.
    pub refreshes: u64,
    /// Total reports streamed.
    pub num_users: u64,
}

/// A reusable, mechanism-agnostic client-simulation runner.
#[derive(Clone, Copy, Debug)]
pub struct SimulationPipeline {
    chunk_size: usize,
}

impl Default for SimulationPipeline {
    fn default() -> Self {
        Self {
            chunk_size: DEFAULT_CHUNK_SIZE,
        }
    }
}

impl SimulationPipeline {
    /// A pipeline with the default chunk size.
    pub fn new() -> Self {
        Self::default()
    }

    /// Overrides the chunk size (changing it changes the RNG chunking and
    /// therefore the sampled counts — it is part of the seed, not a tuning
    /// knob to flip between runs being compared).
    ///
    /// # Panics
    /// Panics if `chunk_size == 0`.
    pub fn with_chunk_size(mut self, chunk_size: usize) -> Self {
        assert!(chunk_size > 0, "chunk size must be positive");
        self.chunk_size = chunk_size;
        self
    }

    /// The configured chunk size.
    pub fn chunk_size(&self) -> usize {
        self.chunk_size
    }

    /// Runs every user through `mechanism` in parallel, returning the
    /// merged per-bucket report counts (length `mechanism.report_len()`).
    ///
    /// # Errors
    /// Returns the first per-input error (wrong input kind, out-of-domain
    /// item).
    pub fn run(
        &self,
        mechanism: &dyn BatchMechanism,
        inputs: InputBatch<'_>,
        seed: u64,
    ) -> Result<Vec<u64>> {
        Ok(self.run_snapshot(mechanism, inputs, seed)?.into_counts())
    }

    /// Like [`Self::run`], but returns the frozen accumulator state
    /// ([`AccumulatorSnapshot`]) — counts *plus* user total — ready for the
    /// incremental oracle path
    /// ([`idldp_core::mechanism::FrequencyOracle::estimate_from`]) or a
    /// checkpoint file.
    ///
    /// Internally each rayon chunk accumulates locally and is absorbed into
    /// a striped [`ShardedAccumulator`]; integer merges commute, so the
    /// result is independent of shard count and absorption order.
    ///
    /// # Errors
    /// Same conditions as [`Self::run`].
    pub fn run_snapshot(
        &self,
        mechanism: &dyn BatchMechanism,
        inputs: InputBatch<'_>,
        seed: u64,
    ) -> Result<AccumulatorSnapshot> {
        let sink = ShardedAccumulator::new(
            BitReportAccumulator::new(mechanism.report_len()),
            idldp_stream::DEFAULT_SHARDS,
        );
        // (map + reduce rather than try_for_each: the vendored rayon shim
        // exposes only the map/for_each/reduce/collect subset.)
        self.chunk_ranges(inputs.len())
            .into_par_iter()
            .map(|(ci, lo, hi)| {
                let chunk = self.run_chunk(mechanism, inputs, seed, ci, lo, hi)?;
                sink.absorb(&BitReportAccumulator::from(chunk))
                    .expect("chunk width equals sink width");
                Ok(())
            })
            .reduce(|| Ok(()), |left: Result<()>, right| left.and(right))?;
        Ok(sink.snapshot())
    }

    /// The sequential reference path: same chunking, same RNG streams, same
    /// merge order, no threads. Byte-identical to [`Self::run`].
    ///
    /// # Errors
    /// Same conditions as [`Self::run`].
    pub fn run_sequential(
        &self,
        mechanism: &dyn BatchMechanism,
        inputs: InputBatch<'_>,
        seed: u64,
    ) -> Result<Vec<u64>> {
        let mut merged = CountAccumulator::new(mechanism.report_len());
        for (ci, lo, hi) in self.chunk_ranges(inputs.len()) {
            let chunk = self.run_chunk(mechanism, inputs, seed, ci, lo, hi)?;
            merged.merge(&chunk);
        }
        Ok(merged.into_counts())
    }

    /// The snapshot-driven online variant: streams the same seeded report
    /// population one report at a time into a
    /// [`HeavyHitterTracker`] (shape-dispatched sink over `num_shards`
    /// shards, snapshot → prune → re-estimate every `cadence` reports) and
    /// returns its final answer.
    ///
    /// The stream shares the batch chunk/RNG grid, so the tracker's counts
    /// — and therefore its final top-k — are **identical** to running
    /// [`Self::run_snapshot`] and ranking the oracle estimates offline,
    /// for every shard count and every cadence
    /// (`crates/sim/tests/topk_conformance.rs` asserts this for all eight
    /// mechanisms). What changes with `cadence` is only how often a fresh
    /// candidate set would have been served mid-stream
    /// ([`TopKRun::refreshes`]).
    ///
    /// # Errors
    /// Returns the first perturbation or tracker error (wrong input kind,
    /// out-of-domain item, invalid mode/cadence).
    pub fn run_top_k(
        &self,
        mechanism: &dyn BatchMechanism,
        inputs: InputBatch<'_>,
        seed: u64,
        num_shards: usize,
        mode: TrackerMode,
        cadence: usize,
    ) -> Result<TopKRun> {
        let mut tracker = HeavyHitterTracker::for_mechanism(mechanism, num_shards, mode, cadence)?;
        let mut stream =
            SeededReportStream::new(mechanism, inputs, seed).with_chunk_size(self.chunk_size);
        while stream.next_chunk_with(|report| tracker.push(report).map(|_| ()))? > 0 {}
        let top_k = tracker.finish()?;
        Ok(TopKRun {
            top_k,
            candidates: tracker.candidates().to_vec(),
            refreshes: tracker.refreshes(),
            num_users: tracker.num_users(),
        })
    }

    fn chunk_ranges(&self, n: usize) -> Vec<(u64, usize, usize)> {
        // The grid is defined once, in the streaming layer, so batch and
        // streaming runs can never drift apart.
        idldp_stream::chunk_ranges(n, self.chunk_size)
    }

    fn run_chunk(
        &self,
        mechanism: &dyn BatchMechanism,
        inputs: InputBatch<'_>,
        seed: u64,
        chunk_index: u64,
        lo: usize,
        hi: usize,
    ) -> Result<CountAccumulator> {
        let mut rng = stream_rng(seed, chunk_index);
        let mut acc = CountAccumulator::new(mechanism.report_len());
        let slice = match inputs {
            InputBatch::Items(items) => InputBatch::Items(&items[lo..hi]),
            InputBatch::Sets(sets) => InputBatch::Sets(&sets[lo..hi]),
        };
        mechanism.perturb_batch(slice, &mut rng, &mut acc)?;
        Ok(acc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use idldp_core::budget::Epsilon;
    use idldp_core::idue::Idue;
    use idldp_core::idue_ps::IduePs;

    fn eps(v: f64) -> Epsilon {
        Epsilon::new(v).unwrap()
    }

    #[test]
    fn parallel_equals_sequential_bytewise() {
        let mech = Idue::oue(12, eps(1.5)).unwrap();
        let items: Vec<u32> = (0..10_000).map(|i| (i % 12) as u32).collect();
        let p = SimulationPipeline::new().with_chunk_size(256);
        let par = p.run(&mech, InputBatch::Items(&items), 77).unwrap();
        let seq = p
            .run_sequential(&mech, InputBatch::Items(&items), 77)
            .unwrap();
        assert_eq!(par, seq);
        // And a different seed changes the counts.
        let other = p.run(&mech, InputBatch::Items(&items), 78).unwrap();
        assert_ne!(par, other);
    }

    #[test]
    fn set_mechanism_runs_through_pipeline() {
        let mech = IduePs::oue_ps(6, eps(2.0), 3).unwrap();
        let sets: Vec<Vec<u32>> = (0..3000)
            .map(|i| vec![(i % 6) as u32, ((i + 2) % 6) as u32])
            .collect();
        let p = SimulationPipeline::new().with_chunk_size(100);
        let par = p.run(&mech, InputBatch::Sets(&sets), 5).unwrap();
        let seq = p.run_sequential(&mech, InputBatch::Sets(&sets), 5).unwrap();
        assert_eq!(par, seq);
        assert_eq!(par.len(), 9);
    }

    #[test]
    fn counts_calibrate_back_to_truth() {
        let m = 8;
        let mech = Idue::oue(m, eps(2.0)).unwrap();
        let n = 40_000usize;
        let items: Vec<u32> = (0..n).map(|i| if i % 4 == 0 { 1 } else { 6 }).collect();
        let counts = SimulationPipeline::new()
            .run(&mech, InputBatch::Items(&items), 9)
            .unwrap();
        let oracle = idldp_core::mechanism::Mechanism::frequency_oracle(&mech, n as u64);
        let est = oracle.estimate(&counts).unwrap();
        assert!((est[1] - n as f64 / 4.0).abs() < 0.03 * n as f64, "{est:?}");
        assert!(
            (est[6] - 3.0 * n as f64 / 4.0).abs() < 0.03 * n as f64,
            "{est:?}"
        );
    }

    #[test]
    fn wrong_kind_surfaces_error() {
        let mech = Idue::oue(4, eps(1.0)).unwrap();
        let sets: Vec<Vec<u32>> = vec![vec![0]];
        let p = SimulationPipeline::new();
        assert!(p.run(&mech, InputBatch::Sets(&sets), 1).is_err());
    }

    #[test]
    fn empty_batch_yields_zero_counts() {
        let mech = Idue::oue(4, eps(1.0)).unwrap();
        let counts = SimulationPipeline::new()
            .run(&mech, InputBatch::Items(&[]), 1)
            .unwrap();
        assert_eq!(counts, vec![0; 4]);
    }

    #[test]
    fn run_top_k_matches_offline_ranking() {
        let m = 10;
        let mech = Idue::oue(m, eps(2.0)).unwrap();
        let n = 20_000usize;
        let items: Vec<u32> = (0..n).map(|i| if i % 3 == 0 { 7 } else { 2 }).collect();
        let p = SimulationPipeline::new().with_chunk_size(512);
        // Offline reference: batch snapshot → oracle → rank.
        let snap = p.run_snapshot(&mech, InputBatch::Items(&items), 6).unwrap();
        let oracle = idldp_core::mechanism::Mechanism::frequency_oracle(&mech, n as u64);
        let est = oracle.estimate_from(&snap).unwrap();
        let want = idldp_num::vecops::top_k_indices(&est, 2);
        // Online: same seed, snapshot-driven tracker.
        for cadence in [700, 4096] {
            let run = p
                .run_top_k(
                    &mech,
                    InputBatch::Items(&items),
                    6,
                    3,
                    TrackerMode::TopK { k: 2, slack: 1 },
                    cadence,
                )
                .unwrap();
            assert_eq!(run.top_k, want);
            assert_eq!(run.top_k, vec![2, 7]);
            assert_eq!(run.num_users, n as u64);
            assert_eq!(run.candidates.len(), 3);
            // Candidate estimates are the exact offline estimates.
            for c in &run.candidates {
                assert_eq!(c.estimate, est[c.item], "item {}", c.item);
            }
        }
        // Degenerate tracker configuration surfaces as an error.
        assert!(p
            .run_top_k(
                &mech,
                InputBatch::Items(&items),
                6,
                1,
                TrackerMode::TopK { k: 0, slack: 0 },
                64,
            )
            .is_err());
    }

    #[test]
    fn snapshot_carries_counts_and_users() {
        let mech = Idue::oue(4, eps(1.0)).unwrap();
        let items: Vec<u32> = (0..5000).map(|i| (i % 4) as u32).collect();
        let p = SimulationPipeline::new().with_chunk_size(512);
        let snap = p.run_snapshot(&mech, InputBatch::Items(&items), 3).unwrap();
        assert_eq!(snap.num_users(), 5000);
        let counts = p.run(&mech, InputBatch::Items(&items), 3).unwrap();
        assert_eq!(snap.counts(), counts.as_slice());
        // The incremental oracle path agrees with the direct one.
        let oracle = idldp_core::mechanism::Mechanism::frequency_oracle(&mech, 5000);
        assert_eq!(
            oracle.estimate_from(&snap).unwrap(),
            oracle.estimate(&counts).unwrap()
        );
    }
}
