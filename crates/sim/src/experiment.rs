//! Multi-trial experiment runners.
//!
//! An experiment fixes a dataset and a level partition, builds each
//! requested mechanism once, and repeats the (aggregate-path) pipeline over
//! seeded trials. Reported numbers:
//!
//! * **empirical MSE** — mean over trials of the total squared error
//!   `Σ_i (ĉ_i − c*_i)²` (what the paper's Figs. 3–5 plot), with its
//!   standard error;
//! * **top-k MSE** — the same restricted to the k most frequent items
//!   (Fig. 5's right-hand panels, k = 5);
//! * **theoretical MSE** — Eq. 9 evaluated at the true/expected hot counts,
//!   plus the squared sampling bias for PS mechanisms (the estimator is
//!   biased when sets exceed the padding length — the paper's Fig. 5
//!   discussion).

use crate::aggregate;
use crate::metrics;
use crate::spec::{build_item_set, build_single_item, BuildError, MechanismSpec};
use idldp_core::levels::LevelPartition;
use idldp_data::dataset::{ItemSetDataset, SingleItemDataset};
use idldp_num::rng::derive_seed;
use idldp_num::stats::RunningStats;
use rand::{rngs::StdRng, SeedableRng};

/// One trial's error metrics.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TrialOutcome {
    /// Total squared error over all items.
    pub total_se: f64,
    /// Squared error over the top-k most frequent items.
    pub topk_se: f64,
}

/// Aggregated result for one mechanism.
#[derive(Clone, Debug)]
pub struct MechanismResult {
    /// Display name (paper legend).
    pub name: String,
    /// Mean empirical total MSE over trials.
    pub empirical_mse: f64,
    /// Standard error of the empirical MSE.
    pub empirical_mse_stderr: f64,
    /// Mean empirical top-k MSE over trials.
    pub empirical_topk_mse: f64,
    /// Theoretical total MSE (Eq. 9; plus sampling-bias² for PS).
    pub theoretical_mse: f64,
    /// The plain-LDP budget the built mechanism actually provides
    /// (diagnostic: shows how much MinID-LDP relaxed the worst case).
    pub ldp_epsilon: f64,
    /// Raw per-trial outcomes.
    pub trials: Vec<TrialOutcome>,
}

/// Single-item experiment (Fig. 3 and Fig. 4(a)).
pub struct SingleItemExperiment<'a> {
    dataset: &'a SingleItemDataset,
    levels: LevelPartition,
    trials: usize,
    seed: u64,
    top_k: usize,
}

impl<'a> SingleItemExperiment<'a> {
    /// Creates an experiment over `dataset` with per-item budgets `levels`.
    ///
    /// # Panics
    /// Panics if the level partition's domain differs from the dataset's or
    /// `trials == 0`.
    pub fn new(
        dataset: &'a SingleItemDataset,
        levels: LevelPartition,
        trials: usize,
        seed: u64,
    ) -> Self {
        assert_eq!(
            levels.num_items(),
            dataset.domain_size(),
            "levels/dataset domain mismatch"
        );
        assert!(trials > 0, "need at least one trial");
        Self {
            dataset,
            levels,
            trials,
            seed,
            top_k: 5,
        }
    }

    /// Overrides the top-k size (default 5, as in Fig. 5).
    pub fn with_top_k(mut self, k: usize) -> Self {
        self.top_k = k;
        self
    }

    /// Runs all `specs`, returning one result per spec in order.
    pub fn run(&self, specs: &[MechanismSpec]) -> Result<Vec<MechanismResult>, BuildError> {
        let truth = self.dataset.true_counts();
        let top = self.dataset.top_k(self.top_k);
        let n = self.dataset.num_users() as u64;
        let mut results = Vec::with_capacity(specs.len());
        for (si, &spec) in specs.iter().enumerate() {
            let mechanism = build_single_item(spec, &self.levels, None)?;
            let estimator = mechanism.estimator(n);
            let theoretical = estimator
                .theoretical_total_mse(&truth)
                .expect("estimator sized to domain");
            let mut mse = RunningStats::new();
            let mut topk = RunningStats::new();
            let mut trials = Vec::with_capacity(self.trials);
            for trial in 0..self.trials {
                let stream = derive_seed(self.seed, ((si as u64) << 32) | trial as u64);
                let mut rng = StdRng::seed_from_u64(stream);
                let counts = aggregate::run_single_item(&mut rng, &mechanism, self.dataset);
                let est = estimator.estimate(&counts).expect("sized counts");
                let outcome = TrialOutcome {
                    total_se: metrics::total_squared_error(&est, &truth),
                    topk_se: metrics::squared_error_on(&est, &truth, &top),
                };
                mse.push(outcome.total_se);
                topk.push(outcome.topk_se);
                trials.push(outcome);
            }
            results.push(MechanismResult {
                name: spec.name(),
                empirical_mse: mse.mean(),
                empirical_mse_stderr: mse.std_err(),
                empirical_topk_mse: topk.mean(),
                theoretical_mse: theoretical,
                ldp_epsilon: mechanism.ldp_epsilon(),
                trials,
            });
        }
        Ok(results)
    }
}

/// Item-set experiment (Fig. 4(b) and Fig. 5).
pub struct ItemSetExperiment<'a> {
    dataset: &'a ItemSetDataset,
    levels: LevelPartition,
    padding: usize,
    trials: usize,
    seed: u64,
    top_k: usize,
}

impl<'a> ItemSetExperiment<'a> {
    /// Creates an experiment with padding length `padding` (the ℓ of
    /// Algorithm 2).
    ///
    /// # Panics
    /// Panics on domain mismatch, `trials == 0`, or `padding == 0`.
    pub fn new(
        dataset: &'a ItemSetDataset,
        levels: LevelPartition,
        padding: usize,
        trials: usize,
        seed: u64,
    ) -> Self {
        assert_eq!(
            levels.num_items(),
            dataset.domain_size(),
            "levels/dataset domain mismatch"
        );
        assert!(trials > 0, "need at least one trial");
        assert!(padding > 0, "padding length must be positive");
        Self {
            dataset,
            levels,
            padding,
            trials,
            seed,
            top_k: 5,
        }
    }

    /// Overrides the top-k size (default 5, as in Fig. 5).
    pub fn with_top_k(mut self, k: usize) -> Self {
        self.top_k = k;
        self
    }

    /// Runs all `specs`, returning one result per spec in order.
    pub fn run(&self, specs: &[MechanismSpec]) -> Result<Vec<MechanismResult>, BuildError> {
        let truth = self.dataset.true_counts();
        let top = self.dataset.top_k(self.top_k);
        let n = self.dataset.num_users() as u64;
        let expected_hot = aggregate::expected_sampled_counts(self.dataset, self.padding);
        let mut results = Vec::with_capacity(specs.len());
        for (si, &spec) in specs.iter().enumerate() {
            let mechanism = build_item_set(spec, &self.levels, self.padding, None)?;
            let estimator = mechanism.estimator(n);
            // Theoretical: variance at the expected hot counts + bias².
            // E[ĉ_i] = ℓ·E[S_i]; bias_i = ℓ·E[S_i] − c*_i.
            let mut theoretical = estimator
                .theoretical_total_mse(&expected_hot)
                .expect("estimator sized to domain");
            for (i, &h) in expected_hot.iter().enumerate() {
                let bias = self.padding as f64 * h - truth[i];
                theoretical += bias * bias;
            }
            let mut mse = RunningStats::new();
            let mut topk = RunningStats::new();
            let mut trials = Vec::with_capacity(self.trials);
            for trial in 0..self.trials {
                let stream = derive_seed(self.seed, ((si as u64) << 32) | trial as u64);
                let mut rng = StdRng::seed_from_u64(stream);
                let counts = aggregate::run_item_set(&mut rng, &mechanism, self.dataset);
                let m = self.dataset.domain_size();
                let est = estimator.estimate(&counts[..m]).expect("sized counts");
                let outcome = TrialOutcome {
                    total_se: metrics::total_squared_error(&est, &truth),
                    topk_se: metrics::squared_error_on(&est, &truth, &top),
                };
                mse.push(outcome.total_se);
                topk.push(outcome.topk_se);
                trials.push(outcome);
            }
            results.push(MechanismResult {
                name: spec.name(),
                empirical_mse: mse.mean(),
                empirical_mse_stderr: mse.std_err(),
                empirical_topk_mse: topk.mean(),
                theoretical_mse: theoretical,
                ldp_epsilon: mechanism.unary_encoding().ldp_epsilon(),
                trials,
            });
        }
        Ok(results)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use idldp_core::budget::Epsilon;
    use idldp_data::budgets::BudgetScheme;
    use idldp_data::synthetic;
    use idldp_num::rng::SplitMix64;
    use idldp_opt::Model;

    fn eps(v: f64) -> Epsilon {
        Epsilon::new(v).unwrap()
    }

    #[test]
    fn single_item_experiment_shapes() {
        let mut rng = SplitMix64::new(1);
        let ds = synthetic::power_law_with(&mut rng, 20_000, 40, 2.0);
        let levels = BudgetScheme::paper_default()
            .assign(40, eps(1.0), &mut rng)
            .unwrap();
        let exp = SingleItemExperiment::new(&ds, levels, 3, 99);
        let specs = [
            MechanismSpec::Rappor,
            MechanismSpec::Oue,
            MechanismSpec::Idue(Model::Opt1),
        ];
        let results = exp.run(&specs).unwrap();
        assert_eq!(results.len(), 3);
        for r in &results {
            assert_eq!(r.trials.len(), 3);
            assert!(r.empirical_mse > 0.0);
            assert!(r.theoretical_mse > 0.0);
            // Empirical within a loose factor of theoretical (3 trials only).
            let ratio = r.empirical_mse / r.theoretical_mse;
            assert!((0.3..3.0).contains(&ratio), "{}: ratio {ratio}", r.name);
        }
        // IDUE must beat both baselines under the skewed default budgets.
        assert!(
            results[2].empirical_mse < results[0].empirical_mse,
            "IDUE {} vs RAPPOR {}",
            results[2].empirical_mse,
            results[0].empirical_mse
        );
        assert!(
            results[2].empirical_mse < results[1].empirical_mse,
            "IDUE {} vs OUE {}",
            results[2].empirical_mse,
            results[1].empirical_mse
        );
    }

    #[test]
    fn experiment_reproducible_under_seed() {
        let mut rng = SplitMix64::new(2);
        let ds = synthetic::uniform_with(&mut rng, 5_000, 20);
        let levels = BudgetScheme::paper_default()
            .assign(20, eps(1.0), &mut rng)
            .unwrap();
        let specs = [MechanismSpec::Oue];
        let r1 = SingleItemExperiment::new(&ds, levels.clone(), 2, 7)
            .run(&specs)
            .unwrap();
        let r2 = SingleItemExperiment::new(&ds, levels, 2, 7)
            .run(&specs)
            .unwrap();
        assert_eq!(r1[0].empirical_mse, r2[0].empirical_mse);
    }

    #[test]
    fn item_set_experiment_runs() {
        let mut rng = SplitMix64::new(3);
        let cfg = idldp_data::kosarak::KosarakConfig {
            users: 10_000,
            pages: 60,
            mean_set_size: 4.0,
            zipf_exponent: 1.2,
            max_set_size: 30,
        };
        let ds = idldp_data::kosarak::generate(&mut rng, &cfg);
        let levels = BudgetScheme::paper_default()
            .assign(60, eps(2.0), &mut rng)
            .unwrap();
        let exp = ItemSetExperiment::new(&ds, levels, 4, 2, 5);
        let results = exp
            .run(&[MechanismSpec::Oue, MechanismSpec::Idue(Model::Opt2)])
            .unwrap();
        assert_eq!(results.len(), 2);
        for r in &results {
            assert!(r.empirical_mse.is_finite() && r.empirical_mse > 0.0);
            assert!(r.empirical_topk_mse <= r.empirical_mse + 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "domain mismatch")]
    fn mismatched_levels_panic() {
        let mut rng = SplitMix64::new(4);
        let ds = synthetic::uniform_with(&mut rng, 100, 10);
        let levels = BudgetScheme::paper_default()
            .assign(12, eps(1.0), &mut rng)
            .unwrap();
        let _ = SingleItemExperiment::new(&ds, levels, 1, 0);
    }
}
