//! Multi-trial experiment runners.
//!
//! An experiment fixes a dataset and a level partition, builds each
//! requested mechanism once **through the registry** (no per-mechanism
//! dispatch lives here), and repeats the client/server pipeline over seeded
//! trials. Reported numbers:
//!
//! * **empirical MSE** — mean over trials of the total squared error
//!   `Σ_i (ĉ_i − c*_i)²` (what the paper's Figs. 3–5 plot), with its
//!   standard error;
//! * **top-k MSE** — the same restricted to the k most frequent items
//!   (Fig. 5's right-hand panels, k = 5);
//! * **theoretical MSE** — Eq. 9 evaluated at the true/expected hot counts,
//!   plus the squared sampling bias for PS mechanisms (the estimator is
//!   biased when sets exceed the padding length — the paper's Fig. 5
//!   discussion).
//!
//! Two execution paths are available per trial ([`SimulationMode`]):
//! [`SimulationMode::Exact`] simulates every client through the batched,
//! rayon-parallel [`crate::pipeline::SimulationPipeline`] (the default —
//! byte-identical to a sequential run per seed);
//! [`SimulationMode::Aggregate`] draws per-bucket counts as two binomials
//! (`O(n + m)`), distributionally equivalent for frequency estimation.

use crate::aggregate;
use crate::metrics;
use crate::pipeline::SimulationPipeline;
use crate::spec::{build_item_set, build_single_item, BuildError, MechanismSpec};
use idldp_core::levels::LevelPartition;
use idldp_core::mechanism::InputBatch;
use idldp_data::dataset::{ItemSetDataset, SingleItemDataset};
use idldp_num::rng::derive_seed;
use idldp_num::stats::RunningStats;
use rand::{rngs::StdRng, SeedableRng};

/// Which client-simulation path an experiment runs per trial.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SimulationMode {
    /// Per-user perturbation through the parallel pipeline (ground truth).
    #[default]
    Exact,
    /// Two binomials per report bucket (fast, distribution-equivalent).
    Aggregate,
}

/// One trial's error metrics.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TrialOutcome {
    /// Total squared error over all items.
    pub total_se: f64,
    /// Squared error over the top-k most frequent items.
    pub topk_se: f64,
}

/// Aggregated result for one mechanism.
#[derive(Clone, Debug)]
pub struct MechanismResult {
    /// Display name (paper legend).
    pub name: String,
    /// Mean empirical total MSE over trials.
    pub empirical_mse: f64,
    /// Standard error of the empirical MSE.
    pub empirical_mse_stderr: f64,
    /// Mean empirical top-k MSE over trials.
    pub empirical_topk_mse: f64,
    /// Theoretical total MSE (Eq. 9; plus sampling-bias² for PS).
    pub theoretical_mse: f64,
    /// The plain-LDP budget the built mechanism actually provides
    /// (diagnostic: shows how much MinID-LDP relaxed the worst case).
    pub ldp_epsilon: f64,
    /// Raw per-trial outcomes.
    pub trials: Vec<TrialOutcome>,
}

/// Shared per-mechanism trial loop: `inputs` is the whole dataset, `truth`
/// the per-item true counts, `expected_hot` what the theoretical MSE is
/// evaluated at, `bias_sq` an optional additive squared-bias term.
#[allow(clippy::too_many_arguments)]
fn run_one(
    name: &str,
    mechanism: &dyn idldp_core::mechanism::BatchMechanism,
    inputs: InputBatch<'_>,
    truth: &[f64],
    top: &[usize],
    expected_hot: &[f64],
    bias_sq: f64,
    spec_index: usize,
    trials: usize,
    seed: u64,
    mode: SimulationMode,
) -> Result<MechanismResult, BuildError> {
    let n = inputs.len() as u64;
    let oracle = mechanism.frequency_oracle(n);
    let theoretical = oracle
        .theoretical_total_mse(expected_hot)
        .map_err(|e| BuildError::Core(e.to_string()))?
        + bias_sq;
    let pipeline = SimulationPipeline::new();
    let mut mse = RunningStats::new();
    let mut topk = RunningStats::new();
    let mut outcomes = Vec::with_capacity(trials);
    for trial in 0..trials {
        let stream = derive_seed(seed, ((spec_index as u64) << 32) | trial as u64);
        let counts = match mode {
            SimulationMode::Exact => pipeline
                .run(mechanism, inputs, stream)
                .map_err(|e| BuildError::Core(e.to_string()))?,
            SimulationMode::Aggregate => {
                let mut rng = StdRng::seed_from_u64(stream);
                aggregate::run_counts(&mut rng, mechanism, inputs)
                    .map_err(|e| BuildError::Core(e.to_string()))?
            }
        };
        let est = oracle.estimate(&counts).expect("sized counts");
        let outcome = TrialOutcome {
            total_se: metrics::total_squared_error(&est, truth),
            topk_se: metrics::squared_error_on(&est, truth, top),
        };
        mse.push(outcome.total_se);
        topk.push(outcome.topk_se);
        outcomes.push(outcome);
    }
    Ok(MechanismResult {
        name: name.to_string(),
        empirical_mse: mse.mean(),
        empirical_mse_stderr: mse.std_err(),
        empirical_topk_mse: topk.mean(),
        theoretical_mse: theoretical,
        ldp_epsilon: mechanism.ldp_epsilon(),
        trials: outcomes,
    })
}

/// Single-item experiment (Fig. 3 and Fig. 4(a)).
pub struct SingleItemExperiment<'a> {
    dataset: &'a SingleItemDataset,
    levels: LevelPartition,
    trials: usize,
    seed: u64,
    top_k: usize,
    mode: SimulationMode,
}

impl<'a> SingleItemExperiment<'a> {
    /// Creates an experiment over `dataset` with per-item budgets `levels`.
    ///
    /// # Panics
    /// Panics if the level partition's domain differs from the dataset's or
    /// `trials == 0`.
    pub fn new(
        dataset: &'a SingleItemDataset,
        levels: LevelPartition,
        trials: usize,
        seed: u64,
    ) -> Self {
        assert_eq!(
            levels.num_items(),
            dataset.domain_size(),
            "levels/dataset domain mismatch"
        );
        assert!(trials > 0, "need at least one trial");
        Self {
            dataset,
            levels,
            trials,
            seed,
            top_k: 5,
            mode: SimulationMode::default(),
        }
    }

    /// Overrides the top-k size (default 5, as in Fig. 5).
    pub fn with_top_k(mut self, k: usize) -> Self {
        self.top_k = k;
        self
    }

    /// Overrides the per-trial simulation path (default
    /// [`SimulationMode::Exact`]).
    pub fn with_mode(mut self, mode: SimulationMode) -> Self {
        self.mode = mode;
        self
    }

    /// Runs all `specs`, returning one result per spec in order.
    ///
    /// # Errors
    /// Propagates mechanism construction and simulation failures.
    pub fn run(&self, specs: &[MechanismSpec]) -> Result<Vec<MechanismResult>, BuildError> {
        let named = specs
            .iter()
            .map(|&spec| Ok((spec.name(), build_single_item(spec, &self.levels, None)?)))
            .collect::<Result<Vec<_>, BuildError>>()?;
        self.run_mechanisms(&named)
    }

    /// Runs prebuilt mechanisms under their display names — the fully
    /// name-driven entry point used by the CLI (mechanism names flow from
    /// the command line through the registry with no dispatch in between).
    ///
    /// # Errors
    /// Propagates simulation failures.
    pub fn run_mechanisms(
        &self,
        named: &[(String, Box<dyn idldp_core::mechanism::BatchMechanism>)],
    ) -> Result<Vec<MechanismResult>, BuildError> {
        let truth = self.dataset.true_counts();
        let top = self.dataset.top_k(self.top_k);
        let mut results = Vec::with_capacity(named.len());
        for (si, (name, mechanism)) in named.iter().enumerate() {
            results.push(run_one(
                name,
                mechanism.as_ref(),
                self.dataset.input_batch(),
                &truth,
                &top,
                &truth,
                0.0,
                si,
                self.trials,
                self.seed,
                self.mode,
            )?);
        }
        Ok(results)
    }
}

/// Item-set experiment (Fig. 4(b) and Fig. 5).
pub struct ItemSetExperiment<'a> {
    dataset: &'a ItemSetDataset,
    levels: LevelPartition,
    padding: usize,
    trials: usize,
    seed: u64,
    top_k: usize,
    mode: SimulationMode,
}

impl<'a> ItemSetExperiment<'a> {
    /// Creates an experiment with padding length `padding` (the ℓ of
    /// Algorithm 2).
    ///
    /// # Panics
    /// Panics on domain mismatch, `trials == 0`, or `padding == 0`.
    pub fn new(
        dataset: &'a ItemSetDataset,
        levels: LevelPartition,
        padding: usize,
        trials: usize,
        seed: u64,
    ) -> Self {
        assert_eq!(
            levels.num_items(),
            dataset.domain_size(),
            "levels/dataset domain mismatch"
        );
        assert!(trials > 0, "need at least one trial");
        assert!(padding > 0, "padding length must be positive");
        Self {
            dataset,
            levels,
            padding,
            trials,
            seed,
            top_k: 5,
            mode: SimulationMode::default(),
        }
    }

    /// Overrides the top-k size (default 5, as in Fig. 5).
    pub fn with_top_k(mut self, k: usize) -> Self {
        self.top_k = k;
        self
    }

    /// Overrides the per-trial simulation path (default
    /// [`SimulationMode::Exact`]).
    pub fn with_mode(mut self, mode: SimulationMode) -> Self {
        self.mode = mode;
        self
    }

    /// Runs all `specs`, returning one result per spec in order.
    ///
    /// # Errors
    /// Propagates mechanism construction and simulation failures.
    pub fn run(&self, specs: &[MechanismSpec]) -> Result<Vec<MechanismResult>, BuildError> {
        let named = specs
            .iter()
            .map(|&spec| {
                Ok((
                    spec.name(),
                    build_item_set(spec, &self.levels, self.padding, None)?,
                ))
            })
            .collect::<Result<Vec<_>, BuildError>>()?;
        self.run_mechanisms(&named)
    }

    /// Runs prebuilt item-set mechanisms under their display names (see
    /// [`SingleItemExperiment::run_mechanisms`]).
    ///
    /// # Errors
    /// Propagates simulation failures.
    pub fn run_mechanisms(
        &self,
        named: &[(String, Box<dyn idldp_core::mechanism::BatchMechanism>)],
    ) -> Result<Vec<MechanismResult>, BuildError> {
        let truth = self.dataset.true_counts();
        let top = self.dataset.top_k(self.top_k);
        let expected_hot = aggregate::expected_sampled_counts(self.dataset, self.padding);
        // Theoretical: variance at the expected hot counts + bias².
        // E[ĉ_i] = ℓ·E[S_i]; bias_i = ℓ·E[S_i] − c*_i.
        let bias_sq: f64 = expected_hot
            .iter()
            .zip(&truth)
            .map(|(&h, &t)| {
                let bias = self.padding as f64 * h - t;
                bias * bias
            })
            .sum();
        let mut results = Vec::with_capacity(named.len());
        for (si, (name, mechanism)) in named.iter().enumerate() {
            results.push(run_one(
                name,
                mechanism.as_ref(),
                self.dataset.input_batch(),
                &truth,
                &top,
                &expected_hot,
                bias_sq,
                si,
                self.trials,
                self.seed,
                self.mode,
            )?);
        }
        Ok(results)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use idldp_core::budget::Epsilon;
    use idldp_data::budgets::BudgetScheme;
    use idldp_data::synthetic;
    use idldp_num::rng::SplitMix64;
    use idldp_opt::Model;

    fn eps(v: f64) -> Epsilon {
        Epsilon::new(v).unwrap()
    }

    #[test]
    fn single_item_experiment_shapes() {
        let mut rng = SplitMix64::new(1);
        let ds = synthetic::power_law_with(&mut rng, 20_000, 40, 2.0);
        let levels = BudgetScheme::paper_default()
            .assign(40, eps(1.0), &mut rng)
            .unwrap();
        let exp = SingleItemExperiment::new(&ds, levels, 3, 99);
        let specs = [
            MechanismSpec::Rappor,
            MechanismSpec::Oue,
            MechanismSpec::Idue(Model::Opt1),
        ];
        let results = exp.run(&specs).unwrap();
        assert_eq!(results.len(), 3);
        for r in &results {
            assert_eq!(r.trials.len(), 3);
            assert!(r.empirical_mse > 0.0);
            assert!(r.theoretical_mse > 0.0);
            // Empirical within a loose factor of theoretical (3 trials only).
            let ratio = r.empirical_mse / r.theoretical_mse;
            assert!((0.3..3.0).contains(&ratio), "{}: ratio {ratio}", r.name);
        }
        // IDUE must beat both baselines under the skewed default budgets.
        assert!(
            results[2].empirical_mse < results[0].empirical_mse,
            "IDUE {} vs RAPPOR {}",
            results[2].empirical_mse,
            results[0].empirical_mse
        );
        assert!(
            results[2].empirical_mse < results[1].empirical_mse,
            "IDUE {} vs OUE {}",
            results[2].empirical_mse,
            results[1].empirical_mse
        );
    }

    #[test]
    fn experiment_reproducible_under_seed() {
        let mut rng = SplitMix64::new(2);
        let ds = synthetic::uniform_with(&mut rng, 5_000, 20);
        let levels = BudgetScheme::paper_default()
            .assign(20, eps(1.0), &mut rng)
            .unwrap();
        let specs = [MechanismSpec::Oue];
        let r1 = SingleItemExperiment::new(&ds, levels.clone(), 2, 7)
            .run(&specs)
            .unwrap();
        let r2 = SingleItemExperiment::new(&ds, levels, 2, 7)
            .run(&specs)
            .unwrap();
        assert_eq!(r1[0].empirical_mse, r2[0].empirical_mse);
    }

    #[test]
    fn exact_and_aggregate_modes_agree_statistically() {
        // Same experiment through both paths: the distributions are
        // identical, so with enough trials the means land close together.
        let mut rng = SplitMix64::new(9);
        let ds = synthetic::power_law_with(&mut rng, 8_000, 25, 2.0);
        let levels = BudgetScheme::paper_default()
            .assign(25, eps(1.5), &mut rng)
            .unwrap();
        let specs = [MechanismSpec::Oue];
        let exact = SingleItemExperiment::new(&ds, levels.clone(), 12, 31)
            .with_mode(SimulationMode::Exact)
            .run(&specs)
            .unwrap();
        let aggregate = SingleItemExperiment::new(&ds, levels, 12, 32)
            .with_mode(SimulationMode::Aggregate)
            .run(&specs)
            .unwrap();
        let ratio = exact[0].empirical_mse / aggregate[0].empirical_mse;
        assert!((0.5..2.0).contains(&ratio), "exact/aggregate ratio {ratio}");
        // Both concentrate on the same theoretical value.
        assert!((exact[0].theoretical_mse - aggregate[0].theoretical_mse).abs() < 1e-9);
    }

    #[test]
    fn item_set_experiment_runs() {
        let mut rng = SplitMix64::new(3);
        let cfg = idldp_data::kosarak::KosarakConfig {
            users: 10_000,
            pages: 60,
            mean_set_size: 4.0,
            zipf_exponent: 1.2,
            max_set_size: 30,
        };
        let ds = idldp_data::kosarak::generate(&mut rng, &cfg);
        let levels = BudgetScheme::paper_default()
            .assign(60, eps(2.0), &mut rng)
            .unwrap();
        let exp = ItemSetExperiment::new(&ds, levels, 4, 2, 5);
        let results = exp
            .run(&[MechanismSpec::Oue, MechanismSpec::Idue(Model::Opt2)])
            .unwrap();
        assert_eq!(results.len(), 2);
        for r in &results {
            assert!(r.empirical_mse.is_finite() && r.empirical_mse > 0.0);
            assert!(r.empirical_topk_mse <= r.empirical_mse + 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "domain mismatch")]
    fn mismatched_levels_panic() {
        let mut rng = SplitMix64::new(4);
        let ds = synthetic::uniform_with(&mut rng, 100, 10);
        let levels = BudgetScheme::paper_default()
            .assign(12, eps(1.0), &mut rng)
            .unwrap();
        let _ = SingleItemExperiment::new(&ds, levels, 1, 0);
    }
}
