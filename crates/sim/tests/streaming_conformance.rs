//! Streaming ≡ batch conformance (the acceptance bar of the streaming
//! subsystem).
//!
//! Feeds the *same* seeded report stream through two independent routes:
//!
//! 1. **Batch** — [`SimulationPipeline::run`] / `run_snapshot`
//!    (`perturb_batch` fast paths, rayon chunks, sharded absorption), and
//! 2. **Streaming** — [`SeededReportStream`] generating one report at a
//!    time, fanned across a [`ShardedAccumulator`] chunk by chunk,
//!
//! and asserts identical per-bucket counts *and* identical oracle
//! estimates, for all eight mechanisms and for several shard counts — with
//! the stream emitting each mechanism's *native wire shape* (bit vectors,
//! categorical values, hashed `(seed, value)` pairs, item sets) into the
//! matching shape accumulator. The contract that makes this possible is
//! layered: `BatchMechanism` implementations draw randomness exactly like
//! the per-user loop and `perturb_data` draws exactly like `perturb_into`
//! (conformance suite in `idldp-core`), the chunk/RNG grid is defined once
//! in `idldp-stream`, and integer count merges commute.

use idldp_core::budget::Epsilon;
use idldp_core::grr::GeneralizedRandomizedResponse;
use idldp_core::idue::Idue;
use idldp_core::idue_ps::IduePs;
use idldp_core::levels::LevelPartition;
use idldp_core::matrix_mech::PerturbationMatrix;
use idldp_core::mechanism::{BatchMechanism, InputBatch};
use idldp_core::olh::OptimalLocalHashing;
use idldp_core::params::LevelParams;
use idldp_core::ps::PsMechanism;
use idldp_core::snapshot::AccumulatorSnapshot;
use idldp_core::subset::SubsetSelection;
use idldp_core::ue::UnaryEncoding;
use idldp_sim::stream::{
    BitReportAccumulator, OneHotReportAccumulator, ReportAccumulator, SeededReportStream,
    ShapedAccumulator, ShardedAccumulator,
};
use idldp_sim::SimulationPipeline;

const SEED: u64 = 20200505;
const CHUNK: usize = 256;
const SHARD_COUNTS: [usize; 3] = [1, 3, 8];

fn eps(v: f64) -> Epsilon {
    Epsilon::new(v).unwrap()
}

fn items(n: usize, m: usize) -> Vec<u32> {
    // Skewed inputs so every bucket count differs (a symmetric dataset
    // could mask index-permutation bugs).
    (0..n).map(|i| ((i * i) % m) as u32).collect()
}

fn sets(n: usize, m: usize) -> Vec<Vec<u32>> {
    (0..n)
        .map(|i| {
            let a = (i % m) as u32;
            let b = ((i / 2 + 1) % m) as u32;
            if a == b {
                vec![a]
            } else {
                vec![a, b]
            }
        })
        .collect()
}

/// Runs one mechanism through both routes and asserts bit-identity of
/// counts, users, and oracle estimates, for every shard count.
fn assert_streaming_matches_batch<A>(
    name: &str,
    mechanism: &dyn BatchMechanism,
    inputs: InputBatch<'_>,
    make_accumulator: impl Fn(&dyn BatchMechanism) -> A,
) where
    A: ReportAccumulator + Clone,
{
    let n = inputs.len() as u64;
    let pipeline = SimulationPipeline::new().with_chunk_size(CHUNK);
    let batch_counts = pipeline.run(mechanism, inputs, SEED).unwrap();
    let batch_snapshot = pipeline.run_snapshot(mechanism, inputs, SEED).unwrap();
    assert_eq!(
        batch_snapshot.counts(),
        batch_counts.as_slice(),
        "{name}: run vs run_snapshot"
    );
    assert_eq!(batch_snapshot.num_users(), n, "{name}: snapshot user total");

    let oracle = mechanism.frequency_oracle(n);
    let batch_estimates = oracle.estimate(&batch_counts).unwrap();

    for shards in SHARD_COUNTS {
        let sink = ShardedAccumulator::new(make_accumulator(mechanism), shards);
        let mut stream = SeededReportStream::new(mechanism, inputs, SEED).with_chunk_size(CHUNK);
        // Chunked ingestion: after every chunk the snapshot must be
        // serveable (width + monotone users), even before the end.
        let mut last_users = 0;
        loop {
            let ingested = stream.ingest_chunk(&sink).unwrap();
            if ingested == 0 {
                break;
            }
            let mid = sink.snapshot();
            assert_eq!(mid.report_len(), mechanism.report_len());
            assert!(mid.num_users() > last_users);
            last_users = mid.num_users();
        }
        let streamed = sink.snapshot();
        assert_eq!(
            streamed, batch_snapshot,
            "{name}: streaming counts diverge from batch at {shards} shards"
        );
        let streamed_estimates = oracle.estimate_from(&streamed).unwrap();
        assert_eq!(
            streamed_estimates, batch_estimates,
            "{name}: oracle estimates diverge at {shards} shards"
        );
    }

    // Checkpoint round-trip: the frozen state survives serialization.
    let restored =
        AccumulatorSnapshot::from_checkpoint_str(&batch_snapshot.to_checkpoint_string()).unwrap();
    assert_eq!(restored, batch_snapshot, "{name}: checkpoint round-trip");
    assert_eq!(
        oracle.estimate_from(&restored).unwrap(),
        batch_estimates,
        "{name}: estimates after restore"
    );
}

/// The shape-matched sink every mechanism can stream into.
fn shaped(mech: &dyn BatchMechanism) -> ShapedAccumulator {
    ShapedAccumulator::for_mechanism(mech)
}

/// The plain bit sink, for mechanisms whose wire shape *is* the bit vector.
fn bits(mech: &dyn BatchMechanism) -> BitReportAccumulator {
    BitReportAccumulator::new(mech.report_len())
}

#[test]
fn grr_streaming_matches_batch() {
    let m = 24;
    let mech = GeneralizedRandomizedResponse::new(eps(1.2), m).unwrap();
    let inputs = items(6000, m);
    // GRR reports stream natively as categorical values: through the
    // shape-dispatched accumulator...
    assert_streaming_matches_batch("grr/shaped", &mech, InputBatch::Items(&inputs), shaped);
    // ...and into the explicit one-hot accumulator — identical counts.
    assert_streaming_matches_batch(
        "grr/one-hot",
        &mech,
        InputBatch::Items(&inputs),
        |m: &dyn BatchMechanism| OneHotReportAccumulator::new(m.report_len()),
    );
}

#[test]
fn ue_streaming_matches_batch() {
    let m = 20;
    for (name, mech) in [
        ("rappor", UnaryEncoding::symmetric(eps(1.0), m).unwrap()),
        ("oue", UnaryEncoding::optimized(eps(1.0), m).unwrap()),
    ] {
        let inputs = items(5000, m);
        assert_streaming_matches_batch(name, &mech, InputBatch::Items(&inputs), bits);
        assert_streaming_matches_batch(name, &mech, InputBatch::Items(&inputs), shaped);
    }
}

#[test]
fn idue_streaming_matches_batch() {
    let levels =
        LevelPartition::new(vec![0, 0, 1, 1, 1, 1, 1, 1, 1, 1], vec![eps(1.0), eps(3.0)]).unwrap();
    let params = LevelParams::new(vec![0.59, 0.67], vec![0.33, 0.28]).unwrap();
    let mech = Idue::new(levels, &params).unwrap();
    let inputs = items(5000, 10);
    assert_streaming_matches_batch("idue", &mech, InputBatch::Items(&inputs), bits);
}

#[test]
fn ps_streaming_matches_batch() {
    let m = 12;
    let mech = PsMechanism::new(m, 3).unwrap();
    let inputs = sets(4000, m);
    // PS streams its sampled item as a categorical value over m + ℓ.
    assert_streaming_matches_batch("ps", &mech, InputBatch::Sets(&inputs), shaped);
}

#[test]
fn idue_ps_streaming_matches_batch() {
    let m = 12;
    let mech = IduePs::oue_ps(m, eps(2.0), 3).unwrap();
    let inputs = sets(4000, m);
    assert_streaming_matches_batch("idue-ps", &mech, InputBatch::Sets(&inputs), bits);
}

#[test]
fn matrix_streaming_matches_batch() {
    let m = 10;
    let mech = PerturbationMatrix::grr(eps(1.5), m).unwrap();
    let inputs = items(4000, m);
    assert_streaming_matches_batch(
        "matrix/one-hot",
        &mech,
        InputBatch::Items(&inputs),
        |m: &dyn BatchMechanism| OneHotReportAccumulator::new(m.report_len()),
    );
    assert_streaming_matches_batch("matrix/shaped", &mech, InputBatch::Items(&inputs), shaped);
}

#[test]
fn olh_streaming_matches_batch() {
    // The first compact wire shape: hashed (seed, value) pairs, folded
    // server-side through the shared hash. Streaming the pairs must
    // reproduce the batch pipeline's folded counts bit for bit.
    let m = 24;
    let mech = OptimalLocalHashing::new(eps(1.2), m).unwrap();
    let inputs = items(6000, m);
    assert_streaming_matches_batch("olh/shaped", &mech, InputBatch::Items(&inputs), shaped);
}

#[test]
fn subset_selection_streaming_matches_batch() {
    // The second compact wire shape: size-k item sets.
    let m = 20;
    let mech = SubsetSelection::new(eps(1.0), m).unwrap();
    let inputs = items(5000, m);
    assert_streaming_matches_batch("ss/shaped", &mech, InputBatch::Items(&inputs), shaped);
}

#[test]
fn checkpoint_resume_matches_uninterrupted_stream() {
    // Simulated service restart: ingest half, checkpoint, restore into a
    // fresh sharded accumulator with a different shard count, seek, finish.
    let m = 16;
    let mech = UnaryEncoding::optimized(eps(1.0), m).unwrap();
    let inputs = items(4096, m);
    let batch = InputBatch::Items(&inputs);

    let full_sink = ShardedAccumulator::new(BitReportAccumulator::new(m), 4);
    SeededReportStream::new(&mech, batch, SEED)
        .with_chunk_size(CHUNK)
        .ingest_all(&full_sink)
        .unwrap();
    let want = full_sink.snapshot();

    let first_half = ShardedAccumulator::new(BitReportAccumulator::new(m), 2);
    let mut stream = SeededReportStream::new(&mech, batch, SEED).with_chunk_size(CHUNK);
    for _ in 0..8 {
        assert_eq!(stream.ingest_chunk(&first_half).unwrap(), CHUNK);
    }
    let checkpoint = first_half.snapshot().to_checkpoint_string();

    // "Restart": new process state, different shard count.
    let resumed_snapshot = AccumulatorSnapshot::from_checkpoint_str(&checkpoint).unwrap();
    let second_half = ShardedAccumulator::new(BitReportAccumulator::new(m), 7);
    second_half.restore(&resumed_snapshot).unwrap();
    let mut resumed = SeededReportStream::new(&mech, batch, SEED).with_chunk_size(CHUNK);
    resumed
        .seek_to_user(resumed_snapshot.num_users() as usize)
        .unwrap();
    resumed.ingest_all(&second_half).unwrap();

    assert_eq!(second_half.snapshot(), want);
}

#[test]
fn one_report_at_a_time_equals_push_to_explicit_shards() {
    // Round-robin vs caller-partitioned fan-out: same counts — exercised
    // for one mechanism per wire shape.
    let m = 8;
    let bits_mech = UnaryEncoding::symmetric(eps(1.0), m).unwrap();
    let value_mech = GeneralizedRandomizedResponse::new(eps(1.0), m).unwrap();
    let hashed_mech = OptimalLocalHashing::new(eps(1.0), m).unwrap();
    let set_mech = SubsetSelection::new(eps(1.0), m).unwrap();
    let mechanisms: [&dyn BatchMechanism; 4] = [&bits_mech, &value_mech, &hashed_mech, &set_mech];
    let inputs = items(1000, m);
    let batch = InputBatch::Items(&inputs);

    for mech in mechanisms {
        let round_robin = ShardedAccumulator::new(ShapedAccumulator::for_mechanism(mech), 3);
        SeededReportStream::new(mech, batch, SEED)
            .ingest_all(&round_robin)
            .unwrap();

        let partitioned = ShardedAccumulator::new(ShapedAccumulator::for_mechanism(mech), 3);
        let mut i = 0usize;
        let mut stream = SeededReportStream::new(mech, batch, SEED);
        loop {
            let got = stream
                .next_chunk_with(|report| {
                    let shard = (i * 7) % 3; // arbitrary deterministic partition
                    i += 1;
                    partitioned.push_to(shard, report)
                })
                .unwrap();
            if got == 0 {
                break;
            }
        }
        assert_eq!(
            round_robin.snapshot(),
            partitioned.snapshot(),
            "{}",
            mech.kind()
        );
    }
}
