//! Multi-tenant loopback ≡ batch conformance (the acceptance bar of
//! tenancy).
//!
//! One [`ReportServer`] hosts several fully independent `(mechanism, ε,
//! seed)` streams — tenants — selected by the v4 `Hello` handshake. This
//! suite proves the isolation contract end to end over real sockets:
//!
//! * Two tenants with *different* mechanisms and privacy budgets, pushed
//!   through one server concurrently, each answer estimates
//!   **bit-identical** to their own standalone batch
//!   [`SimulationPipeline`] run — sharing a process adds nothing and
//!   leaks nothing.
//! * A `Hello` naming a tenant whose mechanism config does not match is
//!   refused with the same typed reject a single-tenant server sends;
//!   a `Hello` naming a tenant the server does not host is refused by
//!   name.
//! * A protocol-v3 `Hello` (no tenant field on the wire at all) lands on
//!   the default tenant, byte-compatible with pre-tenancy clients.
//! * Backpressure is per tenant: with folding frozen, a hot tenant with
//!   a small ingest queue answers `Busy` while the default tenant keeps
//!   accepting — and after resuming, both converge to their exact batch
//!   answers through the retry loop.
//! * Checkpoints are per tenant: each tenant persists at its own
//!   namespaced path, and a restart restores every tenant's count
//!   independently, resuming to bit-identical estimates.
//!
//! Every case runs against **both** connection engines
//! ([`ConnectionEngine::Blocking`] and [`ConnectionEngine::Reactor`]),
//! the same bar `server_loopback.rs` sets for the single-tenant path.

use idldp_core::budget::Epsilon;
use idldp_core::grr::GeneralizedRandomizedResponse;
use idldp_core::identity::{RunIdentity, TenantId};
use idldp_core::mechanism::{BatchMechanism, InputBatch, Mechanism};
use idldp_core::olh::OptimalLocalHashing;
use idldp_core::report::ReportData;
use idldp_core::ue::UnaryEncoding;
use idldp_server::{
    ClientError, ConnectionEngine, Frame, PushOutcome, ReportClient, ReportServer, ServerConfig,
    ServerConfigBuilder, TenantConfig, LEGACY_PROTOCOL_VERSION,
};
use idldp_sim::stream::SeededReportStream;
use idldp_sim::SimulationPipeline;
use std::io::Write;
use std::net::TcpStream;
use std::sync::Arc;

const SEED: u64 = 20200707;
const CHUNK: usize = 256;

fn eps(v: f64) -> Epsilon {
    Epsilon::new(v).unwrap()
}

/// Both connection engines on unix; the readiness reactor needs a unix
/// poller backend, so non-unix hosts cover the blocking engine only.
fn engines() -> Vec<ConnectionEngine> {
    if cfg!(unix) {
        vec![ConnectionEngine::Blocking, ConnectionEngine::Reactor]
    } else {
        vec![ConnectionEngine::Blocking]
    }
}

fn items(n: usize, m: usize) -> Vec<u32> {
    (0..n).map(|i| ((i * i) % m) as u32).collect()
}

/// One tenant's whole experiment: a name, a mechanism, and its input
/// population. Kept together so the batch reference, the wire stream,
/// and the server-side tenant all come from the same triple.
struct Stream {
    tenant: TenantId,
    mechanism: Arc<dyn BatchMechanism>,
    inputs: Vec<u32>,
}

impl Stream {
    fn batch(&self) -> (u64, Vec<f64>) {
        let snapshot = SimulationPipeline::new()
            .with_chunk_size(CHUNK)
            .run_snapshot(
                self.mechanism.as_ref(),
                InputBatch::Items(&self.inputs),
                SEED,
            )
            .unwrap();
        let users = snapshot.num_users();
        let estimates = self
            .mechanism
            .frequency_oracle(users)
            .estimate_from(&snapshot)
            .unwrap();
        (users, estimates)
    }

    fn wire_chunks(&self) -> Vec<Vec<ReportData>> {
        let mut stream = SeededReportStream::new(
            self.mechanism.as_ref(),
            InputBatch::Items(&self.inputs),
            SEED,
        )
        .with_chunk_size(CHUNK);
        let mut chunks = Vec::new();
        loop {
            let mut chunk = Vec::new();
            let got = stream
                .next_chunk_with(|report| {
                    chunk.push(report.to_data());
                    Ok(())
                })
                .unwrap();
            if got == 0 {
                return chunks;
            }
            chunks.push(chunk);
        }
    }

    fn connect(&self, server: &ReportServer) -> (ReportClient, u64) {
        let tenant = (!self.tenant.is_default()).then_some(&self.tenant);
        ReportClient::connect_tenant(server.local_addr(), self.mechanism.as_ref(), tenant).unwrap()
    }
}

/// The default stream plus two named tenants, all with different
/// mechanisms, domain widths, and privacy budgets — nothing any two
/// tenants could accidentally share and still answer correctly.
fn three_streams() -> Vec<Stream> {
    vec![
        Stream {
            tenant: TenantId::default_tenant(),
            mechanism: Arc::new(UnaryEncoding::optimized(eps(1.0), 20).unwrap()),
            inputs: items(2500, 20),
        },
        Stream {
            tenant: TenantId::new("alpha").unwrap(),
            mechanism: Arc::new(GeneralizedRandomizedResponse::new(eps(1.2), 24).unwrap()),
            inputs: items(3000, 24),
        },
        Stream {
            tenant: TenantId::new("beta").unwrap(),
            mechanism: Arc::new(OptimalLocalHashing::new(eps(2.0), 16).unwrap()),
            inputs: items(2000, 16),
        },
    ]
}

/// A builder preloaded with `streams[0]` as the implied default tenant's
/// config and every later stream as a named [`TenantConfig`].
fn tenanted_builder(streams: &[Stream], engine: ConnectionEngine) -> ServerConfigBuilder {
    let mut builder = ServerConfig::builder().engine(engine);
    for stream in &streams[1..] {
        builder = builder.tenant(TenantConfig::new(
            stream.tenant.clone(),
            Arc::clone(&stream.mechanism) as Arc<dyn Mechanism>,
        ));
    }
    builder
}

fn assert_bit_identical(name: &str, got: &[f64], want: &[f64]) {
    assert_eq!(got.len(), want.len(), "{name}: estimate vector length");
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        assert_eq!(
            g.to_bits(),
            w.to_bits(),
            "{name}: estimate {i} differs over TCP ({g} vs {w})"
        );
    }
}

/// The tentpole contract: tenants pushed concurrently through one server
/// each answer exactly what a standalone batch run of their own
/// `(mechanism, inputs, seed)` answers. Chunks are interleaved
/// round-robin across the tenants' clients, so the per-tenant queues and
/// accumulators are exercised under real interleaving, not one tenant at
/// a time.
#[test]
fn tenants_are_each_bit_identical_to_their_own_batch_run() {
    let streams = three_streams();
    let reference: Vec<(u64, Vec<f64>)> = streams.iter().map(Stream::batch).collect();

    for engine in engines() {
        let server = ReportServer::start(
            Arc::clone(&streams[0].mechanism) as Arc<dyn Mechanism>,
            tenanted_builder(&streams, engine).build().unwrap(),
        )
        .unwrap();
        assert_eq!(
            server.tenant_ids(),
            streams.iter().map(|s| s.tenant.clone()).collect::<Vec<_>>(),
            "{engine}: default tenant first, then registration order"
        );

        let mut clients: Vec<ReportClient> = streams
            .iter()
            .map(|stream| {
                let (client, resumed) = stream.connect(&server);
                assert_eq!(resumed, 0, "{engine}/{}: fresh server", stream.tenant);
                client
            })
            .collect();

        // Interleave: one chunk per tenant per round until all are drained.
        let mut chunks: Vec<Vec<Vec<ReportData>>> =
            streams.iter().map(Stream::wire_chunks).collect();
        let rounds = chunks.iter().map(Vec::len).max().unwrap();
        for round in 0..rounds {
            for (client, chunks) in clients.iter_mut().zip(&chunks) {
                if let Some(chunk) = chunks.get(round) {
                    client.push_all(chunk).unwrap();
                }
            }
        }
        chunks.clear();

        for ((stream, client), (want_users, want)) in
            streams.iter().zip(&mut clients).zip(&reference)
        {
            let name = format!("{engine}/{}", stream.tenant);
            let (users, estimates) = client.query_estimates().unwrap();
            assert_eq!(users, *want_users, "{name}: every report folded");
            assert_bit_identical(&name, &estimates, want);
            assert_eq!(
                server.num_users_for(&stream.tenant).unwrap(),
                *want_users,
                "{name}: server-side count agrees"
            );
        }
        assert_eq!(server.fold_failures(), 0, "{engine}");
        server.shutdown();
    }
}

/// Tenant selection is checked before config, and config is checked
/// against the *named* tenant: a client speaking tenant `alpha`'s
/// protocol but announcing the default tenant's mechanism is refused,
/// and an unknown tenant is refused by name with the hosted list.
#[test]
fn wrong_and_unknown_tenants_draw_typed_rejects() {
    let streams = three_streams();
    for engine in engines() {
        let server = ReportServer::start(
            Arc::clone(&streams[0].mechanism) as Arc<dyn Mechanism>,
            tenanted_builder(&streams, engine).build().unwrap(),
        )
        .unwrap();

        // Right tenant name, wrong mechanism config (the default
        // tenant's OUE against tenant alpha's GRR).
        let alpha = TenantId::new("alpha").unwrap();
        let err = ReportClient::connect_tenant(
            server.local_addr(),
            streams[0].mechanism.as_ref(),
            Some(&alpha),
        )
        .map(|_| ())
        .expect_err("mismatched config against a named tenant must be rejected");
        match err {
            ClientError::Rejected { message, .. } => assert!(
                message.contains("mechanism config mismatch"),
                "{engine}: unhelpful reject `{message}`"
            ),
            other => panic!("{engine}: expected a typed reject, got {other:?}"),
        }

        // A tenant this server does not host, with an otherwise valid
        // config: refused by name, and the reject lists what is hosted.
        let ghost = TenantId::new("ghost").unwrap();
        let err = ReportClient::connect_tenant(
            server.local_addr(),
            streams[1].mechanism.as_ref(),
            Some(&ghost),
        )
        .map(|_| ())
        .expect_err("an unhosted tenant must be rejected");
        match err {
            ClientError::Rejected { message, .. } => assert!(
                message.contains("unknown tenant `ghost`") && message.contains("alpha"),
                "{engine}: unhelpful reject `{message}`"
            ),
            other => panic!("{engine}: expected a typed reject, got {other:?}"),
        }

        // The rejects left the tenants untouched and the server serving:
        // a correct handshake still lands.
        let (_client, resumed) = streams[1].connect(&server);
        assert_eq!(resumed, 0, "{engine}");
        server.shutdown();
    }
}

/// The compatibility half of the handshake redesign: a protocol-v3
/// `Hello` — whose wire bytes carry no tenant field at all — lands on
/// the default tenant of a multi-tenant server, exactly as it did
/// against a pre-tenancy server.
#[test]
fn a_v3_hello_lands_on_the_default_tenant() {
    let streams = three_streams();
    for engine in engines() {
        let server = ReportServer::start(
            Arc::clone(&streams[0].mechanism) as Arc<dyn Mechanism>,
            tenanted_builder(&streams, engine).build().unwrap(),
        )
        .unwrap();

        let mechanism = streams[0].mechanism.as_ref();
        // `Frame::Hello` omits the tenant from the encoding whenever the
        // version predates tenancy, so this writes byte-exact v3 frames.
        let hello = Frame::Hello {
            version: LEGACY_PROTOCOL_VERSION,
            kind: mechanism.kind().to_string(),
            shape: mechanism.report_shape(),
            report_len: mechanism.report_len() as u64,
            ldp_eps_bits: mechanism.ldp_epsilon().to_bits(),
            tenant: String::new(),
        };
        let mut socket = TcpStream::connect(server.local_addr()).unwrap();
        socket.write_all(&hello.encode()).unwrap();
        let run_line = match Frame::read_from(&mut socket).unwrap() {
            Some(Frame::HelloAck { users, run_line }) => {
                assert_eq!(users, 0, "{engine}");
                run_line
            }
            other => panic!("{engine}: v3 handshake drew {other:?}"),
        };
        let identity: RunIdentity = run_line.parse().unwrap();
        assert_eq!(
            identity.kind(),
            mechanism.kind(),
            "{engine}: the ack is the default tenant's identity"
        );

        // Reports over the v3 connection fold into the default tenant
        // and only the default tenant.
        let chunk = &streams[0].wire_chunks()[0];
        socket
            .write_all(&Frame::Reports(chunk.clone()).encode())
            .unwrap();
        match Frame::read_from(&mut socket).unwrap() {
            Some(Frame::Ingested { accepted }) => assert_eq!(accepted, chunk.len() as u64),
            other => panic!("{engine}: v3 reports drew {other:?}"),
        }
        socket.write_all(&Frame::Query.encode()).unwrap();
        match Frame::read_from(&mut socket).unwrap() {
            Some(Frame::Estimates { users, .. }) => {
                assert_eq!(users, chunk.len() as u64, "{engine}")
            }
            other => panic!("{engine}: v3 query drew {other:?}"),
        }
        for stream in &streams[1..] {
            assert_eq!(
                server.num_users_for(&stream.tenant).unwrap(),
                0,
                "{engine}/{}: v3 traffic must not leak into named tenants",
                stream.tenant
            );
        }
        server.shutdown();
    }
}

/// Backpressure isolation: each tenant has its own bounded ingest queue,
/// so a hot tenant filling a small queue draws `Busy` while the default
/// tenant keeps accepting — and once folding resumes, both converge to
/// their exact batch answers through the client retry loop.
#[test]
fn a_busy_tenant_does_not_starve_another() {
    let streams = three_streams();
    let capacity = 64;
    let (default_want_users, default_want) = streams[0].batch();
    let (alpha_want_users, alpha_want) = streams[1].batch();

    for engine in engines() {
        let mut builder = ServerConfig::builder().engine(engine);
        builder = builder.tenant(
            TenantConfig::new(
                streams[1].tenant.clone(),
                Arc::clone(&streams[1].mechanism) as Arc<dyn Mechanism>,
            )
            .with_queue_capacity(capacity),
        );
        let server = ReportServer::start(
            Arc::clone(&streams[0].mechanism) as Arc<dyn Mechanism>,
            builder.build().unwrap(),
        )
        .unwrap();

        let (mut default_client, _) = streams[0].connect(&server);
        let (mut alpha_client, _) = streams[1].connect(&server);
        alpha_client = alpha_client.with_retry_backoff(std::time::Duration::from_millis(1));

        // Freeze folding on every tenant: accepted reports pile up in the
        // per-tenant bounded queues.
        server.pause_ingest();
        let alpha_chunks = streams[1].wire_chunks();
        let oversized: Vec<ReportData> = alpha_chunks
            .iter()
            .flatten()
            .take(capacity + 40)
            .cloned()
            .collect();
        match alpha_client.push(&oversized).unwrap() {
            PushOutcome::Busy { accepted } => assert_eq!(
                accepted, capacity as u64,
                "{engine}: alpha accepts exactly its own queue capacity"
            ),
            PushOutcome::Ingested => panic!("{engine}: alpha's full queue must answer Busy"),
        }

        // Alpha is wedged; the default tenant's (default-capacity) queue
        // still accepts the same burst outright.
        let default_chunks = streams[0].wire_chunks();
        let burst: Vec<ReportData> = default_chunks
            .iter()
            .flatten()
            .take(capacity + 40)
            .cloned()
            .collect();
        match default_client.push(&burst).unwrap() {
            PushOutcome::Ingested => {}
            PushOutcome::Busy { .. } => {
                panic!("{engine}: alpha's backpressure leaked into the default tenant")
            }
        }

        // Resume folding; both tenants finish their populations and land
        // exactly on their own batch answers.
        server.resume_ingest();
        let alpha_all: Vec<ReportData> = alpha_chunks.into_iter().flatten().collect();
        alpha_client.push_all(&alpha_all[capacity..]).unwrap();
        let default_all: Vec<ReportData> = default_chunks.into_iter().flatten().collect();
        default_client
            .push_all(&default_all[burst.len()..])
            .unwrap();

        let (users, estimates) = alpha_client.query_estimates().unwrap();
        assert_eq!(users, alpha_want_users, "{engine}: alpha dropped nothing");
        assert_bit_identical(&format!("busy-alpha/{engine}"), &estimates, &alpha_want);
        let (users, estimates) = default_client.query_estimates().unwrap();
        assert_eq!(
            users, default_want_users,
            "{engine}: default dropped nothing"
        );
        assert_bit_identical(&format!("busy-default/{engine}"), &estimates, &default_want);
        assert_eq!(server.fold_failures(), 0, "{engine}");
        server.shutdown();
    }
}

/// Checkpoints are tenant-namespaced and restore independently: each
/// tenant checkpoints half its stream at its own path (the default
/// tenant at the configured path, every other at the `.tenant-<name>`
/// sibling), a restarted server restores every tenant's own count, and
/// resumed pushes land bit-identical to the uninterrupted batch runs.
#[test]
fn per_tenant_checkpoints_restore_independently() {
    let streams = three_streams();
    let reference: Vec<(u64, Vec<f64>)> = streams.iter().map(Stream::batch).collect();

    for engine in engines() {
        let dir = std::env::temp_dir().join(format!(
            "idldp-tenant-loopback-{}-{engine}",
            std::process::id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let ckpt = dir.join("serve.ckpt");
        let config = || {
            tenanted_builder(&streams, engine)
                .checkpoint_path(ckpt.clone())
                .build()
                .unwrap()
        };

        // First life: half of every tenant's stream, then one checkpoint
        // frame per tenant.
        let server = ReportServer::start(
            Arc::clone(&streams[0].mechanism) as Arc<dyn Mechanism>,
            config(),
        )
        .unwrap();
        let mut halves = Vec::new();
        for stream in &streams {
            let (mut client, resumed) = stream.connect(&server);
            assert_eq!(resumed, 0, "{engine}/{}", stream.tenant);
            let chunks = stream.wire_chunks();
            let half = chunks.len() / 2;
            for chunk in &chunks[..half] {
                client.push_all(chunk).unwrap();
            }
            let covered = client.checkpoint().unwrap();
            assert_eq!(covered, (half * CHUNK) as u64, "{engine}/{}", stream.tenant);
            halves.push((chunks, half));
        }
        server.shutdown();

        // Every tenant persisted to its own file: the default tenant at
        // the exact configured path, the named tenants at sibling paths.
        assert!(ckpt.exists(), "{engine}: default tenant checkpoint");
        for stream in &streams[1..] {
            let sibling = dir.join(format!("serve.ckpt.tenant-{}", stream.tenant));
            assert!(
                sibling.exists(),
                "{engine}/{}: tenant-namespaced checkpoint at {sibling:?}",
                stream.tenant
            );
        }

        // Second life: every tenant resumes from its own count and its
        // tail push converges to the uninterrupted batch answer.
        let server = ReportServer::start(
            Arc::clone(&streams[0].mechanism) as Arc<dyn Mechanism>,
            config(),
        )
        .unwrap();
        for (stream, ((chunks, half), (want_users, want))) in
            streams.iter().zip(halves.iter().zip(&reference))
        {
            let name = format!("{engine}/{}", stream.tenant);
            let (mut client, resumed) = stream.connect(&server);
            assert_eq!(
                resumed,
                (half * CHUNK) as u64,
                "{name}: HelloAck reports this tenant's restored users"
            );
            for chunk in &chunks[*half..] {
                client.push_all(chunk).unwrap();
            }
            let (users, estimates) = client.query_estimates().unwrap();
            assert_eq!(users, *want_users, "{name}");
            assert_bit_identical(&format!("checkpoint-restart/{name}"), &estimates, want);
        }
        server.shutdown();
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
