//! Checkpoint-store ≡ batch conformance (the acceptance bar of the
//! pluggable checkpoint backends).
//!
//! Drives the full `idldp ingest`-style kill/resume cycle in process:
//! stream part of a seeded population into a [`ShardedAccumulator`], save
//! through a [`SnapshotStore`], drop everything (the "kill"), reopen a
//! fresh store, restore into a fresh sink, seek the stream past the
//! restored users, and stream the rest — then assert the final counts and
//! oracle estimates are **bit-identical** to a batch
//! [`SimulationPipeline`] run that never checkpointed at all. Every
//! backend (`file`, `sharded`, `delta`) must pass, across shard counts,
//! including restores into a *different* shard count than the one that
//! saved (the sharded backend persists per-shard files; the merge law
//! makes any J-way split restorable into any N shards).
//!
//! The delta backend additionally runs a many-cycle torture loop: a
//! checkpoint after every chunk with an aggressive compaction schedule,
//! killed and resumed repeatedly, so the log crosses several
//! base/delta/compaction boundaries before the final identity check.

use idldp_core::budget::Epsilon;
use idldp_core::mechanism::{BatchMechanism, InputBatch, Mechanism};
use idldp_core::snapshot::store::DeltaStore;
use idldp_core::snapshot::{open_store, SnapshotStore, StoreKind};
use idldp_core::ue::UnaryEncoding;
use idldp_sim::stream::{SeededReportStream, ShapedAccumulator, ShardedAccumulator};
use idldp_sim::SimulationPipeline;
use std::path::PathBuf;

const SEED: u64 = 20200909;
const CHUNK: usize = 128;
const RUN_LINE: &str = "run idldp-ingest mechanism=oue dataset=test n=2048 m=16 \
                        eps=1 seed=20200909 chunk=128";

fn eps(v: f64) -> Epsilon {
    Epsilon::new(v).unwrap()
}

fn mechanism() -> UnaryEncoding {
    UnaryEncoding::optimized(eps(1.0), 16).unwrap()
}

fn items(n: usize, m: usize) -> Vec<u32> {
    (0..n).map(|i| ((i * i) % m) as u32).collect()
}

fn test_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "idldp-checkpoint-conformance-{}-{tag}",
        std::process::id()
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn fresh_sink(
    mechanism: &dyn BatchMechanism,
    shards: usize,
) -> ShardedAccumulator<ShapedAccumulator> {
    ShardedAccumulator::new(ShapedAccumulator::for_mechanism(mechanism), shards)
}

/// Streams users `[from, to)` of the seeded population into the sink.
/// `from` and `to` must be chunk-aligned (or `to` the stream's end), which
/// every caller here guarantees by construction.
fn stream_range(
    mechanism: &dyn BatchMechanism,
    inputs: InputBatch<'_>,
    sink: &ShardedAccumulator<ShapedAccumulator>,
    from: usize,
    to: usize,
) {
    let mut stream = SeededReportStream::new(mechanism, inputs, SEED).with_chunk_size(CHUNK);
    stream.seek_to_user(from).unwrap();
    let mut at = from;
    while at < to {
        let got = stream.ingest_chunk(sink).unwrap();
        assert!(got > 0, "stream exhausted before user {to}");
        at += got;
    }
    assert_eq!(at, to, "range not chunk-aligned");
}

#[test]
fn kill_and_resume_through_every_store_is_bit_identical_to_batch() {
    let mechanism = mechanism();
    let inputs = items(2048, 16);
    let inputs = InputBatch::Items(&inputs);
    let n = inputs.len();

    let batch = SimulationPipeline::new()
        .with_chunk_size(CHUNK)
        .run_snapshot(&mechanism, inputs, SEED)
        .unwrap();
    let oracle = mechanism.frequency_oracle(batch.num_users());
    let want = oracle.estimate_from(&batch).unwrap();

    // Save under `save_shards` shards, restore into `load_shards`: the
    // persisted form must not depend on the sharding that produced it.
    for store_kind in StoreKind::ALL {
        for (save_shards, load_shards) in [(1, 1), (4, 4), (4, 7), (7, 3)] {
            let label = format!("{store_kind}/s{save_shards}->s{load_shards}");
            let dir = test_dir(&format!("{store_kind}-{save_shards}-{load_shards}"));
            let path = dir.join("ingest.ckpt");

            // First "process": half the stream, one checkpoint, killed.
            let sink = fresh_sink(&mechanism, save_shards);
            stream_range(&mechanism, inputs, &sink, 0, n / 2);
            let mut store = open_store(store_kind, &path);
            assert!(store.load().unwrap().is_none(), "{label}: starts empty");
            store.save(&sink.snapshot_shards(), RUN_LINE).unwrap();
            drop(store);
            drop(sink);

            // Second "process": restore, stream the rest, final identity.
            let mut store = open_store(store_kind, &path);
            let restored = store
                .load()
                .unwrap()
                .unwrap_or_else(|| panic!("{label}: checkpoint must restore"));
            assert_eq!(restored.run_line(), Some(RUN_LINE), "{label}: run stamp");
            assert_eq!(restored.num_users(), (n / 2) as u64, "{label}");
            let sink = fresh_sink(&mechanism, load_shards);
            sink.restore_shards(restored.shards()).unwrap();
            stream_range(&mechanism, inputs, &sink, n / 2, n);

            let streamed = sink.snapshot();
            assert_eq!(
                streamed, batch,
                "{label}: counts after kill/resume diverge from batch"
            );
            let got = oracle.estimate_from(&streamed).unwrap();
            for (i, (g, w)) in got.iter().zip(&want).enumerate() {
                assert_eq!(
                    g.to_bits(),
                    w.to_bits(),
                    "{label}: estimate {i} differs after kill/resume"
                );
            }
            std::fs::remove_dir_all(&dir).unwrap();
        }
    }
}

#[test]
fn delta_log_survives_many_kill_resume_cycles_across_compactions() {
    let mechanism = mechanism();
    let inputs = items(2048, 16);
    let inputs = InputBatch::Items(&inputs);
    let n = inputs.len();

    let batch = SimulationPipeline::new()
        .with_chunk_size(CHUNK)
        .run_snapshot(&mechanism, inputs, SEED)
        .unwrap();

    let dir = test_dir("delta-torture");
    let path = dir.join("ingest.ckpt");

    // An aggressive schedule (compact every 3 deltas) so the torture loop
    // crosses several base → delta → compaction boundaries.
    let open = || -> Box<dyn SnapshotStore> { Box::new(DeltaStore::with_compaction(&path, 3, 4)) };

    // 8 "process lifetimes", each restoring whatever the previous one
    // saved, streaming a slice, and checkpointing after every chunk.
    let lifetimes = 8;
    let per_lifetime = n / lifetimes;
    for lifetime in 0..lifetimes {
        let mut store = open();
        let restored = store.load().unwrap();
        let from = lifetime * per_lifetime;
        match &restored {
            None => assert_eq!(lifetime, 0, "only the first lifetime starts empty"),
            Some(r) => assert_eq!(r.num_users(), from as u64, "lifetime {lifetime}"),
        }
        let sink = fresh_sink(&mechanism, 4);
        if let Some(restored) = restored {
            assert_eq!(restored.run_line(), Some(RUN_LINE));
            sink.restore_shards(restored.shards()).unwrap();
        }
        let to = if lifetime == lifetimes - 1 {
            n
        } else {
            from + per_lifetime
        };
        // Checkpoint after every chunk, like `--emit-every` one chunk.
        let mut at = from;
        while at < to {
            let next = (at + CHUNK).min(to);
            stream_range(&mechanism, inputs, &sink, at, next);
            store.save(&sink.snapshot_shards(), RUN_LINE).unwrap();
            at = next;
        }
    }

    let mut store = open();
    let survived = store.load().unwrap().expect("final log restores");
    assert_eq!(survived.merged(), batch, "delta log diverged from batch");
    std::fs::remove_dir_all(&dir).unwrap();
}
