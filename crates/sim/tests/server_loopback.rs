//! TCP loopback ≡ batch conformance (the acceptance bar of the ingestion
//! service).
//!
//! Drives the full networked path — mechanism → [`ReportClient`] → frame
//! codec → TCP → [`ReportServer`] → bounded ingest queue →
//! `ShardedAccumulator` → snapshot → oracle — and asserts that the
//! estimates received *over the socket* are **bit-identical** to a batch
//! [`SimulationPipeline`] run of the same `(mechanism, inputs, seed)`, for
//! all eight mechanisms in their native wire shapes. On top of the
//! streaming ≡ batch contract (`streaming_conformance.rs`) this adds the
//! transport: framing, the worker pool, the queue, and the
//! query-after-ingest linearization must all preserve every report
//! exactly.
//!
//! Also covered: the backpressure contract (a full ingest queue answers
//! `Busy`, and a retrying client still converges to the exact batch
//! estimates — accepted reports are never dropped), handshake rejection of
//! mismatched mechanism configs, typed rejection of invalid reports, the
//! top-k query against batch `identify_top_k`, and checkpoint → restart →
//! resume bit-identity over the socket.
//!
//! Every case runs against **both** connection engines
//! ([`ConnectionEngine::Blocking`] and [`ConnectionEngine::Reactor`]) from
//! the same test body: the engines share the protocol logic by
//! construction, and this suite is what keeps the transport halves from
//! drifting apart — the reply bytes, and therefore the estimates, must be
//! bit-identical regardless of which engine served them.

use idldp_core::budget::Epsilon;
use idldp_core::grr::GeneralizedRandomizedResponse;
use idldp_core::idue::Idue;
use idldp_core::idue_ps::IduePs;
use idldp_core::levels::LevelPartition;
use idldp_core::matrix_mech::PerturbationMatrix;
use idldp_core::mechanism::{BatchMechanism, InputBatch, Mechanism};
use idldp_core::olh::OptimalLocalHashing;
use idldp_core::params::LevelParams;
use idldp_core::ps::PsMechanism;
use idldp_core::report::ReportData;
use idldp_core::snapshot::StoreKind;
use idldp_core::subset::SubsetSelection;
use idldp_core::ue::UnaryEncoding;
use idldp_server::{
    ClientError, ConnectionEngine, PushOutcome, ReportClient, ReportServer, ServerConfig,
};
use idldp_sim::heavy_hitters::identify_top_k;
use idldp_sim::stream::SeededReportStream;
use idldp_sim::SimulationPipeline;
use std::sync::Arc;

const SEED: u64 = 20200707;
const CHUNK: usize = 256;

fn eps(v: f64) -> Epsilon {
    Epsilon::new(v).unwrap()
}

/// Both connection engines on unix; the readiness reactor needs a unix
/// poller backend, so non-unix hosts cover the blocking engine only.
fn engines() -> Vec<ConnectionEngine> {
    if cfg!(unix) {
        vec![ConnectionEngine::Blocking, ConnectionEngine::Reactor]
    } else {
        vec![ConnectionEngine::Blocking]
    }
}

/// A [`ServerConfig`] pinned to one engine (defaults otherwise).
fn engine_config(engine: ConnectionEngine) -> ServerConfig {
    ServerConfig::builder().engine(engine).build().unwrap()
}

fn items(n: usize, m: usize) -> Vec<u32> {
    (0..n).map(|i| ((i * i) % m) as u32).collect()
}

fn sets(n: usize, m: usize) -> Vec<Vec<u32>> {
    (0..n)
        .map(|i| {
            let a = (i % m) as u32;
            let b = ((i / 2 + 1) % m) as u32;
            if a == b {
                vec![a]
            } else {
                vec![a, b]
            }
        })
        .collect()
}

/// Owned inputs, borrowable as an [`InputBatch`].
enum OwnedInputs {
    Items(Vec<u32>),
    Sets(Vec<Vec<u32>>),
}

impl OwnedInputs {
    fn as_batch(&self) -> InputBatch<'_> {
        match self {
            OwnedInputs::Items(items) => InputBatch::Items(items),
            OwnedInputs::Sets(sets) => InputBatch::Sets(sets),
        }
    }
}

/// All eight mechanisms with loopback-sized populations, covering every
/// wire shape (bits, value, hashed pair, item set).
fn lineup() -> Vec<(&'static str, Arc<dyn BatchMechanism>, OwnedInputs)> {
    let idue = {
        let levels =
            LevelPartition::new(vec![0, 0, 1, 1, 1, 1, 1, 1, 1, 1], vec![eps(1.0), eps(3.0)])
                .unwrap();
        let params = LevelParams::new(vec![0.59, 0.67], vec![0.33, 0.28]).unwrap();
        Idue::new(levels, &params).unwrap()
    };
    vec![
        (
            "grr",
            Arc::new(GeneralizedRandomizedResponse::new(eps(1.2), 24).unwrap())
                as Arc<dyn BatchMechanism>,
            OwnedInputs::Items(items(3000, 24)),
        ),
        (
            "rappor",
            Arc::new(UnaryEncoding::symmetric(eps(1.0), 20).unwrap()),
            OwnedInputs::Items(items(2500, 20)),
        ),
        (
            "oue",
            Arc::new(UnaryEncoding::optimized(eps(1.0), 20).unwrap()),
            OwnedInputs::Items(items(2500, 20)),
        ),
        ("idue", Arc::new(idue), OwnedInputs::Items(items(2500, 10))),
        (
            "ps",
            Arc::new(PsMechanism::new(12, 3).unwrap()),
            OwnedInputs::Sets(sets(2000, 12)),
        ),
        (
            "idue-ps",
            Arc::new(IduePs::oue_ps(12, eps(2.0), 3).unwrap()),
            OwnedInputs::Sets(sets(2000, 12)),
        ),
        (
            "matrix",
            Arc::new(PerturbationMatrix::grr(eps(1.5), 10).unwrap()),
            OwnedInputs::Items(items(2000, 10)),
        ),
        (
            "olh",
            Arc::new(OptimalLocalHashing::new(eps(1.2), 24).unwrap()),
            OwnedInputs::Items(items(3000, 24)),
        ),
        (
            "ss",
            Arc::new(SubsetSelection::new(eps(1.0), 20).unwrap()),
            OwnedInputs::Items(items(2500, 20)),
        ),
    ]
}

/// The reference answer: batch pipeline counts + oracle estimates.
fn batch_estimates(mechanism: &dyn BatchMechanism, inputs: InputBatch<'_>) -> (u64, Vec<f64>) {
    let snapshot = SimulationPipeline::new()
        .with_chunk_size(CHUNK)
        .run_snapshot(mechanism, inputs, SEED)
        .unwrap();
    let users = snapshot.num_users();
    let estimates = mechanism
        .frequency_oracle(users)
        .estimate_from(&snapshot)
        .unwrap();
    (users, estimates)
}

/// Streams the seeded population into owned wire reports, chunk by chunk.
fn wire_chunks(mechanism: &dyn Mechanism, inputs: InputBatch<'_>) -> Vec<Vec<ReportData>> {
    let mut stream = SeededReportStream::new(mechanism, inputs, SEED).with_chunk_size(CHUNK);
    let mut chunks = Vec::new();
    loop {
        let mut chunk = Vec::new();
        let got = stream
            .next_chunk_with(|report| {
                chunk.push(report.to_data());
                Ok(())
            })
            .unwrap();
        if got == 0 {
            return chunks;
        }
        chunks.push(chunk);
    }
}

fn assert_bit_identical(name: &str, got: &[f64], want: &[f64]) {
    assert_eq!(got.len(), want.len(), "{name}: estimate vector length");
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        assert_eq!(
            g.to_bits(),
            w.to_bits(),
            "{name}: estimate {i} differs over TCP ({g} vs {w})"
        );
    }
}

#[test]
fn loopback_estimates_are_bit_identical_to_batch_for_all_eight_mechanisms() {
    for (mech_name, mechanism, inputs) in lineup() {
        let (want_users, want) = batch_estimates(mechanism.as_ref(), inputs.as_batch());

        for engine in engines() {
            let name = format!("{mech_name}/{engine}");
            let server = ReportServer::start(
                mechanism.clone() as Arc<dyn Mechanism>,
                engine_config(engine),
            )
            .unwrap();
            let (mut client, resumed) =
                ReportClient::connect(server.local_addr(), mechanism.as_ref()).unwrap();
            assert_eq!(resumed, 0, "{name}: fresh server starts empty");

            for chunk in wire_chunks(mechanism.as_ref(), inputs.as_batch()) {
                client.push_all(&chunk).unwrap();
            }

            let (users, estimates) = client.query_estimates().unwrap();
            assert_eq!(users, want_users, "{name}: user count over TCP");
            assert_bit_identical(&name, &estimates, &want);

            // The top-k query ranks exactly like batch identification.
            let k = 5;
            let (_, candidates) = client.query_top_k(k).unwrap();
            let want_top: Vec<u64> = identify_top_k(&want, k).iter().map(|&i| i as u64).collect();
            let got_top: Vec<u64> = candidates.iter().map(|&(item, _)| item).collect();
            assert_eq!(got_top, want_top, "{name}: top-{k} over TCP");
            for &(item, estimate) in &candidates {
                assert_eq!(
                    estimate.to_bits(),
                    want[item as usize].to_bits(),
                    "{name}: candidate estimate bits"
                );
            }

            assert_eq!(server.fold_failures(), 0, "{name}: no post-accept failures");
            server.shutdown();
        }
    }
}

#[test]
fn full_ingest_queue_yields_busy_and_a_retrying_client_still_converges() {
    let mechanism: Arc<dyn BatchMechanism> =
        Arc::new(GeneralizedRandomizedResponse::new(eps(1.2), 16).unwrap());
    let inputs = OwnedInputs::Items(items(2000, 16));
    let (want_users, want) = batch_estimates(mechanism.as_ref(), inputs.as_batch());

    for engine in engines() {
        let capacity = 64;
        let server = ReportServer::start(
            mechanism.clone() as Arc<dyn Mechanism>,
            ServerConfig::builder()
                .engine(engine)
                .queue_capacity(capacity)
                .build()
                .unwrap(),
        )
        .unwrap();
        let (mut client, _) =
            ReportClient::connect(server.local_addr(), mechanism.as_ref()).unwrap();
        client = client.with_retry_backoff(std::time::Duration::from_millis(1));

        // Freeze the fold side: accepted reports pile up in the bounded queue.
        server.pause_ingest();
        let chunks = wire_chunks(mechanism.as_ref(), inputs.as_batch());
        let oversized: Vec<ReportData> = chunks
            .iter()
            .flatten()
            .take(capacity + 40)
            .cloned()
            .collect();
        match client.push(&oversized).unwrap() {
            PushOutcome::Busy { accepted } => {
                assert_eq!(
                    accepted, capacity as u64,
                    "{engine}: exactly the queue capacity is accepted before Busy"
                );
            }
            PushOutcome::Ingested => panic!("{engine}: a full queue must answer Busy"),
        }
        // Still paused: nothing further fits, but nothing breaks either.
        match client.push(&oversized[capacity..]).unwrap() {
            PushOutcome::Busy { accepted } => assert_eq!(accepted, 0),
            PushOutcome::Ingested => panic!("{engine}: queue is still full"),
        }

        // Resume folding and push the whole population through the retry loop,
        // skipping the `capacity` reports the server already accepted.
        server.resume_ingest();
        let all: Vec<ReportData> = chunks.into_iter().flatten().collect();
        client.push_all(&all[capacity..]).unwrap();

        let (users, estimates) = client.query_estimates().unwrap();
        assert_eq!(
            users, want_users,
            "{engine}: no accepted report was dropped"
        );
        assert_bit_identical(&format!("busy-retry/{engine}"), &estimates, &want);
        assert_eq!(server.fold_failures(), 0);
        server.shutdown();
    }
}

#[test]
fn handshake_rejects_mismatched_mechanism_config() {
    for engine in engines() {
        let server_mech: Arc<dyn BatchMechanism> =
            Arc::new(GeneralizedRandomizedResponse::new(eps(1.2), 16).unwrap());
        let server = ReportServer::start(
            server_mech.clone() as Arc<dyn Mechanism>,
            engine_config(engine),
        )
        .unwrap();

        // Wrong kind + shape (OLH sends hashed pairs, server runs GRR).
        let olh = OptimalLocalHashing::new(eps(1.2), 16).unwrap();
        let err = ReportClient::connect(server.local_addr(), &olh)
            .map(|_| ())
            .expect_err("mismatched hello must be rejected");
        match err {
            ClientError::Rejected { message, .. } => {
                assert!(
                    message.contains("mismatch"),
                    "{engine}: unexpected reason: {message}"
                )
            }
            other => panic!("{engine}: expected a typed rejection, got {other:?}"),
        }

        // Same kind, wrong width.
        let narrow = GeneralizedRandomizedResponse::new(eps(1.2), 8).unwrap();
        assert!(matches!(
            ReportClient::connect(server.local_addr(), &narrow),
            Err(ClientError::Rejected { .. })
        ));

        // Same kind, same shape, same width — different privacy budget. The
        // reports would fold cleanly but calibrate wrongly, so the handshake
        // must refuse (the Hello carries the exact ε bits).
        let other_eps = GeneralizedRandomizedResponse::new(eps(2.0), 16).unwrap();
        assert!(matches!(
            ReportClient::connect(server.local_addr(), &other_eps),
            Err(ClientError::Rejected { .. })
        ));

        // A matching client still gets through afterwards.
        let (mut client, _) =
            ReportClient::connect(server.local_addr(), server_mech.as_ref()).unwrap();
        client.push_all(&[ReportData::Value(3)]).unwrap();
        let (users, _) = client.query_estimates().unwrap();
        assert_eq!(users, 1);
        server.shutdown();
    }
}

#[test]
fn invalid_reports_are_rejected_without_corrupting_counts() {
    for engine in engines() {
        let mechanism: Arc<dyn BatchMechanism> =
            Arc::new(GeneralizedRandomizedResponse::new(eps(1.2), 8).unwrap());
        let server = ReportServer::start(
            mechanism.clone() as Arc<dyn Mechanism>,
            engine_config(engine),
        )
        .unwrap();
        let (mut client, _) =
            ReportClient::connect(server.local_addr(), mechanism.as_ref()).unwrap();

        // A hostile frame mixing valid and invalid reports is rejected
        // *atomically*: the whole frame validates before anything is queued,
        // so nothing folds — not even the valid prefix — and the reply names
        // the offending report.
        let batch = vec![
            ReportData::Value(1),
            ReportData::Value(2),
            ReportData::Value(8), // out of 0..8
            ReportData::Value(3),
        ];
        match client.push_all(&batch) {
            Err(ClientError::Rejected { accepted, message }) => {
                assert_eq!(accepted, 0, "{engine}: mixed frames reject atomically");
                assert!(message.contains("report 2"), "{engine}: {message}");
                assert!(message.contains("out of range"), "{engine}: {message}");
            }
            other => panic!("{engine}: invalid report must be rejected, got {other:?}"),
        }
        // A wrong-shape report is refused too (connection negotiated values).
        assert!(matches!(
            client.push_all(&[ReportData::Hashed { seed: 1, value: 0 }]),
            Err(ClientError::Rejected { .. })
        ));

        // The connection survives rejection, and only valid frames count.
        client.push_all(&[ReportData::Value(3)]).unwrap();
        let (users, estimates) = client.query_estimates().unwrap();
        assert_eq!(
            users, 1,
            "{engine}: only the clean frame after the rejections folds"
        );
        assert_eq!(estimates.len(), 8);
        assert_eq!(server.fold_failures(), 0);
        server.shutdown();
    }
}

/// One multi-report `Reports` frame draws exactly one `Ingested` reply
/// covering the whole batch (the frame is the unit of ingestion — one
/// queue slot run, one lock, one batched fold), and the handshake's pinned
/// item-set cardinality is enforced per report: a wrong-sized
/// subset-selection set rejects the frame atomically.
#[test]
fn one_frame_one_ack_and_pinned_item_set_cardinality() {
    for engine in engines() {
        // A 100-report frame is one push, one Ingested.
        let mechanism: Arc<dyn BatchMechanism> =
            Arc::new(GeneralizedRandomizedResponse::new(eps(1.2), 8).unwrap());
        let server = ReportServer::start(
            mechanism.clone() as Arc<dyn Mechanism>,
            engine_config(engine),
        )
        .unwrap();
        let (mut client, _) =
            ReportClient::connect(server.local_addr(), mechanism.as_ref()).unwrap();
        let batch: Vec<ReportData> = (0..100).map(|i| ReportData::Value(i % 8)).collect();
        assert_eq!(client.push(&batch).unwrap(), PushOutcome::Ingested);
        let (users, _) = client.query_estimates().unwrap();
        assert_eq!(
            users, 100,
            "{engine}: the whole frame folded behind the single ack"
        );
        assert_eq!(server.fold_failures(), 0);
        server.shutdown();

        // Subset selection pins k in the handshake shape; a set of any other
        // size is refused and poisons its whole frame.
        let ss = SubsetSelection::new(eps(1.0), 20).unwrap();
        let k = ss.subset_size();
        assert!((1..20).contains(&k));
        let mechanism: Arc<dyn BatchMechanism> = Arc::new(ss);
        let server = ReportServer::start(
            mechanism.clone() as Arc<dyn Mechanism>,
            engine_config(engine),
        )
        .unwrap();
        let (mut client, _) =
            ReportClient::connect(server.local_addr(), mechanism.as_ref()).unwrap();
        let valid = ReportData::ItemSet((0..k).collect());
        client.push_all(std::slice::from_ref(&valid)).unwrap();
        let wrong_size = ReportData::ItemSet((0..k + 1).collect());
        match client.push_all(&[valid, wrong_size]) {
            Err(ClientError::Rejected { accepted, message }) => {
                assert_eq!(accepted, 0, "{engine}: the valid lead report must not fold");
                assert!(message.contains("cardinality"), "{engine}: {message}");
            }
            other => panic!("{engine}: wrong-sized set must be rejected, got {other:?}"),
        }
        let (users, _) = client.query_estimates().unwrap();
        assert_eq!(users, 1, "{engine}: only the clean frame counts");
        assert_eq!(server.fold_failures(), 0);
        server.shutdown();
    }
}

#[test]
fn checkpoint_restart_resumes_bit_identically_over_tcp() {
    let mechanism: Arc<dyn BatchMechanism> =
        Arc::new(UnaryEncoding::optimized(eps(1.0), 16).unwrap());
    let inputs = OwnedInputs::Items(items(2048, 16));
    let (want_users, want) = batch_estimates(mechanism.as_ref(), inputs.as_batch());

    // Every checkpoint backend × every connection engine: write → kill →
    // restore → resume must be bit-identical regardless of whether the
    // checkpoint was one flat file, per-shard files behind a manifest, or
    // an appended delta log.
    for store in StoreKind::ALL {
        for engine in engines() {
            let label = format!("{store}/{engine}");
            let dir = std::env::temp_dir().join(format!(
                "idldp-server-loopback-{}-{store}-{engine}",
                std::process::id()
            ));
            std::fs::create_dir_all(&dir).unwrap();
            let ckpt = dir.join("serve.ckpt");
            let config = ServerConfig::builder()
                .engine(engine)
                .checkpoint_path(ckpt.clone())
                .checkpoint_store(store)
                .build()
                .unwrap();

            let chunks = wire_chunks(mechanism.as_ref(), inputs.as_batch());
            let half = chunks.len() / 2;

            // First server: ingest half the stream, checkpoint over the
            // socket — twice, so the delta backend's second record is a
            // true delta appended after a base, not just one base record.
            let server =
                ReportServer::start(mechanism.clone() as Arc<dyn Mechanism>, config.clone())
                    .unwrap();
            let (mut client, resumed) =
                ReportClient::connect(server.local_addr(), mechanism.as_ref()).unwrap();
            assert_eq!(resumed, 0);
            let quarter = half / 2;
            for chunk in &chunks[..quarter] {
                client.push_all(chunk).unwrap();
            }
            assert_eq!(client.checkpoint().unwrap(), (quarter * CHUNK) as u64);
            for chunk in &chunks[quarter..half] {
                client.push_all(chunk).unwrap();
            }
            let covered = client.checkpoint().unwrap();
            assert_eq!(covered, (half * CHUNK) as u64, "{label}");
            drop(client);
            server.shutdown();

            // "Restart": a new server restores the checkpoint; the client
            // learns the resume point from the HelloAck and pushes only the
            // tail.
            let server =
                ReportServer::start(mechanism.clone() as Arc<dyn Mechanism>, config).unwrap();
            let (mut client, resumed) =
                ReportClient::connect(server.local_addr(), mechanism.as_ref()).unwrap();
            assert_eq!(
                resumed, covered,
                "{label}: HelloAck reports the restored users"
            );
            for chunk in &chunks[half..] {
                client.push_all(chunk).unwrap();
            }
            let (users, estimates) = client.query_estimates().unwrap();
            assert_eq!(users, want_users, "{label}");
            assert_bit_identical(&format!("checkpoint-restart/{label}"), &estimates, &want);
            server.shutdown();

            // A differently configured server refuses the checkpoint
            // outright — whether the mechanism kind differs...
            let other: Arc<dyn BatchMechanism> =
                Arc::new(GeneralizedRandomizedResponse::new(eps(1.2), 16).unwrap());
            let again = ServerConfig::builder()
                .engine(engine)
                .checkpoint_path(ckpt.clone())
                .checkpoint_store(store)
                .build()
                .unwrap();
            assert!(
                ReportServer::start(other as Arc<dyn Mechanism>, again).is_err(),
                "{label}: other kind must refuse"
            );
            // ...or only the privacy budget does (same kind, same shape,
            // same width: counts perturbed under a different ε must not be
            // restored, because the oracle would calibrate them wrongly).
            let other_eps: Arc<dyn BatchMechanism> =
                Arc::new(UnaryEncoding::optimized(eps(2.5), 16).unwrap());
            let again = ServerConfig::builder()
                .engine(engine)
                .checkpoint_path(ckpt)
                .checkpoint_store(store)
                .build()
                .unwrap();
            assert!(
                ReportServer::start(other_eps as Arc<dyn Mechanism>, again).is_err(),
                "{label}: other ε must refuse"
            );
            std::fs::remove_dir_all(&dir).unwrap();
        }
    }
}

/// A v1 flat checkpoint written by the pre-store single-file format is
/// restored transparently by every backend, and checkpointing again
/// migrates it to the backend's native format without losing a count.
#[test]
fn v1_flat_checkpoints_migrate_through_every_store_over_tcp() {
    let mechanism: Arc<dyn BatchMechanism> =
        Arc::new(UnaryEncoding::optimized(eps(1.0), 16).unwrap());
    let inputs = OwnedInputs::Items(items(1024, 16));
    let (want_users, want) = batch_estimates(mechanism.as_ref(), inputs.as_batch());
    let chunks = wire_chunks(mechanism.as_ref(), inputs.as_batch());
    let half = chunks.len() / 2;

    for store in StoreKind::ALL {
        for engine in engines() {
            let label = format!("v1-migrate/{store}/{engine}");
            let dir = std::env::temp_dir().join(format!(
                "idldp-v1-migrate-{}-{store}-{engine}",
                std::process::id()
            ));
            std::fs::create_dir_all(&dir).unwrap();
            let ckpt = dir.join("serve.ckpt");

            // Write a v1 flat checkpoint the way the pre-store server did:
            // merged snapshot text + run line, one atomic file.
            let config = ServerConfig::builder()
                .engine(engine)
                .checkpoint_path(ckpt.clone())
                .checkpoint_store(StoreKind::File)
                .build()
                .unwrap();
            let server =
                ReportServer::start(mechanism.clone() as Arc<dyn Mechanism>, config).unwrap();
            let (mut client, _) =
                ReportClient::connect(server.local_addr(), mechanism.as_ref()).unwrap();
            for chunk in &chunks[..half] {
                client.push_all(chunk).unwrap();
            }
            let covered = client.checkpoint().unwrap();
            drop(client);
            server.shutdown();

            // Restart under the backend being tested: the v1 file restores,
            // a new checkpoint migrates it, and a second restart restores
            // from the migrated form.
            let config = ServerConfig::builder()
                .engine(engine)
                .checkpoint_path(ckpt.clone())
                .checkpoint_store(store)
                .build()
                .unwrap();
            let server =
                ReportServer::start(mechanism.clone() as Arc<dyn Mechanism>, config.clone())
                    .unwrap();
            let (mut client, resumed) =
                ReportClient::connect(server.local_addr(), mechanism.as_ref()).unwrap();
            assert_eq!(resumed, covered, "{label}: v1 flat file restores");
            for chunk in &chunks[half..] {
                client.push_all(chunk).unwrap();
            }
            assert_eq!(client.checkpoint().unwrap(), want_users, "{label}");
            drop(client);
            server.shutdown();

            let server =
                ReportServer::start(mechanism.clone() as Arc<dyn Mechanism>, config).unwrap();
            let (mut client, resumed) =
                ReportClient::connect(server.local_addr(), mechanism.as_ref()).unwrap();
            assert_eq!(resumed, want_users, "{label}: migrated form restores");
            let (users, estimates) = client.query_estimates().unwrap();
            assert_eq!(users, want_users, "{label}");
            assert_bit_identical(&label, &estimates, &want);
            server.shutdown();
            std::fs::remove_dir_all(&dir).unwrap();
        }
    }
}

/// A server bound to the unspecified address must still shut down cleanly:
/// the shutdown wake-up cannot connect *to* 0.0.0.0 on every platform, so
/// it targets loopback on the bound port — otherwise `shutdown` would hang
/// joining an acceptor that never wakes.
#[test]
fn shutdown_completes_when_bound_to_the_unspecified_address() {
    for engine in engines() {
        let mechanism: Arc<dyn BatchMechanism> =
            Arc::new(GeneralizedRandomizedResponse::new(eps(1.0), 8).unwrap());
        let config = ServerConfig::builder()
            .engine(engine)
            .addr("0.0.0.0:0")
            .build()
            .unwrap();
        let server = ReportServer::start(mechanism as Arc<dyn Mechanism>, config).unwrap();
        assert!(server.local_addr().ip().is_unspecified());
        let done = std::thread::spawn(move || server.shutdown());
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        while !done.is_finished() {
            assert!(
                std::time::Instant::now() < deadline,
                "{engine}: shutdown hung on an unspecified-address bind"
            );
            std::thread::sleep(std::time::Duration::from_millis(20));
        }
        done.join().unwrap();
    }
}

/// A bit-vector mechanism wider than the wire protocol's
/// `MAX_BIT_REPORT_SLOTS` is refused at startup with a typed config error
/// (every report it emits would be undecodable), not a panic and not a
/// per-frame rejection marathon.
#[test]
fn too_wide_bit_mechanism_is_a_typed_startup_error() {
    for engine in engines() {
        let too_wide = idldp_server::MAX_BIT_REPORT_SLOTS + 1;
        let mechanism: Arc<dyn BatchMechanism> =
            Arc::new(UnaryEncoding::optimized(eps(1.0), too_wide).unwrap());
        let err = ReportServer::start(mechanism as Arc<dyn Mechanism>, engine_config(engine))
            .err()
            .expect("over-cap width must not start");
        assert!(
            err.to_string().contains("wire cap"),
            "{engine}: unexpected error: {err}"
        );
    }
}

/// A query while ingest is paused (and accepted reports are still queued)
/// must answer with a typed `Reject` rather than parking the connection
/// worker until resume — otherwise a few concurrent queries during a
/// maintenance window would wedge the whole server, acceptor included.
#[test]
fn query_during_paused_ingest_is_refused_not_blocked() {
    let mechanism: Arc<dyn BatchMechanism> =
        Arc::new(GeneralizedRandomizedResponse::new(eps(1.0), 8).unwrap());
    let inputs = OwnedInputs::Items(items(200, 8));
    let (want_users, want) = batch_estimates(mechanism.as_ref(), inputs.as_batch());

    for engine in engines() {
        let server = ReportServer::start(
            mechanism.clone() as Arc<dyn Mechanism>,
            engine_config(engine),
        )
        .unwrap();
        let (mut client, _) =
            ReportClient::connect(server.local_addr(), mechanism.as_ref()).unwrap();

        server.pause_ingest();
        for chunk in wire_chunks(mechanism.as_ref(), inputs.as_batch()) {
            client.push_all(&chunk).unwrap(); // capacity 65_536 ≫ 200: all queue
        }
        match client.query_estimates() {
            Err(ClientError::Rejected { message, .. }) => {
                assert!(
                    message.contains("paused"),
                    "{engine}: unexpected reason: {message}"
                )
            }
            other => panic!("{engine}: expected a typed paused refusal, got {other:?}"),
        }

        // The refusal is not sticky: resume, and the same connection settles.
        server.resume_ingest();
        let (users, estimates) = client.query_estimates().unwrap();
        assert_eq!(users, want_users);
        assert_bit_identical(&format!("paused-resume/{engine}"), &estimates, &want);
        server.shutdown();
    }
}
