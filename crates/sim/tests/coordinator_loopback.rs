//! Coordinator ≡ batch conformance (the acceptance bar of the
//! multi-collector tier).
//!
//! Drives the full distributed path — mechanism → [`ReportClient`] → TCP
//! → [`CoordServer`] → routed across N [`ReportServer`] collectors →
//! per-collector snapshots → exact merge → oracle — and asserts that the
//! estimates read off the *coordinator* are **bit-identical** to a batch
//! [`SimulationPipeline`] run of the same `(mechanism, inputs, seed)`,
//! for all eight mechanisms, for fleet sizes {1, 2, 4}, under both
//! collector connection engines. The partition the router induces is
//! irrelevant by construction (integer counts commute under any split);
//! this suite is what pins that law end to end through two protocol hops.
//!
//! Also covered: the distributed top-k `Candidates` merge path against
//! batch `identify_top_k`, weighted round-robin routing, `Busy` spill off
//! a saturated collector (and a whole-fleet `Busy` that a retrying client
//! still converges through — exactly, nothing dropped or doubled),
//! fleet-identity refusal at registration, coordinated checkpoints with
//! a per-collector generation vector and bit-identical restart, and the
//! exactness-over-availability rule: one dead collector means a typed
//! refusal, never a silently partial estimate.

use idldp_coord::{CoordError, CoordServer, Coordinator};
use idldp_core::budget::Epsilon;
use idldp_core::grr::GeneralizedRandomizedResponse;
use idldp_core::idue::Idue;
use idldp_core::idue_ps::IduePs;
use idldp_core::levels::LevelPartition;
use idldp_core::matrix_mech::PerturbationMatrix;
use idldp_core::mechanism::{BatchMechanism, InputBatch, Mechanism};
use idldp_core::olh::OptimalLocalHashing;
use idldp_core::params::LevelParams;
use idldp_core::ps::PsMechanism;
use idldp_core::report::ReportData;
use idldp_core::subset::SubsetSelection;
use idldp_core::ue::UnaryEncoding;
use idldp_server::{
    ClientError, ConnectionEngine, PushOutcome, ReportClient, ReportServer, ServerConfig,
};
use idldp_sim::heavy_hitters::identify_top_k;
use idldp_sim::stream::SeededReportStream;
use idldp_sim::SimulationPipeline;
use std::sync::Arc;

const SEED: u64 = 20200707;
/// Smaller than the server-loopback chunk so even a 4-collector fleet
/// sees several round-robin turns per mechanism.
const CHUNK: usize = 128;

fn eps(v: f64) -> Epsilon {
    Epsilon::new(v).unwrap()
}

fn engines() -> Vec<ConnectionEngine> {
    if cfg!(unix) {
        vec![ConnectionEngine::Blocking, ConnectionEngine::Reactor]
    } else {
        vec![ConnectionEngine::Blocking]
    }
}

fn engine_config(engine: ConnectionEngine) -> ServerConfig {
    ServerConfig::builder().engine(engine).build().unwrap()
}

fn items(n: usize, m: usize) -> Vec<u32> {
    (0..n).map(|i| ((i * i) % m) as u32).collect()
}

fn sets(n: usize, m: usize) -> Vec<Vec<u32>> {
    (0..n)
        .map(|i| {
            let a = (i % m) as u32;
            let b = ((i / 2 + 1) % m) as u32;
            if a == b {
                vec![a]
            } else {
                vec![a, b]
            }
        })
        .collect()
}

enum OwnedInputs {
    Items(Vec<u32>),
    Sets(Vec<Vec<u32>>),
}

impl OwnedInputs {
    fn as_batch(&self) -> InputBatch<'_> {
        match self {
            OwnedInputs::Items(items) => InputBatch::Items(items),
            OwnedInputs::Sets(sets) => InputBatch::Sets(sets),
        }
    }
}

/// All eight mechanisms (coordinator-sized populations), covering every
/// wire shape the router has to carry.
fn lineup() -> Vec<(&'static str, Arc<dyn BatchMechanism>, OwnedInputs)> {
    let idue = {
        let levels =
            LevelPartition::new(vec![0, 0, 1, 1, 1, 1, 1, 1, 1, 1], vec![eps(1.0), eps(3.0)])
                .unwrap();
        let params = LevelParams::new(vec![0.59, 0.67], vec![0.33, 0.28]).unwrap();
        Idue::new(levels, &params).unwrap()
    };
    vec![
        (
            "grr",
            Arc::new(GeneralizedRandomizedResponse::new(eps(1.2), 24).unwrap())
                as Arc<dyn BatchMechanism>,
            OwnedInputs::Items(items(1536, 24)),
        ),
        (
            "rappor",
            Arc::new(UnaryEncoding::symmetric(eps(1.0), 20).unwrap()),
            OwnedInputs::Items(items(1024, 20)),
        ),
        (
            "oue",
            Arc::new(UnaryEncoding::optimized(eps(1.0), 20).unwrap()),
            OwnedInputs::Items(items(1024, 20)),
        ),
        ("idue", Arc::new(idue), OwnedInputs::Items(items(1024, 10))),
        (
            "ps",
            Arc::new(PsMechanism::new(12, 3).unwrap()),
            OwnedInputs::Sets(sets(768, 12)),
        ),
        (
            "idue-ps",
            Arc::new(IduePs::oue_ps(12, eps(2.0), 3).unwrap()),
            OwnedInputs::Sets(sets(768, 12)),
        ),
        (
            "matrix",
            Arc::new(PerturbationMatrix::grr(eps(1.5), 10).unwrap()),
            OwnedInputs::Items(items(768, 10)),
        ),
        (
            "olh",
            Arc::new(OptimalLocalHashing::new(eps(1.2), 24).unwrap()),
            OwnedInputs::Items(items(1536, 24)),
        ),
        (
            "ss",
            Arc::new(SubsetSelection::new(eps(1.0), 20).unwrap()),
            OwnedInputs::Items(items(1024, 20)),
        ),
    ]
}

fn batch_estimates(mechanism: &dyn BatchMechanism, inputs: InputBatch<'_>) -> (u64, Vec<f64>) {
    let snapshot = SimulationPipeline::new()
        .with_chunk_size(CHUNK)
        .run_snapshot(mechanism, inputs, SEED)
        .unwrap();
    let users = snapshot.num_users();
    let estimates = mechanism
        .frequency_oracle(users)
        .estimate_from(&snapshot)
        .unwrap();
    (users, estimates)
}

fn wire_chunks(mechanism: &dyn Mechanism, inputs: InputBatch<'_>) -> Vec<Vec<ReportData>> {
    let mut stream = SeededReportStream::new(mechanism, inputs, SEED).with_chunk_size(CHUNK);
    let mut chunks = Vec::new();
    loop {
        let mut chunk = Vec::new();
        let got = stream
            .next_chunk_with(|report| {
                chunk.push(report.to_data());
                Ok(())
            })
            .unwrap();
        if got == 0 {
            return chunks;
        }
        chunks.push(chunk);
    }
}

fn assert_bit_identical(name: &str, got: &[f64], want: &[f64]) {
    assert_eq!(got.len(), want.len(), "{name}: estimate vector length");
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        assert_eq!(
            g.to_bits(),
            w.to_bits(),
            "{name}: estimate {i} differs through the coordinator ({g} vs {w})"
        );
    }
}

/// Starts `fleet` fresh collectors and a coordinator frontend over them.
fn start_fleet(
    mechanism: &Arc<dyn BatchMechanism>,
    engine: ConnectionEngine,
    fleet: usize,
) -> (Vec<ReportServer>, CoordServer) {
    let collectors: Vec<ReportServer> = (0..fleet)
        .map(|_| {
            ReportServer::start(
                mechanism.clone() as Arc<dyn Mechanism>,
                engine_config(engine),
            )
            .unwrap()
        })
        .collect();
    let addrs: Vec<(String, usize)> = collectors
        .iter()
        .map(|c| (c.local_addr().to_string(), 1))
        .collect();
    let (coordinator, restored) =
        Coordinator::connect(mechanism.clone() as Arc<dyn Mechanism>, None, &addrs).unwrap();
    assert_eq!(restored, 0, "fresh collectors start empty");
    let front = CoordServer::start(coordinator, "127.0.0.1:0").unwrap();
    (collectors, front)
}

/// The tentpole: for every mechanism, for fleets of 1, 2, and 4
/// collectors, under both connection engines, the estimates and the
/// top-k ranking read off the coordinator are bit-identical to batch —
/// and the reports really were partitioned (every collector in a
/// multi-collector fleet absorbed some).
#[test]
fn coordinator_estimates_and_top_k_are_bit_identical_to_batch() {
    for (mech_name, mechanism, inputs) in lineup() {
        let (want_users, want) = batch_estimates(mechanism.as_ref(), inputs.as_batch());
        let chunks = wire_chunks(mechanism.as_ref(), inputs.as_batch());
        let k = 5;
        let want_top: Vec<u64> = identify_top_k(&want, k).iter().map(|&i| i as u64).collect();

        for engine in engines() {
            for fleet in [1usize, 2, 4] {
                let name = format!("{mech_name}/{engine}/x{fleet}");
                let (collectors, front) = start_fleet(&mechanism, engine, fleet);
                let (mut client, resumed) =
                    ReportClient::connect(front.local_addr(), mechanism.as_ref()).unwrap();
                assert_eq!(resumed, 0, "{name}");

                for chunk in &chunks {
                    client.push_all(chunk).unwrap();
                }

                let (users, estimates) = client.query_estimates().unwrap();
                assert_eq!(users, want_users, "{name}: user count through the fleet");
                assert_bit_identical(&name, &estimates, &want);

                // Distributed top-k goes through the Candidates merge
                // path: local per-collector top-k replies unioned and
                // re-ranked against the merged estimates — and must equal
                // batch identification exactly, bits included.
                let (tk_users, candidates) = client.query_top_k(k).unwrap();
                assert_eq!(tk_users, want_users, "{name}");
                let got_top: Vec<u64> = candidates.iter().map(|&(item, _)| item).collect();
                assert_eq!(got_top, want_top, "{name}: top-{k} through the fleet");
                for &(item, estimate) in &candidates {
                    assert_eq!(
                        estimate.to_bits(),
                        want[item as usize].to_bits(),
                        "{name}: candidate {item} estimate bits"
                    );
                }

                // The routing really sharded the stream: nothing lost,
                // and in a multi-collector fleet nothing degenerated to a
                // single collector either.
                let stats = front.coordinator().lock().unwrap().stats();
                assert_eq!(
                    stats.iter().map(|s| s.accepted).sum::<u64>(),
                    want_users,
                    "{name}: every report landed exactly once"
                );
                if fleet > 1 {
                    assert!(
                        stats.iter().all(|s| s.accepted > 0),
                        "{name}: round-robin reached every collector: {stats:?}"
                    );
                }

                for c in &collectors {
                    assert_eq!(c.fold_failures(), 0, "{name}");
                }
                drop(client);
                front.shutdown();
                for c in collectors {
                    c.shutdown();
                }
            }
        }
    }
}

/// Weighted round-robin: a collector with weight `w` takes `w`
/// consecutive frames per turn. (Weights shape load only — the estimate
/// law above already proves any split is exact.)
#[test]
fn weighted_round_robin_respects_weights() {
    let mechanism: Arc<dyn BatchMechanism> =
        Arc::new(GeneralizedRandomizedResponse::new(eps(1.2), 8).unwrap());
    let a = ReportServer::start(
        mechanism.clone() as Arc<dyn Mechanism>,
        ServerConfig::default(),
    )
    .unwrap();
    let b = ReportServer::start(
        mechanism.clone() as Arc<dyn Mechanism>,
        ServerConfig::default(),
    )
    .unwrap();
    let addrs = vec![
        (a.local_addr().to_string(), 1),
        (b.local_addr().to_string(), 3),
    ];
    let (mut coordinator, _) =
        Coordinator::connect(mechanism.clone() as Arc<dyn Mechanism>, None, &addrs).unwrap();

    // Eight single-report frames = two full turns of the (1, 3) cycle.
    for i in 0..8u64 {
        let outcome = coordinator
            .route(&[ReportData::Value((i % 8) as usize)])
            .unwrap();
        assert_eq!(outcome, PushOutcome::Ingested);
    }
    let stats = coordinator.stats();
    assert_eq!(stats[0].accepted, 2, "weight 1 of 4 → 2 of 8 frames");
    assert_eq!(stats[1].accepted, 6, "weight 3 of 4 → 6 of 8 frames");
    assert_eq!(coordinator.users(), 8);
    drop(coordinator);
    a.shutdown();
    b.shutdown();
}

/// The Busy contract through the coordinator. A saturated collector's
/// remainder spills to its neighbour instead of burning retries; a
/// whole-fleet saturation surfaces as a protocol-conformant `Busy` with
/// the contiguous accepted prefix, and a retrying client converges to
/// the exact batch estimates once capacity returns — no report dropped,
/// none double-counted.
#[test]
fn busy_saturated_collector_spills_and_a_retrying_client_converges_exactly() {
    let mechanism: Arc<dyn BatchMechanism> =
        Arc::new(GeneralizedRandomizedResponse::new(eps(1.2), 16).unwrap());
    let inputs = OwnedInputs::Items(items(2048, 16));
    let (want_users, want) = batch_estimates(mechanism.as_ref(), inputs.as_batch());
    let chunks = wire_chunks(mechanism.as_ref(), inputs.as_batch());

    for engine in engines() {
        let capacity = 64; // CHUNK = 128 > capacity: one frame overfills a queue
        let config = ServerConfig::builder()
            .engine(engine)
            .queue_capacity(capacity)
            .build()
            .unwrap();
        let slow =
            ReportServer::start(mechanism.clone() as Arc<dyn Mechanism>, config.clone()).unwrap();
        let fast = ReportServer::start(mechanism.clone() as Arc<dyn Mechanism>, config).unwrap();
        let addrs = vec![
            (slow.local_addr().to_string(), 1),
            (fast.local_addr().to_string(), 1),
        ];
        let (coordinator, _) =
            Coordinator::connect(mechanism.clone() as Arc<dyn Mechanism>, None, &addrs).unwrap();
        let front = CoordServer::start(coordinator, "127.0.0.1:0").unwrap();
        let (client, _) = ReportClient::connect(front.local_addr(), mechanism.as_ref()).unwrap();
        let mut client = client.with_retry_backoff(std::time::Duration::from_millis(1));

        // Whole fleet frozen: a frame bigger than the fleet's combined
        // queue space (2 × 64) fills both queues — slow takes its prefix,
        // the remainder spills, fast takes the spill's prefix — and the
        // coordinator's reply is Busy with exactly the contiguous
        // accepted prefix of the frame.
        slow.pause_ingest();
        fast.pause_ingest();
        let oversized: Vec<ReportData> = chunks
            .iter()
            .flatten()
            .take(2 * capacity + 40)
            .cloned()
            .collect();
        let accepted = match client.push(&oversized).unwrap() {
            PushOutcome::Busy { accepted } => accepted,
            PushOutcome::Ingested => panic!("{engine}: a frozen fleet must answer Busy"),
        };
        assert_eq!(
            accepted,
            2 * capacity as u64,
            "{engine}: both queues filled before the Busy"
        );

        // Fast thaws; slow stays frozen with a full queue for the rest of
        // the stream — every frame routed its way yields a zero-progress
        // Busy and spills wholesale to fast.
        fast.resume_ingest();
        let all: Vec<ReportData> = chunks.iter().flatten().cloned().collect();
        client.push_all(&all[accepted as usize..]).unwrap();

        {
            let coordinator = front.coordinator();
            let coordinator = coordinator.lock().unwrap();
            let stats = coordinator.stats();
            assert_eq!(
                stats.iter().map(|s| s.accepted).sum::<u64>(),
                want_users,
                "{engine}: accepted across the fleet covers the population"
            );
            assert_eq!(
                stats[0].accepted, capacity as u64,
                "{engine}: slow froze early"
            );
            assert!(
                stats[0].busy_replies > 0,
                "{engine}: slow pushed back: {stats:?}"
            );
            assert!(
                stats[1].spilled_in >= (want_users - 2 * capacity as u64),
                "{engine}: the remainder spilled to fast: {stats:?}"
            );
        }

        // Exactness over availability: with slow still paused (its 64
        // accepted reports unfolded), a query draws a typed refusal, not
        // a partial answer.
        match client.query_estimates() {
            Err(ClientError::Rejected { message, .. }) => assert!(
                message.contains("paused"),
                "{engine}: unexpected reason: {message}"
            ),
            other => panic!("{engine}: expected a typed refusal, got {other:?}"),
        }

        // Thaw slow: the same connection settles to the exact batch
        // estimates — the spill/retry dance lost and duplicated nothing.
        slow.resume_ingest();
        let (users, estimates) = client.query_estimates().unwrap();
        assert_eq!(users, want_users, "{engine}");
        assert_bit_identical(&format!("busy-spill/{engine}"), &estimates, &want);
        assert_eq!(slow.fold_failures() + fast.fold_failures(), 0);
        drop(client);
        front.shutdown();
        slow.shutdown();
        fast.shutdown();
    }
}

/// Registration is where a mixed fleet dies: a collector whose
/// run-identity line (mechanism identity + CLI config stamp) differs
/// from the coordinator's is refused by name before any report flows.
#[test]
fn registration_refuses_mismatched_fleets() {
    let mechanism: Arc<dyn BatchMechanism> =
        Arc::new(GeneralizedRandomizedResponse::new(eps(1.2), 16).unwrap());
    let stamped = |stamp: &str| ServerConfig::builder().config_stamp(stamp).build().unwrap();
    let a = ReportServer::start(
        mechanism.clone() as Arc<dyn Mechanism>,
        stamped("mechanism=grr m=16 eps=1.2 seed=1"),
    )
    .unwrap();
    let b = ReportServer::start(
        mechanism.clone() as Arc<dyn Mechanism>,
        stamped("mechanism=grr m=16 eps=1.2 seed=2"),
    )
    .unwrap();

    // Same wire mechanism, different seed stamp: the Hello handshake
    // passes (the frames are compatible) but the fleet identity does not
    // — seed 2's reports belong to a different experiment.
    let addrs = vec![
        (a.local_addr().to_string(), 1),
        (b.local_addr().to_string(), 1),
    ];
    match Coordinator::connect(
        mechanism.clone() as Arc<dyn Mechanism>,
        Some("mechanism=grr m=16 eps=1.2 seed=1"),
        &addrs,
    ) {
        Err(CoordError::IdentityMismatch { addr, got, want }) => {
            assert_eq!(addr, b.local_addr().to_string());
            assert!(got.contains("seed=2"), "{got}");
            assert!(want.contains("seed=1"), "{want}");
        }
        Err(other) => panic!("mixed seeds must refuse registration, got {other:?}"),
        Ok(_) => panic!("mixed seeds must refuse registration, got a coordinator"),
    }

    // A matching single-collector fleet registers fine.
    let (coordinator, restored) = Coordinator::connect(
        mechanism.clone() as Arc<dyn Mechanism>,
        Some("mechanism=grr m=16 eps=1.2 seed=1"),
        &addrs[..1],
    )
    .unwrap();
    assert_eq!(restored, 0);
    assert!(coordinator.run_line().contains("seed=1"));
    drop(coordinator);

    // A different mechanism config is refused one hop earlier, by the
    // collector's own Hello validation.
    let other: Arc<dyn BatchMechanism> =
        Arc::new(GeneralizedRandomizedResponse::new(eps(2.0), 16).unwrap());
    assert!(matches!(
        Coordinator::connect(other as Arc<dyn Mechanism>, None, &addrs[..1]),
        Err(CoordError::Collector { .. })
    ));

    // Config errors are typed too: empty fleets and zero weights.
    assert!(matches!(
        Coordinator::connect(mechanism.clone() as Arc<dyn Mechanism>, None, &[]),
        Err(CoordError::Config(_))
    ));
    assert!(matches!(
        Coordinator::connect(
            mechanism.clone() as Arc<dyn Mechanism>,
            None,
            &[(a.local_addr().to_string(), 0)],
        ),
        Err(CoordError::Config(_))
    ));

    a.shutdown();
    b.shutdown();
}

/// Coordinated checkpoints: one `Checkpoint` frame at the coordinator
/// fans out to every collector, the generation vector records who held
/// what, and a fleet restart restores the whole population — with the
/// post-restart estimates still bit-identical to batch.
#[test]
fn coordinated_checkpoint_covers_the_fleet_and_restores_bit_identically() {
    let mechanism: Arc<dyn BatchMechanism> =
        Arc::new(UnaryEncoding::optimized(eps(1.0), 16).unwrap());
    let inputs = OwnedInputs::Items(items(1024, 16));
    let (want_users, want) = batch_estimates(mechanism.as_ref(), inputs.as_batch());
    let chunks = wire_chunks(mechanism.as_ref(), inputs.as_batch());
    let half = chunks.len() / 2;

    let dir = std::env::temp_dir().join(format!("idldp-coord-loopback-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let ckpts = [dir.join("a.ckpt"), dir.join("b.ckpt")];
    let config = |ckpt: &std::path::Path| {
        ServerConfig::builder()
            .checkpoint_path(ckpt)
            .build()
            .unwrap()
    };

    // First life: ingest half the stream through the coordinator, then
    // checkpoint the fleet over the socket.
    let collectors: Vec<ReportServer> = ckpts
        .iter()
        .map(|c| ReportServer::start(mechanism.clone() as Arc<dyn Mechanism>, config(c)).unwrap())
        .collect();
    let addrs: Vec<(String, usize)> = collectors
        .iter()
        .map(|c| (c.local_addr().to_string(), 1))
        .collect();
    let (coordinator, _) =
        Coordinator::connect(mechanism.clone() as Arc<dyn Mechanism>, None, &addrs).unwrap();
    let front = CoordServer::start(coordinator, "127.0.0.1:0").unwrap();
    let (mut client, _) = ReportClient::connect(front.local_addr(), mechanism.as_ref()).unwrap();
    for chunk in &chunks[..half] {
        client.push_all(chunk).unwrap();
    }
    let covered = client.checkpoint().unwrap();
    assert_eq!(covered, (half * CHUNK) as u64, "the ack sums the fleet");
    {
        let coordinator = front.coordinator();
        let coordinator = coordinator.lock().unwrap();
        let generation = coordinator.last_generation().unwrap().to_vec();
        assert_eq!(generation.len(), 2, "one entry per collector");
        assert_eq!(generation.iter().sum::<u64>(), covered);
        assert!(
            generation.iter().all(|&g| g > 0),
            "both collectors held reports: {generation:?}"
        );
    }
    drop(client);
    front.shutdown();
    for c in collectors {
        c.shutdown();
    }

    // Second life: the collectors restore their checkpoints, registration
    // reports the restored fleet total, and the tail of the stream brings
    // the estimates to exact batch equality.
    let collectors: Vec<ReportServer> = ckpts
        .iter()
        .map(|c| ReportServer::start(mechanism.clone() as Arc<dyn Mechanism>, config(c)).unwrap())
        .collect();
    let addrs: Vec<(String, usize)> = collectors
        .iter()
        .map(|c| (c.local_addr().to_string(), 1))
        .collect();
    let (coordinator, restored) =
        Coordinator::connect(mechanism.clone() as Arc<dyn Mechanism>, None, &addrs).unwrap();
    assert_eq!(restored, covered, "registration sums the restored users");
    let front = CoordServer::start(coordinator, "127.0.0.1:0").unwrap();
    let (mut client, resumed) =
        ReportClient::connect(front.local_addr(), mechanism.as_ref()).unwrap();
    assert_eq!(resumed, covered, "the HelloAck reports the fleet total");
    for chunk in &chunks[half..] {
        client.push_all(chunk).unwrap();
    }
    let (users, estimates) = client.query_estimates().unwrap();
    assert_eq!(users, want_users);
    assert_bit_identical("checkpoint-restart", &estimates, &want);
    drop(client);
    front.shutdown();
    for c in collectors {
        c.shutdown();
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Exactness over availability: when a collector dies, queries through
/// the coordinator draw a typed refusal — never an estimate computed
/// over the surviving subset as if it were the whole population.
#[test]
fn a_dead_collector_means_a_typed_refusal_not_a_partial_answer() {
    let mechanism: Arc<dyn BatchMechanism> =
        Arc::new(GeneralizedRandomizedResponse::new(eps(1.2), 8).unwrap());
    let (collectors, front) = start_fleet(&mechanism, ConnectionEngine::Blocking, 2);
    let (mut client, _) = ReportClient::connect(front.local_addr(), mechanism.as_ref()).unwrap();
    let batch: Vec<ReportData> = (0..64).map(|i| ReportData::Value(i % 8)).collect();
    client.push_all(&batch).unwrap();
    let (users, _) = client.query_estimates().unwrap();
    assert_eq!(users, 64);

    // Kill one collector; the other still holds its share.
    let mut collectors = collectors;
    collectors.remove(1).shutdown();

    match client.query_estimates() {
        Err(ClientError::Rejected { message, .. }) => assert!(
            message.contains("collector"),
            "the refusal names the collector tier: {message}"
        ),
        other => panic!("a dead collector must refuse the query, got {other:?}"),
    }
    drop(client);
    front.shutdown();
    for c in collectors {
        c.shutdown();
    }
}
