//! Property tests for the simulation layer.

use idldp_core::budget::Epsilon;
use idldp_core::idue::Idue;
use idldp_core::idue_ps::IduePs;
use idldp_data::dataset::{ItemSetDataset, SingleItemDataset};
use idldp_num::rng::SplitMix64;
use idldp_sim::heavy_hitters;
use idldp_sim::{aggregate, exact};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Aggregate counts are always within [0, n] per bit.
    #[test]
    fn aggregate_counts_in_range(
        n in 10usize..2_000,
        m in 2usize..20,
        e in 0.3f64..4.0,
        seed in any::<u64>(),
    ) {
        let mech = Idue::oue(m, Epsilon::new(e).unwrap()).unwrap();
        let items: Vec<u32> = (0..n).map(|i| (i % m) as u32).collect();
        let ds = SingleItemDataset::new(items, m);
        let mut rng = SplitMix64::new(seed);
        let counts = aggregate::run_single_item(&mut rng, &mech, &ds);
        prop_assert_eq!(counts.len(), m);
        prop_assert!(counts.iter().all(|&c| c <= n as u64));
    }

    /// Exact runs are deterministic in the seed and independent of how the
    /// user set is chunked (same dataset twice → bit-identical).
    #[test]
    fn exact_run_deterministic(
        n in 10usize..500,
        m in 2usize..10,
        seed in any::<u64>(),
    ) {
        let mech = Idue::rappor(m, Epsilon::new(1.0).unwrap()).unwrap();
        let items: Vec<u32> = (0..n).map(|i| (i % m) as u32).collect();
        let ds = SingleItemDataset::new(items, m);
        prop_assert_eq!(
            exact::run_single_item(&mech, &ds, seed),
            exact::run_single_item(&mech, &ds, seed)
        );
    }

    /// PS hot counts: exactly one sample per user, dummies only from
    /// undersized sets.
    #[test]
    fn sampled_hot_counts_conserve_users(
        n in 1usize..500,
        l in 1usize..5,
        set_size in 0usize..8,
        seed in any::<u64>(),
    ) {
        let m = 10;
        let mech = IduePs::oue_ps(m, Epsilon::new(1.0).unwrap(), l).unwrap();
        let set: Vec<u32> = (0..set_size.min(m)).map(|i| i as u32).collect();
        let ds = ItemSetDataset::new(vec![set.clone(); n], m);
        let mut rng = SplitMix64::new(seed);
        let hot = aggregate::sampled_hot_counts(&mut rng, &mech, &ds);
        prop_assert_eq!(hot.iter().sum::<u64>(), n as u64);
        let dummy_total: u64 = hot[m..].iter().sum();
        if set.len() >= l && !set.is_empty() {
            prop_assert_eq!(dummy_total, 0, "no dummies when |x| >= l");
        }
        if set.is_empty() {
            prop_assert_eq!(dummy_total, n as u64, "all dummies for empty sets");
        }
    }

    /// Expected sampled counts sum to Σ_users η_x = Σ |x|/max(|x|, l).
    #[test]
    fn expected_sampled_mass(
        sizes in proptest::collection::vec(0usize..8, 1..30),
        l in 1usize..5,
    ) {
        let m = 8;
        let sets: Vec<Vec<u32>> = sizes
            .iter()
            .map(|&s| (0..s.min(m)).map(|i| i as u32).collect())
            .collect();
        let ds = ItemSetDataset::new(sets.clone(), m);
        let expected = aggregate::expected_sampled_counts(&ds, l);
        let total: f64 = expected.iter().sum();
        let want: f64 = sets
            .iter()
            .map(|s| s.len() as f64 / (s.len().max(l)) as f64)
            .sum();
        prop_assert!((total - want).abs() < 1e-9);
    }

    /// Top-k identification: always k distinct indices, and perfect on
    /// noiseless input.
    #[test]
    fn top_k_identification_properties(
        values in proptest::collection::vec(0.0f64..1000.0, 3..30),
        k in 1usize..10,
    ) {
        let k = k.min(values.len());
        let found = heavy_hitters::identify_top_k(&values, k);
        prop_assert_eq!(found.len(), k);
        let mut sorted = found.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), k, "indices must be distinct");
        // Every selected value >= every unselected value.
        let min_sel = found.iter().map(|&i| values[i]).fold(f64::INFINITY, f64::min);
        for (i, &v) in values.iter().enumerate() {
            if !found.contains(&i) {
                prop_assert!(v <= min_sel + 1e-12);
            }
        }
        let q = heavy_hitters::quality(&found, &found);
        prop_assert_eq!(q.f1, 1.0);
    }
}
