//! Online ≡ batch heavy-hitter conformance (the acceptance bar of the
//! `idldp-stream::topk` tracker).
//!
//! The tracker identifies heavy hitters *online*: reports stream into a
//! sharded accumulator, and every `cadence` reports a snapshot → prune →
//! re-estimate cycle rebuilds a pruned candidate set. This suite proves the
//! headline guarantee — the tracker's **final** top-k is *identical* (not
//! approximately equal) to batch `identify_top_k` over the full
//! population's oracle estimates:
//!
//! * for all eight mechanisms, each streaming its native wire shape,
//! * for shard counts {1, 3, 8} and k ∈ {1, 5, 16} with several slacks,
//! * for several snapshot cadences (from every-97-reports to a single
//!   final snapshot),
//! * in threshold mode against batch `identify_above`,
//! * across a checkpoint → restore → resume restart (bit-identical final
//!   candidates), and
//! * — by property test — under *any* snapshot schedule (random manual
//!   refreshes on top of any cadence) and *any* report→shard assignment.
//!
//! The equivalence rests on two invariants proven elsewhere: streaming
//! counts are bit-identical to batch counts (streaming conformance suite),
//! and both rankings share the one `total_cmp` comparator
//! (`idldp_num::vecops::top_k_indices`). This suite also carries the
//! identification-quality floor for the PR 3 mechanisms (OLH, subset
//! selection), so heavy-hitter coverage spans all eight mechanisms.

use idldp_core::budget::Epsilon;
use idldp_core::grr::GeneralizedRandomizedResponse;
use idldp_core::idue::Idue;
use idldp_core::idue_ps::IduePs;
use idldp_core::levels::LevelPartition;
use idldp_core::matrix_mech::PerturbationMatrix;
use idldp_core::mechanism::{BatchMechanism, InputBatch, Mechanism};
use idldp_core::olh::OptimalLocalHashing;
use idldp_core::params::LevelParams;
use idldp_core::ps::PsMechanism;
use idldp_core::subset::SubsetSelection;
use idldp_core::ue::UnaryEncoding;
use idldp_num::rng::SplitMix64;
use idldp_sim::heavy_hitters::{identify_above, identify_top_k, quality, tracked_quality};
use idldp_sim::stream::{HeavyHitterTracker, SeededReportStream, TrackerMode};
use idldp_sim::SimulationPipeline;
use proptest::prelude::*;

const SEED: u64 = 20200707;
const CHUNK: usize = 256;
const N: usize = 3000;
/// Domain size: > 16 so the largest tested k still prunes.
const M: usize = 20;
const SHARD_COUNTS: [usize; 3] = [1, 3, 8];
const KS: [usize; 3] = [1, 5, 16];
/// Snapshot cadences, paired index-wise with a slack: refresh every 97
/// reports, every 1024, and only at the very end (cadence beyond n).
const CADENCES: [usize; 3] = [97, 1024, 1 << 30];
const SLACKS: [usize; 3] = [0, 2, 7];

fn eps(v: f64) -> Epsilon {
    Epsilon::new(v).unwrap()
}

fn items(n: usize, m: usize) -> Vec<u32> {
    // Skewed inputs so every bucket count differs (a symmetric dataset
    // could mask ranking/permutation bugs).
    (0..n).map(|i| ((i * i) % m) as u32).collect()
}

fn sets(n: usize, m: usize) -> Vec<Vec<u32>> {
    (0..n)
        .map(|i| {
            let a = (i % m) as u32;
            let b = ((i / 2 + 1) % m) as u32;
            if a == b {
                vec![a]
            } else {
                vec![a.min(b), a.max(b)]
            }
        })
        .collect()
}

/// The acceptance criterion: for every `(k, slack, shards, cadence)`, the
/// tracker's final top-k over the streamed population equals batch
/// `identify_top_k` over the batch pipeline's oracle estimates, and the
/// final candidate estimates are the offline estimates, bit for bit.
fn assert_tracker_matches_batch(
    name: &str,
    mechanism: &dyn BatchMechanism,
    inputs: InputBatch<'_>,
) {
    let n = inputs.len() as u64;
    let pipeline = SimulationPipeline::new().with_chunk_size(CHUNK);
    let snapshot = pipeline.run_snapshot(mechanism, inputs, SEED).unwrap();
    let oracle = mechanism.frequency_oracle(n);
    let estimates = oracle.estimate_from(&snapshot).unwrap();

    for &k in &KS {
        let want = identify_top_k(&estimates, k);
        assert_eq!(want.len(), k.min(mechanism.domain_size()), "{name}");
        for &shards in &SHARD_COUNTS {
            for (&cadence, &slack) in CADENCES.iter().zip(&SLACKS) {
                let run = pipeline
                    .run_top_k(
                        mechanism,
                        inputs,
                        SEED,
                        shards,
                        TrackerMode::TopK { k, slack },
                        cadence,
                    )
                    .unwrap();
                let label =
                    format!("{name}: k={k} slack={slack} shards={shards} cadence={cadence}");
                assert_eq!(run.top_k, want, "{label}");
                assert_eq!(run.num_users, n, "{label}");
                assert_eq!(
                    run.candidates.len(),
                    (k + slack).min(mechanism.domain_size()),
                    "{label}"
                );
                for c in &run.candidates {
                    assert!(
                        c.estimate == estimates[c.item],
                        "{label}: candidate {} estimate {} != offline {}",
                        c.item,
                        c.estimate,
                        estimates[c.item]
                    );
                }
            }
        }
    }
}

#[test]
fn grr_tracker_matches_batch() {
    let mech = GeneralizedRandomizedResponse::new(eps(1.2), M).unwrap();
    let inputs = items(N, M);
    assert_tracker_matches_batch("grr", &mech, InputBatch::Items(&inputs));
}

#[test]
fn ue_tracker_matches_batch() {
    let mech = UnaryEncoding::optimized(eps(1.0), M).unwrap();
    let inputs = items(N, M);
    assert_tracker_matches_batch("oue", &mech, InputBatch::Items(&inputs));
}

#[test]
fn idue_tracker_matches_batch() {
    let assignment: Vec<usize> = (0..M).map(|i| usize::from(i % 3 != 0)).collect();
    let levels = LevelPartition::new(assignment, vec![eps(1.0), eps(3.0)]).unwrap();
    let params = LevelParams::new(vec![0.59, 0.67], vec![0.33, 0.28]).unwrap();
    let mech = Idue::new(levels, &params).unwrap();
    let inputs = items(N, M);
    assert_tracker_matches_batch("idue", &mech, InputBatch::Items(&inputs));
}

#[test]
fn ps_tracker_matches_batch() {
    let mech = PsMechanism::new(M, 3).unwrap();
    let inputs = sets(N, M);
    assert_tracker_matches_batch("ps", &mech, InputBatch::Sets(&inputs));
}

#[test]
fn idue_ps_tracker_matches_batch() {
    let mech = IduePs::oue_ps(M, eps(2.0), 3).unwrap();
    let inputs = sets(N, M);
    assert_tracker_matches_batch("idue-ps", &mech, InputBatch::Sets(&inputs));
}

#[test]
fn matrix_tracker_matches_batch() {
    let mech = PerturbationMatrix::grr(eps(1.5), M).unwrap();
    let inputs = items(N, M);
    assert_tracker_matches_batch("matrix", &mech, InputBatch::Items(&inputs));
}

#[test]
fn olh_tracker_matches_batch() {
    let mech = OptimalLocalHashing::new(eps(1.2), M).unwrap();
    let inputs = items(N, M);
    assert_tracker_matches_batch("olh", &mech, InputBatch::Items(&inputs));
}

#[test]
fn subset_selection_tracker_matches_batch() {
    let mech = SubsetSelection::new(eps(1.0), M).unwrap();
    let inputs = items(N, M);
    assert_tracker_matches_batch("ss", &mech, InputBatch::Items(&inputs));
}

#[test]
fn threshold_mode_matches_batch_identify_above() {
    let mech = UnaryEncoding::optimized(eps(1.0), M).unwrap();
    let inputs = items(N, M);
    let batch = InputBatch::Items(&inputs);
    let pipeline = SimulationPipeline::new().with_chunk_size(CHUNK);
    let snapshot = pipeline.run_snapshot(&mech, batch, SEED).unwrap();
    let estimates = mech
        .frequency_oracle(N as u64)
        .estimate_from(&snapshot)
        .unwrap();
    // Thresholds from "admits most items" to "admits none".
    for threshold in [0.0, 0.02 * N as f64, 0.1 * N as f64, N as f64] {
        let want = identify_above(&estimates, threshold);
        for &shards in &SHARD_COUNTS {
            let run = pipeline
                .run_top_k(
                    &mech,
                    batch,
                    SEED,
                    shards,
                    TrackerMode::Threshold { threshold },
                    512,
                )
                .unwrap();
            assert_eq!(
                run.top_k, want,
                "threshold={threshold} shards={shards} diverges from identify_above"
            );
        }
    }
}

/// Satellite: checkpoint → restore → continue must be bit-identical to an
/// uninterrupted run — answer *and* candidate estimates.
#[test]
fn tracker_checkpoint_resume_is_bit_identical() {
    let mech = OptimalLocalHashing::new(eps(2.0), 16).unwrap();
    let inputs = items(4096, 16);
    let batch = InputBatch::Items(&inputs);
    let mode = TrackerMode::TopK { k: 4, slack: 3 };

    // Uninterrupted reference run.
    let mut whole = HeavyHitterTracker::for_mechanism(&mech, 4, mode, 300).unwrap();
    let mut stream = SeededReportStream::new(&mech, batch, SEED).with_chunk_size(CHUNK);
    while stream
        .next_chunk_with(|r| whole.push(r).map(|_| ()))
        .unwrap()
        > 0
    {}
    let want = whole.finish().unwrap();

    // Interrupted run: ingest half, checkpoint, "restart" into a tracker
    // with a different shard count AND a different cadence, seek, finish.
    let mut first = HeavyHitterTracker::for_mechanism(&mech, 2, mode, 300).unwrap();
    let mut stream = SeededReportStream::new(&mech, batch, SEED).with_chunk_size(CHUNK);
    for _ in 0..8 {
        assert_eq!(
            stream
                .next_chunk_with(|r| first.push(r).map(|_| ()))
                .unwrap(),
            CHUNK
        );
    }
    let checkpoint = first.to_checkpoint_string();

    let mut resumed = HeavyHitterTracker::for_mechanism(&mech, 7, mode, 511).unwrap();
    resumed.restore_from_checkpoint_str(&checkpoint).unwrap();
    assert_eq!(resumed.num_users(), (8 * CHUNK) as u64);
    let mut stream = SeededReportStream::new(&mech, batch, SEED).with_chunk_size(CHUNK);
    stream.seek_to_user(resumed.num_users() as usize).unwrap();
    while stream
        .next_chunk_with(|r| resumed.push(r).map(|_| ()))
        .unwrap()
        > 0
    {}

    assert_eq!(resumed.finish().unwrap(), want);
    assert_eq!(
        resumed.candidates(),
        whole.candidates(),
        "candidate estimates must match bit for bit after resume"
    );
}

/// Satellite: identification quality for the PR 3 mechanisms (OLH, subset
/// selection) on a skewed synthetic dataset — precision/recall must beat
/// the random-guess baseline (a uniform guess of k of m items scores
/// precision = recall = f1 = k/m in expectation), and with this much
/// signal they should in fact be perfect.
#[test]
fn olh_and_subset_selection_identify_heavy_hitters() {
    let m = 20;
    let k = 3;
    let n = 60_000usize;
    // Items 0..3 carry 90% of the users; 4..20 share the rest.
    let inputs: Vec<u32> = (0..n)
        .map(|i| {
            if i % 10 < 9 {
                (i % 3) as u32
            } else {
                3 + (i % (m - 3)) as u32
            }
        })
        .collect();
    let truth = [0usize, 1, 2];
    let baseline = k as f64 / m as f64;

    let olh = OptimalLocalHashing::new(eps(2.0), m).unwrap();
    let ss = SubsetSelection::new(eps(2.0), m).unwrap();
    let mechanisms: [(&str, &dyn BatchMechanism); 2] = [("olh", &olh), ("ss", &ss)];
    for (name, mech) in mechanisms {
        // Offline: batch estimates, ranked.
        let snapshot = SimulationPipeline::new()
            .run_snapshot(mech, InputBatch::Items(&inputs), SEED)
            .unwrap();
        let estimates = mech
            .frequency_oracle(n as u64)
            .estimate_from(&snapshot)
            .unwrap();
        let q = quality(&identify_top_k(&estimates, k), &truth);
        assert!(
            q.f1 > baseline,
            "{name}: batch f1 {} does not beat random-guess baseline {baseline}",
            q.f1
        );
        assert!(q.f1 > 0.99, "{name}: batch identification quality {q:?}");

        // Online: the tracker's final answer scores identically.
        let (run, tq) = tracked_quality(
            mech,
            InputBatch::Items(&inputs),
            SEED,
            TrackerMode::TopK { k, slack: 2 },
            4096,
            &truth,
        )
        .unwrap();
        assert_eq!(run.num_users, n as u64, "{name}");
        assert!(tq.f1 > baseline, "{name}: online f1 {}", tq.f1);
        assert_eq!(tq, q, "{name}: online and batch quality must coincide");
    }
}

/// Builds one of the eight mechanisms by index (the generator behind the
/// property tests), over a domain of size `m`.
fn mechanism(kind: usize, m: usize) -> Box<dyn BatchMechanism> {
    match kind {
        0 => Box::new(GeneralizedRandomizedResponse::new(eps(1.2), m).unwrap()),
        1 => Box::new(UnaryEncoding::optimized(eps(1.0), m).unwrap()),
        2 => {
            let assignment: Vec<usize> = (0..m).map(|i| usize::from(i % 3 != 0)).collect();
            let levels = LevelPartition::new(assignment, vec![eps(1.0), eps(3.0)]).unwrap();
            let params = LevelParams::new(vec![0.59, 0.67], vec![0.33, 0.28]).unwrap();
            Box::new(Idue::new(levels, &params).unwrap())
        }
        3 => Box::new(PsMechanism::new(m, 2).unwrap()),
        4 => Box::new(IduePs::oue_ps(m, eps(2.0), 2).unwrap()),
        5 => Box::new(PerturbationMatrix::grr(eps(1.5), m).unwrap()),
        6 => Box::new(OptimalLocalHashing::new(eps(1.3), m).unwrap()),
        _ => Box::new(SubsetSelection::new(eps(1.1), m).unwrap()),
    }
}

enum OwnedInputs {
    Items(Vec<u32>),
    Sets(Vec<Vec<u32>>),
}

impl OwnedInputs {
    fn batch(&self) -> InputBatch<'_> {
        match self {
            OwnedInputs::Items(v) => InputBatch::Items(v),
            OwnedInputs::Sets(v) => InputBatch::Sets(v),
        }
    }
}

fn inputs_for(mech: &dyn BatchMechanism, n: usize) -> OwnedInputs {
    match mech.input_kind() {
        idldp_core::mechanism::InputKind::Item => OwnedInputs::Items(items(n, mech.domain_size())),
        idldp_core::mechanism::InputKind::Set => OwnedInputs::Sets(sets(n, mech.domain_size())),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Snapshot-cadence invariance: *any* snapshot schedule — any cadence,
    /// plus randomly injected manual `refresh()` calls — and *any*
    /// report→shard assignment (random `push_to` over any shard count)
    /// land on exactly the same final candidate set as the canonical
    /// round-robin run at a different cadence and shard count.
    #[test]
    fn any_schedule_and_sharding_yields_the_same_final_candidates(
        kind in 0usize..8,
        n in 100usize..700,
        k in 1usize..6,
        slack in 0usize..4,
        cadence_a in 1usize..300,
        cadence_b in 1usize..300,
        shards_a in 1usize..7,
        shards_b in 1usize..7,
        seed in any::<u64>(),
        schedule_seed in any::<u64>(),
    ) {
        let m = 12;
        let mech = mechanism(kind, m);
        let inputs = inputs_for(mech.as_ref(), n);
        let mode = TrackerMode::TopK { k, slack };
        let pipeline = SimulationPipeline::new().with_chunk_size(64);

        // Route A: the canonical round-robin pipeline run.
        let reference = pipeline
            .run_top_k(mech.as_ref(), inputs.batch(), seed, shards_a, mode, cadence_a)
            .unwrap();
        prop_assert_eq!(reference.num_users, n as u64);

        // Route B: a hand-driven tracker — explicit random shard per
        // report, a different cadence, and random extra refreshes between
        // chunks (an arbitrary snapshot schedule).
        let mut tracker =
            HeavyHitterTracker::for_mechanism(mech.as_ref(), shards_b, mode, cadence_b).unwrap();
        let mut schedule = SplitMix64::new(schedule_seed);
        let mut stream =
            SeededReportStream::new(mech.as_ref(), inputs.batch(), seed).with_chunk_size(64);
        loop {
            let shard_seed = schedule.next();
            let mut pick = SplitMix64::new(shard_seed);
            let got = stream
                .next_chunk_with(|report| {
                    let shard = (pick.next() % shards_b as u64) as usize;
                    tracker.push_to(shard, report).map(|_| ())
                })
                .unwrap();
            if got == 0 {
                break;
            }
            if schedule.next().is_multiple_of(3) {
                tracker.refresh().unwrap();
            }
        }
        let top_k = tracker.finish().unwrap();

        prop_assert_eq!(&top_k, &reference.top_k);
        prop_assert_eq!(tracker.candidates(), reference.candidates.as_slice());
    }
}
