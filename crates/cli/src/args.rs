//! Flag parsing for the CLI: `--key value` pairs with typed accessors and
//! comma-separated list support.

use std::collections::HashMap;

/// Parsed `--key value` arguments.
#[derive(Clone, Debug, Default)]
pub struct CliArgs {
    values: HashMap<String, String>,
}

impl CliArgs {
    /// Parses a token list (everything after the subcommand).
    pub fn parse(tokens: &[String]) -> Self {
        let mut values = HashMap::new();
        let mut iter = tokens.iter().peekable();
        while let Some(tok) = iter.next() {
            if let Some(name) = tok.strip_prefix("--") {
                let takes_value = iter.peek().is_some_and(|next| !next.starts_with("--"));
                let value = if takes_value {
                    iter.next().expect("peeked").clone()
                } else {
                    "true".to_string()
                };
                values.insert(name.to_string(), value);
            }
        }
        Self { values }
    }

    /// An optional string value.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.values.get(name).map(String::as_str)
    }

    /// A required string value.
    pub fn require(&self, name: &str) -> Result<&str, String> {
        self.values
            .get(name)
            .map(String::as_str)
            .ok_or_else(|| format!("missing required flag --{name}"))
    }

    /// An optional value with a default.
    pub fn get_or(&self, name: &str, default: &str) -> String {
        self.values
            .get(name)
            .cloned()
            .unwrap_or_else(|| default.to_string())
    }

    /// A typed optional value.
    pub fn parse_or<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.values.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("flag --{name}: cannot parse `{v}`")),
        }
    }

    /// A typed value that is `None` when the flag is absent (for flags
    /// whose mere presence changes behavior, so no default applies).
    pub fn parse_opt<T: std::str::FromStr>(&self, name: &str) -> Result<Option<T>, String> {
        self.values
            .get(name)
            .map(|v| {
                v.parse()
                    .map_err(|_| format!("flag --{name}: cannot parse `{v}`"))
            })
            .transpose()
    }

    /// A required comma-separated list of floats.
    pub fn require_f64_list(&self, name: &str) -> Result<Vec<f64>, String> {
        parse_f64_list(self.require(name)?).map_err(|e| format!("flag --{name}: {e}"))
    }

    /// A required comma-separated list of non-negative integers.
    pub fn require_usize_list(&self, name: &str) -> Result<Vec<usize>, String> {
        self.require(name)?
            .split(',')
            .map(|s| {
                s.trim()
                    .parse::<usize>()
                    .map_err(|_| format!("flag --{name}: cannot parse `{s}`"))
            })
            .collect()
    }
}

/// Parses a comma-separated float list.
pub fn parse_f64_list(s: &str) -> Result<Vec<f64>, String> {
    s.split(',')
        .map(|part| {
            part.trim()
                .parse::<f64>()
                .map_err(|_| format!("cannot parse `{part}` as a number"))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> CliArgs {
        CliArgs::parse(&s.split_whitespace().map(String::from).collect::<Vec<_>>())
    }

    #[test]
    fn key_value_pairs() {
        let a = parse("--budgets 1,2 --model opt1 --verbose");
        assert_eq!(a.require("budgets").unwrap(), "1,2");
        assert_eq!(a.get_or("model", "opt0"), "opt1");
        assert_eq!(a.get_or("verbose", "false"), "true");
        assert!(a.require("missing").is_err());
    }

    #[test]
    fn typed_parsing() {
        let a = parse("--trials 7");
        assert_eq!(a.parse_or("trials", 3usize).unwrap(), 7);
        assert_eq!(a.parse_or("seed", 42u64).unwrap(), 42);
        let bad = parse("--trials seven");
        assert!(bad.parse_or("trials", 3usize).is_err());
    }

    #[test]
    fn optional_typed_parsing() {
        let a = parse("--top-k 7");
        assert_eq!(a.parse_opt::<usize>("top-k").unwrap(), Some(7));
        assert_eq!(a.parse_opt::<f64>("threshold").unwrap(), None);
        assert!(parse("--top-k seven").parse_opt::<usize>("top-k").is_err());
    }

    #[test]
    fn float_lists() {
        assert_eq!(parse_f64_list("1, 2.5,4").unwrap(), vec![1.0, 2.5, 4.0]);
        assert!(parse_f64_list("1,x").is_err());
        let a = parse("--budgets 1,1.2");
        assert_eq!(a.require_f64_list("budgets").unwrap(), vec![1.0, 1.2]);
    }

    #[test]
    fn usize_lists() {
        let a = parse("--counts 5,5,90");
        assert_eq!(a.require_usize_list("counts").unwrap(), vec![5, 5, 90]);
        let bad = parse("--counts 5,-1");
        assert!(bad.require_usize_list("counts").is_err());
    }
}
