//! `idldp` — command-line interface to the ID-LDP workspace.
//!
//! ```text
//! idldp solve    --budgets 1,1.2,2,4 --counts 5,5,5,85 [--model opt0] [--r min]
//! idldp audit    --budgets 1,4 --counts 1,5 --a 0.59,0.67 --b 0.33,0.28
//! idldp leakage  --budgets 1,1.2,2,4
//! idldp simulate --dataset powerlaw --n 100000 --m 100 --eps 1.0 [--trials 10]
//! idldp ingest   --mechanism oue --n 200000 --m 64 --eps 1.0 [--top-k 8] [--checkpoint state.ckpt]
//! idldp mechanisms [--names]
//! ```
//!
//! Run `idldp help` (or any unknown subcommand) for usage.

mod args;
mod commands;

use std::process::ExitCode;

fn main() -> ExitCode {
    let mut argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.is_empty() {
        print_usage();
        return ExitCode::FAILURE;
    }
    let command = argv.remove(0);
    let parsed = args::CliArgs::parse(&argv);
    let result = match command.as_str() {
        "solve" => commands::solve::run(&parsed),
        "audit" => commands::audit::run(&parsed),
        "leakage" => commands::leakage::run(&parsed),
        "simulate" => commands::simulate::run(&parsed),
        "ingest" => commands::ingest::run(&parsed),
        "mechanisms" => commands::mechanisms::run(&parsed),
        "help" | "--help" | "-h" => {
            print_usage();
            Ok(())
        }
        other => Err(format!("unknown subcommand `{other}`")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!();
            print_usage();
            ExitCode::FAILURE
        }
    }
}

fn print_usage() {
    eprintln!(
        "idldp — Input-Discriminative Local Differential Privacy (Gu et al., ICDE 2020)

USAGE:
  idldp solve    --budgets E1,E2,.. --counts M1,M2,..  [--model opt0|opt1|opt2] [--r min|avg|max]
      solve IDUE perturbation probabilities for privacy levels

  idldp audit    --budgets E1,.. --counts M1,.. --a A1,.. --b B1,..  [--r min|avg|max]
      check given per-level parameters against the Eq. 7 constraints

  idldp leakage  --budgets E1,E2,..
      print Table-I-style prior-posterior leakage bounds

  idldp simulate --dataset powerlaw|uniform --n N --m M --eps E
                 [--model opt0|opt1|opt2] [--trials T] [--seed S]
      run a frequency-estimation experiment and print MSE per mechanism

  idldp ingest   --mechanism NAME --n N --m M --eps E
                 [--dataset powerlaw|uniform] [--shards S] [--chunk C]
                 [--emit-every U] [--top K] [--seed S] [--checkpoint FILE]
                 [--top-k K [--slack S] | --threshold T] [--track-every U]
      stream perturbed reports through sharded accumulators, emitting
      calibrated estimates every U users; with --checkpoint the
      accumulator state is persisted and a rerun resumes mid-stream;
      with --top-k (or --threshold) an online heavy-hitter tracker
      prints its evolving candidate set at every emission, and its
      final answer is identical to batch identification

  idldp mechanisms [--names]
      list every registered mechanism with its aliases, supported
      deployment kinds, report wire shape, and description
      (--names prints just the canonical names, one per line)"
    );
}
