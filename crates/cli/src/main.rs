//! `idldp` — command-line interface to the ID-LDP workspace.
//!
//! ```text
//! idldp solve    --budgets 1,1.2,2,4 --counts 5,5,5,85 [--model opt0] [--r min]
//! idldp audit    --budgets 1,4 --counts 1,5 --a 0.59,0.67 --b 0.33,0.28
//! idldp leakage  --budgets 1,1.2,2,4
//! idldp simulate --dataset powerlaw --n 100000 --m 100 --eps 1.0 [--trials 10] [--estimates]
//! idldp ingest   --mechanism oue --n 200000 --m 64 --eps 1.0 [--top-k 8] [--checkpoint state.ckpt]
//! idldp serve    --mechanism oue --m 64 --eps 1.0 --port 0 [--checkpoint state.ckpt]
//! idldp coordinate --collectors ADDR,ADDR,.. --mechanism oue --m 64 --eps 1.0 --port 0
//! idldp push     --addr 127.0.0.1:PORT --mechanism oue --n 200000 --m 64 --eps 1.0 [--top-k 8]
//! idldp mechanisms [--names]
//! ```
//!
//! Run `idldp help` (or any unknown subcommand) for usage.

mod args;
mod commands;

use std::process::ExitCode;

fn main() -> ExitCode {
    let mut argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.is_empty() {
        print_usage();
        return ExitCode::FAILURE;
    }
    let command = argv.remove(0);
    let parsed = args::CliArgs::parse(&argv);
    let result = match command.as_str() {
        "solve" => commands::solve::run(&parsed),
        "audit" => commands::audit::run(&parsed),
        "leakage" => commands::leakage::run(&parsed),
        "simulate" => commands::simulate::run(&parsed),
        "ingest" => commands::ingest::run(&parsed),
        "serve" => commands::serve::run(&parsed),
        "coordinate" => commands::coordinate::run(&parsed),
        "push" => commands::push::run(&parsed),
        "mechanisms" => commands::mechanisms::run(&parsed),
        "help" | "--help" | "-h" => {
            print_usage();
            Ok(())
        }
        other => Err(format!("unknown subcommand `{other}`")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!();
            print_usage();
            ExitCode::FAILURE
        }
    }
}

fn print_usage() {
    eprintln!(
        "idldp — Input-Discriminative Local Differential Privacy (Gu et al., ICDE 2020)

USAGE:
  idldp solve    --budgets E1,E2,.. --counts M1,M2,..  [--model opt0|opt1|opt2] [--r min|avg|max]
      solve IDUE perturbation probabilities for privacy levels

  idldp audit    --budgets E1,.. --counts M1,.. --a A1,.. --b B1,..  [--r min|avg|max]
      check given per-level parameters against the Eq. 7 constraints

  idldp leakage  --budgets E1,E2,..
      print Table-I-style prior-posterior leakage bounds

  idldp simulate --dataset powerlaw|uniform --n N --m M --eps E
                 [--model opt0|opt1|opt2] [--trials T] [--seed S]
                 [--estimates [--chunk C]]
      run a frequency-estimation experiment and print MSE per mechanism;
      with --estimates, print one deterministic bit-exact estimate
      vector per mechanism instead (diffable against `idldp push`)

  idldp ingest   --mechanism NAME --n N --m M --eps E
                 [--dataset powerlaw|uniform] [--shards S] [--chunk C]
                 [--emit-every U] [--top K] [--seed S] [--checkpoint FILE]
                 [--top-k K [--slack S] | --threshold T] [--track-every U]
      stream perturbed reports through sharded accumulators, emitting
      calibrated estimates every U users; with --checkpoint the
      accumulator state is persisted and a rerun resumes mid-stream;
      with --top-k (or --threshold) an online heavy-hitter tracker
      prints its evolving candidate set at every emission, and its
      final answer is identical to batch identification

  idldp serve    --mechanism NAME --m M --eps E [--port P] [--host H]
                 [--seed S] [--shards S] [--queue-capacity Q]
                 [--workers W] [--ingest-workers I] [--checkpoint FILE]
                 [--engine blocking|reactor] [--idle-timeout-ms N]
                 [--tenants NAME=MECH:M:EPS:SEED,..] [--tenants-file FILE]
      run the networked ingestion service: accept framed compact-wire
      report batches over TCP with bounded-queue backpressure (Busy
      replies), serve estimate/top-k queries from live snapshots, and
      persist atomic checkpoints on demand; --port 0 picks an
      ephemeral port and prints it; --engine reactor multiplexes all
      connections onto --workers event loops instead of a thread per
      connection; --idle-timeout-ms reaps silent peers (0 disables);
      --tenants hosts extra fully independent streams next to the
      default one (own accumulator, ingest queue, and checkpoint at
      <FILE>.tenant-<NAME>), selected by `push --tenant`

  idldp coordinate --collectors ADDR[@W],ADDR[@W],.. --mechanism NAME
                 --m M --eps E [--seed S] [--port P] [--host H]
                 [--tenant NAME]
      front a fleet of `idldp serve` collectors behind one port
      speaking the same protocol: registration refuses collectors
      whose mechanism/m/eps/seed differ, report frames are routed
      round-robin (weight W frames per turn; Busy remainders spill to
      the next collector), and every query merges the collectors' raw
      count snapshots before estimating once — answers are
      bit-identical to a single unsharded server for any fleet size;
      --tenant registers against that tenant on every collector

  idldp push     --addr HOST:PORT --mechanism NAME --n N --m M --eps E
                 [--dataset powerlaw|uniform] [--chunk C] [--seed S]
                 [--top-k K] [--checkpoint-server] [--resume]
                 [--tenant NAME]
      stream the seeded synthetic population to a running `idldp
      serve`, absorbing Busy backpressure, then query and print the
      server's estimates (bit-identical to `idldp simulate
      --estimates` with the same flags); --checkpoint-server asks the
      server to persist its checkpoint at the end; --resume skips the
      users the server already holds (only valid when they came from
      this same workload, e.g. after a checkpointed restart);
      --tenant pushes into that stream of a multi-tenant server

  idldp mechanisms [--names]
      list every registered mechanism with its aliases, supported
      deployment kinds, report wire shape, and description
      (--names prints just the canonical names, one per line)"
    );
}
