//! CLI subcommands.

pub mod audit;
pub mod ingest;
pub mod leakage;
pub mod mechanisms;
pub mod simulate;
pub mod solve;

use idldp_core::budget::Epsilon;
use idldp_core::levels::LevelPartition;
use idldp_core::notion::RFunction;
use idldp_opt::Model;

/// Builds a level partition from `--budgets` / `--counts` flag values.
///
/// `counts[i]` items are assigned to level `i`, contiguously — the CLI works
/// at the level granularity, which is all the solvers need.
pub fn levels_from_flags(budgets: &[f64], counts: &[usize]) -> Result<LevelPartition, String> {
    if budgets.len() != counts.len() {
        return Err(format!(
            "--budgets has {} entries but --counts has {}",
            budgets.len(),
            counts.len()
        ));
    }
    let eps = budgets
        .iter()
        .map(|&b| Epsilon::new(b).map_err(|e| e.to_string()))
        .collect::<Result<Vec<_>, _>>()?;
    let mut level_of = Vec::new();
    for (lvl, &c) in counts.iter().enumerate() {
        level_of.extend(std::iter::repeat_n(lvl, c));
    }
    LevelPartition::new(level_of, eps).map_err(|e| e.to_string())
}

/// Parses a `--model` flag value.
pub fn model_from_flag(name: &str) -> Result<Model, String> {
    match name {
        "opt0" => Ok(Model::Opt0),
        "opt1" => Ok(Model::Opt1),
        "opt2" => Ok(Model::Opt2),
        other => Err(format!("unknown model `{other}` (expected opt0|opt1|opt2)")),
    }
}

/// Parses an `--r` flag value.
pub fn r_from_flag(name: &str) -> Result<RFunction, String> {
    match name {
        "min" => Ok(RFunction::Min),
        "avg" => Ok(RFunction::Avg),
        "max" => Ok(RFunction::Max),
        other => Err(format!(
            "unknown r-function `{other}` (expected min|avg|max)"
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_builder() {
        let l = levels_from_flags(&[1.0, 4.0], &[2, 3]).unwrap();
        assert_eq!(l.num_items(), 5);
        assert_eq!(l.counts(), &[2, 3]);
        assert!(levels_from_flags(&[1.0], &[2, 3]).is_err());
        assert!(levels_from_flags(&[-1.0], &[2]).is_err());
        assert!(levels_from_flags(&[1.0, 2.0], &[2, 0]).is_err());
    }

    #[test]
    fn model_and_r_parsers() {
        assert_eq!(model_from_flag("opt0").unwrap(), Model::Opt0);
        assert_eq!(model_from_flag("opt2").unwrap(), Model::Opt2);
        assert!(model_from_flag("optX").is_err());
        assert_eq!(r_from_flag("min").unwrap(), RFunction::Min);
        assert!(r_from_flag("median").is_err());
    }
}
