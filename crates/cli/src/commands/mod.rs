//! CLI subcommands.

pub mod audit;
pub mod coordinate;
pub mod ingest;
pub mod leakage;
pub mod mechanisms;
pub mod push;
pub mod serve;
pub mod simulate;
pub mod solve;

use idldp_core::budget::Epsilon;
use idldp_core::levels::LevelPartition;
use idldp_core::notion::RFunction;
use idldp_data::budgets::BudgetScheme;
use idldp_data::dataset::SingleItemDataset;
use idldp_data::synthetic;
use idldp_num::rng::{derive_seed, stream_rng};
use idldp_opt::Model;

/// The seeded synthetic workload shared by every streaming command.
///
/// `ingest`, `push`, and `simulate --estimates` must draw the *same*
/// dataset, the *same* per-item budget assignment, and the *same* report
/// stream for a given `(dataset_kind, n, m, eps, seed)` — that is what
/// makes `idldp push` against a live server diffable against a local batch
/// run. The derivation therefore lives exactly once, here: the dataset
/// consumes RNG stream `(seed, 0)`, the budget assignment `(seed, 1)`, and
/// the report stream runs on its own derived seed so chunk 0's
/// perturbation draws never replay the input-generating sequences.
pub struct StreamWorkload {
    /// The synthetic client population.
    pub dataset: SingleItemDataset,
    /// The paper-default per-item privacy levels.
    pub levels: LevelPartition,
    /// Seed for the perturbed report stream (and the batch pipeline).
    pub stream_seed: u64,
}

/// Builds the level partition of the streaming commands (paper-default
/// budget scheme over RNG stream `(seed, 1)`).
pub fn stream_levels(m: usize, eps: f64, seed: u64) -> Result<LevelPartition, String> {
    let base = Epsilon::new(eps).map_err(|e| e.to_string())?;
    BudgetScheme::paper_default()
        .assign(m, base, &mut stream_rng(seed, 1))
        .map_err(|e| e.to_string())
}

/// Builds the full shared workload (dataset + levels + stream seed).
pub fn stream_workload(
    dataset_kind: &str,
    n: usize,
    m: usize,
    eps: f64,
    seed: u64,
) -> Result<StreamWorkload, String> {
    let dataset = match dataset_kind {
        "powerlaw" => synthetic::power_law_with(&mut stream_rng(seed, 0), n, m, 2.0),
        "uniform" => synthetic::uniform_with(&mut stream_rng(seed, 0), n, m),
        other => {
            return Err(format!(
                "unknown dataset `{other}` (expected powerlaw|uniform)"
            ))
        }
    };
    Ok(StreamWorkload {
        dataset,
        levels: stream_levels(m, eps, seed)?,
        stream_seed: derive_seed(seed, u64::from(u32::MAX)),
    })
}

/// Prints one estimate vector in the stable greppable form shared by
/// `idldp push` and `idldp simulate --estimates`:
///
/// ```text
/// users <n>
/// estimate <item> <ieee-754 bits, hex> <value>
/// ```
///
/// The hex bits column makes the output diffable *bit for bit* — the CI
/// loopback smoke greps these lines from both commands and requires them
/// identical.
pub fn print_estimate_lines(users: u64, estimates: &[f64]) {
    println!("users {users}");
    for (i, e) in estimates.iter().enumerate() {
        println!(
            "estimate {i} {:016x} {}",
            e.to_bits(),
            idldp_sim::report::sci(*e)
        );
    }
}

/// Builds a level partition from `--budgets` / `--counts` flag values.
///
/// `counts[i]` items are assigned to level `i`, contiguously — the CLI works
/// at the level granularity, which is all the solvers need.
pub fn levels_from_flags(budgets: &[f64], counts: &[usize]) -> Result<LevelPartition, String> {
    if budgets.len() != counts.len() {
        return Err(format!(
            "--budgets has {} entries but --counts has {}",
            budgets.len(),
            counts.len()
        ));
    }
    let eps = budgets
        .iter()
        .map(|&b| Epsilon::new(b).map_err(|e| e.to_string()))
        .collect::<Result<Vec<_>, _>>()?;
    let mut level_of = Vec::new();
    for (lvl, &c) in counts.iter().enumerate() {
        level_of.extend(std::iter::repeat_n(lvl, c));
    }
    LevelPartition::new(level_of, eps).map_err(|e| e.to_string())
}

/// Parses a `--model` flag value.
pub fn model_from_flag(name: &str) -> Result<Model, String> {
    match name {
        "opt0" => Ok(Model::Opt0),
        "opt1" => Ok(Model::Opt1),
        "opt2" => Ok(Model::Opt2),
        other => Err(format!("unknown model `{other}` (expected opt0|opt1|opt2)")),
    }
}

/// Parses an `--r` flag value.
pub fn r_from_flag(name: &str) -> Result<RFunction, String> {
    match name {
        "min" => Ok(RFunction::Min),
        "avg" => Ok(RFunction::Avg),
        "max" => Ok(RFunction::Max),
        other => Err(format!(
            "unknown r-function `{other}` (expected min|avg|max)"
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_builder() {
        let l = levels_from_flags(&[1.0, 4.0], &[2, 3]).unwrap();
        assert_eq!(l.num_items(), 5);
        assert_eq!(l.counts(), &[2, 3]);
        assert!(levels_from_flags(&[1.0], &[2, 3]).is_err());
        assert!(levels_from_flags(&[-1.0], &[2]).is_err());
        assert!(levels_from_flags(&[1.0, 2.0], &[2, 0]).is_err());
    }

    #[test]
    fn model_and_r_parsers() {
        assert_eq!(model_from_flag("opt0").unwrap(), Model::Opt0);
        assert_eq!(model_from_flag("opt2").unwrap(), Model::Opt2);
        assert!(model_from_flag("optX").is_err());
        assert_eq!(r_from_flag("min").unwrap(), RFunction::Min);
        assert!(r_from_flag("median").is_err());
    }
}
