//! `idldp audit` — verify per-level parameters against Eq. 7.

use super::{levels_from_flags, r_from_flag};
use crate::args::CliArgs;
use idldp_core::params::LevelParams;

/// Runs the subcommand.
pub fn run(args: &CliArgs) -> Result<(), String> {
    let budgets = args.require_f64_list("budgets")?;
    let counts = args.require_usize_list("counts")?;
    let a = args.require_f64_list("a")?;
    let b = args.require_f64_list("b")?;
    let tol = args.parse_or("tol", 1e-9)?;
    let r = r_from_flag(&args.get_or("r", "min"))?;
    let levels = levels_from_flags(&budgets, &counts)?;
    let params = LevelParams::new(a, b).map_err(|e| e.to_string())?;
    if params.num_levels() != levels.num_levels() {
        return Err(format!(
            "--a/--b have {} levels but --budgets has {}",
            params.num_levels(),
            levels.num_levels()
        ));
    }

    println!("pairwise Eq. 7 log-ratios (rows = i, cols = j; bound = r(eps_i, eps_j)):");
    let t = params.num_levels();
    for i in 0..t {
        for j in 0..t {
            let observed = params.pair_log_ratio(i, j);
            let allowed = r.combine(
                levels.level_budget(i).expect("in range"),
                levels.level_budget(j).expect("in range"),
            );
            let mark = if observed <= allowed + tol {
                "ok"
            } else {
                "VIOLATION"
            };
            println!("  ({i},{j}): ln-ratio {observed:>8.5}  <=? {allowed:>8.5}  {mark}");
        }
    }
    println!();
    match params.verify(&levels, r, tol) {
        Ok(()) => {
            println!(
                "VERDICT: parameters satisfy {}-ID-LDP (tol {tol:.0e})",
                r.name()
            );
            Ok(())
        }
        Err(e) => {
            println!("VERDICT: VIOLATED — {e}");
            Err("audit failed".into())
        }
    }
}
