//! `idldp ingest` — serve-style streaming aggregation.
//!
//! Consumes a seeded report stream in chunks through a
//! [`ShardedAccumulator`] and emits calibrated estimates at a fixed
//! cadence, the way an online ID-LDP collector would serve a dashboard.
//! The stream is the deterministic [`SeededReportStream`] over a synthetic
//! population (the report-transport twin of `idldp simulate`), so every run
//! is reproducible, and — by the streaming conformance contract — its final
//! counts are bit-identical to a batch `SimulationPipeline` run of the same
//! mechanism and dataset at the stream's RNG seed (a sub-seed derived from
//! `--seed`, distinct from the streams that generate the dataset and the
//! budget assignment).
//!
//! With `--top-k K` (or `--threshold T`) the sink is wrapped in a
//! [`HeavyHitterTracker`]: every `--track-every` reports the tracker runs
//! its snapshot → prune → re-estimate cycle, and each emission prints the
//! evolving candidate set alongside the periodic estimates. The final
//! candidate line is identical to what batch `identify_top_k` /
//! `identify_above` would report over the full population (the
//! `topk_conformance` suite proves this).
//!
//! With `--checkpoint FILE` the accumulator state is persisted after every
//! emission through the backend picked by `--checkpoint-store
//! {file,sharded,delta}` — one atomically-rewritten flat file, one file
//! per shard behind an fsynced manifest, or an append-only delta log whose
//! cost tracks the traffic since the last emission instead of the domain
//! size. Re-running the same command restores the checkpoint and resumes
//! mid-stream instead of starting over (kill it halfway and run it again
//! to see the user counter continue where it stopped); every backend
//! restores v1 flat checkpoints transparently. The tracker needs no extra
//! checkpoint state: its candidates are a pure function of the counts.

use crate::args::CliArgs;
use idldp_core::identity::RunIdentity;
use idldp_core::snapshot::{open_store, StoreKind};
use idldp_sim::report::sci;
use idldp_sim::stream::{
    HeavyHitterTracker, SeededReportStream, ShapedAccumulator, ShardedAccumulator, TrackerMode,
};
use idldp_sim::{BuildContext, MechanismRegistry};

/// The ingestion sink: the plain sharded accumulator, or the same sharding
/// wrapped in an online heavy-hitter tracker (`--top-k` / `--threshold`).
enum Sink<'a> {
    Plain(ShardedAccumulator<ShapedAccumulator>),
    Tracked(HeavyHitterTracker<'a, ShapedAccumulator>),
}

impl Sink<'_> {
    fn num_users(&self) -> u64 {
        match self {
            Sink::Plain(sink) => sink.num_users(),
            Sink::Tracked(tracker) => tracker.num_users(),
        }
    }
}

/// Runs the subcommand.
pub fn run(args: &CliArgs) -> Result<(), String> {
    let n: usize = args.parse_or("n", 200_000)?;
    let m: usize = args.parse_or("m", 64)?;
    let eps: f64 = args.parse_or("eps", 1.0)?;
    let seed: u64 = args.parse_or("seed", 20200401)?;
    let shards: usize = args.parse_or("shards", idldp_sim::stream::DEFAULT_SHARDS)?;
    let chunk: usize = args.parse_or("chunk", idldp_sim::stream::DEFAULT_CHUNK_SIZE)?;
    let emit_every: usize = args.parse_or("emit-every", n.div_ceil(10).max(chunk))?;
    let top: usize = args.parse_or("top", 5)?;
    let mechanism_name = args.get_or("mechanism", "oue");
    let dataset_kind = args.get_or("dataset", "powerlaw");
    let checkpoint = args.get("checkpoint");
    let checkpoint_store = args
        .get_or("checkpoint-store", "file")
        .parse::<StoreKind>()
        .map_err(|e| format!("flag --checkpoint-store: {e}"))?;
    if shards == 0 || chunk == 0 {
        return Err("--shards and --chunk must be positive".into());
    }

    // Online heavy-hitter tracking flags.
    let top_k: Option<usize> = args.parse_opt("top-k")?;
    let threshold: Option<f64> = args.parse_opt("threshold")?;
    let mode = match (top_k, threshold) {
        (Some(_), Some(_)) => {
            return Err("--top-k and --threshold are mutually exclusive".into());
        }
        (Some(k), None) => {
            let slack: usize = args.parse_or("slack", k)?;
            Some(TrackerMode::TopK { k, slack })
        }
        (None, Some(t)) => Some(TrackerMode::Threshold { threshold: t }),
        (None, None) => None,
    };
    let track_every: usize = args.parse_or("track-every", emit_every)?;

    // The shared workload derivation (`super::stream_workload`) keeps
    // ingest/push/simulate-estimates on identical RNG streams.
    let workload = super::stream_workload(&dataset_kind, n, m, eps, seed)?;
    let dataset = &workload.dataset;
    let ctx = BuildContext {
        levels: &workload.levels,
        padding: 0,
        solver: None,
    };
    let mechanism = MechanismRegistry::standard()
        .build_single_item(&mechanism_name, &ctx)
        .map_err(|e| e.to_string())?;

    // The sink is picked from the mechanism's declared wire shape, so the
    // same command ingests bit vectors, categorical values, hashed
    // (seed, value) pairs, and item sets without per-mechanism dispatch.
    let sharded =
        ShardedAccumulator::new(ShapedAccumulator::for_mechanism(mechanism.as_ref()), shards);
    let mut sink = match mode {
        Some(mode) => Sink::Tracked(
            HeavyHitterTracker::new(mechanism.as_ref(), sharded, mode, track_every)
                .map_err(|e| e.to_string())?,
        ),
        None => Sink::Plain(sharded),
    };
    let mut stream = SeededReportStream::new(
        mechanism.as_ref(),
        dataset.input_batch(),
        workload.stream_seed,
    )
    .with_chunk_size(chunk);

    // The run-identity line appended to every checkpoint: resuming under
    // different flags would splice counts from incompatible populations,
    // so a mismatch is an error, not a silent restart. The typed
    // `RunIdentity` captures the mechanism's wire identity (kind, shape,
    // width, exact ε bits); the stamp pins everything else that shaped
    // the population and the stream.
    let stamp = format!(
        "mechanism={mechanism_name} dataset={dataset_kind} n={n} m={m} eps={eps} seed={seed} \
         chunk={chunk}"
    );
    let run_line = RunIdentity::for_mechanism(
        RunIdentity::PRODUCER_INGEST,
        mechanism.as_ref(),
        Some(&stamp),
    )
    .to_string();

    // The checkpoint store, when one is configured. Opened once: the delta
    // backend appends each emission's record relative to the previous save
    // it made, so the handle carries state across the loop.
    let mut store = checkpoint.map(|path| open_store(checkpoint_store, path));

    // Resume from a checkpoint when one exists.
    if let (Some(path), Some(store)) = (checkpoint, store.as_mut()) {
        let restored = store
            .load()
            .map_err(|e| format!("checkpoint `{path}`: {e}"))?;
        if let Some(restored) = restored {
            match restored.run_line() {
                Some(line) if line == run_line => {}
                Some(line) => {
                    return Err(format!(
                        "checkpoint `{path}` was written by a different run\n  found:    \
                         {line}\n  expected: {run_line}"
                    ))
                }
                None => {
                    return Err(format!(
                        "checkpoint `{path}` carries no run-identity line; refusing to \
                         resume (delete it to start over)"
                    ))
                }
            }
            let users = restored.num_users() as usize;
            stream
                .seek_to_user(users)
                .map_err(|e| format!("checkpoint `{path}`: {e}"))?;
            match &mut sink {
                Sink::Plain(sharded) => sharded
                    .restore_shards(restored.shards())
                    .map_err(|e| e.to_string())?,
                Sink::Tracked(tracker) => tracker
                    .restore(&restored.merged())
                    .map_err(|e| e.to_string())?,
            }
            println!("ingest: restored {users} users from checkpoint `{path}`");
        }
    }

    let tracking = match mode {
        Some(TrackerMode::TopK { k, slack }) => {
            format!(", tracking top-{k} (+{slack} slack) every {track_every} users")
        }
        Some(TrackerMode::Threshold { threshold }) => {
            format!(", tracking estimates >= {threshold} every {track_every} users")
        }
        None => String::new(),
    };
    println!(
        "ingest: mechanism = {mechanism_name} ({} reports), dataset = {dataset_kind}, n = {n}, \
         m = {m}, eps = {eps}, shards = {shards}, chunk = {chunk}, emit every {emit_every} \
         users{tracking}",
        mechanism.report_shape().label()
    );
    let truth = dataset.true_counts();
    let mut since_emit = 0usize;
    loop {
        let ingested = match &mut sink {
            Sink::Plain(sharded) => stream.ingest_chunk(sharded).map_err(|e| e.to_string())?,
            Sink::Tracked(tracker) => stream
                .next_chunk_with(|report| tracker.push(report).map(|_| ()))
                .map_err(|e| e.to_string())?,
        };
        since_emit += ingested;
        let done = ingested == 0;
        if done || since_emit >= emit_every {
            since_emit = 0;
            match &mut sink {
                Sink::Plain(sharded) => {
                    // Freeze once, estimate once: the same merged snapshot
                    // backs the emission.
                    let snapshot = sharded.snapshot();
                    let estimates = if snapshot.num_users() == 0 {
                        Vec::new()
                    } else {
                        mechanism
                            .frequency_oracle(snapshot.num_users())
                            .estimate_from(&snapshot)
                            .expect("snapshot width matches mechanism")
                    };
                    emit(&estimates, snapshot.num_users(), &truth, top, n);
                }
                Sink::Tracked(tracker) => {
                    // Re-prune at the emission point so the printed
                    // candidates reflect everything ingested so far, not
                    // the last cadence boundary — and reuse the estimates
                    // that refresh already computed for the estimate line.
                    let estimates = tracker.refresh_estimates().map_err(|e| e.to_string())?;
                    emit(&estimates, tracker.num_users(), &truth, top, n);
                    emit_candidates(tracker);
                }
            }
            if let (Some(path), Some(store)) = (checkpoint, store.as_mut()) {
                // Per-shard snapshots, no merge: the store decides whether
                // to persist them separately (sharded backend), merged
                // into one flat file (file backend), or as a delta against
                // the previous save (delta backend). Every backend commits
                // atomically, so a kill mid-write can never leave a
                // half-applied checkpoint behind — same rule as the
                // server's checkpoint frame.
                let shard_snaps = match &sink {
                    Sink::Plain(sharded) => sharded.snapshot_shards(),
                    Sink::Tracked(tracker) => tracker.sink().snapshot_shards(),
                };
                store
                    .save(&shard_snaps, &run_line)
                    .map_err(|e| format!("checkpoint `{path}`: {e}"))?;
            }
        }
        if done {
            break;
        }
    }
    if let Sink::Tracked(tracker) = &mut sink {
        let found = tracker.finish().map_err(|e| e.to_string())?;
        let label: Vec<String> = found.iter().map(ToString::to_string).collect();
        println!(
            "ingest: identified heavy hitters [{}] ({} refreshes)",
            label.join(", "),
            tracker.refreshes()
        );
    }
    println!("ingest: done ({} users)", sink.num_users());
    Ok(())
}

/// Prints one periodic estimate line from calibrated estimates (empty
/// while no reports have arrived).
fn emit(estimates: &[f64], users: u64, truth: &[f64], top: usize, n: usize) {
    if users == 0 || estimates.is_empty() {
        println!("  [{users:>10} users] no reports yet");
        return;
    }
    // Scale the full-population truth to the users seen so far, so the
    // error column is comparable across emissions.
    let progress = users as f64 / n as f64;
    let mse: f64 = estimates
        .iter()
        .zip(truth)
        .map(|(&e, &t)| {
            let d = e - t * progress;
            d * d
        })
        .sum::<f64>()
        / truth.len() as f64;
    let head: Vec<String> = idldp_num::vecops::top_k_indices(estimates, top)
        .into_iter()
        .map(|i| format!("{i}:{}", sci(estimates[i])))
        .collect();
    println!(
        "  [{users:>10} users] mse/item {} top-{top} {}",
        sci(mse),
        head.join(" ")
    );
}

/// Prints the tracker's current (just refreshed) candidate set.
fn emit_candidates(tracker: &HeavyHitterTracker<'_, ShapedAccumulator>) {
    let shown: Vec<String> = tracker
        .candidates()
        .iter()
        .map(|c| format!("{}:{}", c.item, sci(c.estimate)))
        .collect();
    let what = match tracker.mode() {
        TrackerMode::TopK { k, slack } => format!("top-{k}+{slack}"),
        TrackerMode::Threshold { threshold } => format!(">={threshold}"),
    };
    println!(
        "  [{:>10} users] candidates {what} {}",
        tracker.num_users(),
        shown.join(" ")
    );
}
