//! `idldp coordinate` — the multi-collector coordinator frontend.
//!
//! Registers every `--collectors` address as a collector (each must be an
//! `idldp serve` running the *same* `--mechanism/--m/--eps/--seed` — a
//! mismatched run-identity line is refused at startup), then serves the
//! same framed protocol as `idldp serve` on its own port: report frames
//! are routed across the fleet (weighted round-robin, `Busy` remainders
//! spilling to the next collector), and queries merge per-collector raw
//! count snapshots before running the frequency oracle once — so the
//! estimates a client reads off the coordinator are bit-identical to an
//! unsharded batch run, for any number of collectors:
//!
//! ```text
//! idldp serve --mechanism oue --m 64 --eps 1.0 --port 0   # × N
//! idldp coordinate --collectors 127.0.0.1:40213,127.0.0.1:40214 \
//!     --mechanism oue --m 64 --eps 1.0 --port 0
//! coordinate: listening on 127.0.0.1:40215
//! idldp push --addr 127.0.0.1:40215 --mechanism oue --m 64 --eps 1.0 ...
//! ```
//!
//! An address may carry a round-robin weight as `ADDR@WEIGHT` (default 1:
//! `@3` means three consecutive report frames per turn — capacity
//! proportioning only; any split gives the same exact answers).
//!
//! Against multi-tenant collectors, `--tenant NAME` registers the fleet
//! under that tenant on every collector (each must host the tenant with
//! this coordinator's exact config); without the flag the fleet is the
//! collectors' default tenants. The coordinator's own frontend always
//! exposes a single stream — its clients connect without a tenant.

use crate::args::CliArgs;
use idldp_coord::{CoordServer, Coordinator};
use idldp_core::identity::TenantId;
use idldp_core::mechanism::Mechanism;
use idldp_sim::{BuildContext, MechanismRegistry};
use std::io::Write;
use std::sync::Arc;

/// Parses one `--collectors` entry: `ADDR` or `ADDR@WEIGHT`.
fn parse_collector(entry: &str) -> Result<(String, usize), String> {
    let entry = entry.trim();
    if entry.is_empty() {
        return Err("empty collector address in --collectors".into());
    }
    match entry.rsplit_once('@') {
        None => Ok((entry.to_string(), 1)),
        Some((addr, weight)) => {
            let weight: usize = weight
                .parse()
                .map_err(|_| format!("collector `{entry}`: weight `{weight}` is not a number"))?;
            if weight == 0 || addr.is_empty() {
                return Err(format!(
                    "collector `{entry}`: expected ADDR or ADDR@WEIGHT with positive weight"
                ));
            }
            Ok((addr.to_string(), weight))
        }
    }
}

/// Runs the subcommand. Blocks until the process is killed.
pub fn run(args: &CliArgs) -> Result<(), String> {
    let m: usize = args.parse_or("m", 64)?;
    let eps: f64 = args.parse_or("eps", 1.0)?;
    let seed: u64 = args.parse_or("seed", 20200401)?;
    let mechanism_name = args.get_or("mechanism", "oue");
    let host = args.get_or("host", "127.0.0.1");
    let port: u16 = args.parse_or("port", 0)?;
    let collectors = args
        .get("collectors")
        .ok_or("--collectors ADDR[@W][,ADDR[@W]...] is required")?;
    let collectors = collectors
        .split(',')
        .map(parse_collector)
        .collect::<Result<Vec<_>, _>>()?;
    let tenant = args
        .get("tenant")
        .map(|name| {
            name.parse::<TenantId>()
                .map_err(|e| format!("flag --tenant: {e}"))
        })
        .transpose()?;

    // Built exactly like `serve` builds its mechanism, with the same
    // config stamp — the registration handshake compares the resulting
    // run-identity line against each collector's.
    let levels = super::stream_levels(m, eps, seed)?;
    let ctx = BuildContext {
        levels: &levels,
        padding: 0,
        solver: None,
    };
    let mechanism = MechanismRegistry::standard()
        .build_single_item(&mechanism_name, &ctx)
        .map_err(|e| e.to_string())?;
    let mechanism: Arc<dyn Mechanism> = Arc::<dyn idldp_sim::BatchMechanism>::from(mechanism);
    let stamp = format!("mechanism={mechanism_name} m={m} eps={eps} seed={seed}");

    let (coordinator, restored) =
        Coordinator::connect_tenant(mechanism, Some(&stamp), &collectors, tenant.as_ref())
            .map_err(|e| e.to_string())?;
    println!(
        "coordinate: mechanism = {mechanism_name}, m = {m}, eps = {eps}, \
         collectors = {}{}",
        coordinator.num_collectors(),
        tenant
            .as_ref()
            .map(|t| format!(", tenant = {t}"))
            .unwrap_or_default()
    );
    for stats in coordinator.stats() {
        println!(
            "coordinate: registered {} (weight {})",
            stats.addr, stats.weight
        );
    }
    if restored > 0 {
        println!("coordinate: fleet already holds {restored} users");
    }

    let server =
        CoordServer::start(coordinator, format!("{host}:{port}")).map_err(|e| e.to_string())?;
    println!("coordinate: listening on {}", server.local_addr());
    // Scripts scrape the port from a piped stdout; flush past the pipe's
    // block buffering before parking forever.
    std::io::stdout().flush().map_err(|e| e.to_string())?;

    loop {
        std::thread::park();
    }
}

#[cfg(test)]
mod tests {
    use super::parse_collector;

    #[test]
    fn collector_entries_parse() {
        assert_eq!(
            parse_collector("127.0.0.1:9000").unwrap(),
            ("127.0.0.1:9000".into(), 1)
        );
        assert_eq!(
            parse_collector(" 127.0.0.1:9000@3 ").unwrap(),
            ("127.0.0.1:9000".into(), 3)
        );
        assert!(parse_collector("").is_err());
        assert!(parse_collector("addr@0").is_err());
        assert!(parse_collector("addr@x").is_err());
        assert!(parse_collector("@2").is_err());
    }
}
