//! `idldp push` — drive a report stream against a live `idldp serve`.
//!
//! The networked twin of `idldp ingest`: the same seeded synthetic
//! population, the same mechanism construction, the same deterministic
//! report stream — but every report travels through the frame codec and a
//! TCP socket into the server's bounded ingest queue ([`ReportClient`]
//! absorbs `Busy` backpressure by retrying the unaccepted tail). After the
//! push it queries the server's calibrated estimates and prints them in
//! the stable `users` / `estimate` line format, bit-for-bit diffable
//! against `idldp simulate --estimates` run with the same flags — the CI
//! `server-loopback` step does exactly that diff.
//!
//! If the server restored a checkpoint (nonzero user count in the
//! handshake), the stream seeks past the users already ingested and pushes
//! only the tail — the client half of the restart story.
//!
//! Against a multi-tenant server, `--tenant NAME` selects the stream to
//! push into (the handshake then validates this run's mechanism config
//! against *that tenant's*); without the flag the push lands on the
//! default tenant.

use crate::args::CliArgs;
use idldp_core::identity::TenantId;
use idldp_server::ReportClient;
use idldp_sim::stream::SeededReportStream;
use idldp_sim::{BuildContext, MechanismRegistry};

/// Runs the subcommand.
pub fn run(args: &CliArgs) -> Result<(), String> {
    let addr = args.require("addr")?;
    let n: usize = args.parse_or("n", 200_000)?;
    let m: usize = args.parse_or("m", 64)?;
    let eps: f64 = args.parse_or("eps", 1.0)?;
    let seed: u64 = args.parse_or("seed", 20200401)?;
    let chunk: usize = args.parse_or("chunk", idldp_sim::stream::DEFAULT_CHUNK_SIZE)?;
    let mechanism_name = args.get_or("mechanism", "oue");
    let dataset_kind = args.get_or("dataset", "powerlaw");
    let top_k: Option<usize> = args.parse_opt("top-k")?;
    let want_checkpoint = args.get("checkpoint-server").is_some();
    let resume = args.get("resume").is_some();
    let tenant = args
        .get("tenant")
        .map(|name| {
            name.parse::<TenantId>()
                .map_err(|e| format!("flag --tenant: {e}"))
        })
        .transpose()?;
    if chunk == 0 {
        return Err("--chunk must be positive".into());
    }

    let workload = super::stream_workload(&dataset_kind, n, m, eps, seed)?;
    let ctx = BuildContext {
        levels: &workload.levels,
        padding: 0,
        solver: None,
    };
    let mechanism = MechanismRegistry::standard()
        .build_single_item(&mechanism_name, &ctx)
        .map_err(|e| e.to_string())?;

    let (mut client, resumed) =
        ReportClient::connect_tenant(addr, mechanism.as_ref(), tenant.as_ref())
            .map_err(|e| e.to_string())?;
    let mut stream = SeededReportStream::new(
        mechanism.as_ref(),
        workload.dataset.input_batch(),
        workload.stream_seed,
    )
    .with_chunk_size(chunk);
    if resumed > 0 {
        // The handshake pins the mechanism config (kind/shape/width/ε) but
        // cannot know which *population* produced the server's existing
        // counts. Seeking past them is only correct when they came from
        // this exact workload (same --dataset/--n/--seed — the restart
        // story), so the operator must assert that explicitly.
        if !resume {
            return Err(format!(
                "server already holds {resumed} users; pass --resume if they are this \
                 run's own earlier reports (same --dataset/--n/--seed), or point at a \
                 fresh server"
            ));
        }
        stream
            .seek_to_user(resumed as usize)
            .map_err(|e| format!("server already holds {resumed} users: {e}"))?;
        println!("push: server restored {resumed} users; resuming from there");
    }

    println!(
        "push: mechanism = {mechanism_name} ({} reports), dataset = {dataset_kind}, n = {n}, \
         m = {m}, eps = {eps}, chunk = {chunk}, server = {addr}{}",
        mechanism.report_shape().label(),
        tenant
            .as_ref()
            .map(|t| format!(", tenant = {t}"))
            .unwrap_or_default()
    );
    let mut pushed = 0usize;
    loop {
        let mut batch = Vec::with_capacity(chunk);
        let got = stream
            .next_chunk_with(|report| {
                batch.push(report.to_data());
                Ok(())
            })
            .map_err(|e| e.to_string())?;
        if got == 0 {
            break;
        }
        client.push_all(&batch).map_err(|e| e.to_string())?;
        pushed += got;
    }
    println!(
        "push: pushed {pushed} users ({} busy retries)",
        client.busy_retries()
    );

    let (users, estimates) = client.query_estimates().map_err(|e| e.to_string())?;
    super::print_estimate_lines(users, &estimates);

    if let Some(k) = top_k {
        let (_, candidates) = client.query_top_k(k).map_err(|e| e.to_string())?;
        let shown: Vec<String> = candidates
            .iter()
            .map(|&(item, estimate)| format!("{item}:{}", idldp_sim::report::sci(estimate)))
            .collect();
        println!("candidates top-{k} {}", shown.join(" "));
    }
    if want_checkpoint {
        let covered = client.checkpoint().map_err(|e| e.to_string())?;
        println!("push: server checkpointed {covered} users");
    }
    Ok(())
}
