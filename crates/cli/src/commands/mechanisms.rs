//! `idldp mechanisms` — list every registered protocol.
//!
//! Prints the whole [`MechanismRegistry::standard`] table: canonical name,
//! accepted aliases, supported deployment kinds, the report wire shape, and
//! a one-line description — so discovering what `--mechanisms` /
//! `--mechanism` accept no longer means grepping the registry source.

use crate::args::CliArgs;
use idldp_sim::report::TextTable;
use idldp_sim::MechanismRegistry;

/// Runs the subcommand.
pub fn run(args: &CliArgs) -> Result<(), String> {
    let registry = MechanismRegistry::standard();
    if args.get("names").is_some() {
        // Machine-friendly: one canonical name per line.
        for name in registry.names() {
            println!("{name}");
        }
        return Ok(());
    }
    let mut table = TextTable::new(&[
        "name",
        "aliases",
        "deployments",
        "report shape",
        "description",
    ]);
    for entry in registry.entries() {
        let deployments = match (entry.supports_single_item(), entry.supports_item_set()) {
            (true, true) => "item, set",
            (true, false) => "item",
            (false, true) => "set",
            (false, false) => "-",
        };
        table.row(vec![
            entry.name.to_string(),
            entry.aliases.join(", "),
            deployments.to_string(),
            entry.report_shape.to_string(),
            entry.description.to_string(),
        ]);
    }
    print!("{}", table.render());
    println!(
        "\n{} mechanisms registered. Pass names to `simulate --mechanisms` or `ingest \
         --mechanism` (case-insensitive; aliases accepted).",
        registry.names().len()
    );
    Ok(())
}
