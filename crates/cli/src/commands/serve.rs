//! `idldp serve` — the long-running networked ingestion service.
//!
//! Binds an [`idldp_server::ReportServer`] for one mechanism and serves
//! the framed compact-wire protocol: report batches (with `Busy`
//! backpressure off a bounded ingest queue), estimate and top-k queries
//! over live snapshots, and on-demand atomic checkpoints. The bound
//! address is printed (and flushed) as soon as the listener is up —
//! `--port 0` picks an ephemeral port, which is how the CI loopback smoke
//! and local experiments avoid port collisions:
//!
//! ```text
//! idldp serve --mechanism oue --m 64 --eps 1.0 --port 0
//! serve: listening on 127.0.0.1:40213
//! ```
//!
//! The mechanism is built exactly like `idldp ingest` / `idldp push`
//! build theirs (paper-default budgets over RNG stream `(seed, 1)`), so a
//! `push` run with the same `--m/--eps/--seed` handshakes successfully.
//! With `--checkpoint FILE` the server restores the file at startup (the
//! restart path) and persists a new checkpoint whenever a client sends
//! the checkpoint control frame — through the backend selected by
//! `--checkpoint-store {file,sharded,delta}`: `file` rewrites one flat
//! file atomically, `sharded` writes one file per accumulator shard in
//! parallel behind an fsynced manifest, and `delta` appends only the
//! count deltas since the previous checkpoint (compacting periodically),
//! so checkpoint cost tracks traffic instead of domain size. Every
//! backend restores v1 flat checkpoints transparently.
//!
//! `--engine {blocking,reactor}` picks the connection engine: `blocking`
//! (the default) spawns a worker thread per live connection behind a
//! rendezvous acceptor; `reactor` multiplexes every connection onto
//! `--workers` readiness event loops, so thousands of mostly-idle clients
//! cost registrations instead of threads. The wire protocol and every
//! reply byte are identical under both. `--idle-timeout-ms N` reaps a
//! connection that completes no frame for `N` ms (`0` disables reaping).
//!
//! `--tenants NAME=MECH:M:EPS:SEED,...` hosts additional fully
//! independent streams alongside the default one — per-tenant
//! accumulator, ingest queue, and checkpoint (at the sibling path
//! `<checkpoint>.tenant-<NAME>`). `--tenants-file FILE` reads the same
//! specs from a file, one per line (`#` comments and blank lines
//! ignored). Clients select a tenant with `push --tenant NAME`; v3
//! clients (and clients that name no tenant) land on the default tenant.

use crate::args::CliArgs;
use idldp_core::identity::TenantId;
use idldp_core::mechanism::Mechanism;
use idldp_server::{ConnectionEngine, ReportServer, ServerConfig, TenantConfig};
use idldp_sim::{BuildContext, MechanismRegistry};
use std::io::Write;
use std::sync::Arc;
use std::time::Duration;

/// Parses one `NAME=MECH:M:EPS:SEED` tenant spec into a built
/// [`TenantConfig`] — the same mechanism construction and config stamp
/// the default stream gets from the top-level flags, so `push --tenant`
/// and a coordinator's registration check work identically against any
/// tenant.
fn parse_tenant_spec(spec: &str) -> Result<TenantConfig, String> {
    let bad = || format!("tenant spec `{spec}`: expected NAME=MECH:M:EPS:SEED");
    let (name, rest) = spec.split_once('=').ok_or_else(bad)?;
    let id = name
        .parse::<TenantId>()
        .map_err(|e| format!("tenant spec `{spec}`: {e}"))?;
    let parts: Vec<&str> = rest.split(':').collect();
    let [mech_name, m, eps, seed] = parts.as_slice() else {
        return Err(bad());
    };
    let m: usize = m.parse().map_err(|e| format!("tenant `{id}`: m: {e}"))?;
    let eps: f64 = eps
        .parse()
        .map_err(|e| format!("tenant `{id}`: eps: {e}"))?;
    let seed: u64 = seed
        .parse()
        .map_err(|e| format!("tenant `{id}`: seed: {e}"))?;
    let mechanism =
        build_mechanism(mech_name, m, eps, seed).map_err(|e| format!("tenant `{id}`: {e}"))?;
    Ok(TenantConfig::new(id, mechanism)
        .with_config_stamp(format!("mechanism={mech_name} m={m} eps={eps} seed={seed}")))
}

/// Collects tenant specs from `--tenants` (comma-separated) and
/// `--tenants-file` (one spec per line; `#` comments and blank lines
/// ignored), in that order.
fn collect_tenants(args: &CliArgs) -> Result<Vec<TenantConfig>, String> {
    let mut tenants = Vec::new();
    if let Some(list) = args.get("tenants") {
        for spec in list.split(',').filter(|s| !s.trim().is_empty()) {
            tenants.push(parse_tenant_spec(spec.trim())?);
        }
    }
    if let Some(path) = args.get("tenants-file") {
        let text =
            std::fs::read_to_string(path).map_err(|e| format!("--tenants-file {path}: {e}"))?;
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            tenants.push(parse_tenant_spec(line)?);
        }
    }
    Ok(tenants)
}

/// Builds a single-item mechanism exactly like `ingest`/`push` do: paper
/// default budgets over RNG stream `(seed, 1)`.
fn build_mechanism(
    mechanism_name: &str,
    m: usize,
    eps: f64,
    seed: u64,
) -> Result<Arc<dyn Mechanism>, String> {
    let levels = super::stream_levels(m, eps, seed)?;
    let ctx = BuildContext {
        levels: &levels,
        padding: 0,
        solver: None,
    };
    let mechanism = MechanismRegistry::standard()
        .build_single_item(mechanism_name, &ctx)
        .map_err(|e| e.to_string())?;
    // Box<dyn BatchMechanism> → Arc<dyn BatchMechanism> → upcast.
    Ok(Arc::<dyn idldp_sim::BatchMechanism>::from(mechanism))
}

/// Runs the subcommand. Blocks until the process is killed.
pub fn run(args: &CliArgs) -> Result<(), String> {
    let m: usize = args.parse_or("m", 64)?;
    let eps: f64 = args.parse_or("eps", 1.0)?;
    let seed: u64 = args.parse_or("seed", 20200401)?;
    let mechanism_name = args.get_or("mechanism", "oue");
    let host = args.get_or("host", "127.0.0.1");
    let port: u16 = args.parse_or("port", 0)?;
    let shards: usize = args.parse_or("shards", idldp_sim::stream::DEFAULT_SHARDS)?;
    let queue_capacity: usize = args.parse_or("queue-capacity", 65_536)?;
    let ingest_workers: usize = args.parse_or("ingest-workers", 2)?;
    let workers: usize = args.parse_or("workers", 4)?;
    let engine = match args.get("engine") {
        None => ConnectionEngine::default(),
        Some(v) => v
            .parse::<ConnectionEngine>()
            .map_err(|e| format!("flag --engine: {e}"))?,
    };
    let idle_timeout_ms: u64 = args.parse_or("idle-timeout-ms", 60_000)?;
    let checkpoint = args.get("checkpoint");
    let checkpoint_store = args
        .get_or("checkpoint-store", "file")
        .parse::<idldp_core::snapshot::StoreKind>()
        .map_err(|e| format!("flag --checkpoint-store: {e}"))?;
    if shards == 0 || queue_capacity == 0 || ingest_workers == 0 || workers == 0 {
        return Err(
            "--shards, --queue-capacity, --ingest-workers, and --workers must be positive".into(),
        );
    }

    let mechanism = build_mechanism(&mechanism_name, m, eps, seed)?;
    let tenants = collect_tenants(args)?;

    let mut builder = ServerConfig::builder()
        .addr(format!("{host}:{port}"))
        .shards(shards)
        .queue_capacity(queue_capacity)
        .ingest_workers(ingest_workers)
        .connection_workers(workers)
        .engine(engine)
        // `0` disables reaping; anything else is the per-frame deadline.
        .idle_timeout((idle_timeout_ms > 0).then(|| Duration::from_millis(idle_timeout_ms)))
        .checkpoint_store(checkpoint_store)
        // Everything that went into *building* the mechanism, so a restart
        // under different flags refuses the old checkpoint.
        .config_stamp(format!(
            "mechanism={mechanism_name} m={m} eps={eps} seed={seed}"
        ));
    if let Some(path) = checkpoint {
        builder = builder.checkpoint_path(path);
    }
    let tenant_summaries: Vec<String> = tenants.iter().map(TenantConfig::summary_line).collect();
    for tenant in tenants {
        builder = builder.tenant(tenant);
    }
    let config = builder.build().map_err(|e| e.to_string())?;
    let server = ReportServer::start(Arc::clone(&mechanism), config).map_err(|e| e.to_string())?;

    println!(
        "serve: mechanism = {mechanism_name} ({} reports, width {}), m = {m}, eps = {eps}, \
         shards = {shards}, queue = {queue_capacity}, workers = {workers}+{ingest_workers}, \
         engine = {engine}",
        mechanism.report_shape().label(),
        mechanism.report_len()
    );
    for summary in &tenant_summaries {
        println!("serve: tenant {summary}");
    }
    if server.num_users() > 0 {
        println!(
            "serve: restored {} users from checkpoint `{}`",
            server.num_users(),
            checkpoint.unwrap_or_default()
        );
    }
    println!("serve: listening on {}", server.local_addr());
    // Scripts (the CI loopback smoke) scrape the port from a piped stdout;
    // flush past the pipe's block buffering before parking forever.
    std::io::stdout().flush().map_err(|e| e.to_string())?;

    // The listener, worker pool, and ingest threads do all the work; this
    // thread only keeps the process alive until it is killed.
    loop {
        std::thread::park();
    }
}
