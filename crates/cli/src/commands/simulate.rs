//! `idldp simulate` — run a frequency-estimation experiment.
//!
//! Mechanisms are selected purely by name (`--mechanisms rappor,oue,...`)
//! and resolved through the [`MechanismRegistry`] — this command contains no
//! per-mechanism dispatch, so newly registered protocols are immediately
//! runnable from the command line.

use crate::args::CliArgs;
use idldp_core::budget::Epsilon;
use idldp_data::budgets::BudgetScheme;
use idldp_data::synthetic;
use idldp_num::rng::stream_rng;
use idldp_sim::report::{sci, TextTable};
use idldp_sim::{BuildContext, MechanismRegistry, SimulationMode, SingleItemExperiment};

/// Runs the subcommand.
pub fn run(args: &CliArgs) -> Result<(), String> {
    let n: usize = args.parse_or("n", 100_000)?;
    let m: usize = args.parse_or("m", 100)?;
    let eps: f64 = args.parse_or("eps", 1.0)?;
    let trials: usize = args.parse_or("trials", 10)?;
    let seed: u64 = args.parse_or("seed", 20200401)?;
    let dataset_kind = args.get_or("dataset", "powerlaw");
    let model = args.get_or("model", "opt0");
    let mechanisms = args.get_or("mechanisms", &format!("rappor,oue,idue-{model}"));
    let mode = match args.get_or("path", "exact").as_str() {
        "exact" => SimulationMode::Exact,
        "aggregate" => SimulationMode::Aggregate,
        other => return Err(format!("unknown path `{other}` (expected exact|aggregate)")),
    };

    let dataset = match dataset_kind.as_str() {
        "powerlaw" => synthetic::power_law_with(&mut stream_rng(seed, 0), n, m, 2.0),
        "uniform" => synthetic::uniform_with(&mut stream_rng(seed, 0), n, m),
        other => {
            return Err(format!(
                "unknown dataset `{other}` (expected powerlaw|uniform)"
            ))
        }
    };
    let base = Epsilon::new(eps).map_err(|e| e.to_string())?;
    let levels = BudgetScheme::paper_default()
        .assign(m, base, &mut stream_rng(seed, 1))
        .map_err(|e| e.to_string())?;

    let registry = MechanismRegistry::standard();
    let ctx = BuildContext {
        levels: &levels,
        padding: 0,
        solver: None,
    };
    let named = mechanisms
        .split(',')
        .map(|name| {
            let name = name.trim();
            registry
                .build_single_item(name, &ctx)
                .map(|mech| (name.to_string(), mech))
                .map_err(|e| e.to_string())
        })
        .collect::<Result<Vec<_>, String>>()?;

    println!(
        "simulate: dataset = {dataset_kind}, n = {n}, m = {m}, eps = {eps}, \
         budgets {{eps,1.2eps,2eps,4eps}} @ {{5,5,5,85}}%, trials = {trials}"
    );
    let results = SingleItemExperiment::new(&dataset, levels, trials, seed)
        .with_mode(mode)
        .run_mechanisms(&named)
        .map_err(|e| e.to_string())?;

    let mut table = TextTable::new(&[
        "mechanism",
        "empirical MSE",
        "theoretical MSE",
        "stderr",
        "actual LDP eps",
    ]);
    for r in &results {
        table.row(vec![
            r.name.clone(),
            sci(r.empirical_mse),
            sci(r.theoretical_mse),
            sci(r.empirical_mse_stderr),
            format!("{:.4}", r.ldp_epsilon),
        ]);
    }
    print!("{}", table.render());
    Ok(())
}
