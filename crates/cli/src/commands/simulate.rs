//! `idldp simulate` — run a frequency-estimation experiment.
//!
//! Mechanisms are selected purely by name (`--mechanisms rappor,oue,...`)
//! and resolved through the [`MechanismRegistry`] — this command contains no
//! per-mechanism dispatch, so newly registered protocols are immediately
//! runnable from the command line.

use crate::args::CliArgs;
use idldp_sim::report::{sci, TextTable};
use idldp_sim::{
    BuildContext, MechanismRegistry, SimulationMode, SimulationPipeline, SingleItemExperiment,
};

/// Runs the subcommand.
pub fn run(args: &CliArgs) -> Result<(), String> {
    let n: usize = args.parse_or("n", 100_000)?;
    let m: usize = args.parse_or("m", 100)?;
    let eps: f64 = args.parse_or("eps", 1.0)?;
    let trials: usize = args.parse_or("trials", 10)?;
    let seed: u64 = args.parse_or("seed", 20200401)?;
    let dataset_kind = args.get_or("dataset", "powerlaw");
    let model = args.get_or("model", "opt0");
    let mechanisms = args.get_or("mechanisms", &format!("rappor,oue,idue-{model}"));
    let mode = match args.get_or("path", "exact").as_str() {
        "exact" => SimulationMode::Exact,
        "aggregate" => SimulationMode::Aggregate,
        other => return Err(format!("unknown path `{other}` (expected exact|aggregate)")),
    };

    // The shared workload derivation (`super::stream_workload`) keeps this
    // command, `ingest`, and `push` on identical RNG streams — which is
    // what makes `--estimates` output diffable against a push to a live
    // server.
    let workload = super::stream_workload(&dataset_kind, n, m, eps, seed)?;

    let registry = MechanismRegistry::standard();
    let ctx = BuildContext {
        levels: &workload.levels,
        padding: 0,
        solver: None,
    };
    let named = mechanisms
        .split(',')
        .map(|name| {
            let name = name.trim();
            registry
                .build_single_item(name, &ctx)
                .map(|mech| (name.to_string(), mech))
                .map_err(|e| e.to_string())
        })
        .collect::<Result<Vec<_>, String>>()?;

    // `--estimates`: skip the multi-trial MSE experiment and print one
    // deterministic per-item estimate vector per mechanism, bit-exact
    // (`users` / `estimate` lines) — the local reference the CI
    // `server-loopback` step diffs `idldp push` output against. The batch
    // pipeline shares the report stream's chunk grid, so the counts (and
    // hence the estimate bits) match a chunked push of the same flags.
    if args.get("estimates").is_some() {
        let chunk: usize = args.parse_or("chunk", idldp_sim::stream::DEFAULT_CHUNK_SIZE)?;
        if chunk == 0 {
            return Err("--chunk must be positive".into());
        }
        let pipeline = SimulationPipeline::new().with_chunk_size(chunk);
        for (name, mech) in &named {
            let snapshot = pipeline
                .run_snapshot(
                    mech.as_ref(),
                    workload.dataset.input_batch(),
                    workload.stream_seed,
                )
                .map_err(|e| e.to_string())?;
            let users = snapshot.num_users();
            let estimates = if users == 0 {
                Vec::new()
            } else {
                mech.frequency_oracle(users)
                    .estimate_from(&snapshot)
                    .map_err(|e| e.to_string())?
            };
            println!("mechanism {name}");
            super::print_estimate_lines(users, &estimates);
        }
        return Ok(());
    }

    println!(
        "simulate: dataset = {dataset_kind}, n = {n}, m = {m}, eps = {eps}, \
         budgets {{eps,1.2eps,2eps,4eps}} @ {{5,5,5,85}}%, trials = {trials}"
    );
    let results = SingleItemExperiment::new(&workload.dataset, workload.levels, trials, seed)
        .with_mode(mode)
        .run_mechanisms(&named)
        .map_err(|e| e.to_string())?;

    let mut table = TextTable::new(&[
        "mechanism",
        "empirical MSE",
        "theoretical MSE",
        "stderr",
        "actual LDP eps",
    ]);
    for r in &results {
        table.row(vec![
            r.name.clone(),
            sci(r.empirical_mse),
            sci(r.theoretical_mse),
            sci(r.empirical_mse_stderr),
            format!("{:.4}", r.ldp_epsilon),
        ]);
    }
    print!("{}", table.render());
    Ok(())
}
