//! `idldp solve` — solve IDUE perturbation probabilities.

use super::{levels_from_flags, model_from_flag, r_from_flag};
use crate::args::CliArgs;
use idldp_opt::{worst_case_objective, IdueSolver};

/// Runs the subcommand.
pub fn run(args: &CliArgs) -> Result<(), String> {
    let budgets = args.require_f64_list("budgets")?;
    let counts = args.require_usize_list("counts")?;
    let levels = levels_from_flags(&budgets, &counts)?;
    let model = model_from_flag(&args.get_or("model", "opt0"))?;
    let r = r_from_flag(&args.get_or("r", "min"))?;

    let solver = IdueSolver::new(model).with_r(r);
    let params = solver.solve(&levels).map_err(|e| e.to_string())?;

    println!(
        "model = {}, r = {}, t = {} levels, m = {} items",
        model.name(),
        r.name(),
        levels.num_levels(),
        levels.num_items()
    );
    println!();
    println!("level |     eps |  m_i |        a |        b | flip(1->0) | flip(0->1)");
    println!("{}", "-".repeat(74));
    for i in 0..levels.num_levels() {
        println!(
            "{i:>5} | {:>7.4} | {:>4} | {:>8.5} | {:>8.5} | {:>10.5} | {:>10.5}",
            budgets[i],
            counts[i],
            params.a()[i],
            params.b()[i],
            1.0 - params.a()[i],
            params.b()[i],
        );
    }
    println!();
    let (worst_ratio, pair) = params.max_pair_ratio();
    println!(
        "worst-case objective (Eq. 10, x n): {:.4}",
        worst_case_objective(&params, &counts)
    );
    println!("tightest plain-LDP budget: {worst_ratio:.4} (attained by level pair {pair:?})");
    Ok(())
}
