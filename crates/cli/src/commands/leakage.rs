//! `idldp leakage` — Table-I-style prior–posterior leakage bounds.

use crate::args::CliArgs;
use idldp_core::budget::BudgetSet;
use idldp_core::leakage;
use idldp_core::relations;

/// Runs the subcommand.
pub fn run(args: &CliArgs) -> Result<(), String> {
    let budgets = args.require_f64_list("budgets")?;
    let set = BudgetSet::from_values(&budgets).map_err(|e| e.to_string())?;

    println!("prior-posterior leakage bounds Pr(x)/Pr(x|y) under MinID-LDP:");
    println!();
    println!("input |    eps_x | effective | lower bound | upper bound");
    println!("{}", "-".repeat(60));
    for (x, &eps) in budgets.iter().enumerate() {
        let bound = leakage::min_id_ldp_bound(&set, x).map_err(|e| e.to_string())?;
        let effective = eps.min(2.0 * set.min().get());
        println!(
            "{x:>5} | {eps:>8.4} | {effective:>9.4} | {:>11.4} | {:>11.4}",
            bound.lower, bound.upper
        );
    }
    println!();
    let summary = relations::lemma_one_summary(&set).map_err(|e| e.to_string())?;
    println!(
        "Lemma 1: E-MinID-LDP implies {:.4}-LDP (min(E) = {:.4}, max(E) = {:.4}, relaxation x{:.2})",
        summary.implied_ldp, summary.min_budget, summary.max_budget, summary.relaxation
    );
    println!(
        "for comparison, plain LDP at min(E) bounds every input by [{:.4}, {:.4}]",
        leakage::ldp_bound(set.min()).lower,
        leakage::ldp_bound(set.min()).upper
    );
    Ok(())
}
