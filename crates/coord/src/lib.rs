//! # `idldp-coord` — the multi-collector coordinator
//!
//! One `idldp-server` collector shards its accumulator *within* a
//! process; this crate shards the stream *across* N collector processes
//! and keeps every answer bit-identical to a single batch run. The whole
//! design leans on one law, proven by the stream-layer proptests: integer
//! report counts commute under any partition —
//! `AccumulatorSnapshot::merge` of per-collector counts equals the counts
//! of an unsharded run, exactly. Calibrated float estimates do *not*
//! commute, which dictates the architecture: route raw reports out,
//! fetch raw counts back, merge, and estimate **once** over the merged
//! vector.
//!
//! * [`Coordinator`] — the registration, routing, and merge engine.
//!   Registration connects a [`ReportClient`] to each collector and
//!   compares its `HelloAck` run-identity line against the line this
//!   coordinator's own config produces (a parsed
//!   [`idldp_core::identity::RunIdentity`]): a
//!   collector running a different mechanism, domain size, ε, or seed is
//!   refused at registration, not discovered as garbage estimates later.
//!   Routing sends each report frame to one collector (weighted
//!   round-robin); a `Busy` collector keeps its accepted prefix and the
//!   *remainder spills to the next collector* instead of burning a retry
//!   budget against the stuck one — total accepted stays a contiguous
//!   prefix of the frame, so the coordinator's own `Busy` replies obey
//!   the protocol contract and an upstream `push_all` converges. Queries
//!   fetch per-collector snapshots over [`Frame::SnapshotQuery`], merge
//!   them, and run the frequency oracle once; distributed top-k unions
//!   the collectors' `Candidates` replies with the merged-estimate top-k
//!   and re-ranks with the shared NaN-safe ordering
//!   ([`merge_candidates`]), which provably equals batch
//!   `identify_top_k`.
//! * [`CoordServer`] — the TCP frontend. It speaks the *same* framed
//!   protocol as a collector (handshake validated by the server crate's
//!   [`idldp_server::check_hello`], replies encoded by its
//!   [`idldp_server::encode_reply`]), so every existing client — `idldp
//!   push`, `ReportClient`, the loopback harness — works against a
//!   coordinator unchanged.
//!
//! Failure rules (exactness over availability): a query is answered only
//! if **every** collector answers — one unreachable or paused collector
//! draws a typed `Reject`, never a silently partial estimate. Routing
//! keeps accepting while at least one collector has capacity; reports
//! are never dropped or double-sent (each spill forwards exactly the
//! unaccepted tail). Coordinated checkpoints fan a `Checkpoint` frame to
//! every collector and record the per-collector user counts as the
//! generation vector.

#![deny(missing_docs)]

use idldp_core::identity::{RunIdentity, TenantId};
use idldp_core::mechanism::Mechanism;
use idldp_core::report::ReportData;
use idldp_core::snapshot::AccumulatorSnapshot;
use idldp_num::vecops::{cmp_desc_nan_last, top_k_indices};
use idldp_server::{
    check_hello, encode_reply, hello_tenant, ClientError, Frame, PushOutcome, ReportClient,
};
use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

/// Coordinator-side failures.
#[derive(Debug)]
pub enum CoordError {
    /// A coordinator needs at least one collector (and positive weights).
    Config(String),
    /// A collector connection failed at the transport or protocol level.
    Collector {
        /// The collector's address.
        addr: String,
        /// What went wrong.
        detail: String,
    },
    /// A collector's run-identity line disagrees with the coordinator's
    /// config — a mixed fleet would merge meaningless counts.
    IdentityMismatch {
        /// The mismatched collector's address.
        addr: String,
        /// The line the collector announced.
        got: String,
        /// The line this coordinator's config produces.
        want: String,
    },
    /// A collector answered a typed `Reject`.
    Rejected {
        /// The rejecting collector's address.
        addr: String,
        /// Reports of the current frame accepted (anywhere) before the
        /// refusal.
        accepted: u64,
        /// The collector's reason.
        message: String,
    },
    /// Merging or estimating over the fetched snapshots failed.
    Merge(String),
}

impl std::fmt::Display for CoordError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CoordError::Config(detail) => write!(f, "coordinator config: {detail}"),
            CoordError::Collector { addr, detail } => {
                write!(f, "collector {addr}: {detail}")
            }
            CoordError::IdentityMismatch { addr, got, want } => write!(
                f,
                "collector {addr} runs `{got}`, coordinator expects `{want}`"
            ),
            CoordError::Rejected {
                addr,
                accepted,
                message,
            } => write!(
                f,
                "collector {addr} rejected (accepted {accepted}): {message}"
            ),
            CoordError::Merge(detail) => write!(f, "merge: {detail}"),
        }
    }
}

impl std::error::Error for CoordError {}

/// Per-collector routing statistics, surfaced so saturation is
/// observable: which collector absorbed how much, how often it pushed
/// back, and how many reports had to spill *away* from it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CollectorStats {
    /// The collector's address as registered.
    pub addr: String,
    /// Round-robin weight (consecutive frames per turn).
    pub weight: usize,
    /// Reports this collector accepted.
    pub accepted: u64,
    /// `Busy` replies this collector returned.
    pub busy_replies: u64,
    /// Reports that arrived here as spill from a busy collector.
    pub spilled_in: u64,
}

struct Collector {
    client: ReportClient,
    stats: CollectorStats,
}

/// The registration, routing, and merge engine. See the crate docs for
/// the design; [`CoordServer`] puts this behind a socket.
pub struct Coordinator {
    mechanism: Arc<dyn Mechanism>,
    run_line: String,
    collectors: Vec<Collector>,
    /// Weighted round-robin position: next collector index …
    cursor: usize,
    /// … and how many frames it has already taken this turn.
    cursor_spent: usize,
    /// Users absorbed: restored at registration + routed since.
    users: u64,
    /// Per-collector user counts of the last coordinated checkpoint.
    last_generation: Option<Vec<u64>>,
}

impl Coordinator {
    /// Connects to and registers every collector. `collectors` is a list
    /// of `(address, weight)` pairs; weight is the number of consecutive
    /// report frames the collector takes per round-robin turn (capacity
    /// proportioning — any split is exact, so weights only shape load).
    ///
    /// Each collector's `HelloAck` run-identity line must parse to the
    /// exact [`RunIdentity`] this coordinator's own
    /// `(mechanism, config_stamp)` produces — the stamp carries the
    /// CLI-level `mechanism=… m=… eps=… seed=…`, so a collector started
    /// under a different seed or ε is refused here. The comparison is the
    /// typed struct, not string bytes, so the check cannot drift from the
    /// format the server and the checkpoint stores share.
    ///
    /// Returns the coordinator and the total users already absorbed
    /// across the fleet (nonzero when collectors restored checkpoints).
    ///
    /// # Errors
    /// Empty fleet, zero weights, connection failures, or an identity
    /// mismatch.
    pub fn connect(
        mechanism: Arc<dyn Mechanism>,
        config_stamp: Option<&str>,
        collectors: &[(String, usize)],
    ) -> Result<(Self, u64), CoordError> {
        Self::connect_tenant(mechanism, config_stamp, collectors, None)
    }

    /// Like [`Self::connect`], but registers against the named tenant on
    /// every collector of a multi-tenant fleet (`None` is the default
    /// tenant). Each collector must host the tenant with exactly this
    /// coordinator's `(mechanism, config_stamp)` identity; a collector
    /// without the tenant, or hosting it under a different config, is
    /// refused at registration.
    ///
    /// # Errors
    /// Same conditions as [`Self::connect`], plus a typed
    /// [`CoordError::Collector`] when a collector rejects the tenant.
    pub fn connect_tenant(
        mechanism: Arc<dyn Mechanism>,
        config_stamp: Option<&str>,
        collectors: &[(String, usize)],
        tenant: Option<&TenantId>,
    ) -> Result<(Self, u64), CoordError> {
        if collectors.is_empty() {
            return Err(CoordError::Config("no collectors to register".into()));
        }
        if let Some((addr, _)) = collectors.iter().find(|(_, weight)| *weight == 0) {
            return Err(CoordError::Config(format!(
                "collector {addr} has weight 0 (weights must be positive)"
            )));
        }
        let want = RunIdentity::for_mechanism(
            RunIdentity::PRODUCER_SERVE,
            mechanism.as_ref(),
            config_stamp,
        );
        let mut registered = Vec::with_capacity(collectors.len());
        let mut users = 0u64;
        for (addr, weight) in collectors {
            let (client, restored) =
                ReportClient::connect_tenant(addr.as_str(), mechanism.as_ref(), tenant).map_err(
                    |e| CoordError::Collector {
                        addr: addr.clone(),
                        detail: e.to_string(),
                    },
                )?;
            // Typed comparison: an unparseable line is a mismatch too (a
            // pre-identity server cannot prove its config).
            let got = client.server_run_line();
            if got.parse::<RunIdentity>().ok().as_ref() != Some(&want) {
                return Err(CoordError::IdentityMismatch {
                    addr: addr.clone(),
                    got: got.to_string(),
                    want: want.to_string(),
                });
            }
            users += restored;
            registered.push(Collector {
                client,
                stats: CollectorStats {
                    addr: addr.clone(),
                    weight: *weight,
                    accepted: 0,
                    busy_replies: 0,
                    spilled_in: 0,
                },
            });
        }
        Ok((
            Self {
                mechanism,
                run_line: want.to_string(),
                collectors: registered,
                cursor: 0,
                cursor_spent: 0,
                users,
                last_generation: None,
            },
            users,
        ))
    }

    /// The fleet's run-identity line (every collector announced exactly
    /// this line at registration).
    pub fn run_line(&self) -> &str {
        &self.run_line
    }

    /// Registered collector count.
    pub fn num_collectors(&self) -> usize {
        self.collectors.len()
    }

    /// Users absorbed across the fleet: restored at registration plus
    /// every report routed since.
    pub fn users(&self) -> u64 {
        self.users
    }

    /// Per-collector routing statistics, in registration order.
    pub fn stats(&self) -> Vec<CollectorStats> {
        self.collectors.iter().map(|c| c.stats.clone()).collect()
    }

    /// The per-collector user counts recorded by the last
    /// [`Self::checkpoint`] (registration order), if one completed.
    pub fn last_generation(&self) -> Option<&[u64]> {
        self.last_generation.as_deref()
    }

    /// Advances the weighted round-robin cursor and returns the collector
    /// index that takes the next frame.
    fn pick(&mut self) -> usize {
        let idx = self.cursor;
        self.cursor_spent += 1;
        if self.cursor_spent >= self.collectors[idx].stats.weight {
            self.cursor = (idx + 1) % self.collectors.len();
            self.cursor_spent = 0;
        }
        idx
    }

    /// Routes one report frame. The frame goes to the round-robin-chosen
    /// collector; on `Busy { accepted }` the accepted prefix stays and
    /// the remainder spills to the next collector, on through the fleet.
    /// One pass, one push attempt per collector — the upstream client
    /// owns retry pacing, exactly as it does against a single server.
    ///
    /// Returns `Ingested` when every report landed, `Busy { accepted }`
    /// with the contiguous accepted prefix when the whole fleet is
    /// saturated — protocol-identical to a single collector, so
    /// `ReportClient::push_all` converges against a coordinator unchanged.
    ///
    /// # Errors
    /// [`CoordError::Rejected`] when a collector refuses the batch
    /// (invalid reports — nothing from the refused remainder was queued
    /// anywhere), [`CoordError::Collector`] on transport failure.
    pub fn route(&mut self, reports: &[ReportData]) -> Result<PushOutcome, CoordError> {
        let fleet = self.collectors.len();
        let first = self.pick();
        let mut rest = reports;
        let mut accepted_total = 0u64;
        for hop in 0..fleet {
            if rest.is_empty() {
                break;
            }
            let idx = (first + hop) % fleet;
            let collector = &mut self.collectors[idx];
            if hop > 0 {
                collector.stats.spilled_in += rest.len() as u64;
            }
            match collector.client.push(rest) {
                Ok(PushOutcome::Ingested) => {
                    collector.stats.accepted += rest.len() as u64;
                    accepted_total += rest.len() as u64;
                    rest = &[];
                }
                Ok(PushOutcome::Busy { accepted }) => {
                    collector.stats.busy_replies += 1;
                    collector.stats.accepted += accepted;
                    accepted_total += accepted;
                    rest = &rest[accepted as usize..];
                }
                Err(ClientError::Rejected { accepted, message }) => {
                    // A refusal validates whole-frame-atomically on the
                    // collector, so `accepted` is 0 in practice; forward
                    // whatever prefix landed anywhere before it.
                    self.users += accepted_total + accepted;
                    return Err(CoordError::Rejected {
                        addr: collector.stats.addr.clone(),
                        accepted: accepted_total + accepted,
                        message,
                    });
                }
                Err(e) => {
                    self.users += accepted_total;
                    return Err(CoordError::Collector {
                        addr: collector.stats.addr.clone(),
                        detail: e.to_string(),
                    });
                }
            }
        }
        self.users += accepted_total;
        if rest.is_empty() {
            Ok(PushOutcome::Ingested)
        } else {
            Ok(PushOutcome::Busy {
                accepted: accepted_total,
            })
        }
    }

    /// Fetches every collector's snapshot and merges them — the exact
    /// integer-count merge, identical to an unsharded accumulator over
    /// the union of the collectors' reports.
    ///
    /// # Errors
    /// Any collector failing or refusing (a paused collector's typed
    /// refusal propagates — exactness over availability).
    pub fn merged_snapshot(&mut self) -> Result<AccumulatorSnapshot, CoordError> {
        let mut merged: Option<AccumulatorSnapshot> = None;
        for collector in &mut self.collectors {
            let addr = collector.stats.addr.clone();
            let (users, counts) = collector
                .client
                .query_snapshot()
                .map_err(|e| collector_error(&addr, e))?;
            let snapshot = AccumulatorSnapshot::new(counts, users)
                .map_err(|e| CoordError::Merge(format!("collector {addr}: {e}")))?;
            match &mut merged {
                None => merged = Some(snapshot),
                Some(m) => m
                    .merge(&snapshot)
                    .map_err(|e| CoordError::Merge(format!("collector {addr}: {e}")))?,
            }
        }
        merged.ok_or_else(|| CoordError::Config("no collectors to query".into()))
    }

    /// Calibrated frequency estimates over the merged fleet snapshot —
    /// one oracle run over the merged counts, which is what makes the
    /// result bit-identical to a batch run (estimating per-collector and
    /// averaging would not be).
    ///
    /// # Errors
    /// Collector failures or an oracle error.
    pub fn query_estimates(&mut self) -> Result<(u64, Vec<f64>), CoordError> {
        let merged = self.merged_snapshot()?;
        let users = merged.num_users();
        if users == 0 {
            return Ok((0, Vec::new()));
        }
        self.mechanism
            .frequency_oracle(users)
            .estimate_from(&merged)
            .map(|estimates| (users, estimates))
            .map_err(|e| CoordError::Merge(e.to_string()))
    }

    /// Distributed top-k through the `Candidates` merge path: every
    /// collector's local top-k reply is unioned into a candidate pool,
    /// then re-ranked against the *merged* estimates with the shared
    /// NaN-safe ordering (see [`merge_candidates`] for why the result
    /// equals batch `identify_top_k` exactly).
    ///
    /// # Errors
    /// Collector failures or an oracle error.
    pub fn query_top_k(&mut self, k: usize) -> Result<(u64, Vec<(u64, f64)>), CoordError> {
        let (users, merged_estimates) = self.query_estimates()?;
        let mut locals = Vec::with_capacity(self.collectors.len());
        for collector in &mut self.collectors {
            let addr = collector.stats.addr.clone();
            let (_, items) = collector
                .client
                .query_top_k(k)
                .map_err(|e| collector_error(&addr, e))?;
            locals.push(items);
        }
        Ok((users, merge_candidates(&locals, &merged_estimates, k)))
    }

    /// Coordinated checkpoint: triggers a `Checkpoint` on every collector
    /// and records the per-collector covered user counts as the
    /// generation vector ([`Self::last_generation`]). Returns the total
    /// users covered across the fleet.
    ///
    /// # Errors
    /// Any collector failing or refusing (no checkpoint path, write
    /// error). Collectors that already checkpointed keep their files —
    /// the generation vector is only recorded when the whole fleet
    /// succeeded.
    pub fn checkpoint(&mut self) -> Result<u64, CoordError> {
        let mut generation = Vec::with_capacity(self.collectors.len());
        for collector in &mut self.collectors {
            let addr = collector.stats.addr.clone();
            let users = collector
                .client
                .checkpoint()
                .map_err(|e| collector_error(&addr, e))?;
            generation.push(users);
        }
        let total = generation.iter().sum();
        self.last_generation = Some(generation);
        Ok(total)
    }
}

fn collector_error(addr: &str, e: ClientError) -> CoordError {
    match e {
        ClientError::Rejected { accepted, message } => CoordError::Rejected {
            addr: addr.to_string(),
            accepted,
            message,
        },
        other => CoordError::Collector {
            addr: addr.to_string(),
            detail: other.to_string(),
        },
    }
}

/// Merges per-collector top-k `Candidates` replies into the exact global
/// top-k. The candidate pool is the union of every collector's local
/// candidates **plus** the top-k indices of the merged estimate vector;
/// the pool is ranked by the shared NaN-safe ordering
/// ([`cmp_desc_nan_last`], ties toward the smaller item) and truncated
/// to k.
///
/// Exactness: local top-k unions alone are *not* sufficient (an item can
/// be second everywhere yet first globally), but seeding the pool with
/// `top_k_indices(merged, k)` guarantees the true global top-k is in the
/// pool, and ranking the pool by the same total order `top_k_indices`
/// uses makes the first k of the pool equal the first k of the whole
/// domain — so the result is identical to batch `identify_top_k` on the
/// merged estimates. The union is still load-bearing as the conformance
/// surface: collectors' replies are validated against the exact ranking
/// they contribute to.
pub fn merge_candidates(
    locals: &[Vec<(u64, f64)>],
    merged_estimates: &[f64],
    k: usize,
) -> Vec<(u64, f64)> {
    let mut pool: Vec<usize> = locals
        .iter()
        .flatten()
        .map(|&(item, _)| item as usize)
        // Tolerate (ignore) candidates outside the merged domain rather
        // than panicking on a hostile or misconfigured collector.
        .filter(|&item| item < merged_estimates.len())
        .chain(top_k_indices(merged_estimates, k))
        .collect();
    pool.sort_unstable();
    pool.dedup();
    pool.sort_by(|&a, &b| {
        cmp_desc_nan_last(merged_estimates[a], merged_estimates[b]).then(a.cmp(&b))
    });
    pool.truncate(k);
    pool.into_iter()
        .map(|item| (item as u64, merged_estimates[item]))
        .collect()
}

/// The coordinator's TCP frontend: accepts framed-protocol connections
/// and serves them from a shared [`Coordinator`] (thread per connection;
/// routing and queries serialize on the coordinator lock, which is what
/// linearizes a query after every previously acknowledged push). Speaks
/// byte-identical protocol to a collector — handshake via
/// [`check_hello`], replies via [`encode_reply`] — so existing clients
/// work against it unchanged.
pub struct CoordServer {
    local_addr: SocketAddr,
    coordinator: Arc<Mutex<Coordinator>>,
    shutting_down: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
}

impl CoordServer {
    /// Binds `addr` (port 0 picks an ephemeral port) and starts serving.
    ///
    /// # Errors
    /// Bind failures.
    pub fn start<A: ToSocketAddrs>(
        coordinator: Coordinator,
        addr: A,
    ) -> Result<Self, std::io::Error> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let coordinator = Arc::new(Mutex::new(coordinator));
        let shutting_down = Arc::new(AtomicBool::new(false));
        let acceptor = {
            let coordinator = Arc::clone(&coordinator);
            let shutting_down = Arc::clone(&shutting_down);
            std::thread::spawn(move || {
                for stream in listener.incoming() {
                    if shutting_down.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    let coordinator = Arc::clone(&coordinator);
                    // Connection handlers exit when the client hangs up.
                    std::thread::spawn(move || serve_connection(stream, &coordinator));
                }
            })
        };
        Ok(Self {
            local_addr,
            coordinator,
            shutting_down,
            acceptor: Some(acceptor),
        })
    }

    /// The bound address (the ephemeral port under `--port 0`).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The shared coordinator — for stats and generation-vector
    /// inspection while serving.
    pub fn coordinator(&self) -> Arc<Mutex<Coordinator>> {
        Arc::clone(&self.coordinator)
    }

    /// Stops accepting new connections and joins the acceptor. Live
    /// connections finish when their clients hang up.
    pub fn shutdown(mut self) {
        self.shutting_down.store(true, Ordering::SeqCst);
        // Unblock the acceptor with a throwaway connection.
        let _ = TcpStream::connect(self.local_addr);
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
    }
}

fn write_frame(stream: &mut TcpStream, frame: &Frame) -> std::io::Result<()> {
    // `encode_reply` chunks oversized Estimates/Snapshot replies exactly
    // like a collector does; multi-frame replies are one write buffer.
    stream.write_all(&encode_reply(frame))?;
    stream.flush()
}

fn reject(message: impl Into<String>) -> Frame {
    Frame::Reject {
        accepted: 0,
        message: message.into(),
    }
}

/// Serves one frontend connection: Hello handshake, then the frame loop.
/// Every reply either comes from the coordinator's fleet operations or is
/// a typed `Reject` — a collector failure mid-query never silently
/// degrades an answer.
fn serve_connection(mut stream: TcpStream, coordinator: &Mutex<Coordinator>) {
    let _ = stream.set_nodelay(true);
    let mut read_half = match stream.try_clone() {
        Ok(half) => half,
        Err(_) => return,
    };

    // Handshake: same acceptance rule as a collector (shared code), plus
    // the coordinator's own run line in the ack.
    let hello = match Frame::read_from(&mut read_half) {
        Ok(Some(frame)) => frame,
        _ => return,
    };
    // The frontend exposes exactly one stream — the fleet it coordinates.
    // A Hello naming a tenant is refused before the config check, with a
    // message pointing at the right fix (multi-tenant selection happens
    // on the collectors, via `Coordinator::connect_tenant`).
    if let Some(name) = hello_tenant(&hello) {
        if !name.is_empty() {
            let _ = write_frame(
                &mut stream,
                &reject(format!(
                    "unknown tenant `{name}`: a coordinator frontend exposes a single \
                     stream — connect without a tenant"
                )),
            );
            return;
        }
    }
    let ack = {
        let coord = coordinator
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        match check_hello(coord.mechanism.as_ref(), &hello) {
            Ok(()) => Frame::HelloAck {
                users: coord.users(),
                run_line: coord.run_line().to_string(),
            },
            Err(message) => {
                let _ = write_frame(&mut stream, &reject(message));
                return;
            }
        }
    };
    if write_frame(&mut stream, &ack).is_err() {
        return;
    }

    loop {
        let frame = match Frame::read_from(&mut read_half) {
            Ok(Some(frame)) => frame,
            // Clean close or a decode error the protocol cannot recover
            // from (length-prefixed streams cannot resynchronise).
            _ => return,
        };
        let reply = {
            let mut coord = coordinator
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            match frame {
                Frame::Reports(reports) => match coord.route(&reports) {
                    Ok(PushOutcome::Ingested) => Frame::Ingested {
                        accepted: reports.len() as u64,
                    },
                    Ok(PushOutcome::Busy { accepted }) => Frame::Busy { accepted },
                    Err(CoordError::Rejected {
                        accepted, message, ..
                    }) => Frame::Reject { accepted, message },
                    Err(e) => reject(e.to_string()),
                },
                Frame::Query => match coord.query_estimates() {
                    Ok((users, estimates)) => Frame::Estimates { users, estimates },
                    Err(e) => reject(e.to_string()),
                },
                Frame::TopKQuery { k } => match coord.query_top_k(k as usize) {
                    Ok((users, items)) => Frame::Candidates { users, items },
                    Err(e) => reject(e.to_string()),
                },
                Frame::SnapshotQuery => match coord.merged_snapshot() {
                    Ok(merged) => Frame::Snapshot {
                        users: merged.num_users(),
                        total: merged.counts().len() as u64,
                        offset: 0,
                        counts: merged.counts().to_vec(),
                    },
                    Err(e) => reject(e.to_string()),
                },
                Frame::Checkpoint => match coord.checkpoint() {
                    Ok(users) => Frame::CheckpointAck { users },
                    Err(e) => reject(e.to_string()),
                },
                Frame::Hello { .. } => reject("connection is already negotiated"),
                other => reject(format!("unexpected frame on the coordinator: {other:?}")),
            }
        };
        if write_frame(&mut stream, &reply).is_err() {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// `merge_candidates` must equal `top_k_indices` over the merged
    /// estimates — including when locals are useless (empty or
    /// out-of-domain) and when NaNs and exact ties are in play.
    #[test]
    fn merge_candidates_equals_global_top_k() {
        let cases: Vec<(Vec<f64>, usize)> = vec![
            (vec![0.1, 0.5, 0.5, 0.3, f64::NAN, 0.5], 3),
            (vec![f64::NAN, f64::NAN, 1.0], 2),
            (vec![0.25; 8], 5),
            (vec![], 4),
            (vec![0.9, -0.1], 0),
            (vec![-0.0, 0.0, 0.7], 2),
        ];
        for (merged, k) in cases {
            let want: Vec<(u64, f64)> = top_k_indices(&merged, k)
                .into_iter()
                .map(|i| (i as u64, merged[i]))
                .collect();
            let locals_variants: Vec<Vec<Vec<(u64, f64)>>> = vec![
                vec![],
                vec![vec![]],
                // A local list naming out-of-domain and duplicate items.
                vec![vec![(999, 0.9), (0, 0.0)], vec![(0, 0.1)]],
                // Locals that already name the right answer.
                vec![want.clone()],
            ];
            for locals in locals_variants {
                let got = merge_candidates(&locals, &merged, k);
                assert_eq!(got.len(), want.len(), "merged={merged:?} k={k}");
                for (g, w) in got.iter().zip(&want) {
                    assert_eq!(g.0, w.0, "merged={merged:?} k={k}");
                    assert_eq!(
                        g.1.to_bits(),
                        w.1.to_bits(),
                        "merged={merged:?} k={k} item={}",
                        g.0
                    );
                }
            }
        }
    }

    /// The NaN-safe tie-break identity, spelled out: equal estimates rank
    /// by smaller item, NaN ranks last — matching `cmp_desc_nan_last`.
    #[test]
    fn merge_candidates_nan_and_tie_identity() {
        let merged = vec![0.5, f64::NAN, 0.5, 0.8];
        // Local candidates deliberately list NaN first.
        let locals = vec![vec![(1, f64::NAN), (3, 0.8)]];
        let got = merge_candidates(&locals, &merged, 4);
        let items: Vec<u64> = got.iter().map(|&(i, _)| i).collect();
        assert_eq!(items, vec![3, 0, 2, 1], "ties → smaller item, NaN last");
        assert!(got[3].1.is_nan());
    }
}
