//! Subset Selection (Wang–Wu–Hu'16 / Ye–Barg'18).
//!
//! The minimax-optimal single-item LDP protocol for mid-size domains: each
//! client reports a *subset* of `k` items, distributed so that every
//! size-`k` subset containing the true item is `e^ε` times as likely as
//! any subset that does not. Operationally:
//!
//! 1. include the true item with probability
//!    `p = k·e^ε / (k·e^ε + m − k)`;
//! 2. fill the rest of the subset uniformly with distinct other items.
//!
//! The wire report is the item set itself
//! ([`crate::report::ReportShape::ItemSet`]) — `k` small integers instead
//! of an `m`-bit vector — the second report shape the bit-vector-only
//! pipeline could not carry. Folded into per-item membership counts the
//! protocol has the Bernoulli structure
//!
//! ```text
//! Pr[v ∈ S | v true]  = p
//! Pr[v ∈ S | v other] = (k − p) / (m − 1)
//! ```
//!
//! so the Eq. 8 calibration applies directly. The *optimal* subset size is
//! `k = round(m / (e^ε + 1))`, which [`SubsetSelection::new`] picks.

use crate::budget::Epsilon;
use crate::error::{Error, Result};
use rand::{Rng, RngCore};
use serde::{Deserialize, Serialize};

/// The subset-selection mechanism over an item domain of size `m`.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct SubsetSelection {
    m: usize,
    k: usize,
    p: f64,
    eps: f64,
}

impl SubsetSelection {
    /// Creates subset selection at the optimal subset size
    /// `k = round(m / (e^ε + 1))`, clamped into `1..m`.
    ///
    /// # Errors
    /// Returns an error if `m < 2`.
    pub fn new(eps: Epsilon, m: usize) -> Result<Self> {
        if m < 2 {
            return Err(Error::Empty {
                what: "subset-selection domain (needs at least two items)".into(),
            });
        }
        let k = ((m as f64 / (eps.exp() + 1.0)).round() as usize).clamp(1, m - 1);
        Self::with_subset_size(eps, m, k)
    }

    /// Creates subset selection with an explicit subset size
    /// `1 <= k < m` (`k = 1` degenerates to GRR-like behavior).
    ///
    /// # Errors
    /// Returns an error if `m < 2` or `k` is outside `1..m`.
    pub fn with_subset_size(eps: Epsilon, m: usize, k: usize) -> Result<Self> {
        if m < 2 {
            return Err(Error::Empty {
                what: "subset-selection domain (needs at least two items)".into(),
            });
        }
        if k == 0 || k >= m {
            return Err(Error::IndexOutOfRange {
                what: "subset size k (need 1 <= k < m)".into(),
                index: k,
                bound: m,
            });
        }
        // `Epsilon` validates finite ε, but e^ε can still overflow to
        // infinity (ε ≳ 709), which would make p = inf/inf = NaN and panic
        // deep inside perturbation; reject it here instead.
        if !eps.exp().is_finite() {
            return Err(Error::InvalidEpsilon { value: eps.get() });
        }
        let ke = k as f64 * eps.exp();
        Ok(Self {
            m,
            k,
            p: ke / (ke + (m - k) as f64),
            eps: eps.get(),
        })
    }

    /// The reported subset size `k`.
    pub fn subset_size(&self) -> usize {
        self.k
    }

    /// Probability that the true item is included in the report.
    pub fn p(&self) -> f64 {
        self.p
    }

    /// Probability that any particular *other* item is included:
    /// `(k − p) / (m − 1)`.
    pub fn q(&self) -> f64 {
        (self.k as f64 - self.p) / (self.m - 1) as f64
    }

    /// Runs the client protocol, appending the `k` reported items to `out`
    /// in ascending order (the canonical wire form).
    ///
    /// `scratch` is caller-provided working space (cleared and resized
    /// internally) so batch callers amortize the `O(m)` candidate buffer.
    ///
    /// # Errors
    /// Returns an error if `input >= m`.
    pub fn perturb_into_set<R: Rng + ?Sized>(
        &self,
        input: usize,
        rng: &mut R,
        scratch: &mut Vec<usize>,
        out: &mut Vec<usize>,
    ) -> Result<()> {
        if input >= self.m {
            return Err(Error::IndexOutOfRange {
                what: "subset-selection input".into(),
                index: input,
                bound: self.m,
            });
        }
        out.clear();
        let include_true = rng.random_bool(self.p);
        let fill = if include_true {
            out.push(input);
            self.k - 1
        } else {
            self.k
        };
        if fill > 0 {
            // Uniform distinct draw of `fill` items from the m − 1 others:
            // partial Fisher–Yates over the candidate list.
            scratch.clear();
            scratch.extend((0..self.m).filter(|&v| v != input));
            for i in 0..fill {
                let j = rng.random_range(i..scratch.len());
                scratch.swap(i, j);
            }
            out.extend_from_slice(&scratch[..fill]);
        }
        out.sort_unstable();
        Ok(())
    }

    /// Convenience wrapper over [`Self::perturb_into_set`] returning a
    /// fresh vector.
    ///
    /// # Errors
    /// Returns an error if `input >= m`.
    pub fn perturb<R: Rng + ?Sized>(&self, input: usize, rng: &mut R) -> Result<Vec<usize>> {
        let mut out = Vec::with_capacity(self.k);
        self.perturb_with_shared_scratch(input, rng, &mut out)?;
        Ok(out)
    }

    /// [`Self::perturb_into_set`] against a thread-local candidate buffer,
    /// so per-report entry points (the trait's `perturb_into` /
    /// `perturb_data`, driven once per user by streams) reuse the `O(m)`
    /// scratch across calls instead of reallocating it — mechanisms are
    /// `Sync`, so the reuse must be per-thread.
    fn perturb_with_shared_scratch<R: Rng + ?Sized>(
        &self,
        input: usize,
        rng: &mut R,
        out: &mut Vec<usize>,
    ) -> Result<()> {
        thread_local! {
            static SCRATCH: std::cell::RefCell<Vec<usize>> =
                const { std::cell::RefCell::new(Vec::new()) };
        }
        SCRATCH.with(|scratch| self.perturb_into_set(input, rng, &mut scratch.borrow_mut(), out))
    }
}

// ---------------------------------------------------------------------------
// Unified trait layer
// ---------------------------------------------------------------------------

use crate::estimator::FrequencyEstimator;
use crate::mechanism::{
    check_item_input, check_report_width, BatchMechanism, BitProfile, CountAccumulator,
    FrequencyOracle, Input, InputBatch, InputKind, Mechanism,
};
use crate::oracle::CalibratingOracle;
use crate::report::{ReportData, ReportShape};

impl Mechanism for SubsetSelection {
    fn kind(&self) -> &'static str {
        "ss"
    }

    fn domain_size(&self) -> usize {
        self.m
    }

    /// The folded width: membership counts live over the item domain.
    fn report_len(&self) -> usize {
        self.m
    }

    fn input_kind(&self) -> InputKind {
        InputKind::Item
    }

    fn report_shape(&self) -> ReportShape {
        // The cardinality is pinned: every report is exactly k items, and
        // validators refuse any other size (a wrong-k set would fold
        // cleanly but bias the (p, (k−p)/(m−1)) calibration).
        ReportShape::ItemSet { k: self.k }
    }

    /// Writes the `k`-hot membership vector of the reported subset — the
    /// server-side fold. Draws randomness identically to
    /// [`Self::perturb_data`], which emits the compact item set.
    fn perturb_into(
        &self,
        input: Input<'_>,
        rng: &mut dyn RngCore,
        report: &mut [u8],
    ) -> Result<()> {
        let item = check_item_input(input, self.m)?;
        check_report_width(report, self.m)?;
        let mut chosen = Vec::with_capacity(self.k);
        self.perturb_with_shared_scratch(item, rng, &mut chosen)?;
        report.fill(0);
        for v in chosen {
            report[v] = 1;
        }
        Ok(())
    }

    fn perturb_data(&self, input: Input<'_>, rng: &mut dyn RngCore) -> Result<ReportData> {
        let item = check_item_input(input, self.m)?;
        // The returned ItemSet is the owned wire payload (k small values);
        // only the candidate scratch is reused.
        let mut chosen = Vec::with_capacity(self.k);
        self.perturb_with_shared_scratch(item, rng, &mut chosen)?;
        Ok(ReportData::ItemSet(chosen))
    }

    fn encode_hot(&self, input: Input<'_>, _rng: &mut dyn RngCore) -> Result<usize> {
        check_item_input(input, self.m)
    }

    fn ldp_epsilon(&self) -> f64 {
        // Pr[S | x ∈ S] / Pr[S | x ∉ S] = [p/(1−p)]·(m−k)/k = e^ε exactly.
        self.eps
    }

    fn frequency_oracle(&self, n: u64) -> Box<dyn FrequencyOracle> {
        let est = FrequencyEstimator::new(vec![self.p; self.m], vec![self.q(); self.m], n, 1.0)
            .expect("p > q for every positive budget and k < m");
        Box::new(CalibratingOracle::new(est, self.m).expect("widths match"))
    }

    fn bit_profile(&self) -> Option<BitProfile> {
        // Marginally exact per bucket (membership bits are negatively
        // correlated through the fixed subset size).
        Some(BitProfile {
            a: vec![self.p; self.m],
            b: vec![self.q(); self.m],
        })
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

impl BatchMechanism for SubsetSelection {
    /// Fast path: reuses one scratch/output pair across the whole batch and
    /// increments the chosen buckets directly, skipping the `m`-slot report
    /// buffer. Randomness flows through the same
    /// [`SubsetSelection::perturb_into_set`] as the per-user loop, so
    /// batch ≡ loop bit for bit.
    fn perturb_batch(
        &self,
        batch: InputBatch<'_>,
        rng: &mut dyn RngCore,
        acc: &mut CountAccumulator,
    ) -> Result<()> {
        let InputBatch::Items(items) = batch else {
            check_item_input(Input::Set(&[]), self.m)?;
            unreachable!("set inputs are rejected above");
        };
        if acc.counts().len() != self.m {
            return Err(Error::DimensionMismatch {
                what: "batch accumulator".into(),
                expected: self.m,
                actual: acc.counts().len(),
            });
        }
        let mut scratch = Vec::new();
        let mut chosen = Vec::with_capacity(self.k);
        for &item in items {
            self.perturb_into_set(item as usize, rng, &mut scratch, &mut chosen)?;
            for &v in &chosen {
                acc.add_bit(v);
            }
            acc.add_user();
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use idldp_num::rng::SplitMix64;

    fn eps(v: f64) -> Epsilon {
        Epsilon::new(v).unwrap()
    }

    #[test]
    fn optimal_subset_size() {
        // k = round(m/(e^ε+1)): ε = ln 3 → m/4.
        let ss = SubsetSelection::new(eps(3.0_f64.ln()), 40).unwrap();
        assert_eq!(ss.subset_size(), 10);
        // Large ε clamps to k = 1; tiny domains stay valid.
        assert_eq!(SubsetSelection::new(eps(8.0), 10).unwrap().subset_size(), 1);
        assert_eq!(SubsetSelection::new(eps(0.1), 2).unwrap().subset_size(), 1);
    }

    #[test]
    fn rejects_degenerate_parameters() {
        assert!(SubsetSelection::new(eps(1.0), 1).is_err());
        assert!(SubsetSelection::with_subset_size(eps(1.0), 5, 0).is_err());
        assert!(SubsetSelection::with_subset_size(eps(1.0), 5, 5).is_err());
        assert!(SubsetSelection::with_subset_size(eps(1.0), 5, 4).is_ok());
        // ε is finite but e^ε overflows: must error, not produce NaN
        // probabilities that panic at perturb time.
        assert!(SubsetSelection::new(eps(710.0), 10).is_err());
        assert!(SubsetSelection::with_subset_size(eps(710.0), 10, 3).is_err());
    }

    #[test]
    fn reports_are_sorted_distinct_size_k() {
        let ss = SubsetSelection::with_subset_size(eps(1.0), 12, 4).unwrap();
        let mut rng = SplitMix64::new(5);
        assert!(ss.perturb(12, &mut rng).is_err());
        for _ in 0..200 {
            let s = ss.perturb(3, &mut rng).unwrap();
            assert_eq!(s.len(), 4);
            assert!(s.windows(2).all(|w| w[0] < w[1]), "sorted distinct: {s:?}");
            assert!(s.iter().all(|&v| v < 12));
        }
    }

    #[test]
    fn membership_rates_match_p_and_q() {
        let ss = SubsetSelection::with_subset_size(eps(1.5), 10, 3).unwrap();
        let mut rng = SplitMix64::new(6);
        let trials = 40_000;
        let mut hist = [0u32; 10];
        for _ in 0..trials {
            for v in ss.perturb(2, &mut rng).unwrap() {
                hist[v] += 1;
            }
        }
        let true_rate = f64::from(hist[2]) / f64::from(trials);
        assert!(
            (true_rate - ss.p()).abs() < 0.01,
            "true-item rate {true_rate} vs p {}",
            ss.p()
        );
        for (v, &h) in hist.iter().enumerate() {
            if v == 2 {
                continue;
            }
            let rate = f64::from(h) / f64::from(trials);
            assert!((rate - ss.q()).abs() < 0.01, "item {v} rate {rate}");
        }
        // Rates are consistent: p + (m−1)q = k.
        assert!((ss.p() + 9.0 * ss.q() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn trait_report_is_membership_vector_of_wire_set() {
        let ss = SubsetSelection::new(eps(1.0), 15).unwrap();
        let mut r1 = SplitMix64::new(44);
        let mut r2 = SplitMix64::new(44);
        let report = ss.perturb_report(Input::Item(6), &mut r1).unwrap();
        let data = ss.perturb_data(Input::Item(6), &mut r2).unwrap();
        let ReportData::ItemSet(items) = data else {
            panic!("subset selection must emit item sets, got {data:?}");
        };
        let mut folded = vec![0u8; 15];
        for &v in &items {
            folded[v] = 1;
        }
        assert_eq!(report, folded, "perturb_into ≡ fold(perturb_data)");
        assert_eq!(items.len(), ss.subset_size());
        assert_eq!(
            ss.report_shape(),
            ReportShape::ItemSet {
                k: ss.subset_size()
            },
            "the declared shape pins the exact cardinality"
        );
    }

    #[test]
    fn estimates_are_unbiased() {
        let m = 12;
        let ss = SubsetSelection::new(eps(1.0), m).unwrap();
        let n = 4000usize;
        let items: Vec<u32> = (0..n).map(|i| if i % 4 == 0 { 1 } else { 9 }).collect();
        let trials = 30u64;
        let oracle = ss.frequency_oracle(n as u64);
        let mut mean = vec![0.0; m];
        for t in 0..trials {
            let mut rng = SplitMix64::new(300 + t);
            let mut acc = CountAccumulator::new(m);
            ss.perturb_batch(InputBatch::Items(&items), &mut rng, &mut acc)
                .unwrap();
            for (s, e) in mean.iter_mut().zip(oracle.estimate(acc.counts()).unwrap()) {
                *s += e / trials as f64;
            }
        }
        assert!(
            (mean[1] - n as f64 / 4.0).abs() < 0.05 * n as f64,
            "{mean:?}"
        );
        assert!(
            (mean[9] - 3.0 * n as f64 / 4.0).abs() < 0.05 * n as f64,
            "{mean:?}"
        );
        assert!(mean[0].abs() < 0.05 * n as f64, "{mean:?}");
    }
}
