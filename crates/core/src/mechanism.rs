//! The unified mechanism trait layer.
//!
//! Every LDP protocol in this workspace — [`crate::grr`], [`crate::ue`],
//! [`crate::idue`], [`crate::ps`], [`crate::idue_ps`] and
//! [`crate::matrix_mech`] — implements the same three-trait contract:
//!
//! * [`Mechanism`] — the client side: perturb one input into a fixed-width
//!   report vector. Object-safe, so simulation runners, the CLI, and the
//!   bench harness all work with `dyn Mechanism` and adding a protocol never
//!   adds a `match` arm anywhere above `idldp-core`.
//! * [`BatchMechanism`] — perturb a whole slice of inputs with one RNG and
//!   one [`CountAccumulator`]. The default implementation loops
//!   [`Mechanism::perturb_into`] over a reused report buffer; GRR and the
//!   unary-encoding family override it with fast paths that hoist the
//!   probability lookups and skip the intermediate report buffer while
//!   drawing randomness in *exactly* the same order (batch ≡ loop, bit for
//!   bit — asserted by the conformance suite).
//! * [`FrequencyOracle`] — the server side: calibrate accumulated counts
//!   into unbiased frequency estimates and predict their MSE. Subsumes the
//!   concrete [`crate::estimator::FrequencyEstimator`], which backs the
//!   oracle of every unary-encoding mechanism.
//!
//! The split matches the paper's Fig. 2 pipeline: *encode → perturb*
//! (client, [`Mechanism`]) and *aggregate → calibrate* (server,
//! [`FrequencyOracle`]), with [`Mechanism::encode_hot`] and
//! [`Mechanism::bit_profile`] exposing the structure that the fast
//! aggregate simulation path exploits.

use crate::error::{Error, Result};
use crate::report::{ReportData, ReportShape};
use crate::snapshot::AccumulatorSnapshot;
use rand::RngCore;

/// One client's private input.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Input<'a> {
    /// A single item index in `0..domain_size`.
    Item(usize),
    /// A set of distinct item indices (stored as `u32`, matching
    /// `idldp-data`'s compact dataset layout).
    Set(&'a [u32]),
}

/// The input kind a mechanism accepts.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum InputKind {
    /// Single-item inputs ([`Input::Item`]).
    Item,
    /// Item-set inputs ([`Input::Set`]).
    Set,
}

impl Input<'_> {
    /// The kind of this input.
    pub fn kind(&self) -> InputKind {
        match self {
            Input::Item(_) => InputKind::Item,
            Input::Set(_) => InputKind::Set,
        }
    }
}

/// A batch of client inputs, borrowing a dataset's storage.
#[derive(Clone, Copy, Debug)]
pub enum InputBatch<'a> {
    /// One item per user.
    Items(&'a [u32]),
    /// One set per user.
    Sets(&'a [Vec<u32>]),
}

impl InputBatch<'_> {
    /// Number of users in the batch.
    pub fn len(&self) -> usize {
        match self {
            InputBatch::Items(items) => items.len(),
            InputBatch::Sets(sets) => sets.len(),
        }
    }

    /// `true` if the batch has no users.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The input kind of the batch.
    pub fn kind(&self) -> InputKind {
        match self {
            InputBatch::Items(_) => InputKind::Item,
            InputBatch::Sets(_) => InputKind::Set,
        }
    }
}

/// Per-bit Bernoulli decomposition of a mechanism's report distribution:
/// bucket `i` of a report is 1 with probability `a[i]` when the encoded
/// input is hot at `i`, and `b[i]` otherwise.
///
/// Used by the aggregate simulation path to draw per-bucket counts as two
/// binomials instead of `n` per-user reports. For unary-encoding mechanisms
/// the decomposition is exact *jointly*; for categorical mechanisms (GRR,
/// matrix) it is exact *marginally* per bucket, which is sufficient for
/// every per-item statistic the experiments report (estimates, variances,
/// total MSE in expectation).
#[derive(Clone, Debug, PartialEq)]
pub struct BitProfile {
    /// `Pr[report[i] = 1 | hot at i]`.
    pub a: Vec<f64>,
    /// `Pr[report[i] = 1 | not hot at i]`.
    pub b: Vec<f64>,
}

/// Mergeable server-side accumulation state: per-bucket report counts.
///
/// The parallel simulation pipeline gives every worker chunk its own
/// accumulator and merges them in chunk order; counts are integers, so the
/// merged result is identical to a sequential run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CountAccumulator {
    counts: Vec<u64>,
    users: u64,
}

impl CountAccumulator {
    /// An empty accumulator over `report_len` buckets.
    pub fn new(report_len: usize) -> Self {
        Self {
            counts: vec![0; report_len],
            users: 0,
        }
    }

    /// Adds one report (0/1 per bucket).
    ///
    /// # Errors
    /// Returns an error if the report length differs from the accumulator
    /// width (the same typed contract as the streaming
    /// `ReportAccumulator::accumulate` in `idldp-stream`); nothing is
    /// counted on failure.
    pub fn accumulate_report(&mut self, report: &[u8]) -> Result<()> {
        if report.len() != self.counts.len() {
            return Err(Error::DimensionMismatch {
                what: "accumulated report width".into(),
                expected: self.counts.len(),
                actual: report.len(),
            });
        }
        for (c, &bit) in self.counts.iter_mut().zip(report) {
            *c += u64::from(bit);
        }
        self.users += 1;
        Ok(())
    }

    /// Folds one report *in any wire shape* into the counts — delegating
    /// to the single fold implementation,
    /// [`crate::report::Report::fold_into`] — and counts one user.
    /// `shape_param` is the hash range for
    /// [`crate::report::Report::Hashed`] reports and the pinned set
    /// cardinality for [`crate::report::Report::ItemSet`] reports (`0` =
    /// unchecked; ignored by the other shapes). This is what the `idldp-stream`
    /// shape accumulators and the compact-shape batch fast paths build on,
    /// so the fold rule exists in exactly one place.
    ///
    /// # Errors
    /// Returns an error on a width/domain mismatch, an out-of-range value,
    /// or a non-distinct item set; nothing is counted on failure.
    pub fn fold_report(
        &mut self,
        report: crate::report::Report<'_>,
        shape_param: usize,
    ) -> Result<()> {
        report.fold_into(&mut self.counts, shape_param)?;
        self.users += 1;
        Ok(())
    }

    /// Direct bucket increment plus user count — for batch fast paths that
    /// bypass report buffers. Callers must pair every simulated user with
    /// exactly one [`Self::add_user`] call.
    #[inline]
    pub fn add_bit(&mut self, bucket: usize) {
        self.counts[bucket] += 1;
    }

    /// Records that one more user's report has been absorbed.
    #[inline]
    pub fn add_user(&mut self) {
        self.users += 1;
    }

    /// Merges another accumulator (the parallel reduce step).
    ///
    /// # Panics
    /// Panics if the widths differ.
    pub fn merge(&mut self, other: &CountAccumulator) {
        assert_eq!(
            other.counts.len(),
            self.counts.len(),
            "accumulator width mismatch"
        );
        for (c, &o) in self.counts.iter_mut().zip(&other.counts) {
            *c += o;
        }
        self.users += other.users;
    }

    /// Per-bucket counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Mutable view of the per-bucket counts — the spill target for
    /// batched fold engines ([`crate::fold`]) that add word-packed lanes
    /// directly instead of going through per-report folds. Callers must
    /// pair every counted report with [`Self::add_user`] /
    /// [`Self::add_users`], exactly as with [`Self::add_bit`].
    #[inline]
    pub fn counts_mut(&mut self) -> &mut [u64] {
        &mut self.counts
    }

    /// Records `n` more users in one step (the batched sibling of
    /// [`Self::add_user`]).
    #[inline]
    pub fn add_users(&mut self, n: u64) {
        self.users += n;
    }

    /// Freezes the current state into an [`AccumulatorSnapshot`] (the input
    /// of the incremental oracle path,
    /// [`FrequencyOracle::estimate_from`]).
    ///
    /// # Panics
    /// Panics if the accumulator has zero width (unconstructible through
    /// any mechanism, whose report widths are validated positive).
    pub fn snapshot(&self) -> AccumulatorSnapshot {
        AccumulatorSnapshot::new(self.counts.clone(), self.users)
            .expect("accumulators have positive width")
    }

    /// Rebuilds an accumulator from checkpointed state, so a restarted
    /// aggregation service resumes counting where it left off.
    pub fn from_snapshot(snapshot: &AccumulatorSnapshot) -> Self {
        Self {
            counts: snapshot.counts().to_vec(),
            users: snapshot.num_users(),
        }
    }

    /// Consumes the accumulator, returning the counts.
    pub fn into_counts(self) -> Vec<u64> {
        self.counts
    }

    /// Number of users accumulated.
    pub fn num_users(&self) -> u64 {
        self.users
    }
}

/// The client side of an LDP protocol: perturb one input into a report.
///
/// Object safety is deliberate — everything above `idldp-core` dispatches
/// through `&dyn Mechanism` / `Box<dyn BatchMechanism>`, so a new protocol
/// is one `impl` plus one registry entry.
pub trait Mechanism: Send + Sync {
    /// Short stable kind name (`"grr"`, `"idue"`, …) for diagnostics and
    /// registry lookups.
    fn kind(&self) -> &'static str;

    /// Size of the *item* domain `m` (estimates are produced for these).
    fn domain_size(&self) -> usize;

    /// Width of one report vector (`m` for single-item UE mechanisms,
    /// `m + ℓ` for PS-extended ones, `m` one-hot for categorical ones).
    fn report_len(&self) -> usize;

    /// Which input kind this mechanism perturbs.
    fn input_kind(&self) -> InputKind;

    /// The wire shape this mechanism's reports take (see
    /// [`crate::report::ReportShape`]). Defaults to the 0/1 bit vector of
    /// width [`Self::report_len`]; compact-shape mechanisms (categorical,
    /// hashed, item-set) override it so servers can pick the matching
    /// accumulator without a per-mechanism `match`.
    fn report_shape(&self) -> ReportShape {
        ReportShape::Bits
    }

    /// Perturbs `input`, writing the 0/1 report into `report`
    /// (length [`Self::report_len`]; every slot is overwritten).
    ///
    /// # Errors
    /// Returns an error on an input of the wrong kind or out of domain, or
    /// if `report` has the wrong width.
    fn perturb_into(
        &self,
        input: Input<'_>,
        rng: &mut dyn RngCore,
        report: &mut [u8],
    ) -> Result<()>;

    /// The *encoding* stage alone: the report bucket that is "hot" for this
    /// input before perturbation. Deterministic for single-item mechanisms;
    /// consumes randomness for sampling-based ones (PS).
    ///
    /// # Errors
    /// Same conditions as [`Self::perturb_into`].
    fn encode_hot(&self, input: Input<'_>, rng: &mut dyn RngCore) -> Result<usize>;

    /// The tightest plain-LDP budget the mechanism satisfies
    /// (`f64::INFINITY` for non-private building blocks such as bare PS).
    fn ldp_epsilon(&self) -> f64;

    /// The matching server-side oracle for `n` users.
    fn frequency_oracle(&self, n: u64) -> Box<dyn FrequencyOracle>;

    /// Per-bucket Bernoulli decomposition, when one exists (see
    /// [`BitProfile`]). Enables the `O(n + m)` aggregate simulation path.
    fn bit_profile(&self) -> Option<BitProfile> {
        None
    }

    /// The shape-aware emission path: perturbs `input` into an owned
    /// [`ReportData`] in the mechanism's native wire shape
    /// ([`Self::report_shape`]).
    ///
    /// Implementations **must** consume randomness exactly like
    /// [`Self::perturb_into`] (same draws, same order), so that a stream
    /// emitting native-shape reports and a batch run folding bit vectors
    /// produce identical counts per seed — the streaming conformance suite
    /// holds every mechanism to this. The default covers bit-shaped
    /// mechanisms by delegating to `perturb_into`; `perturb_into` remains
    /// the zero-alloc fast path for callers with a reusable buffer.
    ///
    /// # Errors
    /// Same conditions as [`Self::perturb_into`].
    fn perturb_data(&self, input: Input<'_>, rng: &mut dyn RngCore) -> Result<ReportData> {
        let mut report = vec![0u8; self.report_len()];
        self.perturb_into(input, rng, &mut report)?;
        Ok(ReportData::Bits(report))
    }

    /// Convenience: perturb into a freshly allocated report.
    ///
    /// (Named `perturb_report` so it never shadows the mechanisms' inherent
    /// `perturb` methods, which keep their historical typed signatures.)
    ///
    /// # Errors
    /// Same conditions as [`Self::perturb_into`].
    fn perturb_report(&self, input: Input<'_>, rng: &mut dyn RngCore) -> Result<Vec<u8>> {
        let mut report = vec![0u8; self.report_len()];
        self.perturb_into(input, rng, &mut report)?;
        Ok(report)
    }

    /// Upcast helper for callers that need the concrete type back (tests,
    /// typed builders).
    fn as_any(&self) -> &dyn std::any::Any;
}

/// Batched perturbation: a slice of users, one RNG, one accumulator.
///
/// Implementations **must** consume randomness exactly as the default loop
/// would (same draws, same order) so that chunked simulation results are
/// independent of whether a fast path was taken — the conformance suite
/// asserts `batch == loop` bit-for-bit for every mechanism.
pub trait BatchMechanism: Mechanism {
    /// Perturbs every input in `batch`, accumulating reports into `acc`.
    ///
    /// # Errors
    /// Returns the first per-input error encountered.
    fn perturb_batch(
        &self,
        batch: InputBatch<'_>,
        rng: &mut dyn RngCore,
        acc: &mut CountAccumulator,
    ) -> Result<()> {
        let mut report = vec![0u8; self.report_len()];
        match batch {
            InputBatch::Items(items) => {
                for &item in items {
                    self.perturb_into(Input::Item(item as usize), rng, &mut report)?;
                    acc.accumulate_report(&report)?;
                }
            }
            InputBatch::Sets(sets) => {
                for set in sets {
                    self.perturb_into(Input::Set(set), rng, &mut report)?;
                    acc.accumulate_report(&report)?;
                }
            }
        }
        Ok(())
    }
}

/// The server side of an LDP protocol: calibrate accumulated counts into
/// unbiased frequency estimates and predict their error.
pub trait FrequencyOracle: Send + Sync {
    /// Width of the count vectors this oracle consumes (the mechanism's
    /// [`Mechanism::report_len`]).
    fn report_len(&self) -> usize;

    /// Number of item estimates produced (the mechanism's
    /// [`Mechanism::domain_size`]).
    fn domain_size(&self) -> usize;

    /// Unbiased frequency estimates from accumulated per-bucket counts
    /// (length [`Self::report_len`]; PS-extended oracles ignore the dummy
    /// buckets).
    ///
    /// # Errors
    /// Returns an error if `counts` has the wrong width.
    fn estimate(&self, counts: &[u64]) -> Result<Vec<f64>>;

    /// Theoretical total MSE (= total variance, by unbiasedness) given the
    /// expected *hot counts* of the first [`Self::domain_size`] buckets.
    ///
    /// # Errors
    /// Returns an error if `expected_hot` has the wrong width.
    fn theoretical_total_mse(&self, expected_hot: &[f64]) -> Result<f64>;

    /// The incremental path: estimates straight from frozen accumulator
    /// state, without ever materializing individual reports.
    ///
    /// Streaming aggregation periodically freezes its sharded accumulators
    /// into an [`AccumulatorSnapshot`] and calls this to serve estimates
    /// mid-stream. Oracles that bake the population size into their
    /// calibration (every [`crate::oracle::CalibratingOracle`]) must be
    /// constructed for the snapshot's user count — i.e. obtain the oracle
    /// from [`Mechanism::frequency_oracle`]`(snapshot.num_users())` at each
    /// emission; construction is cheap relative to estimation.
    ///
    /// # Errors
    /// Returns an error if the snapshot width differs from
    /// [`Self::report_len`].
    fn estimate_from(&self, snapshot: &AccumulatorSnapshot) -> Result<Vec<f64>> {
        self.estimate(snapshot.counts())
    }
}

/// Checks an [`Input`] against a mechanism's kind/domain, returning the
/// canonical error. Shared by the trait impls.
pub(crate) fn check_item_input(input: Input<'_>, m: usize) -> Result<usize> {
    match input {
        Input::Item(item) if item < m => Ok(item),
        Input::Item(item) => Err(Error::IndexOutOfRange {
            what: "mechanism input item".into(),
            index: item,
            bound: m,
        }),
        Input::Set(_) => Err(Error::DimensionMismatch {
            what: "input kind (mechanism takes single items, got a set)".into(),
            expected: 1,
            actual: 0,
        }),
    }
}

/// Checks a set-valued [`Input`] against the item domain.
pub(crate) fn check_set_input<'a>(input: Input<'a>, m: usize) -> Result<&'a [u32]> {
    match input {
        Input::Set(set) => {
            for &item in set {
                if item as usize >= m {
                    return Err(Error::IndexOutOfRange {
                        what: "mechanism input set item".into(),
                        index: item as usize,
                        bound: m,
                    });
                }
            }
            Ok(set)
        }
        Input::Item(_) => Err(Error::DimensionMismatch {
            what: "input kind (mechanism takes item sets, got a single item)".into(),
            expected: 0,
            actual: 1,
        }),
    }
}

/// Checks a report buffer width.
pub(crate) fn check_report_width(report: &[u8], expected: usize) -> Result<()> {
    if report.len() != expected {
        return Err(Error::DimensionMismatch {
            what: "report buffer".into(),
            expected,
            actual: report.len(),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulator_merge_equals_sequential() {
        let mut a = CountAccumulator::new(3);
        let mut b = CountAccumulator::new(3);
        let mut whole = CountAccumulator::new(3);
        for (i, report) in [[1u8, 0, 1], [0, 1, 1], [1, 1, 0], [0, 0, 1]]
            .iter()
            .enumerate()
        {
            if i < 2 {
                a.accumulate_report(report).unwrap();
            } else {
                b.accumulate_report(report).unwrap();
            }
            whole.accumulate_report(report).unwrap();
        }
        a.merge(&b);
        assert_eq!(a, whole);
        assert_eq!(a.num_users(), 4);
        assert_eq!(a.counts(), &[2, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn accumulator_rejects_mismatched_merge() {
        let mut a = CountAccumulator::new(3);
        a.merge(&CountAccumulator::new(4));
    }

    #[test]
    fn accumulator_rejects_mismatched_report() {
        let mut a = CountAccumulator::new(3);
        assert!(a.accumulate_report(&[1, 0]).is_err());
        assert!(a.accumulate_report(&[1, 0, 1, 0]).is_err());
        assert_eq!(a.num_users(), 0, "failed accumulations count nothing");
        a.accumulate_report(&[1, 0, 1]).unwrap();
        assert_eq!(a.num_users(), 1);
    }

    #[test]
    fn input_batch_shapes() {
        let items = [1u32, 2, 3];
        let batch = InputBatch::Items(&items);
        assert_eq!(batch.len(), 3);
        assert!(!batch.is_empty());
        assert_eq!(batch.kind(), InputKind::Item);
        let sets = vec![vec![1u32], vec![]];
        let batch = InputBatch::Sets(&sets);
        assert_eq!(batch.len(), 2);
        assert_eq!(batch.kind(), InputKind::Set);
        assert_eq!(Input::Item(0).kind(), InputKind::Item);
        assert_eq!(Input::Set(&[]).kind(), InputKind::Set);
    }

    #[test]
    fn input_checks() {
        assert_eq!(check_item_input(Input::Item(2), 5).unwrap(), 2);
        assert!(check_item_input(Input::Item(5), 5).is_err());
        assert!(check_item_input(Input::Set(&[]), 5).is_err());
        assert_eq!(check_set_input(Input::Set(&[0, 4]), 5).unwrap(), &[0, 4]);
        assert!(check_set_input(Input::Set(&[5]), 5).is_err());
        assert!(check_set_input(Input::Item(0), 5).is_err());
        assert!(check_report_width(&[0; 3], 3).is_ok());
        assert!(check_report_width(&[0; 2], 3).is_err());
    }
}
