//! Run and tenant identity: the typed contract behind every "are these
//! counts from the same experiment?" check.
//!
//! Two pieces live here:
//!
//! * [`TenantId`] — a validated stream name. One collector process can
//!   host many independent `(mechanism, m, ε, seed)` streams; the tenant
//!   id is how a `Hello` handshake, a CLI flag, or a checkpoint path
//!   names one of them. The charset is deliberately narrow (alphanumeric
//!   plus `-` `_` `.`) so an id can be embedded verbatim in file names,
//!   `--tenants` specs, and wire frames without quoting.
//! * [`RunIdentity`] — the run-identity stamp itself. Historically this
//!   was a formatted string built independently in three places
//!   (`idldp-server`'s HelloAck/checkpoint stamp, `idldp-coord`'s
//!   expected-fleet line, and the ingest CLI's checkpoint header), which
//!   meant the identity check could drift between tiers. Now there is
//!   exactly one builder and one parser: [`RunIdentity::for_mechanism`]
//!   captures a mechanism's wire-visible configuration (kind, shape,
//!   width, exact ε bits) plus an optional free-form config stamp, and
//!   `Display`/`FromStr` round-trip the canonical line
//!
//!   ```text
//!   run <producer> kind=<kind> shape=<label> report_len=<n> ldp_eps=<16-hex> [stamp]
//!   ```
//!
//!   byte-compatible with every line the pre-typed code ever wrote, so
//!   existing checkpoints keep restoring.
//!
//! Equality on [`RunIdentity`] is the fleet-identity contract: a
//! coordinator refuses a collector whose parsed identity differs from its
//! own, and a checkpoint store refuses to restore counts stamped with a
//! different identity — merged counts from different configs would be
//! silently meaningless.

use crate::mechanism::Mechanism;
use std::fmt;
use std::str::FromStr;

/// Error for invalid tenant ids or unparseable run-identity lines.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct IdentityError(String);

impl fmt::Display for IdentityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for IdentityError {}

/// The maximum tenant-id length (bytes). Generous for stream names,
/// small enough that an id embeds in file names and log lines.
pub const MAX_TENANT_ID_LEN: usize = 64;

/// A validated tenant (stream) name: 1–64 chars of `[A-Za-z0-9._-]`.
///
/// The default tenant is [`TenantId::DEFAULT_NAME`] — the stream a
/// pre-tenancy (protocol v3) client lands on, and the one a server
/// hosting a single stream serves.
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TenantId(String);

impl TenantId {
    /// The name of the default tenant — where v3 clients (whose `Hello`
    /// predates tenancy) and tenant-less v4 clients land.
    pub const DEFAULT_NAME: &'static str = "default";

    /// Validates and wraps a tenant name.
    ///
    /// # Errors
    /// [`IdentityError`] when the name is empty, longer than
    /// [`MAX_TENANT_ID_LEN`], or contains a character outside
    /// `[A-Za-z0-9._-]` (the id must embed in file names, CLI
    /// `--tenants` specs, and wire frames unquoted).
    pub fn new(name: impl Into<String>) -> Result<Self, IdentityError> {
        let name = name.into();
        if name.is_empty() {
            return Err(IdentityError("tenant id must not be empty".into()));
        }
        if name.len() > MAX_TENANT_ID_LEN {
            return Err(IdentityError(format!(
                "tenant id `{}…` is {} bytes long (max {MAX_TENANT_ID_LEN})",
                &name[..name.char_indices().nth(16).map_or(name.len(), |(i, _)| i)],
                name.len()
            )));
        }
        if let Some(bad) = name
            .chars()
            .find(|c| !(c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-')))
        {
            return Err(IdentityError(format!(
                "tenant id `{name}` contains `{bad}` — allowed: A-Z a-z 0-9 . _ -"
            )));
        }
        Ok(TenantId(name))
    }

    /// The default tenant's id.
    #[must_use]
    pub fn default_tenant() -> Self {
        TenantId(Self::DEFAULT_NAME.to_string())
    }

    /// Whether this is the default tenant.
    #[must_use]
    pub fn is_default(&self) -> bool {
        self.0 == Self::DEFAULT_NAME
    }

    /// The tenant name as a string slice.
    #[must_use]
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl Default for TenantId {
    fn default() -> Self {
        Self::default_tenant()
    }
}

impl fmt::Display for TenantId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl FromStr for TenantId {
    type Err = IdentityError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        TenantId::new(s)
    }
}

impl AsRef<str> for TenantId {
    fn as_ref(&self) -> &str {
        &self.0
    }
}

/// A parsed run-identity stamp: who produced a stream of counts, under
/// which mechanism configuration, with which CLI config stamp.
///
/// Build one with [`RunIdentity::for_mechanism`]; serialize with
/// `Display` and parse with `FromStr` (a lossless round trip, covered by
/// a unit test). Two identities are the same experiment iff they are
/// `==`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RunIdentity {
    /// The producing tier (`"idldp-serve"`, `"idldp-ingest"`, …).
    producer: String,
    /// The mechanism's stable kind name ([`Mechanism::kind`]).
    kind: String,
    /// The wire-shape label ([`crate::report::ReportShape::label`]).
    shape: String,
    /// The report width ([`Mechanism::report_len`]).
    report_len: u64,
    /// The plain-LDP budget as raw IEEE-754 bits — exact, so two runs
    /// whose ε differs in the last ulp still compare unequal.
    ldp_eps_bits: u64,
    /// The free-form config stamp (the CLI's `mechanism=… m=… eps=…
    /// seed=…`), when one was set.
    stamp: Option<String>,
}

impl RunIdentity {
    /// The producer tag of the networked collector tier.
    pub const PRODUCER_SERVE: &'static str = "idldp-serve";
    /// The producer tag of the local ingest CLI.
    pub const PRODUCER_INGEST: &'static str = "idldp-ingest";

    /// Captures a mechanism's wire-visible identity plus an optional
    /// free-form config stamp.
    pub fn for_mechanism(
        producer: &str,
        mechanism: &dyn Mechanism,
        config_stamp: Option<&str>,
    ) -> Self {
        RunIdentity {
            producer: producer.to_string(),
            kind: mechanism.kind().to_string(),
            shape: mechanism.report_shape().label(),
            report_len: mechanism.report_len() as u64,
            ldp_eps_bits: mechanism.ldp_epsilon().to_bits(),
            stamp: config_stamp.map(str::to_string),
        }
    }

    /// The producing tier tag.
    #[must_use]
    pub fn producer(&self) -> &str {
        &self.producer
    }

    /// The mechanism kind this run accumulates.
    #[must_use]
    pub fn kind(&self) -> &str {
        &self.kind
    }

    /// The free-form config stamp, when one was set.
    #[must_use]
    pub fn stamp(&self) -> Option<&str> {
        self.stamp.as_deref()
    }
}

impl fmt::Display for RunIdentity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "run {} kind={} shape={} report_len={} ldp_eps={:016x}",
            self.producer, self.kind, self.shape, self.report_len, self.ldp_eps_bits
        )?;
        if let Some(stamp) = &self.stamp {
            write!(f, " {stamp}")?;
        }
        Ok(())
    }
}

impl FromStr for RunIdentity {
    type Err = IdentityError;

    /// Parses the canonical line. The shape label may contain spaces
    /// (`hashed (seed, value in 0..17)`), so fields are located by their
    /// ` key=` markers rather than split on whitespace.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let err = |detail: &str| IdentityError(format!("run-identity line {detail}: `{s}`"));
        let rest = s
            .strip_prefix("run ")
            .ok_or_else(|| err("must start with `run `"))?;
        let (producer, rest) = rest
            .split_once(" kind=")
            .ok_or_else(|| err("is missing ` kind=`"))?;
        let (kind, rest) = rest
            .split_once(" shape=")
            .ok_or_else(|| err("is missing ` shape=`"))?;
        let (shape, rest) = rest
            .split_once(" report_len=")
            .ok_or_else(|| err("is missing ` report_len=`"))?;
        let (report_len, rest) = rest
            .split_once(" ldp_eps=")
            .ok_or_else(|| err("is missing ` ldp_eps=`"))?;
        let report_len: u64 = report_len
            .parse()
            .map_err(|_| err("has a non-numeric report_len"))?;
        let (eps_hex, stamp) = match rest.split_once(' ') {
            Some((eps_hex, stamp)) => (eps_hex, Some(stamp.to_string())),
            None => (rest, None),
        };
        if eps_hex.len() != 16 {
            return Err(err("needs a 16-hex-digit ldp_eps"));
        }
        let ldp_eps_bits =
            u64::from_str_radix(eps_hex, 16).map_err(|_| err("has a non-hex ldp_eps"))?;
        if producer.is_empty() || producer.contains(' ') {
            return Err(err("has a malformed producer"));
        }
        Ok(RunIdentity {
            producer: producer.to_string(),
            kind: kind.to_string(),
            shape: shape.to_string(),
            report_len,
            ldp_eps_bits,
            stamp,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::budget::Epsilon;
    use crate::olh::OptimalLocalHashing;
    use crate::subset::SubsetSelection;
    use crate::ue::UnaryEncoding;

    fn eps(v: f64) -> Epsilon {
        Epsilon::new(v).unwrap()
    }

    #[test]
    fn tenant_ids_validate_their_charset() {
        assert!(TenantId::new("alpha").is_ok());
        assert!(TenantId::new("a-1_b.2").is_ok());
        assert_eq!(TenantId::new("alpha").unwrap().to_string(), "alpha");
        assert!(TenantId::new("").is_err());
        assert!(TenantId::new("has space").is_err());
        assert!(TenantId::new("a=b").is_err());
        assert!(TenantId::new("a,b").is_err());
        assert!(TenantId::new("a:b").is_err());
        assert!(TenantId::new("x".repeat(MAX_TENANT_ID_LEN)).is_ok());
        assert!(TenantId::new("x".repeat(MAX_TENANT_ID_LEN + 1)).is_err());
        assert!(TenantId::default_tenant().is_default());
        assert!(!TenantId::new("alpha").unwrap().is_default());
        assert_eq!("beta".parse::<TenantId>().unwrap().as_str(), "beta");
    }

    /// Display → FromStr is lossless for every shape family, with and
    /// without a config stamp — including the space-bearing hashed and
    /// item-set shape labels.
    #[test]
    fn run_identity_display_from_str_round_trips() {
        let mechanisms: Vec<Box<dyn Mechanism>> = vec![
            Box::new(UnaryEncoding::optimized(eps(1.0), 16).unwrap()),
            Box::new(OptimalLocalHashing::new(eps(1.2), 24).unwrap()),
            Box::new(SubsetSelection::new(eps(1.0), 20).unwrap()),
        ];
        for mechanism in &mechanisms {
            for stamp in [None, Some("mechanism=oue m=16 eps=1.0 seed=7")] {
                for producer in [RunIdentity::PRODUCER_SERVE, RunIdentity::PRODUCER_INGEST] {
                    let identity = RunIdentity::for_mechanism(producer, mechanism.as_ref(), stamp);
                    let line = identity.to_string();
                    let parsed: RunIdentity = line.parse().unwrap();
                    assert_eq!(parsed, identity, "round trip of `{line}`");
                    assert_eq!(parsed.to_string(), line);
                }
            }
        }
    }

    /// The canonical line matches what the pre-typed string builders
    /// wrote, byte for byte — existing checkpoints must keep restoring.
    #[test]
    fn run_identity_line_is_byte_compatible_with_the_legacy_format() {
        let mechanism = UnaryEncoding::optimized(eps(1.0), 16).unwrap();
        let identity = RunIdentity::for_mechanism(
            RunIdentity::PRODUCER_SERVE,
            &mechanism,
            Some("mechanism=oue m=16 eps=1.0 seed=7"),
        );
        let legacy = format!(
            "run idldp-serve kind={} shape={} report_len={} ldp_eps={:016x} {}",
            mechanism.kind(),
            mechanism.report_shape().label(),
            mechanism.report_len(),
            mechanism.ldp_epsilon().to_bits(),
            "mechanism=oue m=16 eps=1.0 seed=7"
        );
        assert_eq!(identity.to_string(), legacy);
    }

    #[test]
    fn run_identity_rejects_malformed_lines() {
        for bad in [
            "",
            "idldp-snapshot v1",
            "run idldp-serve",
            "run idldp-serve kind=oue shape=bits report_len=16",
            "run idldp-serve kind=oue shape=bits report_len=x ldp_eps=3ff0000000000000",
            "run idldp-serve kind=oue shape=bits report_len=16 ldp_eps=zzz",
            "run idldp-serve kind=oue shape=bits report_len=16 ldp_eps=3ff0",
        ] {
            assert!(bad.parse::<RunIdentity>().is_err(), "accepted `{bad}`");
        }
        // Identities differing only in ε bits or stamp are different runs.
        let a = RunIdentity::for_mechanism(
            "idldp-serve",
            &UnaryEncoding::optimized(eps(1.0), 16).unwrap(),
            None,
        );
        let b = RunIdentity::for_mechanism(
            "idldp-serve",
            &UnaryEncoding::optimized(eps(2.5), 16).unwrap(),
            None,
        );
        assert_ne!(a, b);
        let stamped = RunIdentity::for_mechanism(
            "idldp-serve",
            &UnaryEncoding::optimized(eps(1.0), 16).unwrap(),
            Some("seed=2"),
        );
        assert_ne!(a, stamped);
    }
}
