//! The shape-polymorphic report wire format.
//!
//! PR 1/2 baked one assumption into every layer above the mechanisms: a
//! client report is a 0/1 bit vector of [`crate::mechanism::Mechanism::report_len`]
//! slots. That model fits the unary-encoding family exactly and categorical
//! mechanisms tolerably (a one-hot vector), but it cannot express the wire
//! format of hash-based protocols (OLH sends a `(seed, value in 0..g)`
//! pair) or subset-selection (a small item set) without exploding the
//! report width. This module promotes *report shape* to a first-class
//! abstraction:
//!
//! * [`ReportShape`] — the static shape a mechanism emits, carried by
//!   [`crate::mechanism::Mechanism::report_shape`] and used by servers to
//!   pick the matching accumulator.
//! * [`Report`] — one borrowed report in any shape: the type every
//!   accumulator ingests (`idldp-stream`'s `ReportAccumulator::accumulate`).
//! * [`ReportData`] — the owned twin, produced by
//!   [`crate::mechanism::Mechanism::perturb_data`]; what a transport would
//!   serialize.
//! * [`hash_bucket`] — the shared client/server hash for
//!   [`ReportShape::Hashed`] reports. The client encodes with it and the
//!   server folds with it, so it is defined exactly once.
//!
//! Every shape folds to the same server-side state — per-bucket counts over
//! `report_len` buckets ([`crate::mechanism::CountAccumulator`]) — which is
//! what keeps sharded accumulation exact (integer merges commute) for all
//! shapes alike:
//!
//! | shape | wire payload | fold into counts |
//! |---|---|---|
//! | `Bits` | 0/1 vector, `report_len` slots | add each bit |
//! | `Value` | one value in `0..report_len` | increment that bucket |
//! | `Hashed` | `(seed, value in 0..range)` | increment every `v` with `hash_bucket(seed, v, range) == value` |
//! | `ItemSet` | distinct items in `0..report_len` | increment each member |

use crate::error::{Error, Result};

/// The report shape a mechanism emits on the wire.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReportShape {
    /// A 0/1 bit vector of `report_len` slots (the unary-encoding family).
    Bits,
    /// A single categorical value in `0..report_len` (GRR, matrix
    /// mechanisms, PS — transported as the value, foldable as one-hot).
    Value,
    /// A hashed report `(seed, value)` with `value` in `0..range` (OLH).
    /// The server folds it over the item domain with [`hash_bucket`].
    Hashed {
        /// The hash range `g` the per-user hash maps items into.
        range: usize,
    },
    /// A small set of distinct items in `0..report_len` (subset-selection).
    ItemSet {
        /// The exact set cardinality the mechanism emits, or `0` when the
        /// cardinality is not pinned. Subset selection always reports
        /// exactly `k` items; a wrong-sized set would fold cleanly but
        /// bias the `(p, (k−p)/(m−1))` calibration, so the handshake and
        /// [`Report::validate`] refuse it when `k` is pinned.
        k: usize,
    },
}

impl ReportShape {
    /// Short human-readable label (`idldp mechanisms` output).
    pub fn label(&self) -> String {
        match self {
            ReportShape::Bits => "bits".to_string(),
            ReportShape::Value => "value".to_string(),
            ReportShape::Hashed { range } => format!("hashed (seed, value in 0..{range})"),
            ReportShape::ItemSet { k: 0 } => "item-set".to_string(),
            ReportShape::ItemSet { k } => format!("item-set ({k} items)"),
        }
    }
}

/// One client report, borrowed, in whichever shape the transport delivered
/// it. This is the type every report-ingestion API accepts.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Report<'a> {
    /// A 0/1 bit vector of the mechanism's report width.
    Bits(&'a [u8]),
    /// A categorical report: the single reported value in
    /// `0..report_len` (GRR and matrix-mechanism wire format).
    Value(usize),
    /// A hashed report: the per-user hash seed and the perturbed hash
    /// value in `0..range` (OLH wire format).
    Hashed {
        /// The per-user hash seed the client drew.
        seed: u64,
        /// The (perturbed) hash value in `0..range`.
        value: usize,
    },
    /// A subset-selection report: the reported distinct items.
    ItemSet(&'a [usize]),
}

impl Report<'_> {
    /// Copies the report into its owned form.
    pub fn to_data(&self) -> ReportData {
        match *self {
            Report::Bits(bits) => ReportData::Bits(bits.to_vec()),
            Report::Value(v) => ReportData::Value(v),
            Report::Hashed { seed, value } => ReportData::Hashed { seed, value },
            Report::ItemSet(items) => ReportData::ItemSet(items.to_vec()),
        }
    }

    /// Checks this report against a mechanism configuration — width
    /// `report_len` plus the shape parameter `shape_param` — without
    /// counting anything. `shape_param` is the hash range `g` for
    /// [`Report::Hashed`] reports and the pinned set cardinality `k` for
    /// [`Report::ItemSet`] reports (`0` = cardinality unchecked); the
    /// other shapes ignore it. **The** definition of report
    /// well-formedness: [`Report::fold_into`] validates through this
    /// before touching any count, and transport servers (`idldp-server`)
    /// call it to refuse a malformed report in the connection reply, so an
    /// acknowledged report can never fail to fold later.
    ///
    /// # Errors
    /// Width mismatch or non-0/1 slot (bit reports), out-of-domain value
    /// (categorical/hashed), or an empty, repeating, wrong-cardinality, or
    /// out-of-domain item set.
    pub fn validate(&self, report_len: usize, shape_param: usize) -> Result<()> {
        match *self {
            Report::Bits(bits) => {
                if bits.len() != report_len {
                    return Err(Error::DimensionMismatch {
                        what: "bit report".into(),
                        expected: report_len,
                        actual: bits.len(),
                    });
                }
                if bits.iter().any(|&b| b > 1) {
                    return Err(Error::ParameterOrdering {
                        detail: "bit report slots must be 0/1".into(),
                    });
                }
            }
            Report::Value(v) => {
                if v >= report_len {
                    return Err(Error::IndexOutOfRange {
                        what: "categorical report value".into(),
                        index: v,
                        bound: report_len,
                    });
                }
            }
            Report::Hashed { value, .. } => {
                if value >= shape_param {
                    return Err(Error::IndexOutOfRange {
                        what: "hashed report value".into(),
                        index: value,
                        bound: shape_param,
                    });
                }
            }
            Report::ItemSet(items) => {
                // No registered item-set mechanism emits an empty set; an
                // empty report would count a user without touching any
                // bucket, silently biasing calibration.
                if items.is_empty() {
                    return Err(Error::Empty {
                        what: "item-set report".into(),
                    });
                }
                // A pinned cardinality is exact: subset selection emits
                // exactly k items, and any other size folds cleanly but
                // biases the (p, (k−p)/(m−1)) calibration.
                if shape_param > 0 && items.len() != shape_param {
                    return Err(Error::DimensionMismatch {
                        what: "item-set report cardinality".into(),
                        expected: shape_param,
                        actual: items.len(),
                    });
                }
                for &item in items {
                    if item >= report_len {
                        return Err(Error::IndexOutOfRange {
                            what: "item-set report member".into(),
                            index: item,
                            bound: report_len,
                        });
                    }
                }
                // Distinctness. The allocation-free prefix scan is O(k²),
                // fine for the small sets mechanisms emit but a CPU
                // amplifier when validating untrusted network input
                // (servers run this synchronously per report) — large
                // sets sort a copy and look for adjacent equals instead.
                if items.len() <= 16 {
                    for (k, &item) in items.iter().enumerate() {
                        if items[..k].contains(&item) {
                            return Err(Error::ParameterOrdering {
                                detail: format!("item-set report repeats item {item}"),
                            });
                        }
                    }
                } else {
                    let mut sorted = items.to_vec();
                    sorted.sort_unstable();
                    if let Some(pair) = sorted.windows(2).find(|pair| pair[0] == pair[1]) {
                        return Err(Error::ParameterOrdering {
                            detail: format!("item-set report repeats item {}", pair[0]),
                        });
                    }
                }
            }
        }
        Ok(())
    }

    /// Folds this report into per-bucket counts of width `report_len`,
    /// with `shape_param` interpreted as in [`Report::validate`] (the hash
    /// range for [`Report::Hashed`], the pinned cardinality for
    /// [`Report::ItemSet`], ignored by the other shapes) — **the**
    /// implementation of the fold table in the module docs, which every
    /// server-side accumulator delegates to. One successful call accounts
    /// for exactly one user.
    ///
    /// # Errors
    /// Any [`Report::validate`] failure; nothing is counted on failure.
    pub fn fold_into(&self, counts: &mut [u64], shape_param: usize) -> Result<()> {
        self.validate(counts.len(), shape_param)?;
        match *self {
            Report::Bits(bits) => {
                for (c, &bit) in counts.iter_mut().zip(bits) {
                    *c += u64::from(bit);
                }
            }
            Report::Value(v) => counts[v] += 1,
            Report::Hashed { seed, value } => {
                for (v, c) in counts.iter_mut().enumerate() {
                    if hash_bucket(seed, v, shape_param) == value {
                        *c += 1;
                    }
                }
            }
            Report::ItemSet(items) => {
                for &item in items {
                    counts[item] += 1;
                }
            }
        }
        Ok(())
    }
}

/// One client report, owned: what [`crate::mechanism::Mechanism::perturb_data`]
/// emits and what a transport would serialize.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ReportData {
    /// A 0/1 bit vector of the mechanism's report width.
    Bits(Vec<u8>),
    /// A categorical report value in `0..report_len`.
    Value(usize),
    /// A hashed report `(seed, value in 0..range)`.
    Hashed {
        /// The per-user hash seed the client drew.
        seed: u64,
        /// The (perturbed) hash value in `0..range`.
        value: usize,
    },
    /// A subset-selection report: distinct items in `0..report_len`.
    ItemSet(Vec<usize>),
}

impl ReportData {
    /// Borrows the report for ingestion.
    pub fn as_report(&self) -> Report<'_> {
        match self {
            ReportData::Bits(bits) => Report::Bits(bits),
            ReportData::Value(v) => Report::Value(*v),
            ReportData::Hashed { seed, value } => Report::Hashed {
                seed: *seed,
                value: *value,
            },
            ReportData::ItemSet(items) => Report::ItemSet(items),
        }
    }

    /// Folds this report into per-bucket counts — the owned-form
    /// convenience over [`Report::fold_into`].
    ///
    /// # Errors
    /// Same conditions as [`Report::fold_into`].
    pub fn fold_into(&self, counts: &mut [u64], shape_param: usize) -> Result<()> {
        self.as_report().fold_into(counts, shape_param)
    }
}

/// The shared client/server hash for [`ReportShape::Hashed`] reports: maps
/// `item` into `0..range` under the per-user `seed`.
///
/// A client encodes its input as `hash_bucket(seed, x, g)` before
/// perturbation; the server folds a `(seed, value)` report by counting
/// every item whose bucket equals `value`. Both sides call *this* function,
/// so the mapping is defined exactly once and is stable across runs and
/// platforms (pure integer arithmetic — a SplitMix64 finalizer over
/// `seed ⊕ mix(item)`).
///
/// # Panics
/// Panics if `range == 0` (hash ranges are validated positive at mechanism
/// construction).
#[inline]
pub fn hash_bucket(seed: u64, item: usize, range: usize) -> usize {
    assert!(range > 0, "hash range must be positive");
    let mut z = seed ^ (item as u64).wrapping_mul(0xA24B_AED4_963E_E407);
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    (z % range as u64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_labels() {
        assert_eq!(ReportShape::Bits.label(), "bits");
        assert_eq!(ReportShape::Value.label(), "value");
        assert_eq!(
            ReportShape::Hashed { range: 5 }.label(),
            "hashed (seed, value in 0..5)"
        );
        assert_eq!(ReportShape::ItemSet { k: 0 }.label(), "item-set");
        assert_eq!(ReportShape::ItemSet { k: 3 }.label(), "item-set (3 items)");
    }

    #[test]
    fn pinned_cardinality_refuses_wrong_sized_sets() {
        let report = ReportData::ItemSet(vec![0, 2]);
        // Unpinned (k = 0): any distinct, in-domain set validates.
        assert!(report.as_report().validate(4, 0).is_ok());
        // Pinned to the emitted size: accepted.
        assert!(report.as_report().validate(4, 2).is_ok());
        // Pinned to any other size: refused before anything is counted.
        let mut counts = vec![0u64; 4];
        for wrong_k in [1usize, 3] {
            let err = report.as_report().validate(4, wrong_k).unwrap_err();
            assert!(
                err.to_string().contains("cardinality"),
                "unexpected error: {err}"
            );
            assert!(report.fold_into(&mut counts, wrong_k).is_err());
        }
        assert_eq!(counts, vec![0, 0, 0, 0], "failed folds count nothing");
    }

    #[test]
    fn owned_and_borrowed_round_trip() {
        let cases = [
            ReportData::Bits(vec![1, 0, 1]),
            ReportData::Value(2),
            ReportData::Hashed { seed: 9, value: 1 },
            ReportData::ItemSet(vec![0, 2]),
        ];
        for data in cases {
            assert_eq!(data.as_report().to_data(), data);
        }
    }

    #[test]
    fn hash_bucket_is_deterministic_and_in_range() {
        for seed in [0u64, 1, 0xDEADBEEF, u64::MAX] {
            for item in 0..50 {
                for range in [1usize, 2, 7, 64] {
                    let b = hash_bucket(seed, item, range);
                    assert!(b < range);
                    assert_eq!(b, hash_bucket(seed, item, range), "stable");
                }
            }
        }
        // Different seeds decorrelate the bucket of the same item.
        let spread: std::collections::HashSet<usize> =
            (0..64u64).map(|s| hash_bucket(s, 3, 16)).collect();
        assert!(spread.len() > 8, "only {} distinct buckets", spread.len());
    }

    #[test]
    fn hash_bucket_roughly_uniform() {
        let range = 8;
        let mut hist = vec![0u32; range];
        let trials = 40_000;
        for i in 0..trials {
            hist[hash_bucket(i as u64, (i * 7) % 100, range)] += 1;
        }
        for (b, &h) in hist.iter().enumerate() {
            let rate = f64::from(h) / trials as f64;
            assert!(
                (rate - 1.0 / range as f64).abs() < 0.01,
                "bucket {b} rate {rate}"
            );
        }
    }

    #[test]
    fn fold_matches_shapes() {
        let mut counts = vec![0u64; 4];
        ReportData::Bits(vec![1, 0, 1, 0])
            .fold_into(&mut counts, 0)
            .unwrap();
        ReportData::Value(3).fold_into(&mut counts, 0).unwrap();
        ReportData::ItemSet(vec![1, 3])
            .fold_into(&mut counts, 0)
            .unwrap();
        assert_eq!(counts, vec![1, 1, 1, 2]);

        // A hashed fold counts exactly the support of (seed, value).
        let (seed, range) = (77u64, 3usize);
        let value = hash_bucket(seed, 2, range);
        let mut hashed = vec![0u64; 4];
        ReportData::Hashed { seed, value }
            .fold_into(&mut hashed, range)
            .unwrap();
        for (v, &c) in hashed.iter().enumerate() {
            let want = u64::from(hash_bucket(seed, v, range) == value);
            assert_eq!(c, want, "item {v}");
        }
        assert_eq!(hashed[2], 1, "the preimage item is always supported");
    }

    #[test]
    fn fold_rejects_invalid_reports() {
        let mut counts = vec![0u64; 3];
        assert!(ReportData::Bits(vec![1, 0])
            .fold_into(&mut counts, 0)
            .is_err());
        assert!(ReportData::Bits(vec![1, 0, 2])
            .fold_into(&mut counts, 0)
            .is_err());
        assert!(ReportData::Value(3).fold_into(&mut counts, 0).is_err());
        assert!(ReportData::Hashed { seed: 1, value: 4 }
            .fold_into(&mut counts, 4)
            .is_err());
        assert!(ReportData::ItemSet(vec![0, 3])
            .fold_into(&mut counts, 0)
            .is_err());
        assert!(ReportData::ItemSet(vec![1, 1])
            .fold_into(&mut counts, 0)
            .is_err());
        assert!(ReportData::ItemSet(vec![])
            .fold_into(&mut counts, 0)
            .is_err());
        assert_eq!(counts, vec![0, 0, 0], "failed folds count nothing");
    }

    #[test]
    fn validate_agrees_with_fold() {
        // validate() succeeding must imply fold_into() succeeding — the
        // contract transport servers rely on when they acknowledge a
        // report before folding it.
        let cases = [
            (ReportData::Bits(vec![1, 0, 1]), 0usize),
            (ReportData::Bits(vec![1, 0]), 0),
            (ReportData::Bits(vec![2, 0, 0]), 0),
            (ReportData::Value(2), 0),
            (ReportData::Value(3), 0),
            (ReportData::Hashed { seed: 7, value: 1 }, 4),
            (ReportData::Hashed { seed: 7, value: 4 }, 4),
            (ReportData::ItemSet(vec![0, 2]), 0),
            (ReportData::ItemSet(vec![]), 0),
            (ReportData::ItemSet(vec![1, 1]), 0),
            (ReportData::ItemSet(vec![5]), 0),
        ];
        for (data, range) in cases {
            let report = data.as_report();
            let valid = report.validate(3, range).is_ok();
            let mut counts = vec![0u64; 3];
            assert_eq!(
                valid,
                report.fold_into(&mut counts, range).is_ok(),
                "{data:?}"
            );
        }
    }

    /// Item-set distinctness must agree between the small (prefix-scan)
    /// and large (sort-a-copy) branches — large sets are the untrusted
    /// network input a quadratic scan would turn into a CPU amplifier.
    #[test]
    fn large_item_set_duplicates_are_caught() {
        let m = 1000;
        let distinct: Vec<usize> = (0..100).map(|i| i * 7 % m).collect();
        assert!(Report::ItemSet(&distinct).validate(m, 0).is_ok());
        let mut repeated = distinct.clone();
        repeated[99] = repeated[3];
        let err = Report::ItemSet(&repeated).validate(m, 0).unwrap_err();
        assert!(
            err.to_string().contains("repeats item"),
            "unexpected error: {err}"
        );
        // The small branch agrees on the same defect.
        assert!(Report::ItemSet(&[4, 9, 4]).validate(m, 0).is_err());
    }
}
