//! Point-in-time accumulator state for streaming aggregation.
//!
//! A streaming deployment never materializes individual reports: shards
//! absorb them into count state ([`crate::mechanism::CountAccumulator`] or
//! any `idldp-stream` accumulator) and the server periodically freezes that
//! state into an [`AccumulatorSnapshot`] — the per-bucket counts plus the
//! number of users absorbed so far. Snapshots are what the incremental
//! oracle path ([`crate::mechanism::FrequencyOracle::estimate_from`])
//! consumes, and they serialize to a stable, versioned text format so an
//! ingestion service can checkpoint its state and restore it after a
//! restart ([`AccumulatorSnapshot::to_checkpoint_string`] /
//! [`AccumulatorSnapshot::from_checkpoint_str`]).
//!
//! Because counts are integers, snapshots merge exactly: any tree of
//! [`AccumulatorSnapshot::merge`] calls over a partition of the same report
//! set yields identical state, independent of shard count or merge order.

use crate::error::{Error, Result};
use serde::{Deserialize, Serialize};

pub mod store;

pub use store::{open_store, RestoredCheckpoint, SnapshotStore, StoreError, StoreKind};

/// The checkpoint format version written by
/// [`AccumulatorSnapshot::to_checkpoint_string`].
pub const CHECKPOINT_VERSION: u32 = 1;

/// Frozen accumulator state: per-bucket report counts and the number of
/// users they came from.
///
/// # Examples
/// ```
/// use idldp_core::snapshot::AccumulatorSnapshot;
///
/// let mut left = AccumulatorSnapshot::new(vec![3, 1, 0], 4).unwrap();
/// let right = AccumulatorSnapshot::new(vec![0, 2, 5], 6).unwrap();
/// left.merge(&right).unwrap();
/// assert_eq!(left.counts(), &[3, 3, 5]);
/// assert_eq!(left.num_users(), 10);
///
/// // Round-trips through the stable checkpoint format.
/// let restored =
///     AccumulatorSnapshot::from_checkpoint_str(&left.to_checkpoint_string()).unwrap();
/// assert_eq!(restored, left);
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct AccumulatorSnapshot {
    counts: Vec<u64>,
    users: u64,
}

impl AccumulatorSnapshot {
    /// Wraps per-bucket counts gathered from `users` reports.
    ///
    /// # Errors
    /// Returns an error if `counts` is empty (a zero-width accumulator
    /// cannot belong to any mechanism).
    pub fn new(counts: Vec<u64>, users: u64) -> Result<Self> {
        if counts.is_empty() {
            return Err(Error::Empty {
                what: "snapshot counts".into(),
            });
        }
        Ok(Self { counts, users })
    }

    /// An all-zero snapshot over `report_len` buckets.
    ///
    /// # Errors
    /// Returns an error if `report_len == 0`.
    pub fn empty(report_len: usize) -> Result<Self> {
        Self::new(vec![0; report_len], 0)
    }

    /// Per-bucket counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Consumes the snapshot, returning the counts.
    pub fn into_counts(self) -> Vec<u64> {
        self.counts
    }

    /// Number of buckets (the owning mechanism's report width).
    pub fn report_len(&self) -> usize {
        self.counts.len()
    }

    /// Number of users whose reports are reflected in the counts.
    pub fn num_users(&self) -> u64 {
        self.users
    }

    /// Adds another snapshot's counts and users. Integer sums commute, so
    /// any merge order over a partition of the same reports is exact.
    ///
    /// # Errors
    /// Returns an error if the widths differ.
    pub fn merge(&mut self, other: &AccumulatorSnapshot) -> Result<()> {
        if other.counts.len() != self.counts.len() {
            return Err(Error::DimensionMismatch {
                what: "snapshot merge width".into(),
                expected: self.counts.len(),
                actual: other.counts.len(),
            });
        }
        for (c, &o) in self.counts.iter_mut().zip(&other.counts) {
            *c += o;
        }
        self.users += other.users;
        Ok(())
    }

    /// Serializes to the stable, versioned checkpoint format:
    ///
    /// ```text
    /// idldp-snapshot v1
    /// users <u>
    /// counts <c0> <c1> ...
    /// check <hex digest>
    /// ```
    ///
    /// The digest (FNV-1a over users and counts) catches truncated or
    /// hand-edited files on restore. The format is plain ASCII so
    /// checkpoints stay inspectable and diffable.
    pub fn to_checkpoint_string(&self) -> String {
        use std::fmt::Write as _;
        let mut out = format!(
            "idldp-snapshot v{CHECKPOINT_VERSION}\nusers {}\ncounts",
            self.users
        );
        for c in &self.counts {
            write!(out, " {c}").expect("writing to String cannot fail");
        }
        write!(out, "\ncheck {:016x}\n", self.digest()).expect("writing to String cannot fail");
        out
    }

    /// Parses the format written by [`Self::to_checkpoint_string`].
    ///
    /// Lines after the `check` line are ignored, so callers may append
    /// their own metadata (e.g. `idldp ingest` stamps a run-identity line)
    /// without breaking the snapshot itself.
    ///
    /// # Errors
    /// Returns an error on an unknown header/version, malformed fields, a
    /// digest mismatch, or an empty count list.
    pub fn from_checkpoint_str(s: &str) -> Result<Self> {
        let malformed = |detail: &str| Error::ParameterOrdering {
            detail: format!("snapshot checkpoint: {detail}"),
        };
        let mut lines = s.lines();
        let header = lines.next().ok_or_else(|| malformed("empty input"))?;
        if header.trim() != format!("idldp-snapshot v{CHECKPOINT_VERSION}") {
            return Err(malformed(&format!("unsupported header `{header}`")));
        }
        let users_line = lines
            .next()
            .ok_or_else(|| malformed("missing users line"))?;
        let users: u64 = users_line
            .strip_prefix("users ")
            .and_then(|v| v.trim().parse().ok())
            .ok_or_else(|| malformed(&format!("bad users line `{users_line}`")))?;
        let counts_line = lines
            .next()
            .ok_or_else(|| malformed("missing counts line"))?;
        let counts = counts_line
            .strip_prefix("counts")
            .ok_or_else(|| malformed(&format!("bad counts line `{counts_line}`")))?
            .split_whitespace()
            .map(|tok| {
                tok.parse::<u64>()
                    .map_err(|_| malformed(&format!("bad count `{tok}`")))
            })
            .collect::<Result<Vec<u64>>>()?;
        let check_line = lines
            .next()
            .ok_or_else(|| malformed("missing check line"))?;
        let check = check_line
            .strip_prefix("check ")
            .and_then(|v| u64::from_str_radix(v.trim(), 16).ok())
            .ok_or_else(|| malformed(&format!("bad check line `{check_line}`")))?;
        let snapshot = Self::new(counts, users)?;
        if snapshot.digest() != check {
            return Err(malformed("digest mismatch (truncated or edited file?)"));
        }
        Ok(snapshot)
    }

    /// Writes this snapshot (plus optional trailing metadata lines, e.g. a
    /// run-identity stamp) to `path` via [`write_checkpoint_atomic`].
    ///
    /// # Errors
    /// Propagates filesystem errors from the temp-file write or the rename.
    pub fn write_checkpoint(
        &self,
        path: impl AsRef<std::path::Path>,
        trailer: &str,
    ) -> std::io::Result<()> {
        write_checkpoint_atomic(path, &format!("{}{trailer}", self.to_checkpoint_string()))
    }

    /// FNV-1a over the user count and the count vector, little-endian.
    fn digest(&self) -> u64 {
        const OFFSET: u64 = 0xcbf29ce484222325;
        const PRIME: u64 = 0x100000001b3;
        let mut h = OFFSET;
        let mut absorb = |v: u64| {
            for byte in v.to_le_bytes() {
                h ^= u64::from(byte);
                h = h.wrapping_mul(PRIME);
            }
        };
        absorb(self.users);
        for &c in &self.counts {
            absorb(c);
        }
        h
    }
}

/// Writes `payload` to `path` atomically: the bytes go to a uniquely
/// named sibling temp file first, are fsynced, and are renamed into
/// place, so a crash (or kill, or power loss) mid-write can never leave
/// a torn or truncated checkpoint behind — without the fsync, a
/// journaling filesystem may commit the rename before the temp file's
/// data blocks, replacing the previous intact checkpoint with an empty
/// one at exactly the wrong moment. The previous checkpoint, if any,
/// stays intact until the rename commits. The temp name carries the
/// process id plus a per-process counter, so *concurrent* writers (e.g.
/// two server connection workers handling simultaneous checkpoint
/// frames) never share a temp file: each rename installs one complete
/// payload, and the last one wins whole.
///
/// This is **the** checkpoint write path: `idldp ingest` and the
/// `idldp-server` checkpoint frame both go through it, so the durability
/// rule is defined exactly once.
///
/// # Errors
/// Propagates filesystem errors. A failed write or fsync removes the
/// temp file (nothing durable was lost — the previous checkpoint is
/// still whole, and a half-written temp would only be mistaken for
/// salvageable state); a failed *rename* leaves the fully-written,
/// fsynced temp file behind for inspection, since at that point it holds
/// a complete payload that only failed to be installed.
pub fn write_checkpoint_atomic(
    path: impl AsRef<std::path::Path>,
    payload: &str,
) -> std::io::Result<()> {
    static TMP_SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let path = path.as_ref();
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(format!(
        ".{}.{}.tmp",
        std::process::id(),
        TMP_SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
    ));
    let tmp = std::path::PathBuf::from(tmp);
    let written = (|| {
        let mut file = std::fs::File::create(&tmp)?;
        std::io::Write::write_all(&mut file, payload.as_bytes())?;
        #[cfg(test)]
        if tests::fault::sync_should_fail() {
            return Err(std::io::Error::other("injected fsync failure"));
        }
        // Data must be on disk before the rename is journaled, or the
        // rename can survive a power loss that the payload does not.
        file.sync_all()
    })();
    if let Err(err) = written {
        let _ = std::fs::remove_file(&tmp);
        return Err(err);
    }
    std::fs::rename(&tmp, path)?;
    // Persist the rename itself (the directory entry); best-effort where
    // directories cannot be opened for sync.
    #[cfg(unix)]
    if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
        if let Ok(dir) = std::fs::File::open(dir) {
            let _ = dir.sync_all();
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Test-only fault injection for [`write_checkpoint_atomic`]: flipping
    /// the flag makes the next sync step fail, standing in for an fsync
    /// error (full disk, dying device) that is otherwise impossible to
    /// provoke deterministically.
    pub(super) mod fault {
        use std::cell::Cell;

        // Thread-local so a test injecting a failure cannot poison the
        // checkpoint writes of tests running concurrently on other
        // threads.
        thread_local! {
            static FAIL_SYNC: Cell<bool> = const { Cell::new(false) };
        }

        pub(crate) fn sync_should_fail() -> bool {
            FAIL_SYNC.with(Cell::get)
        }

        pub(super) fn set_fail_sync(fail: bool) {
            FAIL_SYNC.with(|f| f.set(fail));
        }
    }

    #[test]
    fn construction_and_accessors() {
        let s = AccumulatorSnapshot::new(vec![1, 2, 3], 5).unwrap();
        assert_eq!(s.counts(), &[1, 2, 3]);
        assert_eq!(s.report_len(), 3);
        assert_eq!(s.num_users(), 5);
        assert_eq!(s.clone().into_counts(), vec![1, 2, 3]);
        assert!(AccumulatorSnapshot::new(vec![], 0).is_err());
        let e = AccumulatorSnapshot::empty(4).unwrap();
        assert_eq!(e.counts(), &[0; 4]);
        assert_eq!(e.num_users(), 0);
    }

    #[test]
    fn merge_is_order_independent() {
        let parts = [
            AccumulatorSnapshot::new(vec![1, 0], 1).unwrap(),
            AccumulatorSnapshot::new(vec![0, 7], 3).unwrap(),
            AccumulatorSnapshot::new(vec![2, 2], 2).unwrap(),
        ];
        let mut forward = AccumulatorSnapshot::empty(2).unwrap();
        let mut backward = AccumulatorSnapshot::empty(2).unwrap();
        for p in &parts {
            forward.merge(p).unwrap();
        }
        for p in parts.iter().rev() {
            backward.merge(p).unwrap();
        }
        assert_eq!(forward, backward);
        assert_eq!(forward.counts(), &[3, 9]);
        assert_eq!(forward.num_users(), 6);
    }

    #[test]
    fn merge_rejects_width_mismatch() {
        let mut a = AccumulatorSnapshot::empty(2).unwrap();
        let b = AccumulatorSnapshot::empty(3).unwrap();
        assert!(a.merge(&b).is_err());
    }

    #[test]
    fn checkpoint_round_trip() {
        let s = AccumulatorSnapshot::new(vec![0, u64::MAX, 42], 1_000_000).unwrap();
        let text = s.to_checkpoint_string();
        let restored = AccumulatorSnapshot::from_checkpoint_str(&text).unwrap();
        assert_eq!(restored, s);
    }

    #[test]
    fn atomic_checkpoint_write_round_trips_and_never_tears() {
        let dir = std::env::temp_dir().join(format!(
            "idldp-snapshot-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("state.ckpt");

        // First write lands whole and parses back.
        let first = AccumulatorSnapshot::new(vec![1, 2, 3], 6).unwrap();
        first.write_checkpoint(&path, "run test-stamp\n").unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.ends_with("run test-stamp\n"));
        assert_eq!(
            AccumulatorSnapshot::from_checkpoint_str(&text).unwrap(),
            first
        );
        // No temp sibling may linger after a successful rename.
        assert_eq!(std::fs::read_dir(&dir).unwrap().count(), 1);

        // Overwrite replaces the content in one step (regression for the
        // pre-atomic plain `fs::write`, which could tear on crash: the
        // visible file is only ever a complete payload).
        let second = AccumulatorSnapshot::new(vec![9, 9, 9], 12).unwrap();
        second.write_checkpoint(&path, "").unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(
            AccumulatorSnapshot::from_checkpoint_str(&text).unwrap(),
            second
        );
        assert_eq!(std::fs::read_dir(&dir).unwrap().count(), 1);

        // Concurrent writers never tear: every interleaving commits one
        // complete payload (unique temp names make the renames disjoint).
        let a = first.clone();
        let b = second.clone();
        let path_a = path.clone();
        let path_b = path.clone();
        let ta = std::thread::spawn(move || {
            for _ in 0..50 {
                a.write_checkpoint(&path_a, "").unwrap();
            }
        });
        let tb = std::thread::spawn(move || {
            for _ in 0..50 {
                b.write_checkpoint(&path_b, "").unwrap();
            }
        });
        ta.join().unwrap();
        tb.join().unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let survivor = AccumulatorSnapshot::from_checkpoint_str(&text).unwrap();
        assert!(
            survivor == first || survivor == second,
            "whole payload wins"
        );
        assert_eq!(std::fs::read_dir(&dir).unwrap().count(), 1);
        // Re-establish a known state (either writer may have won above).
        second.write_checkpoint(&path, "").unwrap();

        // A failed write (unwritable directory) must not touch the
        // existing checkpoint.
        let bogus = dir.join("missing-subdir").join("state.ckpt");
        assert!(first.write_checkpoint(&bogus, "").is_err());
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(
            AccumulatorSnapshot::from_checkpoint_str(&text).unwrap(),
            second,
            "failed writes leave the previous checkpoint intact"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn failed_write_or_sync_removes_temp_file_but_rename_failure_keeps_it() {
        let dir = std::env::temp_dir().join(format!(
            "idldp-snapshot-fault-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("state.ckpt");
        let snap = AccumulatorSnapshot::new(vec![4, 4], 2).unwrap();
        snap.write_checkpoint(&path, "").unwrap();

        let tmp_count = || {
            std::fs::read_dir(&dir)
                .unwrap()
                .filter(|e| {
                    e.as_ref()
                        .unwrap()
                        .file_name()
                        .to_string_lossy()
                        .ends_with(".tmp")
                })
                .count()
        };

        // A write-path failure (injected at the fsync step) must clean up
        // its temp file and leave the previous checkpoint untouched.
        fault::set_fail_sync(true);
        let err = snap.write_checkpoint(&path, "").unwrap_err();
        fault::set_fail_sync(false);
        assert!(err.to_string().contains("injected fsync failure"));
        assert_eq!(tmp_count(), 0, "failed write must not leave a .tmp file");
        assert_eq!(
            AccumulatorSnapshot::from_checkpoint_str(&std::fs::read_to_string(&path).unwrap())
                .unwrap(),
            snap,
            "previous checkpoint survives the failed write"
        );

        // A *rename* failure keeps the fully-written temp file for
        // inspection (documented behavior): the target being a directory
        // makes the rename fail after a successful write + fsync.
        let blocked = dir.join("blocked");
        std::fs::create_dir_all(blocked.join("occupier")).unwrap();
        assert!(snap.write_checkpoint(&blocked, "").is_err());
        assert_eq!(
            tmp_count(),
            1,
            "rename failure leaves the complete temp payload behind"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checkpoint_rejects_corruption() {
        let s = AccumulatorSnapshot::new(vec![5, 6], 11).unwrap();
        let text = s.to_checkpoint_string();
        // Flip one count: digest must catch it.
        let tampered = text.replace("counts 5 6", "counts 5 7");
        assert!(AccumulatorSnapshot::from_checkpoint_str(&tampered).is_err());
        // Truncation.
        let truncated = text.lines().take(3).collect::<Vec<_>>().join("\n");
        assert!(AccumulatorSnapshot::from_checkpoint_str(&truncated).is_err());
        // Wrong version.
        let wrong = text.replace("v1", "v99");
        assert!(AccumulatorSnapshot::from_checkpoint_str(&wrong).is_err());
        // Garbage.
        assert!(AccumulatorSnapshot::from_checkpoint_str("").is_err());
        assert!(AccumulatorSnapshot::from_checkpoint_str("hello\nworld").is_err());
    }
}
