//! Sequential-composition accounting (Theorems 1 and 2).
//!
//! LDP composes additively in ε (Theorem 1); MinID-LDP composes additively
//! *per input* (Theorem 2): running mechanisms with budget sets `E₁..E_k`
//! over the same data yields `Σ E_i`-MinID-LDP, where the sum is
//! element-wise. The accountants here track cumulative spend and answer
//! "what total guarantee do I hold now?".

use crate::budget::{BudgetSet, Epsilon};
use crate::error::{Error, Result};

/// Accountant for plain-LDP sequential composition (Theorem 1).
#[derive(Clone, Debug, Default)]
pub struct LdpAccountant {
    total: f64,
    steps: usize,
}

impl LdpAccountant {
    /// Creates an accountant with zero spend.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one ε-LDP mechanism invocation.
    pub fn compose(&mut self, eps: Epsilon) {
        self.total += eps.get();
        self.steps += 1;
    }

    /// Total ε after all recorded invocations.
    pub fn total_epsilon(&self) -> f64 {
        self.total
    }

    /// Number of composed mechanisms.
    pub fn steps(&self) -> usize {
        self.steps
    }
}

/// Accountant for MinID-LDP sequential composition (Theorem 2).
///
/// # Examples
/// ```
/// use idldp_core::budget::BudgetSet;
/// use idldp_core::composition::MinIdLdpAccountant;
/// let mut acc = MinIdLdpAccountant::new(2).unwrap();
/// let e = BudgetSet::from_values(&[0.5, 2.0]).unwrap();
/// acc.compose(&e).unwrap();
/// acc.compose(&e).unwrap();
/// assert_eq!(acc.total_for(0).unwrap(), 1.0); // budgets add per input
/// assert_eq!(acc.pair_bound(0, 1).unwrap(), 1.0); // min over the pair
/// ```
#[derive(Clone, Debug)]
pub struct MinIdLdpAccountant {
    /// Per-input cumulative budgets.
    totals: Vec<f64>,
    steps: usize,
}

impl MinIdLdpAccountant {
    /// Creates an accountant over a domain of `domain_size` inputs.
    pub fn new(domain_size: usize) -> Result<Self> {
        if domain_size == 0 {
            return Err(Error::Empty {
                what: "accountant domain".into(),
            });
        }
        Ok(Self {
            totals: vec![0.0; domain_size],
            steps: 0,
        })
    }

    /// Records one E-MinID-LDP mechanism invocation.
    ///
    /// # Errors
    /// Returns an error if `budgets` has the wrong domain size.
    pub fn compose(&mut self, budgets: &BudgetSet) -> Result<()> {
        if budgets.len() != self.totals.len() {
            return Err(Error::DimensionMismatch {
                what: "composed budget set".into(),
                expected: self.totals.len(),
                actual: budgets.len(),
            });
        }
        for (t, e) in self.totals.iter_mut().zip(budgets.iter()) {
            *t += e.get();
        }
        self.steps += 1;
        Ok(())
    }

    /// The cumulative per-input budget set `Σ E_i` (Theorem 2's guarantee).
    ///
    /// # Errors
    /// Returns an error if nothing has been composed yet (all-zero budgets
    /// are not valid ε values).
    pub fn total_budgets(&self) -> Result<BudgetSet> {
        BudgetSet::from_values(&self.totals)
    }

    /// Cumulative budget of one input.
    pub fn total_for(&self, input: usize) -> Result<f64> {
        self.totals
            .get(input)
            .copied()
            .ok_or(Error::IndexOutOfRange {
                what: "input".into(),
                index: input,
                bound: self.totals.len(),
            })
    }

    /// The pair bound `min(Σε_x, Σε_x')` currently guaranteed for `(x, x')`.
    pub fn pair_bound(&self, x: usize, x_prime: usize) -> Result<f64> {
        Ok(self.total_for(x)?.min(self.total_for(x_prime)?))
    }

    /// Number of composed mechanisms.
    pub fn steps(&self) -> usize {
        self.steps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn eps(v: f64) -> Epsilon {
        Epsilon::new(v).unwrap()
    }

    #[test]
    fn ldp_accountant_sums() {
        let mut acc = LdpAccountant::new();
        acc.compose(eps(0.5));
        acc.compose(eps(1.0));
        assert!((acc.total_epsilon() - 1.5).abs() < 1e-12);
        assert_eq!(acc.steps(), 2);
    }

    #[test]
    fn minid_accountant_sums_per_input() {
        let mut acc = MinIdLdpAccountant::new(3).unwrap();
        acc.compose(&BudgetSet::from_values(&[1.0, 2.0, 4.0]).unwrap())
            .unwrap();
        acc.compose(&BudgetSet::from_values(&[0.5, 0.5, 0.5]).unwrap())
            .unwrap();
        assert_eq!(acc.steps(), 2);
        assert!((acc.total_for(0).unwrap() - 1.5).abs() < 1e-12);
        assert!((acc.total_for(2).unwrap() - 4.5).abs() < 1e-12);
        // Theorem 2 pair bound uses the min of the per-input totals.
        assert!((acc.pair_bound(0, 2).unwrap() - 1.5).abs() < 1e-12);
        let total = acc.total_budgets().unwrap();
        assert_eq!(total.len(), 3);
        assert!((total[1].get() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn minid_accountant_validates() {
        assert!(MinIdLdpAccountant::new(0).is_err());
        let mut acc = MinIdLdpAccountant::new(2).unwrap();
        let wrong = BudgetSet::from_values(&[1.0]).unwrap();
        assert!(acc.compose(&wrong).is_err());
        assert!(acc.total_budgets().is_err(), "zero spend is not a valid ε");
        assert!(acc.total_for(5).is_err());
    }

    #[test]
    fn theorem2_consistency_with_theorem1() {
        // With uniform budget sets, MinID composition reduces to LDP
        // composition on every input.
        let mut minid = MinIdLdpAccountant::new(4).unwrap();
        let mut ldp = LdpAccountant::new();
        for e in [0.3, 0.7, 1.1] {
            minid
                .compose(&BudgetSet::from_values(&[e; 4]).unwrap())
                .unwrap();
            ldp.compose(eps(e));
        }
        for x in 0..4 {
            assert!((minid.total_for(x).unwrap() - ldp.total_epsilon()).abs() < 1e-12);
        }
    }
}
