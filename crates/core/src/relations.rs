//! Relations between MinID-LDP and plain LDP (Lemma 1 of the paper).
//!
//! * If a mechanism satisfies ε-LDP, it satisfies E-MinID-LDP for every `E`
//!   with `min(E) = ε` (LDP already bounds every pair by ε ≤ r(·,·)).
//! * Conversely, E-MinID-LDP implies ε-LDP with
//!   `ε = min( max(E), 2·min(E) )`: the `max(E)` part bounds each pair
//!   directly, and the `2·min(E)` part comes from triangulating through the
//!   most-protected input `x*`.

use crate::budget::{BudgetSet, Epsilon};
use crate::error::Result;

/// The plain-LDP budget implied by E-MinID-LDP (Lemma 1, second part):
/// `min( max(E), 2·min(E) )`.
///
/// # Examples
/// ```
/// use idldp_core::budget::BudgetSet;
/// use idldp_core::relations::minid_implies_ldp;
/// let e = BudgetSet::from_values(&[1.0, 10.0]).unwrap();
/// assert_eq!(minid_implies_ldp(&e), 2.0); // capped at 2·min(E)
/// let e = BudgetSet::from_values(&[1.0, 1.5]).unwrap();
/// assert_eq!(minid_implies_ldp(&e), 1.5); // capped at max(E)
/// ```
pub fn minid_implies_ldp(budgets: &BudgetSet) -> f64 {
    let min = budgets.min().get();
    let max = budgets.max().get();
    max.min(2.0 * min)
}

/// Whether ε-LDP implies E-MinID-LDP (Lemma 1, first part): true iff
/// `ε <= min(E)`, since `r(ε_x, ε_x') >= min(E)` for every pair under any of
/// the monotone r-functions used in this crate.
pub fn ldp_implies_minid(eps: Epsilon, budgets: &BudgetSet) -> bool {
    eps.get() <= budgets.min().get() + f64::EPSILON
}

/// The maximum *relaxation factor* MinID-LDP permits relative to the
/// conservative `min(E)`-LDP deployment: `minid_implies_ldp(E) / min(E)`.
/// Lemma 1 caps this at 2 for complete policy graphs.
pub fn relaxation_factor(budgets: &BudgetSet) -> f64 {
    minid_implies_ldp(budgets) / budgets.min().get()
}

/// A derived summary of where a budget set sits between the two notions.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LemmaOneSummary {
    /// `min(E)` — what plain LDP would have to use.
    pub min_budget: f64,
    /// `max(E)`.
    pub max_budget: f64,
    /// The implied plain-LDP guarantee of an E-MinID-LDP mechanism.
    pub implied_ldp: f64,
    /// `implied_ldp / min_budget` ∈ [1, 2].
    pub relaxation: f64,
}

/// Computes the full Lemma 1 summary for a budget set.
pub fn lemma_one_summary(budgets: &BudgetSet) -> Result<LemmaOneSummary> {
    let min_budget = budgets.min().get();
    let max_budget = budgets.max().get();
    let implied_ldp = minid_implies_ldp(budgets);
    Ok(LemmaOneSummary {
        min_budget,
        max_budget,
        implied_ldp,
        relaxation: implied_ldp / min_budget,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(vals: &[f64]) -> BudgetSet {
        BudgetSet::from_values(vals).unwrap()
    }

    #[test]
    fn uniform_budgets_collapse_to_ldp() {
        let e = set(&[1.0, 1.0, 1.0]);
        assert_eq!(minid_implies_ldp(&e), 1.0);
        assert_eq!(relaxation_factor(&e), 1.0);
    }

    #[test]
    fn wide_spread_capped_at_twice_min() {
        let e = set(&[1.0, 10.0, 100.0]);
        assert_eq!(minid_implies_ldp(&e), 2.0);
        assert_eq!(relaxation_factor(&e), 2.0);
    }

    #[test]
    fn narrow_spread_capped_at_max() {
        let e = set(&[1.0, 1.5]);
        assert_eq!(minid_implies_ldp(&e), 1.5);
        assert_eq!(relaxation_factor(&e), 1.5);
    }

    #[test]
    fn ldp_implication_threshold() {
        let e = set(&[1.0, 2.0]);
        assert!(ldp_implies_minid(Epsilon::new(0.5).unwrap(), &e));
        assert!(ldp_implies_minid(Epsilon::new(1.0).unwrap(), &e));
        assert!(!ldp_implies_minid(Epsilon::new(1.2).unwrap(), &e));
    }

    #[test]
    fn summary_fields_consistent() {
        let e = set(&[0.5, 0.8, 3.0]);
        let s = lemma_one_summary(&e).unwrap();
        assert_eq!(s.min_budget, 0.5);
        assert_eq!(s.max_budget, 3.0);
        assert_eq!(s.implied_ldp, 1.0); // 2·0.5 < 3.0
        assert_eq!(s.relaxation, 2.0);
        assert!((1.0..=2.0).contains(&s.relaxation));
    }

    #[test]
    fn relaxation_always_in_unit_to_two() {
        for vals in [
            vec![1.0],
            vec![0.1, 0.2],
            vec![2.0, 2.0, 2.1],
            vec![0.5, 5.0, 50.0],
        ] {
            let r = relaxation_factor(&set(&vals));
            assert!(
                (1.0 - 1e-12..=2.0 + 1e-12).contains(&r),
                "vals {vals:?} → {r}"
            );
        }
    }
}
