//! Error type shared across the `idldp-core` public API.

/// Errors returned by validating constructors and audits.
#[derive(Clone, Debug, PartialEq)]
pub enum Error {
    /// A privacy budget was non-positive, NaN, or infinite.
    InvalidEpsilon {
        /// The offending value.
        value: f64,
    },
    /// A probability parameter was outside its valid open interval.
    InvalidProbability {
        /// Human-readable name of the parameter (`"a[2]"`, `"q"`, ...).
        name: String,
        /// The offending value.
        value: f64,
    },
    /// Perturbation parameters violate the required ordering (e.g. `a <= b`).
    ParameterOrdering {
        /// Description of the violated ordering.
        detail: String,
    },
    /// Structural mismatch between two collections that must align.
    DimensionMismatch {
        /// What was being matched.
        what: String,
        /// Expected size.
        expected: usize,
        /// Actual size.
        actual: usize,
    },
    /// An item or level index was out of range.
    IndexOutOfRange {
        /// What kind of index.
        what: String,
        /// The offending index.
        index: usize,
        /// Valid exclusive upper bound.
        bound: usize,
    },
    /// A mechanism fails the privacy constraints of a notion.
    PrivacyViolation {
        /// Worst observed log-ratio.
        observed: f64,
        /// Allowed bound at the violating pair.
        allowed: f64,
        /// The violating pair of (level or item) indices.
        pair: (usize, usize),
    },
    /// Empty input where at least one element is required.
    Empty {
        /// What was empty.
        what: String,
    },
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::InvalidEpsilon { value } => {
                write!(f, "privacy budget must be positive and finite, got {value}")
            }
            Error::InvalidProbability { name, value } => {
                write!(f, "probability {name} must lie in (0, 1), got {value}")
            }
            Error::ParameterOrdering { detail } => write!(f, "parameter ordering violated: {detail}"),
            Error::DimensionMismatch {
                what,
                expected,
                actual,
            } => write!(f, "{what}: expected length {expected}, got {actual}"),
            Error::IndexOutOfRange { what, index, bound } => {
                write!(f, "{what} index {index} out of range (bound {bound})")
            }
            Error::PrivacyViolation {
                observed,
                allowed,
                pair,
            } => write!(
                f,
                "privacy constraint violated at pair {pair:?}: log-ratio {observed:.6} > allowed {allowed:.6}"
            ),
            Error::Empty { what } => write!(f, "{what} must not be empty"),
        }
    }
}

impl std::error::Error for Error {}

/// Convenient alias used across the crate.
pub type Result<T> = std::result::Result<T, Error>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = Error::InvalidEpsilon { value: -1.0 };
        assert!(e.to_string().contains("-1"));
        let e = Error::InvalidProbability {
            name: "a[0]".into(),
            value: 1.5,
        };
        assert!(e.to_string().contains("a[0]"));
        let e = Error::DimensionMismatch {
            what: "budgets".into(),
            expected: 3,
            actual: 2,
        };
        assert!(e.to_string().contains("expected length 3"));
        let e = Error::PrivacyViolation {
            observed: 1.0,
            allowed: 0.5,
            pair: (0, 1),
        };
        assert!(e.to_string().contains("(0, 1)"));
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_e: &dyn std::error::Error) {}
        takes_err(&Error::Empty { what: "x".into() });
    }
}
