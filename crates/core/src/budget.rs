//! Privacy budgets (ε) and sets of budgets (the paper's `E`).

use crate::error::{Error, Result};
use serde::{Deserialize, Serialize};

/// A validated privacy budget ε: positive and finite.
///
/// The paper uses a smaller ε to mean *stronger* protection. Budgets are
/// attached to inputs (items) through [`crate::levels::LevelPartition`].
///
/// # Examples
/// ```
/// use idldp_core::budget::Epsilon;
/// let eps = Epsilon::new(1.5).unwrap();
/// assert_eq!(eps.get(), 1.5);
/// assert!(Epsilon::new(-1.0).is_err());
/// assert!(Epsilon::new(f64::INFINITY).is_err());
/// ```
#[derive(Clone, Copy, Debug, PartialEq, PartialOrd, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Epsilon(f64);

impl Epsilon {
    /// Validates and wraps a budget value.
    pub fn new(value: f64) -> Result<Self> {
        if value.is_finite() && value > 0.0 {
            Ok(Self(value))
        } else {
            Err(Error::InvalidEpsilon { value })
        }
    }

    /// The raw value.
    #[inline]
    pub fn get(self) -> f64 {
        self.0
    }

    /// `e^ε`, the multiplicative indistinguishability bound.
    #[inline]
    pub fn exp(self) -> f64 {
        self.0.exp()
    }

    /// The smaller of two budgets.
    #[inline]
    pub fn min(self, other: Epsilon) -> Epsilon {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }

    /// The larger of two budgets.
    #[inline]
    pub fn max(self, other: Epsilon) -> Epsilon {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }
}

impl std::fmt::Display for Epsilon {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ε={:.4}", self.0)
    }
}

/// A non-empty collection of budgets — the paper's `E = {ε_x}`.
///
/// Depending on context the entries are per *input* or per *privacy level*;
/// [`crate::levels::LevelPartition`] maps between the two.
///
/// # Examples
/// ```
/// use idldp_core::budget::BudgetSet;
/// let e = BudgetSet::from_values(&[1.0, 1.2, 2.0, 4.0]).unwrap();
/// assert_eq!(e.min().get(), 1.0); // what plain LDP must fall back to
/// assert_eq!(e.max().get(), 4.0);
/// ```
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct BudgetSet(Vec<Epsilon>);

impl BudgetSet {
    /// Builds a set from raw values, validating each.
    pub fn from_values(values: &[f64]) -> Result<Self> {
        if values.is_empty() {
            return Err(Error::Empty {
                what: "budget set".into(),
            });
        }
        values
            .iter()
            .map(|&v| Epsilon::new(v))
            .collect::<Result<Vec<_>>>()
            .map(Self)
    }

    /// Builds a set from already validated budgets.
    pub fn new(budgets: Vec<Epsilon>) -> Result<Self> {
        if budgets.is_empty() {
            return Err(Error::Empty {
                what: "budget set".into(),
            });
        }
        Ok(Self(budgets))
    }

    /// Number of budgets.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Always `false` (construction rejects empty sets); provided for API
    /// completeness.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Budget at index `i`.
    pub fn get(&self, i: usize) -> Result<Epsilon> {
        self.0.get(i).copied().ok_or(Error::IndexOutOfRange {
            what: "budget".into(),
            index: i,
            bound: self.0.len(),
        })
    }

    /// The smallest budget `min(E)` — what plain LDP would have to use.
    pub fn min(&self) -> Epsilon {
        *self
            .0
            .iter()
            .min_by(|a, b| a.get().partial_cmp(&b.get()).unwrap())
            .expect("non-empty by construction")
    }

    /// The largest budget `max(E)`.
    pub fn max(&self) -> Epsilon {
        *self
            .0
            .iter()
            .max_by(|a, b| a.get().partial_cmp(&b.get()).unwrap())
            .expect("non-empty by construction")
    }

    /// Iterator over budgets.
    pub fn iter(&self) -> impl Iterator<Item = Epsilon> + '_ {
        self.0.iter().copied()
    }

    /// Borrow of the underlying budgets.
    pub fn as_slice(&self) -> &[Epsilon] {
        &self.0
    }

    /// Element-wise sum with another set — the budget arithmetic behind the
    /// MinID-LDP sequential-composition theorem (Theorem 2).
    pub fn add(&self, other: &BudgetSet) -> Result<BudgetSet> {
        if self.len() != other.len() {
            return Err(Error::DimensionMismatch {
                what: "budget sets in composition".into(),
                expected: self.len(),
                actual: other.len(),
            });
        }
        let summed = self
            .0
            .iter()
            .zip(&other.0)
            .map(|(a, b)| Epsilon::new(a.get() + b.get()))
            .collect::<Result<Vec<_>>>()?;
        Ok(BudgetSet(summed))
    }
}

impl std::ops::Index<usize> for BudgetSet {
    type Output = Epsilon;
    fn index(&self, i: usize) -> &Epsilon {
        &self.0[i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epsilon_validation() {
        assert!(Epsilon::new(1.0).is_ok());
        assert!(Epsilon::new(0.0).is_err());
        assert!(Epsilon::new(-1.0).is_err());
        assert!(Epsilon::new(f64::NAN).is_err());
        assert!(Epsilon::new(f64::INFINITY).is_err());
    }

    #[test]
    fn epsilon_ops() {
        let a = Epsilon::new(1.0).unwrap();
        let b = Epsilon::new(2.0).unwrap();
        assert_eq!(a.min(b), a);
        assert_eq!(a.max(b), b);
        assert!((a.exp() - std::f64::consts::E).abs() < 1e-12);
        assert!(a.to_string().contains("1.0000"));
    }

    #[test]
    fn budget_set_min_max() {
        let e = BudgetSet::from_values(&[2.0, 0.5, 3.0]).unwrap();
        assert_eq!(e.min().get(), 0.5);
        assert_eq!(e.max().get(), 3.0);
        assert_eq!(e.len(), 3);
        assert_eq!(e[1].get(), 0.5);
    }

    #[test]
    fn budget_set_rejects_empty_and_bad() {
        assert!(BudgetSet::from_values(&[]).is_err());
        assert!(BudgetSet::from_values(&[1.0, -2.0]).is_err());
        assert!(BudgetSet::new(vec![]).is_err());
    }

    #[test]
    fn budget_set_get_bounds() {
        let e = BudgetSet::from_values(&[1.0]).unwrap();
        assert!(e.get(0).is_ok());
        assert!(matches!(e.get(1), Err(Error::IndexOutOfRange { .. })));
    }

    #[test]
    fn composition_addition() {
        let e1 = BudgetSet::from_values(&[1.0, 2.0]).unwrap();
        let e2 = BudgetSet::from_values(&[0.5, 0.5]).unwrap();
        let sum = e1.add(&e2).unwrap();
        assert_eq!(sum[0].get(), 1.5);
        assert_eq!(sum[1].get(), 2.5);
        let bad = BudgetSet::from_values(&[1.0]).unwrap();
        assert!(e1.add(&bad).is_err());
    }

    #[test]
    fn serde_roundtrip() {
        let e = BudgetSet::from_values(&[1.0, 2.0]).unwrap();
        let json = serde_json_like(&e);
        assert!(json.contains("1.0"));
    }

    // serde_json is not a dependency; just check Serialize is derivable by
    // using the serde internals through a tiny manual serializer stand-in.
    fn serde_json_like(e: &BudgetSet) -> String {
        format!("{:?}", e.as_slice())
    }
}
