//! Privacy notions: ε-LDP, E-ID-LDP, and its instantiations.
//!
//! Definition 2 of the paper makes the indistinguishability of a pair of
//! inputs `x, x'` a function `r(ε_x, ε_x')` of their budgets. This module
//! provides the [`RFunction`] combinators (MinID-LDP uses `min`, the paper's
//! Section IV-C also suggests `avg`), and [`Notion`] — a value describing
//! which guarantee a mechanism is supposed to satisfy, used by the auditing
//! code and the optimizers.

use crate::budget::{BudgetSet, Epsilon};
use crate::error::{Error, Result};
use serde::{Deserialize, Serialize};

/// The combination function `r(ε_x, ε_x')` of Definition 2.
///
/// # Examples
/// ```
/// use idldp_core::budget::Epsilon;
/// use idldp_core::notion::RFunction;
/// let (a, b) = (Epsilon::new(1.0).unwrap(), Epsilon::new(3.0).unwrap());
/// assert_eq!(RFunction::Min.combine(a, b), 1.0); // MinID-LDP
/// assert_eq!(RFunction::Avg.combine(a, b), 2.0); // AvgID-LDP
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum RFunction {
    /// `min(ε, ε')` — MinID-LDP (Definition 3), the paper's main notion.
    Min,
    /// `(ε + ε')/2` — AvgID-LDP (Section IV-C).
    Avg,
    /// `max(ε, ε')` — the loosest symmetric choice; included for ablations.
    Max,
}

impl RFunction {
    /// Combines the budgets of a pair of inputs into the pair's budget.
    #[inline]
    pub fn combine(self, a: Epsilon, b: Epsilon) -> f64 {
        match self {
            RFunction::Min => a.get().min(b.get()),
            RFunction::Avg => 0.5 * (a.get() + b.get()),
            RFunction::Max => a.get().max(b.get()),
        }
    }

    /// Short lowercase name (`"min"`, `"avg"`, `"max"`).
    pub fn name(self) -> &'static str {
        match self {
            RFunction::Min => "min",
            RFunction::Avg => "avg",
            RFunction::Max => "max",
        }
    }
}

/// A privacy guarantee a mechanism can be audited against.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Notion {
    /// Plain ε-LDP (Definition 1): one budget for every pair of inputs.
    Ldp(Epsilon),
    /// E-ID-LDP (Definition 2): per-input budgets combined by `r`.
    IdLdp {
        /// Per-input budgets, the paper's `E` (indexed by input).
        budgets: BudgetSet,
        /// The combination function.
        r: RFunction,
    },
}

impl Notion {
    /// MinID-LDP with the given per-input budgets (Definition 3).
    pub fn min_id_ldp(budgets: BudgetSet) -> Self {
        Notion::IdLdp {
            budgets,
            r: RFunction::Min,
        }
    }

    /// The allowed log-ratio bound for the input pair `(x, x')`.
    ///
    /// For LDP this is ε regardless of the pair; for ID-LDP it is
    /// `r(ε_x, ε_x')`.
    pub fn pair_budget(&self, x: usize, x_prime: usize) -> Result<f64> {
        match self {
            Notion::Ldp(eps) => Ok(eps.get()),
            Notion::IdLdp { budgets, r } => {
                let ex = budgets.get(x)?;
                let exp = budgets.get(x_prime)?;
                Ok(r.combine(ex, exp))
            }
        }
    }

    /// Number of inputs this notion is defined over (`None` for plain LDP,
    /// which applies to any domain).
    pub fn domain_size(&self) -> Option<usize> {
        match self {
            Notion::Ldp(_) => None,
            Notion::IdLdp { budgets, .. } => Some(budgets.len()),
        }
    }

    /// The complete pairwise-budget graph: one entry `(x, x', bound)` for
    /// every unordered pair — the data behind Fig. 1 of the paper.
    pub fn pairwise_budget_graph(&self, domain_size: usize) -> Result<Vec<(usize, usize, f64)>> {
        if let Some(m) = self.domain_size() {
            if m != domain_size {
                return Err(Error::DimensionMismatch {
                    what: "notion domain".into(),
                    expected: m,
                    actual: domain_size,
                });
            }
        }
        let mut edges = Vec::with_capacity(domain_size * (domain_size - 1) / 2);
        for x in 0..domain_size {
            for x_prime in (x + 1)..domain_size {
                edges.push((x, x_prime, self.pair_budget(x, x_prime)?));
            }
        }
        Ok(edges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn eps(v: f64) -> Epsilon {
        Epsilon::new(v).unwrap()
    }

    #[test]
    fn r_functions() {
        let a = eps(1.0);
        let b = eps(3.0);
        assert_eq!(RFunction::Min.combine(a, b), 1.0);
        assert_eq!(RFunction::Avg.combine(a, b), 2.0);
        assert_eq!(RFunction::Max.combine(a, b), 3.0);
        assert_eq!(RFunction::Min.name(), "min");
    }

    #[test]
    fn r_functions_symmetric() {
        let a = eps(0.7);
        let b = eps(2.2);
        for r in [RFunction::Min, RFunction::Avg, RFunction::Max] {
            assert_eq!(r.combine(a, b), r.combine(b, a));
        }
    }

    #[test]
    fn ldp_pair_budget_is_constant() {
        let n = Notion::Ldp(eps(0.9));
        assert_eq!(n.pair_budget(0, 5).unwrap(), 0.9);
        assert_eq!(n.pair_budget(2, 3).unwrap(), 0.9);
        assert_eq!(n.domain_size(), None);
    }

    #[test]
    fn min_id_ldp_pair_budget() {
        let budgets = BudgetSet::from_values(&[1.0, 2.0, 4.0]).unwrap();
        let n = Notion::min_id_ldp(budgets);
        assert_eq!(n.pair_budget(0, 1).unwrap(), 1.0);
        assert_eq!(n.pair_budget(1, 2).unwrap(), 2.0);
        assert_eq!(n.pair_budget(2, 2).unwrap(), 4.0);
        assert_eq!(n.domain_size(), Some(3));
        assert!(n.pair_budget(0, 3).is_err());
    }

    #[test]
    fn pairwise_graph_complete() {
        let budgets = BudgetSet::from_values(&[1.0, 2.0, 4.0, 4.0]).unwrap();
        let n = Notion::min_id_ldp(budgets);
        let g = n.pairwise_budget_graph(4).unwrap();
        assert_eq!(g.len(), 6); // C(4,2)
                                // Edge between the two ε=4 inputs carries budget 4.
        let e = g.iter().find(|(a, b, _)| (*a, *b) == (2, 3)).unwrap();
        assert_eq!(e.2, 4.0);
        // Any edge touching input 0 carries its ε=1.
        assert!(g
            .iter()
            .filter(|(a, _, _)| *a == 0)
            .all(|(_, _, w)| *w == 1.0));
    }

    #[test]
    fn pairwise_graph_dimension_check() {
        let budgets = BudgetSet::from_values(&[1.0, 2.0]).unwrap();
        let n = Notion::min_id_ldp(budgets);
        assert!(n.pairwise_budget_graph(3).is_err());
        // LDP adapts to any domain size.
        let l = Notion::Ldp(eps(1.0));
        assert_eq!(l.pairwise_budget_graph(3).unwrap().len(), 3);
    }
}
