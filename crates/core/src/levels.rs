//! Privacy-level partitions of the item domain.
//!
//! The paper assumes the item domain `I = {1..m}` is split into `t` privacy
//! levels `I_1, ..., I_t`, each with one budget ε_i (Section III-A). All
//! items in the same level share the same perturbation parameters, which is
//! what shrinks the optimization problems from `O(m)` to `O(t)` unknowns.

use crate::budget::{BudgetSet, Epsilon};
use crate::error::{Error, Result};
use serde::{Deserialize, Serialize};

/// Assignment of `m` items to `t` privacy levels with per-level budgets.
///
/// # Examples
/// ```
/// use idldp_core::budget::Epsilon;
/// use idldp_core::levels::LevelPartition;
/// // Item 0 sensitive (ε = 0.5), items 1–3 ordinary (ε = 2).
/// let levels = LevelPartition::new(
///     vec![0, 1, 1, 1],
///     vec![Epsilon::new(0.5).unwrap(), Epsilon::new(2.0).unwrap()],
/// ).unwrap();
/// assert_eq!(levels.num_levels(), 2);
/// assert_eq!(levels.counts(), &[1, 3]);
/// assert_eq!(levels.item_budget(2).unwrap().get(), 2.0);
/// ```
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct LevelPartition {
    /// `level_of[item] = level index` (length `m`).
    level_of: Vec<usize>,
    /// Budget of each level (length `t`).
    budgets: Vec<Epsilon>,
    /// Number of items in each level, the paper's `m_i` (length `t`).
    counts: Vec<usize>,
}

impl LevelPartition {
    /// Creates a partition from an item→level map and per-level budgets.
    ///
    /// Validates that every referenced level exists and that every level is
    /// non-empty (empty levels would make the optimizer's `m_i = 0` terms
    /// degenerate; drop unused levels before constructing).
    pub fn new(level_of: Vec<usize>, budgets: Vec<Epsilon>) -> Result<Self> {
        if level_of.is_empty() {
            return Err(Error::Empty {
                what: "item domain".into(),
            });
        }
        if budgets.is_empty() {
            return Err(Error::Empty {
                what: "level budgets".into(),
            });
        }
        let t = budgets.len();
        let mut counts = vec![0usize; t];
        for (item, &lvl) in level_of.iter().enumerate() {
            if lvl >= t {
                return Err(Error::IndexOutOfRange {
                    what: format!("level of item {item}"),
                    index: lvl,
                    bound: t,
                });
            }
            counts[lvl] += 1;
        }
        if let Some(empty) = counts.iter().position(|&c| c == 0) {
            return Err(Error::Empty {
                what: format!("privacy level {empty}"),
            });
        }
        Ok(Self {
            level_of,
            budgets,
            counts,
        })
    }

    /// Single-level partition: all `m` items share one budget (plain LDP).
    pub fn uniform(m: usize, eps: Epsilon) -> Result<Self> {
        Self::new(vec![0; m], vec![eps])
    }

    /// Builds a partition from per-item budgets, deduplicating equal values
    /// into levels (ordering levels by ascending budget).
    pub fn from_item_budgets(item_budgets: &[Epsilon]) -> Result<Self> {
        if item_budgets.is_empty() {
            return Err(Error::Empty {
                what: "item budgets".into(),
            });
        }
        let mut unique: Vec<f64> = item_budgets.iter().map(|e| e.get()).collect();
        unique.sort_by(|a, b| a.partial_cmp(b).unwrap());
        unique.dedup_by(|a, b| (*a - *b).abs() < 1e-12);
        let budgets = unique
            .iter()
            .map(|&v| Epsilon::new(v))
            .collect::<Result<Vec<_>>>()?;
        let level_of = item_budgets
            .iter()
            .map(|e| {
                unique
                    .iter()
                    .position(|&u| (u - e.get()).abs() < 1e-12)
                    .expect("value present by construction")
            })
            .collect();
        Self::new(level_of, budgets)
    }

    /// Number of items `m`.
    pub fn num_items(&self) -> usize {
        self.level_of.len()
    }

    /// Number of levels `t`.
    pub fn num_levels(&self) -> usize {
        self.budgets.len()
    }

    /// Level index of an item.
    pub fn level_of(&self, item: usize) -> Result<usize> {
        self.level_of
            .get(item)
            .copied()
            .ok_or(Error::IndexOutOfRange {
                what: "item".into(),
                index: item,
                bound: self.num_items(),
            })
    }

    /// Budget of an item.
    pub fn item_budget(&self, item: usize) -> Result<Epsilon> {
        Ok(self.budgets[self.level_of(item)?])
    }

    /// Budget of a level.
    pub fn level_budget(&self, level: usize) -> Result<Epsilon> {
        self.budgets
            .get(level)
            .copied()
            .ok_or(Error::IndexOutOfRange {
                what: "level".into(),
                index: level,
                bound: self.num_levels(),
            })
    }

    /// Per-level budgets (length `t`).
    pub fn budgets(&self) -> &[Epsilon] {
        &self.budgets
    }

    /// Per-level item counts `m_i` (length `t`).
    pub fn counts(&self) -> &[usize] {
        &self.counts
    }

    /// The item→level map (length `m`).
    pub fn level_map(&self) -> &[usize] {
        &self.level_of
    }

    /// All per-item budgets as a [`BudgetSet`] (the paper's `E` over inputs).
    pub fn item_budget_set(&self) -> BudgetSet {
        BudgetSet::new(self.level_of.iter().map(|&lvl| self.budgets[lvl]).collect())
            .expect("non-empty by construction")
    }

    /// Smallest budget across levels — what plain LDP must fall back to.
    pub fn min_budget(&self) -> Epsilon {
        self.budgets
            .iter()
            .copied()
            .reduce(Epsilon::min)
            .expect("non-empty by construction")
    }

    /// Largest budget across levels.
    pub fn max_budget(&self) -> Epsilon {
        self.budgets
            .iter()
            .copied()
            .reduce(Epsilon::max)
            .expect("non-empty by construction")
    }

    /// Index of a level holding the minimum budget.
    pub fn min_budget_level(&self) -> usize {
        let min = self.min_budget().get();
        self.budgets
            .iter()
            .position(|e| e.get() == min)
            .expect("non-empty by construction")
    }

    /// Items belonging to `level`, in ascending item order.
    pub fn items_in_level(&self, level: usize) -> Vec<usize> {
        self.level_of
            .iter()
            .enumerate()
            .filter_map(|(item, &l)| (l == level).then_some(item))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn eps(v: f64) -> Epsilon {
        Epsilon::new(v).unwrap()
    }

    #[test]
    fn basic_partition() {
        let p = LevelPartition::new(vec![0, 1, 1, 0, 1], vec![eps(1.0), eps(2.0)]).unwrap();
        assert_eq!(p.num_items(), 5);
        assert_eq!(p.num_levels(), 2);
        assert_eq!(p.counts(), &[2, 3]);
        assert_eq!(p.level_of(3).unwrap(), 0);
        assert_eq!(p.item_budget(1).unwrap().get(), 2.0);
        assert_eq!(p.min_budget().get(), 1.0);
        assert_eq!(p.max_budget().get(), 2.0);
        assert_eq!(p.min_budget_level(), 0);
        assert_eq!(p.items_in_level(0), vec![0, 3]);
    }

    #[test]
    fn rejects_bad_structure() {
        assert!(LevelPartition::new(vec![], vec![eps(1.0)]).is_err());
        assert!(LevelPartition::new(vec![0], vec![]).is_err());
        // Level index out of range.
        assert!(LevelPartition::new(vec![0, 2], vec![eps(1.0), eps(2.0)]).is_err());
        // Empty level 1.
        assert!(LevelPartition::new(vec![0, 0], vec![eps(1.0), eps(2.0)]).is_err());
    }

    #[test]
    fn uniform_is_single_level() {
        let p = LevelPartition::uniform(4, eps(0.7)).unwrap();
        assert_eq!(p.num_levels(), 1);
        assert_eq!(p.counts(), &[4]);
        assert_eq!(p.item_budget(2).unwrap().get(), 0.7);
    }

    #[test]
    fn from_item_budgets_dedups_and_sorts() {
        let p =
            LevelPartition::from_item_budgets(&[eps(2.0), eps(1.0), eps(2.0), eps(1.0)]).unwrap();
        assert_eq!(p.num_levels(), 2);
        // Levels sorted ascending by budget.
        assert_eq!(p.level_budget(0).unwrap().get(), 1.0);
        assert_eq!(p.level_budget(1).unwrap().get(), 2.0);
        assert_eq!(p.level_map(), &[1, 0, 1, 0]);
        assert_eq!(p.counts(), &[2, 2]);
    }

    #[test]
    fn item_budget_set_expands_levels() {
        let p = LevelPartition::new(vec![0, 1, 0], vec![eps(1.0), eps(3.0)]).unwrap();
        let e = p.item_budget_set();
        assert_eq!(e.len(), 3);
        assert_eq!(e[0].get(), 1.0);
        assert_eq!(e[1].get(), 3.0);
        assert_eq!(e[2].get(), 1.0);
    }

    #[test]
    fn out_of_range_queries() {
        let p = LevelPartition::uniform(2, eps(1.0)).unwrap();
        assert!(p.level_of(5).is_err());
        assert!(p.item_budget(5).is_err());
        assert!(p.level_budget(1).is_err());
    }
}
