//! Prior–posterior privacy-leakage bounds (Table I of the paper).
//!
//! For an input `x` with prior `Pr(x)` and any output `y`, the leakage ratio
//! `Pr(x)/Pr(x|y) = Pr(y)/Pr(y|x)` is bounded above and below depending on
//! the notion a mechanism satisfies. Table I lists those bounds for LDP,
//! personalized LDP (PLDP), geo-indistinguishability, and MinID-LDP; this
//! module computes them so the `table1` experiment binary can print the
//! table (and tests can check monotonicity properties).

use crate::budget::{BudgetSet, Epsilon};
use crate::error::{Error, Result};

/// A two-sided bound on the prior–posterior ratio `Pr(x)/Pr(x|y)`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LeakageBound {
    /// Lower bound on the ratio.
    pub lower: f64,
    /// Upper bound on the ratio.
    pub upper: f64,
}

impl LeakageBound {
    /// Width of the bound in log-space, `ln(upper/lower)` — a scalar
    /// summary of how much the adversary can move the prior.
    pub fn log_width(&self) -> f64 {
        (self.upper / self.lower).ln()
    }
}

/// LDP row of Table I: `[e^{−ε}, e^{ε}]`, independent of the input.
pub fn ldp_bound(eps: Epsilon) -> LeakageBound {
    LeakageBound {
        lower: (-eps.get()).exp(),
        upper: eps.get().exp(),
    }
}

/// PLDP row of Table I: `[e^{−ε_u}, e^{ε_u}]` for a user with personal
/// budget `ε_u` (user-level, not input-level, discrimination).
pub fn pldp_bound(eps_user: Epsilon) -> LeakageBound {
    ldp_bound(eps_user)
}

/// Geo-indistinguishability row of Table I:
/// `[ Σ_x' Pr(x')e^{−ε·d(x,x')}, Σ_x' Pr(x')e^{ε·d(x,x')} ]`.
///
/// `prior` and `distances` are indexed by `x'`; `distances[x'] = d(x, x')`.
///
/// # Errors
/// Returns an error if the slices disagree in length or the prior does not
/// sum to 1 (tolerance 1e-6).
pub fn geo_ind_bound(eps: Epsilon, prior: &[f64], distances: &[f64]) -> Result<LeakageBound> {
    if prior.len() != distances.len() {
        return Err(Error::DimensionMismatch {
            what: "prior vs distances".into(),
            expected: prior.len(),
            actual: distances.len(),
        });
    }
    let total: f64 = prior.iter().sum();
    if (total - 1.0).abs() > 1e-6 {
        return Err(Error::InvalidProbability {
            name: "prior sum".into(),
            value: total,
        });
    }
    let e = eps.get();
    let lower = prior
        .iter()
        .zip(distances)
        .map(|(p, d)| p * (-e * d).exp())
        .sum();
    let upper = prior
        .iter()
        .zip(distances)
        .map(|(p, d)| p * (e * d).exp())
        .sum();
    Ok(LeakageBound { lower, upper })
}

/// MinID-LDP row of Table I:
/// `[e^{−min(ε_x, 2·min E)}, e^{min(ε_x, 2·min E)}]` — input-discriminative,
/// with the Lemma 1 cap `2·min(E)`.
///
/// # Errors
/// Returns an error if `x` is outside the budget set's domain.
pub fn min_id_ldp_bound(budgets: &BudgetSet, x: usize) -> Result<LeakageBound> {
    let eps_x = budgets.get(x)?.get();
    let cap = 2.0 * budgets.min().get();
    let effective = eps_x.min(cap);
    Ok(LeakageBound {
        lower: (-effective).exp(),
        upper: effective.exp(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn eps(v: f64) -> Epsilon {
        Epsilon::new(v).unwrap()
    }

    #[test]
    fn ldp_bound_symmetric_in_log() {
        let b = ldp_bound(eps(1.0));
        assert!((b.lower * b.upper - 1.0).abs() < 1e-12);
        assert!((b.log_width() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn pldp_equals_ldp_shape() {
        assert_eq!(pldp_bound(eps(0.7)), ldp_bound(eps(0.7)));
    }

    #[test]
    fn geo_ind_validates_and_bounds() {
        let prior = [0.5, 0.3, 0.2];
        let d = [0.0, 1.0, 2.0];
        let b = geo_ind_bound(eps(1.0), &prior, &d).unwrap();
        assert!(b.lower < 1.0 && b.upper > 1.0);
        // Zero distances everywhere → no discrimination → bound [1, 1].
        let b0 = geo_ind_bound(eps(1.0), &prior, &[0.0; 3]).unwrap();
        assert!((b0.lower - 1.0).abs() < 1e-12);
        assert!((b0.upper - 1.0).abs() < 1e-12);
        assert!(geo_ind_bound(eps(1.0), &prior, &[0.0; 2]).is_err());
        assert!(geo_ind_bound(eps(1.0), &[0.5, 0.2], &[0.0, 1.0]).is_err());
    }

    #[test]
    fn minid_bound_is_input_discriminative() {
        let budgets = BudgetSet::from_values(&[1.0, 1.2, 2.0, 4.0]).unwrap();
        // Most sensitive input gets its own (tight) budget.
        let b0 = min_id_ldp_bound(&budgets, 0).unwrap();
        assert!((b0.upper - 1.0_f64.exp()).abs() < 1e-12);
        // Least sensitive input capped by 2·min(E) = 2.
        let b3 = min_id_ldp_bound(&budgets, 3).unwrap();
        assert!((b3.upper - 2.0_f64.exp()).abs() < 1e-12);
        // Moderate input below the cap keeps its own budget.
        let b1 = min_id_ldp_bound(&budgets, 1).unwrap();
        assert!((b1.upper - 1.2_f64.exp()).abs() < 1e-12);
        assert!(min_id_ldp_bound(&budgets, 9).is_err());
    }

    #[test]
    fn minid_never_exceeds_worstcase_ldp_at_maxbudget() {
        // MinID bound for any x is at most the LDP bound at max(E)… and at
        // least the LDP bound at min(E).
        let budgets = BudgetSet::from_values(&[0.5, 1.0, 3.0]).unwrap();
        let lo = ldp_bound(budgets.min());
        let hi = ldp_bound(budgets.max());
        for x in 0..3 {
            let b = min_id_ldp_bound(&budgets, x).unwrap();
            assert!(b.upper <= hi.upper + 1e-12);
            assert!(b.upper >= lo.upper - 1e-12);
        }
    }
}
