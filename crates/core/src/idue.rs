//! IDUE — Input-Discriminative Unary Encoding (Algorithm 1).
//!
//! IDUE is a [`UnaryEncoding`] whose per-bit probabilities are expanded from
//! per-*level* parameters: every item in privacy level `i` gets the same
//! `(a_i, b_i)`. The level parameters come from the optimizers in
//! `idldp-opt` (models opt0/opt1/opt2); this type glues a solved
//! [`LevelParams`] to a [`LevelPartition`] and exposes perturbation and the
//! matching estimator.

use crate::budget::Epsilon;
use crate::error::Result;
use crate::estimator::FrequencyEstimator;
use crate::levels::LevelPartition;
use crate::notion::{Notion, RFunction};
use crate::params::LevelParams;
use crate::ue::UnaryEncoding;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// The IDUE mechanism for single-item inputs.
///
/// # Examples
/// ```
/// use idldp_core::budget::Epsilon;
/// use idldp_core::idue::Idue;
/// use idldp_core::levels::LevelPartition;
/// use idldp_core::params::LevelParams;
/// use rand::SeedableRng;
///
/// let levels = LevelPartition::new(
///     vec![0, 1, 1],
///     vec![Epsilon::new(1.0).unwrap(), Epsilon::new(2.0).unwrap()],
/// ).unwrap();
/// let params = LevelParams::new(vec![0.55, 0.6], vec![0.40, 0.3]).unwrap();
/// let idue = Idue::new(levels, &params).unwrap();
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let report = idue.perturb_item(1, &mut rng);
/// assert_eq!(report.len(), 3);
/// ```
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Idue {
    levels: LevelPartition,
    params: LevelParams,
    ue: UnaryEncoding,
}

impl Idue {
    /// Builds IDUE from a level partition and solved per-level parameters.
    ///
    /// This only checks structural validity; use [`Idue::verify`] (or the
    /// `audit` module) to check the privacy constraints — the split lets
    /// tests construct deliberately violating mechanisms.
    pub fn new(levels: LevelPartition, params: &LevelParams) -> Result<Self> {
        if levels.num_levels() != params.num_levels() {
            return Err(crate::error::Error::DimensionMismatch {
                what: "IDUE levels vs params".into(),
                expected: levels.num_levels(),
                actual: params.num_levels(),
            });
        }
        let m = levels.num_items();
        let mut a = Vec::with_capacity(m);
        let mut b = Vec::with_capacity(m);
        for item in 0..m {
            let lvl = levels.level_of(item).expect("validated");
            a.push(params.a()[lvl]);
            b.push(params.b()[lvl]);
        }
        let ue = UnaryEncoding::new(a, b)?;
        Ok(Self {
            levels,
            params: params.clone(),
            ue,
        })
    }

    /// Plain-LDP IDUE: a single level with RAPPOR (symmetric UE) parameters.
    /// Convenience for expressing the baselines in IDUE form.
    pub fn rappor(m: usize, eps: Epsilon) -> Result<Self> {
        let levels = LevelPartition::uniform(m, eps)?;
        let half = (eps.get() / 2.0).exp();
        let a = half / (half + 1.0);
        let params = LevelParams::new(vec![a], vec![1.0 - a])?;
        Self::new(levels, &params)
    }

    /// Plain-LDP IDUE with OUE parameters.
    pub fn oue(m: usize, eps: Epsilon) -> Result<Self> {
        let levels = LevelPartition::uniform(m, eps)?;
        let params = LevelParams::new(vec![0.5], vec![1.0 / (eps.exp() + 1.0)])?;
        Self::new(levels, &params)
    }

    /// Perturbs a single item (Algorithm 1: one-hot encode, flip per bit).
    ///
    /// # Panics
    /// Panics if `item >= self.domain_size()` — an out-of-domain input is a
    /// programming error on the client, not a recoverable condition.
    pub fn perturb_item<R: Rng + ?Sized>(&self, item: usize, rng: &mut R) -> Vec<bool> {
        self.ue
            .perturb_one_hot(item, rng)
            .expect("item must be inside the mechanism's domain")
    }

    /// The underlying per-bit unary encoding.
    pub fn unary_encoding(&self) -> &UnaryEncoding {
        &self.ue
    }

    /// The level partition.
    pub fn levels(&self) -> &LevelPartition {
        &self.levels
    }

    /// The per-level parameters.
    pub fn params(&self) -> &LevelParams {
        &self.params
    }

    /// Domain size `m`.
    pub fn domain_size(&self) -> usize {
        self.levels.num_items()
    }

    /// The matching unbiased estimator for `n` users (Eq. 8).
    pub fn estimator(&self, n: u64) -> FrequencyEstimator {
        FrequencyEstimator::new(self.ue.a().to_vec(), self.ue.b().to_vec(), n, 1.0)
            .expect("UE parameters already validated")
    }

    /// Verifies the Eq. 7 privacy constraints against this partition's
    /// budgets combined by `r`, with tolerance `tol`.
    pub fn verify(&self, r: RFunction, tol: f64) -> Result<()> {
        self.params.verify(&self.levels, r, tol)
    }

    /// The MinID-LDP notion this mechanism is intended to satisfy (over the
    /// item domain).
    pub fn intended_notion(&self) -> Notion {
        Notion::min_id_ldp(self.levels.item_budget_set())
    }

    /// The tightest plain-LDP budget the mechanism actually provides.
    pub fn ldp_epsilon(&self) -> f64 {
        self.ue.ldp_epsilon()
    }
}

// ---------------------------------------------------------------------------
// Unified trait layer
// ---------------------------------------------------------------------------

use crate::mechanism::{
    check_item_input, BatchMechanism, BitProfile, CountAccumulator, FrequencyOracle, Input,
    InputBatch, InputKind, Mechanism,
};
use crate::oracle::CalibratingOracle;
use rand::RngCore;

impl Mechanism for Idue {
    fn kind(&self) -> &'static str {
        "idue"
    }

    fn domain_size(&self) -> usize {
        Idue::domain_size(self)
    }

    fn report_len(&self) -> usize {
        Idue::domain_size(self)
    }

    fn input_kind(&self) -> InputKind {
        InputKind::Item
    }

    fn perturb_into(
        &self,
        input: Input<'_>,
        rng: &mut dyn RngCore,
        report: &mut [u8],
    ) -> Result<()> {
        let hot = check_item_input(input, Idue::domain_size(self))?;
        self.ue.perturb_one_hot_into(hot, rng, report)
    }

    fn encode_hot(&self, input: Input<'_>, _rng: &mut dyn RngCore) -> Result<usize> {
        check_item_input(input, Idue::domain_size(self))
    }

    fn ldp_epsilon(&self) -> f64 {
        Idue::ldp_epsilon(self)
    }

    fn frequency_oracle(&self, n: u64) -> Box<dyn FrequencyOracle> {
        Box::new(
            CalibratingOracle::new(self.estimator(n), Idue::domain_size(self))
                .expect("widths match"),
        )
    }

    fn bit_profile(&self) -> Option<BitProfile> {
        Some(BitProfile {
            a: self.ue.a().to_vec(),
            b: self.ue.b().to_vec(),
        })
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

impl BatchMechanism for Idue {
    /// Fast path: per-level probabilities are expanded once in the inner
    /// [`UnaryEncoding`]; the batch loop draws bits straight into the
    /// accumulator with no per-user report buffer.
    fn perturb_batch(
        &self,
        batch: InputBatch<'_>,
        rng: &mut dyn RngCore,
        acc: &mut CountAccumulator,
    ) -> Result<()> {
        let m = Idue::domain_size(self);
        let InputBatch::Items(items) = batch else {
            check_item_input(Input::Set(&[]), m)?;
            unreachable!("set inputs are rejected above");
        };
        if acc.counts().len() != m {
            return Err(crate::error::Error::DimensionMismatch {
                what: "batch accumulator".into(),
                expected: m,
                actual: acc.counts().len(),
            });
        }
        for &item in items {
            let hot = check_item_input(Input::Item(item as usize), m)?;
            self.ue.accumulate_one_hot(hot, rng, acc);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use idldp_num::rng::SplitMix64;

    fn eps(v: f64) -> Epsilon {
        Epsilon::new(v).unwrap()
    }

    fn toy() -> Idue {
        // Table II setting: item 0 at ε=ln4, items 1..5 at ε=ln6.
        let levels = LevelPartition::new(
            vec![0, 1, 1, 1, 1],
            vec![eps(4.0_f64.ln()), eps(6.0_f64.ln())],
        )
        .unwrap();
        let params = LevelParams::new(vec![0.59, 0.67], vec![0.33, 0.28]).unwrap();
        Idue::new(levels, &params).unwrap()
    }

    #[test]
    fn expands_levels_to_bits() {
        let idue = toy();
        let ue = idue.unary_encoding();
        assert_eq!(ue.num_bits(), 5);
        assert_eq!(ue.a()[0], 0.59);
        assert_eq!(ue.a()[1], 0.67);
        assert_eq!(ue.b()[0], 0.33);
        assert_eq!(ue.b()[4], 0.28);
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let levels = LevelPartition::uniform(3, eps(1.0)).unwrap();
        let params = LevelParams::new(vec![0.6, 0.7], vec![0.2, 0.3]).unwrap();
        assert!(Idue::new(levels, &params).is_err());
    }

    #[test]
    fn toy_satisfies_minid_but_tighter_than_worstcase_ldp() {
        let idue = toy();
        assert!(idue.verify(RFunction::Min, 1e-2).is_ok());
        // It does NOT satisfy min{E}=ln4 LDP (that's the point: it relaxes
        // the protection for the less sensitive items).
        assert!(idue.ldp_epsilon() > 4.0_f64.ln() - 1e-2);
        // …but by Lemma 1 it must satisfy min(max E, 2 min E)-LDP.
        let bound = (6.0_f64.ln()).min(2.0 * 4.0_f64.ln());
        assert!(idue.ldp_epsilon() <= bound + 1e-2);
    }

    #[test]
    fn baselines_satisfy_their_epsilon() {
        let r = Idue::rappor(6, eps(1.0)).unwrap();
        assert!((r.ldp_epsilon() - 1.0).abs() < 1e-9);
        let o = Idue::oue(6, eps(1.0)).unwrap();
        assert!((o.ldp_epsilon() - 1.0).abs() < 1e-9);
        // Both are single-level LDP mechanisms and trivially MinID-LDP for
        // uniform budgets.
        assert!(r.verify(RFunction::Min, 1e-9).is_ok());
        assert!(o.verify(RFunction::Min, 1e-9).is_ok());
    }

    #[test]
    fn perturb_and_estimate_roundtrip() {
        // End-to-end: many users all holding item 1; estimator should
        // recover approximately n for item 1 and ~0 elsewhere.
        let idue = toy();
        let n = 40_000u64;
        let mut rng = SplitMix64::new(11);
        let mut counts = vec![0u64; 5];
        for _ in 0..n {
            let y = idue.perturb_item(1, &mut rng);
            for (c, bit) in counts.iter_mut().zip(&y) {
                *c += *bit as u64;
            }
        }
        let est = idue.estimator(n).estimate(&counts).unwrap();
        assert!((est[1] - n as f64).abs() < 0.03 * n as f64, "est={est:?}");
        for k in [0usize, 2, 3, 4] {
            assert!(est[k].abs() < 0.03 * n as f64, "est={est:?}");
        }
    }

    #[test]
    fn intended_notion_matches_budgets() {
        let idue = toy();
        let notion = idue.intended_notion();
        assert_eq!(notion.domain_size(), Some(5));
        assert!((notion.pair_budget(0, 1).unwrap() - 4.0_f64.ln()).abs() < 1e-12);
        assert!((notion.pair_budget(1, 2).unwrap() - 6.0_f64.ln()).abs() < 1e-12);
    }
}
