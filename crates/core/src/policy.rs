//! Incomplete privacy-policy graphs (Section IV-C of the paper).
//!
//! Lemma 1's 2·min(E) cap on the MinID-LDP → LDP relaxation comes from
//! requiring *every* pair of inputs to be indistinguishable (a complete
//! graph): any two inputs can be triangulated through the most-protected
//! input `x*`. The paper observes that if some pairs need no protection
//! (the secret-pairs idea of Blowfish privacy), the gain can exceed 2×,
//! because loose inputs no longer have to be indistinguishable from `x*`.
//!
//! [`PolicyGraph`] records which *level pairs* require protection. The
//! solvers in `idldp-opt` accept a policy graph and simply drop the Eq. 7
//! constraints of unprotected pairs; [`crate::audit`]-style verification
//! against a graph lives here in [`PolicyGraph::verify_params`].

use crate::error::{Error, Result};
use crate::levels::LevelPartition;
use crate::notion::RFunction;
use crate::params::LevelParams;
use serde::{Deserialize, Serialize};

/// Which pairs of privacy levels must be mutually indistinguishable.
///
/// Protection is symmetric; self-pairs `(i, i)` are always protected (two
/// different *items* of the same level still form a pair of inputs).
///
/// # Examples
/// ```
/// use idldp_core::policy::PolicyGraph;
/// // Three levels; only levels 1 and 2 must be cross-indistinguishable.
/// let g = PolicyGraph::from_edges(3, &[(1, 2)]).unwrap();
/// assert!(g.is_protected(1, 2));
/// assert!(g.is_protected(0, 0)); // self-pairs always protected
/// assert!(!g.is_protected(0, 2));
/// assert!(!g.is_complete());
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct PolicyGraph {
    t: usize,
    /// Row-major `t × t` symmetric boolean matrix.
    protected: Vec<bool>,
}

impl PolicyGraph {
    /// The complete graph over `t` levels (the paper's default setting).
    pub fn complete(t: usize) -> Result<Self> {
        if t == 0 {
            return Err(Error::Empty {
                what: "policy graph".into(),
            });
        }
        Ok(Self {
            t,
            protected: vec![true; t * t],
        })
    }

    /// A graph protecting only the listed level pairs (plus all self-pairs).
    ///
    /// Edges are symmetrized automatically.
    pub fn from_edges(t: usize, edges: &[(usize, usize)]) -> Result<Self> {
        if t == 0 {
            return Err(Error::Empty {
                what: "policy graph".into(),
            });
        }
        let mut protected = vec![false; t * t];
        for i in 0..t {
            protected[i * t + i] = true;
        }
        for &(i, j) in edges {
            if i >= t || j >= t {
                return Err(Error::IndexOutOfRange {
                    what: "policy edge".into(),
                    index: i.max(j),
                    bound: t,
                });
            }
            protected[i * t + j] = true;
            protected[j * t + i] = true;
        }
        Ok(Self { t, protected })
    }

    /// "Star" policy: only pairs involving the given (typically the most
    /// sensitive) level are protected — the setting where the paper's
    /// >2× gain is most visible.
    pub fn star(t: usize, center: usize) -> Result<Self> {
        let edges: Vec<(usize, usize)> = (0..t).map(|j| (center, j)).collect();
        Self::from_edges(t, &edges)
    }

    /// Number of levels.
    pub fn num_levels(&self) -> usize {
        self.t
    }

    /// Whether the pair `(i, j)` requires protection.
    ///
    /// # Panics
    /// Panics if an index is out of range.
    pub fn is_protected(&self, i: usize, j: usize) -> bool {
        assert!(i < self.t && j < self.t, "level index out of range");
        self.protected[i * self.t + j]
    }

    /// `true` if every pair is protected.
    pub fn is_complete(&self) -> bool {
        self.protected.iter().all(|&p| p)
    }

    /// Number of protected unordered pairs (including self-pairs).
    pub fn protected_pairs(&self) -> usize {
        let mut count = 0;
        for i in 0..self.t {
            for j in i..self.t {
                if self.is_protected(i, j) {
                    count += 1;
                }
            }
        }
        count
    }

    /// Verifies Eq. 7 for the *protected* pairs only.
    pub fn verify_params(
        &self,
        params: &LevelParams,
        levels: &LevelPartition,
        r: RFunction,
        tol: f64,
    ) -> Result<()> {
        if levels.num_levels() != self.t || params.num_levels() != self.t {
            return Err(Error::DimensionMismatch {
                what: "policy graph vs levels/params".into(),
                expected: self.t,
                actual: levels.num_levels(),
            });
        }
        for i in 0..self.t {
            for j in 0..self.t {
                if !self.is_protected(i, j) {
                    continue;
                }
                let allowed = r.combine(
                    levels.level_budget(i).expect("validated"),
                    levels.level_budget(j).expect("validated"),
                );
                let observed = params.pair_log_ratio(i, j);
                if observed > allowed + tol {
                    return Err(Error::PrivacyViolation {
                        observed,
                        allowed,
                        pair: (i, j),
                    });
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::budget::Epsilon;

    fn eps(v: f64) -> Epsilon {
        Epsilon::new(v).unwrap()
    }

    #[test]
    fn complete_graph() {
        let g = PolicyGraph::complete(3).unwrap();
        assert!(g.is_complete());
        assert_eq!(g.protected_pairs(), 6); // C(3,2) + 3 self-pairs
        assert!(g.is_protected(0, 2));
        assert!(PolicyGraph::complete(0).is_err());
    }

    #[test]
    fn from_edges_symmetrizes_and_keeps_self_pairs() {
        let g = PolicyGraph::from_edges(3, &[(0, 1)]).unwrap();
        assert!(g.is_protected(0, 1));
        assert!(g.is_protected(1, 0));
        assert!(!g.is_protected(0, 2));
        assert!(g.is_protected(2, 2), "self-pairs always protected");
        assert!(!g.is_complete());
        assert!(PolicyGraph::from_edges(3, &[(0, 3)]).is_err());
    }

    #[test]
    fn star_policy() {
        let g = PolicyGraph::star(4, 0).unwrap();
        for j in 0..4 {
            assert!(g.is_protected(0, j));
        }
        assert!(!g.is_protected(1, 2));
        assert!(!g.is_protected(2, 3));
        // 0-pairs: (0,0..3) = 4, plus self pairs (1,1),(2,2),(3,3).
        assert_eq!(g.protected_pairs(), 7);
    }

    #[test]
    fn verify_respects_mask() {
        let levels = LevelPartition::new(vec![0, 1], vec![eps(0.5), eps(3.0)]).unwrap();
        // Parameters violating the (0,1) cross pair but fine on self-pairs:
        // level 0 tight, level 1 loose.
        let params = LevelParams::new(vec![0.56, 0.80], vec![0.44, 0.20]).unwrap();
        // Self pair 0: ln(a0(1-b0)/(b0(1-a0))) = ln(0.56·0.56/(0.44·0.44)) ≈ 0.48 <= 0.5 ✓
        // Self pair 1: ln(0.8·0.8/(0.2·0.2)) = ln 16 ≈ 2.77 <= 3 ✓
        // Cross (1,0): ln(a1(1-b0)/(b1(1-a0))) = ln(0.8·0.56/(0.2·0.44)) ≈ 1.63 > 0.5 ✗
        let complete = PolicyGraph::complete(2).unwrap();
        assert!(complete
            .verify_params(&params, &levels, RFunction::Min, 1e-9)
            .is_err());
        let disconnected = PolicyGraph::from_edges(2, &[]).unwrap();
        assert!(disconnected
            .verify_params(&params, &levels, RFunction::Min, 1e-9)
            .is_ok());
    }

    #[test]
    fn dimension_check() {
        let g = PolicyGraph::complete(3).unwrap();
        let levels = LevelPartition::new(vec![0, 1], vec![eps(1.0), eps(2.0)]).unwrap();
        let params = LevelParams::new(vec![0.6, 0.6], vec![0.3, 0.3]).unwrap();
        assert!(g
            .verify_params(&params, &levels, RFunction::Min, 1e-9)
            .is_err());
    }
}
