//! IDUE-PS — IDUE extended with Padding-and-Sampling for item-set inputs
//! (Algorithm 3 and Theorem 4 of the paper).
//!
//! The item domain `I` (size `m`) is extended with ℓ dummy items to
//! `I' = I ∪ S` (size `m + ℓ`). Each user pads/samples her set down to one
//! (real or dummy) item, one-hot encodes it over `m + ℓ` bits, and perturbs
//! each bit with the level parameters of *that bit's* item. Theorem 4 shows
//! that if the single-item parameters satisfy Eq. 18
//! (`α_i / β_j <= e^{min(ε_i, ε_j)}`), the composed mechanism satisfies
//! MinID-LDP over item-sets with the combined budget of Eq. 17:
//!
//! ```text
//! ε_x = ln( η_x · Σ_{i∈x} e^{ε_i} / |x| + (1 − η_x) · e^{ε*} )
//! ```
//!
//! Dummy items carry budget `ε* = min(E)` (the paper's recommended choice:
//! it only tightens the privacy of sets that get padded and does not change
//! the optimization problem).

use crate::budget::Epsilon;
use crate::error::{Error, Result};
use crate::estimator::FrequencyEstimator;
use crate::levels::LevelPartition;
use crate::notion::RFunction;
use crate::params::LevelParams;
use crate::ps::{PaddingAndSampling, SampledItem};
use crate::ue::UnaryEncoding;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// The IDUE-PS mechanism for item-set inputs.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct IduePs {
    levels: LevelPartition,
    params: LevelParams,
    ps: PaddingAndSampling,
    /// Level index whose parameters/budget the ℓ dummy items use.
    dummy_level: usize,
    /// Per-bit probabilities over `m + ℓ` bits.
    ue: UnaryEncoding,
}

impl IduePs {
    /// Builds IDUE-PS with dummy items at the minimum-budget level (the
    /// paper's recommended `ε* = min{ε_1..ε_m}`).
    pub fn new(levels: LevelPartition, params: &LevelParams, l: usize) -> Result<Self> {
        let dummy_level = levels.min_budget_level();
        Self::with_dummy_level(levels, params, l, dummy_level)
    }

    /// Builds IDUE-PS with an explicit dummy level (must reference an
    /// existing level; Theorem 4 requires `ε* ∈ {ε_1..ε_t}`).
    pub fn with_dummy_level(
        levels: LevelPartition,
        params: &LevelParams,
        l: usize,
        dummy_level: usize,
    ) -> Result<Self> {
        if levels.num_levels() != params.num_levels() {
            return Err(Error::DimensionMismatch {
                what: "IDUE-PS levels vs params".into(),
                expected: levels.num_levels(),
                actual: params.num_levels(),
            });
        }
        if dummy_level >= levels.num_levels() {
            return Err(Error::IndexOutOfRange {
                what: "dummy level".into(),
                index: dummy_level,
                bound: levels.num_levels(),
            });
        }
        let ps = PaddingAndSampling::new(l)?;
        let m = levels.num_items();
        let mut a = Vec::with_capacity(m + l);
        let mut b = Vec::with_capacity(m + l);
        for item in 0..m {
            let lvl = levels.level_of(item).expect("validated");
            a.push(params.a()[lvl]);
            b.push(params.b()[lvl]);
        }
        for _ in 0..l {
            a.push(params.a()[dummy_level]);
            b.push(params.b()[dummy_level]);
        }
        let ue = UnaryEncoding::new(a, b)?;
        Ok(Self {
            levels,
            params: params.clone(),
            ps,
            dummy_level,
            ue,
        })
    }

    /// RAPPOR-PS baseline: single-level symmetric-UE parameters at ε over
    /// `m` items with padding length ℓ.
    pub fn rappor_ps(m: usize, eps: Epsilon, l: usize) -> Result<Self> {
        let levels = LevelPartition::uniform(m, eps)?;
        let half = (eps.get() / 2.0).exp();
        let a = half / (half + 1.0);
        let params = LevelParams::new(vec![a], vec![1.0 - a])?;
        Self::new(levels, &params, l)
    }

    /// OUE-PS baseline: single-level OUE parameters at ε.
    pub fn oue_ps(m: usize, eps: Epsilon, l: usize) -> Result<Self> {
        let levels = LevelPartition::uniform(m, eps)?;
        let params = LevelParams::new(vec![0.5], vec![1.0 / (eps.exp() + 1.0)])?;
        Self::new(levels, &params, l)
    }

    /// Runs Algorithm 3: pad-and-sample the set, one-hot encode over
    /// `m + ℓ` bits, perturb every bit.
    ///
    /// # Panics
    /// Panics if `itemset` contains an index `>= m` (client-side programming
    /// error).
    pub fn perturb_set<R: Rng + ?Sized>(&self, itemset: &[usize], rng: &mut R) -> Vec<bool> {
        let m = self.levels.num_items();
        assert!(
            itemset.iter().all(|&i| i < m),
            "item out of domain in input set"
        );
        let sampled = self.ps.pad_and_sample(itemset, rng);
        let hot = sampled.encoded_index(m);
        self.ue
            .perturb_one_hot(hot, rng)
            .expect("encoded index inside m + l")
    }

    /// The sampling stage alone (useful for the aggregate simulation path,
    /// which replaces the bit-flipping by binomial draws).
    pub fn sample_stage<R: Rng + ?Sized>(&self, itemset: &[usize], rng: &mut R) -> SampledItem {
        self.ps.pad_and_sample(itemset, rng)
    }

    /// Combined privacy budget of an item-set (Eq. 17).
    ///
    /// # Errors
    /// Returns an error if the set contains an out-of-domain item.
    pub fn set_budget(&self, itemset: &[usize]) -> Result<f64> {
        set_budget(
            &self.levels,
            self.levels
                .level_budget(self.dummy_level)
                .expect("validated"),
            self.ps.padding_length(),
            itemset,
        )
    }

    /// The unbiased estimator over the `m` real bits: calibrates the first
    /// `m` counts with `scale = ℓ` (dummy-bit counts are ignored by the
    /// aggregation, as in the paper's Fig. 2).
    pub fn estimator(&self, n: u64) -> FrequencyEstimator {
        let m = self.levels.num_items();
        FrequencyEstimator::new(
            self.ue.a()[..m].to_vec(),
            self.ue.b()[..m].to_vec(),
            n,
            self.ps.padding_length() as f64,
        )
        .expect("validated parameters")
    }

    /// The underlying `(m + ℓ)`-bit unary encoding.
    pub fn unary_encoding(&self) -> &UnaryEncoding {
        &self.ue
    }

    /// The level partition over the real items.
    pub fn levels(&self) -> &LevelPartition {
        &self.levels
    }

    /// Number of real items `m`.
    pub fn domain_size(&self) -> usize {
        self.levels.num_items()
    }

    /// Padding length ℓ.
    pub fn padding_length(&self) -> usize {
        self.ps.padding_length()
    }

    /// Level index used by the dummy items.
    pub fn dummy_level(&self) -> usize {
        self.dummy_level
    }

    /// Verifies the single-item Eq. 18 premise of Theorem 4 (including the
    /// dummy level, which reuses one of the real levels' parameters).
    pub fn verify(&self, r: RFunction, tol: f64) -> Result<()> {
        self.params.verify(&self.levels, r, tol)
    }
}

/// Standalone Eq. 17: combined budget of `itemset` under `levels`, dummy
/// budget `eps_dummy`, and padding length `l`.
pub fn set_budget(
    levels: &LevelPartition,
    eps_dummy: Epsilon,
    l: usize,
    itemset: &[usize],
) -> Result<f64> {
    let k = itemset.len();
    let eta = k as f64 / k.max(l) as f64;
    let real_part = if k == 0 {
        0.0
    } else {
        let mut sum = 0.0;
        for &item in itemset {
            sum += levels.item_budget(item)?.exp();
        }
        eta * sum / k as f64
    };
    Ok((real_part + (1.0 - eta) * eps_dummy.exp()).ln())
}

// ---------------------------------------------------------------------------
// Unified trait layer
// ---------------------------------------------------------------------------

use crate::mechanism::{
    check_report_width, check_set_input, BatchMechanism, BitProfile, CountAccumulator,
    FrequencyOracle, Input, InputBatch, InputKind, Mechanism,
};
use crate::oracle::CalibratingOracle;
use rand::RngCore;

impl Mechanism for IduePs {
    fn kind(&self) -> &'static str {
        "idue-ps"
    }

    fn domain_size(&self) -> usize {
        IduePs::domain_size(self)
    }

    fn report_len(&self) -> usize {
        IduePs::domain_size(self) + self.ps.padding_length()
    }

    fn input_kind(&self) -> InputKind {
        InputKind::Set
    }

    fn perturb_into(
        &self,
        input: Input<'_>,
        rng: &mut dyn RngCore,
        report: &mut [u8],
    ) -> Result<()> {
        let m = IduePs::domain_size(self);
        let set = check_set_input(input, m)?;
        check_report_width(report, Mechanism::report_len(self))?;
        // Algorithm 3, drawing randomness exactly like `perturb_set`.
        let hot = self.ps.pad_and_sample_u32(set, rng).encoded_index(m);
        self.ue.perturb_one_hot_into(hot, rng, report)
    }

    fn encode_hot(&self, input: Input<'_>, rng: &mut dyn RngCore) -> Result<usize> {
        let m = IduePs::domain_size(self);
        let set = check_set_input(input, m)?;
        Ok(self.ps.pad_and_sample_u32(set, rng).encoded_index(m))
    }

    fn ldp_epsilon(&self) -> f64 {
        self.ue.ldp_epsilon()
    }

    fn frequency_oracle(&self, n: u64) -> Box<dyn FrequencyOracle> {
        Box::new(
            CalibratingOracle::new(self.estimator(n), Mechanism::report_len(self))
                .expect("widths match"),
        )
    }

    fn bit_profile(&self) -> Option<BitProfile> {
        Some(BitProfile {
            a: self.ue.a().to_vec(),
            b: self.ue.b().to_vec(),
        })
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

impl BatchMechanism for IduePs {
    /// Fast path: pad-and-sample then draw the `m + ℓ` bits straight into
    /// the accumulator, skipping the per-user report buffer.
    fn perturb_batch(
        &self,
        batch: InputBatch<'_>,
        rng: &mut dyn RngCore,
        acc: &mut CountAccumulator,
    ) -> Result<()> {
        let m = IduePs::domain_size(self);
        let InputBatch::Sets(sets) = batch else {
            check_set_input(Input::Item(0), m)?;
            unreachable!("item inputs are rejected above");
        };
        if acc.counts().len() != Mechanism::report_len(self) {
            return Err(Error::DimensionMismatch {
                what: "batch accumulator".into(),
                expected: Mechanism::report_len(self),
                actual: acc.counts().len(),
            });
        }
        for set in sets {
            let set = check_set_input(Input::Set(set), m)?;
            let hot = self.ps.pad_and_sample_u32(set, rng).encoded_index(m);
            self.ue.accumulate_one_hot(hot, rng, acc);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use idldp_num::rng::SplitMix64;

    fn eps(v: f64) -> Epsilon {
        Epsilon::new(v).unwrap()
    }

    /// Two levels: items 0,1 at ε=ln2 (sensitive), items 2..6 at ε=ln4.
    fn fixture() -> (LevelPartition, LevelParams) {
        let levels = LevelPartition::new(
            vec![0, 0, 1, 1, 1, 1],
            vec![eps(2.0_f64.ln()), eps(4.0_f64.ln())],
        )
        .unwrap();
        // Feasible for MinID-LDP: check α_i/β_j <= e^{min}:
        //   level 0: a=0.52, b=0.38 → α=1.368, β=0.774
        //   level 1: a=0.60, b=0.30 → α=2.0,   β=0.571
        // pairs: (0,0): 1.368/.774=1.77<=2 ✓ (0,1): 1.368/.571=2.39 > 2? min(ε0,ε1)=ln2→2. ✗
        // adjust level 1 b up: b=0.35 → β=(0.4/0.65)=0.615, α=1.714
        //   (0,1): 1.368/0.615 = 2.22 > 2 ✗ — tune level0 a down: a=0.48,b=0.38: α=1.263,β=0.839
        //   (0,0): 1.263/0.839=1.506 ✓ (0,1): 1.263/0.615=2.05 ~> tol… use b1=0.36: β1=0.625
        //   (0,1): 1.263/0.625=2.02 still slightly over; b1=0.38 → β1=0.6129*… α1=0.6/0.38=1.579
        //   (0,1): 1.263/0.6452=1.957 ✓ (1,0): 1.579/0.839=1.882 <= 2 ✓ (1,1): 1.579/0.6452=2.45<=4 ✓
        let params = LevelParams::new(vec![0.48, 0.60], vec![0.38, 0.38]).unwrap();
        (levels, params)
    }

    #[test]
    fn fixture_is_minid_feasible() {
        let (levels, params) = fixture();
        assert!(params.verify(&levels, RFunction::Min, 1e-9).is_ok());
    }

    #[test]
    fn construction_and_layout() {
        let (levels, params) = fixture();
        let mech = IduePs::new(levels, &params, 3).unwrap();
        assert_eq!(mech.domain_size(), 6);
        assert_eq!(mech.padding_length(), 3);
        // Dummy level defaults to the min-budget level (level 0).
        assert_eq!(mech.dummy_level(), 0);
        let ue = mech.unary_encoding();
        assert_eq!(ue.num_bits(), 9);
        // Real bits use their level's parameters; dummy bits use level 0's.
        assert_eq!(ue.a()[0], 0.48);
        assert_eq!(ue.a()[2], 0.60);
        assert_eq!(ue.a()[6], 0.48);
        assert_eq!(ue.a()[8], 0.48);
    }

    #[test]
    fn dummy_level_bounds_checked() {
        let (levels, params) = fixture();
        assert!(IduePs::with_dummy_level(levels.clone(), &params, 3, 2).is_err());
        assert!(IduePs::with_dummy_level(levels, &params, 3, 1).is_ok());
    }

    #[test]
    fn set_budget_eq17() {
        let (levels, params) = fixture();
        let mech = IduePs::new(levels, &params, 2).unwrap();
        // |x| >= l: η=1, budget = ln(mean of e^{ε_i}).
        let b = mech.set_budget(&[0, 2]).unwrap();
        assert!((b - ((2.0 + 4.0) / 2.0_f64).ln()).abs() < 1e-12);
        // |x| < l: η=1/2, dummy at ε*=ln2.
        let b = mech.set_budget(&[2]).unwrap();
        assert!((b - (0.5 * 4.0 + 0.5 * 2.0_f64).ln()).abs() < 1e-12);
        // Empty set: pure dummy budget.
        let b = mech.set_budget(&[]).unwrap();
        assert!((b - 2.0_f64.ln()).abs() < 1e-12);
        // Out-of-domain item.
        assert!(mech.set_budget(&[99]).is_err());
    }

    #[test]
    fn set_budget_at_least_min_item_budget() {
        // The paper notes ε_x >= min_i ε_i (convexity); spot-check.
        let (levels, params) = fixture();
        let mech = IduePs::new(levels, &params, 3).unwrap();
        for set in [vec![0], vec![0, 1], vec![0, 2, 4], vec![1, 2, 3, 4, 5]] {
            let b = mech.set_budget(&set).unwrap();
            let min_item = set
                .iter()
                .map(|&i| mech.levels().item_budget(i).unwrap().get())
                .fold(f64::INFINITY, f64::min);
            assert!(
                b >= min_item.min(2.0_f64.ln()) - 1e-12,
                "set {set:?}: {b} vs {min_item}"
            );
        }
    }

    #[test]
    fn perturb_set_shape_and_domain_check() {
        let (levels, params) = fixture();
        let mech = IduePs::new(levels, &params, 3).unwrap();
        let mut rng = SplitMix64::new(8);
        let y = mech.perturb_set(&[1, 3, 5], &mut rng);
        assert_eq!(y.len(), 9);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut rng = SplitMix64::new(9);
            mech.perturb_set(&[6], &mut rng)
        }));
        assert!(result.is_err(), "out-of-domain item must panic");
    }

    #[test]
    fn estimation_recovers_frequencies() {
        // All users hold {0, 2}; with l = 2 each item is sampled w.p. 1/2.
        let (levels, params) = fixture();
        let mech = IduePs::new(levels, &params, 2).unwrap();
        let n = 60_000u64;
        let mut rng = SplitMix64::new(10);
        let mut counts = [0u64; 9];
        for _ in 0..n {
            let y = mech.perturb_set(&[0, 2], &mut rng);
            for (c, bit) in counts.iter_mut().zip(&y) {
                *c += *bit as u64;
            }
        }
        let est = mech.estimator(n).estimate(&counts[..6]).unwrap();
        // Items 0 and 2 have true count n; others 0.
        assert!((est[0] - n as f64).abs() < 0.06 * n as f64, "est={est:?}");
        assert!((est[2] - n as f64).abs() < 0.06 * n as f64, "est={est:?}");
        for k in [1usize, 3, 4, 5] {
            assert!(est[k].abs() < 0.06 * n as f64, "est={est:?}");
        }
    }

    #[test]
    fn baselines_construct() {
        let r = IduePs::rappor_ps(10, eps(1.0), 4).unwrap();
        assert_eq!(r.unary_encoding().num_bits(), 14);
        let o = IduePs::oue_ps(10, eps(1.0), 4).unwrap();
        assert!((o.unary_encoding().a()[0] - 0.5).abs() < 1e-12);
    }
}
