//! Per-level perturbation parameters `(a_i, b_i)` for IDUE.
//!
//! The optimizers in `idldp-opt` produce one `(a, b)` pair per privacy
//! level; [`crate::idue::Idue`] and [`crate::idue_ps::IduePs`] expand them
//! to per-bit probabilities. The paper's Eq. 7 constraint, the per-pair
//! log-ratio bound
//! `ln( a_i (1 − b_j) / (b_i (1 − a_j)) ) ≤ r(ε_i, ε_j)`,
//! is checked here in [`LevelParams::max_pair_ratio`] /
//! [`LevelParams::verify`].

use crate::error::{Error, Result};
use crate::levels::LevelPartition;
use crate::notion::RFunction;
use serde::{Deserialize, Serialize};

/// One `(a_i, b_i)` pair per privacy level, with `0 < b_i < a_i < 1`.
///
/// `a_i = Pr[y[k]=1 | x[k]=1]` and `b_i = Pr[y[k]=1 | x[k]=0]` for every bit
/// `k` belonging to level `i`.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct LevelParams {
    a: Vec<f64>,
    b: Vec<f64>,
}

impl LevelParams {
    /// Validates and wraps per-level parameters.
    pub fn new(a: Vec<f64>, b: Vec<f64>) -> Result<Self> {
        if a.is_empty() {
            return Err(Error::Empty {
                what: "level parameters".into(),
            });
        }
        if a.len() != b.len() {
            return Err(Error::DimensionMismatch {
                what: "a/b parameter vectors".into(),
                expected: a.len(),
                actual: b.len(),
            });
        }
        for (i, (&ai, &bi)) in a.iter().zip(&b).enumerate() {
            if !(0.0..=1.0).contains(&ai) || ai == 0.0 || ai == 1.0 || !ai.is_finite() {
                return Err(Error::InvalidProbability {
                    name: format!("a[{i}]"),
                    value: ai,
                });
            }
            if !(0.0..=1.0).contains(&bi) || bi == 0.0 || bi == 1.0 || !bi.is_finite() {
                return Err(Error::InvalidProbability {
                    name: format!("b[{i}]"),
                    value: bi,
                });
            }
            if ai <= bi {
                return Err(Error::ParameterOrdering {
                    detail: format!("a[{i}]={ai} must exceed b[{i}]={bi}"),
                });
            }
        }
        Ok(Self { a, b })
    }

    /// Number of levels `t`.
    pub fn num_levels(&self) -> usize {
        self.a.len()
    }

    /// `a` parameters (length `t`).
    pub fn a(&self) -> &[f64] {
        &self.a
    }

    /// `b` parameters (length `t`).
    pub fn b(&self) -> &[f64] {
        &self.b
    }

    /// `α_i = a_i / b_i` (Eq. 14).
    pub fn alpha(&self, i: usize) -> f64 {
        self.a[i] / self.b[i]
    }

    /// `β_i = (1 − a_i) / (1 − b_i)` (Eq. 14).
    pub fn beta(&self, i: usize) -> f64 {
        (1.0 - self.a[i]) / (1.0 - self.b[i])
    }

    /// The Eq. 7 log-ratio for the ordered level pair `(i, j)`:
    /// `ln( a_i(1−b_j) / (b_i(1−a_j)) ) = ln(α_i / β_j)`.
    pub fn pair_log_ratio(&self, i: usize, j: usize) -> f64 {
        (self.alpha(i) / self.beta(j)).ln()
    }

    /// The largest Eq. 7 log-ratio over all ordered level pairs, together
    /// with the attaining pair. This is the tightest ε for which the implied
    /// IDUE mechanism satisfies plain ε-LDP.
    pub fn max_pair_ratio(&self) -> (f64, (usize, usize)) {
        let t = self.num_levels();
        let mut best = f64::NEG_INFINITY;
        let mut arg = (0, 0);
        for i in 0..t {
            for j in 0..t {
                let v = self.pair_log_ratio(i, j);
                if v > best {
                    best = v;
                    arg = (i, j);
                }
            }
        }
        (best, arg)
    }

    /// Verifies the Eq. 7 constraints against per-level budgets combined by
    /// `r`, with absolute slack `tol` (use a small positive tolerance for
    /// numerically solved parameters).
    pub fn verify(&self, levels: &LevelPartition, r: RFunction, tol: f64) -> Result<()> {
        if levels.num_levels() != self.num_levels() {
            return Err(Error::DimensionMismatch {
                what: "levels vs parameters".into(),
                expected: levels.num_levels(),
                actual: self.num_levels(),
            });
        }
        let t = self.num_levels();
        for i in 0..t {
            for j in 0..t {
                let allowed = r.combine(
                    levels.level_budget(i).expect("validated"),
                    levels.level_budget(j).expect("validated"),
                );
                let observed = self.pair_log_ratio(i, j);
                if observed > allowed + tol {
                    return Err(Error::PrivacyViolation {
                        observed,
                        allowed,
                        pair: (i, j),
                    });
                }
            }
        }
        Ok(())
    }

    /// RAPPOR-structured parameters `a_i = e^{τ_i}/(e^{τ_i}+1)`,
    /// `b_i = 1 − a_i` (the paper's Eq. 11; the `opt1` parameterization).
    pub fn from_rappor_taus(taus: &[f64]) -> Result<Self> {
        if taus.iter().any(|&t| t <= 0.0 || !t.is_finite()) {
            return Err(Error::ParameterOrdering {
                detail: "all τ must be positive and finite".into(),
            });
        }
        let a: Vec<f64> = taus.iter().map(|&t| t.exp() / (t.exp() + 1.0)).collect();
        let b: Vec<f64> = a.iter().map(|&ai| 1.0 - ai).collect();
        Self::new(a, b)
    }

    /// OUE-structured parameters `a_i = 1/2` with given `b_i` (the `opt2`
    /// parameterization, Eq. 13).
    pub fn from_oue_bs(bs: &[f64]) -> Result<Self> {
        let a = vec![0.5; bs.len()];
        Self::new(a, bs.to_vec())
    }

    /// Uniform parameters replicated over `t` levels (used to express the
    /// plain-LDP baselines RAPPOR/OUE in the per-level format).
    pub fn uniform(t: usize, a: f64, b: f64) -> Result<Self> {
        Self::new(vec![a; t], vec![b; t])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::budget::Epsilon;

    fn eps(v: f64) -> Epsilon {
        Epsilon::new(v).unwrap()
    }

    #[test]
    fn validation() {
        assert!(LevelParams::new(vec![0.6], vec![0.3]).is_ok());
        assert!(LevelParams::new(vec![], vec![]).is_err());
        assert!(LevelParams::new(vec![0.6, 0.7], vec![0.3]).is_err());
        assert!(LevelParams::new(vec![1.0], vec![0.3]).is_err());
        assert!(LevelParams::new(vec![0.6], vec![0.0]).is_err());
        // a must exceed b
        assert!(LevelParams::new(vec![0.3], vec![0.3]).is_err());
        assert!(LevelParams::new(vec![0.2], vec![0.3]).is_err());
    }

    #[test]
    fn alpha_beta_and_ratio() {
        let p = LevelParams::new(vec![0.5], vec![1.0 / (1.0 + 4.0)]).unwrap(); // OUE at ε=ln4
        assert!((p.alpha(0) - 2.5).abs() < 1e-12);
        assert!((p.beta(0) - 0.625).abs() < 1e-12);
        // For OUE, ln(α/β) = ln( (1-b)/b ) with a=1/2 → ε.
        assert!((p.pair_log_ratio(0, 0) - 4.0_f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn max_pair_ratio_finds_worst_pair() {
        // Level 0 leaks more than level 1.
        let p = LevelParams::new(vec![0.8, 0.5], vec![0.1, 0.3]).unwrap();
        let (v, pair) = p.max_pair_ratio();
        // Worst ordered pair is (0, 0): α₀ large, β₀ small.
        assert_eq!(pair, (0, 0));
        assert!((v - (p.alpha(0) / p.beta(0)).ln()).abs() < 1e-12);
    }

    #[test]
    fn verify_accepts_and_rejects() {
        let levels = LevelPartition::new(
            vec![0, 1, 1, 1, 1],
            vec![eps(4.0_f64.ln()), eps(6.0_f64.ln())],
        )
        .unwrap();
        // Table II's IDUE parameters (rounded): feasible within rounding slack.
        let p = LevelParams::new(vec![0.59, 0.67], vec![0.33, 0.28]).unwrap();
        assert!(p.verify(&levels, RFunction::Min, 1e-2).is_ok());
        // Cranked-up a makes the pair (0,·) violate.
        let bad = LevelParams::new(vec![0.95, 0.67], vec![0.33, 0.28]).unwrap();
        assert!(matches!(
            bad.verify(&levels, RFunction::Min, 1e-6),
            Err(Error::PrivacyViolation { .. })
        ));
    }

    #[test]
    fn rappor_structure() {
        let p = LevelParams::from_rappor_taus(&[1.0, 2.0]).unwrap();
        for i in 0..2 {
            assert!((p.a()[i] + p.b()[i] - 1.0).abs() < 1e-12);
        }
        // ln(α_i/β_j) = τ_i + τ_j under this structure.
        assert!((p.pair_log_ratio(0, 1) - 3.0).abs() < 1e-9);
        assert!(LevelParams::from_rappor_taus(&[0.0]).is_err());
        assert!(LevelParams::from_rappor_taus(&[-1.0]).is_err());
    }

    #[test]
    fn oue_structure() {
        let p = LevelParams::from_oue_bs(&[0.2, 0.3]).unwrap();
        assert_eq!(p.a(), &[0.5, 0.5]);
        assert!(LevelParams::from_oue_bs(&[0.6]).is_err()); // b >= a
    }

    #[test]
    fn uniform_replication() {
        let p = LevelParams::uniform(3, 0.5, 0.2).unwrap();
        assert_eq!(p.num_levels(), 3);
        assert_eq!(p.a(), &[0.5; 3]);
    }
}
