//! Pluggable checkpoint stores: one durability contract, three layouts.
//!
//! Every checkpoint writer in the system — `idldp ingest` persisting its
//! progress, the server's `Checkpoint` frame — used to rewrite one flat
//! text file per checkpoint: O(domain) bytes even when only a handful of
//! reports arrived since the last one, and a single-file contention point
//! on restore. [`SnapshotStore`] abstracts the layout behind a two-method
//! contract (`save` a set of per-shard snapshots durably, `load` the last
//! committed state), with three backends:
//!
//! - [`FileStore`] — the original single-file atomic format, byte-for-byte
//!   compatible with checkpoints written before the trait existed.
//! - [`ShardedStore`] — one file per accumulator shard plus a small
//!   fsynced manifest written last. The manifest is the commit point:
//!   shard files of a generation are only live once a manifest naming that
//!   generation lands, so a crash mid-save leaves the previous generation
//!   fully intact. Shard files are written and read back in parallel.
//! - [`DeltaStore`] — a log-structured backend appending only the count
//!   *deltas* since the previous checkpoint, compacting to a full base
//!   record every K deltas or when the log outgrows its base by a size
//!   ratio. Each record carries its own digest, so a torn tail truncates
//!   cleanly to the last intact record. Steady-state checkpoint cost is
//!   O(reports since last checkpoint), not O(domain).
//!
//! All three backends transparently migrate a v1 flat checkpoint
//! (`idldp-snapshot v1`) on read, and all of them carry the caller's
//! run-identity line so a restore can refuse state from a differently
//! configured run.

use super::{write_checkpoint_atomic, AccumulatorSnapshot};
use std::fmt;
use std::io::{Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Which [`SnapshotStore`] backend to open. Parses from / displays as the
/// CLI flag values `file`, `sharded`, and `delta`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum StoreKind {
    /// Single flat file, rewritten whole and atomically each checkpoint.
    #[default]
    File,
    /// One file per accumulator shard + an fsynced manifest committed last.
    Sharded,
    /// Append-only delta log with periodic compaction.
    Delta,
}

impl StoreKind {
    /// Every backend, in CLI-flag order — handy for conformance loops.
    pub const ALL: [StoreKind; 3] = [StoreKind::File, StoreKind::Sharded, StoreKind::Delta];
}

impl fmt::Display for StoreKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            StoreKind::File => "file",
            StoreKind::Sharded => "sharded",
            StoreKind::Delta => "delta",
        })
    }
}

impl std::str::FromStr for StoreKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "file" => Ok(StoreKind::File),
            "sharded" => Ok(StoreKind::Sharded),
            "delta" => Ok(StoreKind::Delta),
            other => Err(format!(
                "unknown checkpoint store `{other}` (expected file, sharded, or delta)"
            )),
        }
    }
}

/// Failure modes of a [`SnapshotStore`] operation.
#[derive(Debug)]
pub enum StoreError {
    /// The filesystem said no (permissions, full disk, vanished file).
    Io(std::io::Error),
    /// The on-disk state exists but cannot be trusted: bad header, digest
    /// mismatch, a manifest referencing missing shard files, and so on.
    Corrupt(String),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "{e}"),
            StoreError::Corrupt(detail) => write!(f, "{detail}"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            StoreError::Corrupt(_) => None,
        }
    }
}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

/// What a successful [`SnapshotStore::load`] hands back: one or more
/// equal-width shard snapshots (stores that persist a single merged state
/// return exactly one) plus the run-identity line the checkpoint was
/// stamped with, if any.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RestoredCheckpoint {
    shards: Vec<AccumulatorSnapshot>,
    run_line: Option<String>,
}

impl RestoredCheckpoint {
    /// Builds a restored checkpoint, validating the invariants `load`
    /// promises (at least one shard, all widths equal).
    fn checked(
        shards: Vec<AccumulatorSnapshot>,
        run_line: Option<String>,
    ) -> Result<Self, StoreError> {
        let Some(first) = shards.first() else {
            return Err(StoreError::Corrupt(
                "restored checkpoint has no shards".into(),
            ));
        };
        let width = first.report_len();
        if shards.iter().any(|s| s.report_len() != width) {
            return Err(StoreError::Corrupt(
                "restored shard snapshots disagree on report width".into(),
            ));
        }
        Ok(Self { shards, run_line })
    }

    /// The per-shard snapshots, all of one report width, at least one.
    pub fn shards(&self) -> &[AccumulatorSnapshot] {
        &self.shards
    }

    /// The run-identity line (`run ...`) the checkpoint carries, if any.
    pub fn run_line(&self) -> Option<&str> {
        self.run_line.as_deref()
    }

    /// Total users across all shards.
    pub fn num_users(&self) -> u64 {
        self.shards.iter().map(AccumulatorSnapshot::num_users).sum()
    }

    /// All shards merged into one snapshot. Exact in any order — counts
    /// are integers — and infallible because `load` validated the widths.
    pub fn merged(&self) -> AccumulatorSnapshot {
        let mut merged = self.shards[0].clone();
        for shard in &self.shards[1..] {
            merged
                .merge(shard)
                .expect("load validated equal shard widths");
        }
        merged
    }
}

/// A durable home for accumulator state across process generations.
///
/// `save` must be atomic at the store's commit point: after a crash at any
/// instant, `load` returns either the previous committed checkpoint or the
/// new one, never a torn hybrid. `load` returns `Ok(None)` when no
/// checkpoint has ever been committed at the path.
pub trait SnapshotStore: Send {
    /// Which backend this is.
    fn kind(&self) -> StoreKind;

    /// The primary path the store commits at (backends may keep sibling
    /// files next to it, named by suffixing this path).
    fn path(&self) -> &Path;

    /// Reads the last committed checkpoint, if any. All backends accept a
    /// v1 flat checkpoint (`idldp-snapshot v1`) at the path and migrate it
    /// transparently; the store rewrites it in its own format on the next
    /// [`SnapshotStore::save`].
    ///
    /// # Errors
    /// [`StoreError::Io`] on filesystem failure, [`StoreError::Corrupt`]
    /// when on-disk state exists but cannot be restored.
    fn load(&mut self) -> Result<Option<RestoredCheckpoint>, StoreError>;

    /// Durably commits the given per-shard snapshots, stamped with
    /// `run_line` (pass `""` for no stamp). Callers pass snapshots whose
    /// counts only ever grow between saves; a shrinking count or width
    /// change is handled (stores fall back to a full rewrite) but defeats
    /// the delta backend's incrementality.
    ///
    /// # Errors
    /// [`StoreError::Io`] on filesystem failure; [`StoreError::Corrupt`]
    /// if `shards` is empty or the widths disagree.
    fn save(&mut self, shards: &[AccumulatorSnapshot], run_line: &str) -> Result<(), StoreError>;
}

/// Opens the backend selected by `kind` at `path`.
pub fn open_store(kind: StoreKind, path: impl Into<PathBuf>) -> Box<dyn SnapshotStore> {
    match kind {
        StoreKind::File => Box::new(FileStore::new(path)),
        StoreKind::Sharded => Box::new(ShardedStore::new(path)),
        StoreKind::Delta => Box::new(DeltaStore::new(path)),
    }
}

// ---------------------------------------------------------------------------
// shared plumbing

/// FNV-1a over raw bytes — the same hash family the snapshot digest uses,
/// here applied to whole records so every store can detect torn or edited
/// state without parsing past the damage.
fn fnv1a(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf29ce484222325;
    const PRIME: u64 = 0x100000001b3;
    let mut h = OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// Appends the `check <hex>` line sealing `body` (digest over every byte
/// before the check line).
fn seal(mut body: String) -> String {
    use std::fmt::Write as _;
    let digest = fnv1a(body.as_bytes());
    writeln!(body, "check {digest:016x}").expect("writing to String cannot fail");
    body
}

/// Verifies that `text` ends with a `check` line sealing everything before
/// it, returning the body. The inverse of [`seal`].
fn unseal(text: &str) -> Result<&str, String> {
    let trimmed = text
        .strip_suffix('\n')
        .ok_or("missing trailing newline (truncated file?)")?;
    let (body_end, check_line) = match trimmed.rfind('\n') {
        Some(i) => (i + 1, &trimmed[i + 1..]),
        None => (0, trimmed),
    };
    let want = check_line
        .strip_prefix("check ")
        .and_then(|v| u64::from_str_radix(v.trim(), 16).ok())
        .ok_or_else(|| format!("bad check line `{check_line}`"))?;
    let body = &text[..body_end];
    if fnv1a(body.as_bytes()) != want {
        return Err("digest mismatch (truncated or edited file?)".into());
    }
    Ok(body)
}

fn parse_prefixed_u64(line: &str, prefix: &str) -> Result<u64, String> {
    line.strip_prefix(prefix)
        .and_then(|v| v.trim().parse().ok())
        .ok_or_else(|| format!("bad `{}` line `{line}`", prefix.trim()))
}

fn parse_counts_line(line: &str) -> Result<Vec<u64>, String> {
    line.strip_prefix("counts")
        .ok_or_else(|| format!("bad counts line `{line}`"))?
        .split_whitespace()
        .map(|tok| tok.parse::<u64>().map_err(|_| format!("bad count `{tok}`")))
        .collect()
}

fn push_counts_line(out: &mut String, counts: &[u64]) {
    use std::fmt::Write as _;
    out.push_str("counts");
    for c in counts {
        write!(out, " {c}").expect("writing to String cannot fail");
    }
    out.push('\n');
}

fn push_run_line(out: &mut String, run_line: &str) {
    if !run_line.is_empty() {
        out.push_str(run_line);
        out.push('\n');
    }
}

fn find_run_line(text: &str) -> Option<String> {
    text.lines()
        .find(|l| l.starts_with("run "))
        .map(str::to_owned)
}

fn validate_save_args(shards: &[AccumulatorSnapshot]) -> Result<usize, StoreError> {
    let Some(first) = shards.first() else {
        return Err(StoreError::Corrupt("save called with no shards".into()));
    };
    let width = first.report_len();
    if shards.iter().any(|s| s.report_len() != width) {
        return Err(StoreError::Corrupt(
            "save called with shards of differing report widths".into(),
        ));
    }
    Ok(width)
}

fn merge_all(shards: &[AccumulatorSnapshot]) -> AccumulatorSnapshot {
    let mut merged = shards[0].clone();
    for shard in &shards[1..] {
        merged
            .merge(shard)
            .expect("save validated equal shard widths");
    }
    merged
}

/// Parses a v1 flat checkpoint (`idldp-snapshot v1` + optional trailing
/// run line) into the restored form every backend migrates from.
fn load_v1_flat(text: &str) -> Result<RestoredCheckpoint, StoreError> {
    let snap = AccumulatorSnapshot::from_checkpoint_str(text)
        .map_err(|e| StoreError::Corrupt(e.to_string()))?;
    RestoredCheckpoint::checked(vec![snap], find_run_line(text))
}

// ---------------------------------------------------------------------------
// FileStore

/// Backend #1: the original single-file layout. Each save merges the
/// shard snapshots and atomically rewrites the whole checkpoint —
/// `idldp-snapshot v1` text plus the run line — so its output is
/// byte-for-byte what `idldp ingest` and the server wrote before stores
/// existed, and every pre-store checkpoint loads unchanged.
#[derive(Debug)]
pub struct FileStore {
    path: PathBuf,
}

impl FileStore {
    /// A file store committing at `path`.
    pub fn new(path: impl Into<PathBuf>) -> Self {
        Self { path: path.into() }
    }
}

impl SnapshotStore for FileStore {
    fn kind(&self) -> StoreKind {
        StoreKind::File
    }

    fn path(&self) -> &Path {
        &self.path
    }

    fn load(&mut self) -> Result<Option<RestoredCheckpoint>, StoreError> {
        let text = match std::fs::read_to_string(&self.path) {
            Ok(text) => text,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(StoreError::Io(e)),
        };
        load_v1_flat(&text).map(Some)
    }

    fn save(&mut self, shards: &[AccumulatorSnapshot], run_line: &str) -> Result<(), StoreError> {
        validate_save_args(shards)?;
        let mut payload = merge_all(shards).to_checkpoint_string();
        push_run_line(&mut payload, run_line);
        write_checkpoint_atomic(&self.path, &payload).map_err(StoreError::Io)
    }
}

// ---------------------------------------------------------------------------
// ShardedStore

/// How many files a parallel shard write/read touches at once.
const SHARD_IO_WORKERS: usize = 8;

/// Backend #2: one file per accumulator shard plus a manifest.
///
/// A save of generation `g` first writes and fsyncs
/// `<path>.g<g>.s<i>` for every shard `i` (in parallel, up to
/// `SHARD_IO_WORKERS` files at a time), then atomically installs the
/// manifest at `<path>` naming `g`. **The manifest rename is the commit
/// point**: until it lands, a reader still sees the previous generation's
/// manifest and files, so partially written new-generation shard files are
/// invisible. After commit, stale generations are deleted best-effort.
///
/// If the manifest is missing or unreadable, `load` falls back to scanning
/// sibling shard files for the newest generation whose set is complete and
/// digest-clean — so even "the manifest vanished" degrades to the last
/// committed generation rather than data loss.
#[derive(Debug)]
pub struct ShardedStore {
    path: PathBuf,
    /// Highest generation known to exist on disk (committed or partial);
    /// the next save uses `gen + 1` so it can never collide with debris
    /// from a crashed writer.
    gen: u64,
    synced: bool,
}

struct Manifest {
    gen: u64,
    shards: usize,
    users: u64,
    run_line: Option<String>,
}

struct ShardFile {
    gen: u64,
    idx: usize,
    of: usize,
    snapshot: AccumulatorSnapshot,
    run_line: Option<String>,
}

impl ShardedStore {
    /// A sharded store with its manifest at `path`.
    pub fn new(path: impl Into<PathBuf>) -> Self {
        Self {
            path: path.into(),
            gen: 0,
            synced: false,
        }
    }

    fn shard_path(&self, gen: u64, idx: usize) -> PathBuf {
        let mut name = self.path.as_os_str().to_owned();
        name.push(format!(".g{gen}.s{idx}"));
        PathBuf::from(name)
    }

    /// Every sibling file matching our `<path>.g<gen>.s<idx>` naming.
    fn list_shard_files(&self) -> Vec<(u64, usize, PathBuf)> {
        let Some(stem) = self
            .path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
        else {
            return Vec::new();
        };
        let prefix = format!("{stem}.g");
        let dir = self
            .path
            .parent()
            .filter(|p| !p.as_os_str().is_empty())
            .unwrap_or(Path::new("."));
        let Ok(entries) = std::fs::read_dir(dir) else {
            return Vec::new();
        };
        entries
            .flatten()
            .filter_map(|e| {
                let name = e.file_name().to_string_lossy().into_owned();
                let rest = name.strip_prefix(&prefix)?;
                let (gen_s, idx_s) = rest.split_once(".s")?;
                Some((gen_s.parse().ok()?, idx_s.parse().ok()?, e.path()))
            })
            .collect()
    }

    /// The highest generation any on-disk state mentions, so a fresh
    /// writer never reuses a generation number that already has files.
    fn probe_disk_gen(&self) -> u64 {
        let mut max = 0;
        if let Ok(text) = std::fs::read_to_string(&self.path) {
            if let Ok(manifest) = parse_manifest(&text) {
                max = max.max(manifest.gen);
            }
        }
        for (gen, _, _) in self.list_shard_files() {
            max = max.max(gen);
        }
        max
    }

    fn write_shard_files(
        &self,
        gen: u64,
        shards: &[AccumulatorSnapshot],
        run_line: &str,
    ) -> Result<(), StoreError> {
        let n = shards.len();
        let workers = n.min(SHARD_IO_WORKERS);
        let chunk = n.div_ceil(workers);
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for (w, part) in shards.chunks(chunk).enumerate() {
                let base = w * chunk;
                handles.push(scope.spawn(move || -> std::io::Result<()> {
                    for (j, snap) in part.iter().enumerate() {
                        let i = base + j;
                        let mut body = format!(
                            "idldp-shard v1\ngen {gen}\nshard {i} of {n}\nusers {}\n",
                            snap.num_users()
                        );
                        push_counts_line(&mut body, snap.counts());
                        push_run_line(&mut body, run_line);
                        let sealed = seal(body);
                        let path = self.shard_path(gen, i);
                        let mut file = std::fs::File::create(&path)?;
                        file.write_all(sealed.as_bytes())?;
                        // Shard data must be durable before the manifest
                        // commit can reference it.
                        file.sync_all()?;
                    }
                    Ok(())
                }));
            }
            for handle in handles {
                handle.join().expect("shard writer panicked")?;
            }
            Ok(())
        })
        .map_err(StoreError::Io)
    }

    /// Reads the `n` shard files of a committed generation in parallel.
    fn read_generation(&self, gen: u64, n: usize) -> Result<Vec<AccumulatorSnapshot>, StoreError> {
        let workers = n.min(SHARD_IO_WORKERS);
        let chunk = n.div_ceil(workers);
        let mut slots: Vec<Option<AccumulatorSnapshot>> = (0..n).map(|_| None).collect();
        std::thread::scope(|scope| -> Result<(), StoreError> {
            let mut handles = Vec::new();
            for (w, out) in slots.chunks_mut(chunk).enumerate() {
                let base = w * chunk;
                handles.push(scope.spawn(move || -> Result<(), String> {
                    for (j, slot) in out.iter_mut().enumerate() {
                        let i = base + j;
                        let path = self.shard_path(gen, i);
                        let text = std::fs::read_to_string(&path)
                            .map_err(|e| format!("shard file `{}`: {e}", path.display()))?;
                        let shard = parse_shard_file(&text)
                            .map_err(|e| format!("shard file `{}`: {e}", path.display()))?;
                        if shard.gen != gen || shard.idx != i || shard.of != n {
                            return Err(format!(
                                "shard file `{}` header disagrees with the manifest",
                                path.display()
                            ));
                        }
                        *slot = Some(shard.snapshot);
                    }
                    Ok(())
                }));
            }
            for handle in handles {
                handle
                    .join()
                    .expect("shard reader panicked")
                    .map_err(StoreError::Corrupt)?;
            }
            Ok(())
        })?;
        Ok(slots
            .into_iter()
            .map(|s| s.expect("every slot filled by its reader"))
            .collect())
    }

    /// Recovery scan when the manifest is missing or unreadable: newest
    /// generation whose shard file set is complete and digest-clean wins.
    fn scan_for_complete_generation(&self) -> Option<RestoredCheckpoint> {
        let mut gens: Vec<u64> = self.list_shard_files().iter().map(|f| f.0).collect();
        gens.sort_unstable();
        gens.dedup();
        for gen in gens.into_iter().rev() {
            if let Some(restored) = self.try_read_generation(gen) {
                return Some(restored);
            }
        }
        None
    }

    fn try_read_generation(&self, gen: u64) -> Option<RestoredCheckpoint> {
        let text = std::fs::read_to_string(self.shard_path(gen, 0)).ok()?;
        let first = parse_shard_file(&text).ok()?;
        if first.gen != gen || first.idx != 0 || first.of == 0 {
            return None;
        }
        let n = first.of;
        let run_line = first.run_line.clone();
        let mut shards = vec![first.snapshot];
        for i in 1..n {
            let text = std::fs::read_to_string(self.shard_path(gen, i)).ok()?;
            let shard = parse_shard_file(&text).ok()?;
            if shard.gen != gen || shard.idx != i || shard.of != n {
                return None;
            }
            shards.push(shard.snapshot);
        }
        RestoredCheckpoint::checked(shards, run_line).ok()
    }

    /// Deletes shard files from generations other than the current one
    /// (best-effort: a failure just leaves debris a later save retries).
    fn remove_stale_generations(&self) {
        for (gen, _, path) in self.list_shard_files() {
            if gen != self.gen {
                let _ = std::fs::remove_file(path);
            }
        }
    }
}

fn parse_manifest(text: &str) -> Result<Manifest, String> {
    let body = unseal(text)?;
    let mut lines = body.lines();
    let header = lines.next().ok_or("empty manifest")?;
    if header != "idldp-manifest v1" {
        return Err(format!("unsupported manifest header `{header}`"));
    }
    let gen = parse_prefixed_u64(lines.next().ok_or("missing gen line")?, "gen ")?;
    let shards = parse_prefixed_u64(lines.next().ok_or("missing shards line")?, "shards ")?;
    let users = parse_prefixed_u64(lines.next().ok_or("missing users line")?, "users ")?;
    if shards == 0 {
        return Err("manifest names zero shards".into());
    }
    let run_line = find_run_line(body);
    Ok(Manifest {
        gen,
        shards: usize::try_from(shards).map_err(|_| "shard count overflows usize")?,
        users,
        run_line,
    })
}

fn parse_shard_file(text: &str) -> Result<ShardFile, String> {
    let body = unseal(text)?;
    let mut lines = body.lines();
    let header = lines.next().ok_or("empty shard file")?;
    if header != "idldp-shard v1" {
        return Err(format!("unsupported shard header `{header}`"));
    }
    let gen = parse_prefixed_u64(lines.next().ok_or("missing gen line")?, "gen ")?;
    let shard_line = lines.next().ok_or("missing shard line")?;
    let (idx, of) = shard_line
        .strip_prefix("shard ")
        .and_then(|rest| rest.split_once(" of "))
        .and_then(|(i, n)| Some((i.trim().parse().ok()?, n.trim().parse().ok()?)))
        .ok_or_else(|| format!("bad shard line `{shard_line}`"))?;
    let users = parse_prefixed_u64(lines.next().ok_or("missing users line")?, "users ")?;
    let counts = parse_counts_line(lines.next().ok_or("missing counts line")?)?;
    let snapshot = AccumulatorSnapshot::new(counts, users).map_err(|e| e.to_string())?;
    Ok(ShardFile {
        gen,
        idx,
        of,
        snapshot,
        run_line: find_run_line(body),
    })
}

impl SnapshotStore for ShardedStore {
    fn kind(&self) -> StoreKind {
        StoreKind::Sharded
    }

    fn path(&self) -> &Path {
        &self.path
    }

    fn load(&mut self) -> Result<Option<RestoredCheckpoint>, StoreError> {
        self.gen = self.probe_disk_gen();
        self.synced = true;
        let text = match std::fs::read_to_string(&self.path) {
            Ok(text) => text,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                // No manifest: either nothing was ever committed here, or
                // the manifest was lost. A complete shard generation still
                // restores; otherwise there is no committed checkpoint.
                return Ok(self.scan_for_complete_generation());
            }
            Err(e) => return Err(StoreError::Io(e)),
        };
        if text.starts_with("idldp-snapshot ") {
            // v1 flat checkpoint at our manifest path: migrate on read.
            return load_v1_flat(&text).map(Some);
        }
        match parse_manifest(&text) {
            Ok(manifest) => {
                let shards = self.read_generation(manifest.gen, manifest.shards)?;
                let restored = RestoredCheckpoint::checked(shards, manifest.run_line)?;
                if restored.num_users() != manifest.users {
                    return Err(StoreError::Corrupt(format!(
                        "manifest says {} users but shard files sum to {}",
                        manifest.users,
                        restored.num_users()
                    )));
                }
                Ok(Some(restored))
            }
            Err(detail) => {
                // Torn or garbled manifest: fall back to the newest
                // complete generation; if none survives, surface the
                // damage instead of silently starting empty.
                self.scan_for_complete_generation()
                    .map(Some)
                    .ok_or_else(|| {
                        StoreError::Corrupt(format!(
                            "checkpoint manifest unreadable ({detail}) and no complete shard \
                         generation found beside it"
                        ))
                    })
            }
        }
    }

    fn save(&mut self, shards: &[AccumulatorSnapshot], run_line: &str) -> Result<(), StoreError> {
        validate_save_args(shards)?;
        if !self.synced {
            self.gen = self.probe_disk_gen();
            self.synced = true;
        }
        let gen = self.gen + 1;
        self.write_shard_files(gen, shards, run_line)?;
        let users: u64 = shards.iter().map(AccumulatorSnapshot::num_users).sum();
        let mut body = format!(
            "idldp-manifest v1\ngen {gen}\nshards {}\nusers {users}\n",
            shards.len()
        );
        push_run_line(&mut body, run_line);
        // Commit point: the manifest rename makes generation `gen` live.
        write_checkpoint_atomic(&self.path, &seal(body))?;
        self.gen = gen;
        self.remove_stale_generations();
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// DeltaStore

/// Default number of delta records appended before the log is compacted
/// back to a single base record.
pub const DELTA_COMPACT_EVERY: u64 = 64;

/// Default size ratio: the log is compacted when it would exceed this
/// multiple of its base record's size.
pub const DELTA_SIZE_RATIO: u64 = 4;

/// Backend #3: a log-structured checkpoint.
///
/// The log is a sequence of self-sealed records. A **base** record holds a
/// full snapshot; a **delta** record holds only the per-bucket count
/// increases and the user increment since the record before it — computed
/// against the previous snapshot the writer already holds in memory, so an
/// append costs O(reports since last checkpoint), not O(domain). Every
/// record ends with a `check` digest over its own bytes, so a reload
/// replays the longest intact prefix and a torn tail (crash mid-append) is
/// truncated at the last record boundary before new records land.
///
/// Compaction — an atomic rewrite of the whole log as one base record —
/// triggers after [`DELTA_COMPACT_EVERY`] deltas, when the log outgrows
/// [`DELTA_SIZE_RATIO`] × the base record, or whenever a delta cannot
/// express the change (first save, shrinking counts, width or run-line
/// change, or a v1 flat file being migrated).
#[derive(Debug)]
pub struct DeltaStore {
    path: PathBuf,
    compact_every: u64,
    size_ratio: u64,
    loaded: bool,
    /// The last durably saved snapshot — the baseline the next delta is
    /// computed against.
    prev: Option<AccumulatorSnapshot>,
    prev_run: Option<String>,
    /// Byte length of the intact record prefix; appends truncate to this
    /// first, so a torn tail can never sit between committed records.
    valid_len: usize,
    base_bytes: usize,
    deltas_since_base: u64,
    force_compact: bool,
}

impl DeltaStore {
    /// A delta store with the default compaction policy.
    pub fn new(path: impl Into<PathBuf>) -> Self {
        Self::with_compaction(path, DELTA_COMPACT_EVERY, DELTA_SIZE_RATIO)
    }

    /// A delta store compacting every `compact_every` deltas or when the
    /// log exceeds `size_ratio` × the base record size — exposed so tests
    /// and benches can force compaction cycles quickly.
    pub fn with_compaction(path: impl Into<PathBuf>, compact_every: u64, size_ratio: u64) -> Self {
        Self {
            path: path.into(),
            compact_every: compact_every.max(1),
            size_ratio: size_ratio.max(1),
            loaded: false,
            prev: None,
            prev_run: None,
            valid_len: 0,
            base_bytes: 0,
            deltas_since_base: 0,
            force_compact: false,
        }
    }

    /// Number of delta records appended since the last base record —
    /// observability for tests asserting compaction behavior.
    pub fn deltas_since_base(&self) -> u64 {
        self.deltas_since_base
    }

    /// Atomically rewrites the log as a single base record.
    fn compact(&mut self, merged: &AccumulatorSnapshot, run_line: &str) -> Result<(), StoreError> {
        let mut body = format!("idldp-delta v1 base\nusers {}\n", merged.num_users());
        push_counts_line(&mut body, merged.counts());
        push_run_line(&mut body, run_line);
        let payload = seal(body);
        write_checkpoint_atomic(&self.path, &payload)?;
        self.valid_len = payload.len();
        self.base_bytes = payload.len();
        self.deltas_since_base = 0;
        self.force_compact = false;
        Ok(())
    }

    /// Appends one sealed delta record after truncating any torn tail.
    fn append(&mut self, record: &str) -> Result<(), StoreError> {
        let mut file = match std::fs::OpenOptions::new().write(true).open(&self.path) {
            Ok(file) => file,
            Err(e) => return Err(StoreError::Io(e)),
        };
        let valid = self.valid_len as u64;
        // Physically drop any torn tail first so the new record lands
        // immediately after the last intact one.
        file.set_len(valid)?;
        file.seek(SeekFrom::Start(valid))?;
        file.write_all(record.as_bytes())?;
        file.sync_all()?;
        self.valid_len += record.len();
        self.deltas_since_base += 1;
        Ok(())
    }
}

/// One sealed delta record: user increment + sparse count increases.
fn delta_record(
    prev: &AccumulatorSnapshot,
    merged: &AccumulatorSnapshot,
    run_line: &str,
) -> String {
    use std::fmt::Write as _;
    let du = merged.num_users() - prev.num_users();
    let mut body = format!("idldp-delta v1 delta\nusers +{du}\ncounts");
    for (i, (&p, &c)) in prev.counts().iter().zip(merged.counts()).enumerate() {
        if c != p {
            write!(body, " {i}:{}", c - p).expect("writing to String cannot fail");
        }
    }
    body.push('\n');
    push_run_line(&mut body, run_line);
    seal(body)
}

enum DeltaRecord {
    Base {
        counts: Vec<u64>,
        users: u64,
    },
    Delta {
        entries: Vec<(usize, u64)>,
        users: u64,
    },
}

/// Parses one record at the start of `s`. Returns the record and its byte
/// length, or `None` when the bytes are not one complete, digest-clean
/// record (the torn-tail / damage stop condition).
fn parse_delta_record(s: &str) -> Option<(usize, DeltaRecord, Option<String>)> {
    fn take_line<'a>(s: &'a str, pos: &mut usize) -> Option<&'a str> {
        let nl = s[*pos..].find('\n')? + *pos;
        let line = &s[*pos..nl];
        *pos = nl + 1;
        Some(line)
    }

    let mut pos = 0;
    let header = take_line(s, &mut pos)?;
    let is_base = match header {
        "idldp-delta v1 base" => true,
        "idldp-delta v1 delta" => false,
        _ => return None,
    };
    let users_line = take_line(s, &mut pos)?;
    let counts_line = take_line(s, &mut pos)?;
    let mut line = take_line(s, &mut pos)?;
    let mut run_line = None;
    if line.starts_with("run ") {
        run_line = Some(line.to_owned());
        line = take_line(s, &mut pos)?;
    }
    let check = u64::from_str_radix(line.strip_prefix("check ")?.trim(), 16).ok()?;
    let check_line_start = pos - (line.len() + 1);
    if fnv1a(&s.as_bytes()[..check_line_start]) != check {
        return None;
    }
    let record = if is_base {
        let users = users_line.strip_prefix("users ")?.trim().parse().ok()?;
        let counts = parse_counts_line(counts_line).ok()?;
        if counts.is_empty() {
            return None;
        }
        DeltaRecord::Base { counts, users }
    } else {
        let users = users_line.strip_prefix("users +")?.trim().parse().ok()?;
        let entries = counts_line
            .strip_prefix("counts")?
            .split_whitespace()
            .map(|tok| {
                let (i, d) = tok.split_once(':')?;
                Some((i.parse().ok()?, d.parse().ok()?))
            })
            .collect::<Option<Vec<(usize, u64)>>>()?;
        DeltaRecord::Delta { entries, users }
    };
    Some((pos, record, run_line))
}

impl SnapshotStore for DeltaStore {
    fn kind(&self) -> StoreKind {
        StoreKind::Delta
    }

    fn path(&self) -> &Path {
        &self.path
    }

    fn load(&mut self) -> Result<Option<RestoredCheckpoint>, StoreError> {
        self.loaded = true;
        self.prev = None;
        self.prev_run = None;
        self.valid_len = 0;
        self.base_bytes = 0;
        self.deltas_since_base = 0;
        self.force_compact = false;
        let bytes = match std::fs::read(&self.path) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(StoreError::Io(e)),
        };
        if bytes.is_empty() {
            return Ok(None);
        }
        // A torn tail may cut a record mid-byte; treat trailing invalid
        // UTF-8 like any other torn suffix and parse the valid prefix.
        let text = match std::str::from_utf8(&bytes) {
            Ok(text) => text,
            Err(e) => std::str::from_utf8(&bytes[..e.valid_up_to()])
                .expect("prefix up to the reported error index is valid UTF-8"),
        };
        if text.starts_with("idldp-snapshot ") {
            // v1 flat checkpoint: migrate on read, rewrite as a delta-log
            // base record on the next save.
            let restored = load_v1_flat(text)?;
            self.prev = Some(restored.merged());
            self.prev_run = restored.run_line.clone();
            self.force_compact = true;
            return Ok(Some(restored));
        }
        if !text.starts_with("idldp-delta v1 ") {
            let header = text.lines().next().unwrap_or_default();
            return Err(StoreError::Corrupt(format!(
                "`{}` is not a delta checkpoint log (header `{header}`)",
                self.path.display()
            )));
        }
        // Replay the longest intact record prefix; stop at the first torn
        // or damaged record.
        let mut pos = 0usize;
        let mut state: Option<(Vec<u64>, u64)> = None;
        while pos < text.len() {
            let Some((len, record, run_line)) = parse_delta_record(&text[pos..]) else {
                break;
            };
            match record {
                DeltaRecord::Base { counts, users } => {
                    state = Some((counts, users));
                    self.base_bytes = len;
                    self.deltas_since_base = 0;
                }
                DeltaRecord::Delta { entries, users } => {
                    let Some((counts, total_users)) = state.as_mut() else {
                        break;
                    };
                    let fits = entries.iter().all(|&(i, _)| i < counts.len());
                    if !fits {
                        break;
                    }
                    for (i, d) in entries {
                        counts[i] += d;
                    }
                    *total_users += users;
                    self.deltas_since_base += 1;
                }
            }
            self.prev_run = run_line;
            pos += len;
        }
        self.valid_len = pos;
        match state {
            Some((counts, users)) => {
                let snap = AccumulatorSnapshot::new(counts, users)
                    .map_err(|e| StoreError::Corrupt(e.to_string()))?;
                self.prev = Some(snap.clone());
                RestoredCheckpoint::checked(vec![snap], self.prev_run.clone()).map(Some)
            }
            None => Ok(None),
        }
    }

    fn save(&mut self, shards: &[AccumulatorSnapshot], run_line: &str) -> Result<(), StoreError> {
        validate_save_args(shards)?;
        if !self.loaded {
            self.load()?;
        }
        let merged = merge_all(shards);
        let run = (!run_line.is_empty()).then(|| run_line.to_owned());
        let need_full = self.force_compact
            || match &self.prev {
                None => true,
                Some(prev) => {
                    prev.report_len() != merged.report_len()
                        || prev.num_users() > merged.num_users()
                        || prev
                            .counts()
                            .iter()
                            .zip(merged.counts())
                            .any(|(p, c)| p > c)
                        || self.prev_run != run
                }
            };
        if need_full {
            self.compact(&merged, run_line)?;
        } else {
            let prev = self.prev.as_ref().expect("need_full is false");
            let record = delta_record(prev, &merged, run_line);
            let over_ratio = (self.valid_len + record.len()) as u64
                > self.size_ratio.saturating_mul(self.base_bytes as u64);
            if self.deltas_since_base >= self.compact_every || over_ratio {
                self.compact(&merged, run_line)?;
            } else {
                match self.append(&record) {
                    Ok(()) => {}
                    // The log vanished underneath us (e.g. deleted by an
                    // operator): rebuild it whole instead of failing.
                    Err(StoreError::Io(e)) if e.kind() == std::io::ErrorKind::NotFound => {
                        self.compact(&merged, run_line)?;
                    }
                    Err(e) => return Err(e),
                }
            }
        }
        self.prev = Some(merged);
        self.prev_run = run;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "idldp-store-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn snap(counts: &[u64], users: u64) -> AccumulatorSnapshot {
        AccumulatorSnapshot::new(counts.to_vec(), users).unwrap()
    }

    #[test]
    fn store_kind_parses_and_displays() {
        for kind in StoreKind::ALL {
            assert_eq!(kind.to_string().parse::<StoreKind>().unwrap(), kind);
        }
        assert!("zfs".parse::<StoreKind>().is_err());
        assert_eq!(StoreKind::default(), StoreKind::File);
    }

    #[test]
    fn every_backend_round_trips_shards_and_run_line() {
        let dir = test_dir("roundtrip");
        let shards = [
            snap(&[1, 0, 5], 3),
            snap(&[0, 2, 0], 2),
            snap(&[4, 4, 4], 7),
        ];
        let merged = merge_all(&shards);
        for kind in StoreKind::ALL {
            let path = dir.join(format!("{kind}.ckpt"));
            let mut store = open_store(kind, &path);
            assert_eq!(store.kind(), kind);
            assert!(
                store.load().unwrap().is_none(),
                "{kind}: fresh path is empty"
            );
            store.save(&shards, "run test kind=demo").unwrap();
            // A brand-new store instance (fresh process) must see it.
            let mut reopened = open_store(kind, &path);
            let restored = reopened.load().unwrap().unwrap();
            assert_eq!(restored.merged(), merged, "{kind}");
            assert_eq!(restored.num_users(), 12, "{kind}");
            assert_eq!(restored.run_line(), Some("run test kind=demo"), "{kind}");
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn file_store_output_is_byte_compatible_with_legacy_writers() {
        let dir = test_dir("bytecompat");
        let path = dir.join("legacy.ckpt");
        let merged = snap(&[10, 20, 30], 6);
        // What `idldp ingest` / the server wrote before stores existed.
        merged
            .write_checkpoint(&path, "run legacy stamp\n")
            .unwrap();
        let legacy = std::fs::read(&path).unwrap();
        std::fs::remove_file(&path).unwrap();
        FileStore::new(&path)
            .save(&[merged], "run legacy stamp")
            .unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), legacy);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn every_backend_migrates_v1_flat_checkpoints() {
        let dir = test_dir("migrate");
        let merged = snap(&[7, 0, 9, 2], 11);
        for kind in StoreKind::ALL {
            let path = dir.join(format!("{kind}.ckpt"));
            merged.write_checkpoint(&path, "run old-format\n").unwrap();
            let mut store = open_store(kind, &path);
            let restored = store.load().unwrap().unwrap();
            assert_eq!(restored.merged(), merged, "{kind}");
            assert_eq!(restored.run_line(), Some("run old-format"), "{kind}");
            // The next save rewrites in the store's own format, and it
            // still round-trips.
            let grown = snap(&[8, 1, 9, 2], 12);
            store
                .save(std::slice::from_ref(&grown), "run old-format")
                .unwrap();
            let again = open_store(kind, &path).load().unwrap().unwrap();
            assert_eq!(again.merged(), grown, "{kind}");
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn sharded_store_restores_across_different_shard_counts() {
        let dir = test_dir("shardcount");
        let path = dir.join("s.ckpt");
        let shards: Vec<AccumulatorSnapshot> =
            (0..13).map(|i| snap(&[i, 2 * i, 1], i + 1)).collect();
        ShardedStore::new(&path).save(&shards, "").unwrap();
        let restored = ShardedStore::new(&path).load().unwrap().unwrap();
        assert_eq!(restored.shards().len(), 13);
        assert_eq!(restored.merged(), merge_all(&shards));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn sharded_store_save_supersedes_and_cleans_previous_generation() {
        let dir = test_dir("generations");
        let path = dir.join("s.ckpt");
        let mut store = ShardedStore::new(&path);
        store
            .save(&[snap(&[1, 1], 2), snap(&[0, 3], 1)], "")
            .unwrap();
        store
            .save(&[snap(&[2, 1], 3), snap(&[0, 4], 2)], "")
            .unwrap();
        let restored = ShardedStore::new(&path).load().unwrap().unwrap();
        assert_eq!(restored.merged(), snap(&[2, 5], 5));
        // Only the committed generation's files remain beside the manifest.
        let files = std::fs::read_dir(&dir).unwrap().count();
        assert_eq!(files, 3, "manifest + 2 live shard files");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn delta_store_appends_then_compacts_on_schedule() {
        let dir = test_dir("compaction");
        let path = dir.join("d.log");
        let mut store = DeltaStore::with_compaction(&path, 3, 1_000_000);
        let mut counts = vec![10u64, 0, 0];
        let mut users = 10u64;
        store.save(&[snap(&counts, users)], "run r").unwrap();
        assert_eq!(store.deltas_since_base(), 0, "first save is a base");
        for round in 1..=7u64 {
            counts[(round % 3) as usize] += 1;
            users += 1;
            store.save(&[snap(&counts, users)], "run r").unwrap();
        }
        // 7 saves after the base with compact_every=3: deltas 1,2,3 then
        // compact resets, deltas 1,2,3 then compact again... the counter
        // never exceeds the bound.
        assert!(store.deltas_since_base() <= 3);
        let restored = DeltaStore::new(&path).load().unwrap().unwrap();
        assert_eq!(restored.merged(), snap(&counts, users));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn delta_store_truncates_torn_tail_to_last_intact_record() {
        let dir = test_dir("torntail");
        let path = dir.join("d.log");
        let mut store = DeltaStore::with_compaction(&path, 1_000, 1_000_000);
        let mut sizes = Vec::new();
        let mut snaps = Vec::new();
        let mut counts = vec![5u64, 5, 5];
        let mut users = 5u64;
        for round in 0..4u64 {
            counts[(round % 3) as usize] += round + 1;
            users += 1;
            let s = snap(&counts, users);
            store.save(std::slice::from_ref(&s), "run torn").unwrap();
            sizes.push(std::fs::metadata(&path).unwrap().len());
            snaps.push(s);
        }
        let whole = std::fs::read(&path).unwrap();
        // Cut mid-way into the last record: the reload must land exactly
        // on the state after the third save.
        let cut = ((sizes[2] + sizes[3]) / 2) as usize;
        std::fs::write(&path, &whole[..cut]).unwrap();
        let mut reopened = DeltaStore::new(&path);
        let restored = reopened.load().unwrap().unwrap();
        assert_eq!(restored.merged(), snaps[2]);
        // Saving after the truncation drops the torn bytes and continues
        // the log from the intact prefix.
        let next = snap(&[99, 99, 99], 99);
        reopened
            .save(std::slice::from_ref(&next), "run torn")
            .unwrap();
        assert_eq!(
            DeltaStore::new(&path).load().unwrap().unwrap().merged(),
            next
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn delta_store_compacts_when_counts_shrink_or_run_line_changes() {
        let dir = test_dir("fullrewrite");
        let path = dir.join("d.log");
        let mut store = DeltaStore::with_compaction(&path, 1_000, 1_000_000);
        store.save(&[snap(&[4, 4], 4)], "run a").unwrap();
        store.save(&[snap(&[5, 4], 5)], "run a").unwrap();
        assert_eq!(store.deltas_since_base(), 1);
        // Run line changed: the delta lineage is broken, rewrite whole.
        store.save(&[snap(&[6, 4], 6)], "run b").unwrap();
        assert_eq!(store.deltas_since_base(), 0);
        // Shrinking counts (a reset) likewise force a fresh base.
        store.save(&[snap(&[1, 1], 1)], "run b").unwrap();
        assert_eq!(store.deltas_since_base(), 0);
        let restored = DeltaStore::new(&path).load().unwrap().unwrap();
        assert_eq!(restored.merged(), snap(&[1, 1], 1));
        assert_eq!(restored.run_line(), Some("run b"));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn save_rejects_empty_or_mismatched_shards() {
        let dir = test_dir("badargs");
        for kind in StoreKind::ALL {
            let mut store = open_store(kind, dir.join(format!("{kind}.ckpt")));
            assert!(store.save(&[], "").is_err(), "{kind}: empty shard list");
            assert!(
                store.save(&[snap(&[1], 1), snap(&[1, 2], 1)], "").is_err(),
                "{kind}: width mismatch"
            );
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
