//! # `idldp-core` — Input-Discriminative Local Differential Privacy
//!
//! A faithful implementation of the privacy notions and mechanisms from
//!
//! > Xiaolan Gu, Ming Li, Li Xiong, Yang Cao.
//! > *Providing Input-Discriminative Protection for Local Differential
//! > Privacy.* IEEE ICDE 2020.
//!
//! ## What lives here
//!
//! * **Notions** — [`budget::Epsilon`] and [`levels::LevelPartition`] describe
//!   per-input privacy requirements; [`notion::RFunction`] and
//!   [`notion::Notion`] define ε-LDP, E-ID-LDP and its MinID/AvgID/MaxID
//!   instantiations (Definitions 1–3 of the paper); [`relations`] implements
//!   the Lemma 1 sandwich between LDP and MinID-LDP; [`composition`]
//!   implements the sequential-composition accountants (Theorems 1 and 2);
//!   [`leakage`] computes the prior–posterior leakage bounds of Table I.
//! * **Mechanisms** — [`grr::GeneralizedRandomizedResponse`],
//!   [`ue::UnaryEncoding`] (with SUE/RAPPOR and OUE constructors),
//!   [`idue::Idue`] (Algorithm 1), the [`ps`] Padding-and-Sampling protocol
//!   (Algorithm 2, after Wang et al. S&P'18) and [`idue_ps::IduePs`]
//!   (Algorithm 3), plus a generic [`matrix_mech::PerturbationMatrix`]
//!   mechanism used for auditing and baselines, and the classical LDP
//!   baselines with compact wire formats:
//!   [`olh::OptimalLocalHashing`] (hashed `(seed, value)` reports) and
//!   [`subset::SubsetSelection`] (size-`k` item-set reports).
//! * **Trait layer** — [`mechanism::Mechanism`],
//!   [`mechanism::BatchMechanism`] and [`mechanism::FrequencyOracle`]: the
//!   unified client/server contract every mechanism implements, so
//!   simulation, CLI, and benchmarks dispatch over `dyn Mechanism` and a
//!   new protocol is one `impl` plus one registry entry (in `idldp-sim`).
//! * **Report wire format** — [`report`]: the shape-polymorphic report
//!   layer ([`report::ReportShape`], borrowed [`report::Report`], owned
//!   [`report::ReportData`], and the shared client/server
//!   [`report::hash_bucket`]); [`mechanism::Mechanism::report_shape`] and
//!   [`mechanism::Mechanism::perturb_data`] are the shape-aware emission
//!   path, with `perturb_into` the zero-alloc folded bit-vector twin.
//! * **Fold engine** — [`fold`]: the batched, word-packed server-side
//!   folding primitives ([`fold::BitPlanes`] SWAR bit-slice counters,
//!   carry-free [`fold::pack_bits_row`] packing, and the bounded
//!   [`fold::SeedPreimageCache`] for hashed reports) that the streaming
//!   accumulators' `accumulate_batch` specializations build on.
//! * **Estimation** — [`estimator::FrequencyEstimator`]: the unbiased
//!   calibrated estimator of Eq. 8 and the closed-form MSE of Eq. 9;
//!   [`oracle::CalibratingOracle`] and [`oracle::MatrixOracle`] adapt it
//!   (and exact LU inversion) to the oracle trait.
//! * **Streaming state** — [`snapshot::AccumulatorSnapshot`]: frozen
//!   accumulator counts with checkpoint/restore serialization; the oracle
//!   trait's incremental path
//!   ([`mechanism::FrequencyOracle::estimate_from`]) serves estimates from
//!   snapshots mid-stream. The sharded online accumulators themselves live
//!   in the `idldp-stream` crate.
//! * **Auditing** — [`audit`]: analytic and exhaustive verification that a
//!   mechanism satisfies a notion (used to validate Theorem 4 numerically).
//!
//! The numeric *solvers* that pick IDUE's perturbation probabilities live in
//! the sibling crate `idldp-opt`; this crate defines the
//! [`params::LevelParams`] container they produce.
//!
//! ## Quick example
//!
//! ```
//! use idldp_core::budget::Epsilon;
//! use idldp_core::levels::LevelPartition;
//! use idldp_core::params::LevelParams;
//! use idldp_core::idue::Idue;
//! use rand::SeedableRng;
//!
//! // Five items; item 0 (say, "HIV") is more sensitive than the rest.
//! let levels = LevelPartition::new(
//!     vec![0, 1, 1, 1, 1],
//!     vec![Epsilon::new(4.0_f64.ln()).unwrap(), Epsilon::new(6.0_f64.ln()).unwrap()],
//! ).unwrap();
//! // Hand-picked feasible parameters (normally produced by idldp-opt).
//! let params = LevelParams::new(vec![0.59, 0.67], vec![0.33, 0.28]).unwrap();
//! let idue = Idue::new(levels, &params).unwrap();
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let report = idue.perturb_item(0, &mut rng); // length-5 bit vector
//! assert_eq!(report.len(), 5);
//! ```

#![deny(missing_docs)]

pub mod audit;
pub mod budget;
pub mod composition;
pub mod error;
pub mod estimator;
pub mod fold;
pub mod grr;
pub mod identity;
pub mod idue;
pub mod idue_ps;
pub mod leakage;
pub mod levels;
pub mod matrix_mech;
pub mod mechanism;
pub mod notion;
pub mod olh;
pub mod oracle;
pub mod params;
pub mod policy;
pub mod ps;
pub mod relations;
pub mod report;
pub mod snapshot;
pub mod subset;
pub mod ue;

pub use budget::Epsilon;
pub use error::Error;
pub use estimator::FrequencyEstimator;
pub use idue::Idue;
pub use idue_ps::IduePs;
pub use levels::LevelPartition;
pub use mechanism::{
    BatchMechanism, BitProfile, CountAccumulator, FrequencyOracle, Input, InputBatch, InputKind,
    Mechanism,
};
pub use notion::{Notion, RFunction};
pub use olh::OptimalLocalHashing;
pub use params::LevelParams;
pub use policy::PolicyGraph;
pub use report::{hash_bucket, Report, ReportData, ReportShape};
pub use snapshot::AccumulatorSnapshot;
pub use subset::SubsetSelection;
pub use ue::UnaryEncoding;
