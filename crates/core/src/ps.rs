//! The Padding-and-Sampling protocol (Algorithm 2, after Wang et al. S&P'18).
//!
//! Item-set inputs are first padded with dummy items from a disjoint domain
//! `S` (|S| = ℓ) — or truncated — to a fixed length ℓ, then exactly one item
//! is sampled uniformly from the padded set. This turns a set-valued input
//! into a single (real or dummy) item, at the cost of a known 1/ℓ sampling
//! rate that the estimator corrects for.

use crate::error::{Error, Result};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// The outcome of padding-and-sampling one input set.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum SampledItem {
    /// A real item `i ∈ I` (index into the item domain).
    Real(usize),
    /// Dummy item `⊥_j` with `j ∈ 0..ℓ` (index into the dummy domain `S`).
    Dummy(usize),
}

impl SampledItem {
    /// Position of this item in the extended `(m + ℓ)`-bit encoding used by
    /// IDUE-PS: real items map to their own index, dummy `⊥_j` to `m + j`.
    pub fn encoded_index(&self, m: usize) -> usize {
        match *self {
            SampledItem::Real(i) => i,
            SampledItem::Dummy(j) => m + j,
        }
    }

    /// `true` for a real item.
    pub fn is_real(&self) -> bool {
        matches!(self, SampledItem::Real(_))
    }
}

/// Internal position-level sampling outcome (index into the input set, or a
/// dummy index).
enum SampledPosition {
    Real(usize),
    Dummy(usize),
}

/// Padding-and-Sampling with padding length ℓ over dummy domain `S` of the
/// same size ℓ.
///
/// # Examples
/// ```
/// use idldp_core::ps::PaddingAndSampling;
/// use rand::SeedableRng;
/// let ps = PaddingAndSampling::new(3).unwrap();
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// // A 2-item set against ℓ = 3: sampled item is real w.p. η = 2/3.
/// assert_eq!(ps.eta(2), 2.0 / 3.0);
/// let sampled = ps.pad_and_sample(&[4, 9], &mut rng);
/// // Result is either one of {4, 9} or a dummy ⊥_j with j < 3.
/// let _ = sampled.encoded_index(10);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct PaddingAndSampling {
    l: usize,
}

impl PaddingAndSampling {
    /// Creates the protocol with padding length `l >= 1`.
    pub fn new(l: usize) -> Result<Self> {
        if l == 0 {
            return Err(Error::Empty {
                what: "padding length".into(),
            });
        }
        Ok(Self { l })
    }

    /// Padding length ℓ (also the dummy-domain size |S|).
    pub fn padding_length(&self) -> usize {
        self.l
    }

    /// The position-level core of Algorithm 2: given only the set size `k`,
    /// returns either the *position* of the sampled real item inside the
    /// set or the sampled dummy index. Shared by the `usize` and `u32` set
    /// entry points so both consume randomness identically.
    fn sample_position<R: Rng + ?Sized>(&self, k: usize, rng: &mut R) -> SampledPosition {
        let l = self.l;
        if k >= l {
            // Truncating uniformly at random and then sampling uniformly is
            // a uniform draw over the original set; see `sample_fast` for
            // the equivalence test.
            return SampledPosition::Real(rng.random_range(0..k));
        }
        // Pad with (l − k) distinct dummies chosen uniformly from S (|S|=l):
        // partial Fisher–Yates over the dummy indices.
        let need = l - k;
        let mut dummies: Vec<usize> = (0..l).collect();
        for i in 0..need {
            let j = rng.random_range(i..l);
            dummies.swap(i, j);
        }
        // x_p = x ∪ {chosen dummies}; sample uniformly from the l slots.
        let slot = rng.random_range(0..l);
        if slot < k {
            SampledPosition::Real(slot)
        } else {
            SampledPosition::Dummy(dummies[slot - k])
        }
    }

    /// Runs Algorithm 2 literally: build the padded set `x_p` (pad with
    /// uniformly chosen distinct dummies, or drop uniformly chosen items),
    /// then sample one element uniformly from `x_p`.
    ///
    /// `x` must contain distinct item indices (an item-*set*).
    pub fn pad_and_sample<R: Rng + ?Sized>(&self, x: &[usize], rng: &mut R) -> SampledItem {
        match self.sample_position(x.len(), rng) {
            SampledPosition::Real(pos) => SampledItem::Real(x[pos]),
            SampledPosition::Dummy(j) => SampledItem::Dummy(j),
        }
    }

    /// [`Self::pad_and_sample`] over the compact `u32` set representation
    /// used by datasets and the batched trait layer. Consumes randomness
    /// identically to the `usize` path.
    pub fn pad_and_sample_u32<R: Rng + ?Sized>(&self, x: &[u32], rng: &mut R) -> SampledItem {
        match self.sample_position(x.len(), rng) {
            SampledPosition::Real(pos) => SampledItem::Real(x[pos] as usize),
            SampledPosition::Dummy(j) => SampledItem::Dummy(j),
        }
    }

    /// Distribution-equivalent fast path: with probability `|x|/ℓ` sample a
    /// uniform real item, otherwise a uniform dummy (only when `|x| < ℓ`;
    /// for `|x| >= ℓ` a uniform real item). Avoids materializing the padded
    /// set; the equivalence with [`Self::pad_and_sample`] is asserted in
    /// tests.
    pub fn sample_fast<R: Rng + ?Sized>(&self, x: &[usize], rng: &mut R) -> SampledItem {
        let l = self.l;
        let k = x.len();
        if k >= l {
            return SampledItem::Real(x[rng.random_range(0..k)]);
        }
        if k > 0 && rng.random_range(0..l) < k {
            SampledItem::Real(x[rng.random_range(0..k)])
        } else {
            SampledItem::Dummy(rng.random_range(0..l))
        }
    }

    /// The paper's `η_x = |x| / max(|x|, ℓ)` — the probability that the
    /// sampled item is real.
    pub fn eta(&self, set_size: usize) -> f64 {
        set_size as f64 / set_size.max(self.l) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use idldp_num::rng::SplitMix64;

    #[test]
    fn rejects_zero_length() {
        assert!(PaddingAndSampling::new(0).is_err());
        assert!(PaddingAndSampling::new(1).is_ok());
    }

    #[test]
    fn eta_definition() {
        let ps = PaddingAndSampling::new(3).unwrap();
        assert_eq!(ps.eta(0), 0.0);
        assert_eq!(ps.eta(1), 1.0 / 3.0);
        assert_eq!(ps.eta(3), 1.0);
        assert_eq!(ps.eta(7), 1.0);
    }

    #[test]
    fn empty_set_always_dummy() {
        let ps = PaddingAndSampling::new(4).unwrap();
        let mut rng = SplitMix64::new(1);
        for _ in 0..100 {
            match ps.pad_and_sample(&[], &mut rng) {
                SampledItem::Dummy(j) => assert!(j < 4),
                other => panic!("expected dummy, got {other:?}"),
            }
        }
    }

    #[test]
    fn oversized_set_samples_uniformly() {
        let ps = PaddingAndSampling::new(2).unwrap();
        let x = [3usize, 7, 9, 11];
        let mut rng = SplitMix64::new(2);
        let trials = 40_000;
        let mut hist = std::collections::HashMap::new();
        for _ in 0..trials {
            match ps.pad_and_sample(&x, &mut rng) {
                SampledItem::Real(i) => *hist.entry(i).or_insert(0u32) += 1,
                SampledItem::Dummy(_) => panic!("oversized set must sample real items"),
            }
        }
        for &i in &x {
            let rate = hist[&i] as f64 / trials as f64;
            assert!((rate - 0.25).abs() < 0.01, "item {i} rate {rate}");
        }
    }

    #[test]
    fn undersized_set_real_probability_is_eta() {
        let ps = PaddingAndSampling::new(5).unwrap();
        let x = [1usize, 2];
        let mut rng = SplitMix64::new(3);
        let trials = 50_000;
        let mut real = 0u32;
        let mut dummy_hist = [0u32; 5];
        for _ in 0..trials {
            match ps.pad_and_sample(&x, &mut rng) {
                SampledItem::Real(i) => {
                    assert!(x.contains(&i));
                    real += 1;
                }
                SampledItem::Dummy(j) => dummy_hist[j] += 1,
            }
        }
        let real_rate = real as f64 / trials as f64;
        assert!((real_rate - 0.4).abs() < 0.01, "real rate {real_rate}");
        // Dummies are marginally uniform over S.
        for (j, &h) in dummy_hist.iter().enumerate() {
            let rate = h as f64 / trials as f64;
            assert!((rate - 0.6 / 5.0).abs() < 0.01, "dummy {j} rate {rate}");
        }
    }

    #[test]
    fn fast_path_matches_literal_path_distribution() {
        let ps = PaddingAndSampling::new(4).unwrap();
        let x = [10usize, 20, 30];
        let trials = 60_000;
        let mut r1 = SplitMix64::new(4);
        let mut r2 = SplitMix64::new(5);
        let mut h1 = std::collections::HashMap::new();
        let mut h2 = std::collections::HashMap::new();
        for _ in 0..trials {
            *h1.entry(ps.pad_and_sample(&x, &mut r1).encoded_index(100))
                .or_insert(0u32) += 1;
            *h2.entry(ps.sample_fast(&x, &mut r2).encoded_index(100))
                .or_insert(0u32) += 1;
        }
        // Compare per-outcome rates within Monte-Carlo tolerance.
        for key in h1.keys().chain(h2.keys()) {
            let p1 = *h1.get(key).unwrap_or(&0) as f64 / trials as f64;
            let p2 = *h2.get(key).unwrap_or(&0) as f64 / trials as f64;
            assert!((p1 - p2).abs() < 0.012, "outcome {key}: {p1} vs {p2}");
        }
    }

    #[test]
    fn encoded_index_layout() {
        assert_eq!(SampledItem::Real(3).encoded_index(10), 3);
        assert_eq!(SampledItem::Dummy(2).encoded_index(10), 12);
        assert!(SampledItem::Real(0).is_real());
        assert!(!SampledItem::Dummy(0).is_real());
    }

    #[test]
    fn exact_length_set_never_pads() {
        let ps = PaddingAndSampling::new(3).unwrap();
        let x = [5usize, 6, 7];
        let mut rng = SplitMix64::new(6);
        for _ in 0..200 {
            assert!(ps.pad_and_sample(&x, &mut rng).is_real());
        }
    }
}

// ---------------------------------------------------------------------------
// Unified trait layer
// ---------------------------------------------------------------------------

use crate::estimator::FrequencyEstimator;
use crate::mechanism::{
    check_report_width, check_set_input, BatchMechanism, BitProfile, CountAccumulator,
    FrequencyOracle, Input, InputBatch, InputKind, Mechanism,
};
use crate::oracle::CalibratingOracle;
use crate::report::{ReportData, ReportShape};
use rand::RngCore;

/// Padding-and-Sampling as a standalone [`Mechanism`]: sample one (real or
/// dummy) item and report it *in the clear* as a one-hot vector over
/// `m + ℓ` buckets.
///
/// This is the paper's Algorithm 2 without a perturbation stage — useful as
/// the no-noise baseline in ablations (its reported
/// [`Mechanism::ldp_epsilon`] is infinite) and as the sampling harness the
/// composed [`crate::idue_ps::IduePs`] is validated against. The oracle
/// inverts only the known 1/ℓ sampling rate (`ĉ_i = ℓ · c_i`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct PsMechanism {
    ps: PaddingAndSampling,
    m: usize,
}

impl PsMechanism {
    /// Creates the mechanism over an item domain of size `m >= 1` with
    /// padding length `l >= 1`.
    ///
    /// # Errors
    /// Returns an error if `m == 0` or `l == 0`.
    pub fn new(m: usize, l: usize) -> Result<Self> {
        if m == 0 {
            return Err(Error::Empty {
                what: "PS item domain".into(),
            });
        }
        Ok(Self {
            ps: PaddingAndSampling::new(l)?,
            m,
        })
    }

    /// The underlying sampling protocol.
    pub fn sampling(&self) -> &PaddingAndSampling {
        &self.ps
    }

    /// Padding length ℓ.
    pub fn padding_length(&self) -> usize {
        self.ps.padding_length()
    }
}

impl Mechanism for PsMechanism {
    fn kind(&self) -> &'static str {
        "ps"
    }

    fn domain_size(&self) -> usize {
        self.m
    }

    fn report_len(&self) -> usize {
        self.m + self.ps.padding_length()
    }

    fn input_kind(&self) -> InputKind {
        InputKind::Set
    }

    fn report_shape(&self) -> ReportShape {
        // One sampled (real or dummy) item in the clear: a categorical
        // value over the m + ℓ extended buckets.
        ReportShape::Value
    }

    fn perturb_into(
        &self,
        input: Input<'_>,
        rng: &mut dyn RngCore,
        report: &mut [u8],
    ) -> Result<()> {
        let set = check_set_input(input, self.m)?;
        check_report_width(report, self.report_len())?;
        let hot = self.ps.pad_and_sample_u32(set, rng).encoded_index(self.m);
        report.fill(0);
        report[hot] = 1;
        Ok(())
    }

    fn perturb_data(&self, input: Input<'_>, rng: &mut dyn RngCore) -> Result<ReportData> {
        let set = check_set_input(input, self.m)?;
        Ok(ReportData::Value(
            self.ps.pad_and_sample_u32(set, rng).encoded_index(self.m),
        ))
    }

    fn encode_hot(&self, input: Input<'_>, rng: &mut dyn RngCore) -> Result<usize> {
        let set = check_set_input(input, self.m)?;
        Ok(self.ps.pad_and_sample_u32(set, rng).encoded_index(self.m))
    }

    fn ldp_epsilon(&self) -> f64 {
        // Reports are unperturbed: no finite LDP budget.
        f64::INFINITY
    }

    fn frequency_oracle(&self, n: u64) -> Box<dyn FrequencyOracle> {
        // The identity bit channel (a = 1, b = 0) with scale ℓ: ĉ_i = ℓ·c_i.
        let l = self.ps.padding_length() as f64;
        let est = FrequencyEstimator::new(vec![1.0; self.m], vec![0.0; self.m], n, l)
            .expect("identity channel parameters are ordered");
        Box::new(CalibratingOracle::new(est, self.report_len()).expect("widths match"))
    }

    fn bit_profile(&self) -> Option<BitProfile> {
        let bits = self.report_len();
        Some(BitProfile {
            a: vec![1.0; bits],
            b: vec![0.0; bits],
        })
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

impl BatchMechanism for PsMechanism {
    fn perturb_batch(
        &self,
        batch: InputBatch<'_>,
        rng: &mut dyn RngCore,
        acc: &mut CountAccumulator,
    ) -> Result<()> {
        let InputBatch::Sets(sets) = batch else {
            check_set_input(Input::Item(0), self.m)?;
            unreachable!("item inputs are rejected above");
        };
        if acc.counts().len() != self.report_len() {
            return Err(Error::DimensionMismatch {
                what: "batch accumulator".into(),
                expected: self.report_len(),
                actual: acc.counts().len(),
            });
        }
        for set in sets {
            let hot = self.encode_hot(Input::Set(set), rng)?;
            acc.add_bit(hot);
            acc.add_user();
        }
        Ok(())
    }
}

#[cfg(test)]
mod trait_tests {
    use super::*;
    use idldp_num::rng::SplitMix64;

    #[test]
    fn ps_mechanism_reports_sampled_item_in_clear() {
        let mech = PsMechanism::new(5, 3).unwrap();
        assert_eq!(mech.report_len(), 8);
        let mut rng = SplitMix64::new(21);
        let set = [1u32, 4];
        for _ in 0..50 {
            let report = mech.perturb_report(Input::Set(&set), &mut rng).unwrap();
            assert_eq!(report.iter().map(|&b| b as u64).sum::<u64>(), 1);
            let hot = report.iter().position(|&b| b == 1).unwrap();
            // Hot is a set member or a dummy bucket.
            assert!(hot == 1 || hot == 4 || hot >= 5, "hot {hot}");
        }
    }

    #[test]
    fn ps_oracle_inverts_sampling_rate() {
        let mech = PsMechanism::new(3, 2).unwrap();
        let oracle = mech.frequency_oracle(100);
        // 30 samples of item 0 with ℓ = 2 → estimate 60 holders.
        let est = oracle.estimate(&[30, 10, 5, 40, 15]).unwrap();
        assert_eq!(est.len(), 3);
        assert!((est[0] - 60.0).abs() < 1e-12);
        assert!((est[1] - 20.0).abs() < 1e-12);
    }
}
