//! Unary Encoding mechanisms with per-bit perturbation probabilities.
//!
//! The input `x = i` is one-hot encoded into an `m`-bit vector and every bit
//! `k` is flipped independently:
//! `Pr[y[k]=1 | x[k]=1] = a_k`, `Pr[y[k]=1 | x[k]=0] = b_k`.
//!
//! With *uniform* probabilities this is the classic UE family: symmetric UE
//! (basic RAPPOR, `a = e^{ε/2}/(e^{ε/2}+1)`, `b = 1−a`) and Optimized UE
//! (OUE, `a = 1/2`, `b = 1/(e^ε+1)`), both satisfying
//! `ε = ln( a(1−b) / ((1−a)b) )`-LDP. IDUE (Algorithm 1 of the paper)
//! generalizes this by letting the probabilities differ per bit — that is
//! exactly what [`UnaryEncoding`] stores; [`crate::idue::Idue`] builds it
//! from per-level parameters.

use crate::budget::Epsilon;
use crate::error::{Error, Result};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A unary-encoding mechanism: per-bit Bernoulli parameters `(a_k, b_k)`.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct UnaryEncoding {
    a: Vec<f64>,
    b: Vec<f64>,
}

impl UnaryEncoding {
    /// Validates and wraps per-bit probabilities (`0 < b_k < a_k < 1`).
    pub fn new(a: Vec<f64>, b: Vec<f64>) -> Result<Self> {
        if a.is_empty() {
            return Err(Error::Empty {
                what: "bit probabilities".into(),
            });
        }
        if a.len() != b.len() {
            return Err(Error::DimensionMismatch {
                what: "a/b bit vectors".into(),
                expected: a.len(),
                actual: b.len(),
            });
        }
        for (k, (&ak, &bk)) in a.iter().zip(&b).enumerate() {
            if !(ak > 0.0 && ak < 1.0) {
                return Err(Error::InvalidProbability {
                    name: format!("a[{k}]"),
                    value: ak,
                });
            }
            if !(bk > 0.0 && bk < 1.0) {
                return Err(Error::InvalidProbability {
                    name: format!("b[{k}]"),
                    value: bk,
                });
            }
            if ak <= bk {
                return Err(Error::ParameterOrdering {
                    detail: format!("a[{k}]={ak} must exceed b[{k}]={bk}"),
                });
            }
        }
        Ok(Self { a, b })
    }

    /// Symmetric UE, a.k.a. basic RAPPOR: `a = e^{ε/2}/(e^{ε/2}+1)`,
    /// `b = 1 − a`, replicated over `m` bits. Satisfies ε-LDP.
    pub fn symmetric(eps: Epsilon, m: usize) -> Result<Self> {
        let half = (eps.get() / 2.0).exp();
        let a = half / (half + 1.0);
        Self::new(vec![a; m], vec![1.0 - a; m])
    }

    /// Optimized UE (OUE, Wang et al. 2017): `a = 1/2`, `b = 1/(e^ε+1)`,
    /// replicated over `m` bits. Satisfies ε-LDP with smaller estimator
    /// variance than symmetric UE.
    pub fn optimized(eps: Epsilon, m: usize) -> Result<Self> {
        let b = 1.0 / (eps.exp() + 1.0);
        Self::new(vec![0.5; m], vec![b; m])
    }

    /// Number of bits `m` in the encoding.
    pub fn num_bits(&self) -> usize {
        self.a.len()
    }

    /// Per-bit `a` probabilities.
    pub fn a(&self) -> &[f64] {
        &self.a
    }

    /// Per-bit `b` probabilities.
    pub fn b(&self) -> &[f64] {
        &self.b
    }

    /// Perturbs a one-hot input (Algorithm 1). `hot` is the index of the
    /// input item; every bit is flipped independently with its own
    /// probability.
    ///
    /// # Errors
    /// Returns an error if `hot` is out of range.
    pub fn perturb_one_hot<R: Rng + ?Sized>(&self, hot: usize, rng: &mut R) -> Result<Vec<bool>> {
        if hot >= self.num_bits() {
            return Err(Error::IndexOutOfRange {
                what: "one-hot input".into(),
                index: hot,
                bound: self.num_bits(),
            });
        }
        Ok(self
            .a
            .iter()
            .zip(&self.b)
            .enumerate()
            .map(|(k, (&ak, &bk))| rng.random_bool(if k == hot { ak } else { bk }))
            .collect())
    }

    /// Perturbs an arbitrary bit vector (used by tests and by callers that
    /// pre-encode; Algorithm 1 line 2–8 without the encoding step).
    ///
    /// # Errors
    /// Returns an error if `bits.len()` differs from the encoding length.
    pub fn perturb_bits<R: Rng + ?Sized>(&self, bits: &[bool], rng: &mut R) -> Result<Vec<bool>> {
        if bits.len() != self.num_bits() {
            return Err(Error::DimensionMismatch {
                what: "input bit vector".into(),
                expected: self.num_bits(),
                actual: bits.len(),
            });
        }
        Ok(bits
            .iter()
            .zip(self.a.iter().zip(&self.b))
            .map(|(&bit, (&ak, &bk))| rng.random_bool(if bit { ak } else { bk }))
            .collect())
    }

    /// The Eq. 7 log-ratio bound for the ordered bit pair `(i, j)`:
    /// `ln( a_i(1−b_j) / (b_i(1−a_j)) )` — the exact maximum over outputs of
    /// `ln Pr[y|v_i] − ln Pr[y|v_j]`.
    pub fn pair_log_ratio(&self, i: usize, j: usize) -> f64 {
        ((self.a[i] * (1.0 - self.b[j])) / (self.b[i] * (1.0 - self.a[j]))).ln()
    }

    /// The tightest plain-LDP budget this mechanism satisfies:
    /// `max_{i≠j} ln( a_i(1−b_j) / (b_i(1−a_j)) )` (for `m = 1`, the single
    /// binary-RR pair `ln(a(1−b)/(b(1−a)))`).
    ///
    /// The maximum over ordered pairs factorizes into
    /// `max_i ln(a_i/b_i) + max_j ln((1−b_j)/(1−a_j))` except that `i = j`
    /// is not a valid input pair, so we track the top two of each term.
    pub fn ldp_epsilon(&self) -> f64 {
        let m = self.num_bits();
        if m == 1 {
            return self.pair_log_ratio(0, 0);
        }
        // (best value, index, second-best value) for each factor.
        let mut alpha = (f64::NEG_INFINITY, usize::MAX, f64::NEG_INFINITY);
        let mut inv_beta = (f64::NEG_INFINITY, usize::MAX, f64::NEG_INFINITY);
        for k in 0..m {
            let la = (self.a[k] / self.b[k]).ln();
            if la > alpha.0 {
                alpha = (la, k, alpha.0);
            } else if la > alpha.2 {
                alpha.2 = la;
            }
            let lb = ((1.0 - self.b[k]) / (1.0 - self.a[k])).ln();
            if lb > inv_beta.0 {
                inv_beta = (lb, k, inv_beta.0);
            } else if lb > inv_beta.2 {
                inv_beta.2 = lb;
            }
        }
        if alpha.1 != inv_beta.1 {
            alpha.0 + inv_beta.0
        } else {
            // Both maxima at the same bit: best valid pair uses the runner-up
            // of one of the two factors.
            (alpha.0 + inv_beta.2).max(alpha.2 + inv_beta.0)
        }
    }

    /// [`Self::perturb_one_hot`] writing 0/1 bytes into a caller-provided
    /// buffer — the allocation-free path used by the [`crate::mechanism`]
    /// trait layer. Draws randomness in exactly the same order as
    /// [`Self::perturb_one_hot`].
    ///
    /// # Errors
    /// Returns an error if `hot` is out of range or `out` has the wrong
    /// width.
    pub fn perturb_one_hot_into<R: Rng + ?Sized>(
        &self,
        hot: usize,
        rng: &mut R,
        out: &mut [u8],
    ) -> Result<()> {
        if hot >= self.num_bits() {
            return Err(Error::IndexOutOfRange {
                what: "one-hot input".into(),
                index: hot,
                bound: self.num_bits(),
            });
        }
        crate::mechanism::check_report_width(out, self.num_bits())?;
        for (k, (slot, (&ak, &bk))) in out.iter_mut().zip(self.a.iter().zip(&self.b)).enumerate() {
            *slot = u8::from(rng.random_bool(if k == hot { ak } else { bk }));
        }
        Ok(())
    }

    /// Batched one-hot perturbation straight into a [`CountAccumulator`]:
    /// the report buffer is skipped entirely and the probability slices are
    /// borrowed once for the whole batch. Randomness is drawn bit-by-bit in
    /// the same order as the per-user path, so batch ≡ loop exactly.
    ///
    /// Shared by the [`UnaryEncoding`], [`crate::idue::Idue`] and
    /// [`crate::idue_ps::IduePs`] batch fast paths (the latter passes the
    /// pad-and-sample outcome as `hot`).
    pub(crate) fn accumulate_one_hot<R: Rng + ?Sized>(
        &self,
        hot: usize,
        rng: &mut R,
        acc: &mut crate::mechanism::CountAccumulator,
    ) {
        debug_assert!(hot < self.a.len());
        for (k, (&ak, &bk)) in self.a.iter().zip(&self.b).enumerate() {
            if rng.random_bool(if k == hot { ak } else { bk }) {
                acc.add_bit(k);
            }
        }
        acc.add_user();
    }

    /// Exact probability of an output vector given a one-hot input — used by
    /// the exhaustive audits on small domains.
    ///
    /// # Panics
    /// Panics if the lengths disagree or `hot` is out of range.
    pub fn output_probability(&self, hot: usize, output: &[bool]) -> f64 {
        assert_eq!(output.len(), self.num_bits(), "output length mismatch");
        assert!(hot < self.num_bits(), "hot index out of range");
        output
            .iter()
            .enumerate()
            .map(|(k, &y)| {
                let p1 = if k == hot { self.a[k] } else { self.b[k] };
                if y {
                    p1
                } else {
                    1.0 - p1
                }
            })
            .product()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use idldp_num::rng::SplitMix64;

    fn eps(v: f64) -> Epsilon {
        Epsilon::new(v).unwrap()
    }

    #[test]
    fn constructors_satisfy_their_ldp_budget() {
        for e in [0.5_f64, 1.0, 2.0, 4.0] {
            let sym = UnaryEncoding::symmetric(eps(e), 7).unwrap();
            assert!(
                (sym.ldp_epsilon() - e).abs() < 1e-9,
                "symmetric ε mismatch at {e}"
            );
            let oue = UnaryEncoding::optimized(eps(e), 7).unwrap();
            assert!(
                (oue.ldp_epsilon() - e).abs() < 1e-9,
                "OUE ε mismatch at {e}"
            );
        }
    }

    #[test]
    fn validation_rejects_bad_probabilities() {
        assert!(UnaryEncoding::new(vec![], vec![]).is_err());
        assert!(UnaryEncoding::new(vec![0.5], vec![0.2, 0.3]).is_err());
        assert!(UnaryEncoding::new(vec![1.0], vec![0.2]).is_err());
        assert!(UnaryEncoding::new(vec![0.5], vec![0.5]).is_err());
        assert!(UnaryEncoding::new(vec![0.2], vec![0.5]).is_err());
    }

    #[test]
    fn perturb_one_hot_dimensions_and_bias() {
        let ue = UnaryEncoding::optimized(eps(1.0), 5).unwrap();
        let mut rng = SplitMix64::new(1);
        let y = ue.perturb_one_hot(2, &mut rng).unwrap();
        assert_eq!(y.len(), 5);
        assert!(ue.perturb_one_hot(5, &mut rng).is_err());

        // The hot bit should be 1 with probability a=0.5, cold bits with
        // b = 1/(e+1) ≈ 0.269.
        let trials = 20_000;
        let mut hot_ones = 0u32;
        let mut cold_ones = 0u32;
        for _ in 0..trials {
            let y = ue.perturb_one_hot(2, &mut rng).unwrap();
            hot_ones += y[2] as u32;
            cold_ones += y[0] as u32;
        }
        let hot_rate = hot_ones as f64 / trials as f64;
        let cold_rate = cold_ones as f64 / trials as f64;
        assert!((hot_rate - 0.5).abs() < 0.02, "hot rate {hot_rate}");
        assert!(
            (cold_rate - 1.0 / (1.0_f64.exp() + 1.0)).abs() < 0.02,
            "cold rate {cold_rate}"
        );
    }

    #[test]
    fn perturb_bits_matches_one_hot() {
        let ue = UnaryEncoding::symmetric(eps(2.0), 4).unwrap();
        let mut bits = vec![false; 4];
        bits[1] = true;
        let mut r1 = SplitMix64::new(9);
        let mut r2 = SplitMix64::new(9);
        let y1 = ue.perturb_bits(&bits, &mut r1).unwrap();
        let y2 = ue.perturb_one_hot(1, &mut r2).unwrap();
        assert_eq!(y1, y2);
        assert!(ue.perturb_bits(&[true; 3], &mut r1).is_err());
    }

    #[test]
    fn output_probability_sums_to_one() {
        let ue = UnaryEncoding::new(vec![0.7, 0.6, 0.55], vec![0.2, 0.1, 0.3]).unwrap();
        // Sum over all 2³ outputs must be 1 for each input.
        for hot in 0..3 {
            let mut total = 0.0;
            for mask in 0..8u32 {
                let out: Vec<bool> = (0..3).map(|k| mask >> k & 1 == 1).collect();
                total += ue.output_probability(hot, &out);
            }
            assert!((total - 1.0).abs() < 1e-12, "hot={hot} total={total}");
        }
    }

    #[test]
    fn pair_log_ratio_is_exact_max_over_outputs() {
        // Exhaustively verify Eq. 7's claim that the worst output is
        // y[i]=1, y[j]=0.
        let ue = UnaryEncoding::new(vec![0.7, 0.55, 0.5], vec![0.25, 0.1, 0.2]).unwrap();
        for i in 0..3 {
            for j in 0..3 {
                if i == j {
                    continue;
                }
                let mut worst: f64 = f64::NEG_INFINITY;
                for mask in 0..8u32 {
                    let out: Vec<bool> = (0..3).map(|k| mask >> k & 1 == 1).collect();
                    let r = ue.output_probability(i, &out) / ue.output_probability(j, &out);
                    worst = worst.max(r.ln());
                }
                assert!(
                    (worst - ue.pair_log_ratio(i, j)).abs() < 1e-10,
                    "pair ({i},{j}): exhaustive {worst} vs analytic {}",
                    ue.pair_log_ratio(i, j)
                );
            }
        }
    }

    #[test]
    fn ldp_epsilon_upper_bounds_every_distinct_pair() {
        let ue = UnaryEncoding::new(vec![0.7, 0.55, 0.5], vec![0.25, 0.1, 0.2]).unwrap();
        let e = ue.ldp_epsilon();
        let mut brute = f64::NEG_INFINITY;
        for i in 0..3 {
            for j in 0..3 {
                if i == j {
                    continue;
                }
                assert!(ue.pair_log_ratio(i, j) <= e + 1e-12);
                brute = brute.max(ue.pair_log_ratio(i, j));
            }
        }
        assert!(
            (brute - e).abs() < 1e-12,
            "top-2 trick disagrees with brute force"
        );
    }

    #[test]
    fn ldp_epsilon_same_bit_extremes() {
        // Bit 0 has both the largest α and the largest 1/β; ldp_epsilon must
        // not pair bit 0 with itself.
        let ue = UnaryEncoding::new(vec![0.9, 0.5], vec![0.05, 0.3]).unwrap();
        let e = ue.ldp_epsilon();
        let brute = ue.pair_log_ratio(0, 1).max(ue.pair_log_ratio(1, 0));
        assert!((e - brute).abs() < 1e-12, "e={e} brute={brute}");
        assert!(e < ue.pair_log_ratio(0, 0), "must exclude the i=j pairing");
    }
}

// ---------------------------------------------------------------------------
// Unified trait layer
// ---------------------------------------------------------------------------

use crate::estimator::FrequencyEstimator;
use crate::mechanism::{
    check_item_input, BatchMechanism, BitProfile, CountAccumulator, FrequencyOracle, Input,
    InputBatch, InputKind, Mechanism,
};
use crate::oracle::CalibratingOracle;
use rand::RngCore;

impl Mechanism for UnaryEncoding {
    fn kind(&self) -> &'static str {
        "ue"
    }

    fn domain_size(&self) -> usize {
        self.num_bits()
    }

    fn report_len(&self) -> usize {
        self.num_bits()
    }

    fn input_kind(&self) -> InputKind {
        InputKind::Item
    }

    fn perturb_into(
        &self,
        input: Input<'_>,
        rng: &mut dyn RngCore,
        report: &mut [u8],
    ) -> Result<()> {
        let hot = check_item_input(input, self.num_bits())?;
        self.perturb_one_hot_into(hot, rng, report)
    }

    fn encode_hot(&self, input: Input<'_>, _rng: &mut dyn RngCore) -> Result<usize> {
        check_item_input(input, self.num_bits())
    }

    fn ldp_epsilon(&self) -> f64 {
        UnaryEncoding::ldp_epsilon(self)
    }

    fn frequency_oracle(&self, n: u64) -> Box<dyn FrequencyOracle> {
        let est = FrequencyEstimator::new(self.a.clone(), self.b.clone(), n, 1.0)
            .expect("UE parameters already validated");
        Box::new(CalibratingOracle::new(est, self.num_bits()).expect("widths match"))
    }

    fn bit_profile(&self) -> Option<BitProfile> {
        Some(BitProfile {
            a: self.a.clone(),
            b: self.b.clone(),
        })
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

impl BatchMechanism for UnaryEncoding {
    fn perturb_batch(
        &self,
        batch: InputBatch<'_>,
        rng: &mut dyn RngCore,
        acc: &mut CountAccumulator,
    ) -> Result<()> {
        let InputBatch::Items(items) = batch else {
            check_item_input(Input::Set(&[]), self.num_bits())?;
            unreachable!("set inputs are rejected above");
        };
        if acc.counts().len() != self.num_bits() {
            return Err(Error::DimensionMismatch {
                what: "batch accumulator".into(),
                expected: self.num_bits(),
                actual: acc.counts().len(),
            });
        }
        for &item in items {
            let hot = check_item_input(Input::Item(item as usize), self.num_bits())?;
            self.accumulate_one_hot(hot, rng, acc);
        }
        Ok(())
    }
}

#[cfg(test)]
mod trait_tests {
    use super::*;
    use idldp_num::rng::SplitMix64;

    #[test]
    fn trait_report_matches_inherent_path() {
        let ue = UnaryEncoding::optimized(Epsilon::new(1.0).unwrap(), 6).unwrap();
        let mut r1 = SplitMix64::new(5);
        let mut r2 = SplitMix64::new(5);
        let via_trait = ue.perturb_report(Input::Item(2), &mut r1).unwrap();
        let via_inherent = ue.perturb_one_hot(2, &mut r2).unwrap();
        let as_u8: Vec<u8> = via_inherent.iter().map(|&b| u8::from(b)).collect();
        assert_eq!(via_trait, as_u8);
    }
}
