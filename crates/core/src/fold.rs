//! The batched, word-packed fold engine.
//!
//! Per-report folding pays two per-report costs the batch ingest path does
//! not have to: bit-vector reports are added byte at a time (`m` adds per
//! report), and hashed reports re-evaluate [`hash_bucket`] over the whole
//! item domain (`m` hashes per report). This module provides the three
//! primitives that turn a *batch* of reports into memory-bound word
//! operations; `idldp-stream`'s `accumulate_batch` specializations build on
//! them:
//!
//! * [`pack_bits_row`] — packs a 0/1 byte-per-slot report into `u64` words
//!   (64 slots per word, LSB-first) with a carry-free multiply-gather, so
//!   a row enters the fold as `m/64` words instead of `m` bytes.
//! * [`BitPlanes`] — a SWAR bit-sliced counter: eight `u64` bit-planes per
//!   64-slot lane accumulate packed rows with a carry-save add (no
//!   per-slot loop), and spill into ordinary `u64` counts. The **spill
//!   invariant**: eight planes hold per-slot partial sums up to 255, so at
//!   most 255 rows may be pending between spills — [`BitPlanes::add_row`]
//!   enforces this by spilling automatically.
//! * [`SeedPreimageCache`] — an LRU map from a hashed report's
//!   `(seed, value)` to the packed bitmap of items it supports
//!   (`{v : hash_bucket(seed, v, g) == value}`). A miss costs the one
//!   `O(m)` hash pass that was previously paid per report; a hit replays
//!   the report as an `O(m/64)` word row. The cache is bounded: each entry
//!   is `⌈m/64⌉` words (`≈ m/8` bytes), and the default capacity keeps the
//!   whole cache within ~1 MiB (clamped to `16..=4096` entries), evicting
//!   least-recently-used entries beyond that.
//!
//! All three are pure integer arithmetic, so folds routed through them are
//! **bit-identical** to the scalar per-report fold
//! ([`crate::report::Report::fold_into`]) — the streaming conformance and
//! property suites assert exactly that.

use crate::error::{Error, Result};
use crate::report::hash_bucket;
use std::collections::HashMap;

/// Number of `u64` words needed to pack `slots` bits.
#[inline]
pub fn packed_words(slots: usize) -> usize {
    slots.div_ceil(64)
}

/// Every byte's low bit must be the whole byte: a 0/1 lane mask.
const LANE_MASK: u64 = 0x0101_0101_0101_0101;

/// Multiply-gather constant: collects the LSB of each of 8 little-endian
/// bytes into the top byte of the product. All 64 partial-product bits
/// land on distinct positions (`8j − 7i` collides only at `j − j' = 7t`,
/// `i − i' = 8t`, impossible in `0..8`), so the gather is carry-free.
const GATHER: u64 = 0x0102_0408_1020_4080;

/// Packs a 0/1 byte-per-slot bit report into `u64` words, 64 slots per
/// word, slot `i` at bit `i % 64` of word `i / 64` (LSB-first). Padding
/// bits beyond `bits.len()` are zero. Eight slots are gathered per `u64`
/// load via a carry-free multiply, so packing is `O(m/8)` word work.
///
/// # Errors
/// Returns an error if `words` is not exactly [`packed_words`]`(bits.len())`
/// long or any slot is not 0/1 (`words` may be partially written on
/// failure; callers treat any error as validation failure and discard).
pub fn pack_bits_row(bits: &[u8], words: &mut [u64]) -> Result<()> {
    if words.len() != packed_words(bits.len()) {
        return Err(Error::DimensionMismatch {
            what: "packed row width (words)".into(),
            expected: packed_words(bits.len()),
            actual: words.len(),
        });
    }
    words.fill(0);
    let mut chunks = bits.chunks_exact(8);
    for (i, chunk) in (&mut chunks).enumerate() {
        let x = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        if x & !LANE_MASK != 0 {
            return Err(Error::ParameterOrdering {
                detail: "bit report slots must be 0/1".into(),
            });
        }
        words[i / 8] |= (x.wrapping_mul(GATHER) >> 56) << ((i % 8) * 8);
    }
    let base = bits.len() - chunks.remainder().len();
    for (j, &b) in chunks.remainder().iter().enumerate() {
        if b > 1 {
            return Err(Error::ParameterOrdering {
                detail: "bit report slots must be 0/1".into(),
            });
        }
        let bit = base + j;
        words[bit / 64] |= u64::from(b) << (bit % 64);
    }
    Ok(())
}

/// SWAR bit-sliced counter: eight `u64` bit-planes over `⌈slots/64⌉`-word
/// lanes. Each packed 0/1 row is added with a carry-save ripple across the
/// planes (word-parallel — no per-slot loop), and the per-slot partial
/// sums (each ≤ 255) are spilled into ordinary `u64` counts on demand.
#[derive(Clone, Debug)]
pub struct BitPlanes {
    /// Plane `p` occupies `planes[p * words .. (p + 1) * words]`.
    planes: Vec<u64>,
    words: usize,
    slots: usize,
    pending: u32,
}

impl BitPlanes {
    /// Eight planes hold per-slot sums up to `2^8 − 1`: the spill
    /// invariant caps pending rows at 255 between spills.
    pub const MAX_PENDING_ROWS: u32 = 255;

    /// An empty counter over `slots` slots.
    ///
    /// # Panics
    /// Panics if `slots == 0`.
    pub fn new(slots: usize) -> Self {
        assert!(slots > 0, "bit-plane counter needs at least one slot");
        let words = packed_words(slots);
        Self {
            planes: vec![0; 8 * words],
            words,
            slots,
            pending: 0,
        }
    }

    /// Number of slots counted per row.
    pub fn slots(&self) -> usize {
        self.slots
    }

    /// Rows added since the last spill (always ≤ 255).
    pub fn pending_rows(&self) -> u32 {
        self.pending
    }

    /// Adds one packed 0/1 row (as produced by [`pack_bits_row`] or a
    /// [`SeedPreimageCache`] bitmap). Spills into `counts` first if the
    /// 255-row plane capacity is reached, so the spill invariant holds by
    /// construction.
    ///
    /// # Panics
    /// Panics if `row` is not `⌈slots/64⌉` words or `counts` is not
    /// `slots` long.
    pub fn add_row(&mut self, row: &[u64], counts: &mut [u64]) {
        assert_eq!(row.len(), self.words, "packed row width");
        if self.pending == Self::MAX_PENDING_ROWS {
            self.spill_into(counts);
        }
        for (w, &bits) in row.iter().enumerate() {
            let mut carry = bits;
            let mut p = 0usize;
            while carry != 0 {
                debug_assert!(p < 8, "spill invariant violated: plane overflow");
                let plane = &mut self.planes[p * self.words + w];
                let t = *plane & carry;
                *plane ^= carry;
                carry = t;
                p += 1;
            }
        }
        self.pending += 1;
    }

    /// Adds the pending per-slot sums into `counts` and resets the planes.
    ///
    /// # Panics
    /// Panics if `counts` is not `slots` long.
    pub fn spill_into(&mut self, counts: &mut [u64]) {
        assert_eq!(counts.len(), self.slots, "spill target width");
        if self.pending == 0 {
            return;
        }
        for p in 0..8 {
            let weight = 1u64 << p;
            for w in 0..self.words {
                let mut bits = std::mem::take(&mut self.planes[p * self.words + w]);
                while bits != 0 {
                    let slot = w * 64 + bits.trailing_zeros() as usize;
                    debug_assert!(slot < self.slots, "padding bits must stay zero");
                    counts[slot] += weight;
                    bits &= bits - 1;
                }
            }
        }
        self.pending = 0;
    }
}

const NIL: usize = usize::MAX;

#[derive(Clone, Debug)]
struct CacheEntry {
    key: (u64, usize),
    bitmap: Vec<u64>,
    prev: usize,
    next: usize,
}

/// Bounded LRU cache from a hashed report's `(seed, value)` to the packed
/// preimage bitmap `{v in 0..slots : hash_bucket(seed, v, range) == value}`.
///
/// The hot-seed fast path of the batched hashed fold: a miss pays the one
/// `O(slots)` hash pass, a hit replays the report as `⌈slots/64⌉` word ORs
/// into a [`BitPlanes`] row. Memory is bounded at
/// `capacity × ⌈slots/64⌉ × 8` bytes (plus map overhead); the default
/// capacity keeps that under ~1 MiB, clamped to `16..=4096` entries.
#[derive(Clone, Debug)]
pub struct SeedPreimageCache {
    slots: usize,
    range: usize,
    capacity: usize,
    map: HashMap<(u64, usize), usize>,
    entries: Vec<CacheEntry>,
    head: usize,
    tail: usize,
    hits: u64,
    misses: u64,
}

impl SeedPreimageCache {
    /// A cache for hashed reports over `slots` items with hash range
    /// `range`, using the default ~1 MiB capacity bound.
    ///
    /// # Panics
    /// Panics if `slots == 0` or `range == 0`.
    pub fn new(slots: usize, range: usize) -> Self {
        let entry_bytes = packed_words(slots) * 8;
        let capacity = ((1usize << 20) / entry_bytes.max(1)).clamp(16, 4096);
        Self::with_capacity(slots, range, capacity)
    }

    /// A cache with an explicit entry capacity.
    ///
    /// # Panics
    /// Panics if `slots == 0`, `range == 0`, or `capacity == 0`.
    pub fn with_capacity(slots: usize, range: usize, capacity: usize) -> Self {
        assert!(slots > 0, "preimage cache needs at least one slot");
        assert!(range > 0, "hash range must be positive");
        assert!(capacity > 0, "cache capacity must be positive");
        Self {
            slots,
            range,
            capacity,
            map: HashMap::with_capacity(capacity.min(4096)),
            entries: Vec::new(),
            head: NIL,
            tail: NIL,
            hits: 0,
            misses: 0,
        }
    }

    /// Entries currently cached.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Maximum entries before LRU eviction.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Lookups served from the cache so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookups that had to build the bitmap so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// The packed preimage bitmap of `(seed, value)`: bit `v` is set iff
    /// `hash_bucket(seed, v, range) == value`. Builds and caches the
    /// bitmap on a miss (evicting the least-recently-used entry at
    /// capacity), and marks the entry most-recently-used either way.
    /// Padding bits beyond `slots` are always zero.
    pub fn preimage(&mut self, seed: u64, value: usize) -> &[u64] {
        if let Some(&idx) = self.map.get(&(seed, value)) {
            self.hits += 1;
            self.move_to_front(idx);
            return &self.entries[idx].bitmap;
        }
        self.misses += 1;
        let idx = if self.entries.len() == self.capacity {
            // Evict the LRU entry, reusing its slab slot and allocation.
            let idx = self.tail;
            self.unlink(idx);
            let old_key = self.entries[idx].key;
            self.map.remove(&old_key);
            self.entries[idx].key = (seed, value);
            idx
        } else {
            self.entries.push(CacheEntry {
                key: (seed, value),
                bitmap: Vec::new(),
                prev: NIL,
                next: NIL,
            });
            self.entries.len() - 1
        };
        let (slots, range) = (self.slots, self.range);
        let bitmap = &mut self.entries[idx].bitmap;
        bitmap.clear();
        bitmap.resize(packed_words(slots), 0);
        for v in 0..slots {
            if hash_bucket(seed, v, range) == value {
                bitmap[v / 64] |= 1u64 << (v % 64);
            }
        }
        self.map.insert((seed, value), idx);
        self.push_front(idx);
        &self.entries[idx].bitmap
    }

    fn unlink(&mut self, idx: usize) {
        let (p, n) = (self.entries[idx].prev, self.entries[idx].next);
        if p == NIL {
            self.head = n;
        } else {
            self.entries[p].next = n;
        }
        if n == NIL {
            self.tail = p;
        } else {
            self.entries[n].prev = p;
        }
        self.entries[idx].prev = NIL;
        self.entries[idx].next = NIL;
    }

    fn push_front(&mut self, idx: usize) {
        self.entries[idx].prev = NIL;
        self.entries[idx].next = self.head;
        if self.head == NIL {
            self.tail = idx;
        } else {
            self.entries[self.head].prev = idx;
        }
        self.head = idx;
    }

    fn move_to_front(&mut self, idx: usize) {
        if self.head != idx {
            self.unlink(idx);
            self.push_front(idx);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic 0/1 stream (no external RNG in unit tests).
    fn bit(i: usize, salt: u64) -> u8 {
        (hash_bucket(salt, i, 2)) as u8
    }

    #[test]
    fn pack_matches_naive_for_awkward_widths() {
        for slots in [1usize, 7, 8, 9, 63, 64, 65, 100, 128, 130] {
            let bits: Vec<u8> = (0..slots).map(|i| bit(i, 42)).collect();
            let mut words = vec![u64::MAX; packed_words(slots)];
            pack_bits_row(&bits, &mut words).unwrap();
            for (i, &b) in bits.iter().enumerate() {
                let got = (words[i / 64] >> (i % 64)) & 1;
                assert_eq!(got, u64::from(b), "slots={slots} bit {i}");
            }
            // Padding bits beyond `slots` are zero.
            let used = slots % 64;
            if used != 0 {
                assert_eq!(words[slots / 64] >> used, 0, "slots={slots} padding");
            }
        }
    }

    #[test]
    fn pack_rejects_non_binary_and_wrong_width() {
        for bad_at in [0usize, 5, 8, 63, 64, 66] {
            let mut bits = vec![0u8; 67];
            bits[bad_at] = 2;
            let mut words = vec![0u64; packed_words(67)];
            assert!(pack_bits_row(&bits, &mut words).is_err(), "slot {bad_at}");
        }
        let mut words = vec![0u64; 1];
        assert!(pack_bits_row(&[0u8; 65], &mut words).is_err());
    }

    #[test]
    fn bit_planes_match_scalar_sums_across_spills() {
        // 700 rows > 2 × 255 forces automatic spills mid-stream.
        let slots = 130;
        let mut planes = BitPlanes::new(slots);
        assert_eq!(planes.slots(), slots);
        let mut counts = vec![0u64; slots];
        let mut want = vec![0u64; slots];
        let mut row = vec![0u64; packed_words(slots)];
        for r in 0..700usize {
            let bits: Vec<u8> = (0..slots).map(|i| bit(i + r * slots, 7)).collect();
            for (w, &b) in want.iter_mut().zip(&bits) {
                *w += u64::from(b);
            }
            pack_bits_row(&bits, &mut row).unwrap();
            planes.add_row(&row, &mut counts);
            assert!(planes.pending_rows() <= BitPlanes::MAX_PENDING_ROWS);
        }
        planes.spill_into(&mut counts);
        assert_eq!(counts, want);
        assert_eq!(planes.pending_rows(), 0);
        // A second spill is a no-op.
        planes.spill_into(&mut counts);
        assert_eq!(counts, want);
    }

    #[test]
    fn preimage_cache_agrees_with_direct_hashing() {
        let (slots, range) = (100usize, 7usize);
        let mut cache = SeedPreimageCache::new(slots, range);
        for (seed, value) in [(3u64, 0usize), (99, 6), (3, 0), (u64::MAX, 3)] {
            let bitmap = cache.preimage(seed, value).to_vec();
            for v in 0..slots {
                let want = hash_bucket(seed, v, range) == value;
                let got = (bitmap[v / 64] >> (v % 64)) & 1 == 1;
                assert_eq!(got, want, "seed={seed} value={value} item {v}");
            }
            let padding = slots % 64;
            assert_eq!(bitmap[slots / 64] >> padding, 0, "padding stays zero");
        }
        assert_eq!(cache.misses(), 3, "repeated key hits");
        assert_eq!(cache.hits(), 1);
    }

    #[test]
    fn cache_evicts_least_recently_used() {
        let mut cache = SeedPreimageCache::with_capacity(32, 4, 2);
        cache.preimage(1, 0);
        cache.preimage(2, 0);
        cache.preimage(1, 0); // touch 1: now 2 is LRU
        cache.preimage(3, 0); // evicts 2
        assert_eq!(cache.len(), 2);
        assert_eq!((cache.hits(), cache.misses()), (1, 3));
        cache.preimage(1, 0); // still cached
        assert_eq!(cache.hits(), 2);
        cache.preimage(2, 0); // was evicted: a miss again
        assert_eq!(cache.misses(), 4);
        assert_eq!(cache.len(), 2, "capacity bound holds");
        assert_eq!(cache.capacity(), 2);
    }

    #[test]
    fn default_capacity_is_memory_bounded() {
        // Tiny domains clamp up to 16; huge domains clamp down so the
        // cache stays within ~1 MiB of bitmap payload.
        let small = SeedPreimageCache::new(8, 2);
        assert_eq!(small.capacity(), 4096);
        let big = SeedPreimageCache::new(1 << 22, 2);
        assert!(big.capacity() >= 16);
        assert!(big.capacity() * packed_words(1 << 22) * 8 <= (1 << 20) * 16);
        assert!(small.is_empty());
    }
}
