//! Generic perturbation-matrix mechanisms.
//!
//! Section V-A of the paper discusses the "direct" design: a row-stochastic
//! matrix `P ∈ R^{|D|×|D|}` with `P[x][y] = Pr(M(x) = y)`. It is impractical
//! as an *optimization target* for large domains (|D|² variables, |D|³
//! constraints), but as a *mechanism representation* it is the common
//! denominator: GRR is a matrix mechanism, and any mechanism over a small
//! domain can be audited exactly through its matrix. This module provides
//! that representation plus exact notion auditing.

use crate::budget::Epsilon;
use crate::error::{Error, Result};
use crate::notion::Notion;
use rand::Rng;

/// A mechanism given by an explicit row-stochastic perturbation matrix.
#[derive(Clone, Debug, PartialEq)]
pub struct PerturbationMatrix {
    /// `probs[x][y] = Pr(M(x) = y)`; every row sums to 1.
    probs: Vec<Vec<f64>>,
    outputs: usize,
}

impl PerturbationMatrix {
    /// Validates and wraps a probability matrix (rows = inputs).
    pub fn new(probs: Vec<Vec<f64>>) -> Result<Self> {
        if probs.is_empty() {
            return Err(Error::Empty {
                what: "perturbation matrix".into(),
            });
        }
        let outputs = probs[0].len();
        if outputs == 0 {
            return Err(Error::Empty {
                what: "output domain".into(),
            });
        }
        for (x, row) in probs.iter().enumerate() {
            if row.len() != outputs {
                return Err(Error::DimensionMismatch {
                    what: format!("row {x}"),
                    expected: outputs,
                    actual: row.len(),
                });
            }
            let mut total = 0.0;
            for (y, &p) in row.iter().enumerate() {
                if !(0.0..=1.0).contains(&p) || !p.is_finite() {
                    return Err(Error::InvalidProbability {
                        name: format!("P[{x}][{y}]"),
                        value: p,
                    });
                }
                total += p;
            }
            if (total - 1.0).abs() > 1e-9 {
                return Err(Error::InvalidProbability {
                    name: format!("row {x} sum"),
                    value: total,
                });
            }
        }
        Ok(Self { probs, outputs })
    }

    /// The GRR mechanism as an explicit matrix.
    pub fn grr(eps: Epsilon, m: usize) -> Result<Self> {
        if m < 2 {
            return Err(Error::Empty {
                what: "GRR domain (needs at least two categories)".into(),
            });
        }
        let e = eps.exp();
        let denom = e + m as f64 - 1.0;
        let p = e / denom;
        let q = 1.0 / denom;
        let probs = (0..m)
            .map(|x| (0..m).map(|y| if x == y { p } else { q }).collect())
            .collect();
        Self::new(probs)
    }

    /// Number of inputs.
    pub fn num_inputs(&self) -> usize {
        self.probs.len()
    }

    /// Number of outputs.
    pub fn num_outputs(&self) -> usize {
        self.outputs
    }

    /// `Pr(M(x) = y)`.
    pub fn prob(&self, x: usize, y: usize) -> f64 {
        self.probs[x][y]
    }

    /// Samples an output for input `x` by inverse-CDF.
    ///
    /// # Errors
    /// Returns an error if `x` is out of range.
    pub fn perturb<R: Rng + ?Sized>(&self, x: usize, rng: &mut R) -> Result<usize> {
        let row = self.probs.get(x).ok_or(Error::IndexOutOfRange {
            what: "matrix input".into(),
            index: x,
            bound: self.num_inputs(),
        })?;
        let u: f64 = rng.random();
        let mut acc = 0.0;
        for (y, &p) in row.iter().enumerate() {
            acc += p;
            if u < acc {
                return Ok(y);
            }
        }
        Ok(self.outputs - 1) // numerical remainder goes to the last output
    }

    /// The exact worst log-ratio `max_y ln(P[x][y]/P[x'][y])` for an ordered
    /// input pair. Returns `+inf` when some output has `P[x][y] > 0` but
    /// `P[x'][y] = 0`.
    pub fn pair_log_ratio(&self, x: usize, x_prime: usize) -> f64 {
        self.probs[x]
            .iter()
            .zip(&self.probs[x_prime])
            .filter(|(&px, _)| px > 0.0)
            .map(|(&px, &pxp)| {
                if pxp == 0.0 {
                    f64::INFINITY
                } else {
                    (px / pxp).ln()
                }
            })
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Exhaustively audits the mechanism against a notion with tolerance
    /// `tol`; returns the first violation found.
    pub fn audit(&self, notion: &Notion, tol: f64) -> Result<()> {
        let m = self.num_inputs();
        if let Some(d) = notion.domain_size() {
            if d != m {
                return Err(Error::DimensionMismatch {
                    what: "notion domain vs matrix".into(),
                    expected: d,
                    actual: m,
                });
            }
        }
        for x in 0..m {
            for x_prime in 0..m {
                if x == x_prime {
                    continue;
                }
                let observed = self.pair_log_ratio(x, x_prime);
                let allowed = notion.pair_budget(x, x_prime)?;
                if observed > allowed + tol {
                    return Err(Error::PrivacyViolation {
                        observed,
                        allowed,
                        pair: (x, x_prime),
                    });
                }
            }
        }
        Ok(())
    }

    /// The tightest plain-LDP ε this matrix satisfies (max pair log-ratio).
    pub fn ldp_epsilon(&self) -> f64 {
        let m = self.num_inputs();
        let mut worst = f64::NEG_INFINITY;
        for x in 0..m {
            for x_prime in 0..m {
                if x != x_prime {
                    worst = worst.max(self.pair_log_ratio(x, x_prime));
                }
            }
        }
        worst
    }
}

// ---------------------------------------------------------------------------
// Unified trait layer
// ---------------------------------------------------------------------------

use crate::mechanism::{
    check_item_input, check_report_width, BatchMechanism, CountAccumulator, FrequencyOracle, Input,
    InputBatch, InputKind, Mechanism,
};
use crate::oracle::MatrixOracle;
use crate::report::{ReportData, ReportShape};
use rand::RngCore;

impl Mechanism for PerturbationMatrix {
    fn kind(&self) -> &'static str {
        "matrix"
    }

    fn domain_size(&self) -> usize {
        self.num_inputs()
    }

    fn report_len(&self) -> usize {
        self.num_outputs()
    }

    fn input_kind(&self) -> InputKind {
        InputKind::Item
    }

    fn report_shape(&self) -> ReportShape {
        ReportShape::Value
    }

    fn perturb_into(
        &self,
        input: Input<'_>,
        rng: &mut dyn RngCore,
        report: &mut [u8],
    ) -> Result<()> {
        let x = check_item_input(input, self.num_inputs())?;
        check_report_width(report, self.num_outputs())?;
        let y = self.perturb(x, rng)?;
        report.fill(0);
        report[y] = 1;
        Ok(())
    }

    fn perturb_data(&self, input: Input<'_>, rng: &mut dyn RngCore) -> Result<ReportData> {
        let x = check_item_input(input, self.num_inputs())?;
        Ok(ReportData::Value(self.perturb(x, rng)?))
    }

    fn encode_hot(&self, input: Input<'_>, _rng: &mut dyn RngCore) -> Result<usize> {
        check_item_input(input, self.num_inputs())
    }

    fn ldp_epsilon(&self) -> f64 {
        PerturbationMatrix::ldp_epsilon(self)
    }

    /// # Panics
    /// Panics if the matrix is non-square or singular — such a mechanism's
    /// counts cannot be calibrated back to frequencies. Use
    /// [`crate::oracle::MatrixOracle::new`] directly for a fallible path.
    fn frequency_oracle(&self, _n: u64) -> Box<dyn FrequencyOracle> {
        Box::new(
            MatrixOracle::new(self)
                .expect("matrix mechanism must be square and invertible for calibration"),
        )
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

impl BatchMechanism for PerturbationMatrix {
    /// Fast path: one categorical increment per user (no `O(m)` report
    /// buffer), drawing the same inverse-CDF uniform as
    /// [`PerturbationMatrix::perturb`].
    fn perturb_batch(
        &self,
        batch: InputBatch<'_>,
        rng: &mut dyn RngCore,
        acc: &mut CountAccumulator,
    ) -> Result<()> {
        let InputBatch::Items(items) = batch else {
            check_item_input(Input::Set(&[]), self.num_inputs())?;
            unreachable!("set inputs are rejected above");
        };
        if acc.counts().len() != self.num_outputs() {
            return Err(Error::DimensionMismatch {
                what: "batch accumulator".into(),
                expected: self.num_outputs(),
                actual: acc.counts().len(),
            });
        }
        for &item in items {
            let y = self.perturb(item as usize, rng)?;
            acc.add_bit(y);
            acc.add_user();
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::budget::BudgetSet;
    use idldp_num::rng::SplitMix64;

    fn eps(v: f64) -> Epsilon {
        Epsilon::new(v).unwrap()
    }

    #[test]
    fn validation() {
        assert!(PerturbationMatrix::new(vec![]).is_err());
        assert!(PerturbationMatrix::new(vec![vec![]]).is_err());
        assert!(PerturbationMatrix::new(vec![vec![0.5, 0.4]]).is_err()); // row sum
        assert!(PerturbationMatrix::new(vec![vec![0.5, 0.5], vec![1.0]]).is_err());
        assert!(PerturbationMatrix::new(vec![vec![1.1, -0.1]]).is_err());
        assert!(PerturbationMatrix::new(vec![vec![0.5, 0.5], vec![0.2, 0.8]]).is_ok());
    }

    #[test]
    fn grr_matrix_satisfies_its_epsilon_exactly() {
        let m = PerturbationMatrix::grr(eps(1.5), 6).unwrap();
        assert!((m.ldp_epsilon() - 1.5).abs() < 1e-12);
        assert!(m.audit(&Notion::Ldp(eps(1.5)), 1e-9).is_ok());
        assert!(m.audit(&Notion::Ldp(eps(1.4)), 1e-9).is_err());
    }

    #[test]
    fn audit_against_minid() {
        // A two-input mechanism where input 0 is better protected.
        let m = PerturbationMatrix::new(vec![vec![0.6, 0.4], vec![0.3, 0.7]]).unwrap();
        // Worst ratios: ln(0.6/0.3)=ln2 and ln(0.7/0.4)=0.56.
        let budgets = BudgetSet::from_values(&[2.0_f64.ln(), 2.0]).unwrap();
        assert!(m.audit(&Notion::min_id_ldp(budgets), 1e-9).is_ok());
        let tight = BudgetSet::from_values(&[0.5, 2.0]).unwrap();
        assert!(m.audit(&Notion::min_id_ldp(tight), 1e-9).is_err());
    }

    #[test]
    fn infinite_ratio_on_zero_support() {
        let m = PerturbationMatrix::new(vec![vec![1.0, 0.0], vec![0.0, 1.0]]).unwrap();
        assert!(m.pair_log_ratio(0, 1).is_infinite());
        assert!(m.audit(&Notion::Ldp(eps(100.0)), 1e-9).is_err());
    }

    #[test]
    fn perturb_follows_matrix_distribution() {
        let m = PerturbationMatrix::new(vec![vec![0.7, 0.2, 0.1], vec![0.1, 0.1, 0.8]]).unwrap();
        let mut rng = SplitMix64::new(42);
        let trials = 60_000;
        let mut hist = [0u32; 3];
        for _ in 0..trials {
            hist[m.perturb(0, &mut rng).unwrap()] += 1;
        }
        for (y, &want) in [0.7, 0.2, 0.1].iter().enumerate() {
            let got = hist[y] as f64 / trials as f64;
            assert!((got - want).abs() < 0.01, "y={y} got={got} want={want}");
        }
        assert!(m.perturb(2, &mut rng).is_err());
    }

    #[test]
    fn matrix_and_grr_module_agree() {
        let gm = PerturbationMatrix::grr(eps(1.0), 5).unwrap();
        let g = crate::grr::GeneralizedRandomizedResponse::new(eps(1.0), 5).unwrap();
        assert!((gm.prob(2, 2) - g.p()).abs() < 1e-12);
        assert!((gm.prob(2, 3) - g.q()).abs() < 1e-12);
    }
}
