//! [`FrequencyOracle`] implementations.
//!
//! * [`CalibratingOracle`] — the Eq. 8 linear calibration backed by
//!   [`FrequencyEstimator`], shared by every mechanism with a per-bucket
//!   Bernoulli structure (GRR, UE, IDUE, PS, IDUE-PS). PS-extended
//!   mechanisms report over `m + ℓ` buckets but estimate only the `m` real
//!   items; the oracle slices the dummy buckets off internally.
//! * [`MatrixOracle`] — exact linear inversion for an arbitrary
//!   [`PerturbationMatrix`] mechanism: solves `Pᵀ ĉ = c` by LU
//!   factorization, with the exact per-user multinomial variance for the
//!   MSE prediction.

use crate::error::{Error, Result};
use crate::estimator::FrequencyEstimator;
use crate::matrix_mech::PerturbationMatrix;
use crate::mechanism::FrequencyOracle;
use idldp_num::lu::Lu;
use idldp_num::matrix::Matrix;

/// Linear calibration oracle (Eq. 8 / Eq. 9) over the first
/// `domain_size` report buckets.
#[derive(Clone, Debug)]
pub struct CalibratingOracle {
    estimator: FrequencyEstimator,
    report_len: usize,
}

impl CalibratingOracle {
    /// Wraps an estimator whose bit width equals the mechanism's item
    /// domain; `report_len >= estimator.num_bits()` extra buckets (PS
    /// dummies) are accepted and ignored.
    ///
    /// # Errors
    /// Returns an error if `report_len` is smaller than the estimator width.
    pub fn new(estimator: FrequencyEstimator, report_len: usize) -> Result<Self> {
        if report_len < estimator.num_bits() {
            return Err(Error::DimensionMismatch {
                what: "oracle report width".into(),
                expected: estimator.num_bits(),
                actual: report_len,
            });
        }
        Ok(Self {
            estimator,
            report_len,
        })
    }

    /// The backing estimator.
    pub fn estimator(&self) -> &FrequencyEstimator {
        &self.estimator
    }
}

impl FrequencyOracle for CalibratingOracle {
    fn report_len(&self) -> usize {
        self.report_len
    }

    fn domain_size(&self) -> usize {
        self.estimator.num_bits()
    }

    fn estimate(&self, counts: &[u64]) -> Result<Vec<f64>> {
        if counts.len() != self.report_len {
            return Err(Error::DimensionMismatch {
                what: "oracle count vector".into(),
                expected: self.report_len,
                actual: counts.len(),
            });
        }
        self.estimator
            .estimate(&counts[..self.estimator.num_bits()])
    }

    fn theoretical_total_mse(&self, expected_hot: &[f64]) -> Result<f64> {
        self.estimator.theoretical_total_mse(expected_hot)
    }
}

/// Exact inversion oracle for a [`PerturbationMatrix`] mechanism.
///
/// The report histogram satisfies `E[c] = Pᵀ c*`, so `ĉ = (Pᵀ)⁻¹ c` is the
/// unbiased estimator; the MSE prediction propagates the exact per-user
/// multinomial covariance through the inverse.
pub struct MatrixOracle {
    /// LU factorization of `Pᵀ`.
    lu: Lu,
    /// `(Pᵀ)⁻¹`, kept for the variance computation.
    inverse_t: Matrix,
    /// Row-stochastic `P[x][y]`.
    probs: Vec<Vec<f64>>,
}

impl MatrixOracle {
    /// Builds the oracle; fails when the matrix is not square or not
    /// invertible (a mechanism whose outputs do not identify inputs cannot
    /// be calibrated).
    ///
    /// # Errors
    /// Returns an error for non-square or singular matrices.
    pub fn new(mechanism: &PerturbationMatrix) -> Result<Self> {
        let m = mechanism.num_inputs();
        if mechanism.num_outputs() != m {
            return Err(Error::DimensionMismatch {
                what: "matrix oracle (needs square matrix)".into(),
                expected: m,
                actual: mechanism.num_outputs(),
            });
        }
        let mut pt = Matrix::zeros(m, m);
        let mut probs = vec![vec![0.0; m]; m];
        for x in 0..m {
            for y in 0..m {
                pt[(y, x)] = mechanism.prob(x, y);
                probs[x][y] = mechanism.prob(x, y);
            }
        }
        let lu = Lu::factor(&pt).map_err(|_| Error::ParameterOrdering {
            detail: "perturbation matrix is singular; counts cannot be calibrated".into(),
        })?;
        let inverse_t = lu.inverse();
        Ok(Self {
            lu,
            inverse_t,
            probs,
        })
    }
}

impl FrequencyOracle for MatrixOracle {
    fn report_len(&self) -> usize {
        self.probs.len()
    }

    fn domain_size(&self) -> usize {
        self.probs.len()
    }

    fn estimate(&self, counts: &[u64]) -> Result<Vec<f64>> {
        if counts.len() != self.report_len() {
            return Err(Error::DimensionMismatch {
                what: "oracle count vector".into(),
                expected: self.report_len(),
                actual: counts.len(),
            });
        }
        let c: Vec<f64> = counts.iter().map(|&v| v as f64).collect();
        Ok(self.lu.solve(&c))
    }

    fn theoretical_total_mse(&self, expected_hot: &[f64]) -> Result<f64> {
        let m = self.domain_size();
        if expected_hot.len() != m {
            return Err(Error::DimensionMismatch {
                what: "expected hot counts".into(),
                expected: m,
                actual: expected_hot.len(),
            });
        }
        // A user with input x contributes a one-hot categorical report with
        // probabilities P[x][·]. For estimate row i (B = (Pᵀ)⁻¹):
        //   Var_i(x) = Σ_y B[i][y]² P[x][y] − (Σ_y B[i][y] P[x][y])².
        // Users are independent, so total MSE = Σ_x hot_x Σ_i Var_i(x).
        let mut total = 0.0;
        for (x, &hot) in expected_hot.iter().enumerate() {
            if hot == 0.0 {
                continue;
            }
            let mut per_user = 0.0;
            for i in 0..m {
                let row = self.inverse_t.row(i);
                let mut second = 0.0;
                let mut first = 0.0;
                for (y, &p) in self.probs[x].iter().enumerate() {
                    second += row[y] * row[y] * p;
                    first += row[y] * p;
                }
                per_user += second - first * first;
            }
            total += hot * per_user;
        }
        Ok(total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::budget::Epsilon;
    use crate::grr::GeneralizedRandomizedResponse;

    fn eps(v: f64) -> Epsilon {
        Epsilon::new(v).unwrap()
    }

    #[test]
    fn calibrating_oracle_slices_dummy_buckets() {
        let est = FrequencyEstimator::new(vec![0.5; 2], vec![0.2; 2], 100, 3.0).unwrap();
        let oracle = CalibratingOracle::new(est, 4).unwrap();
        assert_eq!(oracle.report_len(), 4);
        assert_eq!(oracle.domain_size(), 2);
        // Dummy-bucket counts (positions 2, 3) must not affect estimates.
        let e1 = oracle.estimate(&[40, 30, 999, 999]).unwrap();
        let e2 = oracle.estimate(&[40, 30, 0, 0]).unwrap();
        assert_eq!(e1, e2);
        assert!(oracle.estimate(&[40, 30]).is_err());
        assert!(CalibratingOracle::new(
            FrequencyEstimator::new(vec![0.5], vec![0.2], 10, 1.0).unwrap(),
            0
        )
        .is_err());
    }

    #[test]
    fn matrix_oracle_matches_grr_estimator() {
        // For the GRR matrix, (Pᵀ)⁻¹ calibration must agree with the
        // closed-form GRR estimator.
        let m = 5;
        let e = eps(1.2);
        let grr = GeneralizedRandomizedResponse::new(e, m).unwrap();
        let mat = PerturbationMatrix::grr(e, m).unwrap();
        let oracle = MatrixOracle::new(&mat).unwrap();
        let n = 1000u64;
        let counts = [300u64, 250, 200, 150, 100];
        let via_matrix = oracle.estimate(&counts).unwrap();
        let via_grr = grr.estimate(&counts, n).unwrap();
        for (a, b) in via_matrix.iter().zip(&via_grr) {
            assert!((a - b).abs() < 1e-8, "{a} vs {b}");
        }
    }

    #[test]
    fn matrix_oracle_mse_matches_grr_closed_form() {
        let m = 4;
        let e = eps(1.0);
        let grr = GeneralizedRandomizedResponse::new(e, m).unwrap();
        let mat = PerturbationMatrix::grr(e, m).unwrap();
        let oracle = MatrixOracle::new(&mat).unwrap();
        let n = 2000.0;
        let hot = [800.0, 600.0, 400.0, 200.0];
        let via_matrix = oracle.theoretical_total_mse(&hot).unwrap();
        let via_grr: f64 = hot.iter().map(|&h| grr.theoretical_mse(h, n as u64)).sum();
        // The GRR closed form uses the marginal-binomial decomposition; the
        // matrix oracle uses the exact multinomial covariance. They agree on
        // the total because the calibration matrix rows sum compatibly.
        assert!(
            (via_matrix - via_grr).abs() / via_grr < 0.05,
            "{via_matrix} vs {via_grr}"
        );
    }

    #[test]
    fn matrix_oracle_rejects_singular() {
        let uniform = PerturbationMatrix::new(vec![vec![0.5, 0.5], vec![0.5, 0.5]]).unwrap();
        assert!(MatrixOracle::new(&uniform).is_err());
    }
}
