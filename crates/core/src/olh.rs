//! Optimal Local Hashing (OLH, Wang et al., USENIX Security'17).
//!
//! The classical LDP baseline for *large* domains: each client draws a
//! fresh hash seed, maps its item into a small range `g` with the shared
//! [`crate::report::hash_bucket`] hash, and perturbs the hashed value with
//! GRR over `g` categories. The wire report is the `(seed, value)` pair —
//! `8 + ⌈log g⌉` bits instead of `m` — which is exactly the shape the
//! bit-vector-only pipeline of PR 1/2 could not express and the reason
//! the report layer is shape-polymorphic
//! ([`crate::report::ReportShape::Hashed`]).
//!
//! Server side, a `(seed, value)` report *supports* every item `v` with
//! `hash_bucket(seed, v, g) == value`; folding reports into per-item
//! support counts gives the per-bucket Bernoulli structure
//!
//! ```text
//! Pr[support v | v true]  = p = e^ε / (e^ε + g − 1)
//! Pr[support v | v other] = 1/g
//! ```
//!
//! so the standard Eq. 8 calibration applies with `(a, b) = (p, 1/g)`.
//! The *optimal* hash range `g = e^ε + 1` minimizes the resulting
//! variance — the choice [`OptimalLocalHashing::new`] makes.

use crate::budget::Epsilon;
use crate::error::{Error, Result};
use crate::report::hash_bucket;
use rand::{Rng, RngCore};
use serde::{Deserialize, Serialize};

/// The OLH mechanism over an item domain of size `m`.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct OptimalLocalHashing {
    m: usize,
    g: usize,
    p: f64,
    q: f64,
}

impl OptimalLocalHashing {
    /// Creates OLH at the optimal hash range `g = round(e^ε) + 1`.
    ///
    /// # Errors
    /// Returns an error if `m < 2`.
    pub fn new(eps: Epsilon, m: usize) -> Result<Self> {
        let g = (eps.exp().round() as usize).saturating_add(1).max(2);
        Self::with_hash_range(eps, m, g)
    }

    /// Creates OLH with an explicit hash range `g >= 2` (BLH is `g = 2`).
    ///
    /// # Errors
    /// Returns an error if `m < 2` or `g < 2`.
    pub fn with_hash_range(eps: Epsilon, m: usize, g: usize) -> Result<Self> {
        if m < 2 {
            return Err(Error::Empty {
                what: "OLH domain (needs at least two items)".into(),
            });
        }
        if g < 2 {
            return Err(Error::Empty {
                what: "OLH hash range (needs at least two buckets)".into(),
            });
        }
        let e = eps.exp();
        // `Epsilon` validates finite ε, but e^ε can still overflow to
        // infinity (ε ≳ 709), which would make p = inf/inf = NaN and panic
        // deep inside perturbation; reject it here instead.
        if !e.is_finite() {
            return Err(Error::InvalidEpsilon { value: eps.get() });
        }
        let denom = e + g as f64 - 1.0;
        Ok(Self {
            m,
            g,
            p: e / denom,
            q: 1.0 / denom,
        })
    }

    /// The hash range `g` client hashes map into.
    pub fn hash_range(&self) -> usize {
        self.g
    }

    /// Probability of reporting the true hashed value.
    pub fn p(&self) -> f64 {
        self.p
    }

    /// Probability of reporting any particular other hashed value.
    pub fn q(&self) -> f64 {
        self.q
    }

    /// Runs the client protocol: draw a fresh hash seed, encode, perturb
    /// with GRR over the hash range. Returns the `(seed, value)` wire pair.
    ///
    /// # Errors
    /// Returns an error if `input >= m`.
    pub fn perturb<R: Rng + ?Sized>(&self, input: usize, rng: &mut R) -> Result<(u64, usize)> {
        if input >= self.m {
            return Err(Error::IndexOutOfRange {
                what: "OLH input".into(),
                index: input,
                bound: self.m,
            });
        }
        let seed = rng.next_u64();
        let encoded = hash_bucket(seed, input, self.g);
        // GRR over the g hash buckets, drawing exactly like
        // `GeneralizedRandomizedResponse::perturb`.
        let value = if rng.random_bool(self.p) {
            encoded
        } else {
            let mut v = rng.random_range(0..self.g - 1);
            if v >= encoded {
                v += 1;
            }
            v
        };
        Ok((seed, value))
    }

    /// The items a `(seed, value)` report supports — the server-side fold
    /// of one report, as 0/1 over the item domain.
    pub fn fold_support_into(&self, seed: u64, value: usize, report: &mut [u8]) {
        for (v, slot) in report.iter_mut().enumerate() {
            *slot = u8::from(hash_bucket(seed, v, self.g) == value);
        }
    }
}

// ---------------------------------------------------------------------------
// Unified trait layer
// ---------------------------------------------------------------------------

use crate::estimator::FrequencyEstimator;
use crate::mechanism::{
    check_item_input, check_report_width, BatchMechanism, BitProfile, CountAccumulator,
    FrequencyOracle, Input, InputBatch, InputKind, Mechanism,
};
use crate::oracle::CalibratingOracle;
use crate::report::{ReportData, ReportShape};

impl Mechanism for OptimalLocalHashing {
    fn kind(&self) -> &'static str {
        "olh"
    }

    fn domain_size(&self) -> usize {
        self.m
    }

    /// The *folded* width: OLH counts live over the item domain itself.
    fn report_len(&self) -> usize {
        self.m
    }

    fn input_kind(&self) -> InputKind {
        InputKind::Item
    }

    fn report_shape(&self) -> ReportShape {
        ReportShape::Hashed { range: self.g }
    }

    /// Writes the folded support vector of the `(seed, value)` report —
    /// the server-side view. Draws randomness identically to
    /// [`Self::perturb_data`], which emits the compact wire pair.
    fn perturb_into(
        &self,
        input: Input<'_>,
        rng: &mut dyn RngCore,
        report: &mut [u8],
    ) -> Result<()> {
        let item = check_item_input(input, self.m)?;
        check_report_width(report, self.m)?;
        let (seed, value) = self.perturb(item, rng)?;
        self.fold_support_into(seed, value, report);
        Ok(())
    }

    fn perturb_data(&self, input: Input<'_>, rng: &mut dyn RngCore) -> Result<ReportData> {
        let item = check_item_input(input, self.m)?;
        let (seed, value) = self.perturb(item, rng)?;
        Ok(ReportData::Hashed { seed, value })
    }

    fn encode_hot(&self, input: Input<'_>, _rng: &mut dyn RngCore) -> Result<usize> {
        check_item_input(input, self.m)
    }

    fn ldp_epsilon(&self) -> f64 {
        // Hashing is input-independent preprocessing; the GRR stage over g
        // buckets carries the whole budget.
        (self.p / self.q).ln()
    }

    fn frequency_oracle(&self, n: u64) -> Box<dyn FrequencyOracle> {
        // Support counts are Bernoulli(p) for holders and Bernoulli(1/g)
        // for everyone else — Eq. 8 with (a, b) = (p, 1/g).
        let b = 1.0 / self.g as f64;
        let est = FrequencyEstimator::new(vec![self.p; self.m], vec![b; self.m], n, 1.0)
            .expect("p > 1/g for every positive budget");
        Box::new(CalibratingOracle::new(est, self.m).expect("widths match"))
    }

    fn bit_profile(&self) -> Option<BitProfile> {
        // Marginally exact per bucket (support bits are correlated through
        // the shared hash, as GRR's one-hot bits are through the single
        // reported value) — sufficient for the aggregate simulation path.
        Some(BitProfile {
            a: vec![self.p; self.m],
            b: vec![1.0 / self.g as f64; self.m],
        })
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

impl BatchMechanism for OptimalLocalHashing {
    /// Fast path: folds each `(seed, value)` pair straight into the
    /// accumulator, skipping the intermediate report buffer. Randomness is
    /// drawn by the same [`OptimalLocalHashing::perturb`] the per-user loop
    /// uses, so batch ≡ loop bit for bit.
    fn perturb_batch(
        &self,
        batch: InputBatch<'_>,
        rng: &mut dyn RngCore,
        acc: &mut CountAccumulator,
    ) -> Result<()> {
        let InputBatch::Items(items) = batch else {
            check_item_input(Input::Set(&[]), self.m)?;
            unreachable!("set inputs are rejected above");
        };
        if acc.counts().len() != self.m {
            return Err(Error::DimensionMismatch {
                what: "batch accumulator".into(),
                expected: self.m,
                actual: acc.counts().len(),
            });
        }
        for &item in items {
            let (seed, value) = self.perturb(item as usize, rng)?;
            acc.fold_report(crate::report::Report::Hashed { seed, value }, self.g)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use idldp_num::rng::SplitMix64;

    fn eps(v: f64) -> Epsilon {
        Epsilon::new(v).unwrap()
    }

    #[test]
    fn optimal_range_tracks_budget() {
        // g = round(e^ε) + 1: ε = ln 3 → 4; small ε → binary-ish hashing.
        let olh = OptimalLocalHashing::new(eps(3.0_f64.ln()), 100).unwrap();
        assert_eq!(olh.hash_range(), 4);
        let tight = OptimalLocalHashing::new(eps(0.1), 100).unwrap();
        assert_eq!(tight.hash_range(), 2);
        // At the optimum p = e^ε/(e^ε + g − 1) with g = e^ε + 1 → p ≈ 1/2.
        let e = 3.0_f64.ln();
        let p = e.exp() / (e.exp() + 3.0);
        assert!((olh.p() - p).abs() < 1e-12);
        assert!((Mechanism::ldp_epsilon(&olh) - e).abs() < 1e-12);
    }

    #[test]
    fn rejects_degenerate_parameters() {
        assert!(OptimalLocalHashing::new(eps(1.0), 1).is_err());
        assert!(OptimalLocalHashing::with_hash_range(eps(1.0), 10, 1).is_err());
        assert!(OptimalLocalHashing::with_hash_range(eps(1.0), 10, 2).is_ok());
        // ε is finite but e^ε overflows: must error, not produce NaN
        // probabilities that panic at perturb time.
        assert!(OptimalLocalHashing::new(eps(710.0), 10).is_err());
        assert!(OptimalLocalHashing::with_hash_range(eps(710.0), 10, 4).is_err());
    }

    #[test]
    fn perturb_keeps_hashed_value_at_rate_p() {
        let olh = OptimalLocalHashing::with_hash_range(eps(1.5), 30, 5).unwrap();
        let mut rng = SplitMix64::new(7);
        assert!(olh.perturb(30, &mut rng).is_err());
        let trials = 40_000;
        let mut kept = 0u32;
        for _ in 0..trials {
            let (seed, value) = olh.perturb(11, &mut rng).unwrap();
            assert!(value < 5);
            kept += u32::from(hash_bucket(seed, 11, 5) == value);
        }
        let rate = f64::from(kept) / f64::from(trials);
        assert!(
            (rate - olh.p()).abs() < 0.01,
            "rate {rate} vs p {}",
            olh.p()
        );
    }

    #[test]
    fn off_item_support_rate_is_one_over_g() {
        let g = 4;
        let olh = OptimalLocalHashing::with_hash_range(eps(2.0), 20, g).unwrap();
        let mut rng = SplitMix64::new(8);
        let trials = 40_000u32;
        let mut supported = 0u32;
        for _ in 0..trials {
            let (seed, value) = olh.perturb(3, &mut rng).unwrap();
            // Item 15 ≠ 3: supported with probability 1/g.
            supported += u32::from(hash_bucket(seed, 15, g) == value);
        }
        let rate = f64::from(supported) / f64::from(trials);
        assert!(
            (rate - 1.0 / g as f64).abs() < 0.01,
            "off-item support rate {rate}"
        );
    }

    #[test]
    fn trait_report_is_fold_of_wire_pair() {
        let olh = OptimalLocalHashing::new(eps(1.0), 12).unwrap();
        let mut r1 = SplitMix64::new(31);
        let mut r2 = SplitMix64::new(31);
        let report = olh.perturb_report(Input::Item(4), &mut r1).unwrap();
        let data = olh.perturb_data(Input::Item(4), &mut r2).unwrap();
        let ReportData::Hashed { seed, value } = data else {
            panic!("OLH must emit hashed reports, got {data:?}");
        };
        let mut folded = vec![0u8; 12];
        olh.fold_support_into(seed, value, &mut folded);
        assert_eq!(report, folded, "perturb_into ≡ fold(perturb_data)");
        assert_eq!(
            olh.report_shape(),
            ReportShape::Hashed {
                range: olh.hash_range()
            }
        );
    }

    #[test]
    fn estimates_are_unbiased() {
        let m = 10;
        let olh = OptimalLocalHashing::new(eps(2.0), m).unwrap();
        let n = 4000usize;
        let items: Vec<u32> = (0..n).map(|i| if i % 5 == 0 { 2 } else { 7 }).collect();
        let trials = 30u64;
        let oracle = olh.frequency_oracle(n as u64);
        let mut mean = vec![0.0; m];
        for t in 0..trials {
            let mut rng = SplitMix64::new(100 + t);
            let mut acc = CountAccumulator::new(m);
            olh.perturb_batch(InputBatch::Items(&items), &mut rng, &mut acc)
                .unwrap();
            for (s, e) in mean.iter_mut().zip(oracle.estimate(acc.counts()).unwrap()) {
                *s += e / trials as f64;
            }
        }
        assert!(
            (mean[2] - n as f64 / 5.0).abs() < 0.05 * n as f64,
            "{mean:?}"
        );
        assert!(
            (mean[7] - 4.0 * n as f64 / 5.0).abs() < 0.05 * n as f64,
            "{mean:?}"
        );
        assert!(mean[0].abs() < 0.05 * n as f64, "{mean:?}");
    }

    #[test]
    fn olh_beats_grr_on_large_domains() {
        // The point of hashing: at large m, OLH's variance is independent
        // of m while GRR's grows linearly.
        let n = 10_000u64;
        let e = eps(1.0);
        let m = 1024;
        let olh = OptimalLocalHashing::new(e, m).unwrap();
        let grr = crate::grr::GeneralizedRandomizedResponse::new(e, m).unwrap();
        let zeros = vec![0.0; m];
        let olh_mse = olh
            .frequency_oracle(n)
            .theoretical_total_mse(&zeros)
            .unwrap();
        let grr_mse = Mechanism::frequency_oracle(&grr, n)
            .theoretical_total_mse(&zeros)
            .unwrap();
        assert!(
            olh_mse * 10.0 < grr_mse,
            "OLH {olh_mse} should beat GRR {grr_mse} at m = {m}"
        );
    }
}
