//! Generalized Randomized Response (GRR / direct encoding).
//!
//! Keeps the true value with probability `p = e^ε/(e^ε + m − 1)` and reports
//! any other value uniformly with probability `q = 1/(e^ε + m − 1)`
//! (Section III-C of the paper). Included as the classical small-domain
//! baseline and as the binary randomized-response special case `m = 2`.

use crate::budget::Epsilon;
use crate::error::{Error, Result};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// GRR mechanism over a domain of `m` categories.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct GeneralizedRandomizedResponse {
    m: usize,
    p: f64,
    q: f64,
}

impl GeneralizedRandomizedResponse {
    /// Creates a GRR mechanism satisfying ε-LDP over `m >= 2` categories.
    pub fn new(eps: Epsilon, m: usize) -> Result<Self> {
        if m < 2 {
            return Err(Error::Empty {
                what: "GRR domain (needs at least two categories)".into(),
            });
        }
        let e = eps.exp();
        let denom = e + m as f64 - 1.0;
        Ok(Self {
            m,
            p: e / denom,
            q: 1.0 / denom,
        })
    }

    /// Domain size.
    pub fn domain_size(&self) -> usize {
        self.m
    }

    /// Probability of reporting the true value.
    pub fn p(&self) -> f64 {
        self.p
    }

    /// Probability of reporting any particular other value.
    pub fn q(&self) -> f64 {
        self.q
    }

    /// The LDP budget this mechanism satisfies: `ln(p/q)`.
    pub fn ldp_epsilon(&self) -> f64 {
        (self.p / self.q).ln()
    }

    /// Perturbs one input category.
    ///
    /// # Errors
    /// Returns an error if `input >= m`.
    pub fn perturb<R: Rng + ?Sized>(&self, input: usize, rng: &mut R) -> Result<usize> {
        if input >= self.m {
            return Err(Error::IndexOutOfRange {
                what: "GRR input".into(),
                index: input,
                bound: self.m,
            });
        }
        if rng.random_bool(self.p) {
            Ok(input)
        } else {
            // Uniform over the other m−1 values.
            let mut v = rng.random_range(0..self.m - 1);
            if v >= input {
                v += 1;
            }
            Ok(v)
        }
    }

    /// Unbiased frequency estimates from a histogram of reports:
    /// `ĉ_i = (c_i − n q) / (p − q)`.
    ///
    /// # Errors
    /// Returns an error if the histogram length differs from `m`.
    pub fn estimate(&self, report_histogram: &[u64], n: u64) -> Result<Vec<f64>> {
        if report_histogram.len() != self.m {
            return Err(Error::DimensionMismatch {
                what: "GRR report histogram".into(),
                expected: self.m,
                actual: report_histogram.len(),
            });
        }
        let nf = n as f64;
        Ok(report_histogram
            .iter()
            .map(|&c| (c as f64 - nf * self.q) / (self.p - self.q))
            .collect())
    }

    /// Theoretical per-item estimator variance given the true count
    /// (`Var[ĉ_i] = n q(1−q)/(p−q)² + c*_i(1−p−q)/(p−q)`).
    pub fn theoretical_mse(&self, true_count: f64, n: u64) -> f64 {
        let nf = n as f64;
        nf * self.q * (1.0 - self.q) / (self.p - self.q).powi(2)
            + true_count * (1.0 - self.p - self.q) / (self.p - self.q)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use idldp_num::rng::SplitMix64;

    fn eps(v: f64) -> Epsilon {
        Epsilon::new(v).unwrap()
    }

    #[test]
    fn parameters_match_formulas() {
        let g = GeneralizedRandomizedResponse::new(eps(1.0), 10).unwrap();
        let e = 1.0_f64.exp();
        assert!((g.p() - e / (e + 9.0)).abs() < 1e-12);
        assert!((g.q() - 1.0 / (e + 9.0)).abs() < 1e-12);
        assert!((g.ldp_epsilon() - 1.0).abs() < 1e-12);
        assert_eq!(g.domain_size(), 10);
    }

    #[test]
    fn binary_case_is_warner_rr() {
        // m=2 reduces to Warner's randomized response with p = e^ε/(e^ε+1).
        let g = GeneralizedRandomizedResponse::new(eps(2.0), 2).unwrap();
        let e = 2.0_f64.exp();
        assert!((g.p() - e / (e + 1.0)).abs() < 1e-12);
    }

    #[test]
    fn rejects_tiny_domain() {
        assert!(GeneralizedRandomizedResponse::new(eps(1.0), 1).is_err());
        assert!(GeneralizedRandomizedResponse::new(eps(1.0), 0).is_err());
    }

    #[test]
    fn perturb_range_and_truth_rate() {
        let g = GeneralizedRandomizedResponse::new(eps(2.0), 5).unwrap();
        let mut rng = SplitMix64::new(3);
        assert!(g.perturb(7, &mut rng).is_err());
        let trials = 50_000;
        let mut kept = 0u32;
        let mut hist = [0u32; 5];
        for _ in 0..trials {
            let y = g.perturb(2, &mut rng).unwrap();
            assert!(y < 5);
            hist[y] += 1;
            kept += (y == 2) as u32;
        }
        let rate = kept as f64 / trials as f64;
        assert!((rate - g.p()).abs() < 0.01, "rate {rate} vs p {}", g.p());
        // Non-true outputs should be uniform: each ≈ q.
        for (i, &h) in hist.iter().enumerate() {
            if i == 2 {
                continue;
            }
            let r = h as f64 / trials as f64;
            assert!((r - g.q()).abs() < 0.01, "output {i} rate {r}");
        }
    }

    #[test]
    fn estimate_inverts_expectation() {
        let g = GeneralizedRandomizedResponse::new(eps(1.5), 4).unwrap();
        let n = 10_000u64;
        let truth = [4000.0, 3000.0, 2000.0, 1000.0];
        // Expected report histogram.
        let hist: Vec<u64> = (0..4)
            .map(|i| {
                let others: f64 = truth.iter().sum::<f64>() - truth[i];
                (truth[i] * g.p() + others * g.q()).round() as u64
            })
            .collect();
        let est = g.estimate(&hist, n).unwrap();
        for (e, t) in est.iter().zip(&truth) {
            assert!((e - t).abs() < 2.0, "est {e} truth {t}");
        }
        assert!(g.estimate(&[1, 2], n).is_err());
    }

    #[test]
    fn variance_grows_with_domain() {
        // GRR deteriorates with m (the paper's motivation for UE at large m).
        let n = 1000u64;
        let small = GeneralizedRandomizedResponse::new(eps(1.0), 4).unwrap();
        let large = GeneralizedRandomizedResponse::new(eps(1.0), 1024).unwrap();
        assert!(large.theoretical_mse(0.0, n) > 100.0 * small.theoretical_mse(0.0, n));
    }
}

// ---------------------------------------------------------------------------
// Unified trait layer
// ---------------------------------------------------------------------------

use crate::estimator::FrequencyEstimator;
use crate::mechanism::{
    check_item_input, check_report_width, BatchMechanism, BitProfile, CountAccumulator,
    FrequencyOracle, Input, InputBatch, InputKind, Mechanism,
};
use crate::oracle::CalibratingOracle;
use crate::report::{ReportData, ReportShape};
use rand::RngCore;

impl Mechanism for GeneralizedRandomizedResponse {
    fn kind(&self) -> &'static str {
        "grr"
    }

    fn domain_size(&self) -> usize {
        self.m
    }

    fn report_len(&self) -> usize {
        self.m
    }

    fn input_kind(&self) -> InputKind {
        InputKind::Item
    }

    fn report_shape(&self) -> ReportShape {
        ReportShape::Value
    }

    fn perturb_into(
        &self,
        input: Input<'_>,
        rng: &mut dyn RngCore,
        report: &mut [u8],
    ) -> Result<()> {
        let item = check_item_input(input, self.m)?;
        check_report_width(report, self.m)?;
        let y = self.perturb(item, rng)?;
        report.fill(0);
        report[y] = 1;
        Ok(())
    }

    fn perturb_data(&self, input: Input<'_>, rng: &mut dyn RngCore) -> Result<ReportData> {
        let item = check_item_input(input, self.m)?;
        Ok(ReportData::Value(self.perturb(item, rng)?))
    }

    fn encode_hot(&self, input: Input<'_>, _rng: &mut dyn RngCore) -> Result<usize> {
        check_item_input(input, self.m)
    }

    fn ldp_epsilon(&self) -> f64 {
        GeneralizedRandomizedResponse::ldp_epsilon(self)
    }

    fn frequency_oracle(&self, n: u64) -> Box<dyn FrequencyOracle> {
        // GRR's closed-form calibration `(c_i − n q)/(p − q)` is exactly the
        // Eq. 8 estimator with uniform per-bucket probabilities (p, q).
        let est = FrequencyEstimator::new(vec![self.p; self.m], vec![self.q; self.m], n, 1.0)
            .expect("GRR parameters already validated");
        Box::new(CalibratingOracle::new(est, self.m).expect("widths match"))
    }

    fn bit_profile(&self) -> Option<BitProfile> {
        // Marginally exact: bucket y collects Bernoulli(p) from holders of y
        // and Bernoulli(q) from everyone else.
        Some(BitProfile {
            a: vec![self.p; self.m],
            b: vec![self.q; self.m],
        })
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

impl BatchMechanism for GeneralizedRandomizedResponse {
    /// Fast path: no report buffer at all — each user contributes a single
    /// categorical increment (`O(1)` instead of the default loop's `O(m)`
    /// buffer write-and-sum), drawing randomness exactly like
    /// [`GeneralizedRandomizedResponse::perturb`].
    fn perturb_batch(
        &self,
        batch: InputBatch<'_>,
        rng: &mut dyn RngCore,
        acc: &mut CountAccumulator,
    ) -> Result<()> {
        let InputBatch::Items(items) = batch else {
            check_item_input(Input::Set(&[]), self.m)?;
            unreachable!("set inputs are rejected above");
        };
        if acc.counts().len() != self.m {
            return Err(Error::DimensionMismatch {
                what: "batch accumulator".into(),
                expected: self.m,
                actual: acc.counts().len(),
            });
        }
        for &item in items {
            let y = self.perturb(item as usize, rng)?;
            acc.add_bit(y);
            acc.add_user();
        }
        Ok(())
    }
}

#[cfg(test)]
mod trait_tests {
    use super::*;
    use idldp_num::rng::SplitMix64;

    #[test]
    fn trait_report_is_one_hot_of_inherent_output() {
        let g = GeneralizedRandomizedResponse::new(Epsilon::new(2.0).unwrap(), 7).unwrap();
        let mut r1 = SplitMix64::new(11);
        let mut r2 = SplitMix64::new(11);
        let report = g.perturb_report(Input::Item(3), &mut r1).unwrap();
        let y = g.perturb(3, &mut r2).unwrap();
        assert_eq!(report.iter().map(|&b| b as u64).sum::<u64>(), 1);
        assert_eq!(report[y], 1);
    }
}
