//! Unbiased frequency estimation and its closed-form MSE.
//!
//! The server sums the reported bit vectors into per-bit counts `c_i` and
//! calibrates them with the paper's Eq. 8:
//!
//! ```text
//! ĉ_i = scale · (c_i − n·b_i) / (a_i − b_i)
//! ```
//!
//! where `scale = 1` for single-item mechanisms and `scale = ℓ` for
//! Padding-and-Sampling (each user reports a 1/ℓ sample of her set). The
//! estimator is unbiased (Theorem 3) and its MSE equals its variance
//! (Eq. 9):
//!
//! ```text
//! MSE_i = scale² · [ n·b_i(1−b_i)/(a_i−b_i)² + c*_i(1−a_i−b_i)/(a_i−b_i) ]
//! ```
//!
//! (For `scale = ℓ`, `c*_i` in the variance formula is the expected count of
//! *samples* equal to `i`, i.e. the true count divided by ℓ when every user
//! holds at least one sampled slot — see `idue_ps` for the details.)

use crate::error::{Error, Result};
use serde::{Deserialize, Serialize};

/// Calibrating estimator for per-bit counts.
///
/// # Examples
/// ```
/// use idldp_core::estimator::FrequencyEstimator;
/// // One bit with a = 0.5, b = 0.2 over n = 1000 users.
/// let est = FrequencyEstimator::new(vec![0.5], vec![0.2], 1000, 1.0).unwrap();
/// // If 400 users held the item, the expected count is 400·0.5 + 600·0.2 = 320,
/// // and calibration inverts it back.
/// let estimate = est.estimate(&[320]).unwrap();
/// assert!((estimate[0] - 400.0).abs() < 1e-9);
/// ```
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct FrequencyEstimator {
    a: Vec<f64>,
    b: Vec<f64>,
    n: u64,
    scale: f64,
}

impl FrequencyEstimator {
    /// Creates an estimator for `n` users and per-bit probabilities.
    ///
    /// `scale` multiplies the calibrated counts (use `ℓ` for PS-based
    /// mechanisms, `1.0` otherwise).
    pub fn new(a: Vec<f64>, b: Vec<f64>, n: u64, scale: f64) -> Result<Self> {
        if a.len() != b.len() {
            return Err(Error::DimensionMismatch {
                what: "estimator a/b".into(),
                expected: a.len(),
                actual: b.len(),
            });
        }
        if a.is_empty() {
            return Err(Error::Empty {
                what: "estimator parameters".into(),
            });
        }
        for (k, (&ak, &bk)) in a.iter().zip(&b).enumerate() {
            if ak <= bk {
                return Err(Error::ParameterOrdering {
                    detail: format!("estimator requires a[{k}] > b[{k}]"),
                });
            }
        }
        if !(scale.is_finite() && scale > 0.0) {
            return Err(Error::InvalidProbability {
                name: "scale".into(),
                value: scale,
            });
        }
        Ok(Self { a, b, n, scale })
    }

    /// Number of bits this estimator calibrates.
    pub fn num_bits(&self) -> usize {
        self.a.len()
    }

    /// Number of users `n`.
    pub fn num_users(&self) -> u64 {
        self.n
    }

    /// Calibrates raw per-bit counts into unbiased frequency estimates
    /// (Eq. 8, times `scale`).
    ///
    /// # Errors
    /// Returns an error if `counts.len()` differs from the number of bits.
    pub fn estimate(&self, counts: &[u64]) -> Result<Vec<f64>> {
        if counts.len() != self.num_bits() {
            return Err(Error::DimensionMismatch {
                what: "count vector".into(),
                expected: self.num_bits(),
                actual: counts.len(),
            });
        }
        let n = self.n as f64;
        Ok(counts
            .iter()
            .zip(self.a.iter().zip(&self.b))
            .map(|(&c, (&a, &b))| self.scale * (c as f64 - n * b) / (a - b))
            .collect())
    }

    /// Theoretical MSE (= variance, by unbiasedness) of the estimator for
    /// bit `i` given the *expected hot count* `hot_i` — the expected number
    /// of users whose encoded vector has bit `i` set (Eq. 9, times
    /// `scale²`).
    pub fn theoretical_mse_bit(&self, i: usize, hot_i: f64) -> f64 {
        let (a, b) = (self.a[i], self.b[i]);
        let n = self.n as f64;
        let base = n * b * (1.0 - b) / ((a - b) * (a - b)) + hot_i * (1.0 - a - b) / (a - b);
        self.scale * self.scale * base
    }

    /// Total theoretical MSE over a set of bits given their expected hot
    /// counts.
    ///
    /// # Errors
    /// Returns an error if `hot_counts.len()` differs from the bit count.
    pub fn theoretical_total_mse(&self, hot_counts: &[f64]) -> Result<f64> {
        if hot_counts.len() != self.num_bits() {
            return Err(Error::DimensionMismatch {
                what: "hot-count vector".into(),
                expected: self.num_bits(),
                actual: hot_counts.len(),
            });
        }
        Ok(hot_counts
            .iter()
            .enumerate()
            .map(|(i, &h)| self.theoretical_mse_bit(i, h))
            .sum())
    }

    /// The data-independent worst case of the paper's Eq. 10 objective:
    /// `Σ_i n·b_i(1−b_i)/(a_i−b_i)² + n·max_i (1−a_i−b_i)/(a_i−b_i)`,
    /// times `scale²`. Upper-bounds [`Self::theoretical_total_mse`] for any
    /// distribution of true counts summing to at most `n`.
    pub fn worst_case_total_mse(&self) -> f64 {
        let n = self.n as f64;
        let sum: f64 = self
            .a
            .iter()
            .zip(&self.b)
            .map(|(&a, &b)| n * b * (1.0 - b) / ((a - b) * (a - b)))
            .sum();
        let worst_linear = self
            .a
            .iter()
            .zip(&self.b)
            .map(|(&a, &b)| (1.0 - a - b) / (a - b))
            .fold(f64::NEG_INFINITY, f64::max)
            .max(0.0);
        self.scale * self.scale * (sum + n * worst_linear)
    }

    /// Per-bit `a` probabilities.
    pub fn a(&self) -> &[f64] {
        &self.a
    }

    /// Per-bit `b` probabilities.
    pub fn b(&self) -> &[f64] {
        &self.b
    }

    /// The calibration scale (ℓ for PS mechanisms).
    pub fn scale(&self) -> f64 {
        self.scale
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn est(a: f64, b: f64, n: u64) -> FrequencyEstimator {
        FrequencyEstimator::new(vec![a; 3], vec![b; 3], n, 1.0).unwrap()
    }

    #[test]
    fn validation() {
        assert!(FrequencyEstimator::new(vec![0.5], vec![0.2], 10, 1.0).is_ok());
        assert!(FrequencyEstimator::new(vec![0.2], vec![0.5], 10, 1.0).is_err());
        assert!(FrequencyEstimator::new(vec![], vec![], 10, 1.0).is_err());
        assert!(FrequencyEstimator::new(vec![0.5], vec![0.2], 10, 0.0).is_err());
        assert!(FrequencyEstimator::new(vec![0.5], vec![0.2, 0.1], 10, 1.0).is_err());
    }

    #[test]
    fn calibration_inverts_expectation() {
        // If c = E[c] = c*·a + (n−c*)·b exactly, the estimate equals c*.
        let e = est(0.5, 0.2, 1000);
        let c_star = 300.0;
        let expected_count = c_star * 0.5 + (1000.0 - c_star) * 0.2;
        let est = e.estimate(&[expected_count as u64; 3]).unwrap();
        for v in est {
            assert!((v - c_star).abs() < 2.0); // rounding of count to u64
        }
    }

    #[test]
    fn scale_multiplies() {
        let e1 = FrequencyEstimator::new(vec![0.5], vec![0.2], 100, 1.0).unwrap();
        let e3 = FrequencyEstimator::new(vec![0.5], vec![0.2], 100, 3.0).unwrap();
        let v1 = e1.estimate(&[40]).unwrap()[0];
        let v3 = e3.estimate(&[40]).unwrap()[0];
        assert!((v3 - 3.0 * v1).abs() < 1e-12);
        assert!(
            (e3.theoretical_mse_bit(0, 10.0) - 9.0 * e1.theoretical_mse_bit(0, 10.0)).abs() < 1e-9
        );
    }

    #[test]
    fn eq9_matches_oue_published_variance() {
        // For OUE the approximate variance is 4e^ε/(e^ε−1)² per bit
        // (Wang et al. 2017). Eq. 9 with a=1/2, b=1/(e^ε+1), c*=0:
        let epsv: f64 = 1.0;
        let b = 1.0 / (epsv.exp() + 1.0);
        let n = 10_000u64;
        let e = FrequencyEstimator::new(vec![0.5], vec![b], n, 1.0).unwrap();
        let got = e.theoretical_mse_bit(0, 0.0);
        let want = n as f64 * 4.0 * epsv.exp() / (epsv.exp() - 1.0).powi(2);
        assert!((got - want).abs() / want < 1e-9, "got {got} want {want}");
    }

    #[test]
    fn worst_case_dominates_any_distribution() {
        let e = FrequencyEstimator::new(vec![0.5, 0.6], vec![0.2, 0.1], 1000, 1.0).unwrap();
        let worst = e.worst_case_total_mse();
        for hot in [[0.0, 0.0], [1000.0, 0.0], [500.0, 500.0], [0.0, 1000.0]] {
            let total = e.theoretical_total_mse(&hot).unwrap();
            assert!(
                total <= worst + 1e-9,
                "hot={hot:?} total={total} worst={worst}"
            );
        }
    }

    #[test]
    fn worst_case_clamps_negative_linear_term() {
        // If 1−a−b < 0 for every bit, the worst case is all-zero counts.
        let e = FrequencyEstimator::new(vec![0.9], vec![0.3], 100, 1.0).unwrap();
        let worst = e.worst_case_total_mse();
        let at_zero = e.theoretical_total_mse(&[0.0]).unwrap();
        assert!((worst - at_zero).abs() < 1e-9);
    }

    #[test]
    fn estimate_dimension_check() {
        let e = est(0.5, 0.2, 10);
        assert!(e.estimate(&[1, 2]).is_err());
        assert!(e.theoretical_total_mse(&[0.0]).is_err());
    }
}
