//! Privacy auditing: analytic and exhaustive verification.
//!
//! Three layers, from cheap to exhaustive:
//!
//! 1. [`audit_unary_encoding`] — analytic Eq. 7 check of a per-bit mechanism
//!    against a notion (the exact worst case for one-hot inputs).
//! 2. [`ue_worst_ratio_exhaustive`] — brute-force over all `2^m` outputs,
//!    used by tests to validate the analytic bound.
//! 3. [`idue_ps_output_probability`] / [`audit_idue_ps_exhaustive`] — the
//!    full mixture distribution of IDUE-PS (Eq. 20 in the Lemma 2 proof) and
//!    a brute-force Theorem 4 check over all outputs and pairs of item-sets,
//!    feasible for small `m + ℓ`.

use crate::error::{Error, Result};
use crate::idue_ps::IduePs;
use crate::notion::Notion;
use crate::ue::UnaryEncoding;

/// Analytic audit of a [`UnaryEncoding`] mechanism (one-hot inputs) against
/// a notion: checks `ln(a_i(1−b_j)/(b_i(1−a_j))) <= budget(i, j)` for every
/// ordered pair of distinct inputs, with tolerance `tol`.
pub fn audit_unary_encoding(ue: &UnaryEncoding, notion: &Notion, tol: f64) -> Result<()> {
    let m = ue.num_bits();
    if let Some(d) = notion.domain_size() {
        if d != m {
            return Err(Error::DimensionMismatch {
                what: "notion domain vs encoding bits".into(),
                expected: d,
                actual: m,
            });
        }
    }
    for i in 0..m {
        for j in 0..m {
            if i == j {
                continue;
            }
            let observed = ue.pair_log_ratio(i, j);
            let allowed = notion.pair_budget(i, j)?;
            if observed > allowed + tol {
                return Err(Error::PrivacyViolation {
                    observed,
                    allowed,
                    pair: (i, j),
                });
            }
        }
    }
    Ok(())
}

/// Brute-force worst log-ratio `max_y ln(Pr(y|v_i)/Pr(y|v_j))` over all
/// `2^m` outputs of a unary-encoding mechanism.
///
/// # Panics
/// Panics if `m > 20` (the enumeration would be prohibitive) or indices are
/// out of range.
pub fn ue_worst_ratio_exhaustive(ue: &UnaryEncoding, i: usize, j: usize) -> f64 {
    let m = ue.num_bits();
    assert!(m <= 20, "exhaustive audit limited to m <= 20 bits");
    assert!(i < m && j < m, "input index out of range");
    let mut worst = f64::NEG_INFINITY;
    let mut out = vec![false; m];
    for mask in 0..(1u32 << m) {
        for (k, o) in out.iter_mut().enumerate() {
            *o = mask >> k & 1 == 1;
        }
        let pi = ue.output_probability(i, &out);
        let pj = ue.output_probability(j, &out);
        worst = worst.max((pi / pj).ln());
    }
    worst
}

/// Exact output distribution of IDUE-PS for an item-set input: the mixture
/// over the pad-and-sample stage (Eq. 20 of the paper's Appendix A),
///
/// `Pr(y|x) = η_x Σ_{i∈x} Pr(y|v_i)/|x| + (1−η_x) Σ_{⊥_j} Pr(y|v_{m+j})/ℓ`.
///
/// # Panics
/// Panics if `output.len() != m + ℓ` or the set contains an out-of-domain
/// item.
pub fn idue_ps_output_probability(mech: &IduePs, itemset: &[usize], output: &[bool]) -> f64 {
    let m = mech.domain_size();
    let l = mech.padding_length();
    assert_eq!(output.len(), m + l, "output length must be m + l");
    assert!(itemset.iter().all(|&i| i < m), "item out of domain");
    let ue = mech.unary_encoding();
    let k = itemset.len();
    let eta = k as f64 / k.max(l) as f64;
    let mut p = 0.0;
    if k > 0 {
        for &i in itemset {
            p += eta * ue.output_probability(i, output) / k as f64;
        }
    }
    if eta < 1.0 {
        for j in 0..l {
            p += (1.0 - eta) * ue.output_probability(m + j, output) / l as f64;
        }
    }
    p
}

/// Result of one exhaustive IDUE-PS pair audit.
#[derive(Clone, Debug, PartialEq)]
pub struct PairAudit {
    /// The two item-sets compared.
    pub sets: (Vec<usize>, Vec<usize>),
    /// Worst observed log-ratio over all outputs.
    pub observed: f64,
    /// Theorem 4's allowed bound `min(ε_x, ε_x')` from Eq. 17.
    pub allowed: f64,
}

/// Brute-force Theorem 4 audit: for every pair of the given item-sets,
/// enumerate all `2^{m+ℓ}` outputs and check
/// `ln(Pr(y|x)/Pr(y|x')) <= min(ε_x, ε_x')` with tolerance `tol`.
///
/// Returns the per-pair audits (for reporting) or the first violation.
///
/// # Panics
/// Panics if `m + ℓ > 16` (enumeration limit).
pub fn audit_idue_ps_exhaustive(
    mech: &IduePs,
    sets: &[Vec<usize>],
    tol: f64,
) -> Result<Vec<PairAudit>> {
    let total_bits = mech.domain_size() + mech.padding_length();
    assert!(total_bits <= 16, "exhaustive audit limited to m + l <= 16");
    let mut audits = Vec::new();
    let mut out = vec![false; total_bits];
    for (si, x) in sets.iter().enumerate() {
        for x_prime in sets.iter().skip(si + 1) {
            let allowed = mech.set_budget(x)?.min(mech.set_budget(x_prime)?);
            let mut observed = f64::NEG_INFINITY;
            for mask in 0..(1u32 << total_bits) {
                for (k, o) in out.iter_mut().enumerate() {
                    *o = mask >> k & 1 == 1;
                }
                let p = idue_ps_output_probability(mech, x, &out);
                let q = idue_ps_output_probability(mech, x_prime, &out);
                let r = (p / q).ln().abs(); // symmetric: check both directions
                observed = observed.max(r);
            }
            if observed > allowed + tol {
                return Err(Error::PrivacyViolation {
                    observed,
                    allowed,
                    pair: (si, si + 1),
                });
            }
            audits.push(PairAudit {
                sets: (x.clone(), x_prime.clone()),
                observed,
                allowed,
            });
        }
    }
    Ok(audits)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::budget::{BudgetSet, Epsilon};
    use crate::levels::LevelPartition;
    use crate::notion::RFunction;
    use crate::params::LevelParams;

    fn eps(v: f64) -> Epsilon {
        Epsilon::new(v).unwrap()
    }

    #[test]
    fn analytic_audit_matches_exhaustive() {
        let ue = UnaryEncoding::new(vec![0.6, 0.5, 0.55], vec![0.25, 0.2, 0.1]).unwrap();
        for i in 0..3 {
            for j in 0..3 {
                if i == j {
                    continue;
                }
                let exhaustive = ue_worst_ratio_exhaustive(&ue, i, j);
                assert!(
                    (exhaustive - ue.pair_log_ratio(i, j)).abs() < 1e-10,
                    "pair ({i},{j})"
                );
            }
        }
    }

    #[test]
    fn audit_ue_against_ldp_and_minid() {
        let ue = UnaryEncoding::optimized(eps(1.0), 4).unwrap();
        assert!(audit_unary_encoding(&ue, &Notion::Ldp(eps(1.0)), 1e-9).is_ok());
        assert!(audit_unary_encoding(&ue, &Notion::Ldp(eps(0.9)), 1e-9).is_err());
        let budgets = BudgetSet::from_values(&[1.0, 1.0, 2.0, 2.0]).unwrap();
        assert!(
            audit_unary_encoding(&ue, &Notion::min_id_ldp(budgets), 1e-9).is_ok(),
            "ε=min(E) LDP implies E-MinID-LDP (Lemma 1)"
        );
        let wrong_dim = BudgetSet::from_values(&[1.0, 1.0]).unwrap();
        assert!(audit_unary_encoding(&ue, &Notion::min_id_ldp(wrong_dim), 1e-9).is_err());
    }

    /// Small feasible two-level IDUE-PS fixture (m=4, l=2 → 6 bits).
    fn small_mech() -> IduePs {
        let levels =
            LevelPartition::new(vec![0, 0, 1, 1], vec![eps(2.0_f64.ln()), eps(4.0_f64.ln())])
                .unwrap();
        let params = LevelParams::new(vec![0.48, 0.60], vec![0.38, 0.38]).unwrap();
        assert!(params.verify(&levels, RFunction::Min, 1e-9).is_ok());
        IduePs::new(levels, &params, 2).unwrap()
    }

    #[test]
    fn mixture_probability_normalizes() {
        let mech = small_mech();
        let bits = mech.domain_size() + mech.padding_length();
        for set in [vec![], vec![0], vec![0, 2], vec![0, 1, 2, 3]] {
            let mut total = 0.0;
            let mut out = vec![false; bits];
            for mask in 0..(1u32 << bits) {
                for (k, o) in out.iter_mut().enumerate() {
                    *o = mask >> k & 1 == 1;
                }
                total += idue_ps_output_probability(&mech, &set, &out);
            }
            assert!((total - 1.0).abs() < 1e-10, "set {set:?} total {total}");
        }
    }

    #[test]
    fn theorem4_holds_exhaustively_on_small_domain() {
        // The heart of the reproduction: numerically verify Theorem 4 on an
        // enumerable domain for a mix of set sizes (padding and truncation).
        let mech = small_mech();
        let sets = vec![
            vec![0],
            vec![2],
            vec![0, 2],
            vec![1, 3],
            vec![0, 1, 2],
            vec![0, 1, 2, 3],
        ];
        let audits = audit_idue_ps_exhaustive(&mech, &sets, 1e-9).unwrap();
        assert_eq!(audits.len(), sets.len() * (sets.len() - 1) / 2);
        for a in &audits {
            assert!(
                a.observed <= a.allowed + 1e-9,
                "pair {:?} observed {} allowed {}",
                a.sets,
                a.observed,
                a.allowed
            );
        }
    }

    #[test]
    fn theorem4_audit_catches_violations() {
        // Deliberately break feasibility: very leaky level-0 parameters.
        let levels =
            LevelPartition::new(vec![0, 0, 1, 1], vec![eps(0.2), eps(4.0_f64.ln())]).unwrap();
        let params = LevelParams::new(vec![0.9, 0.9], vec![0.05, 0.05]).unwrap();
        assert!(params.verify(&levels, RFunction::Min, 1e-9).is_err());
        let mech = IduePs::new(levels, &params, 2).unwrap();
        let sets = vec![vec![0], vec![2]];
        assert!(audit_idue_ps_exhaustive(&mech, &sets, 1e-9).is_err());
    }
}
