//! Trait-layer conformance suite.
//!
//! Every [`Mechanism`]/[`BatchMechanism`]/[`FrequencyOracle`] implementation
//! in the crate is run through the same checks:
//!
//! 1. **report shape** — reports have `report_len()` slots, all 0/1;
//! 2. **batch ≡ loop** — the (possibly specialized) `perturb_batch` produces
//!    bit-identical counts to the default loop over `perturb_into` under the
//!    same RNG stream;
//! 3. **oracle unbiasedness** — averaging oracle estimates over seeded
//!    trials on a synthetic dataset recovers the true counts;
//! 4. **input validation** — wrong-kind and out-of-domain inputs surface
//!    errors (not panics) from every entry point;
//! 5. **profile consistency** — `bit_profile`, when present, matches the
//!    report width and is properly ordered.

use idldp_core::budget::Epsilon;
use idldp_core::grr::GeneralizedRandomizedResponse;
use idldp_core::idue::Idue;
use idldp_core::idue_ps::IduePs;
use idldp_core::levels::LevelPartition;
use idldp_core::matrix_mech::PerturbationMatrix;
use idldp_core::mechanism::{
    BatchMechanism, CountAccumulator, Input, InputBatch, InputKind, Mechanism,
};
use idldp_core::olh::OptimalLocalHashing;
use idldp_core::params::LevelParams;
use idldp_core::ps::PsMechanism;
use idldp_core::report::ReportShape;
use idldp_core::subset::SubsetSelection;
use idldp_core::ue::UnaryEncoding;
use idldp_num::rng::{stream_rng, SplitMix64};

const DOMAIN: usize = 8;
const PADDING: usize = 3;

fn eps(v: f64) -> Epsilon {
    Epsilon::new(v).unwrap()
}

fn two_level_partition() -> (LevelPartition, LevelParams) {
    let levels = LevelPartition::new(
        vec![0, 0, 1, 1, 1, 1, 1, 1],
        vec![eps(2.0_f64.ln()), eps(4.0_f64.ln())],
    )
    .unwrap();
    // Feasible MinID-LDP parameters (checked in `fixture_is_feasible`).
    let params = LevelParams::new(vec![0.48, 0.60], vec![0.38, 0.38]).unwrap();
    (levels, params)
}

/// Every mechanism in the crate, over the same 8-item domain.
fn all_mechanisms() -> Vec<Box<dyn BatchMechanism>> {
    let (levels, params) = two_level_partition();
    vec![
        Box::new(GeneralizedRandomizedResponse::new(eps(1.5), DOMAIN).unwrap()),
        Box::new(UnaryEncoding::optimized(eps(1.0), DOMAIN).unwrap()),
        Box::new(Idue::new(levels.clone(), &params).unwrap()),
        Box::new(PsMechanism::new(DOMAIN, PADDING).unwrap()),
        Box::new(IduePs::new(levels, &params, PADDING).unwrap()),
        Box::new(PerturbationMatrix::grr(eps(1.5), DOMAIN).unwrap()),
        Box::new(OptimalLocalHashing::new(eps(1.5), DOMAIN).unwrap()),
        Box::new(SubsetSelection::new(eps(1.5), DOMAIN).unwrap()),
    ]
}

/// A deterministic synthetic workload matching the mechanism's input kind.
fn workload(mech: &dyn BatchMechanism, n: usize) -> Workload {
    let mut rng = SplitMix64::new(2024);
    match mech.input_kind() {
        InputKind::Item => {
            // Skewed single-item data: item i with weight ∝ (i + 1)⁻¹.
            let items: Vec<u32> = (0..n)
                .map(|_| {
                    let u = rng.next_f64();
                    let mut acc = 0.0;
                    let norm: f64 = (1..=DOMAIN).map(|k| 1.0 / k as f64).sum();
                    for i in 0..DOMAIN {
                        acc += 1.0 / ((i + 1) as f64 * norm);
                        if u < acc {
                            return i as u32;
                        }
                    }
                    (DOMAIN - 1) as u32
                })
                .collect();
            Workload::Items(items)
        }
        InputKind::Set => {
            // Sets of exactly PADDING distinct items (η = 1: estimates are
            // unbiased with no padding-truncation bias).
            let sets: Vec<Vec<u32>> = (0..n)
                .map(|_| {
                    let mut set = Vec::new();
                    while set.len() < PADDING {
                        let item = (rng.next() % DOMAIN as u64) as u32;
                        if !set.contains(&item) {
                            set.push(item);
                        }
                    }
                    set
                })
                .collect();
            Workload::Sets(sets)
        }
    }
}

enum Workload {
    Items(Vec<u32>),
    Sets(Vec<Vec<u32>>),
}

impl Workload {
    fn batch(&self) -> InputBatch<'_> {
        match self {
            Workload::Items(items) => InputBatch::Items(items),
            Workload::Sets(sets) => InputBatch::Sets(sets),
        }
    }

    fn len(&self) -> usize {
        self.batch().len()
    }

    fn input(&self, i: usize) -> Input<'_> {
        match self {
            Workload::Items(items) => Input::Item(items[i] as usize),
            Workload::Sets(sets) => Input::Set(&sets[i]),
        }
    }

    fn true_counts(&self) -> Vec<f64> {
        let mut counts = vec![0.0; DOMAIN];
        match self {
            Workload::Items(items) => {
                for &i in items {
                    counts[i as usize] += 1.0;
                }
            }
            Workload::Sets(sets) => {
                for set in sets {
                    for &i in set {
                        counts[i as usize] += 1.0;
                    }
                }
            }
        }
        counts
    }
}

#[test]
fn fixture_is_feasible() {
    let (levels, params) = two_level_partition();
    assert!(params
        .verify(&levels, idldp_core::notion::RFunction::Min, 1e-9)
        .is_ok());
}

#[test]
fn report_shape_and_binary_values() {
    for mech in all_mechanisms() {
        let load = workload(mech.as_ref(), 16);
        let mut rng = stream_rng(1, 0);
        for i in 0..load.len() {
            let report = mech.perturb_report(load.input(i), &mut rng).unwrap();
            assert_eq!(report.len(), mech.report_len(), "{}", mech.kind());
            assert!(
                report.iter().all(|&b| b <= 1),
                "{}: non-binary report",
                mech.kind()
            );
        }
        assert!(
            mech.report_len() >= mech.domain_size(),
            "{}: report narrower than domain",
            mech.kind()
        );
    }
}

/// Forwards `Mechanism` and takes `BatchMechanism`'s *default* loop, so the
/// specialized fast paths can be compared against it.
struct DefaultLoop<'a>(&'a dyn BatchMechanism);

impl Mechanism for DefaultLoop<'_> {
    fn kind(&self) -> &'static str {
        self.0.kind()
    }
    fn domain_size(&self) -> usize {
        self.0.domain_size()
    }
    fn report_len(&self) -> usize {
        self.0.report_len()
    }
    fn input_kind(&self) -> InputKind {
        self.0.input_kind()
    }
    fn perturb_into(
        &self,
        input: Input<'_>,
        rng: &mut dyn rand::RngCore,
        report: &mut [u8],
    ) -> idldp_core::error::Result<()> {
        self.0.perturb_into(input, rng, report)
    }
    fn encode_hot(
        &self,
        input: Input<'_>,
        rng: &mut dyn rand::RngCore,
    ) -> idldp_core::error::Result<usize> {
        self.0.encode_hot(input, rng)
    }
    fn ldp_epsilon(&self) -> f64 {
        self.0.ldp_epsilon()
    }
    fn frequency_oracle(&self, n: u64) -> Box<dyn idldp_core::mechanism::FrequencyOracle> {
        self.0.frequency_oracle(n)
    }
    fn as_any(&self) -> &dyn std::any::Any {
        self.0.as_any()
    }
}

impl BatchMechanism for DefaultLoop<'_> {}

#[test]
fn batch_fast_path_is_bit_identical_to_default_loop() {
    for mech in all_mechanisms() {
        let load = workload(mech.as_ref(), 500);
        for seed in [3u64, 4, 5] {
            let mut fast_rng = stream_rng(seed, 0);
            let mut fast = CountAccumulator::new(mech.report_len());
            mech.perturb_batch(load.batch(), &mut fast_rng, &mut fast)
                .unwrap();

            let looped_mech = DefaultLoop(mech.as_ref());
            let mut loop_rng = stream_rng(seed, 0);
            let mut looped = CountAccumulator::new(mech.report_len());
            looped_mech
                .perturb_batch(load.batch(), &mut loop_rng, &mut looped)
                .unwrap();

            assert_eq!(
                fast,
                looped,
                "{}: specialized batch diverged from default loop",
                mech.kind()
            );
            assert_eq!(fast.num_users(), load.len() as u64, "{}", mech.kind());
        }
    }
}

#[test]
fn oracle_estimates_are_unbiased_on_seeded_data() {
    let n = 4000usize;
    let trials = 30u64;
    for mech in all_mechanisms() {
        let load = workload(mech.as_ref(), n);
        let truth = load.true_counts();
        let oracle = mech.frequency_oracle(n as u64);
        assert_eq!(oracle.report_len(), mech.report_len(), "{}", mech.kind());
        assert_eq!(oracle.domain_size(), mech.domain_size(), "{}", mech.kind());
        let mut mean_est = vec![0.0; mech.domain_size()];
        for t in 0..trials {
            let mut rng = stream_rng(900 + t, 0);
            let mut acc = CountAccumulator::new(mech.report_len());
            mech.perturb_batch(load.batch(), &mut rng, &mut acc)
                .unwrap();
            let est = oracle.estimate(acc.counts()).unwrap();
            for (m, e) in mean_est.iter_mut().zip(est) {
                *m += e / trials as f64;
            }
        }
        for (i, (&mean, &want)) in mean_est.iter().zip(&truth).enumerate() {
            assert!(
                (mean - want).abs() < 0.05 * n as f64,
                "{}: item {i} mean estimate {mean:.1} vs truth {want:.1}",
                mech.kind()
            );
        }
    }
}

#[test]
fn invalid_inputs_error_everywhere() {
    for mech in all_mechanisms() {
        let mut rng = stream_rng(7, 0);
        let oversized = [DOMAIN as u32];
        let (bad, wrong_kind) = match mech.input_kind() {
            InputKind::Item => (Input::Item(DOMAIN), Input::Set(&[0u32, 1][..])),
            InputKind::Set => (Input::Set(&oversized[..]), Input::Item(0)),
        };
        assert!(
            mech.perturb_report(bad, &mut rng).is_err(),
            "{}: out-of-domain input must error",
            mech.kind()
        );
        assert!(
            mech.perturb_report(wrong_kind, &mut rng).is_err(),
            "{}: wrong input kind must error",
            mech.kind()
        );
        assert!(
            mech.encode_hot(bad, &mut rng).is_err(),
            "{}: encode_hot must validate",
            mech.kind()
        );
        // Undersized report buffer.
        let mut short = vec![0u8; mech.report_len() - 1];
        let good = match mech.input_kind() {
            InputKind::Item => Input::Item(0),
            InputKind::Set => Input::Set(&[0u32]),
        };
        assert!(
            mech.perturb_into(good, &mut rng, &mut short).is_err(),
            "{}: short report buffer must error",
            mech.kind()
        );
        // Mis-sized accumulator.
        let mut acc = CountAccumulator::new(mech.report_len() + 1);
        let items = [0u32];
        let sets = [vec![0u32]];
        let batch = match mech.input_kind() {
            InputKind::Item => InputBatch::Items(&items),
            InputKind::Set => InputBatch::Sets(&sets),
        };
        assert!(
            mech.perturb_batch(batch, &mut rng, &mut acc).is_err(),
            "{}: mis-sized accumulator must error",
            mech.kind()
        );
    }
}

#[test]
fn bit_profiles_are_consistent() {
    for mech in all_mechanisms() {
        let Some(profile) = mech.bit_profile() else {
            assert_eq!(mech.kind(), "matrix", "only matrix lacks a profile");
            continue;
        };
        assert_eq!(profile.a.len(), mech.report_len(), "{}", mech.kind());
        assert_eq!(profile.b.len(), mech.report_len(), "{}", mech.kind());
        for (k, (&a, &b)) in profile.a.iter().zip(&profile.b).enumerate() {
            assert!(
                (0.0..=1.0).contains(&a) && (0.0..=1.0).contains(&b) && a > b,
                "{}: bucket {k} profile ({a}, {b}) out of order",
                mech.kind()
            );
        }
    }
}

#[test]
fn encode_hot_matches_report_expectation() {
    // For single-item mechanisms the encoding stage is deterministic and
    // must point at the input's own bucket.
    for mech in all_mechanisms() {
        if mech.input_kind() != InputKind::Item {
            continue;
        }
        let mut rng = stream_rng(13, 0);
        for item in 0..mech.domain_size() {
            assert_eq!(
                mech.encode_hot(Input::Item(item), &mut rng).unwrap(),
                item,
                "{}",
                mech.kind()
            );
        }
    }
}

#[test]
fn perturb_data_folds_to_perturb_into() {
    // The wire-shape law behind the shape-generic pipeline: emitting the
    // native-shape report (`perturb_data`) and folding it server-side must
    // give the exact bit pattern `perturb_into` writes, under the same RNG
    // stream — for every mechanism and every shape.
    for mech in all_mechanisms() {
        let load = workload(mech.as_ref(), 200);
        let shape_param = match mech.report_shape() {
            ReportShape::Hashed { range } => range,
            ReportShape::ItemSet { k } => k,
            _ => 0,
        };
        for i in 0..load.len() {
            let mut r1 = stream_rng(41, i as u64);
            let mut r2 = stream_rng(41, i as u64);
            let report = mech.perturb_report(load.input(i), &mut r1).unwrap();
            let data = mech.perturb_data(load.input(i), &mut r2).unwrap();
            let mut via_into = vec![0u64; mech.report_len()];
            for (c, &b) in via_into.iter_mut().zip(&report) {
                *c = u64::from(b);
            }
            let mut via_data = vec![0u64; mech.report_len()];
            data.fold_into(&mut via_data, shape_param).unwrap();
            assert_eq!(
                via_data,
                via_into,
                "{}: perturb_data fold diverged from perturb_into",
                mech.kind()
            );
        }
    }
}

#[test]
fn report_shapes_are_declared_consistently() {
    for mech in all_mechanisms() {
        let shape = mech.report_shape();
        match mech.kind() {
            "grr" | "matrix" | "ps" => assert_eq!(shape, ReportShape::Value, "{}", mech.kind()),
            "olh" => assert!(
                matches!(shape, ReportShape::Hashed { range } if range >= 2),
                "{}: {shape:?}",
                mech.kind()
            ),
            "ss" => assert!(
                matches!(shape, ReportShape::ItemSet { k } if k >= 1),
                "{}: {shape:?}",
                mech.kind()
            ),
            _ => assert_eq!(shape, ReportShape::Bits, "{}", mech.kind()),
        }
    }
}

#[test]
fn ldp_epsilon_finite_for_private_mechanisms() {
    for mech in all_mechanisms() {
        let e = mech.ldp_epsilon();
        if mech.kind() == "ps" {
            assert!(e.is_infinite(), "bare PS reports no privacy");
        } else {
            assert!(e.is_finite() && e > 0.0, "{}: ldp_epsilon {e}", mech.kind());
        }
    }
}
