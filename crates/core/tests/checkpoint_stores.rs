//! Crash-consistency contract of the checkpoint store backends.
//!
//! The [`SnapshotStore`] trait promises that a crash at any instant leaves
//! `load` returning either the previous committed checkpoint or the new
//! one, never a torn hybrid. The unit tests in `snapshot::store` cover the
//! happy paths; this suite attacks the commit machinery from the outside,
//! with the damage a real crash (or operator) leaves behind:
//!
//! - **ShardedStore** — the manifest rename is the commit point. A torn or
//!   garbled manifest, a deleted manifest, and half-written shard files of
//!   a never-committed next generation must all degrade to the last
//!   committed generation; only when *nothing* committed survives may the
//!   store report corruption.
//! - **DeltaStore** — every record seals itself with a digest, and a
//!   reload replays the longest intact prefix. A property test truncates
//!   the log at (and just past) every record boundary and asserts the
//!   restored state is exactly the checkpoint the surviving records
//!   describe — and that saving on top of the truncated log (append or
//!   compaction) round-trips the new state exactly.

use idldp_core::snapshot::store::{DeltaStore, ShardedStore};
use idldp_core::snapshot::{open_store, AccumulatorSnapshot, SnapshotStore, StoreError, StoreKind};
use proptest::prelude::*;
use std::path::{Path, PathBuf};

const RUN: &str = "run idldp-test mechanism=oue m=4 eps=1";

fn test_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "idldp-checkpoint-stores-{}-{:?}-{tag}",
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn snap(counts: &[u64], users: u64) -> AccumulatorSnapshot {
    AccumulatorSnapshot::new(counts.to_vec(), users).unwrap()
}

fn shards_a() -> Vec<AccumulatorSnapshot> {
    vec![snap(&[5, 0, 2, 1], 6), snap(&[1, 3, 0, 4], 5)]
}

fn shards_b() -> Vec<AccumulatorSnapshot> {
    vec![snap(&[9, 2, 2, 1], 9), snap(&[1, 3, 1, 7], 8)]
}

fn merged(shards: &[AccumulatorSnapshot]) -> AccumulatorSnapshot {
    let mut m = shards[0].clone();
    for s in &shards[1..] {
        m.merge(s).unwrap();
    }
    m
}

/// FNV-1a, as the store's sealed records use it — re-derived here so the
/// tests can forge crash debris (e.g. a digest-clean shard file of a
/// generation whose manifest never landed).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

fn sealed(body: &str) -> String {
    format!("{body}check {:016x}\n", fnv1a(body.as_bytes()))
}

fn shard_path(base: &Path, gen: u64, idx: usize) -> PathBuf {
    let mut name = base.as_os_str().to_owned();
    name.push(format!(".g{gen}.s{idx}"));
    PathBuf::from(name)
}

#[test]
fn sharded_torn_manifest_falls_back_to_the_committed_generation() {
    let dir = test_dir("torn-manifest");
    let path = dir.join("ckpt");
    let mut store = open_store(StoreKind::Sharded, &path);
    store.save(&shards_a(), RUN).unwrap();

    // The crash: the manifest is damaged after commit (bit rot, or a
    // non-atomic writer died mid-copy). The shard files are intact.
    std::fs::write(&path, "idldp-manifest v1\ngen 1\nsha").unwrap();

    let mut fresh = open_store(StoreKind::Sharded, &path);
    let restored = fresh.load().unwrap().expect("committed state survives");
    assert_eq!(restored.merged(), merged(&shards_a()));
    assert_eq!(restored.run_line(), Some(RUN));

    // The store stays writable after recovery, and the next load sees the
    // newly committed state through a clean manifest again.
    fresh.save(&shards_b(), RUN).unwrap();
    let again = open_store(StoreKind::Sharded, &path)
        .load()
        .unwrap()
        .unwrap();
    assert_eq!(again.merged(), merged(&shards_b()));
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn sharded_missing_manifest_restores_the_newest_complete_generation() {
    let dir = test_dir("missing-manifest");
    let path = dir.join("ckpt");
    let mut store = open_store(StoreKind::Sharded, &path);
    store.save(&shards_a(), RUN).unwrap();
    store.save(&shards_b(), RUN).unwrap();

    // The manifest vanishes entirely; only shard files remain.
    std::fs::remove_file(&path).unwrap();

    let mut fresh = open_store(StoreKind::Sharded, &path);
    let restored = fresh.load().unwrap().expect("scan finds the shard files");
    assert_eq!(restored.merged(), merged(&shards_b()));
    assert_eq!(restored.run_line(), Some(RUN));
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn sharded_partial_next_generation_is_ignored_and_cleaned_up() {
    let dir = test_dir("partial-gen");
    let path = dir.join("ckpt");
    let mut store = open_store(StoreKind::Sharded, &path);
    store.save(&shards_a(), RUN).unwrap(); // generation 1, committed

    // The crash: a writer died after writing one of generation 2's three
    // shard files, before the manifest rename. The debris is even
    // digest-clean — only the missing manifest (and missing siblings)
    // mark it uncommitted.
    let debris = shard_path(&path, 2, 0);
    std::fs::write(
        &debris,
        sealed("idldp-shard v1\ngen 2\nshard 0 of 3\nusers 99\ncounts 9 9 9 9\n"),
    )
    .unwrap();

    // With the manifest intact, generation 1 restores and the debris is
    // invisible.
    let mut fresh = open_store(StoreKind::Sharded, &path);
    let restored = fresh.load().unwrap().unwrap();
    assert_eq!(restored.merged(), merged(&shards_a()));

    // Even without the manifest, the scan skips the incomplete generation
    // 2 and restores the complete generation 1.
    std::fs::remove_file(&path).unwrap();
    let mut fresh = open_store(StoreKind::Sharded, &path);
    let restored = fresh.load().unwrap().unwrap();
    assert_eq!(restored.merged(), merged(&shards_a()));

    // The next save must not collide with the debris generation: it picks
    // a fresh one, commits, and sweeps every stale file — debris included.
    fresh.save(&shards_b(), RUN).unwrap();
    let again = open_store(StoreKind::Sharded, &path)
        .load()
        .unwrap()
        .unwrap();
    assert_eq!(again.merged(), merged(&shards_b()));
    assert!(!debris.exists(), "committed save sweeps crash debris");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn sharded_corruption_with_no_committed_generation_is_an_error_not_empty() {
    let dir = test_dir("all-corrupt");
    let path = dir.join("ckpt");
    let mut store = open_store(StoreKind::Sharded, &path);
    store.save(&shards_a(), RUN).unwrap();

    // Damage the manifest AND one of the shard files: nothing committed
    // survives. Silently starting empty would be data loss, so this must
    // surface as corruption.
    std::fs::write(&path, "garbage\n").unwrap();
    std::fs::write(shard_path(&path, 1, 1), "idldp-shard v1\ngen 1\nsha").unwrap();

    let err = open_store(StoreKind::Sharded, &path)
        .load()
        .expect_err("unrecoverable damage must not read as an empty store");
    assert!(matches!(err, StoreError::Corrupt(_)), "got: {err}");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn sharded_store_struct_is_reachable_directly() {
    // The concrete type is public API (benches construct it without the
    // `open_store` indirection); keep the path stable.
    let dir = test_dir("direct");
    let path = dir.join("ckpt");
    let mut store = ShardedStore::new(&path);
    store.save(&shards_a(), "").unwrap();
    let restored = store.load().unwrap().unwrap();
    assert_eq!(restored.run_line(), None);
    assert_eq!(restored.merged(), merged(&shards_a()));
    std::fs::remove_dir_all(&dir).unwrap();
}

// ---------------------------------------------------------------------------
// DeltaStore: truncation property

/// Byte offsets at which a record of the sealed log ends (one per
/// `check` line) — the boundaries a torn tail is truncated back to.
fn record_boundaries(text: &str) -> Vec<usize> {
    let mut boundaries = Vec::new();
    let mut pos = 0;
    for line in text.split_inclusive('\n') {
        pos += line.len();
        if line.starts_with("check ") && line.ends_with('\n') {
            boundaries.push(pos);
        }
    }
    boundaries
}

/// Deterministic pseudo-random byte used to grow the counts between saves
/// (proptest drives only the seed, so shrinking stays meaningful).
fn mix(seed: u64, i: u64) -> u64 {
    let mut z = seed.wrapping_add(i.wrapping_mul(0x9e3779b97f4a7c15));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Any prefix of the delta log cut at a record boundary restores
    /// exactly the checkpoint its surviving records describe; a cut
    /// *inside* a record falls back to the boundary before it; and saving
    /// on top of any truncated log round-trips the new state exactly.
    #[test]
    fn delta_log_prefixes_restore_exact_checkpoints(
        width in 1usize..6,
        saves in 1usize..8,
        compact_every in 1u64..5,
        seed in any::<u64>(),
    ) {
        let dir = test_dir(&format!("proptest-{width}-{saves}-{compact_every}-{seed:x}"));
        let path = dir.join("ckpt");

        // A monotone history of merged states, saved one after another.
        let mut store = DeltaStore::with_compaction(&path, compact_every, 1_000_000);
        let mut counts = vec![0u64; width];
        let mut users = 0u64;
        let mut history: Vec<AccumulatorSnapshot> = Vec::new();
        for s in 0..saves {
            for (i, c) in counts.iter_mut().enumerate() {
                *c += mix(seed, (s * width + i) as u64) % 4;
            }
            users += 1 + mix(seed, (saves * width + s) as u64) % 3;
            let state = snap(&counts, users);
            store.save(std::slice::from_ref(&state), RUN).unwrap();
            history.push(state);
        }
        drop(store);

        let text = std::fs::read_to_string(&path).unwrap();
        let boundaries = record_boundaries(&text);
        prop_assert!(!boundaries.is_empty());
        prop_assert_eq!(*boundaries.last().unwrap(), text.len());
        // The log's records are the tail of the history: a base record
        // written by the last compaction, then one delta per later save.
        let first_covered = saves - boundaries.len();

        for (k, &cut) in boundaries.iter().enumerate() {
            let want = &history[first_covered + k];

            // Cut exactly at the boundary: k+1 intact records.
            let torn = dir.join(format!("torn-{k}"));
            std::fs::write(&torn, &text.as_bytes()[..cut]).unwrap();
            let mut reopened = DeltaStore::with_compaction(&torn, compact_every, 1_000_000);
            let restored = reopened.load().unwrap().expect("an intact prefix restores");
            prop_assert_eq!(&restored.merged(), want);

            // Cut mid-record (one byte short): the damaged record is
            // dropped, the boundary before it wins — or, when the base
            // record itself is torn, nothing committed remains.
            let ragged = dir.join(format!("ragged-{k}"));
            std::fs::write(&ragged, &text.as_bytes()[..cut - 1]).unwrap();
            let mut reopened = DeltaStore::with_compaction(&ragged, compact_every, 1_000_000);
            match reopened.load().unwrap() {
                Some(prev) => {
                    prop_assert!(k > 0, "a torn base record cannot restore");
                    prop_assert_eq!(&prev.merged(), &history[first_covered + k - 1]);
                }
                None => prop_assert_eq!(k, 0),
            }

            // Compaction round-trip on the truncated log: one more save
            // (append or compact, whatever the schedule says) must leave
            // the new state exactly restorable.
            let mut next_counts = want.counts().to_vec();
            for (i, c) in next_counts.iter_mut().enumerate() {
                *c += mix(seed, (2 * saves * width + i) as u64) % 4;
            }
            let next = snap(&next_counts, want.num_users() + 1);
            let mut writer = DeltaStore::with_compaction(&torn, compact_every, 1_000_000);
            writer.save(std::slice::from_ref(&next), RUN).unwrap();
            drop(writer);
            let mut reopened = DeltaStore::with_compaction(&torn, compact_every, 1_000_000);
            let round_tripped = reopened.load().unwrap().unwrap();
            prop_assert_eq!(round_tripped.merged(), next);
            prop_assert_eq!(round_tripped.run_line(), Some(RUN));
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
