//! Property tests for the core privacy types and mechanisms.

use idldp_core::budget::{BudgetSet, Epsilon};
use idldp_core::estimator::FrequencyEstimator;
use idldp_core::grr::GeneralizedRandomizedResponse;
use idldp_core::idue_ps::set_budget;
use idldp_core::leakage;
use idldp_core::levels::LevelPartition;
use idldp_core::matrix_mech::PerturbationMatrix;
use idldp_core::notion::{Notion, RFunction};
use idldp_core::relations;
use idldp_core::ue::UnaryEncoding;
use proptest::prelude::*;

fn arb_budgets(n: usize) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(0.05f64..6.0, n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The r-functions are symmetric and ordered min <= avg <= max.
    #[test]
    fn r_function_ordering(a in 0.05f64..6.0, b in 0.05f64..6.0) {
        let (ea, eb) = (Epsilon::new(a).unwrap(), Epsilon::new(b).unwrap());
        let min = RFunction::Min.combine(ea, eb);
        let avg = RFunction::Avg.combine(ea, eb);
        let max = RFunction::Max.combine(ea, eb);
        prop_assert!(min <= avg && avg <= max);
        for r in [RFunction::Min, RFunction::Avg, RFunction::Max] {
            prop_assert_eq!(r.combine(ea, eb), r.combine(eb, ea));
        }
    }

    /// Lemma 1's implied-LDP value is between min(E) and max(E), and the
    /// relaxation factor is in [1, 2].
    #[test]
    fn lemma1_bounds(vals in arb_budgets(5)) {
        let set = BudgetSet::from_values(&vals).unwrap();
        let implied = relations::minid_implies_ldp(&set);
        prop_assert!(implied >= set.min().get() - 1e-12);
        prop_assert!(implied <= set.max().get() + 1e-12);
        let r = relations::relaxation_factor(&set);
        prop_assert!((1.0 - 1e-12..=2.0 + 1e-12).contains(&r));
        // LDP at min(E) always implies E-MinID-LDP.
        prop_assert!(relations::ldp_implies_minid(set.min(), &set));
    }

    /// GRR satisfies exactly its declared ε, and its matrix form agrees.
    #[test]
    fn grr_epsilon_tight(e in 0.05f64..6.0, m in 2usize..40) {
        let eps = Epsilon::new(e).unwrap();
        let g = GeneralizedRandomizedResponse::new(eps, m).unwrap();
        prop_assert!((g.ldp_epsilon() - e).abs() < 1e-9);
        let mat = PerturbationMatrix::grr(eps, m).unwrap();
        prop_assert!((mat.ldp_epsilon() - e).abs() < 1e-9);
        prop_assert!(mat.audit(&Notion::Ldp(eps), 1e-9).is_ok());
    }

    /// SUE/OUE constructors satisfy their ε exactly for any m.
    #[test]
    fn ue_constructors_tight(e in 0.05f64..6.0, m in 1usize..60) {
        let eps = Epsilon::new(e).unwrap();
        let sym = UnaryEncoding::symmetric(eps, m).unwrap();
        prop_assert!((sym.ldp_epsilon() - e).abs() < 1e-9);
        let oue = UnaryEncoding::optimized(eps, m).unwrap();
        prop_assert!((oue.ldp_epsilon() - e).abs() < 1e-9);
    }

    /// Output probabilities of a UE mechanism always normalize (m <= 10).
    #[test]
    fn ue_output_distribution_normalizes(
        e in 0.1f64..4.0,
        m in 1usize..8,
        hot_choice in any::<prop::sample::Index>(),
    ) {
        let ue = UnaryEncoding::optimized(Epsilon::new(e).unwrap(), m).unwrap();
        let hot = hot_choice.index(m);
        let mut total = 0.0;
        for mask in 0..(1u32 << m) {
            let out: Vec<bool> = (0..m).map(|k| mask >> k & 1 == 1).collect();
            total += ue.output_probability(hot, &out);
        }
        prop_assert!((total - 1.0).abs() < 1e-9);
    }

    /// The worst-case total MSE dominates the truth-dependent MSE for any
    /// distribution of true counts.
    #[test]
    fn worst_case_mse_dominates(
        a0 in 0.35f64..0.9,
        gap in 0.05f64..0.3,
        n in 10u64..10_000,
        weights in proptest::collection::vec(0.0f64..1.0, 4),
    ) {
        let b0 = (a0 - gap).max(0.01);
        let est = FrequencyEstimator::new(vec![a0; 4], vec![b0; 4], n, 1.0).unwrap();
        let wsum: f64 = weights.iter().sum::<f64>().max(1e-9);
        let truth: Vec<f64> = weights.iter().map(|w| w / wsum * n as f64).collect();
        let actual = est.theoretical_total_mse(&truth).unwrap();
        prop_assert!(actual <= est.worst_case_total_mse() + 1e-6);
    }

    /// Eq. 17 set budgets: monotone under adding a looser item to a set
    /// whose size stays below ℓ, and always within [min, max] item budgets
    /// (including the dummy budget).
    #[test]
    fn set_budget_in_range(
        vals in arb_budgets(3),
        l in 1usize..5,
        size in 1usize..6,
    ) {
        let mut sorted = vals.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        // Three levels over 6 items.
        let budgets: Vec<Epsilon> = sorted.iter().map(|&v| Epsilon::new(v).unwrap()).collect();
        let levels = LevelPartition::new(vec![0, 0, 1, 1, 2, 2], budgets).unwrap();
        let set: Vec<usize> = (0..size.min(6)).collect();
        let eps_dummy = levels.min_budget();
        let b = set_budget(&levels, eps_dummy, l, &set).unwrap();
        prop_assert!(b >= levels.min_budget().get() - 1e-9);
        prop_assert!(b <= levels.max_budget().get() + 1e-9);
    }

    /// Leakage bounds: MinID upper bound is monotone in the input's budget
    /// until the 2·min(E) cap, and lower·upper = 1.
    #[test]
    fn minid_leakage_shape(vals in arb_budgets(4)) {
        let set = BudgetSet::from_values(&vals).unwrap();
        for x in 0..4 {
            let b = leakage::min_id_ldp_bound(&set, x).unwrap();
            prop_assert!((b.lower * b.upper - 1.0).abs() < 1e-9);
            let cap = (2.0 * set.min().get()).exp();
            prop_assert!(b.upper <= cap + 1e-9);
            prop_assert!(b.upper <= vals[x].exp() + 1e-9);
        }
    }

    /// Matrix mechanisms sampled via inverse-CDF stay in range and the
    /// audit agrees with the analytically known ε of GRR.
    #[test]
    fn matrix_perturb_in_range(e in 0.2f64..4.0, m in 2usize..12, seed in any::<u64>()) {
        let mat = PerturbationMatrix::grr(Epsilon::new(e).unwrap(), m).unwrap();
        let mut rng = idldp_num::rng::SplitMix64::new(seed);
        for x in 0..m {
            let y = mat.perturb(x, &mut rng).unwrap();
            prop_assert!(y < m);
        }
    }

    /// BudgetSet composition is commutative and associative element-wise.
    #[test]
    fn budget_addition_algebra(a in arb_budgets(3), b in arb_budgets(3), c in arb_budgets(3)) {
        let (sa, sb, sc) = (
            BudgetSet::from_values(&a).unwrap(),
            BudgetSet::from_values(&b).unwrap(),
            BudgetSet::from_values(&c).unwrap(),
        );
        let ab = sa.add(&sb).unwrap();
        let ba = sb.add(&sa).unwrap();
        for i in 0..3 {
            prop_assert!((ab[i].get() - ba[i].get()).abs() < 1e-12);
        }
        let ab_c = ab.add(&sc).unwrap();
        let a_bc = sa.add(&sb.add(&sc).unwrap()).unwrap();
        for i in 0..3 {
            prop_assert!((ab_c[i].get() - a_bc[i].get()).abs() < 1e-12);
        }
    }
}
