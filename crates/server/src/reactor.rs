//! The readiness-based connection engine (the C10k path).
//!
//! Instead of parking one thread per connection, a fixed set of event
//! loops multiplexes *every* connection over a level-triggered readiness
//! poller (the vendored `polling` shim: epoll on Linux). Loop 0 owns the
//! non-blocking listener and deals accepted sockets round-robin across
//! all loops through small hand-off inboxes (woken by
//! [`polling::Poller::notify`]); each loop then owns its connections
//! outright — no cross-loop locking on the hot path.
//!
//! Per connection the loop drives a small state machine:
//!
//! ```text
//!            Hello ok                    query frame
//! Handshake ─────────▶ Open ──────────────────────────▶ Settling
//!     │                 │  ▲                               │
//!     │ bad Hello       │  └── reply flushed ◀─────────────┘ frontier verdict
//!     ▼                 ▼ protocol violation
//!  Closing ◀────────────┘   (flush the Reject, then close)
//! ```
//!
//! Reads feed the incremental [`FrameAssembler`] — a peer's claimed frame
//! length never allocates ahead of its bytes, so a slow-loris drip holds
//! only what it has sent. Replies are strictly one-at-a-time: while a
//! reply is buffered (or a query is settling) the connection's read
//! interest is off, so a pipelining peer is throttled by its own socket
//! buffer — the kernel provides the backpressure, the server buffers at
//! most one reply. Queries cannot block the loop: they park the
//! connection in `Settling` and the loop re-polls the fold frontier
//! ([`crate::queue::IngestQueue::poll_processed`]) at a short tick while
//! any settle is pending — the watermark was captured at
//! frame-processing time, so linearization (and bit-identity with the
//! blocking engine) is untouched.
//!
//! Idle peers are reaped: a connection that completes no frame within the
//! configured idle timeout is closed on the next sweep, whether it is
//! silent or dripping bytes one poll at a time. Protocol logic lives in
//! [`crate::conn`], shared verbatim with the blocking engine.

use crate::conn::{self, FrameAction, PendingQuery};
use crate::frame::{Frame, FrameAssembler};
use crate::server::Shared;
use polling::{Event, Poller};
use std::collections::HashMap;
use std::io::{ErrorKind, Read, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::os::unix::io::AsRawFd;
use std::sync::atomic::Ordering;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Poller key of loop 0's listener; connection keys start above it.
const KEY_LISTENER: usize = 0;
/// Read chunk size — also the per-read growth quantum of a connection's
/// buffered frame bytes.
const READ_CHUNK: usize = 8 << 10;
/// Reads taken from one connection per readiness event before yielding to
/// the other connections on the loop (level-triggered: a still-readable
/// socket fires again on the next wait).
const MAX_READS_PER_EVENT: usize = 32;
/// Default wait bound: an idle loop wakes at least this often to sweep
/// idle deadlines.
const IDLE_TICK: Duration = Duration::from_millis(200);
/// Wait bound while any query is settling — the fold frontier is polled
/// at this tick.
const SETTLE_TICK: Duration = Duration::from_millis(1);

/// A running reactor: its event-loop threads plus the pollers to notify
/// for shutdown.
pub(crate) struct ReactorHandle {
    /// One poller per event loop — `notify` them all to make the loops
    /// observe the stop flag.
    pub(crate) pollers: Vec<Arc<Poller>>,
    /// The event-loop threads, to join after notifying.
    pub(crate) threads: Vec<JoinHandle<()>>,
}

/// Connection phase (see the module-level diagram).
enum Phase {
    /// Awaiting the Hello frame.
    Handshake,
    /// Negotiated; serving the frame loop.
    Open,
    /// A query awaits the fold frontier's verdict.
    Settling(PendingQuery),
    /// Flush the buffered reply, then close.
    Closing,
}

/// One multiplexed connection owned by an event loop.
struct Conn {
    stream: TcpStream,
    asm: FrameAssembler,
    /// The (single) buffered reply, partially flushed up to `out_pos`.
    out: Vec<u8>,
    out_pos: usize,
    phase: Phase,
    /// The tenant this connection bound to at handshake (index into the
    /// shared registry; 0 — the default tenant — until the Hello lands).
    tenant: usize,
    /// Reap deadline; refreshed each time a complete frame is processed.
    deadline: Option<Instant>,
    /// Interest currently registered with the poller, to skip redundant
    /// `modify` syscalls.
    interest: (bool, bool),
}

impl Conn {
    /// Queues `reply` as the connection's outgoing buffer (one reply at a
    /// time by construction: callers only queue while `out` is empty).
    fn queue_reply(&mut self, reply: &Frame) {
        debug_assert!(self.out.is_empty(), "one reply at a time");
        self.out = conn::encode_reply(reply);
        self.out_pos = 0;
    }

    /// Refreshes the idle deadline (a complete frame arrived).
    fn touch(&mut self, idle: Option<Duration>) {
        self.deadline = idle.map(|d| Instant::now() + d);
    }

    /// Flushes the outgoing buffer as far as the socket allows. `Ok(true)`
    /// when drained, `Ok(false)` when the socket is full (arm write
    /// interest), `Err` when the connection is dead.
    fn flush_out(&mut self) -> std::io::Result<bool> {
        while self.out_pos < self.out.len() {
            match self.stream.write(&self.out[self.out_pos..]) {
                Ok(0) => return Err(ErrorKind::WriteZero.into()),
                Ok(n) => self.out_pos += n,
                Err(e) if e.kind() == ErrorKind::WouldBlock => return Ok(false),
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        self.out.clear();
        self.out_pos = 0;
        Ok(true)
    }
}

/// Everything one event loop needs.
struct LoopCtx {
    shared: Arc<Shared>,
    poller: Arc<Poller>,
    /// Sockets handed to this loop by loop 0's acceptor.
    inbox: Arc<Mutex<Vec<TcpStream>>>,
    /// Loop 0 only: the non-blocking listener.
    listener: Option<TcpListener>,
    /// All loops' pollers/inboxes, for round-robin accept hand-off.
    peer_pollers: Vec<Arc<Poller>>,
    peer_inboxes: Vec<Arc<Mutex<Vec<TcpStream>>>>,
    index: usize,
    idle_timeout: Option<Duration>,
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Spawns `loops` event-loop threads serving `listener`. The listener is
/// switched to non-blocking and owned by loop 0.
///
/// # Errors
/// Poller construction failure — notably `Unsupported` on platforms
/// without a readiness backend, which `ReportServer::start` surfaces as a
/// typed config error.
pub(crate) fn spawn(
    listener: TcpListener,
    shared: Arc<Shared>,
    loops: usize,
    idle_timeout: Option<Duration>,
) -> std::io::Result<ReactorHandle> {
    listener.set_nonblocking(true)?;
    let mut pollers = Vec::with_capacity(loops);
    let mut inboxes = Vec::with_capacity(loops);
    for _ in 0..loops {
        pollers.push(Arc::new(Poller::new()?));
        inboxes.push(Arc::new(Mutex::new(Vec::new())));
    }
    let mut threads = Vec::with_capacity(loops);
    let mut listener = Some(listener);
    for index in 0..loops {
        let ctx = LoopCtx {
            shared: Arc::clone(&shared),
            poller: Arc::clone(&pollers[index]),
            inbox: Arc::clone(&inboxes[index]),
            listener: if index == 0 { listener.take() } else { None },
            peer_pollers: pollers.clone(),
            peer_inboxes: inboxes.clone(),
            index,
            idle_timeout,
        };
        threads.push(std::thread::spawn(move || event_loop(ctx)));
    }
    Ok(ReactorHandle { pollers, threads })
}

fn event_loop(ctx: LoopCtx) {
    let mut conns: HashMap<usize, Conn> = HashMap::new();
    // Key 0 is the listener; connection keys are never reused (a u64-ish
    // counter — reuse could misroute a stale readiness event).
    let mut next_key = KEY_LISTENER + 1;
    let mut rr = 0usize;
    let mut events = Vec::new();
    if let Some(listener) = &ctx.listener {
        if ctx
            .poller
            .add(listener.as_raw_fd(), Event::readable(KEY_LISTENER))
            .is_err()
        {
            return; // nothing can ever be accepted
        }
    }
    loop {
        if ctx.shared.stop.load(Ordering::SeqCst) {
            break;
        }
        let timeout = wait_timeout(&conns);
        events.clear();
        if ctx.poller.wait(&mut events, Some(timeout)).is_err() {
            break;
        }
        if ctx.shared.stop.load(Ordering::SeqCst) {
            break;
        }
        // Adopt connections handed off by the accepting loop.
        let handoff = std::mem::take(&mut *lock(&ctx.inbox));
        for stream in handoff {
            register_conn(&ctx, &mut conns, &mut next_key, stream);
        }
        for i in 0..events.len() {
            let ev = events[i];
            if ev.key == KEY_LISTENER {
                accept_ready(&ctx, &mut conns, &mut next_key, &mut rr);
                continue;
            }
            let Some(conn) = conns.get_mut(&ev.key) else {
                continue; // closed earlier this iteration
            };
            let mut alive = true;
            if ev.readable && alive {
                alive = on_readable(conn, &ctx.shared, ctx.idle_timeout);
            }
            if ev.writable && alive {
                alive = on_writable(conn, &ctx.shared, ctx.idle_timeout);
            }
            finish_event(&ctx.poller, &mut conns, ev.key, alive);
        }
        tick_settling(&ctx, &mut conns);
        reap_idle(&ctx, &mut conns);
    }
    // Shutdown: close every owned connection (and any not-yet-adopted
    // hand-offs), then exit; `ReportServer::shutdown` joins us.
    for (_, conn) in conns.drain() {
        let _ = conn.stream.shutdown(Shutdown::Both);
    }
    for stream in std::mem::take(&mut *lock(&ctx.inbox)) {
        let _ = stream.shutdown(Shutdown::Both);
    }
}

/// How long the next `wait` may block: the settle tick while any query is
/// pending, otherwise the idle-sweep tick (hand-offs and shutdown wake
/// the poller explicitly, so the bound is a safety net, not a latency).
fn wait_timeout(conns: &HashMap<usize, Conn>) -> Duration {
    if conns
        .values()
        .any(|c| matches!(c.phase, Phase::Settling(_)))
    {
        SETTLE_TICK
    } else {
        IDLE_TICK
    }
}

/// Drains the listener's accept backlog, dealing connections round-robin
/// across all loops. Never blocks: the listener is non-blocking, and a
/// hand-off is a vec push + notify.
fn accept_ready(
    ctx: &LoopCtx,
    conns: &mut HashMap<usize, Conn>,
    next_key: &mut usize,
    rr: &mut usize,
) {
    let Some(listener) = &ctx.listener else {
        return;
    };
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                let target = *rr % ctx.peer_inboxes.len();
                *rr += 1;
                if target == ctx.index {
                    register_conn(ctx, conns, next_key, stream);
                } else {
                    lock(&ctx.peer_inboxes[target]).push(stream);
                    let _ = ctx.peer_pollers[target].notify();
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => return,
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => return, // transient accept error; backlog retried on the next event
        }
    }
}

/// Takes ownership of an accepted socket: non-blocking, nodelay, fresh
/// state machine, read interest. A socket that cannot be registered is
/// dropped (closed) outright.
fn register_conn(
    ctx: &LoopCtx,
    conns: &mut HashMap<usize, Conn>,
    next_key: &mut usize,
    stream: TcpStream,
) {
    if stream.set_nonblocking(true).is_err() {
        return;
    }
    let _ = stream.set_nodelay(true);
    let key = *next_key;
    *next_key += 1;
    if ctx
        .poller
        .add(stream.as_raw_fd(), Event::readable(key))
        .is_err()
    {
        return;
    }
    let mut conn = Conn {
        stream,
        asm: FrameAssembler::new(),
        out: Vec::new(),
        out_pos: 0,
        phase: Phase::Handshake,
        tenant: 0,
        deadline: None,
        interest: (true, false),
    };
    conn.touch(ctx.idle_timeout);
    conns.insert(key, conn);
}

/// Reads as much as fairness allows, feeding the assembler and processing
/// completed frames. Returns `false` when the connection must close now.
fn on_readable(conn: &mut Conn, shared: &Shared, idle: Option<Duration>) -> bool {
    let mut buf = [0u8; READ_CHUNK];
    for _ in 0..MAX_READS_PER_EVENT {
        // One reply at a time: stop consuming input while a reply is
        // buffered or a query is settling (read interest is off then;
        // this also catches the transition mid-event).
        if !conn.out.is_empty() || !matches!(conn.phase, Phase::Handshake | Phase::Open) {
            return true;
        }
        match conn.stream.read(&mut buf) {
            Ok(0) => {
                // EOF. At a frame boundary it is a clean close; inside a
                // frame it is the typed truncation, answered like any
                // protocol violation (the peer may have only half-closed).
                return match conn.asm.eof_truncation() {
                    None => false,
                    Some(e) => {
                        protocol_violation(conn, &e.to_string());
                        true
                    }
                };
            }
            Ok(n) => {
                if let Err(e) = conn.asm.feed(&buf[..n]) {
                    protocol_violation(conn, &e.to_string());
                    return true;
                }
                shared.note_buffered(conn.asm.buffered_bytes());
                if !process_ready(conn, shared, idle) {
                    return false;
                }
                if n < buf.len() {
                    return true; // socket drained (TCP short read)
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => return true,
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => return false,
        }
    }
    true
}

/// Queues the typed `Reject` for a protocol violation and moves to
/// `Closing` — same reply-then-close the blocking engine performs. The
/// `handshake:` / `bad frame:` prefix matches the blocking engine's per
/// phase.
fn protocol_violation(conn: &mut Conn, detail: &str) {
    let message = match conn.phase {
        Phase::Handshake => format!("handshake: {detail}"),
        _ => format!("bad frame: {detail}"),
    };
    conn.queue_reply(&Frame::Reject {
        accepted: 0,
        message,
    });
    conn.phase = Phase::Closing;
}

/// Applies completed frames while the connection can reply (out buffer
/// empty, not settling). Each reply is flushed eagerly — most complete in
/// one write and the loop moves straight to the next pipelined frame.
/// Returns `false` when the connection must close now.
fn process_ready(conn: &mut Conn, shared: &Shared, idle: Option<Duration>) -> bool {
    while conn.out.is_empty() {
        match conn.phase {
            Phase::Handshake => {
                let Some(frame) = conn.asm.next_frame() else {
                    return true;
                };
                conn.touch(idle);
                match conn::apply_hello(shared, frame) {
                    Ok((tenant, ack)) => {
                        conn.tenant = tenant;
                        conn.queue_reply(&ack);
                        conn.phase = Phase::Open;
                    }
                    Err(reject) => {
                        conn.queue_reply(&reject);
                        conn.phase = Phase::Closing;
                    }
                }
            }
            Phase::Open => {
                let Some(frame) = conn.asm.next_frame() else {
                    return true;
                };
                conn.touch(idle);
                match conn::apply_frame(shared, conn.tenant, frame) {
                    FrameAction::Reply(reply) => conn.queue_reply(&reply),
                    FrameAction::Settle(pending) => conn.phase = Phase::Settling(pending),
                }
            }
            Phase::Settling(_) | Phase::Closing => return true,
        }
        if !conn.out.is_empty() {
            match conn.flush_out() {
                Ok(true) => {
                    if matches!(conn.phase, Phase::Closing) {
                        return false; // reject flushed; close now
                    }
                }
                Ok(false) => return true, // socket full; write interest arms
                Err(_) => return false,
            }
        }
    }
    true
}

/// Drains the write buffer on writability; a completed flush either closes
/// (`Closing`) or resumes frame processing. Returns `false` to close.
fn on_writable(conn: &mut Conn, shared: &Shared, idle: Option<Duration>) -> bool {
    match conn.flush_out() {
        Ok(true) => match conn.phase {
            Phase::Closing => false,
            _ => process_ready(conn, shared, idle),
        },
        Ok(false) => true,
        Err(_) => false,
    }
}

/// Re-polls every settling connection's watermark against the fold
/// frontier; settled ones get their reply queued (and flushed) or hang up
/// on shutdown.
fn tick_settling(ctx: &LoopCtx, conns: &mut HashMap<usize, Conn>) {
    let keys: Vec<usize> = conns
        .iter()
        .filter(|(_, c)| matches!(c.phase, Phase::Settling(_)))
        .map(|(&k, _)| k)
        .collect();
    for key in keys {
        let conn = conns.get_mut(&key).expect("settling key just collected");
        let Phase::Settling(pending) = &conn.phase else {
            continue;
        };
        let Some(outcome) = ctx
            .shared
            .tenant(pending.tenant)
            .queue
            .poll_processed(pending.watermark)
        else {
            continue; // frontier still short of the watermark
        };
        let alive = match conn::settle_reply(&ctx.shared, pending, outcome) {
            Some(reply) => {
                conn.phase = Phase::Open;
                conn.queue_reply(&reply);
                match conn.flush_out() {
                    Ok(true) => process_ready(conn, &ctx.shared, ctx.idle_timeout),
                    Ok(false) => true,
                    Err(_) => false,
                }
            }
            None => false, // shutdown mid-query: drop without a reply
        };
        finish_event(&ctx.poller, conns, key, alive);
    }
}

/// Closes connections whose idle deadline passed without a completed
/// frame — silent peers and slow-loris drips alike. Settling connections
/// are exempt: their latency is the server's own fold frontier, not the
/// peer's.
fn reap_idle(ctx: &LoopCtx, conns: &mut HashMap<usize, Conn>) {
    if ctx.idle_timeout.is_none() {
        return;
    }
    let now = Instant::now();
    let expired: Vec<usize> = conns
        .iter()
        .filter(|(_, c)| {
            !matches!(c.phase, Phase::Settling(_)) && c.deadline.is_some_and(|d| now >= d)
        })
        .map(|(&k, _)| k)
        .collect();
    for key in expired {
        ctx.shared.reaped.fetch_add(1, Ordering::SeqCst);
        teardown(&ctx.poller, conns, key);
    }
}

/// Post-event bookkeeping: close a dead connection, or re-register the
/// interest its state now wants (read while it can accept a frame, write
/// while a reply is buffered).
fn finish_event(poller: &Poller, conns: &mut HashMap<usize, Conn>, key: usize, alive: bool) {
    if !alive {
        teardown(poller, conns, key);
        return;
    }
    let Some(conn) = conns.get_mut(&key) else {
        return;
    };
    if matches!(conn.phase, Phase::Closing) && conn.out.is_empty() {
        teardown(poller, conns, key);
        return;
    }
    let want = (
        conn.out.is_empty() && matches!(conn.phase, Phase::Handshake | Phase::Open),
        !conn.out.is_empty(),
    );
    if want != conn.interest {
        let ev = Event {
            key,
            readable: want.0,
            writable: want.1,
        };
        if poller.modify(conn.stream.as_raw_fd(), ev).is_ok() {
            conn.interest = want;
        }
    }
}

/// Unregisters and closes one connection.
fn teardown(poller: &Poller, conns: &mut HashMap<usize, Conn>, key: usize) {
    if let Some(conn) = conns.remove(&key) {
        let _ = poller.delete(conn.stream.as_raw_fd());
        let _ = conn.stream.shutdown(Shutdown::Both);
    }
}
