//! The length-prefixed binary frame codec of the ingestion service.
//!
//! Every message on the wire — in either direction — is one *frame*:
//!
//! ```text
//! frame   := tag(u8)  payload_len(u32 LE)  payload
//! ```
//!
//! The payload grammar is per-tag (see [`Frame`]); all integers are
//! little-endian, floats travel as their IEEE-754 bit patterns
//! ([`f64::to_bits`]), so estimates received over TCP are *bit-identical*
//! to the server's local computation. Reports are framed in their native
//! compact wire shape ([`ReportData`]): bit vectors are packed 8 slots per
//! byte, categorical values are one `u64`, OLH reports are the `(seed,
//! value)` pair, and subset-selection reports are the item list — the
//! transport twin of the in-memory shapes introduced in
//! [`idldp_core::report`].
//!
//! Decoding is *total*: any byte sequence either parses to a frame or
//! returns a typed [`FrameError`] — truncated input, an oversized length
//! prefix ([`MAX_PAYLOAD_LEN`]), an unknown tag, or malformed payload
//! content. Nothing panics and nothing allocates proportionally to a
//! length field before the bytes backing it have arrived; the one place
//! decoding inflates received bytes — unpacking a bit report to one byte
//! per slot — is bounded by the [`MAX_BIT_REPORT_SLOTS`] width cap (the
//! property suite in `tests/proptest_frames.rs` hammers all of this with
//! arbitrary mutations).

use idldp_core::report::{ReportData, ReportShape};
use std::io::{Read, Write};

/// Protocol version negotiated in [`Frame::Hello`]. Bump on any grammar
/// change; servers reject other versions with [`Frame::Reject`].
///
/// Version 2 added the pinned cardinality `k` to the item-set shape in
/// [`Frame::Hello`], so handshakes agree on the exact set size
/// subset-selection reports must carry.
///
/// Version 3 added the distributed-aggregation surface: the server's
/// run-identity line in [`Frame::HelloAck`] (so a coordinator can refuse
/// collectors running a different mechanism/m/ε/seed), the raw-count
/// snapshot fetch ([`Frame::SnapshotQuery`] / [`Frame::Snapshot`]), and
/// chunked estimate replies ([`Frame::EstimatesPart`]) for domains whose
/// estimate vector exceeds one frame.
///
/// Version 4 added tenancy: a trailing tenant-name string in
/// [`Frame::Hello`] selects which of the server's streams the connection
/// addresses, and the [`Frame::HelloAck`] `run_line` is that tenant's
/// run identity. The tenant field is appended *after* every v3 field and
/// is only encoded when `version >= 4`, so a v3 `Hello` is byte-identical
/// under both codecs — servers still accept
/// [`LEGACY_PROTOCOL_VERSION`]-speaking clients and map them to the
/// default tenant.
pub const PROTOCOL_VERSION: u32 = 4;

/// The oldest protocol version servers still accept (v3: the pre-tenancy
/// grammar). A v3 `Hello` carries no tenant name and lands on the default
/// tenant; every reply frame it can draw is grammatically unchanged, so
/// v3 clients interoperate byte-for-byte.
pub const LEGACY_PROTOCOL_VERSION: u32 = 3;

/// Elements per chunk of a chunked reply ([`Frame::EstimatesPart`] /
/// [`Frame::Snapshot`]): 2²⁰ × 8-byte elements = 8 MiB of payload per
/// part, comfortably under [`MAX_PAYLOAD_LEN`].
pub const CHUNK_ELEMS: usize = 1 << 20;

/// Hard ceiling on a frame's payload length (16 MiB). A length prefix
/// above this is rejected *before* any allocation, so a corrupt or hostile
/// peer cannot make the decoder reserve unbounded memory.
pub const MAX_PAYLOAD_LEN: usize = 16 << 20;

/// Hard ceiling on the slot count of one packed bit report (2²³ slots =
/// 1 MiB on the wire, 8 MiB decoded). The packed wire form is 8× smaller
/// than the decoded one-byte-per-slot `Vec<u8>`, so without a width cap a
/// 16 MiB frame claiming ~134M slots would make the decoder allocate
/// ~134 MB — this cap bounds that amplification per report. It is far
/// wider than any realistic unary-encoding domain; servers refuse to
/// start for a bit-vector mechanism wider than this.
pub const MAX_BIT_REPORT_SLOTS: usize = 1 << 23;

/// Typed decode/transport errors. Every malformed input maps to one of
/// these — the codec never panics.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FrameError {
    /// The input ended before the frame did.
    Truncated {
        /// Bytes the decoder still needed.
        needed: usize,
        /// Bytes actually available.
        available: usize,
    },
    /// The length prefix exceeds [`MAX_PAYLOAD_LEN`].
    Oversized {
        /// The declared payload length.
        len: usize,
        /// The allowed maximum.
        max: usize,
    },
    /// The frame tag byte is not part of the protocol.
    UnknownTag(u8),
    /// The payload violates its tag's grammar (bad count, bad UTF-8,
    /// nonzero padding bits, trailing bytes, …).
    Malformed(String),
    /// An I/O error while reading or writing a socket.
    Io(String),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Truncated { needed, available } => {
                write!(f, "truncated frame: needed {needed} bytes, had {available}")
            }
            FrameError::Oversized { len, max } => {
                write!(
                    f,
                    "oversized frame: payload of {len} bytes exceeds max {max}"
                )
            }
            FrameError::UnknownTag(tag) => write!(f, "unknown frame tag 0x{tag:02x}"),
            FrameError::Malformed(detail) => write!(f, "malformed frame: {detail}"),
            FrameError::Io(detail) => write!(f, "frame i/o: {detail}"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<std::io::Error> for FrameError {
    fn from(e: std::io::Error) -> Self {
        FrameError::Io(e.to_string())
    }
}

/// One protocol message. Client→server frames: `Hello`, `Reports`,
/// `Query`, `TopKQuery`, `Checkpoint`, `SnapshotQuery`. Server→client
/// frames: `HelloAck`, `Ingested`, `Busy`, `Estimates`, `EstimatesPart`,
/// `Candidates`, `CheckpointAck`, `Snapshot`, `Reject`. The codec itself
/// is direction-agnostic — both sides share it, so there is exactly one
/// implementation of the grammar.
#[derive(Clone, Debug, PartialEq)]
pub enum Frame {
    /// Connection handshake: the client announces the mechanism
    /// configuration its reports were perturbed under. The server accepts
    /// ([`Frame::HelloAck`]) only if the config matches its own mechanism —
    /// mixing reports from different mechanisms would silently corrupt the
    /// accumulated counts.
    Hello {
        /// Must equal [`PROTOCOL_VERSION`].
        version: u32,
        /// The mechanism's stable kind name
        /// ([`idldp_core::mechanism::Mechanism::kind`]).
        kind: String,
        /// The wire shape the client will send.
        shape: ReportShape,
        /// The report width
        /// ([`idldp_core::mechanism::Mechanism::report_len`]).
        report_len: u64,
        /// The mechanism's plain-LDP budget as raw IEEE-754 bits
        /// ([`idldp_core::mechanism::Mechanism::ldp_epsilon`]). Two
        /// mechanisms of the same kind and width but different ε produce
        /// incompatible counts, so the server refuses the mismatch just
        /// like its checkpoint run-identity stamp does.
        ldp_eps_bits: u64,
        /// The tenant (stream) this connection addresses — on the wire
        /// only when `version >= 4`, appended after every v3 field so the
        /// v3 byte layout is unchanged. Empty means the default tenant
        /// (what every v3 client gets, since its `Hello` has no tenant
        /// field to decode).
        tenant: String,
    },
    /// Handshake accepted; `users` reports are already accumulated
    /// server-side (nonzero after a checkpoint restore).
    HelloAck {
        /// Users absorbed so far.
        users: u64,
        /// The server's run-identity line (the same stamp its checkpoints
        /// carry): mechanism kind, shape, width, ε, plus the CLI config
        /// stamp (`mechanism=… m=… eps=… seed=…`) when one was set. A
        /// coordinator compares these lines across collectors and refuses
        /// a mismatched fleet — merged counts from different configs would
        /// be silently meaningless.
        run_line: String,
    },
    /// A batch of perturbed reports in the mechanism's native wire shape.
    Reports(Vec<ReportData>),
    /// Every report of the batch was accepted into the ingest queue.
    Ingested {
        /// Number of reports accepted (= the batch size).
        accepted: u64,
    },
    /// The bounded ingest queue filled up mid-batch: the first `accepted`
    /// reports were queued, the rest were *not* — the client must resend
    /// them. This is the backpressure signal; the server never silently
    /// drops an accepted report.
    Busy {
        /// Reports accepted before the queue filled.
        accepted: u64,
    },
    /// Request calibrated frequency estimates. The server first waits for
    /// every previously accepted report to be folded, so the reply
    /// reflects all reports the client has pushed.
    Query,
    /// Estimates reply. `estimates` is empty while `users == 0`.
    Estimates {
        /// Users reflected in the estimates.
        users: u64,
        /// Per-item calibrated frequency estimates (exact IEEE-754 bits).
        estimates: Vec<f64>,
    },
    /// Request the current top-`k` heavy-hitter candidates.
    TopKQuery {
        /// How many candidates to return.
        k: u64,
    },
    /// Top-k reply: `(item, estimate)` pairs, largest estimate first, ties
    /// toward the smaller item — the canonical
    /// [`idldp_num::vecops::top_k_indices`] ranking, identical to batch
    /// `identify_top_k`.
    Candidates {
        /// Users reflected in the candidate estimates.
        users: u64,
        /// Ranked `(item, estimate)` pairs.
        items: Vec<(u64, f64)>,
    },
    /// Ask the server to persist its accumulator snapshot to its
    /// configured checkpoint path (atomic temp-file + rename).
    Checkpoint,
    /// Checkpoint written; `users` reports are covered by it.
    CheckpointAck {
        /// Users covered by the written checkpoint.
        users: u64,
    },
    /// Typed refusal: handshake mismatch, invalid report, or an
    /// unsupported request. `accepted` reports earlier in the same batch
    /// were still queued (zero for non-ingest refusals).
    Reject {
        /// Reports of the offending batch accepted before the refusal.
        accepted: u64,
        /// Human-readable reason.
        message: String,
    },
    /// Request the server's raw accumulator counts (the
    /// `AccumulatorSnapshot` body). Integer counts merge exactly under any
    /// partition, so this — not the calibrated float estimates — is what a
    /// coordinator fetches from each collector before estimating once over
    /// the merged vector. Linearized like [`Frame::Query`]: the reply
    /// reflects every report accepted before it.
    SnapshotQuery,
    /// One chunk of a snapshot reply. `total` is the full count-vector
    /// length; `offset` is where this chunk starts. A snapshot that fits
    /// one frame arrives as a single chunk (`offset == 0`,
    /// `counts.len() == total`); larger ones arrive as contiguous chunks
    /// in order, each under [`MAX_PAYLOAD_LEN`].
    Snapshot {
        /// Users reflected in the counts.
        users: u64,
        /// Length of the complete count vector.
        total: u64,
        /// Element offset of this chunk.
        offset: u64,
        /// This chunk's counts.
        counts: Vec<u64>,
    },
    /// One chunk of an estimates reply that exceeds one frame. Same
    /// header as [`Frame::Snapshot`]; the client reassembles contiguous
    /// chunks into the full vector. Replies that fit one frame still use
    /// plain [`Frame::Estimates`], so small-domain wire bytes are
    /// unchanged from protocol 2.
    EstimatesPart {
        /// Users reflected in the estimates.
        users: u64,
        /// Length of the complete estimate vector.
        total: u64,
        /// Element offset of this chunk.
        offset: u64,
        /// This chunk's estimates (exact IEEE-754 bits).
        estimates: Vec<f64>,
    },
}

const TAG_HELLO: u8 = 0x01;
const TAG_HELLO_ACK: u8 = 0x02;
const TAG_REPORTS: u8 = 0x03;
const TAG_INGESTED: u8 = 0x04;
const TAG_BUSY: u8 = 0x05;
const TAG_QUERY: u8 = 0x06;
const TAG_ESTIMATES: u8 = 0x07;
const TAG_TOP_K_QUERY: u8 = 0x08;
const TAG_CANDIDATES: u8 = 0x09;
const TAG_CHECKPOINT: u8 = 0x0A;
const TAG_CHECKPOINT_ACK: u8 = 0x0B;
const TAG_REJECT: u8 = 0x0C;
const TAG_SNAPSHOT_QUERY: u8 = 0x0D;
const TAG_SNAPSHOT: u8 = 0x0E;
const TAG_ESTIMATES_PART: u8 = 0x0F;

const SHAPE_BITS: u8 = 0;
const SHAPE_VALUE: u8 = 1;
const SHAPE_HASHED: u8 = 2;
const SHAPE_ITEM_SET: u8 = 3;

const REPORT_BITS: u8 = 0;
const REPORT_VALUE: u8 = 1;
const REPORT_HASHED: u8 = 2;
const REPORT_ITEM_SET: u8 = 3;

/// Bounds-checked little-endian reader over a payload slice. All `read_*`
/// methods return [`FrameError::Truncated`] instead of slicing past the
/// end, which is what makes the decoder total.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], FrameError> {
        if self.remaining() < n {
            return Err(FrameError::Truncated {
                needed: n,
                available: self.remaining(),
            });
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    fn read_u8(&mut self) -> Result<u8, FrameError> {
        Ok(self.take(1)?[0])
    }

    fn read_u32(&mut self) -> Result<u32, FrameError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    fn read_u64(&mut self) -> Result<u64, FrameError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    fn read_f64(&mut self) -> Result<f64, FrameError> {
        Ok(f64::from_bits(self.read_u64()?))
    }

    /// A `u64` that must fit the platform's `usize`.
    fn read_len(&mut self, what: &str) -> Result<usize, FrameError> {
        let v = self.read_u64()?;
        usize::try_from(v).map_err(|_| FrameError::Malformed(format!("{what} {v} overflows usize")))
    }

    /// An element count whose elements occupy at least `min_elem` bytes
    /// each — bounded by the remaining payload, so `Vec::with_capacity`
    /// can never reserve more than the frame actually carries.
    fn read_count(&mut self, what: &str, min_elem: usize) -> Result<usize, FrameError> {
        let count = self.read_u32()? as usize;
        let bound = self.remaining() / min_elem.max(1);
        if count > bound {
            return Err(FrameError::Malformed(format!(
                "{what} count {count} exceeds what the payload can hold ({bound})"
            )));
        }
        Ok(count)
    }

    fn read_string(&mut self, what: &str) -> Result<String, FrameError> {
        let len = self.read_count(what, 1)?;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| FrameError::Malformed(format!("{what} is not valid UTF-8")))
    }

    fn finish(self, what: &str) -> Result<(), FrameError> {
        if self.remaining() != 0 {
            return Err(FrameError::Malformed(format!(
                "{what}: {} trailing payload bytes",
                self.remaining()
            )));
        }
        Ok(())
    }
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_string(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

fn put_shape(out: &mut Vec<u8>, shape: ReportShape) {
    match shape {
        ReportShape::Bits => out.push(SHAPE_BITS),
        ReportShape::Value => out.push(SHAPE_VALUE),
        ReportShape::Hashed { range } => {
            out.push(SHAPE_HASHED);
            put_u64(out, range as u64);
        }
        ReportShape::ItemSet { k } => {
            out.push(SHAPE_ITEM_SET);
            put_u64(out, k as u64);
        }
    }
}

fn read_shape(c: &mut Cursor<'_>) -> Result<ReportShape, FrameError> {
    match c.read_u8()? {
        SHAPE_BITS => Ok(ReportShape::Bits),
        SHAPE_VALUE => Ok(ReportShape::Value),
        SHAPE_HASHED => Ok(ReportShape::Hashed {
            range: c.read_len("hash range")?,
        }),
        SHAPE_ITEM_SET => Ok(ReportShape::ItemSet {
            k: c.read_len("item-set cardinality")?,
        }),
        other => Err(FrameError::Malformed(format!("unknown shape tag {other}"))),
    }
}

/// Reads the `(total, offset)` header shared by the chunked reply frames.
fn read_chunk_header(c: &mut Cursor<'_>) -> Result<(u64, u64), FrameError> {
    Ok((c.read_u64()?, c.read_u64()?))
}

/// Rejects a chunk whose claimed span falls outside its own `total` —
/// keeps non-contiguity the *only* invalid state a reassembling client
/// has to detect.
fn check_chunk_bounds(what: &str, total: u64, offset: u64, count: usize) -> Result<(), FrameError> {
    let end = offset.checked_add(count as u64);
    if end.is_none_or(|end| end > total) {
        return Err(FrameError::Malformed(format!(
            "{what} at offset {offset} with {count} elements overruns total {total}"
        )));
    }
    Ok(())
}

/// Splits an estimate reply into wire frames: one plain
/// [`Frame::Estimates`] when it fits a frame (byte-identical to the
/// protocol-2 reply for every small domain), otherwise a sequence of
/// contiguous [`Frame::EstimatesPart`] chunks of [`CHUNK_ELEMS`] elements.
/// Both connection engines and the coordinator encode replies through
/// this, so chunking behaves identically everywhere.
pub fn estimates_reply_frames(users: u64, estimates: &[f64]) -> Vec<Frame> {
    let whole = Frame::Estimates {
        users,
        estimates: Vec::new(),
    };
    if whole.encoded_payload_len() + 8 * estimates.len() <= MAX_PAYLOAD_LEN {
        return vec![Frame::Estimates {
            users,
            estimates: estimates.to_vec(),
        }];
    }
    let total = estimates.len() as u64;
    estimates
        .chunks(CHUNK_ELEMS)
        .enumerate()
        .map(|(i, chunk)| Frame::EstimatesPart {
            users,
            total,
            offset: (i * CHUNK_ELEMS) as u64,
            estimates: chunk.to_vec(),
        })
        .collect()
}

/// Splits a raw-count snapshot reply into contiguous [`Frame::Snapshot`]
/// chunks (a single chunk when it fits one frame). Unlike estimates there
/// is no unchunked legacy form — `Snapshot` always carries the
/// `(total, offset)` header.
pub fn snapshot_reply_frames(users: u64, counts: &[u64]) -> Vec<Frame> {
    let total = counts.len() as u64;
    if counts.is_empty() {
        return vec![Frame::Snapshot {
            users,
            total,
            offset: 0,
            counts: Vec::new(),
        }];
    }
    counts
        .chunks(CHUNK_ELEMS)
        .enumerate()
        .map(|(i, chunk)| Frame::Snapshot {
            users,
            total,
            offset: (i * CHUNK_ELEMS) as u64,
            counts: chunk.to_vec(),
        })
        .collect()
}

/// Assembles header + payload. The `u32` length prefix is a hard
/// invariant (a 4 GiB frame is unconstructible through the public
/// senders, which split or refuse first).
fn frame_bytes(tag: u8, payload: Vec<u8>) -> Vec<u8> {
    assert!(
        u32::try_from(payload.len()).is_ok(),
        "frame payload exceeds the u32 length prefix"
    );
    let mut out = Vec::with_capacity(5 + payload.len());
    out.push(tag);
    put_u32(&mut out, payload.len() as u32);
    out.extend_from_slice(&payload);
    out
}

/// The [`Frame::Reports`] payload built straight from a slice.
fn reports_payload(reports: &[ReportData]) -> Vec<u8> {
    let mut out = Vec::new();
    put_u32(&mut out, reports.len() as u32);
    for r in reports {
        put_report(&mut out, r);
    }
    out
}

/// Encodes a [`Frame::Reports`] frame directly from a borrowed slice —
/// the sender-side hot path, sparing the clone that building an owned
/// [`Frame::Reports`] would force on every (re)send.
///
/// # Panics
/// Panics on a bit report wider than [`MAX_BIT_REPORT_SLOTS`] or with a
/// slot outside 0/1 — no compliant peer could decode the former, and the
/// packed form cannot represent the latter; callers that take reports
/// from untrusted input check first (as
/// [`crate::client::ReportClient::push`] does, returning a typed error).
pub fn encode_reports_frame(reports: &[ReportData]) -> Vec<u8> {
    frame_bytes(TAG_REPORTS, reports_payload(reports))
}

/// Exact encoded size of one report inside a [`Frame::Reports`] payload —
/// what senders use to pack batches under [`MAX_PAYLOAD_LEN`] without
/// encoding twice.
pub fn encoded_report_len(report: &ReportData) -> usize {
    match report {
        ReportData::Bits(bits) => 1 + 4 + bits.len().div_ceil(8),
        ReportData::Value(_) => 1 + 8,
        ReportData::Hashed { .. } => 1 + 8 + 8,
        ReportData::ItemSet(items) => 1 + 4 + 8 * items.len(),
    }
}

/// Encodes one report in its compact wire form (bit vectors packed 8 slots
/// per byte, LSB first). Like the `u32` length prefix in [`frame_bytes`],
/// the [`MAX_BIT_REPORT_SLOTS`] width cap is a hard encoder invariant: an
/// over-cap bit report would be rejected by every compliant decoder, so
/// it must be refused *before* the wire (`ReportClient::push` returns the
/// typed error first; a server never sends reports).
fn put_report(out: &mut Vec<u8>, report: &ReportData) {
    match report {
        ReportData::Bits(bits) => {
            assert!(
                bits.len() <= MAX_BIT_REPORT_SLOTS,
                "bit report of {} slots exceeds MAX_BIT_REPORT_SLOTS ({MAX_BIT_REPORT_SLOTS})",
                bits.len()
            );
            out.push(REPORT_BITS);
            put_u32(out, bits.len() as u32);
            let mut byte = 0u8;
            for (i, &bit) in bits.iter().enumerate() {
                // Slots outside 0/1 are unrepresentable in the packed
                // form; coercing them would launder a report the local
                // fold path (`Report::validate`) rejects.
                assert!(bit <= 1, "bit report slots must be 0/1 (got {bit})");
                if bit != 0 {
                    byte |= 1 << (i % 8);
                }
                if i % 8 == 7 {
                    out.push(byte);
                    byte = 0;
                }
            }
            if !bits.len().is_multiple_of(8) {
                out.push(byte);
            }
        }
        ReportData::Value(v) => {
            out.push(REPORT_VALUE);
            put_u64(out, *v as u64);
        }
        ReportData::Hashed { seed, value } => {
            out.push(REPORT_HASHED);
            put_u64(out, *seed);
            put_u64(out, *value as u64);
        }
        ReportData::ItemSet(items) => {
            out.push(REPORT_ITEM_SET);
            put_u32(out, items.len() as u32);
            for &item in items {
                put_u64(out, item as u64);
            }
        }
    }
}

fn read_report(c: &mut Cursor<'_>) -> Result<ReportData, FrameError> {
    match c.read_u8()? {
        REPORT_BITS => {
            let slots = c.read_u32()? as usize;
            // Checked before the truncation test (and before any
            // allocation): packed bits expand 8× on decode, so the width
            // cap is what bounds a report's decoded footprint.
            if slots > MAX_BIT_REPORT_SLOTS {
                return Err(FrameError::Malformed(format!(
                    "bit report claims {slots} slots, over the {MAX_BIT_REPORT_SLOTS}-slot cap"
                )));
            }
            let bytes_needed = slots.div_ceil(8);
            if bytes_needed > c.remaining() {
                return Err(FrameError::Truncated {
                    needed: bytes_needed,
                    available: c.remaining(),
                });
            }
            let packed = c.take(bytes_needed)?;
            let mut bits = vec![0u8; slots];
            for (i, bit) in bits.iter_mut().enumerate() {
                *bit = (packed[i / 8] >> (i % 8)) & 1;
            }
            // Padding bits above `slots` must be zero, so every encoding of
            // a report is canonical (encode ∘ decode is the identity on
            // bytes too, not just on reports).
            if !slots.is_multiple_of(8) {
                let last = packed[bytes_needed - 1];
                if last >> (slots % 8) != 0 {
                    return Err(FrameError::Malformed(
                        "nonzero padding bits in packed bit report".into(),
                    ));
                }
            }
            Ok(ReportData::Bits(bits))
        }
        REPORT_VALUE => Ok(ReportData::Value(c.read_len("report value")?)),
        REPORT_HASHED => Ok(ReportData::Hashed {
            seed: c.read_u64()?,
            value: c.read_len("hashed report value")?,
        }),
        REPORT_ITEM_SET => {
            let count = c.read_count("item set", 8)?;
            let mut items = Vec::with_capacity(count);
            for _ in 0..count {
                items.push(c.read_len("item-set member")?);
            }
            Ok(ReportData::ItemSet(items))
        }
        other => Err(FrameError::Malformed(format!("unknown report tag {other}"))),
    }
}

impl Frame {
    fn tag(&self) -> u8 {
        match self {
            Frame::Hello { .. } => TAG_HELLO,
            Frame::HelloAck { .. } => TAG_HELLO_ACK,
            Frame::Reports(_) => TAG_REPORTS,
            Frame::Ingested { .. } => TAG_INGESTED,
            Frame::Busy { .. } => TAG_BUSY,
            Frame::Query => TAG_QUERY,
            Frame::Estimates { .. } => TAG_ESTIMATES,
            Frame::TopKQuery { .. } => TAG_TOP_K_QUERY,
            Frame::Candidates { .. } => TAG_CANDIDATES,
            Frame::Checkpoint => TAG_CHECKPOINT,
            Frame::CheckpointAck { .. } => TAG_CHECKPOINT_ACK,
            Frame::Reject { .. } => TAG_REJECT,
            Frame::SnapshotQuery => TAG_SNAPSHOT_QUERY,
            Frame::Snapshot { .. } => TAG_SNAPSHOT,
            Frame::EstimatesPart { .. } => TAG_ESTIMATES_PART,
        }
    }

    fn payload(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Frame::Hello {
                version,
                kind,
                shape,
                report_len,
                ldp_eps_bits,
                tenant,
            } => {
                put_u32(&mut out, *version);
                put_string(&mut out, kind);
                put_shape(&mut out, *shape);
                put_u64(&mut out, *report_len);
                put_u64(&mut out, *ldp_eps_bits);
                if *version >= PROTOCOL_VERSION {
                    put_string(&mut out, tenant);
                }
            }
            Frame::Ingested { accepted: users }
            | Frame::Busy { accepted: users }
            | Frame::CheckpointAck { users } => put_u64(&mut out, *users),
            Frame::HelloAck { users, run_line } => {
                put_u64(&mut out, *users);
                put_string(&mut out, run_line);
            }
            Frame::Reports(reports) => out = reports_payload(reports),
            Frame::Query | Frame::Checkpoint | Frame::SnapshotQuery => {}
            Frame::Estimates { users, estimates } => {
                put_u64(&mut out, *users);
                put_u32(&mut out, estimates.len() as u32);
                for e in estimates {
                    put_u64(&mut out, e.to_bits());
                }
            }
            Frame::TopKQuery { k } => put_u64(&mut out, *k),
            Frame::Candidates { users, items } => {
                put_u64(&mut out, *users);
                put_u32(&mut out, items.len() as u32);
                for (item, estimate) in items {
                    put_u64(&mut out, *item);
                    put_u64(&mut out, estimate.to_bits());
                }
            }
            Frame::Reject { accepted, message } => {
                put_u64(&mut out, *accepted);
                put_string(&mut out, message);
            }
            Frame::Snapshot {
                users,
                total,
                offset,
                counts,
            } => {
                put_u64(&mut out, *users);
                put_u64(&mut out, *total);
                put_u64(&mut out, *offset);
                put_u32(&mut out, counts.len() as u32);
                for c in counts {
                    put_u64(&mut out, *c);
                }
            }
            Frame::EstimatesPart {
                users,
                total,
                offset,
                estimates,
            } => {
                put_u64(&mut out, *users);
                put_u64(&mut out, *total);
                put_u64(&mut out, *offset);
                put_u32(&mut out, estimates.len() as u32);
                for e in estimates {
                    put_u64(&mut out, e.to_bits());
                }
            }
        }
        out
    }

    fn parse_payload(tag: u8, payload: &[u8]) -> Result<Frame, FrameError> {
        let mut c = Cursor::new(payload);
        let frame = match tag {
            TAG_HELLO => {
                let version = c.read_u32()?;
                let kind = c.read_string("mechanism kind")?;
                let shape = read_shape(&mut c)?;
                let report_len = c.read_u64()?;
                let ldp_eps_bits = c.read_u64()?;
                // The tenant field exists only from v4 on; a v3 payload
                // ends exactly here and maps to the default (empty) tenant.
                let tenant = if version >= PROTOCOL_VERSION {
                    c.read_string("tenant name")?
                } else {
                    String::new()
                };
                Frame::Hello {
                    version,
                    kind,
                    shape,
                    report_len,
                    ldp_eps_bits,
                    tenant,
                }
            }
            TAG_HELLO_ACK => Frame::HelloAck {
                users: c.read_u64()?,
                run_line: c.read_string("run-identity line")?,
            },
            TAG_REPORTS => {
                // Every report is at least 5 bytes on the wire (tag + the
                // 4-byte count of an empty bits/item-set body). The
                // reservation is additionally clamped: an in-memory
                // `ReportData` is ~6× the minimum wire size, so trusting a
                // hostile count even within the payload bound would
                // reserve far more than the bytes received — the Vec
                // grows to the true count as reports actually parse.
                let count = c.read_count("report batch", 5)?;
                let mut reports = Vec::with_capacity(count.min(1 << 16));
                for _ in 0..count {
                    reports.push(read_report(&mut c)?);
                }
                Frame::Reports(reports)
            }
            TAG_INGESTED => Frame::Ingested {
                accepted: c.read_u64()?,
            },
            TAG_BUSY => Frame::Busy {
                accepted: c.read_u64()?,
            },
            TAG_QUERY => Frame::Query,
            TAG_ESTIMATES => {
                let users = c.read_u64()?;
                let count = c.read_count("estimate vector", 8)?;
                let mut estimates = Vec::with_capacity(count);
                for _ in 0..count {
                    estimates.push(c.read_f64()?);
                }
                Frame::Estimates { users, estimates }
            }
            TAG_TOP_K_QUERY => Frame::TopKQuery { k: c.read_u64()? },
            TAG_CANDIDATES => {
                let users = c.read_u64()?;
                let count = c.read_count("candidate list", 16)?;
                let mut items = Vec::with_capacity(count);
                for _ in 0..count {
                    let item = c.read_u64()?;
                    items.push((item, c.read_f64()?));
                }
                Frame::Candidates { users, items }
            }
            TAG_CHECKPOINT => Frame::Checkpoint,
            TAG_CHECKPOINT_ACK => Frame::CheckpointAck {
                users: c.read_u64()?,
            },
            TAG_REJECT => Frame::Reject {
                accepted: c.read_u64()?,
                message: c.read_string("reject message")?,
            },
            TAG_SNAPSHOT_QUERY => Frame::SnapshotQuery,
            TAG_SNAPSHOT => {
                let users = c.read_u64()?;
                let (total, offset) = read_chunk_header(&mut c)?;
                let count = c.read_count("snapshot chunk", 8)?;
                check_chunk_bounds("snapshot chunk", total, offset, count)?;
                let mut counts = Vec::with_capacity(count);
                for _ in 0..count {
                    counts.push(c.read_u64()?);
                }
                Frame::Snapshot {
                    users,
                    total,
                    offset,
                    counts,
                }
            }
            TAG_ESTIMATES_PART => {
                let users = c.read_u64()?;
                let (total, offset) = read_chunk_header(&mut c)?;
                let count = c.read_count("estimates chunk", 8)?;
                check_chunk_bounds("estimates chunk", total, offset, count)?;
                let mut estimates = Vec::with_capacity(count);
                for _ in 0..count {
                    estimates.push(c.read_f64()?);
                }
                Frame::EstimatesPart {
                    users,
                    total,
                    offset,
                    estimates,
                }
            }
            other => return Err(FrameError::UnknownTag(other)),
        };
        c.finish("frame payload")?;
        Ok(frame)
    }

    /// Encodes the frame — header and payload — into bytes.
    pub fn encode(&self) -> Vec<u8> {
        frame_bytes(self.tag(), self.payload())
    }

    /// Exact byte length of this frame's payload, computed arithmetically
    /// (the per-shape twin of [`encoded_report_len`]) — what
    /// [`Self::fits_one_frame`] uses so that sizing a reply never builds
    /// and discards the actual payload bytes.
    pub fn encoded_payload_len(&self) -> usize {
        fn shape_len(shape: ReportShape) -> usize {
            match shape {
                ReportShape::Hashed { .. } | ReportShape::ItemSet { .. } => 1 + 8,
                ReportShape::Bits | ReportShape::Value => 1,
            }
        }
        match self {
            Frame::Hello {
                version,
                kind,
                shape,
                tenant,
                ..
            } => {
                let tenant_len = if *version >= PROTOCOL_VERSION {
                    4 + tenant.len()
                } else {
                    0
                };
                4 + (4 + kind.len()) + shape_len(*shape) + 8 + 8 + tenant_len
            }
            Frame::Ingested { .. }
            | Frame::Busy { .. }
            | Frame::CheckpointAck { .. }
            | Frame::TopKQuery { .. } => 8,
            Frame::HelloAck { run_line, .. } => 8 + 4 + run_line.len(),
            Frame::Reports(reports) => 4 + reports.iter().map(encoded_report_len).sum::<usize>(),
            Frame::Query | Frame::Checkpoint | Frame::SnapshotQuery => 0,
            Frame::Estimates { estimates, .. } => 8 + 4 + 8 * estimates.len(),
            Frame::Candidates { items, .. } => 8 + 4 + 16 * items.len(),
            Frame::Reject { message, .. } => 8 + 4 + message.len(),
            Frame::Snapshot { counts, .. } => 8 + 8 + 8 + 4 + 8 * counts.len(),
            Frame::EstimatesPart { estimates, .. } => 8 + 8 + 8 + 4 + 8 * estimates.len(),
        }
    }

    /// `true` when this frame's payload fits under [`MAX_PAYLOAD_LEN`] —
    /// a peer rejects anything larger, so senders of variably sized
    /// frames (estimate replies, report batches) check before writing and
    /// substitute a typed refusal instead of killing the connection.
    pub fn fits_one_frame(&self) -> bool {
        self.encoded_payload_len() <= MAX_PAYLOAD_LEN
    }

    /// Decodes exactly one frame from `buf`, requiring the buffer to end
    /// with it (no trailing bytes).
    ///
    /// # Errors
    /// Any of the typed [`FrameError`] conditions; never panics.
    pub fn decode(buf: &[u8]) -> Result<Frame, FrameError> {
        if buf.len() < 5 {
            return Err(FrameError::Truncated {
                needed: 5,
                available: buf.len(),
            });
        }
        let tag = buf[0];
        let len = u32::from_le_bytes(buf[1..5].try_into().expect("4 bytes")) as usize;
        if len > MAX_PAYLOAD_LEN {
            return Err(FrameError::Oversized {
                len,
                max: MAX_PAYLOAD_LEN,
            });
        }
        if buf.len() - 5 < len {
            return Err(FrameError::Truncated {
                needed: len,
                available: buf.len() - 5,
            });
        }
        if buf.len() - 5 > len {
            return Err(FrameError::Malformed(format!(
                "{} bytes after the frame end",
                buf.len() - 5 - len
            )));
        }
        Self::parse_payload(tag, &buf[5..5 + len])
    }

    /// Writes the frame to a stream (one `write_all`; callers flush).
    ///
    /// # Errors
    /// Propagates I/O errors as [`FrameError::Io`].
    pub fn write_to<W: Write>(&self, w: &mut W) -> Result<(), FrameError> {
        w.write_all(&self.encode())?;
        Ok(())
    }

    /// Reads one frame from a stream. Returns `Ok(None)` on a clean EOF at
    /// a frame boundary (the peer closed the connection); EOF *inside* a
    /// frame is [`FrameError::Truncated`].
    ///
    /// # Errors
    /// Typed decode errors or [`FrameError::Io`].
    pub fn read_from<R: Read>(r: &mut R) -> Result<Option<Frame>, FrameError> {
        let mut header = [0u8; 5];
        let mut got = 0;
        while got < header.len() {
            match r.read(&mut header[got..]) {
                Ok(0) if got == 0 => return Ok(None),
                Ok(0) => {
                    return Err(FrameError::Truncated {
                        needed: header.len(),
                        available: got,
                    })
                }
                Ok(n) => got += n,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e.into()),
            }
        }
        let tag = header[0];
        let len = u32::from_le_bytes(header[1..5].try_into().expect("4 bytes")) as usize;
        if len > MAX_PAYLOAD_LEN {
            return Err(FrameError::Oversized {
                len,
                max: MAX_PAYLOAD_LEN,
            });
        }
        // The payload buffer grows as bytes actually arrive (`take` +
        // `read_to_end`), with only a small initial reservation — a peer
        // sending a 5-byte header claiming 16 MiB must deliver the bytes
        // before the reader holds them, keeping the module's
        // no-allocation-ahead-of-data guarantee true for the stream
        // reader too, not just the slice decoder.
        let mut payload = Vec::with_capacity(len.min(64 << 10));
        let got = r
            .by_ref()
            .take(len as u64)
            .read_to_end(&mut payload)
            .map_err(|e| FrameError::Io(e.to_string()))?;
        if got < len {
            return Err(FrameError::Truncated {
                needed: len,
                available: got,
            });
        }
        Self::parse_payload(tag, &payload).map(Some)
    }
}

/// What the [`FrameAssembler`] is in the middle of.
enum AssemblerState {
    /// Collecting the 5-byte `tag + payload_len` header.
    Header { buf: [u8; 5], len: usize },
    /// Header complete; collecting `need` payload bytes.
    Payload {
        tag: u8,
        need: usize,
        payload: Vec<u8>,
    },
}

/// Push-based incremental frame decoder: feed it whatever bytes the
/// socket produced — any fragmentation, down to one byte at a time — and
/// it yields exactly the frames [`Frame::decode`] would yield on the
/// concatenation. This is the non-blocking twin of [`Frame::read_from`]:
/// the readiness engine cannot block for the rest of a frame, so the
/// decoder keeps its place between reads instead.
///
/// The stream reader's safety properties carry over unchanged:
/// an oversized length prefix fails at header completion *before* any
/// payload allocation, and the payload buffer grows only as bytes
/// actually arrive (small initial reservation), so a peer claiming a
/// 16 MiB frame holds no more memory than it has transmitted
/// ([`Self::buffered_bytes`] is the live measure; the hostile-peer
/// stress test pins it down).
///
/// Decode errors are *sticky*: after a byte stream has violated the
/// grammar there is no way to resynchronise on a length-prefixed wire,
/// so every later [`Self::feed`] returns the same error and the
/// connection must be torn down (after flushing the typed
/// [`Frame::Reject`], as both engines do).
pub struct FrameAssembler {
    state: AssemblerState,
    ready: std::collections::VecDeque<Frame>,
    failed: Option<FrameError>,
}

impl Default for FrameAssembler {
    fn default() -> Self {
        Self::new()
    }
}

impl FrameAssembler {
    /// An assembler at a frame boundary with nothing buffered.
    pub fn new() -> Self {
        Self {
            state: AssemblerState::Header {
                buf: [0; 5],
                len: 0,
            },
            ready: std::collections::VecDeque::new(),
            failed: None,
        }
    }

    /// Absorbs `bytes`, decoding as many complete frames as they finish;
    /// decoded frames queue up for [`Self::next_frame`]. Partial trailing
    /// bytes are buffered for the next feed.
    ///
    /// # Errors
    /// The typed [`FrameError`] the concatenated stream violates the
    /// grammar with. The error is sticky: once returned, every later call
    /// returns it again (frames already decoded remain retrievable).
    pub fn feed(&mut self, mut bytes: &[u8]) -> Result<(), FrameError> {
        if let Some(e) = &self.failed {
            return Err(e.clone());
        }
        loop {
            match &mut self.state {
                // A frame completes on the byte that fills its payload —
                // including the zero-payload case right after the header —
                // so completion is checked before asking for more input.
                AssemblerState::Payload { tag, need, payload } if payload.len() == *need => {
                    match Frame::parse_payload(*tag, payload) {
                        Ok(frame) => self.ready.push_back(frame),
                        Err(e) => {
                            self.failed = Some(e.clone());
                            return Err(e);
                        }
                    }
                    self.state = AssemblerState::Header {
                        buf: [0; 5],
                        len: 0,
                    };
                }
                _ if bytes.is_empty() => return Ok(()),
                AssemblerState::Header { buf, len } => {
                    let take = (buf.len() - *len).min(bytes.len());
                    buf[*len..*len + take].copy_from_slice(&bytes[..take]);
                    *len += take;
                    bytes = &bytes[take..];
                    if *len == buf.len() {
                        let tag = buf[0];
                        let need =
                            u32::from_le_bytes(buf[1..5].try_into().expect("4 bytes")) as usize;
                        if need > MAX_PAYLOAD_LEN {
                            let e = FrameError::Oversized {
                                len: need,
                                max: MAX_PAYLOAD_LEN,
                            };
                            self.failed = Some(e.clone());
                            return Err(e);
                        }
                        self.state = AssemblerState::Payload {
                            tag,
                            need,
                            // Same incremental-growth policy as
                            // `Frame::read_from`: reserve small, grow as
                            // bytes arrive.
                            payload: Vec::with_capacity(need.min(64 << 10)),
                        };
                    }
                }
                AssemblerState::Payload { need, payload, .. } => {
                    let take = (*need - payload.len()).min(bytes.len());
                    payload.extend_from_slice(&bytes[..take]);
                    bytes = &bytes[take..];
                }
            }
        }
    }

    /// The next fully decoded frame, in arrival order.
    pub fn next_frame(&mut self) -> Option<Frame> {
        self.ready.pop_front()
    }

    /// Bytes buffered for the frame in progress (header + partial
    /// payload). This — not the peer's claimed length prefix — is what a
    /// connection's decode path holds in memory, which is what the
    /// slow-loris stress bound measures.
    pub fn buffered_bytes(&self) -> usize {
        match &self.state {
            AssemblerState::Header { len, .. } => *len,
            AssemblerState::Payload { payload, .. } => 5 + payload.len(),
        }
    }

    /// `true` when the stream stopped inside a frame — an EOF now is a
    /// truncation (the blocking reader's [`FrameError::Truncated`]), not
    /// a clean close.
    pub fn mid_frame(&self) -> bool {
        !matches!(self.state, AssemblerState::Header { len: 0, .. })
    }

    /// The typed error an EOF at this point amounts to: `None` at a frame
    /// boundary (clean close), [`FrameError::Truncated`] mid-frame — the
    /// same classification [`Frame::read_from`] makes, so both engines
    /// report an interrupted frame identically.
    pub fn eof_truncation(&self) -> Option<FrameError> {
        match &self.state {
            AssemblerState::Header { len: 0, .. } => None,
            AssemblerState::Header { len, .. } => Some(FrameError::Truncated {
                needed: 5,
                available: *len,
            }),
            AssemblerState::Payload { need, payload, .. } => Some(FrameError::Truncated {
                needed: *need,
                available: payload.len(),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(frame: Frame) {
        let bytes = frame.encode();
        assert_eq!(
            frame.encoded_payload_len(),
            bytes.len() - 5,
            "arithmetic size disagrees with the encoder for {frame:?}"
        );
        assert_eq!(Frame::decode(&bytes).unwrap(), frame);
        // Stream reader agrees with the slice decoder.
        let mut cursor = std::io::Cursor::new(bytes);
        assert_eq!(Frame::read_from(&mut cursor).unwrap(), Some(frame));
        assert_eq!(Frame::read_from(&mut cursor).unwrap(), None, "clean EOF");
    }

    #[test]
    fn every_frame_kind_round_trips() {
        round_trip(Frame::Hello {
            version: PROTOCOL_VERSION,
            kind: "idue".into(),
            shape: ReportShape::Hashed { range: 7 },
            report_len: 64,
            ldp_eps_bits: 1.25f64.to_bits(),
            tenant: "alpha".into(),
        });
        round_trip(Frame::Hello {
            version: PROTOCOL_VERSION,
            kind: "ss".into(),
            shape: ReportShape::ItemSet { k: 3 },
            report_len: 16,
            ldp_eps_bits: 2.0f64.to_bits(),
            tenant: String::new(),
        });
        // A legacy v3 Hello has no tenant field on the wire; it decodes
        // back to the empty (default) tenant and round-trips bytewise.
        round_trip(Frame::Hello {
            version: LEGACY_PROTOCOL_VERSION,
            kind: "oue".into(),
            shape: ReportShape::Bits,
            report_len: 20,
            ldp_eps_bits: 1.0f64.to_bits(),
            tenant: String::new(),
        });
        round_trip(Frame::HelloAck {
            users: 12,
            run_line: "run idldp-serve kind=idue shape=bits report_len=64 ldp_eps=1.25".into(),
        });
        round_trip(Frame::Reports(vec![
            ReportData::Bits(vec![1, 0, 1, 1, 0, 0, 0, 1, 1]),
            ReportData::Value(3),
            ReportData::Hashed { seed: 9, value: 2 },
            ReportData::ItemSet(vec![0, 5, 17]),
        ]));
        round_trip(Frame::Ingested { accepted: 1024 });
        round_trip(Frame::Busy { accepted: 7 });
        round_trip(Frame::Query);
        round_trip(Frame::Estimates {
            users: 5,
            estimates: vec![0.25, -1.5e-9, 0.0, 1.0],
        });
        round_trip(Frame::TopKQuery { k: 5 });
        round_trip(Frame::Candidates {
            users: 100,
            items: vec![(3, 0.5), (1, 0.25)],
        });
        round_trip(Frame::Checkpoint);
        round_trip(Frame::CheckpointAck { users: 42 });
        round_trip(Frame::Reject {
            accepted: 3,
            message: "shape mismatch".into(),
        });
        round_trip(Frame::SnapshotQuery);
        round_trip(Frame::Snapshot {
            users: 9,
            total: 10,
            offset: 4,
            counts: vec![1, 0, 7, 2],
        });
        round_trip(Frame::EstimatesPart {
            users: 9,
            total: 6,
            offset: 2,
            estimates: vec![0.5, -0.25, 0.0],
        });
    }

    /// The v4 tenant field cannot disturb the v3 byte layout: a v3
    /// `Hello` encoded by this codec is byte-identical to the hand-built
    /// pre-tenancy layout (version, kind, shape, width, ε — nothing
    /// after), and those bytes decode to the default (empty) tenant.
    #[test]
    fn v3_hello_bytes_are_unchanged_by_the_tenant_field() {
        let kind = "oue";
        let mut payload = Vec::new();
        put_u32(&mut payload, LEGACY_PROTOCOL_VERSION);
        put_string(&mut payload, kind);
        put_shape(&mut payload, ReportShape::Bits);
        put_u64(&mut payload, 20);
        put_u64(&mut payload, 1.0f64.to_bits());
        let legacy_bytes = frame_bytes(TAG_HELLO, payload);

        let hello = Frame::Hello {
            version: LEGACY_PROTOCOL_VERSION,
            kind: kind.into(),
            shape: ReportShape::Bits,
            report_len: 20,
            ldp_eps_bits: 1.0f64.to_bits(),
            tenant: String::new(),
        };
        assert_eq!(hello.encode(), legacy_bytes, "v3 encode drifted");
        assert_eq!(Frame::decode(&legacy_bytes).unwrap(), hello);

        // And a v4 Hello is the same prefix plus exactly the tenant
        // string — nothing reordered.
        let v4 = Frame::Hello {
            version: PROTOCOL_VERSION,
            kind: kind.into(),
            shape: ReportShape::Bits,
            report_len: 20,
            ldp_eps_bits: 1.0f64.to_bits(),
            tenant: "alpha".into(),
        };
        let v4_bytes = v4.encode();
        let legacy_payload = &legacy_bytes[5..];
        // Same fields after the version word, in the same order...
        assert_eq!(
            &v4_bytes[5 + 4..5 + legacy_payload.len()],
            &legacy_payload[4..],
            "the v4 payload must extend the v3 layout, not reorder it"
        );
        // ...with the tenant string appended at the very end.
        assert_eq!(&v4_bytes[v4_bytes.len() - 5..], b"alpha");
    }

    #[test]
    fn estimates_survive_bit_exactly() {
        let estimates = vec![0.1 + 0.2, f64::MIN_POSITIVE, -0.0, 1.0 / 3.0];
        let frame = Frame::Estimates {
            users: 9,
            estimates: estimates.clone(),
        };
        match Frame::decode(&frame.encode()).unwrap() {
            Frame::Estimates {
                estimates: decoded, ..
            } => {
                for (a, b) in decoded.iter().zip(&estimates) {
                    assert_eq!(a.to_bits(), b.to_bits());
                }
            }
            other => panic!("wrong frame {other:?}"),
        }
    }

    #[test]
    fn truncation_is_typed_at_every_length() {
        let bytes = Frame::Reports(vec![
            ReportData::Bits(vec![1, 0, 1]),
            ReportData::ItemSet(vec![2, 4]),
        ])
        .encode();
        for cut in 0..bytes.len() {
            match Frame::decode(&bytes[..cut]) {
                Err(FrameError::Truncated { .. }) | Err(FrameError::Malformed(_)) => {}
                other => panic!("cut at {cut}: {other:?}"),
            }
        }
    }

    #[test]
    fn oversized_and_unknown_are_rejected() {
        let mut oversized = vec![TAG_QUERY];
        oversized.extend_from_slice(&(MAX_PAYLOAD_LEN as u32 + 1).to_le_bytes());
        assert!(matches!(
            Frame::decode(&oversized),
            Err(FrameError::Oversized { .. })
        ));
        let unknown = [0xEEu8, 0, 0, 0, 0];
        assert_eq!(Frame::decode(&unknown), Err(FrameError::UnknownTag(0xEE)));
        // Trailing garbage after a valid frame.
        let mut trailing = Frame::Query.encode();
        trailing.push(0);
        assert!(matches!(
            Frame::decode(&trailing),
            Err(FrameError::Malformed(_))
        ));
    }

    #[test]
    fn nonzero_padding_bits_are_rejected() {
        let mut bytes = Frame::Reports(vec![ReportData::Bits(vec![1, 1, 1])]).encode();
        // The packed byte is 0b0000_0111; set a padding bit above slot 2.
        let last = bytes.len() - 1;
        bytes[last] |= 0b1000_0000;
        assert!(matches!(
            Frame::decode(&bytes),
            Err(FrameError::Malformed(_))
        ));
    }

    #[test]
    fn stream_reader_counts_partial_payloads_without_preallocating() {
        // A header claiming 100 payload bytes followed by only 10: the
        // reader reports exactly what arrived (it buffers incrementally —
        // a stalling peer cannot make it hold a length-prefix-sized
        // allocation).
        let mut bytes = vec![TAG_REJECT];
        bytes.extend_from_slice(&100u32.to_le_bytes());
        bytes.extend_from_slice(&[0u8; 10]);
        let mut cursor = std::io::Cursor::new(bytes);
        match Frame::read_from(&mut cursor) {
            Err(FrameError::Truncated { needed, available }) => {
                assert_eq!((needed, available), (100, 10));
            }
            other => panic!("expected Truncated, got {other:?}"),
        }
    }

    #[test]
    fn bit_reports_over_the_width_cap_are_rejected() {
        // count=1, REPORT_BITS, one slot over the cap — refused before the
        // decoder even looks for (or allocates) the packed bytes.
        let mut payload = Vec::new();
        payload.extend_from_slice(&1u32.to_le_bytes());
        payload.push(REPORT_BITS);
        payload.extend_from_slice(&(MAX_BIT_REPORT_SLOTS as u32 + 1).to_le_bytes());
        let mut bytes = vec![TAG_REPORTS];
        bytes.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        bytes.extend_from_slice(&payload);
        assert!(matches!(
            Frame::decode(&bytes),
            Err(FrameError::Malformed(_))
        ));
        // Exactly at the cap the report still round-trips.
        let at_cap = Frame::Reports(vec![ReportData::Bits(vec![1; MAX_BIT_REPORT_SLOTS])]);
        assert_eq!(Frame::decode(&at_cap.encode()).unwrap(), at_cap);
    }

    #[test]
    fn hostile_counts_do_not_allocate() {
        // A Reports frame claiming u32::MAX reports in a 4-byte payload.
        let mut bytes = vec![TAG_REPORTS, 4, 0, 0, 0];
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            Frame::decode(&bytes),
            Err(FrameError::Malformed(_))
        ));
    }

    #[test]
    fn encoded_report_len_matches_the_encoder() {
        let reports = [
            ReportData::Bits(vec![]),
            ReportData::Bits(vec![1; 7]),
            ReportData::Bits(vec![0; 8]),
            ReportData::Bits(vec![1; 65]),
            ReportData::Value(3),
            ReportData::Hashed { seed: 1, value: 2 },
            ReportData::ItemSet(vec![]),
            ReportData::ItemSet(vec![0, 5, 9]),
        ];
        for report in &reports {
            let mut out = Vec::new();
            put_report(&mut out, report);
            assert_eq!(out.len(), encoded_report_len(report), "{report:?}");
        }
        // A whole batch frame is header + count + the per-report sizes.
        let frame = Frame::Reports(reports.to_vec());
        let want: usize = 5 + 4 + reports.iter().map(encoded_report_len).sum::<usize>();
        assert_eq!(frame.encode().len(), want);
    }

    #[test]
    fn slice_encoder_matches_owned_encoder() {
        let reports = vec![
            ReportData::Bits(vec![1, 0, 1]),
            ReportData::Value(2),
            ReportData::Hashed { seed: 3, value: 1 },
            ReportData::ItemSet(vec![0, 4]),
        ];
        assert_eq!(
            encode_reports_frame(&reports),
            Frame::Reports(reports).encode()
        );
    }

    #[test]
    fn fits_one_frame_flags_oversized_replies() {
        assert!(Frame::Query.fits_one_frame());
        let small = Frame::Estimates {
            users: 1,
            estimates: vec![0.5; 100],
        };
        assert!(small.fits_one_frame());
        let oversized = Frame::Estimates {
            users: 1,
            estimates: vec![0.5; MAX_PAYLOAD_LEN / 8 + 16],
        };
        assert!(!oversized.fits_one_frame());
    }

    #[test]
    #[should_panic(expected = "slots must be 0/1")]
    fn non_binary_slots_are_unencodable() {
        // Coercing slot 2 to a set bit would launder a report the local
        // fold path rejects — the encoder refuses instead.
        let _ = Frame::Reports(vec![ReportData::Bits(vec![2])]).encode();
    }

    #[test]
    fn bit_packing_is_compact() {
        let bytes = Frame::Reports(vec![ReportData::Bits(vec![1; 64])]).encode();
        // 5 header + 4 batch count + 1 report tag + 4 slot count + 8 packed.
        assert_eq!(bytes.len(), 5 + 4 + 1 + 4 + 8);
    }

    #[test]
    fn assembler_reassembles_byte_at_a_time() {
        let frames = vec![
            Frame::Query,
            Frame::Reports(vec![
                ReportData::Bits(vec![1, 0, 1, 1, 0, 0, 0, 1, 1]),
                ReportData::ItemSet(vec![0, 5, 17]),
            ]),
            Frame::Estimates {
                users: 3,
                estimates: vec![0.25, -0.5],
            },
            Frame::Checkpoint,
        ];
        let stream: Vec<u8> = frames.iter().flat_map(Frame::encode).collect();
        let mut asm = FrameAssembler::new();
        let mut got = Vec::new();
        for byte in stream {
            asm.feed(&[byte]).unwrap();
            while let Some(f) = asm.next_frame() {
                got.push(f);
            }
        }
        assert_eq!(got, frames);
        assert!(!asm.mid_frame(), "stream ended at a frame boundary");
        assert_eq!(asm.buffered_bytes(), 0);
    }

    #[test]
    fn assembler_decodes_many_frames_from_one_feed() {
        let frames = vec![
            Frame::Query,
            Frame::HelloAck {
                users: 2,
                run_line: "run".into(),
            },
            Frame::Query,
        ];
        let stream: Vec<u8> = frames.iter().flat_map(Frame::encode).collect();
        let mut asm = FrameAssembler::new();
        asm.feed(&stream).unwrap();
        let got: Vec<_> = std::iter::from_fn(|| asm.next_frame()).collect();
        assert_eq!(got, frames);
    }

    #[test]
    fn assembler_oversized_fails_before_payload_and_sticks() {
        let mut header = vec![TAG_REPORTS];
        header.extend_from_slice(&(MAX_PAYLOAD_LEN as u32 + 1).to_le_bytes());
        let mut asm = FrameAssembler::new();
        assert!(matches!(
            asm.feed(&header),
            Err(FrameError::Oversized { .. })
        ));
        // Sticky: the stream cannot resynchronise.
        assert!(matches!(
            asm.feed(&Frame::Query.encode()),
            Err(FrameError::Oversized { .. })
        ));
    }

    #[test]
    fn assembler_malformed_payload_sticks_but_keeps_earlier_frames() {
        let mut stream = Frame::Query.encode();
        stream.extend_from_slice(&[0xEE, 0, 0, 0, 0]); // unknown tag
        let mut asm = FrameAssembler::new();
        assert_eq!(asm.feed(&stream), Err(FrameError::UnknownTag(0xEE)));
        assert_eq!(asm.next_frame(), Some(Frame::Query));
        assert_eq!(asm.next_frame(), None);
        assert_eq!(asm.feed(&[0]), Err(FrameError::UnknownTag(0xEE)));
    }

    #[test]
    fn small_estimate_replies_stay_on_the_legacy_frame() {
        // The chunker must not change a single wire byte for domains that
        // already fit one frame — protocol-2 clients' replies are sacred.
        let estimates: Vec<f64> = (0..1000).map(|i| i as f64 / 7.0).collect();
        let frames = estimates_reply_frames(42, &estimates);
        assert_eq!(
            frames,
            vec![Frame::Estimates {
                users: 42,
                estimates
            }]
        );
    }

    #[test]
    fn chunked_replies_are_contiguous_and_reassemble_exactly() {
        // Just over the single-frame cap: payload 12 + 8n > 16 MiB.
        let n = (MAX_PAYLOAD_LEN - 12) / 8 + 1;
        let estimates: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();
        let frames = estimates_reply_frames(5, &estimates);
        assert!(frames.len() >= 2, "must actually chunk");
        let mut got = Vec::new();
        for frame in &frames {
            assert!(frame.fits_one_frame(), "every chunk must fit a frame");
            match frame {
                Frame::EstimatesPart {
                    users,
                    total,
                    offset,
                    estimates: chunk,
                } => {
                    assert_eq!(*users, 5);
                    assert_eq!(*total, n as u64);
                    assert_eq!(*offset, got.len() as u64, "chunks arrive contiguously");
                    got.extend_from_slice(chunk);
                }
                other => panic!("expected EstimatesPart, got {other:?}"),
            }
        }
        assert_eq!(got.len(), n);
        for (a, b) in got.iter().zip(&estimates) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn snapshot_chunker_covers_empty_and_large() {
        assert_eq!(
            snapshot_reply_frames(0, &[]),
            vec![Frame::Snapshot {
                users: 0,
                total: 0,
                offset: 0,
                counts: vec![]
            }]
        );
        let counts: Vec<u64> = (0..(CHUNK_ELEMS * 2 + 3) as u64).collect();
        let frames = snapshot_reply_frames(7, &counts);
        assert_eq!(frames.len(), 3);
        let mut got = Vec::new();
        for frame in &frames {
            assert!(frame.fits_one_frame());
            match frame {
                Frame::Snapshot {
                    total,
                    offset,
                    counts: chunk,
                    ..
                } => {
                    assert_eq!(*total, counts.len() as u64);
                    assert_eq!(*offset, got.len() as u64);
                    got.extend_from_slice(chunk);
                }
                other => panic!("expected Snapshot, got {other:?}"),
            }
        }
        assert_eq!(got, counts);
    }

    #[test]
    fn chunk_overrunning_its_total_is_rejected() {
        // offset + len > total is unrepresentable through the chunkers, so
        // the decoder treats it as malformed rather than passing the
        // contradiction to reassembly.
        let frame = Frame::Snapshot {
            users: 1,
            total: 3,
            offset: 2,
            counts: vec![1, 2],
        };
        assert!(matches!(
            Frame::decode(&frame.encode()),
            Err(FrameError::Malformed(_))
        ));
    }

    #[test]
    fn assembler_buffers_only_received_bytes_of_a_big_claim() {
        // Header claiming 1 MiB, then a 10-byte drip: the assembler holds
        // ~15 bytes, not the claimed megabyte.
        let mut drip = vec![TAG_REPORTS];
        drip.extend_from_slice(&(1u32 << 20).to_le_bytes());
        drip.extend_from_slice(&[0u8; 10]);
        let mut asm = FrameAssembler::new();
        asm.feed(&drip).unwrap();
        assert!(asm.mid_frame());
        assert_eq!(asm.buffered_bytes(), 15);
    }
}
